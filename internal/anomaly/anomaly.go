// Package anomaly implements Section 4.3: detecting requests whose
// fine-grained behavior deviates from a reference against the expected
// similarity, and analyzing the deviation.
//
// Two detection modes mirror the paper's:
//
//   - within a group of semantically identical requests (same TPCH query,
//     same WeBWorK problem), the requests farthest from the group centroid
//     share the least common behavior and are suspected anomalies;
//   - across multi-metric patterns, anomaly-reference pairs share very
//     similar L2-references-per-instruction patterns (similar reference
//     streams to the shared resource) but differ in CPI — the signature of
//     adverse dynamic effects on cache-sharing multicores.
package anomaly

import (
	"math"
	"sort"

	"repro/internal/distance"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Detector configures anomaly analysis.
type Detector struct {
	// BucketIns is the resampling bucket in instructions.
	BucketIns float64
	// Measure differences variation patterns; the paper's offline analysis
	// uses DTW with asynchrony penalty.
	Measure distance.Measure
}

// Scored is a trace with its distance from the reference pattern.
type Scored struct {
	Trace    *trace.Request
	Distance float64
}

// GroupAnomalies ranks a group of same-semantics requests by their metric-m
// pattern distance from the group centroid, most anomalous first. The
// centroid request (distance 0 to itself) is returned separately. The
// pairwise distances are precomputed through the parallel engine.
func (d *Detector) GroupAnomalies(group []*trace.Request, m metrics.Metric) (centroid *trace.Request, ranked []Scored) {
	if len(group) == 0 {
		return nil, nil
	}
	patterns := make([][]float64, len(group))
	for i, tr := range group {
		patterns[i] = tr.Resampled(m, d.BucketIns)
	}
	// Centroid: member minimizing the summed distance to all others.
	dists := distance.NewMatrixFromSequences(patterns, d.Measure, distance.MatrixOptions{})
	best := dists.Medoid()
	centroid = group[best]
	for i, tr := range group {
		if i == best {
			continue
		}
		ranked = append(ranked, Scored{Trace: tr, Distance: dists.At(best, i)})
	}
	sort.Slice(ranked, func(a, b int) bool { return ranked[a].Distance > ranked[b].Distance })
	return centroid, ranked
}

// Pair is an anomaly-reference pair found by multi-metric differencing.
type Pair struct {
	Anomaly   *trace.Request
	Reference *trace.Request
	// RefsDistance is the similarity of L2-references-per-instruction
	// patterns (small = similar reference streams).
	RefsDistance float64
	// CPIDistance is the difference of CPI patterns (large = divergent
	// performance).
	CPIDistance float64
}

// FindPairs searches for anomaly-reference pairs: requests with very
// similar L2 reference patterns but dissimilar CPI patterns. The anomaly is
// the pair member with the higher overall CPI. Pairs are ranked by
// CPIDistance / (RefsDistance + ε), strongest first, and each trace appears
// in at most one returned pair.
func (d *Detector) FindPairs(traces []*trace.Request, maxPairs int) []Pair {
	refsPats := make([][]float64, len(traces))
	cpiPats := make([][]float64, len(traces))
	for i, tr := range traces {
		refsPats[i] = tr.Resampled(metrics.L2RefsPerIns, d.BucketIns)
		cpiPats[i] = tr.Resampled(metrics.CPI, d.BucketIns)
	}
	// Both metric matrices fill through the parallel engine before the
	// serial candidate scan reads them.
	refsM := distance.NewMatrixFromSequences(refsPats, d.Measure, distance.MatrixOptions{})
	cpiM := distance.NewMatrixFromSequences(cpiPats, d.Measure, distance.MatrixOptions{})
	type cand struct {
		i, j  int
		refsD float64
		cpiD  float64
		score float64
	}
	var cands []cand
	for i := 0; i < len(traces); i++ {
		for j := i + 1; j < len(traces); j++ {
			refsD := refsM.At(i, j)
			cpiD := cpiM.At(i, j)
			// Normalize by pattern length so long requests don't dominate.
			n := float64(len(refsPats[i]) + len(refsPats[j]))
			if n == 0 {
				continue
			}
			score := (cpiD / n) / (refsD/n + 1e-6)
			cands = append(cands, cand{i, j, refsD, cpiD, score})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].score > cands[b].score })
	used := map[int]bool{}
	var out []Pair
	for _, c := range cands {
		if len(out) >= maxPairs {
			break
		}
		if used[c.i] || used[c.j] {
			continue
		}
		used[c.i], used[c.j] = true, true
		a, r := traces[c.i], traces[c.j]
		if a.MetricValue(metrics.CPI) < r.MetricValue(metrics.CPI) {
			a, r = r, a
		}
		out = append(out, Pair{Anomaly: a, Reference: r, RefsDistance: c.refsD, CPIDistance: c.cpiD})
	}
	return out
}

// Analysis explains an anomaly against its reference.
type Analysis struct {
	// CPIExcess is the anomaly's whole-request CPI over the reference's.
	CPIExcess float64
	// MissCorrelation is the Pearson correlation, across aligned execution
	// buckets, between the pairwise CPI difference and the pairwise L2
	// misses-per-instruction difference. The paper finds anomalous CPI
	// increases "match very well" with miss increases — this is that
	// matching, quantified.
	MissCorrelation float64
	// InstructionExcess is anomaly instructions / reference instructions:
	// above 1 suggests software-level contention (e.g., lock retries)
	// executing additional instructions, the paper's first explanation for
	// elevated reference rates in the TPCH case.
	InstructionExcess float64
	// RefsExcess is the ratio of L2 references per instruction.
	RefsExcess float64
}

// Analyze computes the comparison of Figures 8 and 9 for a pair.
func (d *Detector) Analyze(p Pair) Analysis {
	aCPI := p.Anomaly.Resampled(metrics.CPI, d.BucketIns)
	rCPI := p.Reference.Resampled(metrics.CPI, d.BucketIns)
	aMiss := p.Anomaly.Resampled(metrics.L2MissesPerIns, d.BucketIns)
	rMiss := p.Reference.Resampled(metrics.L2MissesPerIns, d.BucketIns)
	n := minInt(len(aCPI), len(rCPI), len(aMiss), len(rMiss))
	cpiDiff := make([]float64, n)
	missDiff := make([]float64, n)
	for i := 0; i < n; i++ {
		cpiDiff[i] = aCPI[i] - rCPI[i]
		missDiff[i] = aMiss[i] - rMiss[i]
	}
	refIns := float64(p.Reference.Instructions())
	anIns := float64(p.Anomaly.Instructions())
	insExcess := 0.0
	if refIns > 0 {
		insExcess = anIns / refIns
	}
	refsExcess := 0.0
	if rr := p.Reference.MetricValue(metrics.L2RefsPerIns); rr > 0 {
		refsExcess = p.Anomaly.MetricValue(metrics.L2RefsPerIns) / rr
	}
	return Analysis{
		CPIExcess:         p.Anomaly.MetricValue(metrics.CPI) - p.Reference.MetricValue(metrics.CPI),
		MissCorrelation:   pearson(cpiDiff, missDiff),
		InstructionExcess: insExcess,
		RefsExcess:        refsExcess,
	}
}

func minInt(xs ...int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func pearson(x, y []float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
