// Streaming threshold calibration: the online pipeline flags a request
// anomalous when its identification score (best-match distance normalized
// by prefix length) exceeds a threshold learned from recent traffic. The
// threshold is a high quantile of the window's scores times a headroom
// factor — quantile rather than mean+k·sigma because injected or real
// anomalies in the window are exactly the heavy tail a mean would chase.
package anomaly

import (
	"math"
	"sort"
)

// Calibrate returns the anomaly threshold for a window of recent scores:
// the q-quantile (nearest-rank on the sorted window) scaled by headroom.
// scores is sorted in place — pass a scratch copy if the caller needs the
// original order — and nothing is allocated (sort.Float64s runs in place).
// An empty window returns +Inf (detection stays off until calibrated);
// NaN scores sort before every real value (sort.Float64s's contract), so
// they can never inflate a high quantile.
func Calibrate(scores []float64, q, headroom float64) float64 {
	if len(scores) == 0 {
		return math.Inf(1)
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	sort.Float64s(scores)
	rank := int(q * float64(len(scores)-1))
	return scores[rank] * headroom
}
