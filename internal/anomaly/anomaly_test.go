package anomaly

import (
	"math"
	"sort"
	"testing"

	"repro/internal/distance"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// mkTrace builds a trace whose CPI and refs/ins follow the given
// per-period profiles (100k instructions per period).
func mkTrace(id uint64, cpis, refs []float64) *trace.Request {
	tr := &trace.Request{ID: id, App: "x", Type: "t"}
	for i := range cpis {
		const ins = 100_000
		r := uint64(refs[i] * ins)
		tr.AddPeriod(1000, metrics.Counters{
			Cycles:       uint64(cpis[i] * ins),
			Instructions: ins,
			L2Refs:       r,
			L2Misses:     r / 4,
		})
	}
	return tr
}

func det() *Detector {
	return &Detector{BucketIns: 100_000, Measure: distance.DTW{AsyncPenalty: 0.5}}
}

func TestGroupAnomaliesRanksOutlierFirst(t *testing.T) {
	normal := []float64{2, 2, 2, 2, 2}
	refs := []float64{0.02, 0.02, 0.02, 0.02, 0.02}
	group := []*trace.Request{
		mkTrace(1, normal, refs),
		mkTrace(2, []float64{2.05, 2, 2.02, 1.98, 2}, refs),
		mkTrace(3, []float64{2, 2.03, 1.97, 2.01, 2.04}, refs),
		mkTrace(4, []float64{4, 4.5, 5, 4, 4.2}, refs), // the anomaly
	}
	centroid, ranked := det().GroupAnomalies(group, metrics.CPI)
	if centroid == nil || len(ranked) != 3 {
		t.Fatalf("centroid=%v ranked=%d", centroid, len(ranked))
	}
	if ranked[0].Trace.ID != 4 {
		t.Fatalf("anomaly should rank first, got ID %d", ranked[0].Trace.ID)
	}
	if centroid.ID == 4 {
		t.Fatal("anomaly chosen as centroid")
	}
	if ranked[0].Distance <= ranked[1].Distance {
		t.Fatal("ranking not in decreasing distance")
	}
}

func TestGroupAnomaliesEmpty(t *testing.T) {
	c, r := det().GroupAnomalies(nil, metrics.CPI)
	if c != nil || r != nil {
		t.Fatal("empty group should return nils")
	}
}

func TestFindPairsSelectsSimilarRefsDifferentCPI(t *testing.T) {
	refsA := []float64{0.03, 0.03, 0.04, 0.03}
	traces := []*trace.Request{
		mkTrace(1, []float64{2, 2, 2, 2}, refsA),                                 // reference-like
		mkTrace(2, []float64{4, 4.5, 4, 4.2}, refsA),                             // anomaly: same refs, high CPI
		mkTrace(3, []float64{2, 2, 2, 2}, []float64{0.001, 0.001, 0.001, 0.001}), // different refs
	}
	pairs := det().FindPairs(traces, 1)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	p := pairs[0]
	ids := map[uint64]bool{p.Anomaly.ID: true, p.Reference.ID: true}
	if !ids[1] || !ids[2] {
		t.Fatalf("pair should be traces 1 and 2, got %d/%d", p.Anomaly.ID, p.Reference.ID)
	}
	if p.Anomaly.ID != 2 {
		t.Fatalf("anomaly should be the high-CPI member, got %d", p.Anomaly.ID)
	}
	if p.CPIDistance <= p.RefsDistance {
		t.Fatal("selected pair should have CPI distance above refs distance")
	}
}

func TestFindPairsRespectsMaxAndUniqueness(t *testing.T) {
	var traces []*trace.Request
	for i := uint64(0); i < 6; i++ {
		cpi := 2.0 + float64(i)*0.5
		traces = append(traces, mkTrace(i, []float64{cpi, cpi, cpi}, []float64{0.02, 0.02, 0.02}))
	}
	pairs := det().FindPairs(traces, 2)
	if len(pairs) > 2 {
		t.Fatalf("maxPairs exceeded: %d", len(pairs))
	}
	seen := map[uint64]bool{}
	for _, p := range pairs {
		if seen[p.Anomaly.ID] || seen[p.Reference.ID] {
			t.Fatal("trace reused across pairs")
		}
		seen[p.Anomaly.ID] = true
		seen[p.Reference.ID] = true
	}
}

func TestAnalyzeCorrelation(t *testing.T) {
	// The anomaly's CPI excess tracks its miss excess bucket by bucket:
	// correlation should be strongly positive.
	ref := &trace.Request{ID: 1, App: "x", Type: "t"}
	anom := &trace.Request{ID: 2, App: "x", Type: "t"}
	for i := 0; i < 8; i++ {
		const ins = 100_000
		refRefs := uint64(0.03 * ins)
		ref.AddPeriod(1000, metrics.Counters{
			Cycles: 2 * ins, Instructions: ins, L2Refs: refRefs, L2Misses: refRefs / 5,
		})
		// Anomaly: buckets alternate between clean and contended; when
		// contended, misses double and CPI rises.
		missFactor := uint64(1)
		cyc := uint64(2 * ins)
		if i%2 == 1 {
			missFactor = 3
			cyc = 4 * ins
		}
		anom.AddPeriod(1000, metrics.Counters{
			Cycles: cyc, Instructions: ins, L2Refs: refRefs, L2Misses: refRefs / 5 * missFactor,
		})
	}
	d := det()
	a := d.Analyze(Pair{Anomaly: anom, Reference: ref})
	if a.CPIExcess <= 0 {
		t.Fatalf("CPIExcess = %v, want positive", a.CPIExcess)
	}
	if a.MissCorrelation < 0.9 {
		t.Fatalf("MissCorrelation = %v, want near 1", a.MissCorrelation)
	}
	if math.Abs(a.InstructionExcess-1) > 1e-9 {
		t.Fatalf("InstructionExcess = %v, want 1", a.InstructionExcess)
	}
	if math.Abs(a.RefsExcess-1) > 1e-9 {
		t.Fatalf("RefsExcess = %v, want 1", a.RefsExcess)
	}
}

func TestPearson(t *testing.T) {
	if got := pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", got)
	}
	if got := pearson([]float64{1, 2, 3}, []float64{3, 2, 1}); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	if got := pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("constant series correlation = %v", got)
	}
	if got := pearson([]float64{1}, []float64{1}); got != 0 {
		t.Fatalf("single point correlation = %v", got)
	}
}

func TestCalibrate(t *testing.T) {
	if v := Calibrate(nil, 0.99, 1.5); !math.IsInf(v, 1) {
		t.Fatalf("empty window: got %v, want +Inf", v)
	}
	// 1..100: the 0.99 quantile at nearest rank int(0.99*99)=98 is 99.
	scores := make([]float64, 100)
	for i := range scores {
		scores[i] = float64(100 - i)
	}
	if v := Calibrate(scores, 0.99, 1.5); v != 99*1.5 {
		t.Fatalf("quantile: got %v, want %v", v, 99*1.5)
	}
	if !sort.Float64sAreSorted(scores) {
		t.Fatal("Calibrate must sort in place")
	}
	if v := Calibrate([]float64{7, 3}, 0, 2); v != 6 {
		t.Fatalf("q=0: got %v, want 6", v)
	}
	if v := Calibrate([]float64{7, 3}, 2, 1); v != 7 {
		t.Fatalf("q clamped to 1: got %v, want 7", v)
	}
	allocs := testing.AllocsPerRun(20, func() {
		Calibrate(scores, 0.99, 1.5)
	})
	if allocs != 0 {
		t.Fatalf("Calibrate allocates %v per run, want 0", allocs)
	}
}
