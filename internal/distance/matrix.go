// Pairwise-distance engine: every downstream analysis (k-medoids
// classification, anomaly detection, the Figure 6–8 experiments) funnels
// through O(n²) request differencing with an O(m·n) measure per pair. The
// engine precomputes the full symmetric matrix once, in parallel, into
// triangular storage, so the analyses read distances instead of computing
// them — and so one population's matrix can be shared across analyses.
//
// Determinism: parallelism only changes when a cell is computed, never
// what. Each cell is written exactly once, by the worker that claimed its
// row block, with no reads of other cells; for a pure pair function the
// resulting matrix is bit-identical to a serial fill.
package distance

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// PairFunc returns the dissimilarity between items i and j (i < j) of the
// population. It must be symmetric in effect and, because the engine calls
// it from multiple goroutines, safe for concurrent use — pure functions
// over read-only inputs qualify.
type PairFunc func(i, j int) float64

// Matrix is a precomputed symmetric pairwise-distance matrix with a zero
// diagonal. Only the strict upper triangle is stored (n·(n−1)/2 values,
// half the footprint of a square layout). Matrices are immutable after
// construction and safe for concurrent readers.
type Matrix struct {
	n    int
	vals []float64
}

// MatrixOptions tunes the parallel fill.
type MatrixOptions struct {
	// Workers is the fill pool size; ≤0 means runtime.GOMAXPROCS(0).
	// Workers == 1 fills serially on the calling goroutine.
	Workers int
	// RowBlock is the number of consecutive rows a worker claims at a
	// time; ≤0 picks a size that spreads the triangle's uneven row costs
	// (row i holds n−1−i cells) across the pool.
	RowBlock int
	// Obs, when non-nil, records fill activity into the observability
	// collector: total cells, cells per worker, and the pool size. The
	// counters are resolved once per fill — never inside the pair loop —
	// so an attached collector adds no per-cell work.
	Obs *obs.Collector
}

// NewMatrix computes all pairwise distances for an n-item population under
// pair. Rows are claimed in blocks by a bounded worker pool; see PairFunc
// for the concurrency contract.
func NewMatrix(n int, pair PairFunc, opt MatrixOptions) *Matrix {
	m := &Matrix{}
	m.Fill(n, pair, opt)
	return m
}

// Fill recomputes the matrix in place for an n-item population under pair,
// reusing the triangular storage when it is large enough — repeated fills
// over same-or-smaller populations allocate nothing, which is what lets
// the streaming pipeline recompact its signature window every interval
// without garbage. The immutability contract applies between fills: the
// caller must guarantee no concurrent readers while Fill runs. Every cell
// is written (cells are never carried over from a previous fill), so the
// result is identical to a fresh NewMatrix.
func (m *Matrix) Fill(n int, pair PairFunc, opt MatrixOptions) {
	m.n = n
	m.vals = m.vals[:0]
	if n < 2 {
		return
	}
	if need := n * (n - 1) / 2; cap(m.vals) >= need {
		m.vals = m.vals[:need]
	} else {
		m.vals = make([]float64, need)
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n-1 {
		workers = n - 1
	}
	if opt.Obs != nil {
		opt.Obs.Counter("distance.matrix.fills").Add(1)
		opt.Obs.Gauge("distance.matrix.workers").Set(float64(workers))
	}
	// The serial path stays free of the pool's closures (closures captured
	// by worker goroutines escape to the heap even when the pool never
	// spawns), so a single-worker refill into grown storage allocates
	// nothing — the streaming pipeline's compaction case.
	if workers <= 1 {
		for i := 0; i < n-1; i++ {
			m.fillRow(i, pair)
		}
		m.cellsDone(opt.Obs, 0, uint64(len(m.vals)))
		return
	}
	block := opt.RowBlock
	if block <= 0 {
		// Several blocks per worker so late rows (cheap) and early rows
		// (expensive) average out.
		block = (n - 1) / (workers * 8)
		if block < 1 {
			block = 1
		}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			var cells uint64
			for {
				lo := int(next.Add(int64(block))) - block
				if lo >= n-1 {
					m.cellsDone(opt.Obs, worker, cells)
					return
				}
				hi := lo + block
				if hi > n-1 {
					hi = n - 1
				}
				for i := lo; i < hi; i++ {
					m.fillRow(i, pair)
					cells += uint64(n - 1 - i)
				}
			}
		}(w)
	}
	wg.Wait()
}

// fillRow computes row i's strict-upper-triangle cells.
func (m *Matrix) fillRow(i int, pair PairFunc) {
	base := m.tri(i, i+1)
	for j := i + 1; j < m.n; j++ {
		m.vals[base+j-i-1] = pair(i, j)
	}
}

// cellsDone reports one worker's fill contribution: the shared total plus
// a per-worker counter ("matrix cells filled per worker").
func (m *Matrix) cellsDone(c *obs.Collector, worker int, cells uint64) {
	if c == nil || cells == 0 {
		return
	}
	c.Counter("distance.matrix.cells").Add(cells)
	c.Counter(fmt.Sprintf("distance.matrix.cells.worker%02d", worker)).Add(cells)
}

// NewMatrixFromSequences computes the pairwise matrix of a request
// population's resampled metric sequences under measure d. Measures whose
// Distance is pure (all in this package) satisfy the concurrency contract;
// DTW additionally reuses pooled scratch rows so the fill's inner loop
// allocates nothing.
func NewMatrixFromSequences(seqs [][]float64, d Measure, opt MatrixOptions) *Matrix {
	return NewMatrix(len(seqs), func(i, j int) float64 {
		return d.Distance(seqs[i], seqs[j])
	}, opt)
}

// N returns the population size.
func (m *Matrix) N() int { return m.n }

// At returns the distance between items i and j (0 when i == j).
func (m *Matrix) At(i, j int) float64 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	return m.vals[m.tri(i, j)]
}

// tri maps upper-triangle coordinates (i < j) to flat storage.
func (m *Matrix) tri(i, j int) int {
	return i*(2*m.n-i-1)/2 + j - i - 1
}

// RowSum returns the summed distance from item i to every other item — the
// centroid-selection quantity of Sections 4.2 and 4.3.
func (m *Matrix) RowSum(i int) float64 {
	var s float64
	for j := 0; j < m.n; j++ {
		s += m.At(i, j)
	}
	return s
}

// Medoid returns the index minimizing RowSum (ties to the lowest index),
// or -1 for an empty matrix.
func (m *Matrix) Medoid() int {
	best := -1
	var bestSum float64
	for i := 0; i < m.n; i++ {
		if s := m.RowSum(i); best < 0 || s < bestSum {
			best, bestSum = i, s
		}
	}
	return best
}
