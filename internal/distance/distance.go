// Package distance implements the request differencing measures of
// Section 4.1: the L1 distance with an unequal-length penalty (Equation 2),
// classic dynamic time warping (Equation 3), the paper's enhancement of DTW
// with an additional penalty on asynchronous warp steps, Levenshtein string
// edit distance over system call sequences (the Magpie approach), and the
// difference of whole-request average metric values (the paper's earlier
// signature work).
package distance

import (
	"math"
	"sort"
	"sync"
)

// Measure quantifies the difference between two requests' time-ordered
// metric value sequences (resampled to fixed-length periods).
type Measure interface {
	// Distance returns a non-negative dissimilarity; 0 for identical
	// sequences.
	Distance(x, y []float64) float64
	// Name identifies the measure in reports.
	Name() string
}

// L1 is Equation 2: element-wise absolute difference over the common
// prefix plus Penalty for each unmatched trailing element. The paper sets
// the penalty to a peak-level (99-percentile) metric difference for the
// application.
type L1 struct {
	Penalty float64
}

// Name implements Measure.
func (L1) Name() string { return "L1" }

// Distance implements Measure. Complexity O(max(m,n)).
func (d L1) Distance(x, y []float64) float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += math.Abs(x[i] - y[i])
	}
	return sum + float64(len(x)+len(y)-2*n)*d.Penalty
}

// DTW is the dynamic time warping distance (Equation 3): the minimum, over
// all valid warp paths, of the summed metric differences at the two
// pointers, where a warp step advances both pointers (synchronous) or one
// (asynchronous). AsyncPenalty, when positive, is added per asynchronous
// step — the paper's enhancement that prevents under-estimating request
// differences through no-cost time shifting. Complexity O(m·n), or O(m·w)
// when a Sakoe-Chiba band of width w constrains the warp path.
type DTW struct {
	AsyncPenalty float64
	// Window, when positive, restricts warp paths to a Sakoe-Chiba band
	// |i−j| ≤ max(Window, |m−n|) around the diagonal, cutting the cost per
	// pair from O(m·n) to O(m·w). Paths outside the band are forbidden, so
	// the result is an upper bound on the unconstrained distance — and
	// exactly equal to it whenever the band covers the full grid
	// (Window ≥ max(m,n)−1). Zero or negative means unconstrained.
	Window int
}

// Name implements Measure.
func (d DTW) Name() string {
	if d.AsyncPenalty > 0 {
		return "DTW+asynchrony-penalty"
	}
	return "DTW"
}

// dtwScratch holds the two rolling DP rows so repeated Distance calls (the
// pairwise-matrix inner loop) allocate nothing.
type dtwScratch struct {
	prev, cur []float64
}

var dtwPool = sync.Pool{New: func() any { return new(dtwScratch) }}

func (s *dtwScratch) rows(n int) (prev, cur []float64) {
	if cap(s.prev) < n {
		s.prev = make([]float64, n)
		s.cur = make([]float64, n)
	}
	return s.prev[:n:n], s.cur[:n:n]
}

// Distance implements Measure.
func (d DTW) Distance(x, y []float64) float64 {
	m, n := len(x), len(y)
	switch {
	case m == 0 && n == 0:
		return 0
	case m == 0:
		// Every element of the non-empty side is consumed by an
		// asynchronous step against nothing: pay its magnitude (the metric
		// difference against an implicit zero) plus the per-step penalty,
		// consistent with the warp-path definition. Without the magnitude
		// term a zero penalty would declare any request identical to the
		// empty sequence.
		return sumAbs(y) + float64(n)*d.AsyncPenalty
	case n == 0:
		return sumAbs(x) + float64(m)*d.AsyncPenalty
	}
	// dp[j] holds the best path cost reaching (i, j); rolling rows keep
	// memory O(n). The rows come from a pool so the matrix engine's inner
	// loop allocates nothing.
	s := dtwPool.Get().(*dtwScratch)
	prev, cur := s.rows(n)
	if d.Window > 0 {
		v := d.banded(x, y, prev, cur)
		dtwPool.Put(s)
		return v
	}
	prev[0] = math.Abs(x[0] - y[0])
	for j := 1; j < n; j++ {
		prev[j] = prev[j-1] + math.Abs(x[0]-y[j]) + d.AsyncPenalty
	}
	for i := 1; i < m; i++ {
		cur[0] = prev[0] + math.Abs(x[i]-y[0]) + d.AsyncPenalty
		for j := 1; j < n; j++ {
			diff := math.Abs(x[i] - y[j])
			best := prev[j-1] + diff // synchronous step
			if alt := prev[j] + diff + d.AsyncPenalty; alt < best {
				best = alt // advance x only
			}
			if alt := cur[j-1] + diff + d.AsyncPenalty; alt < best {
				best = alt // advance y only
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	v := prev[n-1]
	dtwPool.Put(s)
	return v
}

// banded fills only the Sakoe-Chiba band of each DP row. Cells outside the
// band are unreachable; an +Inf sentinel just past each row's band keeps
// the next row's out-of-band reads from seeing stale values. Within the
// band the arithmetic and evaluation order match the unconstrained loop
// exactly, so a band covering the whole grid is bit-identical to it.
func (d DTW) banded(x, y, prev, cur []float64) float64 {
	m, n := len(x), len(y)
	w := d.Window
	if diff := m - n; diff > w || -diff > w {
		// A warp path must bridge the length difference; widen to keep one
		// reachable.
		if diff < 0 {
			diff = -diff
		}
		w = diff
	}
	hi := w
	if hi > n-1 {
		hi = n - 1
	}
	prev[0] = math.Abs(x[0] - y[0])
	for j := 1; j <= hi; j++ {
		prev[j] = prev[j-1] + math.Abs(x[0]-y[j]) + d.AsyncPenalty
	}
	if hi+1 < n {
		prev[hi+1] = math.Inf(1)
	}
	for i := 1; i < m; i++ {
		lo := i - w
		if lo < 0 {
			lo = 0
		}
		hi = i + w
		if hi > n-1 {
			hi = n - 1
		}
		j := lo
		if lo == 0 {
			cur[0] = prev[0] + math.Abs(x[i]-y[0]) + d.AsyncPenalty
			j = 1
		} else {
			// Left band edge: the advance-y predecessor (i, lo−1) is
			// outside the band.
			diff := math.Abs(x[i] - y[lo])
			best := prev[lo-1] + diff
			if alt := prev[lo] + diff + d.AsyncPenalty; alt < best {
				best = alt
			}
			cur[lo] = best
			j = lo + 1
		}
		for ; j <= hi; j++ {
			diff := math.Abs(x[i] - y[j])
			best := prev[j-1] + diff // synchronous step
			if alt := prev[j] + diff + d.AsyncPenalty; alt < best {
				best = alt // advance x only
			}
			if alt := cur[j-1] + diff + d.AsyncPenalty; alt < best {
				best = alt // advance y only
			}
			cur[j] = best
		}
		if hi+1 < n {
			cur[hi+1] = math.Inf(1)
		}
		prev, cur = cur, prev
	}
	return prev[n-1]
}

func sumAbs(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += math.Abs(v)
	}
	return s
}

// AverageDiff compares only whole-request average metric values — the
// paper's prior average-value request signatures [27]. Inputs are treated
// as equal-length-period sequences whose mean is the request average.
type AverageDiff struct{}

// Name implements Measure.
func (AverageDiff) Name() string { return "average-metric" }

// Distance implements Measure.
func (AverageDiff) Distance(x, y []float64) float64 {
	return math.Abs(mean(x) - mean(y))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Levenshtein is the string edit distance between two system call name
// sequences: the minimum number of insertions, deletions, or substitutions
// transforming one into the other (the Magpie software-event approach).
func Levenshtein(a, b []string) int {
	m, n := len(a), len(b)
	if m == 0 {
		return n
	}
	if n == 0 {
		return m
	}
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	for j := 0; j <= n; j++ {
		prev[j] = j
	}
	for i := 1; i <= m; i++ {
		cur[0] = i
		for j := 1; j <= n; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := prev[j-1] + cost // substitute (or match)
			if alt := prev[j] + 1; alt < best {
				best = alt // delete from a
			}
			if alt := cur[j-1] + 1; alt < best {
				best = alt // insert into a
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// PeakPenalty computes the paper's penalty setting: the 99-percentile of
// the distribution of metric differences at two arbitrary points of
// application execution, estimated from the pooled resampled values of a
// request population by pairing values at a fixed stride.
func PeakPenalty(sequences [][]float64) float64 {
	var diffs []float64
	pool := make([]float64, 0, 256)
	for _, s := range sequences {
		pool = append(pool, s...)
	}
	if len(pool) < 2 {
		return 0
	}
	// Pair each value with one at a large co-prime stride: a deterministic
	// stand-in for "two arbitrary points". The stride must be co-prime with
	// the pool length or i → (i+stride) mod len cycles over a strict subset
	// of offsets (len 6, stride 4 visits only even gaps); start from the
	// half-length point and take the nearest co-prime stride.
	stride := nearestCoprime(len(pool)/2+1, len(pool))
	for i := range pool {
		j := (i + stride) % len(pool)
		diffs = append(diffs, math.Abs(pool[i]-pool[j]))
	}
	return percentile(diffs, 99)
}

// nearestCoprime returns the stride closest to want in [1, n) that is
// co-prime with n (ties prefer the smaller stride). n must be ≥ 2.
func nearestCoprime(want, n int) int {
	if want < 1 {
		want = 1
	}
	if want >= n {
		want = n - 1
	}
	for d := 0; ; d++ {
		if lo := want - d; lo >= 1 && gcd(lo, n) == 1 {
			return lo
		}
		if hi := want + d; hi < n && gcd(hi, n) == 1 {
			return hi
		}
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
