package distance

import (
	"math/rand"
	"testing"
)

func benchSeq(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64() * 5
	}
	return out
}

func benchNames(n int, seed int64) []string {
	words := []string{"read", "write", "poll", "stat", "open", "lseek", "writev", "sendto"}
	r := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		out[i] = words[r.Intn(len(words))]
	}
	return out
}

func BenchmarkL1_100(b *testing.B) {
	x, y := benchSeq(100, 1), benchSeq(100, 2)
	d := L1{Penalty: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Distance(x, y)
	}
}

func BenchmarkDTW_100(b *testing.B) {
	x, y := benchSeq(100, 1), benchSeq(100, 2)
	d := DTW{AsyncPenalty: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Distance(x, y)
	}
}

func BenchmarkDTW_1000(b *testing.B) {
	x, y := benchSeq(1000, 1), benchSeq(1000, 2)
	d := DTW{AsyncPenalty: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Distance(x, y)
	}
}

func BenchmarkDTWBanded_1000(b *testing.B) {
	x, y := benchSeq(1000, 1), benchSeq(1000, 2)
	d := DTW{AsyncPenalty: 0.5, Window: 50}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Distance(x, y)
	}
}

func BenchmarkMatrix100x64(b *testing.B) {
	seqs := make([][]float64, 100)
	for i := range seqs {
		seqs[i] = benchSeq(64, int64(i))
	}
	d := DTW{AsyncPenalty: 0.5}
	for _, bench := range []struct {
		name string
		opt  MatrixOptions
	}{
		{"serial", MatrixOptions{Workers: 1}},
		{"parallel", MatrixOptions{}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				NewMatrixFromSequences(seqs, d, bench.opt)
			}
		})
	}
}

func BenchmarkLevenshtein_300(b *testing.B) {
	x, y := benchNames(300, 1), benchNames(300, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Levenshtein(x, y)
	}
}

func BenchmarkPeakPenalty(b *testing.B) {
	seqs := make([][]float64, 50)
	for i := range seqs {
		seqs[i] = benchSeq(40, int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PeakPenalty(seqs)
	}
}
