package distance_test

import (
	"fmt"

	"repro/internal/distance"
)

// The motivating case of the paper's Figure 6: two inherently similar
// requests whose executions drift apart by one period. The L1 distance
// over-estimates their difference; plain dynamic time warping absorbs the
// shift for free (under-estimating); the paper's asynchrony penalty sits
// between the two.
func Example() {
	a := []float64{1, 1, 5, 1, 1, 1}
	b := []float64{1, 1, 1, 5, 1, 1} // the same peak, shifted one period

	l1 := distance.L1{Penalty: 4}
	dtw := distance.DTW{}
	dtwPen := distance.DTW{AsyncPenalty: 0.5}

	fmt.Printf("L1:          %.1f\n", l1.Distance(a, b))
	fmt.Printf("DTW:         %.1f\n", dtw.Distance(a, b))
	fmt.Printf("DTW+penalty: %.1f\n", dtwPen.Distance(a, b))
	// Output:
	// L1:          8.0
	// DTW:         0.0
	// DTW+penalty: 1.0
}

func ExampleLevenshtein() {
	// Magpie-style software-event differencing over system call names.
	a := []string{"poll", "read", "stat", "open", "writev"}
	b := []string{"poll", "read", "open", "writev", "shutdown"}
	fmt.Println(distance.Levenshtein(a, b))
	// Output: 2
}
