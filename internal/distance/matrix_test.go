package distance

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func randSeqs(seed int64, n, minLen, maxLen int) [][]float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		out[i] = randSeq(r, minLen+r.Intn(maxLen-minLen+1))
	}
	return out
}

func TestMatrixParallelEqualsSerial(t *testing.T) {
	// The golden-equality guarantee: parallelism changes when a cell is
	// computed, never what. Every worker/block configuration must produce
	// a matrix bit-identical to the serial fill.
	seqs := randSeqs(1, 60, 5, 40)
	d := DTW{AsyncPenalty: 0.5}
	serial := NewMatrixFromSequences(seqs, d, MatrixOptions{Workers: 1})
	for _, opt := range []MatrixOptions{
		{},
		{Workers: 2},
		{Workers: 7, RowBlock: 1},
		{Workers: 16, RowBlock: 5},
		{Workers: 100},
	} {
		par := NewMatrixFromSequences(seqs, d, opt)
		if len(par.vals) != len(serial.vals) {
			t.Fatalf("opt %+v: %d cells vs %d", opt, len(par.vals), len(serial.vals))
		}
		for i := range par.vals {
			if par.vals[i] != serial.vals[i] {
				t.Fatalf("opt %+v: cell %d = %v, serial %v", opt, i, par.vals[i], serial.vals[i])
			}
		}
	}
}

func TestMatrixMatchesDirectDistance(t *testing.T) {
	seqs := randSeqs(2, 25, 3, 30)
	for _, d := range []Measure{DTW{}, DTW{AsyncPenalty: 0.7}, DTW{AsyncPenalty: 0.7, Window: 4}, L1{Penalty: 2}} {
		m := NewMatrixFromSequences(seqs, d, MatrixOptions{Workers: 4})
		for i := range seqs {
			for j := range seqs {
				want := 0.0
				if i != j {
					want = d.Distance(seqs[i], seqs[j])
				}
				if got := m.At(i, j); got != want {
					t.Fatalf("%s At(%d,%d) = %v, want %v", d.Name(), i, j, got, want)
				}
			}
		}
	}
}

func TestMatrixSymmetryAndDiagonal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(30)
		m := NewMatrix(n, func(i, j int) float64 { return float64(i*31 + j) }, MatrixOptions{Workers: 1 + r.Intn(8)})
		if m.N() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if m.At(i, i) != 0 {
				return false
			}
			for j := i + 1; j < n; j++ {
				if m.At(i, j) != m.At(j, i) || m.At(i, j) != float64(i*31+j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMatrixCallsEachPairOnce(t *testing.T) {
	const n = 40
	var calls [n * n]atomic.Int32
	pair := func(i, j int) float64 {
		calls[i*n+j].Add(1)
		return 1
	}
	NewMatrix(n, PairFunc(pair), MatrixOptions{Workers: 8, RowBlock: 3})
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := int32(0)
			if i < j {
				want = 1
			}
			if got := calls[i*n+j].Load(); got != want {
				t.Fatalf("pair(%d,%d) called %d times, want %d", i, j, got, want)
			}
		}
	}
}

func TestMatrixTinyPopulations(t *testing.T) {
	for n := 0; n < 2; n++ {
		m := NewMatrix(n, func(i, j int) float64 { panic("no pairs to compute") }, MatrixOptions{})
		if m.N() != n {
			t.Fatalf("N() = %d, want %d", m.N(), n)
		}
	}
	if v := NewMatrix(1, nil, MatrixOptions{}).At(0, 0); v != 0 {
		t.Fatalf("single-item self distance = %v", v)
	}
}

func TestMatrixRowSumAndMedoid(t *testing.T) {
	// 1-D points: the medoid of {0, 1, 2, 10} is 1 (sums 13, 11, 11→ tie
	// broken low? sums: 0→13, 1→11, 2→11, 10→27; tie between 1 and 2 →
	// lowest index wins).
	pts := []float64{0, 1, 2, 10}
	m := NewMatrix(len(pts), func(i, j int) float64 { return math.Abs(pts[i] - pts[j]) }, MatrixOptions{})
	if s := m.RowSum(0); s != 13 {
		t.Fatalf("RowSum(0) = %v, want 13", s)
	}
	if got := m.Medoid(); got != 1 {
		t.Fatalf("Medoid() = %d, want 1", got)
	}
	empty := NewMatrix(0, nil, MatrixOptions{})
	if empty.Medoid() != -1 {
		t.Fatal("empty matrix should have no medoid")
	}
}

// TestMatrixConcurrentFillRace exercises the pool under the race detector:
// many workers, small blocks, a pair function reading shared slices.
func TestMatrixConcurrentFillRace(t *testing.T) {
	seqs := randSeqs(3, 80, 10, 30)
	d := DTW{AsyncPenalty: 0.3}
	m := NewMatrixFromSequences(seqs, d, MatrixOptions{Workers: 16, RowBlock: 1})
	// Concurrent readers are safe on the immutable result.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < m.N(); i++ {
			m.RowSum(i)
		}
	}()
	if med := m.Medoid(); med < 0 || med >= m.N() {
		t.Fatalf("medoid %d out of range", med)
	}
	<-done
}

// TestMatrixFillReuse: refilling a matrix in place must produce results
// identical to a fresh NewMatrix, for shrinking and growing populations,
// and must not allocate once the storage has grown.
func TestMatrixFillReuse(t *testing.T) {
	seqs := randSeqs(9, 60, 10, 30)
	d := L1{}
	pairOver := func(s [][]float64) PairFunc {
		return func(i, j int) float64 { return d.Distance(s[i], s[j]) }
	}
	var m Matrix
	for _, n := range []int{60, 20, 1, 0, 45, 60} {
		m.Fill(n, pairOver(seqs), MatrixOptions{Workers: 1})
		want := NewMatrix(n, pairOver(seqs), MatrixOptions{Workers: 1})
		if m.N() != want.N() {
			t.Fatalf("n=%d: N=%d, want %d", n, m.N(), want.N())
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if m.At(i, j) != want.At(i, j) {
					t.Fatalf("n=%d: At(%d,%d)=%v, want %v", n, i, j, m.At(i, j), want.At(i, j))
				}
			}
		}
	}
	pair := pairOver(seqs)
	allocs := testing.AllocsPerRun(20, func() {
		m.Fill(60, pair, MatrixOptions{Workers: 1})
	})
	if allocs != 0 {
		t.Fatalf("serial refill allocates %v per run, want 0", allocs)
	}
}
