package distance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSeq(r *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64() * 5
	}
	return out
}

func TestL1Basics(t *testing.T) {
	d := L1{Penalty: 10}
	if got := d.Distance([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("identical L1 = %v", got)
	}
	if got := d.Distance([]float64{1, 2}, []float64{2, 4}); got != 3 {
		t.Fatalf("L1 = %v, want 3", got)
	}
	// Unequal lengths: |m-n| × penalty added.
	if got := d.Distance([]float64{1, 2}, []float64{1, 2, 9, 9}); got != 20 {
		t.Fatalf("length penalty L1 = %v, want 20", got)
	}
}

func TestL1OverestimatesShiftedSequences(t *testing.T) {
	// The motivating case of Figure 6: a one-slot shift makes L1 large
	// while DTW stays small.
	x := []float64{1, 1, 5, 1, 1, 1}
	y := []float64{1, 1, 1, 5, 1, 1}
	l1 := L1{Penalty: 4}.Distance(x, y)
	dtw := DTW{}.Distance(x, y)
	if dtw >= l1 {
		t.Fatalf("DTW (%v) should be below L1 (%v) for shifted peaks", dtw, l1)
	}
	if l1 != 8 {
		t.Fatalf("L1 of shifted peak = %v, want 8", l1)
	}
	if dtw != 0 {
		t.Fatalf("plain DTW of shifted peak = %v, want 0 (free time shifting)", dtw)
	}
}

func TestDTWAsynchronyPenaltyRestoresCost(t *testing.T) {
	x := []float64{1, 1, 5, 1, 1, 1}
	y := []float64{1, 1, 1, 5, 1, 1}
	free := DTW{}.Distance(x, y)
	pen := DTW{AsyncPenalty: 0.5}.Distance(x, y)
	if pen <= free {
		t.Fatalf("asynchrony penalty should raise shifted-sequence cost: %v vs %v", pen, free)
	}
	// But still below L1's over-estimate.
	if l1 := (L1{Penalty: 4}).Distance(x, y); pen >= l1 {
		t.Fatalf("penalized DTW (%v) should stay below L1 (%v)", pen, l1)
	}
}

func TestDTWIdentityAndSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randSeq(r, 1+r.Intn(30))
		y := randSeq(r, 1+r.Intn(30))
		for _, d := range []Measure{DTW{}, DTW{AsyncPenalty: 0.7}, L1{Penalty: 2}} {
			if d.Distance(x, x) != 0 {
				return false
			}
			if math.Abs(d.Distance(x, y)-d.Distance(y, x)) > 1e-9 {
				return false
			}
			if d.Distance(x, y) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDTWLowerBoundsL1Property(t *testing.T) {
	// With zero penalties, DTW over equal-length sequences never exceeds
	// the plain element-wise L1 (the synchronous path is always available).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		x, y := randSeq(r, n), randSeq(r, n)
		return DTW{}.Distance(x, y) <= L1{}.Distance(x, y)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDTWEmptySequences(t *testing.T) {
	// The empty side pays each unmatched element's magnitude plus the
	// per-step asynchrony penalty.
	d := DTW{AsyncPenalty: 2}
	if got := d.Distance(nil, nil); got != 0 {
		t.Fatalf("empty-empty = %v", got)
	}
	if got := d.Distance(nil, []float64{1, 2}); got != 7 {
		t.Fatalf("empty-vs-2 = %v, want 1+2 + 2×penalty = 7", got)
	}
	if got := d.Distance([]float64{1}, nil); got != 3 {
		t.Fatalf("1-vs-empty = %v, want 1 + penalty = 3", got)
	}
}

func TestDTWEmptyVsNonEmptyNeverFree(t *testing.T) {
	// Regression: with AsyncPenalty == 0 the old base case returned 0,
	// declaring any request identical to the empty sequence.
	seq := []float64{1.5, 0.5, 3}
	for _, d := range []DTW{{}, {AsyncPenalty: 0.5}} {
		want := 5.0 + 3*d.AsyncPenalty
		if got := d.Distance(nil, seq); got != want {
			t.Errorf("%s empty-vs-seq = %v, want %v", d.Name(), got, want)
		}
		if got := d.Distance(seq, nil); got != want {
			t.Errorf("%s seq-vs-empty = %v, want %v", d.Name(), got, want)
		}
	}
}

func TestDTWBandEqualsExactWhenWindowSpansGrid(t *testing.T) {
	// A band covering the whole warp grid must reproduce the
	// unconstrained distance bit for bit (same arithmetic, same order).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randSeq(r, 1+r.Intn(25))
		y := randSeq(r, 1+r.Intn(25))
		pen := float64(r.Intn(3)) * 0.4
		w := len(x)
		if len(y) > w {
			w = len(y)
		}
		exact := DTW{AsyncPenalty: pen}.Distance(x, y)
		banded := DTW{AsyncPenalty: pen, Window: w}.Distance(x, y)
		return banded == exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDTWBandUpperBoundsExact(t *testing.T) {
	// A narrow band forbids warp paths, so it can only over-estimate, and
	// widening the band is monotone non-increasing down to the exact value.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randSeq(r, 2+r.Intn(20))
		y := randSeq(r, 2+r.Intn(20))
		exact := DTW{AsyncPenalty: 0.3}.Distance(x, y)
		prevV := math.Inf(1)
		for w := 1; w <= len(x)+len(y); w++ {
			v := DTW{AsyncPenalty: 0.3, Window: w}.Distance(x, y)
			if v < exact-1e-9 || v > prevV+1e-9 {
				return false
			}
			prevV = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDTWBandShiftedPeak(t *testing.T) {
	// Window 1 still absorbs a one-slot shift; window 0 means unbanded.
	x := []float64{1, 1, 5, 1, 1, 1}
	y := []float64{1, 1, 1, 5, 1, 1}
	if got := (DTW{Window: 1}).Distance(x, y); got != 0 {
		t.Fatalf("window-1 DTW of one-slot shift = %v, want 0", got)
	}
	if got := (DTW{}).Distance(x, y); got != 0 {
		t.Fatalf("unbanded DTW = %v, want 0", got)
	}
}

func TestAverageDiff(t *testing.T) {
	d := AverageDiff{}
	if got := d.Distance([]float64{1, 3}, []float64{2, 2}); got != 0 {
		t.Fatalf("equal means = %v", got)
	}
	if got := d.Distance([]float64{1, 1}, []float64{3, 3}); got != 2 {
		t.Fatalf("AverageDiff = %v", got)
	}
	// Average-based differencing cannot see variation patterns: a flat and
	// a spiky sequence with equal means are "identical".
	flat := []float64{2, 2, 2, 2}
	spiky := []float64{0, 4, 0, 4}
	if d.Distance(flat, spiky) != 0 {
		t.Fatal("average diff should be blind to variation patterns")
	}
	if (DTW{}).Distance(flat, spiky) == 0 {
		t.Fatal("DTW should see the variation difference")
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b []string
		want int
	}{
		{nil, nil, 0},
		{[]string{"read"}, nil, 1},
		{nil, []string{"read", "write"}, 2},
		{[]string{"read", "write"}, []string{"read", "write"}, 0},
		{[]string{"read", "write"}, []string{"read", "stat"}, 1},
		{[]string{"a", "b", "c"}, []string{"b", "c", "d"}, 2},
		{[]string{"poll", "read", "writev"}, []string{"read", "writev", "poll"}, 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinTriangleProperty(t *testing.T) {
	words := []string{"read", "write", "open", "poll"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() []string {
			s := make([]string, r.Intn(8))
			for i := range s {
				s[i] = words[r.Intn(len(words))]
			}
			return s
		}
		a, b, c := mk(), mk(), mk()
		ab, bc, ac := Levenshtein(a, b), Levenshtein(b, c), Levenshtein(a, c)
		return ac <= ab+bc && ab == Levenshtein(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPeakPenalty(t *testing.T) {
	// Constant sequences have zero differences everywhere.
	if got := PeakPenalty([][]float64{{2, 2}, {2, 2, 2}}); got != 0 {
		t.Fatalf("constant PeakPenalty = %v", got)
	}
	// A bimodal population's 99th-percentile pairwise difference is near
	// the mode gap.
	seqs := [][]float64{{0, 0, 0, 10, 10, 0, 0, 10}}
	got := PeakPenalty(seqs)
	if got < 5 || got > 10 {
		t.Fatalf("bimodal PeakPenalty = %v, want near 10", got)
	}
	if PeakPenalty(nil) != 0 {
		t.Fatal("empty PeakPenalty should be 0")
	}
}

func TestNearestCoprimeAwkwardLengths(t *testing.T) {
	// The old stride len/2+1 shares a factor with the pool length on
	// awkward lengths (len 6 → stride 4), cycling over a subset of pairs.
	for n := 2; n <= 64; n++ {
		s := nearestCoprime(n/2+1, n)
		if s < 1 || s >= n {
			t.Fatalf("n=%d: stride %d out of range", n, s)
		}
		if gcd(s, n) != 1 {
			t.Fatalf("n=%d: stride %d not co-prime", n, s)
		}
		// A co-prime stride makes i → (i+s) mod n a single full cycle.
		seen := make([]bool, n)
		i := 0
		for range seen {
			if seen[i] {
				t.Fatalf("n=%d stride %d revisits %d before covering", n, s, i)
			}
			seen[i] = true
			i = (i + s) % n
		}
	}
	if got := nearestCoprime(4, 6); got != 5 {
		t.Fatalf("nearestCoprime(4,6) = %d, want 5", got)
	}
}

func TestPeakPenaltyCoversAllOffsets(t *testing.T) {
	// Pool of length 6 where even-offset pairs all differ by 0 and the
	// co-prime stride is needed to see any difference: [0 1 0 1 0 1]. The
	// old stride 4 (even) paired equal values only → penalty 0.
	got := PeakPenalty([][]float64{{0, 1, 0}, {1, 0, 1}})
	if got != 1 {
		t.Fatalf("alternating-pool PeakPenalty = %v, want 1", got)
	}
}

func TestMeasureNames(t *testing.T) {
	if (L1{}).Name() != "L1" ||
		(DTW{}).Name() != "DTW" ||
		(DTW{AsyncPenalty: 1}).Name() != "DTW+asynchrony-penalty" ||
		(AverageDiff{}).Name() != "average-metric" {
		t.Fatal("measure names wrong")
	}
}
