// Package stages implements the staged-execution view the paper's related
// work discusses (Section 6): where SEDA requires programmers to mark
// request stages and Capriccio needs compiler support, the OS-level
// characterization of request behavior variations can transparently
// identify potential stage transitions and annotate each stage with its
// hardware execution characteristics.
//
// Segmentation is bottom-up: the resampled metric series starts as
// one-bucket segments which are greedily merged in order of least
// information loss (length-weighted variance increase), until either the
// target segment count is reached or no merge stays below the homogeneity
// tolerance. This respects the paper's observation that server requests do
// not form long stable phases — segments can be short, and a tolerance of 0
// simply returns the finest segmentation.
package stages

import (
	"fmt"
	"math"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Stage is one identified homogeneous stretch of a request's execution.
type Stage struct {
	// StartIns and EndIns delimit the stage in request progress
	// (application instructions).
	StartIns, EndIns float64
	// Mean is the stage's average metric value.
	Mean float64
	// Spread is the length-weighted standard deviation within the stage.
	Spread float64
}

// Length returns the stage's instruction length.
func (s Stage) Length() float64 { return s.EndIns - s.StartIns }

func (s Stage) String() string {
	return fmt.Sprintf("[%.0f,%.0f) mean=%.3f sd=%.3f", s.StartIns, s.EndIns, s.Mean, s.Spread)
}

// Config tunes the segmentation.
type Config struct {
	// BucketIns is the resampling granularity.
	BucketIns float64
	// MaxStages caps the number of stages (0 = no cap).
	MaxStages int
	// Tolerance is the maximum relative within-stage standard deviation
	// (spread/mean) a merge may produce; merges beyond it stop the
	// process. 0 means merge only exactly-equal neighbors.
	Tolerance float64
}

// segment is the internal mergeable unit.
type segment struct {
	start, end float64 // bucket index range [start, end)
	n          float64 // total length (buckets)
	sum        float64 // Σ value·len
	sumsq      float64 // Σ value²·len
}

func (s segment) mean() float64 { return s.sum / s.n }

func (s segment) variance() float64 {
	m := s.mean()
	v := s.sumsq/s.n - m*m
	if v < 0 {
		return 0
	}
	return v
}

// cost is the segment's total squared deviation (length-weighted).
func (s segment) cost() float64 { return s.variance() * s.n }

func merge(a, b segment) segment {
	return segment{
		start: a.start, end: b.end,
		n: a.n + b.n, sum: a.sum + b.sum, sumsq: a.sumsq + b.sumsq,
	}
}

// Identify segments a request's metric-m series into stages.
func Identify(tr *trace.Request, m metrics.Metric, cfg Config) []Stage {
	if cfg.BucketIns <= 0 {
		panic("stages: Config.BucketIns must be positive")
	}
	values := tr.Resampled(m, cfg.BucketIns)
	return identifyValues(values, cfg)
}

// IdentifyValues segments an already-resampled sequence (exposed for
// synthetic inputs and tests).
func IdentifyValues(values []float64, cfg Config) []Stage {
	if cfg.BucketIns <= 0 {
		cfg.BucketIns = 1
	}
	return identifyValues(values, cfg)
}

func identifyValues(values []float64, cfg Config) []Stage {
	if len(values) == 0 {
		return nil
	}
	segs := make([]segment, len(values))
	for i, v := range values {
		segs[i] = segment{start: float64(i), end: float64(i + 1), n: 1, sum: v, sumsq: v * v}
	}
	target := cfg.MaxStages
	if target <= 0 {
		target = 1
	}
	for len(segs) > 1 {
		// Find the cheapest adjacent merge.
		best, bestInc := -1, math.Inf(1)
		for i := 0; i+1 < len(segs); i++ {
			inc := merge(segs[i], segs[i+1]).cost() - segs[i].cost() - segs[i+1].cost()
			if inc < bestInc {
				best, bestInc = i, inc
			}
		}
		cand := merge(segs[best], segs[best+1])
		withinTarget := cfg.MaxStages > 0 && len(segs) > cfg.MaxStages
		if !withinTarget {
			// Beyond the cap (or uncapped): merge only while homogeneity
			// holds.
			mean := cand.mean()
			rel := math.Inf(1)
			if mean != 0 {
				rel = math.Sqrt(cand.variance()) / math.Abs(mean)
			} else if cand.variance() == 0 {
				rel = 0
			}
			if rel > cfg.Tolerance {
				break
			}
		}
		segs[best] = cand
		segs = append(segs[:best+1], segs[best+2:]...)
	}
	out := make([]Stage, len(segs))
	for i, s := range segs {
		out[i] = Stage{
			StartIns: s.start * cfg.BucketIns,
			EndIns:   s.end * cfg.BucketIns,
			Mean:     s.mean(),
			Spread:   math.Sqrt(s.variance()),
		}
	}
	return out
}

// Annotate attaches each stage's characteristics for every derived metric,
// producing the transparent stage annotation the paper envisions.
type Annotated struct {
	Stage
	// Values holds each metric's stage mean.
	Values map[metrics.Metric]float64
}

// AnnotateAll identifies stages on a primary metric and annotates each with
// the stage means of all derived metrics.
func AnnotateAll(tr *trace.Request, primary metrics.Metric, cfg Config) []Annotated {
	sts := Identify(tr, primary, cfg)
	out := make([]Annotated, len(sts))
	series := map[metrics.Metric][]float64{}
	for _, m := range metrics.AllMetrics() {
		series[m] = tr.Resampled(m, cfg.BucketIns)
	}
	for i, st := range sts {
		a := Annotated{Stage: st, Values: map[metrics.Metric]float64{}}
		lo := int(st.StartIns / cfg.BucketIns)
		hi := int(st.EndIns / cfg.BucketIns)
		for _, m := range metrics.AllMetrics() {
			vals := series[m]
			if lo >= len(vals) {
				continue
			}
			end := hi
			if end > len(vals) {
				end = len(vals)
			}
			var sum float64
			for _, v := range vals[lo:end] {
				sum += v
			}
			if end > lo {
				a.Values[m] = sum / float64(end-lo)
			}
		}
		out[i] = a
	}
	return out
}

// TransitionsNear reports how many identified stage boundaries fall within
// tol instructions of the given reference positions — used to validate
// segmentation against known phase programs.
func TransitionsNear(stages []Stage, refs []float64, tol float64) int {
	hits := 0
	for _, r := range refs {
		for _, s := range stages[1:] { // boundaries are stage starts
			if math.Abs(s.StartIns-r) <= tol {
				hits++
				break
			}
		}
	}
	return hits
}
