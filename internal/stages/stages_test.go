package stages

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// synth builds a value sequence from (length, level) runs.
func synth(runs ...[2]float64) []float64 {
	var out []float64
	for _, r := range runs {
		for i := 0; i < int(r[0]); i++ {
			out = append(out, r[1])
		}
	}
	return out
}

func TestIdentifyCleanSteps(t *testing.T) {
	vals := synth([2]float64{10, 1}, [2]float64{10, 5}, [2]float64{10, 2})
	st := IdentifyValues(vals, Config{BucketIns: 100, MaxStages: 3})
	if len(st) != 3 {
		t.Fatalf("stages = %d, want 3: %v", len(st), st)
	}
	wantMeans := []float64{1, 5, 2}
	for i, s := range st {
		if math.Abs(s.Mean-wantMeans[i]) > 1e-9 {
			t.Fatalf("stage %d mean = %v, want %v", i, s.Mean, wantMeans[i])
		}
		if s.Spread != 0 {
			t.Fatalf("clean stage has spread %v", s.Spread)
		}
	}
	// Boundaries at 1000 and 2000 instructions.
	if st[1].StartIns != 1000 || st[2].StartIns != 2000 {
		t.Fatalf("boundaries at %v/%v", st[1].StartIns, st[2].StartIns)
	}
}

func TestIdentifyNoisySteps(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var vals []float64
	for _, level := range []float64{1, 4, 1.5} {
		for i := 0; i < 20; i++ {
			vals = append(vals, level+r.NormFloat64()*0.1)
		}
	}
	st := IdentifyValues(vals, Config{BucketIns: 1, MaxStages: 3})
	if len(st) != 3 {
		t.Fatalf("stages = %d, want 3", len(st))
	}
	refs := []float64{20, 40}
	if hits := TransitionsNear(st, refs, 2); hits != 2 {
		t.Fatalf("recovered %d/2 transitions: %v", hits, st)
	}
}

func TestToleranceStopsMerging(t *testing.T) {
	vals := synth([2]float64{5, 1}, [2]float64{5, 10})
	// Huge tolerance merges everything.
	st := IdentifyValues(vals, Config{BucketIns: 1, Tolerance: 10})
	if len(st) != 1 {
		t.Fatalf("tolerant segmentation = %d stages", len(st))
	}
	// Tight tolerance keeps the two levels apart.
	st = IdentifyValues(vals, Config{BucketIns: 1, Tolerance: 0.05})
	if len(st) != 2 {
		t.Fatalf("tight segmentation = %d stages: %v", len(st), st)
	}
}

func TestZeroToleranceMergesEqualsOnly(t *testing.T) {
	vals := []float64{2, 2, 2, 3, 3}
	st := IdentifyValues(vals, Config{BucketIns: 1})
	if len(st) != 2 {
		t.Fatalf("stages = %d, want 2", len(st))
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if st := IdentifyValues(nil, Config{BucketIns: 1}); st != nil {
		t.Fatal("empty input should yield nil")
	}
	st := IdentifyValues([]float64{7}, Config{BucketIns: 100})
	if len(st) != 1 || st[0].Mean != 7 || st[0].Length() != 100 {
		t.Fatalf("single bucket = %+v", st)
	}
}

func TestStagesPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64() * 4
		}
		k := 1 + r.Intn(6)
		st := IdentifyValues(vals, Config{BucketIns: 10, MaxStages: k, Tolerance: 0.2})
		if len(st) == 0 {
			return false
		}
		// Stages tile [0, n*10) without gaps or overlaps.
		if st[0].StartIns != 0 || st[len(st)-1].EndIns != float64(n*10) {
			return false
		}
		for i := 1; i < len(st); i++ {
			if st[i].StartIns != st[i-1].EndIns {
				return false
			}
		}
		// Length-weighted stage means preserve the global mean.
		var got, total float64
		for _, s := range st {
			got += s.Mean * s.Length()
			total += s.Length()
		}
		var want float64
		for _, v := range vals {
			want += v * 10
		}
		return math.Abs(got-want)/total < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMaxStagesRespectedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vals := make([]float64, 5+r.Intn(50))
		for i := range vals {
			vals[i] = r.Float64()
		}
		k := 1 + r.Intn(5)
		st := IdentifyValues(vals, Config{BucketIns: 1, MaxStages: k, Tolerance: 5})
		return len(st) <= k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIdentifyFromTrace(t *testing.T) {
	tr := &trace.Request{ID: 1, App: "x", Type: "t"}
	// Two clear behavioral stages: low CPI then high CPI.
	for i := 0; i < 6; i++ {
		tr.AddPeriod(100, metrics.Counters{Cycles: 100_000, Instructions: 100_000, L2Refs: 1000, L2Misses: 100})
	}
	for i := 0; i < 6; i++ {
		tr.AddPeriod(100, metrics.Counters{Cycles: 400_000, Instructions: 100_000, L2Refs: 4000, L2Misses: 2000})
	}
	st := Identify(tr, metrics.CPI, Config{BucketIns: 100_000, MaxStages: 2})
	if len(st) != 2 {
		t.Fatalf("stages = %d", len(st))
	}
	if st[0].Mean >= st[1].Mean {
		t.Fatal("stage means not ordered with the trace")
	}
	if math.Abs(st[1].StartIns-600_000) > 100_000 {
		t.Fatalf("transition at %v, want ~600k", st[1].StartIns)
	}
}

func TestAnnotateAll(t *testing.T) {
	tr := &trace.Request{ID: 1, App: "x", Type: "t"}
	for i := 0; i < 4; i++ {
		tr.AddPeriod(100, metrics.Counters{Cycles: 150_000, Instructions: 100_000, L2Refs: 500, L2Misses: 50})
	}
	for i := 0; i < 4; i++ {
		tr.AddPeriod(100, metrics.Counters{Cycles: 350_000, Instructions: 100_000, L2Refs: 5000, L2Misses: 1500})
	}
	ann := AnnotateAll(tr, metrics.CPI, Config{BucketIns: 100_000, MaxStages: 2})
	if len(ann) != 2 {
		t.Fatalf("annotated stages = %d", len(ann))
	}
	// Each stage carries every derived metric, and the second stage is
	// hotter on all of them.
	for _, m := range metrics.AllMetrics() {
		v0, ok0 := ann[0].Values[m]
		v1, ok1 := ann[1].Values[m]
		if !ok0 || !ok1 {
			t.Fatalf("metric %v missing from annotation", m)
		}
		if v1 <= v0 {
			t.Errorf("metric %v: stage 2 (%v) not hotter than stage 1 (%v)", m, v1, v0)
		}
	}
	if ann[0].String() == "" {
		t.Error("empty stage rendering")
	}
}

func TestIdentifyPanicsOnBadBucket(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Identify with zero bucket did not panic")
		}
	}()
	Identify(&trace.Request{}, metrics.CPI, Config{})
}
