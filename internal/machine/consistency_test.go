package machine

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// TestProgressConsistentUnderCoRunnerChurn verifies the event-driven rate
// model: a core's accumulated instructions over a fixed wall time must
// equal the piecewise integral of its rates, even as co-runners come and
// go and change its rate mid-flight.
func TestProgressConsistentUnderCoRunnerChurn(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, DefaultConfig())
	victim := &Activity{BaseCPI: 1, RefsPerIns: 0.04, SoloMissRatio: 0.2, WorkingSetBytes: 8 << 20}
	m.SetActivity(0, victim)

	var expected float64
	last := sim.Time(0)
	lastRate := m.Rate(0)
	accrue := func() {
		now := eng.Now()
		expected += float64(now-last) / lastRate.NsPerIns
		last = now
		lastRate = m.Rate(0)
	}

	hog := &Activity{BaseCPI: 0.8, RefsPerIns: 0.06, SoloMissRatio: 0.3, WorkingSetBytes: 12 << 20}
	// Toggle a same-package co-runner on and off every 50 µs.
	for i := 1; i <= 10; i++ {
		i := i
		eng.At(sim.Time(i)*50*sim.Microsecond, func() {
			accrue()
			if i%2 == 1 {
				m.SetActivity(1, hog)
			} else {
				m.SetActivity(1, nil)
			}
			lastRate = m.Rate(0) // rate changed by the co-runner
		})
	}
	eng.At(600*sim.Microsecond, func() { accrue() })
	eng.RunAll()

	got := m.AppInstructions(0)
	if math.Abs(got-expected) > expected*0.001+5 {
		t.Fatalf("accumulated %.1f instructions, piecewise integral says %.1f", got, expected)
	}
	// Sanity: the churn actually changed the rate.
	m.SetActivity(1, hog)
	contended := m.Rate(0)
	m.SetActivity(1, nil)
	solo := m.Rate(0)
	if contended.CPI <= solo.CPI {
		t.Fatal("co-runner churn test never experienced contention")
	}
}

// TestCountersMonotoneUnderMixedEvents: counter registers never move
// backwards through any mix of activity changes, injections, and reads.
func TestCountersMonotoneUnderMixedEvents(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, DefaultConfig())
	g := sim.NewRNG(3)
	acts := []*Activity{
		{BaseCPI: 1, RefsPerIns: 0.01, SoloMissRatio: 0.1, WorkingSetBytes: 1 << 20},
		{BaseCPI: 2, RefsPerIns: 0.05, SoloMissRatio: 0.3, WorkingSetBytes: 8 << 20},
		nil,
	}
	prev := m.PeekCounters(0)
	for i := 0; i < 200; i++ {
		switch g.Intn(3) {
		case 0:
			m.SetActivity(0, acts[g.Intn(len(acts))])
		case 1:
			snap, _ := m.ReadCounters(0, 0)
			_ = snap
		case 2:
			eng.After(sim.Time(g.Intn(100_000)), func() {})
			eng.RunAll()
		}
		cur := m.PeekCounters(0)
		if cur.Cycles < prev.Cycles || cur.Instructions < prev.Instructions ||
			cur.L2Refs < prev.L2Refs || cur.L2Misses < prev.L2Misses {
			t.Fatalf("counters moved backwards at step %d: %v -> %v", i, prev, cur)
		}
		prev = cur
	}
}

// TestTimeToReachAfterStall: breakpoints computed right after an injection
// must include the stall.
func TestTimeToReachAfterStall(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, DefaultConfig())
	m.SetActivity(0, &Activity{BaseCPI: 1, RefsPerIns: 0.001, SoloMissRatio: 0.1, WorkingSetBytes: 64 << 10})
	stall := m.Inject(0, metrics.Counters{Cycles: 30000})
	d, ok := m.TimeToReach(0, 1000)
	if !ok {
		t.Fatal("TimeToReach !ok")
	}
	if d <= stall {
		t.Fatalf("breakpoint %v must include the %v stall", d, stall)
	}
	// Run exactly d: the target must be reached, not overshot wildly.
	eng.After(d, func() {})
	eng.RunAll()
	got := m.AppInstructions(0)
	if got < 1000 || got > 1010 {
		t.Fatalf("after stall-aware breakpoint, instructions = %v, want ~1000", got)
	}
}
