package machine

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestParseTopologyRoundTrip(t *testing.T) {
	cases := []string{
		"pkg=2,2",
		"pkg=2,2;clock=3",
		"pkg=4:0.85,4:1.15:8",
		"pkg=1",
		"pkg=3:1:2.5,5:0.5",
		"pkg=2,2;clock=2.4",
	}
	for _, spec := range cases {
		topo, err := ParseTopology(spec)
		if err != nil {
			t.Fatalf("ParseTopology(%q): %v", spec, err)
		}
		again, err := ParseTopology(topo.String())
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", topo.String(), spec, err)
		}
		if !topo.Equal(again) {
			t.Errorf("round trip %q: %+v != %+v", spec, topo, again)
		}
	}
}

func TestParseTopologyShorthand(t *testing.T) {
	topo, err := ParseTopology("cores=16;per=4")
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumCores() != 16 || topo.NumPackages() != 4 {
		t.Fatalf("cores=16;per=4 → %d cores / %d packages", topo.NumCores(), topo.NumPackages())
	}
	if !topo.Homogeneous() {
		t.Error("shorthand topology should be homogeneous")
	}
	// Default per is 2, matching the paper's dual-core packages.
	topo, err = ParseTopology("cores=8")
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumPackages() != 4 {
		t.Fatalf("cores=8 → %d packages, want 4", topo.NumPackages())
	}
	// A single core still parses (per clamps to the core count).
	topo, err = ParseTopology("cores=1")
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumCores() != 1 || topo.NumPackages() != 1 {
		t.Fatalf("cores=1 → %d cores / %d packages", topo.NumCores(), topo.NumPackages())
	}
}

func TestParseTopologyErrors(t *testing.T) {
	cases := []struct {
		spec, want string
	}{
		{"pkg=0", "Packages[0].Cores"},
		{"pkg=2:-1", "Packages[0].FreqScale"},
		{"pkg=2:1:-4", "Packages[0].CacheMB"},
		{"pkg=2;pkg=2", "duplicate"},
		{"pkg=2;cores=4", "mutually exclusive"},
		{"cores=5;per=2", "multiple"},
		{"cores=-4", "positive"},
		{"bogus=1", "unknown key"},
		{"pkg", "key=value"},
		{"pkg=a", "pkg cores"},
		{"pkg=2:x", "pkg freq"},
		{"pkg=2:1:y", "pkg cache"},
		{"pkg=2:1:2:3", "pkg entry"},
		{"clock=z", "clock"},
		{"", "at least one package"},
		{"pkg=2;clock=-1", "CyclesPerNs"},
	}
	for _, c := range cases {
		_, err := ParseTopology(c.spec)
		if err == nil {
			t.Errorf("ParseTopology(%q): expected error", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseTopology(%q) = %q, want mention of %q", c.spec, err, c.want)
		}
	}
}

func TestValidateNamesField(t *testing.T) {
	bad := Topology{Packages: []PackageSpec{{Cores: 2, FreqScale: 1}, {Cores: 2, FreqScale: 0}}}
	err := bad.Validate()
	if err == nil || !strings.Contains(err.Error(), "Packages[1].FreqScale") {
		t.Fatalf("Validate = %v, want Packages[1].FreqScale named", err)
	}
}

func TestHomogeneousHelper(t *testing.T) {
	topo := Homogeneous(4, 2)
	if !topo.Equal(DefaultTopology()) {
		t.Fatalf("Homogeneous(4,2) = %+v, want default topology", topo)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	// Non-multiple layouts surface through Validate, naming the short package.
	if err := Homogeneous(5, 2).Validate(); err != nil {
		t.Fatalf("Homogeneous(5,2) leaves a valid (uneven) topology, got %v", err)
	}
	if got := Homogeneous(5, 2).NumCores(); got != 5 {
		t.Fatalf("Homogeneous(5,2).NumCores = %d", got)
	}
	if err := Homogeneous(0, 2).Validate(); err == nil {
		t.Fatal("Homogeneous(0,2) should not validate")
	}
}

func TestParseFleetRoundTrip(t *testing.T) {
	spec := "pkg=2,2/pkg=4:0.85/pkg=4:1.15,4:1.15"
	fleet, err := ParseFleet(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 3 {
		t.Fatalf("fleet size %d", len(fleet))
	}
	if got := FleetString(fleet); got != spec {
		t.Fatalf("FleetString = %q, want %q", got, spec)
	}
	if fleet[1].NumCores() != 4 || fleet[1].Packages[0].FreqScale != 0.85 {
		t.Fatalf("node 1 = %+v", fleet[1])
	}
	if _, err := ParseFleet("pkg=2,2/nope"); err == nil {
		t.Fatal("bad node spec should fail")
	}
}

func TestConfigTopologyResolution(t *testing.T) {
	cfg := DefaultConfig()
	if !cfg.EffectiveTopology().Equal(DefaultTopology()) {
		t.Fatalf("default config topology = %+v", cfg.EffectiveTopology())
	}
	if cfg.NumCores() != 4 {
		t.Fatalf("default NumCores = %d", cfg.NumCores())
	}
	cfg.Topology = Topology{Packages: []PackageSpec{{Cores: 8, FreqScale: 1}}, CyclesPerNs: 2}
	if cfg.NumCores() != 8 {
		t.Fatalf("override NumCores = %d", cfg.NumCores())
	}
	if cfg.clock() != 2 {
		t.Fatalf("override clock = %v", cfg.clock())
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Topology errors win over (now ignored) legacy fields.
	cfg.Topology.Packages[0].Cores = 0
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "Packages[0].Cores") {
		t.Fatalf("Validate = %v", err)
	}
}

// TestHeterogeneousMachine exercises a machine built from a heterogeneous
// topology: per-package sizes, a slow package, and a cache override.
func TestHeterogeneousMachine(t *testing.T) {
	topo, err := ParseTopology("pkg=1:0.5,3:1:8")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Topology = topo
	eng := sim.NewEngine()
	m := New(eng, cfg)
	if m.NumCores() != 4 {
		t.Fatalf("NumCores = %d", m.NumCores())
	}
	if m.Package(0) != 0 || m.Package(1) != 1 || m.Package(3) != 1 {
		t.Fatalf("package map: %d %d %d", m.Package(0), m.Package(1), m.Package(3))
	}
	if m.CoreFrequencyScale(0) != 0.5 || m.CoreFrequencyScale(1) != 1 {
		t.Fatalf("core scales: %v %v", m.CoreFrequencyScale(0), m.CoreFrequencyScale(1))
	}
	if !m.Topology().Equal(topo) {
		t.Fatalf("Topology() = %+v", m.Topology())
	}

	act := &Activity{BaseCPI: 1, RefsPerIns: 0.01, SoloMissRatio: 0.1, WorkingSetBytes: 1 << 20}
	m.SetActivity(0, act)
	m.SetActivity(1, act)
	slow, fast := m.Rate(0), m.Rate(1)
	if slow.CPI != fast.CPI {
		t.Fatalf("CPI should not depend on frequency: %v vs %v", slow.CPI, fast.CPI)
	}
	if slow.NsPerIns != 2*fast.NsPerIns {
		t.Fatalf("half-frequency core should be 2x slower: %v vs %v", slow.NsPerIns, fast.NsPerIns)
	}

	// The dynamic DVFS scale composes with the static topology scale.
	m.SetFrequencyScale(0.5)
	if got := m.Rate(0).NsPerIns; got != 2*slow.NsPerIns {
		t.Fatalf("composed scale NsPerIns = %v, want %v", got, 2*slow.NsPerIns)
	}
	m.SetFrequencyScale(1)

	// Package 1's cache override (8 MiB) halves observer pressure relative
	// to the default 4 MiB package for the same working set.
	big := &Activity{BaseCPI: 1, RefsPerIns: 0.02, SoloMissRatio: 0.1, WorkingSetBytes: 4 << 20}
	m.SetActivity(0, big)
	m.SetActivity(1, big)
	ev0 := m.ObserverEventsFor(0, metrics.CtxKernel)
	ev1 := m.ObserverEventsFor(1, metrics.CtxKernel)
	if ev0 == ev1 {
		t.Fatalf("cache override should change sample perturbation: %+v == %+v", ev0, ev1)
	}
}

func TestHomogeneousTopologyMatchesLegacyConfig(t *testing.T) {
	legacy := DefaultConfig()
	topoCfg := DefaultConfig()
	topoCfg.Topology = DefaultTopology()

	run := func(cfg Config) []Rate {
		eng := sim.NewEngine()
		m := New(eng, cfg)
		act := &Activity{BaseCPI: 1.2, RefsPerIns: 0.015, SoloMissRatio: 0.2, WorkingSetBytes: 3 << 20}
		for c := 0; c < m.NumCores(); c++ {
			m.SetActivity(c, act)
		}
		rates := make([]Rate, m.NumCores())
		for c := range rates {
			rates[c] = m.Rate(c)
		}
		return rates
	}

	a, b := run(legacy), run(topoCfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("core %d: legacy %+v != topology %+v", i, a[i], b[i])
		}
	}
}
