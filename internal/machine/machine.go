// Package machine models the multicore hardware of the paper's experimental
// platform: two dual-core packages (four cores), each pair sharing an L2
// cache, with per-core performance counter registers (non-halted cycles,
// retired instructions, L2 references, L2 misses).
//
// The machine executes "activities" — fixed hardware characteristics (base
// CPI, L2 references per instruction, solo miss ratio, working set) that the
// workload layer derives from request phases. At any instant each core runs
// at a constant rate determined by its activity and its co-runners (shared
// cache capacity and memory bandwidth contention, see package cache); the
// rate is recomputed whenever any core's activity changes. Between changes,
// counters accrue linearly, so simulation cost is proportional to the number
// of behavioral events rather than to instructions.
//
// Counter reads model the paper's observer effect (Table 1): each read
// injects the sampling code's own cycles, instructions, and — for
// cache-hungry workloads — L2 references into the hardware counters and
// stalls application progress for the sampling cost.
package machine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Activity describes the inherent hardware characteristics of a stretch of
// application execution (one workload phase, or a microbenchmark loop).
type Activity struct {
	// BaseCPI is the cycles per instruction absent all L2/memory stalls.
	BaseCPI float64
	// RefsPerIns is the L2 references issued per instruction.
	RefsPerIns float64
	// SoloMissRatio is the L2 miss ratio with the cache to itself.
	SoloMissRatio float64
	// WorkingSetBytes is the activity's cache footprint.
	WorkingSetBytes float64
}

// ObserverConfig sets the cost and counter perturbation of one hardware
// counter sample, per sampling context, matching the paper's Table 1.
// The Extra* fields are the additional perturbation seen under full cache
// pressure (Mbench-Data vs Mbench-Spin); actual injection scales them by
// the running activity's cache pressure.
type ObserverConfig struct {
	KernelBase  metrics.Counters // in-kernel sample, minimum effect
	KernelExtra metrics.Counters // additional at full cache pressure
	IntrBase    metrics.Counters // interrupt sample, minimum effect
	IntrExtra   metrics.Counters // additional at full cache pressure
}

// DefaultObserver returns Table 1's measured perturbations: an in-kernel
// sample costs ~0.42 µs (1270 cycles, 649 instructions), an interrupt
// sample ~0.76 µs (2276 cycles, 724 instructions); cache-polluting
// workloads add ~100 cycles and ~13 L2 references per sample.
func DefaultObserver() ObserverConfig {
	return ObserverConfig{
		KernelBase:  metrics.Counters{Cycles: 1270, Instructions: 649},
		KernelExtra: metrics.Counters{Cycles: 104, L2Refs: 13},
		IntrBase:    metrics.Counters{Cycles: 2276, Instructions: 724},
		IntrExtra:   metrics.Counters{Cycles: 112, Instructions: 10, L2Refs: 12},
	}
}

// Config describes the machine topology and cost model.
type Config struct {
	// Cores and CoresPerPackage describe a homogeneous layout.
	//
	// Deprecated: set Topology instead, which also expresses heterogeneous
	// package sizes, per-package frequency scale, and per-package cache
	// capacity. When Topology has packages, these two fields are ignored.
	Cores           int
	CoresPerPackage int
	// CyclesPerNs is the nominal clock rate (3.0 for the paper's 3 GHz
	// Xeon 5160). Topology.CyclesPerNs, when positive, overrides it.
	CyclesPerNs float64
	Cache       cache.Config
	Observer    ObserverConfig
	// Topology, when non-empty, is the authoritative package/core layout.
	Topology Topology
}

// EffectiveTopology resolves the configured layout: Topology when set,
// otherwise the homogeneous layout the deprecated Cores/CoresPerPackage
// pair expresses.
func (c Config) EffectiveTopology() Topology {
	if len(c.Topology.Packages) > 0 {
		return c.Topology
	}
	return Homogeneous(c.Cores, c.CoresPerPackage)
}

// NumCores returns the resolved total core count.
func (c Config) NumCores() int { return c.EffectiveTopology().NumCores() }

// clock returns the resolved cycles-per-ns rate.
func (c Config) clock() float64 {
	if c.Topology.CyclesPerNs > 0 {
		return c.Topology.CyclesPerNs
	}
	return c.CyclesPerNs
}

// DefaultConfig returns the paper's platform: 4 cores, 2 packages, 3 GHz,
// shared 4 MB L2 per package.
func DefaultConfig() Config {
	return Config{
		Cores:           4,
		CoresPerPackage: 2,
		CyclesPerNs:     3.0,
		Cache:           cache.DefaultConfig(),
		Observer:        DefaultObserver(),
	}
}

// Validate reports configuration errors, naming the offending field.
func (c Config) Validate() error {
	if len(c.Topology.Packages) > 0 {
		if err := c.Topology.Validate(); err != nil {
			return err
		}
	} else {
		if c.Cores <= 0 {
			return fmt.Errorf("machine: Cores must be positive, got %d", c.Cores)
		}
		if c.CoresPerPackage <= 0 || c.Cores%c.CoresPerPackage != 0 {
			return fmt.Errorf("machine: Cores (%d) must be a multiple of CoresPerPackage (%d)",
				c.Cores, c.CoresPerPackage)
		}
	}
	if c.clock() <= 0 {
		return fmt.Errorf("machine: CyclesPerNs must be positive, got %v", c.clock())
	}
	return nil
}

// fcounters accrues counters in float64 to avoid per-slice rounding drift.
type fcounters struct {
	cycles, ins, refs, misses float64
}

func (f *fcounters) add(c metrics.Counters) {
	f.cycles += float64(c.Cycles)
	f.ins += float64(c.Instructions)
	f.refs += float64(c.L2Refs)
	f.misses += float64(c.L2Misses)
}

func (f *fcounters) snapshot() metrics.Counters {
	return metrics.Counters{
		Cycles:       uint64(f.cycles),
		Instructions: uint64(f.ins),
		L2Refs:       uint64(f.refs),
		L2Misses:     uint64(f.misses),
	}
}

// Rate is a core's current derived execution rate.
type Rate struct {
	// CPI is the effective cycles per application instruction.
	CPI float64
	// MissRatio is the effective L2 miss ratio under current co-runners.
	MissRatio float64
	// RefsPerIns mirrors the activity's reference rate.
	RefsPerIns float64
	// NsPerIns is virtual nanoseconds per application instruction.
	NsPerIns float64
}

type core struct {
	id, pkg    int
	hw         fcounters
	activity   *Activity
	rate       Rate
	appIns     float64  // application instructions completed in current activity
	lastUpdate sim.Time // counters are accurate as of this instant
	stallUntil sim.Time // no app progress before this (sampling/pollution stalls)
}

// Machine is the simulated multicore. It is single-threaded, like the
// simulation engine that drives it.
type Machine struct {
	eng       *sim.Engine
	cfg       Config
	topo      Topology
	clock     float64 // resolved cycles per ns at nominal frequency
	cores     []*core
	listeners []func(core int)
	// pkgBase[p]/pkgCores[p] locate package p's contiguous core range;
	// pkgCache[p] is its shared-cache config (Config.Cache with the
	// package's CacheMB override applied, if any).
	pkgBase  []int
	pkgCores []int
	pkgCache []cache.Config
	// coreScale[i] is core i's static topology frequency scale; it composes
	// multiplicatively with the dynamic machine-wide freqScale.
	coreScale []float64
	// penaltyFactor is the current machine-wide bandwidth inflation.
	penaltyFactor float64
	// freqScale is the DVFS multiplier on the configured clock: the
	// effective rate is CyclesPerNs × freqScale. 1 is nominal frequency;
	// fault injection scales it down for node-slowdown windows.
	freqScale float64

	// recomputeRates scratch, reused across calls so the per-activity-change
	// rate derivation allocates nothing. Used strictly within one
	// recomputeRates call (before any listener fires), so reuse is safe.
	missScratch   []float64
	demandScratch []*cache.Demand
	demandBuf     []cache.Demand
}

// New builds a machine on the given engine. It panics on an invalid
// configuration (a programming error, not a runtime condition).
func New(eng *sim.Engine, cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{eng: eng, cfg: cfg, topo: cfg.EffectiveTopology(),
		clock: cfg.clock(), penaltyFactor: 1, freqScale: 1}
	maxPkgCores := 0
	for p, ps := range m.topo.Packages {
		m.pkgBase = append(m.pkgBase, len(m.cores))
		m.pkgCores = append(m.pkgCores, ps.Cores)
		pc := cfg.Cache
		if ps.CacheMB > 0 {
			pc.CapacityBytes = ps.CacheMB * (1 << 20)
		}
		m.pkgCache = append(m.pkgCache, pc)
		for j := 0; j < ps.Cores; j++ {
			m.cores = append(m.cores, &core{id: len(m.cores), pkg: p})
			m.coreScale = append(m.coreScale, ps.FreqScale)
		}
		if ps.Cores > maxPkgCores {
			maxPkgCores = ps.Cores
		}
	}
	m.missScratch = make([]float64, len(m.cores))
	m.demandScratch = make([]*cache.Demand, maxPkgCores)
	m.demandBuf = make([]cache.Demand, maxPkgCores)
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Topology returns the machine's resolved package/core layout.
func (m *Machine) Topology() Topology { return m.topo }

// NumCores returns the number of cores.
func (m *Machine) NumCores() int { return len(m.cores) }

// Package returns the package index of a core.
func (m *Machine) Package(coreID int) int { return m.cores[coreID].pkg }

// OnRateChange registers fn to be called whenever a core's execution rate
// changes because some activity on the machine changed. The kernel uses this
// to reschedule pending execution breakpoints.
func (m *Machine) OnRateChange(fn func(core int)) {
	m.listeners = append(m.listeners, fn)
}

// advance accrues core c's counters up to the present.
func (m *Machine) advance(c *core) {
	now := m.eng.Now()
	if now <= c.lastUpdate {
		return
	}
	dt := now - c.lastUpdate
	c.lastUpdate = now
	if c.activity == nil {
		return // halted: the non-halt cycle counter does not advance
	}
	// Stalled portion: time passes, cycles were already injected with the
	// stall's events; no app progress.
	if c.stallUntil > now-dt {
		stallEnd := c.stallUntil
		if stallEnd > now {
			stallEnd = now
		}
		dt = now - stallEnd
	}
	if dt <= 0 {
		return
	}
	ins := float64(dt) / c.rate.NsPerIns
	c.appIns += ins
	c.hw.cycles += ins * c.rate.CPI
	c.hw.ins += ins
	refs := ins * c.rate.RefsPerIns
	c.hw.refs += refs
	c.hw.misses += refs * c.rate.MissRatio
}

func (m *Machine) advanceAll() {
	for _, c := range m.cores {
		m.advance(c)
	}
}

// recomputeRates derives every core's rate from the current activity set.
// It must be called with all cores advanced to the present.
func (m *Machine) recomputeRates() (changed []int) {
	// Effective miss ratios per package.
	miss := m.missScratch
	for p := range m.pkgBase {
		base, n := m.pkgBase[p], m.pkgCores[p]
		demands := m.demandScratch[:n]
		for j := 0; j < n; j++ {
			a := m.cores[base+j].activity
			if a == nil {
				demands[j] = nil
				continue
			}
			m.demandBuf[j] = cache.Demand{
				RefsPerIns:      a.RefsPerIns,
				SoloMissRatio:   a.SoloMissRatio,
				WorkingSetBytes: a.WorkingSetBytes,
			}
			demands[j] = &m.demandBuf[j]
		}
		cache.MissRatiosInto(m.pkgCache[p], demands, miss[base:base+n])
	}
	// Machine-wide bandwidth pressure.
	var traffic float64
	for i, c := range m.cores {
		if c.activity != nil {
			traffic += c.activity.RefsPerIns * miss[i]
		}
	}
	m.penaltyFactor = cache.PenaltyFactor(m.cfg.Cache, traffic)
	for i, c := range m.cores {
		old := c.rate
		if c.activity == nil {
			c.rate = Rate{}
		} else {
			cpi := cache.CPI(m.pkgCache[c.pkg], c.activity.BaseCPI, c.activity.RefsPerIns,
				miss[i], m.penaltyFactor)
			c.rate = Rate{
				CPI:        cpi,
				MissRatio:  miss[i],
				RefsPerIns: c.activity.RefsPerIns,
				// The topology scale is exactly 1 on homogeneous nominal
				// layouts, so (clock*freq)*1 keeps the division bit-identical
				// to the pre-topology formula.
				NsPerIns: cpi / (m.clock * m.freqScale * m.coreScale[i]),
			}
		}
		if c.rate != old {
			changed = append(changed, i)
		}
	}
	return changed
}

// SetActivity installs a new activity on a core (nil for idle). Application
// instruction progress for the core resets to zero. All affected cores'
// rates are recomputed and rate-change listeners fire for each core whose
// rate changed (other than the core being set, whose caller already knows).
func (m *Machine) SetActivity(coreID int, a *Activity) {
	m.advanceAll()
	c := m.cores[coreID]
	c.activity = a
	c.appIns = 0
	changed := m.recomputeRates()
	for _, id := range changed {
		if id == coreID {
			continue
		}
		for _, fn := range m.listeners {
			fn(id)
		}
	}
}

// Activity returns the core's current activity (nil when idle).
func (m *Machine) Activity(coreID int) *Activity { return m.cores[coreID].activity }

// Rate returns the core's current execution rate.
func (m *Machine) Rate(coreID int) Rate { return m.cores[coreID].rate }

// PenaltyFactor returns the current machine-wide memory penalty inflation.
func (m *Machine) PenaltyFactor() float64 { return m.penaltyFactor }

// SetFrequencyScale sets the machine's DVFS multiplier: the effective clock
// becomes CyclesPerNs × scale (scale 1 = nominal, 0.5 = half frequency).
// Counters are unaffected per instruction — cycles per instruction do not
// change with frequency — but wall time per instruction stretches, so a
// scaled-down machine finishes the same work later. All cores advance to
// the present first, then every changed core's rate-change listeners fire,
// keeping pending execution breakpoints consistent. Non-positive scales
// reset to nominal.
func (m *Machine) SetFrequencyScale(scale float64) {
	if scale <= 0 {
		scale = 1
	}
	if scale == m.freqScale {
		return
	}
	m.advanceAll()
	m.freqScale = scale
	changed := m.recomputeRates()
	for _, id := range changed {
		for _, fn := range m.listeners {
			fn(id)
		}
	}
}

// FrequencyScale returns the current DVFS multiplier.
func (m *Machine) FrequencyScale() float64 { return m.freqScale }

// CoreFrequencyScale returns the core's static topology frequency scale
// (1 on homogeneous nominal layouts); it composes multiplicatively with
// the dynamic FrequencyScale.
func (m *Machine) CoreFrequencyScale(coreID int) float64 { return m.coreScale[coreID] }

// AppInstructions reports how many application instructions the core has
// completed in its current activity, as of now.
func (m *Machine) AppInstructions(coreID int) float64 {
	c := m.cores[coreID]
	m.advance(c)
	return c.appIns
}

// TimeToReach returns how long from now until the core's application
// instruction count reaches target, at the current rate. ok is false when
// the core is idle or the target is already reached.
func (m *Machine) TimeToReach(coreID int, target float64) (d sim.Time, ok bool) {
	c := m.cores[coreID]
	m.advance(c)
	if c.activity == nil || target <= c.appIns {
		return 0, false
	}
	ns := (target - c.appIns) * c.rate.NsPerIns
	d = sim.Time(ns + 0.999) // round up so the breakpoint is not early
	if stall := c.stallUntil - m.eng.Now(); stall > 0 {
		d += stall
	}
	if d < 1 {
		d = 1
	}
	return d, true
}

// Inject adds events to the core's hardware counters and stalls application
// progress for the corresponding cycles (kernel code executing on the core:
// sampling, syscall work, context-switch pollution). It returns the stall
// duration so callers can delay subsequent breakpoints.
func (m *Machine) Inject(coreID int, ev metrics.Counters) sim.Time {
	c := m.cores[coreID]
	m.advance(c)
	c.hw.add(ev)
	d := sim.Time(float64(ev.Cycles) / (m.clock * m.freqScale * m.coreScale[coreID]))
	now := m.eng.Now()
	if c.stallUntil < now {
		c.stallUntil = now
	}
	c.stallUntil += d
	return d
}

// observerEvents computes the injected perturbation of one sample on a core,
// scaling the pressure-dependent extra by the running activity's cache
// footprint (Mbench-Spin → none, Mbench-Data → full).
func (m *Machine) observerEvents(c *core, ctx metrics.SampleContext) metrics.Counters {
	var base, extra metrics.Counters
	switch ctx {
	case metrics.CtxKernel:
		base, extra = m.cfg.Observer.KernelBase, m.cfg.Observer.KernelExtra
	case metrics.CtxInterrupt:
		base, extra = m.cfg.Observer.IntrBase, m.cfg.Observer.IntrExtra
	default:
		panic(fmt.Sprintf("machine: unknown sample context %v", ctx))
	}
	pressure := 0.0
	if c.activity != nil && m.pkgCache[c.pkg].CapacityBytes > 0 {
		pressure = c.activity.WorkingSetBytes / m.pkgCache[c.pkg].CapacityBytes
		if pressure > 1 {
			pressure = 1
		}
	}
	scaled := metrics.Counters{
		Cycles:       uint64(float64(extra.Cycles) * pressure),
		Instructions: uint64(float64(extra.Instructions) * pressure),
		L2Refs:       uint64(float64(extra.L2Refs) * pressure),
		L2Misses:     uint64(float64(extra.L2Misses) * pressure),
	}
	return base.Add(scaled)
}

// ReadCounters samples the core's counter registers in the given context.
// It returns the pre-sample snapshot and injects the sample's observer
// effect (which lands in the next measured period, to be compensated by the
// sampling layer), returning also the sampling stall duration.
func (m *Machine) ReadCounters(coreID int, ctx metrics.SampleContext) (metrics.Counters, sim.Time) {
	c := m.cores[coreID]
	m.advance(c)
	snap := c.hw.snapshot()
	cost := m.Inject(coreID, m.observerEvents(c, ctx))
	return snap, cost
}

// PeekCounters returns the counters without any observer effect. This is
// the simulation's omniscient view, unavailable on real hardware; it exists
// for tests and ground-truth validation only.
func (m *Machine) PeekCounters(coreID int) metrics.Counters {
	c := m.cores[coreID]
	m.advance(c)
	return c.hw.snapshot()
}

// ObserverEventsFor exposes the perturbation a sample would inject right
// now, used by the sampling layer's compensation tables and by Table 1.
func (m *Machine) ObserverEventsFor(coreID int, ctx metrics.SampleContext) metrics.Counters {
	return m.observerEvents(m.cores[coreID], ctx)
}

// MinObserverEvents returns the minimum (Mbench-Spin) perturbation per
// sample for a context — the amount the paper's "do no harm" compensation
// subtracts.
func (m *Machine) MinObserverEvents(ctx metrics.SampleContext) metrics.Counters {
	switch ctx {
	case metrics.CtxKernel:
		return m.cfg.Observer.KernelBase
	case metrics.CtxInterrupt:
		return m.cfg.Observer.IntrBase
	default:
		panic(fmt.Sprintf("machine: unknown sample context %v", ctx))
	}
}

// PollutionEvents returns the counter events of a context-switch cache
// refill for an incoming activity, ready to Inject.
func (m *Machine) PollutionEvents(a *Activity) metrics.Counters {
	if a == nil {
		return metrics.Counters{}
	}
	cycles, refs, misses := cache.PollutionCost(m.cfg.Cache, a.WorkingSetBytes, m.penaltyFactor)
	return metrics.Counters{
		Cycles:   uint64(cycles),
		L2Refs:   uint64(refs),
		L2Misses: uint64(misses),
	}
}
