package machine

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func newTestMachine() (*sim.Engine, *Machine) {
	eng := sim.NewEngine()
	return eng, New(eng, DefaultConfig())
}

func cpuBound() *Activity {
	return &Activity{BaseCPI: 1.0, RefsPerIns: 0.001, SoloMissRatio: 0.05, WorkingSetBytes: 64 << 10}
}

func memBound() *Activity {
	return &Activity{BaseCPI: 0.8, RefsPerIns: 0.05, SoloMissRatio: 0.2, WorkingSetBytes: 8 << 20}
}

// run advances the engine clock by d using a no-op event.
func run(eng *sim.Engine, d sim.Time) {
	eng.After(d, func() {})
	eng.RunAll()
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Fatal("zero cores should be invalid")
	}
	bad = DefaultConfig()
	bad.Cores = 5 // not a multiple of 2 per package
	if bad.Validate() == nil {
		t.Fatal("non-multiple core count should be invalid")
	}
	bad = DefaultConfig()
	bad.CyclesPerNs = 0
	if bad.Validate() == nil {
		t.Fatal("zero frequency should be invalid")
	}
	if DefaultConfig().Validate() != nil {
		t.Fatal("default config should validate")
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(sim.NewEngine(), Config{})
}

func TestTopology(t *testing.T) {
	_, m := newTestMachine()
	if m.NumCores() != 4 {
		t.Fatalf("NumCores = %d", m.NumCores())
	}
	pkgs := []int{0, 0, 1, 1}
	for i, want := range pkgs {
		if got := m.Package(i); got != want {
			t.Fatalf("Package(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestIdleCoreAccruesNothing(t *testing.T) {
	eng, m := newTestMachine()
	run(eng, sim.Millisecond)
	c := m.PeekCounters(0)
	if !c.IsZero() {
		t.Fatalf("idle core accrued %v", c)
	}
}

func TestExecutionAccruesCounters(t *testing.T) {
	eng, m := newTestMachine()
	m.SetActivity(0, cpuBound())
	run(eng, sim.Millisecond)
	c := m.PeekCounters(0)
	if c.Instructions == 0 || c.Cycles == 0 {
		t.Fatalf("no progress: %v", c)
	}
	// CPI should be near the configured rate.
	gotCPI := c.Value(metrics.CPI)
	wantCPI := m.Rate(0).CPI
	if math.Abs(gotCPI-wantCPI) > 0.01 {
		t.Fatalf("CPI = %v, rate says %v", gotCPI, wantCPI)
	}
	// 1 ms at 3 GHz is 3M cycles.
	if c.Cycles < 2_900_000 || c.Cycles > 3_100_000 {
		t.Fatalf("cycles in 1 ms = %d, want ~3M", c.Cycles)
	}
}

func TestRefsAndMissesFollowActivity(t *testing.T) {
	eng, m := newTestMachine()
	a := memBound()
	m.SetActivity(1, a)
	run(eng, sim.Millisecond)
	c := m.PeekCounters(1)
	if got := c.Value(metrics.L2RefsPerIns); math.Abs(got-a.RefsPerIns) > 0.001 {
		t.Fatalf("refs/ins = %v, want %v", got, a.RefsPerIns)
	}
	if got := c.Value(metrics.L2MissRatio); math.Abs(got-a.SoloMissRatio) > 0.01 {
		t.Fatalf("solo miss ratio = %v, want %v", got, a.SoloMissRatio)
	}
}

func TestSoloVsContendedCPI(t *testing.T) {
	eng, m := newTestMachine()
	m.SetActivity(0, memBound())
	solo := m.Rate(0).CPI
	// Co-schedule another memory hog on the same package (core 1).
	m.SetActivity(1, memBound())
	contended := m.Rate(0).CPI
	if contended <= solo {
		t.Fatalf("contended CPI %v should exceed solo %v", contended, solo)
	}
	// A CPU-bound activity on the *other* package should barely matter for
	// cache share (bandwidth is machine-wide but tiny here).
	m.SetActivity(1, nil)
	m.SetActivity(2, cpuBound())
	crossPkg := m.Rate(0).CPI
	if math.Abs(crossPkg-solo) > 0.2*solo {
		t.Fatalf("cross-package CPU-bound co-runner changed CPI %v -> %v", solo, crossPkg)
	}
	_ = eng
}

func TestRateChangeListenerFires(t *testing.T) {
	_, m := newTestMachine()
	var notified []int
	m.OnRateChange(func(c int) { notified = append(notified, c) })
	m.SetActivity(0, memBound())
	notified = nil
	// Installing a contending activity on core 1 changes core 0's rate.
	m.SetActivity(1, memBound())
	found := false
	for _, c := range notified {
		if c == 0 {
			found = true
		}
		if c == 1 {
			t.Fatal("listener fired for the core being set")
		}
	}
	if !found {
		t.Fatal("listener did not fire for affected co-runner")
	}
}

func TestAppInstructionsAndTimeToReach(t *testing.T) {
	eng, m := newTestMachine()
	m.SetActivity(0, cpuBound())
	d, ok := m.TimeToReach(0, 1_000_000)
	if !ok {
		t.Fatal("TimeToReach on running core returned !ok")
	}
	run(eng, d)
	got := m.AppInstructions(0)
	if got < 1_000_000 || got > 1_001_000 {
		t.Fatalf("AppInstructions after TimeToReach = %v, want ~1M", got)
	}
	// Already reached → !ok.
	if _, ok := m.TimeToReach(0, 500); ok {
		t.Fatal("TimeToReach past target should report !ok")
	}
	// Idle core → !ok.
	if _, ok := m.TimeToReach(3, 100); ok {
		t.Fatal("TimeToReach on idle core should report !ok")
	}
}

func TestSetActivityResetsAppInstructions(t *testing.T) {
	eng, m := newTestMachine()
	m.SetActivity(0, cpuBound())
	run(eng, sim.Microsecond*100)
	if m.AppInstructions(0) == 0 {
		t.Fatal("no progress before switch")
	}
	m.SetActivity(0, memBound())
	if m.AppInstructions(0) != 0 {
		t.Fatal("SetActivity did not reset app instruction count")
	}
}

func TestInjectStallsProgress(t *testing.T) {
	eng, m := newTestMachine()
	m.SetActivity(0, cpuBound())
	before := m.PeekCounters(0)
	stall := m.Inject(0, metrics.Counters{Cycles: 3000, Instructions: 100})
	if stall != sim.Time(1000) {
		t.Fatalf("stall = %v, want 1000ns for 3000 cycles at 3GHz", stall)
	}
	after := m.PeekCounters(0)
	if after.Cycles != before.Cycles+3000 || after.Instructions != before.Instructions+100 {
		t.Fatalf("injection not applied: %v -> %v", before, after)
	}
	// During the stall no app instructions execute.
	appBefore := m.AppInstructions(0)
	run(eng, stall)
	if got := m.AppInstructions(0); got != appBefore {
		t.Fatalf("app progressed during stall: %v -> %v", appBefore, got)
	}
	// After the stall, progress resumes.
	run(eng, sim.Microsecond)
	if got := m.AppInstructions(0); got <= appBefore {
		t.Fatal("app did not resume after stall")
	}
}

func TestReadCountersObserverEffect(t *testing.T) {
	eng, m := newTestMachine()
	m.SetActivity(0, cpuBound()) // tiny working set → minimum pressure
	run(eng, sim.Microsecond*10)
	snap1, cost := m.ReadCounters(0, metrics.CtxKernel)
	if cost <= 0 {
		t.Fatal("sampling cost should be positive")
	}
	// The snapshot excludes this sample's own events, but the very next
	// read (immediately) sees them.
	snap2 := m.PeekCounters(0)
	delta := snap2.Sub(snap1)
	min := m.MinObserverEvents(metrics.CtxKernel)
	if delta.Cycles < min.Cycles || delta.Instructions < min.Instructions {
		t.Fatalf("observer events not injected: delta %v < min %v", delta, min)
	}
}

func TestObserverEffectScalesWithPressure(t *testing.T) {
	_, m := newTestMachine()
	m.SetActivity(0, cpuBound()) // pressure ~0.015
	m.SetActivity(1, &Activity{BaseCPI: 1, RefsPerIns: 0.05, SoloMissRatio: 0.9, WorkingSetBytes: 16 << 20})
	low := m.ObserverEventsFor(0, metrics.CtxKernel)
	high := m.ObserverEventsFor(1, metrics.CtxKernel)
	if high.Cycles <= low.Cycles {
		t.Fatalf("data-heavy sample should cost more cycles: %v vs %v", high, low)
	}
	if high.L2Refs == 0 {
		t.Fatal("data-heavy sample should inject L2 refs")
	}
	if low.L2Refs > 2 {
		t.Fatalf("spin-like sample injected %d L2 refs", low.L2Refs)
	}
	// Interrupt sampling costs more than in-kernel sampling (Table 1).
	ik := m.ObserverEventsFor(0, metrics.CtxKernel)
	ir := m.ObserverEventsFor(0, metrics.CtxInterrupt)
	if ir.Cycles <= ik.Cycles {
		t.Fatalf("interrupt sample (%v) should cost more than in-kernel (%v)", ir, ik)
	}
}

func TestIdleToRunningTransition(t *testing.T) {
	eng, m := newTestMachine()
	run(eng, sim.Millisecond) // idle for a while
	m.SetActivity(0, cpuBound())
	run(eng, sim.Microsecond*100)
	c := m.PeekCounters(0)
	// Only the running period accrues: ~300k cycles for 100 µs.
	if c.Cycles > 400_000 {
		t.Fatalf("idle period leaked cycles: %v", c)
	}
	m.SetActivity(0, nil)
	snap := m.PeekCounters(0)
	run(eng, sim.Millisecond)
	if got := m.PeekCounters(0); got != snap {
		t.Fatal("counters advanced after going idle")
	}
}

func TestPollutionEvents(t *testing.T) {
	_, m := newTestMachine()
	small := m.PollutionEvents(cpuBound())
	big := m.PollutionEvents(memBound())
	if big.Cycles <= small.Cycles {
		t.Fatal("bigger working set should pollute more")
	}
	if m.PollutionEvents(nil) != (metrics.Counters{}) {
		t.Fatal("nil activity should have zero pollution")
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() metrics.Counters {
		eng, m := newTestMachine()
		m.SetActivity(0, memBound())
		m.SetActivity(1, cpuBound())
		run(eng, sim.Millisecond)
		m.SetActivity(1, memBound())
		run(eng, sim.Millisecond)
		return m.PeekCounters(0)
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("machine not deterministic: %v vs %v", a, b)
	}
}

func TestFrequencyScaleStretchesTime(t *testing.T) {
	eng, m := newTestMachine()
	m.SetActivity(0, cpuBound())
	if m.FrequencyScale() != 1 {
		t.Fatalf("nominal scale = %v, want 1", m.FrequencyScale())
	}
	full, ok := m.TimeToReach(0, 300_000)
	if !ok {
		t.Fatal("no time-to-reach on a running core")
	}
	m.SetFrequencyScale(0.5)
	half, ok := m.TimeToReach(0, 300_000)
	if !ok {
		t.Fatal("no time-to-reach after scaling")
	}
	if half < full*2-2 || half > full*2+2 {
		t.Fatalf("half frequency should double time: %v -> %v", full, half)
	}
	// CPI per instruction is frequency-independent: run 1 ms scaled, the
	// counters still show the activity's CPI.
	run(eng, sim.Millisecond)
	c := m.PeekCounters(0)
	wantCPI := m.Rate(0).CPI
	if got := c.Value(metrics.CPI); math.Abs(got-wantCPI) > 0.01 {
		t.Fatalf("scaled CPI = %v, want %v", got, wantCPI)
	}
	// Restoring nominal frequency restores the original rate.
	m.SetFrequencyScale(1)
	if m.Rate(0).NsPerIns != m.Rate(0).CPI/m.Config().CyclesPerNs {
		t.Fatal("nominal rate not restored")
	}
	// Non-positive scales reset to nominal rather than halting the clock.
	m.SetFrequencyScale(-3)
	if m.FrequencyScale() != 1 {
		t.Fatalf("negative scale accepted: %v", m.FrequencyScale())
	}
}

func TestFrequencyScaleNotifiesListeners(t *testing.T) {
	_, m := newTestMachine()
	m.SetActivity(0, cpuBound())
	m.SetActivity(2, memBound())
	var fired []int
	m.OnRateChange(func(core int) { fired = append(fired, core) })
	m.SetFrequencyScale(0.25)
	if len(fired) < 2 {
		t.Fatalf("rate-change listeners fired for %v, want both running cores", fired)
	}
}
