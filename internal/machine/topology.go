// Fleet-scale topology API. A Topology describes one machine's core and
// package layout beyond the paper's fixed 4-core / 2-package Xeon: any
// number of packages, each with its own core count, shared-cache capacity,
// and a static per-core frequency scale that feeds the same DVFS rate path
// fault injection uses (Machine.SetFrequencyScale). A Topology has a
// compact spec syntax with a ParseTopology/String round-trip, mirroring
// workload.ParseStream, so CLIs and configs can name machines as strings:
//
//	pkg=2,2                    the paper's box: two dual-core packages
//	cores=16;per=4             shorthand: 16 cores in 4-core packages
//	pkg=4:0.85,4:1.15:8        heterogeneous: a slow 4-core package and a
//	                           fast one with an 8 MiB cache
//	pkg=2,2;clock=2.4          2.4 GHz instead of the paper's 3 GHz
//
// Fleets are "/"-separated node topologies (ParseFleet):
//
//	pkg=2,2/pkg=4:0.85/pkg=4:1.15,4:1.15
package machine

import (
	"fmt"
	"strconv"
	"strings"
)

// PackageSpec is one package of a Topology: Cores cores sharing one L2.
type PackageSpec struct {
	// Cores is the package's core count (must be positive).
	Cores int
	// FreqScale is the static DVFS multiplier applied to each of the
	// package's cores (1 = the machine's nominal clock). It composes
	// multiplicatively with the dynamic machine-wide scale set by
	// Machine.SetFrequencyScale.
	FreqScale float64
	// CacheMB, when positive, overrides the package's shared L2 capacity
	// in MiB; zero inherits the machine Config's cache capacity.
	CacheMB float64
}

// Topology is a machine's package/core layout. The zero value (no
// packages) is "unspecified"; resolve it with DefaultTopology.
type Topology struct {
	// Packages is the ordered package list (at least one for a valid
	// topology).
	Packages []PackageSpec
	// CyclesPerNs, when positive, overrides the machine Config's nominal
	// clock rate.
	CyclesPerNs float64
}

// DefaultTopology returns the paper's platform layout: two dual-core
// packages at the Config's nominal clock and cache.
func DefaultTopology() Topology {
	return Topology{Packages: []PackageSpec{{Cores: 2, FreqScale: 1}, {Cores: 2, FreqScale: 1}}}
}

// Homogeneous returns a topology of cores/perPackage identical packages at
// nominal frequency — the shape the deprecated Cores/CoresPerPackage pair
// expressed. cores must be a positive multiple of perPackage; Validate
// reports the violation otherwise.
func Homogeneous(cores, perPackage int) Topology {
	if perPackage <= 0 {
		perPackage = 1
	}
	var t Topology
	for c := cores; c > 0; c -= perPackage {
		n := perPackage
		if c < n {
			n = c // leaves a short package; Validate rejects it with the field named
		}
		t.Packages = append(t.Packages, PackageSpec{Cores: n, FreqScale: 1})
	}
	if cores <= 0 {
		t.Packages = []PackageSpec{{Cores: cores, FreqScale: 1}}
	}
	return t
}

// NumCores returns the topology's total core count.
func (t Topology) NumCores() int {
	var n int
	for _, p := range t.Packages {
		n += p.Cores
	}
	return n
}

// NumPackages returns the package count.
func (t Topology) NumPackages() int { return len(t.Packages) }

// Homogeneous reports whether every package has the same core count, a
// nominal frequency scale, and no cache override — the layouts the legacy
// Cores/CoresPerPackage pair could express.
func (t Topology) Homogeneous() bool {
	for _, p := range t.Packages {
		if p.Cores != t.Packages[0].Cores || p.FreqScale != 1 || p.CacheMB != 0 {
			return false
		}
	}
	return true
}

// Validate reports topology errors, naming the offending field.
func (t Topology) Validate() error {
	if len(t.Packages) == 0 {
		return fmt.Errorf("machine: Topology.Packages must have at least one package")
	}
	for i, p := range t.Packages {
		if p.Cores <= 0 {
			return fmt.Errorf("machine: Topology.Packages[%d].Cores must be positive, got %d", i, p.Cores)
		}
		if p.FreqScale <= 0 {
			return fmt.Errorf("machine: Topology.Packages[%d].FreqScale must be positive, got %v", i, p.FreqScale)
		}
		if p.CacheMB < 0 {
			return fmt.Errorf("machine: Topology.Packages[%d].CacheMB must be non-negative, got %v", i, p.CacheMB)
		}
	}
	if t.CyclesPerNs < 0 {
		return fmt.Errorf("machine: Topology.CyclesPerNs must be non-negative, got %v", t.CyclesPerNs)
	}
	return nil
}

// Equal reports structural equality (the ParseTopology(t.String()) == t
// round-trip contract).
func (t Topology) Equal(o Topology) bool {
	if t.CyclesPerNs != o.CyclesPerNs || len(t.Packages) != len(o.Packages) {
		return false
	}
	for i := range t.Packages {
		if t.Packages[i] != o.Packages[i] {
			return false
		}
	}
	return true
}

// String renders the topology in the compact spec syntax ParseTopology
// accepts; ParseTopology(t.String()) round-trips to an Equal topology for
// any valid t.
func (t Topology) String() string {
	var b strings.Builder
	b.WriteString("pkg=")
	for i, p := range t.Packages {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(p.Cores))
		if p.FreqScale != 1 || p.CacheMB != 0 {
			b.WriteByte(':')
			b.WriteString(fmtF(p.FreqScale))
		}
		if p.CacheMB != 0 {
			b.WriteByte(':')
			b.WriteString(fmtF(p.CacheMB))
		}
	}
	if t.CyclesPerNs != 0 {
		fmt.Fprintf(&b, ";clock=%s", fmtF(t.CyclesPerNs))
	}
	return b.String()
}

// fmtF renders a float without trailing noise, matching the stream spec's
// float syntax.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParseTopology parses the compact topology spec syntax:
//
//	pkg=2,2;clock=3
//	pkg=4:0.85,4:1.15:8
//	cores=16;per=4
//
// Keys are semicolon-separated. pkg entries are cores[:freq[:cacheMiB]]
// (freq defaults to 1). cores=N with optional per=M (default 2) is the
// homogeneous shorthand; pkg and cores are mutually exclusive. clock
// overrides the nominal GHz-equivalent cycles-per-ns. The returned
// topology always passes Validate.
func ParseTopology(spec string) (Topology, error) {
	var t Topology
	fail := func(format string, args ...any) (Topology, error) {
		return Topology{}, fmt.Errorf("machine: topology spec: "+format, args...)
	}
	seen := map[string]bool{}
	var cores, per int
	for _, kv := range strings.Split(spec, ";") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fail("%q is not key=value", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if seen[key] {
			return fail("duplicate key %q", key)
		}
		seen[key] = true
		switch key {
		case "pkg":
			for _, e := range strings.Split(val, ",") {
				parts := strings.Split(e, ":")
				if len(parts) < 1 || len(parts) > 3 {
					return fail("pkg entry %q is not cores[:freq[:cacheMiB]]", e)
				}
				n, err := strconv.Atoi(strings.TrimSpace(parts[0]))
				if err != nil {
					return fail("pkg cores %q: %v", parts[0], err)
				}
				p := PackageSpec{Cores: n, FreqScale: 1}
				if len(parts) >= 2 {
					if p.FreqScale, err = strconv.ParseFloat(parts[1], 64); err != nil {
						return fail("pkg freq %q: %v", parts[1], err)
					}
				}
				if len(parts) == 3 {
					if p.CacheMB, err = strconv.ParseFloat(parts[2], 64); err != nil {
						return fail("pkg cache %q: %v", parts[2], err)
					}
				}
				t.Packages = append(t.Packages, p)
			}
		case "cores":
			v, err := strconv.Atoi(val)
			if err != nil {
				return fail("cores %q: %v", val, err)
			}
			cores = v
		case "per":
			v, err := strconv.Atoi(val)
			if err != nil {
				return fail("per %q: %v", val, err)
			}
			per = v
		case "clock":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fail("clock %q: %v", val, err)
			}
			t.CyclesPerNs = v
		default:
			return fail("unknown key %q (valid: pkg, cores, per, clock)", key)
		}
	}
	if cores != 0 || per != 0 {
		if len(t.Packages) > 0 {
			return fail("pkg and cores/per are mutually exclusive")
		}
		if cores <= 0 {
			return fail("cores must be positive, got %d", cores)
		}
		if per == 0 {
			per = 2
			if cores < per {
				per = cores
			}
		}
		if per <= 0 || cores%per != 0 {
			return fail("cores (%d) must be a positive multiple of per (%d)", cores, per)
		}
		for i := 0; i < cores/per; i++ {
			t.Packages = append(t.Packages, PackageSpec{Cores: per, FreqScale: 1})
		}
	}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

// ParseFleet parses a "/"-separated list of node topology specs into a
// fleet (one Topology per simulated machine).
func ParseFleet(spec string) ([]Topology, error) {
	var fleet []Topology
	for _, s := range strings.Split(spec, "/") {
		t, err := ParseTopology(s)
		if err != nil {
			return nil, err
		}
		fleet = append(fleet, t)
	}
	return fleet, nil
}

// FleetString renders a fleet as a "/"-separated spec, the inverse of
// ParseFleet.
func FleetString(fleet []Topology) string {
	specs := make([]string, len(fleet))
	for i, t := range fleet {
		specs[i] = t.String()
	}
	return strings.Join(specs, "/")
}
