// Localization scoring: fault.Evaluate extended from "was this request
// anomalous?" to "which (tier, node, fault class) caused it?". A localizer
// (package causal) emits per-request Cause claims; EvaluateLocalization
// scores them per fault class against the schedule's recorded Impacts,
// and separately scores node/tier attribution among the true positives.
package fault

import "fmt"

// NumKinds is the number of fault classes; it sizes per-kind arrays so
// per-class results never pass through map iteration order.
const NumKinds = 4

// Cause is one localized root-cause claim for a request: the fault class
// plus its node/tier attribution.
type Cause struct {
	Kind Kind
	// Node is the blamed machine (-1 when the claim carries no node).
	Node int
	// Tier is the blamed application tier (-1 when the claim carries no
	// tier — hop faults blame a link, not a tier).
	Tier int
	// Score is the deviation ratio over the clean-run baseline that
	// triggered the claim (> 1 by construction).
	Score float64
}

func (c Cause) String() string {
	return fmt.Sprintf("%s node=%d tier=%d score=%.2f", c.Kind, c.Node, c.Tier, c.Score)
}

// LocalizationEval scores cause localization per fault class, plus
// node/tier attribution accuracy among the true positives.
type LocalizationEval struct {
	// Kinds is indexed by Kind: each class's precision/recall/F1 over
	// (request, class) pairs.
	Kinds [NumKinds]Eval
	// NodeHits / NodeTotal: among true-positive (request, class) pairs
	// whose ground truth names a node, how many claims blamed a right one.
	// TierHits / TierTotal likewise for tier-attributed ground truth.
	NodeHits, NodeTotal int
	TierHits, TierTotal int
}

// MacroF1 averages F1 over the classes present in the ground truth.
func (e LocalizationEval) MacroF1() float64 {
	sum, n := 0.0, 0
	for _, ev := range e.Kinds {
		if ev.TruePositives+ev.FalseNegatives > 0 {
			sum += ev.F1
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// EvaluateLocalization scores predicted per-request causes against the
// recorded ground-truth impacts. Every (request, class) pair claimed or
// recorded counts once, however many windows or path steps produced it.
func EvaluateLocalization(predicted map[uint64][]Cause, impacts []Impact) LocalizationEval {
	var truth, pred [NumKinds]map[uint64]bool
	for k := range truth {
		truth[k], pred[k] = map[uint64]bool{}, map[uint64]bool{}
	}
	for _, im := range impacts {
		if im.Kind >= 0 && int(im.Kind) < NumKinds {
			truth[im.Kind][im.RequestID] = true
		}
	}
	for id, causes := range predicted { // maporder:ok per-key set fill, order-free
		for _, c := range causes {
			if c.Kind >= 0 && int(c.Kind) < NumKinds {
				pred[c.Kind][id] = true
			}
		}
	}
	var e LocalizationEval
	for k := range e.Kinds {
		e.Kinds[k] = Evaluate(pred[k], truth[k])
	}

	// Attribution among true positives. A pair may carry several truth
	// windows (and several claims): it hits when any claim of the class
	// names any truth node/tier — counted once per pair, accumulated as
	// order-independent sums.
	type pair struct {
		id uint64
		k  Kind
	}
	seen := map[pair]bool{}
	for _, im := range impacts {
		if im.Kind < 0 || int(im.Kind) >= NumKinds {
			continue
		}
		key := pair{im.RequestID, im.Kind}
		if seen[key] || !pred[im.Kind][im.RequestID] {
			continue
		}
		seen[key] = true
		var truthNodes, truthTiers []int
		for _, o := range impacts {
			if o.RequestID != im.RequestID || o.Kind != im.Kind {
				continue
			}
			if o.Node >= 0 {
				truthNodes = append(truthNodes, o.Node)
			}
			if o.Tier >= 0 {
				truthTiers = append(truthTiers, o.Tier)
			}
		}
		match := func(want []int, get func(Cause) int) bool {
			for _, c := range predicted[im.RequestID] {
				if c.Kind != im.Kind {
					continue
				}
				for _, w := range want {
					if get(c) == w {
						return true
					}
				}
			}
			return false
		}
		if len(truthNodes) > 0 {
			e.NodeTotal++
			if match(truthNodes, func(c Cause) int { return c.Node }) {
				e.NodeHits++
			}
		}
		if len(truthTiers) > 0 {
			e.TierTotal++
			if match(truthTiers, func(c Cause) int { return c.Tier }) {
				e.TierHits++
			}
		}
	}
	return e
}
