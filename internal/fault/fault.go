// Package fault is the deterministic fault injector for the distributed
// cluster: it perturbs runs with node slowdown windows (CPU frequency
// scaling on a node's kernel), hop-latency spikes and message drops on the
// interconnect, and per-tier pollution bursts that inflate a segment's
// cache footprint. Every fault is drawn from a labeled sim.RNG fork of the
// schedule seed — the schedule is a pure function of its Config, and the
// online drop decisions consume their own labeled stream in virtual-event
// order — so runs are bit-reproducible, and every fault actually applied to
// a request is recorded with its request ID, node, tier, and time as ground
// truth for anomaly-detection evaluation (the labeled perturbations the
// paper's Section 6 evaluation lacks).
package fault

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Kind classifies a fault.
type Kind int

const (
	// NodeSlowdown scales a node's CPU clock down for a window (DVFS):
	// same work, stretched wall time.
	NodeSlowdown Kind = iota
	// HopDelay multiplies interconnect hop latencies into a node during a
	// window (congestion, a flapping link).
	HopDelay
	// HopDrop loses hop messages into a node with some probability during
	// a window; recovery is either the driver's retry path or the
	// lower-layer retransmission penalty.
	HopDrop
	// PollutionBurst inflates the cache footprint and miss ratio of
	// segments entering a tier during a window (a co-located batch job, a
	// cold cache) — the CPI-visible behavioral anomaly the Section 6
	// detector should find.
	PollutionBurst
)

func (k Kind) String() string {
	switch k {
	case NodeSlowdown:
		return "node-slowdown"
	case HopDelay:
		return "hop-delay"
	case HopDrop:
		return "hop-drop"
	case PollutionBurst:
		return "pollution-burst"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault is one scheduled perturbation with its ground-truth window.
type Fault struct {
	Kind Kind
	// Node is the target machine: the slowed node, or the destination node
	// of affected hops (-1 matches any node).
	Node int
	// Tier is the target tier of a pollution burst (-1 matches any tier).
	Tier int
	// Start and End bound the active window: [Start, End).
	Start, End sim.Time
	// Factor is the kind's intensity: the frequency scale (< 1) of a
	// slowdown, the latency multiplier (> 1) of a hop spike, or the
	// footprint inflation (> 1) of a pollution burst.
	Factor float64
	// Prob is a hop-drop window's per-message loss probability.
	Prob float64
}

func (f Fault) active(t sim.Time) bool { return t >= f.Start && t < f.End }

func (f Fault) String() string {
	return fmt.Sprintf("%s node=%d tier=%d [%v,%v) factor=%.2f prob=%.2f",
		f.Kind, f.Node, f.Tier, f.Start, f.End, f.Factor, f.Prob)
}

// Config generates a schedule. The zero values of the intensity knobs pick
// the defaults noted on each field.
type Config struct {
	// Seed drives the schedule draws and the online drop stream, through
	// labeled forks so the two cannot disturb each other.
	Seed int64
	// Horizon is the window placement range: all windows fall in
	// [0, Horizon).
	Horizon sim.Time
	// Nodes and Tiers bound the random targets.
	Nodes, Tiers int
	// Slowdowns, HopSpikes, Drops, and Bursts count the windows generated
	// per kind.
	Slowdowns, HopSpikes, Drops, Bursts int
	// SlowdownFactor is the frequency scale inside slowdown windows
	// (default 0.4 — a thermally throttled node).
	SlowdownFactor float64
	// HopDelayFactor multiplies hop latencies inside spike windows
	// (default 8).
	HopDelayFactor float64
	// DropProb is the per-message loss probability inside drop windows
	// (default 0.6).
	DropProb float64
	// BurstFactor inflates working set and miss ratio inside pollution
	// bursts (default 3).
	BurstFactor float64
	// MinWindow and MaxWindow bound window lengths (defaults Horizon/20
	// and Horizon/6).
	MinWindow, MaxWindow sim.Time
}

func (c Config) withDefaults() Config {
	if c.SlowdownFactor <= 0 || c.SlowdownFactor >= 1 {
		c.SlowdownFactor = 0.4
	}
	if c.HopDelayFactor <= 1 {
		c.HopDelayFactor = 8
	}
	if c.DropProb <= 0 || c.DropProb > 1 {
		c.DropProb = 0.6
	}
	if c.BurstFactor <= 1 {
		c.BurstFactor = 3
	}
	if c.MinWindow <= 0 {
		c.MinWindow = c.Horizon / 20
	}
	if c.MaxWindow <= c.MinWindow {
		c.MaxWindow = c.Horizon / 6
	}
	if c.MaxWindow <= c.MinWindow {
		c.MaxWindow = c.MinWindow + 1
	}
	return c
}

// Impact is one fault actually applied to a request — the ground-truth
// label anomaly evaluation scores against.
type Impact struct {
	RequestID uint64
	Kind      Kind
	Node      int
	Tier      int
	At        sim.Time
}

// Schedule is a generated fault plan plus the run's recorded impacts. A
// Schedule belongs to one run: build a fresh one (same Config → identical
// windows) per run so recorded impacts stay per-run ground truth. A nil
// *Schedule is the no-faults state; every query method treats it as clean.
type Schedule struct {
	faults  []Fault
	drops   *sim.RNG
	impacts []Impact
}

// NewSchedule draws a schedule from the configuration. It errors on a
// non-positive horizon or node/tier bounds when the respective kinds are
// requested.
func NewSchedule(cfg Config) (*Schedule, error) {
	if cfg.Horizon <= 0 && cfg.Slowdowns+cfg.HopSpikes+cfg.Drops+cfg.Bursts > 0 {
		return nil, fmt.Errorf("fault: Horizon must be positive, got %v", cfg.Horizon)
	}
	if cfg.Nodes <= 0 && cfg.Slowdowns+cfg.HopSpikes+cfg.Drops > 0 {
		return nil, fmt.Errorf("fault: Nodes must be positive for node-targeted faults")
	}
	if cfg.Tiers <= 0 && cfg.Bursts > 0 {
		return nil, fmt.Errorf("fault: Tiers must be positive for pollution bursts")
	}
	cfg = cfg.withDefaults()
	rng := sim.ForkLabeled(cfg.Seed, "fault-schedule")
	s := &Schedule{drops: sim.ForkLabeled(cfg.Seed, "fault-drops")}
	window := func() (start, end sim.Time) {
		length := sim.Time(rng.Int63n(int64(cfg.MaxWindow-cfg.MinWindow))) + cfg.MinWindow
		maxStart := int64(cfg.Horizon - length)
		if maxStart <= 0 {
			return 0, length
		}
		start = sim.Time(rng.Int63n(maxStart))
		return start, start + length
	}
	for i := 0; i < cfg.Slowdowns; i++ {
		start, end := window()
		s.faults = append(s.faults, Fault{Kind: NodeSlowdown, Node: rng.Intn(cfg.Nodes),
			Tier: -1, Start: start, End: end, Factor: cfg.SlowdownFactor})
	}
	for i := 0; i < cfg.HopSpikes; i++ {
		start, end := window()
		s.faults = append(s.faults, Fault{Kind: HopDelay, Node: rng.Intn(cfg.Nodes),
			Tier: -1, Start: start, End: end, Factor: cfg.HopDelayFactor})
	}
	for i := 0; i < cfg.Drops; i++ {
		start, end := window()
		s.faults = append(s.faults, Fault{Kind: HopDrop, Node: rng.Intn(cfg.Nodes),
			Tier: -1, Start: start, End: end, Prob: cfg.DropProb})
	}
	for i := 0; i < cfg.Bursts; i++ {
		start, end := window()
		s.faults = append(s.faults, Fault{Kind: PollutionBurst, Node: -1,
			Tier: rng.Intn(cfg.Tiers), Start: start, End: end, Factor: cfg.BurstFactor})
	}
	return s, nil
}

// FromFaults builds a schedule from an explicit fault list (tests, replay,
// hand-crafted scenarios). The seed drives only the online drop stream.
func FromFaults(seed int64, faults []Fault) *Schedule {
	return &Schedule{
		faults: append([]Fault(nil), faults...),
		drops:  sim.ForkLabeled(seed, "fault-drops"),
	}
}

// Faults returns the scheduled faults. The slice must not be modified.
func (s *Schedule) Faults() []Fault {
	if s == nil {
		return nil
	}
	return s.faults
}

// Count returns the number of scheduled faults of a kind.
func (s *Schedule) Count(k Kind) int {
	n := 0
	for _, f := range s.Faults() {
		if f.Kind == k {
			n++
		}
	}
	return n
}

// FreqScale returns the node's effective frequency scale at time t: the
// minimum over active slowdown windows, 1 when none are active.
func (s *Schedule) FreqScale(node int, t sim.Time) float64 {
	scale := 1.0
	for _, f := range s.Faults() {
		if f.Kind == NodeSlowdown && f.Node == node && f.active(t) && f.Factor < scale {
			scale = f.Factor
		}
	}
	return scale
}

// HopFactor returns the latency multiplier for a hop delivered into node
// `to` at time t: the maximum over active spike windows, 1 when clean.
func (s *Schedule) HopFactor(to int, t sim.Time) float64 {
	factor := 1.0
	for _, f := range s.Faults() {
		if f.Kind == HopDelay && (f.Node == to || f.Node < 0) && f.active(t) && f.Factor > factor {
			factor = f.Factor
		}
	}
	return factor
}

// DropHop decides whether a hop message into node `to` at time t is lost.
// The loss draw consumes the schedule's dedicated drop stream only while a
// drop window is active, so clean stretches of a run leave the stream
// untouched and the decision sequence is reproducible in event order.
func (s *Schedule) DropHop(to int, t sim.Time) bool {
	if s == nil {
		return false
	}
	prob := 0.0
	for _, f := range s.faults {
		if f.Kind == HopDrop && (f.Node == to || f.Node < 0) && f.active(t) && f.Prob > prob {
			prob = f.Prob
		}
	}
	if prob <= 0 {
		return false
	}
	return s.drops.Bool(prob)
}

// Pollution returns the footprint inflation for a segment entering a tier
// at time t: the maximum over active burst windows, 1 when clean.
func (s *Schedule) Pollution(tier int, t sim.Time) float64 {
	factor := 1.0
	for _, f := range s.Faults() {
		if f.Kind == PollutionBurst && (f.Tier == tier || f.Tier < 0) && f.active(t) && f.Factor > factor {
			factor = f.Factor
		}
	}
	return factor
}

// Record notes one fault applied to a request — the injector calls this at
// each application point, building the run's ground truth.
func (s *Schedule) Record(id uint64, k Kind, node, tier int, at sim.Time) {
	if s == nil {
		return
	}
	s.impacts = append(s.impacts, Impact{RequestID: id, Kind: k, Node: node, Tier: tier, At: at})
}

// Impacts returns the recorded per-request ground truth, in application
// order. The slice must not be modified.
func (s *Schedule) Impacts() []Impact {
	if s == nil {
		return nil
	}
	return s.impacts
}

// ImpactedIDs returns the set of request IDs hit by any of the given kinds
// (all kinds when none are given).
func (s *Schedule) ImpactedIDs(kinds ...Kind) map[uint64]bool {
	want := map[Kind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	out := map[uint64]bool{}
	for _, im := range s.Impacts() {
		if len(want) == 0 || want[im.Kind] {
			out[im.RequestID] = true
		}
	}
	return out
}

// Eval scores a predicted anomaly set against ground truth.
type Eval struct {
	TruePositives, FalsePositives, FalseNegatives int
	Precision, Recall, F1                         float64
}

// Evaluate computes precision, recall, and F1 of a predicted request-ID set
// against the ground-truth set. Empty truth with empty prediction scores a
// perfect 1 (nothing to find, nothing claimed).
func Evaluate(predicted, truth map[uint64]bool) Eval {
	var e Eval
	for id := range predicted { // maporder:ok per-key tally, order-free sum
		if truth[id] {
			e.TruePositives++
		} else {
			e.FalsePositives++
		}
	}
	for id := range truth { // maporder:ok per-key tally, order-free sum
		if !predicted[id] {
			e.FalseNegatives++
		}
	}
	if e.TruePositives+e.FalsePositives > 0 {
		e.Precision = float64(e.TruePositives) / float64(e.TruePositives+e.FalsePositives)
	} else if len(truth) == 0 {
		e.Precision = 1
	}
	if e.TruePositives+e.FalseNegatives > 0 {
		e.Recall = float64(e.TruePositives) / float64(e.TruePositives+e.FalseNegatives)
	} else {
		e.Recall = 1
	}
	if e.Precision+e.Recall > 0 {
		e.F1 = 2 * e.Precision * e.Recall / (e.Precision + e.Recall)
	}
	return e
}

func (e Eval) String() string {
	return fmt.Sprintf("precision %.3f recall %.3f F1 %.3f (tp=%d fp=%d fn=%d)",
		e.Precision, e.Recall, e.F1, e.TruePositives, e.FalsePositives, e.FalseNegatives)
}

// Summary renders the schedule compactly, windows sorted by start time.
func (s *Schedule) Summary() string {
	faults := append([]Fault(nil), s.Faults()...)
	sort.Slice(faults, func(i, j int) bool {
		if faults[i].Start != faults[j].Start {
			return faults[i].Start < faults[j].Start
		}
		return faults[i].Kind < faults[j].Kind
	})
	out := fmt.Sprintf("%d faults:", len(faults))
	for _, f := range faults {
		out += "\n  " + f.String()
	}
	return out
}
