package fault

import (
	"testing"

	"repro/internal/sim"
)

func testConfig(seed int64) Config {
	return Config{
		Seed:      seed,
		Horizon:   100 * sim.Millisecond,
		Nodes:     3,
		Tiers:     3,
		Slowdowns: 2,
		HopSpikes: 2,
		Drops:     2,
		Bursts:    2,
	}
}

func TestNewScheduleDeterministic(t *testing.T) {
	a, err := NewSchedule(testConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSchedule(testConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := a.Faults(), b.Faults()
	if len(fa) != len(fb) || len(fa) != 8 {
		t.Fatalf("fault counts differ or wrong: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("fault %d differs: %v vs %v", i, fa[i], fb[i])
		}
	}
	// The online drop streams must march in lockstep too: same queries in
	// the same order give the same decisions.
	dropsA, dropsB := 0, 0
	for i := 0; i < 2000; i++ {
		at := sim.Time(i) * 50 * sim.Microsecond
		da := a.DropHop(i%3, at)
		db := b.DropHop(i%3, at)
		if da != db {
			t.Fatalf("drop decision %d differs: %v vs %v", i, da, db)
		}
		if da {
			dropsA++
		}
		if db {
			dropsB++
		}
	}
	if dropsA == 0 {
		t.Fatal("expected some drops inside drop windows over the horizon")
	}
}

func TestNewScheduleDifferentSeedsDiffer(t *testing.T) {
	a, _ := NewSchedule(testConfig(1))
	b, _ := NewSchedule(testConfig(2))
	same := true
	for i := range a.Faults() {
		if a.Faults()[i] != b.Faults()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestNewScheduleWindowBounds(t *testing.T) {
	cfg := testConfig(7)
	s, err := NewSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range s.Faults() {
		if f.Start < 0 || f.End <= f.Start || f.End > cfg.Horizon+cfg.Horizon/6+1 {
			t.Errorf("window out of bounds: %v", f)
		}
		if f.Start >= cfg.Horizon {
			t.Errorf("window starts beyond horizon: %v", f)
		}
		switch f.Kind {
		case NodeSlowdown, HopDelay, HopDrop:
			if f.Node < 0 || f.Node >= cfg.Nodes {
				t.Errorf("node out of range: %v", f)
			}
		case PollutionBurst:
			if f.Tier < 0 || f.Tier >= cfg.Tiers {
				t.Errorf("tier out of range: %v", f)
			}
		}
	}
}

func TestNewScheduleValidation(t *testing.T) {
	if _, err := NewSchedule(Config{Slowdowns: 1, Nodes: 1}); err == nil {
		t.Error("expected error for zero horizon")
	}
	if _, err := NewSchedule(Config{Horizon: sim.Second, Slowdowns: 1}); err == nil {
		t.Error("expected error for zero nodes")
	}
	if _, err := NewSchedule(Config{Horizon: sim.Second, Bursts: 1, Nodes: 1}); err == nil {
		t.Error("expected error for zero tiers")
	}
	if s, err := NewSchedule(Config{}); err != nil || len(s.Faults()) != 0 {
		t.Errorf("empty config should give an empty schedule, got %v, %v", s.Faults(), err)
	}
}

func TestScheduleQueries(t *testing.T) {
	ms := sim.Millisecond
	s := FromFaults(1, []Fault{
		{Kind: NodeSlowdown, Node: 0, Tier: -1, Start: 10 * ms, End: 20 * ms, Factor: 0.5},
		{Kind: NodeSlowdown, Node: 0, Tier: -1, Start: 15 * ms, End: 25 * ms, Factor: 0.3},
		{Kind: HopDelay, Node: 1, Tier: -1, Start: 10 * ms, End: 20 * ms, Factor: 8},
		{Kind: HopDrop, Node: 2, Tier: -1, Start: 10 * ms, End: 20 * ms, Prob: 1},
		{Kind: PollutionBurst, Node: -1, Tier: 1, Start: 10 * ms, End: 20 * ms, Factor: 3},
	})

	if got := s.FreqScale(0, 5*ms); got != 1 {
		t.Errorf("FreqScale before window = %v, want 1", got)
	}
	if got := s.FreqScale(0, 12*ms); got != 0.5 {
		t.Errorf("FreqScale in first window = %v, want 0.5", got)
	}
	if got := s.FreqScale(0, 17*ms); got != 0.3 {
		t.Errorf("FreqScale in overlap takes min = %v, want 0.3", got)
	}
	if got := s.FreqScale(1, 12*ms); got != 1 {
		t.Errorf("FreqScale other node = %v, want 1", got)
	}
	if got := s.FreqScale(0, 25*ms); got != 1 {
		t.Errorf("FreqScale at End is exclusive = %v, want 1", got)
	}

	if got := s.HopFactor(1, 12*ms); got != 8 {
		t.Errorf("HopFactor in window = %v, want 8", got)
	}
	if got := s.HopFactor(0, 12*ms); got != 1 {
		t.Errorf("HopFactor other node = %v, want 1", got)
	}

	if !s.DropHop(2, 12*ms) {
		t.Error("DropHop with prob 1 in window should drop")
	}
	if s.DropHop(2, 25*ms) {
		t.Error("DropHop outside window should not drop")
	}
	if s.DropHop(0, 12*ms) {
		t.Error("DropHop other node should not drop")
	}

	if got := s.Pollution(1, 12*ms); got != 3 {
		t.Errorf("Pollution in window = %v, want 3", got)
	}
	if got := s.Pollution(0, 12*ms); got != 1 {
		t.Errorf("Pollution other tier = %v, want 1", got)
	}

	var nilSched *Schedule
	if nilSched.FreqScale(0, 0) != 1 || nilSched.HopFactor(0, 0) != 1 ||
		nilSched.DropHop(0, 0) || nilSched.Pollution(0, 0) != 1 {
		t.Error("nil schedule must read as clean")
	}
	nilSched.Record(1, HopDrop, 0, 0, 0) // must not panic
	if len(nilSched.Impacts()) != 0 {
		t.Error("nil schedule has no impacts")
	}
}

func TestDropStreamOnlyConsumedInWindows(t *testing.T) {
	ms := sim.Millisecond
	window := []Fault{{Kind: HopDrop, Node: 0, Tier: -1, Start: 10 * ms, End: 20 * ms, Prob: 0.5}}
	a := FromFaults(9, window)
	b := FromFaults(9, window)
	// a sees extra clean-time queries interleaved; b only the in-window
	// ones. Decisions inside the window must match — clean queries must not
	// consume the stream.
	var inWindowA []bool
	for i := 0; i < 100; i++ {
		a.DropHop(0, 5*ms) // clean: outside window
		inWindowA = append(inWindowA, a.DropHop(0, sim.Time(10*ms)+sim.Time(i)*50*sim.Microsecond))
	}
	for i := 0; i < 100; i++ {
		got := b.DropHop(0, sim.Time(10*ms)+sim.Time(i)*50*sim.Microsecond)
		if got != inWindowA[i] {
			t.Fatalf("in-window decision %d diverged: clean queries consumed the stream", i)
		}
	}
}

func TestImpactsAndImpactedIDs(t *testing.T) {
	s := FromFaults(1, nil)
	s.Record(10, HopDrop, 1, -1, 5)
	s.Record(11, PollutionBurst, -1, 1, 6)
	s.Record(11, PollutionBurst, -1, 1, 7)
	s.Record(12, NodeSlowdown, 0, -1, 8)
	if len(s.Impacts()) != 4 {
		t.Fatalf("impacts = %d, want 4", len(s.Impacts()))
	}
	all := s.ImpactedIDs()
	if len(all) != 3 || !all[10] || !all[11] || !all[12] {
		t.Errorf("ImpactedIDs() = %v", all)
	}
	bursts := s.ImpactedIDs(PollutionBurst)
	if len(bursts) != 1 || !bursts[11] {
		t.Errorf("ImpactedIDs(PollutionBurst) = %v", bursts)
	}
	both := s.ImpactedIDs(PollutionBurst, HopDrop)
	if len(both) != 2 || !both[10] || !both[11] {
		t.Errorf("ImpactedIDs(PollutionBurst, HopDrop) = %v", both)
	}
}

func TestEvaluate(t *testing.T) {
	set := func(ids ...uint64) map[uint64]bool {
		m := map[uint64]bool{}
		for _, id := range ids {
			m[id] = true
		}
		return m
	}
	e := Evaluate(set(1, 2, 3), set(2, 3, 4, 5))
	if e.TruePositives != 2 || e.FalsePositives != 1 || e.FalseNegatives != 2 {
		t.Fatalf("counts = %+v", e)
	}
	if e.Precision != 2.0/3 || e.Recall != 0.5 {
		t.Fatalf("precision/recall = %v/%v", e.Precision, e.Recall)
	}
	wantF1 := 2 * (2.0 / 3) * 0.5 / (2.0/3 + 0.5)
	if diff := e.F1 - wantF1; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("F1 = %v, want %v", e.F1, wantF1)
	}

	perfect := Evaluate(set(1), set(1))
	if perfect.Precision != 1 || perfect.Recall != 1 || perfect.F1 != 1 {
		t.Fatalf("perfect = %+v", perfect)
	}

	empty := Evaluate(set(), set())
	if empty.Precision != 1 || empty.Recall != 1 {
		t.Fatalf("empty vs empty = %+v", empty)
	}

	missed := Evaluate(set(), set(1))
	if missed.Recall != 0 || missed.F1 != 0 {
		t.Fatalf("missed = %+v", missed)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		NodeSlowdown:   "node-slowdown",
		HopDelay:       "hop-delay",
		HopDrop:        "hop-drop",
		PollutionBurst: "pollution-burst",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
