package fault

import (
	"math"
	"testing"
)

// TestEvaluateLocalizationPerClass pins per-class precision/recall/F1 on a
// hand-built fixture with known ground truth:
//
//	truth: slowdown hit requests 1,2,3 (node 0); pollution hit 2 (node 1,
//	tier 2); drops hit 4 (node 2)
//	claims: slowdown on 1,2 (right) and 9 (false alarm); pollution on 2;
//	nothing claims the drop
func TestEvaluateLocalizationPerClass(t *testing.T) {
	impacts := []Impact{
		{RequestID: 1, Kind: NodeSlowdown, Node: 0, Tier: 0},
		{RequestID: 2, Kind: NodeSlowdown, Node: 0, Tier: 1},
		{RequestID: 3, Kind: NodeSlowdown, Node: 0, Tier: 0},
		{RequestID: 2, Kind: PollutionBurst, Node: 1, Tier: 2},
		{RequestID: 4, Kind: HopDrop, Node: 2, Tier: -1},
	}
	pred := map[uint64][]Cause{
		1: {{Kind: NodeSlowdown, Node: 0, Tier: 0, Score: 2}},
		2: {
			{Kind: NodeSlowdown, Node: 0, Tier: 1, Score: 2},
			{Kind: PollutionBurst, Node: 1, Tier: 2, Score: 3},
		},
		9: {{Kind: NodeSlowdown, Node: 2, Tier: 0, Score: 1.5}},
	}
	e := EvaluateLocalization(pred, impacts)

	slow := e.Kinds[NodeSlowdown]
	if slow.TruePositives != 2 || slow.FalsePositives != 1 || slow.FalseNegatives != 1 {
		t.Fatalf("slowdown counts: %+v", slow)
	}
	if math.Abs(slow.Precision-2.0/3) > 1e-12 || math.Abs(slow.Recall-2.0/3) > 1e-12 {
		t.Fatalf("slowdown P/R: %+v", slow)
	}
	pol := e.Kinds[PollutionBurst]
	if pol.TruePositives != 1 || pol.FalsePositives != 0 || pol.FalseNegatives != 0 {
		t.Fatalf("pollution counts: %+v", pol)
	}
	if pol.Precision != 1 || pol.Recall != 1 || pol.F1 != 1 {
		t.Fatalf("pollution P/R/F1: %+v", pol)
	}
	drop := e.Kinds[HopDrop]
	if drop.TruePositives != 0 || drop.FalseNegatives != 1 || drop.Recall != 0 {
		t.Fatalf("drop counts: %+v", drop)
	}
	// HopDelay: empty truth, empty claims — the perfect-score convention.
	if d := e.Kinds[HopDelay]; d.Precision != 1 || d.Recall != 1 || d.F1 != 1 {
		t.Fatalf("delay empty-set convention: %+v", d)
	}

	// Attribution: three TP pairs ((1,slow), (2,slow), (2,pollution)),
	// every one carrying node and tier ground truth; all claims name the
	// right node and tier.
	if e.NodeTotal != 3 || e.NodeHits != 3 {
		t.Fatalf("node attribution %d/%d, want 3/3", e.NodeHits, e.NodeTotal)
	}
	if e.TierTotal != 3 || e.TierHits != 3 {
		t.Fatalf("tier attribution %d/%d, want 3/3", e.TierHits, e.TierTotal)
	}

	// MacroF1 averages the three classes present in truth (delay absent).
	want := (slow.F1 + pol.F1 + drop.F1) / 3
	if math.Abs(e.MacroF1()-want) > 1e-12 {
		t.Fatalf("MacroF1 %v, want %v", e.MacroF1(), want)
	}
}

// TestEvaluateLocalizationAttributionMiss: a claim of the right class on
// the right request but the wrong node counts as a class TP that misses
// attribution.
func TestEvaluateLocalizationAttributionMiss(t *testing.T) {
	impacts := []Impact{
		{RequestID: 7, Kind: NodeSlowdown, Node: 1, Tier: 0},
		{RequestID: 7, Kind: NodeSlowdown, Node: 1, Tier: 1},
	}
	pred := map[uint64][]Cause{
		7: {{Kind: NodeSlowdown, Node: 2, Tier: 0, Score: 2}},
	}
	e := EvaluateLocalization(pred, impacts)
	if got := e.Kinds[NodeSlowdown]; got.TruePositives != 1 || got.FalsePositives != 0 {
		t.Fatalf("class counts: %+v", got)
	}
	// The pair is counted once despite two truth windows.
	if e.NodeTotal != 1 || e.NodeHits != 0 {
		t.Fatalf("node attribution %d/%d, want 0/1", e.NodeHits, e.NodeTotal)
	}
	// Tier truth present (0 and 1); the claim's tier 0 matches one window.
	if e.TierTotal != 1 || e.TierHits != 1 {
		t.Fatalf("tier attribution %d/%d, want 1/1", e.TierHits, e.TierTotal)
	}
}

// TestEvaluateLocalizationEmpty: no truth and no claims score perfectly in
// every class.
func TestEvaluateLocalizationEmpty(t *testing.T) {
	e := EvaluateLocalization(nil, nil)
	for k, ev := range e.Kinds {
		if ev.Precision != 1 || ev.Recall != 1 || ev.F1 != 1 {
			t.Fatalf("kind %v: %+v", Kind(k), ev)
		}
	}
	if e.MacroF1() != 1 {
		t.Fatalf("MacroF1 %v, want 1", e.MacroF1())
	}
	if e.NodeTotal != 0 || e.TierTotal != 0 {
		t.Fatalf("attribution totals on empty input: %+v", e)
	}
}
