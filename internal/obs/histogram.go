// Fixed-bucket latency histogram for the streaming pipeline's identify
// path. The bucket layout is static (quarter-octave log spacing over the
// full int64 nanosecond range), counts are atomic adds, and quantiles are
// computed only at report time — so Observe is lock-free, allocation-free,
// and commutative: concurrent observers produce the same final counts in
// any interleaving, which keeps histogram-derived outputs deterministic
// under parallel shard processing.
package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the bucket count for the quarter-octave layout: exact
// buckets for values 0–3, then four sub-buckets per power of two up to
// 2⁶³. Index is monotone in value, so cumulative walks are order-correct.
const histBuckets = 4 + 4*61

// Histogram is a fixed-bucket histogram of non-negative int64 samples
// (virtual nanoseconds, by convention). The zero of the API is a nil
// *Histogram, on which Observe is a no-op — hook sites mirror Counter.
type Histogram struct {
	name   string
	counts [histBuckets]atomic.Uint64
	total  atomic.Uint64
	max    atomic.Int64
}

// NewHistogram returns a standalone histogram (usable without a
// Collector; see Collector.Histogram for the registered form).
func NewHistogram(name string) *Histogram {
	return &Histogram{name: name}
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// histBucket maps a sample to its bucket index. Negative samples clamp to
// bucket 0.
func histBucket(v int64) int {
	if v < 4 {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	u := uint64(v)
	e := bits.Len64(u) // ≥ 3
	sub := (u >> uint(e-3)) & 3
	return 4 + 4*(e-3) + int(sub)
}

// histBounds returns a bucket's inclusive value range.
func histBounds(idx int) (lo, hi uint64) {
	if idx < 4 {
		return uint64(idx), uint64(idx)
	}
	e := 3 + (idx-4)/4
	sub := uint64(idx-4) % 4
	lo = (4 + sub) << uint(e-3)
	return lo, lo + (1 << uint(e-3)) - 1
}

// Observe records one sample. Safe on a nil receiver and for concurrent
// use; never allocates.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[histBucket(v)].Add(1)
	h.total.Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of samples observed (0 for a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Max returns the largest sample observed (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile returns the q-quantile (q in [0,1], clamped) estimated by
// linear interpolation inside the holding bucket. Buckets 0–3 are exact;
// wider buckets bound the error by their quarter-octave width (≤ 25%
// relative). The result depends only on the final counts, so it is
// deterministic for a deterministic sample multiset regardless of
// observation order. Returns 0 for an empty (or nil) histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total-1)
	var cum float64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if rank < cum+float64(c) {
			lo, hi := histBounds(i)
			if hi == lo {
				return float64(lo)
			}
			frac := (rank - cum + 0.5) / float64(c)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += float64(c)
	}
	return float64(h.max.Load())
}

// Histogram returns the named registered histogram, creating it on first
// use (nil on a nil collector, mirroring Counter/Gauge).
func (c *Collector) Histogram(name string) *Histogram {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok := c.histByNm[name]; ok {
		return h
	}
	h := NewHistogram(name)
	if c.histByNm == nil {
		c.histByNm = map[string]*Histogram{}
	}
	c.histByNm[name] = h
	c.hists = append(c.hists, h)
	return h
}

// RegisterHistogram attaches an externally owned histogram to the
// collector's report (no-op on a nil collector or duplicate name). This
// lets a component keep observing — and reading quantiles from — its own
// histogram whether or not a collector is attached.
func (c *Collector) RegisterHistogram(h *Histogram) {
	if c == nil || h == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.histByNm[h.name]; ok {
		return
	}
	if c.histByNm == nil {
		c.histByNm = map[string]*Histogram{}
	}
	c.histByNm[h.name] = h
	c.hists = append(c.hists, h)
}
