// Per-request causal path trees. The aggregated span tree (obs.go)
// answers "where does wall time go across the run"; a CausalPath answers
// it for ONE request: every network hop and every per-node execution
// segment the request passed through, with hop/tier/node attribution and
// the robustness events (retries, timeouts, hedges) observed along the
// way. The distributed driver builds one per trace in virtual-event
// order — no RNG draws, no wall-clock reads — so paths are bit-identical
// across repeats and GOMAXPROCS settings, and a localizer can compare a
// faulted request's path against clean-run baselines (package causal).
package obs

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// CausalKind classifies one node of a causal path tree.
type CausalKind int

const (
	// CausalRequest is the root: the request end to end.
	CausalRequest CausalKind = iota
	// CausalHop is one network delivery of a segment to its node, across
	// however many attempts it needed.
	CausalHop
	// CausalExec is one segment's execution on a node.
	CausalExec
)

func (k CausalKind) String() string {
	switch k {
	case CausalRequest:
		return "request"
	case CausalHop:
		return "hop"
	case CausalExec:
		return "exec"
	default:
		return fmt.Sprintf("CausalKind(%d)", int(k))
	}
}

// CausalNode is one step of a request's causal path.
type CausalNode struct {
	Kind CausalKind
	// Node is the machine index the step is attributed to (-1 at the root).
	Node int
	// Tier is the application tier the step serves (-1 at the root).
	Tier int
	// Start and Dur bound the step on the virtual clock. A hop's Dur spans
	// first send to first successful delivery, retry overhead included; a
	// hop that never delivered before the run ended keeps Dur 0.
	Start, Dur sim.Time
	// Retries and Timeouts count the delivery attempts this hop burned;
	// Hedged marks a hedge duplicate's hop or a hedge winner's execution.
	Retries, Timeouts int
	Hedged            bool
	// Execution accounting (CausalExec only): CPU time on the node and the
	// hardware counters the tracker observed.
	CPUTime      sim.Time
	Instructions uint64
	Cycles       uint64

	Children []*CausalNode
}

// CPI is the step's cycles per retired instruction (0 without execution).
func (n *CausalNode) CPI() float64 {
	if n.Instructions == 0 {
		return 0
	}
	return float64(n.Cycles) / float64(n.Instructions)
}

// NsPerCycle is CPU nanoseconds per cycle — the inverse effective clock
// rate. A DVFS slowdown stretches it; cache pollution inflates cycles and
// CPU time together and leaves it flat, which is what lets a localizer
// tell the two apart. 0 without execution.
func (n *CausalNode) NsPerCycle() float64 {
	if n.Cycles == 0 {
		return 0
	}
	return float64(n.CPUTime) / float64(n.Cycles)
}

// Add appends a child and returns it.
func (n *CausalNode) Add(child *CausalNode) *CausalNode {
	n.Children = append(n.Children, child)
	return child
}

// Walk visits the subtree rooted at n in depth-first insertion order —
// virtual-event order, since the driver appends as events fire.
func (n *CausalNode) Walk(fn func(*CausalNode)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// CausalPath is one request's causal path tree.
type CausalPath struct {
	RequestID uint64
	Type      string
	Root      *CausalNode
}

// NewCausalPath roots a path at the request's submission.
func NewCausalPath(id uint64, typ string, start sim.Time) *CausalPath {
	return &CausalPath{
		RequestID: id,
		Type:      typ,
		Root:      &CausalNode{Kind: CausalRequest, Node: -1, Tier: -1, Start: start},
	}
}

// Walk visits the whole path in virtual-event order.
func (p *CausalPath) Walk(fn func(*CausalNode)) {
	if p == nil || p.Root == nil {
		return
	}
	p.Root.Walk(fn)
}

// String renders the path as an indented tree, one deterministic line per
// step.
func (p *CausalPath) String() string {
	if p == nil || p.Root == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "request %d (%s)\n", p.RequestID, p.Type)
	var walk func(n *CausalNode, depth int)
	walk = func(n *CausalNode, depth int) {
		if n != p.Root {
			b.WriteString(strings.Repeat("  ", depth))
			fmt.Fprintf(&b, "%s node=%d tier=%d start=%v dur=%v", n.Kind, n.Node, n.Tier, n.Start, n.Dur)
			if n.Retries > 0 || n.Timeouts > 0 {
				fmt.Fprintf(&b, " retries=%d timeouts=%d", n.Retries, n.Timeouts)
			}
			if n.Hedged {
				b.WriteString(" hedged")
			}
			if n.Kind == CausalExec {
				fmt.Fprintf(&b, " cpu=%v ins=%d cpi=%.3f", n.CPUTime, n.Instructions, n.CPI())
			}
			b.WriteByte('\n')
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(p.Root, 0)
	return b.String()
}
