// Report extraction and the two exporters: machine-readable JSON (the
// cmd/benchjson envelope and rbvrepro -json) and a human summary that
// reprints Table 1-style overhead accounting for any run (rbvrepro -trace).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// SpanReport is one aggregated node of the exported span tree.
type SpanReport struct {
	Name     string        `json:"name"`
	Count    uint64        `json:"count"`
	TotalNs  int64         `json:"total_ns,omitempty"`
	MaxNs    int64         `json:"max_ns,omitempty"`
	Children []*SpanReport `json:"children,omitempty"`
}

// CounterReport is one exported counter.
type CounterReport struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeReport is one exported gauge.
type GaugeReport struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramReport is one exported fixed-bucket histogram: the count plus
// the standard quantiles, computed from the frozen counts at report time.
type HistogramReport struct {
	Name   string  `json:"name"`
	Count  uint64  `json:"count"`
	P50Ns  float64 `json:"p50_ns"`
	P90Ns  float64 `json:"p90_ns"`
	P99Ns  float64 `json:"p99_ns"`
	P999Ns float64 `json:"p999_ns"`
	MaxNs  int64   `json:"max_ns"`
}

// SamplerReport is the exported Table 1-style overhead accounting.
type SamplerReport struct {
	KernelSamples    uint64  `json:"kernel_samples"`
	InterruptSamples uint64  `json:"interrupt_samples"`
	KernelCostNs     float64 `json:"kernel_cost_ns"`
	InterruptCostNs  float64 `json:"interrupt_cost_ns"`
	OverheadNs       float64 `json:"overhead_ns"`
	WallNs           int64   `json:"wall_ns"`
	OverheadPct      float64 `json:"overhead_pct"`
}

// Report is a collector's frozen, serializable state: span totals in
// virtual time, counters, gauges, and sampler overhead accounting.
type Report struct {
	Label       string            `json:"label"`
	SampleEvery uint64            `json:"sample_every,omitempty"`
	Spans       *SpanReport       `json:"spans"`
	Counters    []CounterReport   `json:"counters,omitempty"`
	Gauges      []GaugeReport     `json:"gauges,omitempty"`
	Histograms  []HistogramReport `json:"histograms,omitempty"`
	Sampler     *SamplerReport    `json:"sampler,omitempty"`
}

// Report snapshots the collector. Child order is creation order, counter
// order is registration order — both deterministic for a deterministic
// instrumentation sequence. Returns nil on a nil collector.
func (c *Collector) Report() *Report {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r := &Report{Label: c.root.name, Spans: exportNode(&c.root)}
	if c.sampleEvery > 1 {
		r.SampleEvery = c.sampleEvery
	}
	for _, ct := range c.counters {
		r.Counters = append(r.Counters, CounterReport{Name: ct.name, Value: ct.v.Load()})
	}
	for _, g := range c.gauges {
		r.Gauges = append(r.Gauges, GaugeReport{Name: g.name, Value: g.Value()})
	}
	for _, h := range c.hists {
		r.Histograms = append(r.Histograms, HistogramReport{
			Name:   h.name,
			Count:  h.Count(),
			P50Ns:  h.Quantile(0.50),
			P90Ns:  h.Quantile(0.90),
			P99Ns:  h.Quantile(0.99),
			P999Ns: h.Quantile(0.999),
			MaxNs:  h.Max(),
		})
	}
	if s := c.sampler; s != (SamplerStats{}) {
		r.Sampler = &SamplerReport{
			KernelSamples:    s.KernelSamples,
			InterruptSamples: s.InterruptSamples,
			KernelCostNs:     s.KernelCostNs,
			InterruptCostNs:  s.InterruptCostNs,
			OverheadNs:       s.OverheadNs(),
			WallNs:           s.WallNs,
			OverheadPct:      s.OverheadPct(),
		}
	}
	return r
}

func exportNode(n *node) *SpanReport {
	sr := &SpanReport{
		Name:    n.name,
		Count:   n.count.Load(),
		TotalNs: n.totalNs.Load(),
		MaxNs:   n.maxNs.Load(),
	}
	for _, ch := range n.children {
		sr.Children = append(sr.Children, exportNode(ch))
	}
	return sr
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

// Summary renders the human-readable trace summary: the span tree in
// virtual time, the counters, and the Table 1-style sampling-overhead
// accounting.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "observability report: %s", r.Label)
	if r.SampleEvery > 1 {
		fmt.Fprintf(&b, " (sample spans 1-in-%d)", r.SampleEvery)
	}
	b.WriteString("\n\nspans (virtual clock):\n")
	summarizeNode(&b, r.Spans, 0)
	if len(r.Counters) > 0 {
		width := 0
		for _, ct := range r.Counters {
			if len(ct.Name) > width {
				width = len(ct.Name)
			}
		}
		b.WriteString("\ncounters:\n")
		for _, ct := range r.Counters {
			fmt.Fprintf(&b, "  %-*s  %d\n", width, ct.Name, ct.Value)
		}
	}
	for _, g := range r.Gauges {
		fmt.Fprintf(&b, "  %s = %g\n", g.Name, g.Value)
	}
	if len(r.Histograms) > 0 {
		b.WriteString("\nhistograms (virtual ns):\n")
		fmt.Fprintf(&b, "  %-28s  %10s  %10s  %10s  %10s  %10s  %10s\n",
			"name", "count", "p50", "p90", "p99", "p999", "max")
		for _, h := range r.Histograms {
			fmt.Fprintf(&b, "  %-28s  %10d  %10.0f  %10.0f  %10.0f  %10.0f  %10d\n",
				h.Name, h.Count, h.P50Ns, h.P90Ns, h.P99Ns, h.P999Ns, h.MaxNs)
		}
	}
	if s := r.Sampler; s != nil {
		b.WriteString("\nsampling overhead (Table 1 accounting):\n")
		fmt.Fprintf(&b, "  %-10s  %12s  %10s  %14s\n", "context", "samples", "ns/sample", "total")
		fmt.Fprintf(&b, "  %-10s  %12d  %10.1f  %14s\n", "in-kernel",
			s.KernelSamples, s.KernelCostNs,
			sim.Time(float64(s.KernelSamples)*s.KernelCostNs).String())
		fmt.Fprintf(&b, "  %-10s  %12d  %10.1f  %14s\n", "interrupt",
			s.InterruptSamples, s.InterruptCostNs,
			sim.Time(float64(s.InterruptSamples)*s.InterruptCostNs).String())
		fmt.Fprintf(&b, "  total overhead %s = %.3f%% of %s simulated\n",
			sim.Time(s.OverheadNs).String(), s.OverheadPct, sim.Time(s.WallNs).String())
	}
	return b.String()
}

func summarizeNode(b *strings.Builder, n *SpanReport, depth int) {
	if n == nil {
		return
	}
	fmt.Fprintf(b, "  %s%-*s  count=%-8d", strings.Repeat("  ", depth), 24-2*depth, n.Name, n.Count)
	if n.TotalNs > 0 {
		fmt.Fprintf(b, "  total=%-12s  max=%s", sim.Time(n.TotalNs).String(), sim.Time(n.MaxNs).String())
	}
	b.WriteString("\n")
	for _, ch := range n.Children {
		summarizeNode(b, ch, depth+1)
	}
}
