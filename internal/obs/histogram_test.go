package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketsMonotone(t *testing.T) {
	// Bucket index must be monotone in the sample value and every value
	// must fall inside its own bucket's bounds.
	vals := []int64{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, math.MaxInt64}
	prev := -1
	for _, v := range vals {
		idx := histBucket(v)
		if idx < prev {
			t.Fatalf("bucket index not monotone: histBucket(%d)=%d after %d", v, idx, prev)
		}
		if idx >= histBuckets {
			t.Fatalf("histBucket(%d)=%d out of range", v, idx)
		}
		lo, hi := histBounds(idx)
		if uint64(v) < lo || uint64(v) > hi {
			t.Fatalf("value %d outside its bucket [%d,%d]", v, lo, hi)
		}
		prev = idx
	}
	if got := histBucket(-5); got != 0 {
		t.Fatalf("negative samples must clamp to bucket 0, got %d", got)
	}
}

func TestHistogramQuantileExactSmall(t *testing.T) {
	// Values 0-3 have exact single-value buckets: quantiles of a known
	// multiset are exact.
	h := NewHistogram("t")
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(3)
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %v, want 1", got)
	}
	if got := h.Quantile(0.99); got != 3 {
		t.Fatalf("p99 = %v, want 3", got)
	}
	if h.Count() != 100 || h.Max() != 3 {
		t.Fatalf("count/max = %d/%d", h.Count(), h.Max())
	}
}

func TestHistogramQuantileBoundedError(t *testing.T) {
	// Quarter-octave buckets bound the relative quantile error.
	h := NewHistogram("t")
	for v := int64(1); v <= 100000; v++ {
		h.Observe(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := q * 100000
		got := h.Quantile(q)
		if rel := math.Abs(got-want) / want; rel > 0.26 {
			t.Fatalf("q=%v: got %v want ~%v (rel err %.3f)", q, got, want, rel)
		}
	}
}

func TestHistogramNilAndEmpty(t *testing.T) {
	var h *Histogram
	h.Observe(5) // must not panic
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 || h.Name() != "" {
		t.Fatal("nil histogram must read as empty")
	}
	e := NewHistogram("e")
	if e.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestHistogramConcurrentDeterministic(t *testing.T) {
	// Counts commute: any interleaving of the same sample multiset yields
	// identical quantiles.
	serial := NewHistogram("s")
	conc := NewHistogram("c")
	for i := int64(0); i < 40000; i++ {
		serial.Observe(i % 977)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(w); i < 40000; i += 4 {
				conc.Observe(i % 977)
			}
		}(w)
	}
	wg.Wait()
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		if serial.Quantile(q) != conc.Quantile(q) {
			t.Fatalf("q=%v differs: %v vs %v", q, serial.Quantile(q), conc.Quantile(q))
		}
	}
}

func TestCollectorHistogramReport(t *testing.T) {
	c := New("test")
	h := c.Histogram("serve.identify_ns")
	if c.Histogram("serve.identify_ns") != h {
		t.Fatal("same name must return the same histogram")
	}
	ext := NewHistogram("serve.sojourn_ns")
	c.RegisterHistogram(ext)
	c.RegisterHistogram(ext) // duplicate registration is a no-op
	h.Observe(100)
	ext.Observe(200)
	rep := c.Report()
	if len(rep.Histograms) != 2 {
		t.Fatalf("want 2 histogram reports, got %d", len(rep.Histograms))
	}
	if rep.Histograms[0].Name != "serve.identify_ns" || rep.Histograms[0].Count != 1 {
		t.Fatalf("unexpected first histogram report %+v", rep.Histograms[0])
	}
	if rep.Histograms[1].MaxNs != 200 {
		t.Fatalf("registered histogram not reported: %+v", rep.Histograms[1])
	}
	var nilC *Collector
	if nilC.Histogram("x") != nil {
		t.Fatal("nil collector must return nil histogram")
	}
	nilC.RegisterHistogram(ext) // must not panic
}
