// Package obs is the reproduction's observability layer: deterministic
// tracing and metrics for the simulated pipeline, in the spirit of the
// paper's Section 3 — which measures the measurement itself (per-sample
// costs, observer-effect events, overhead percentages) — extended to the
// whole stack: the simulated kernel, the samplers, the pairwise-distance
// engine, and the signature-serving fast path.
//
// Three properties drive the design:
//
//   - Spans are keyed to the *simulated* clock. A span's duration is a
//     sim.Time delta read from the virtual event clock, never from the wall
//     clock, so enabling the collector cannot perturb any experiment's
//     output: instrumentation reads state the simulation already computes
//     and writes none back.
//
//   - Disabled costs one branch. Hook sites hold typed handles (*Counter,
//     *SpanSeries) resolved once at setup; when no collector is attached the
//     handle is nil and the hook is a single predictable nil-check. There is
//     no map lookup, lock, or allocation on any hot path.
//
//   - Aggregation, not event logs. Spans of the same path (run → experiment
//     → request → phase → sample) accumulate into one tree node each
//     (count, total, max), so a million-sample run costs a few hundred
//     bytes of state and the report is O(tree), not O(events).
package obs

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Counter is a monotonic event counter. The zero of the API is a nil
// *Counter, on which Add is a no-op — hook sites call unconditionally or
// guard with a single nil-check.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Add increments the counter by n. Safe on a nil receiver and for
// concurrent use.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the counter's registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a last-value metric (pool sizes, worker counts). Nil-safe like
// Counter.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set records the gauge's current value. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last value set (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// node is one aggregation point of the span tree. Count/total/max are
// atomics so leaf observations need no lock; the child list is guarded by
// the collector's mutex (children are created at setup time, not in hot
// loops).
type node struct {
	name     string
	children []*node
	byName   map[string]*node
	count    atomic.Uint64
	totalNs  atomic.Int64
	maxNs    atomic.Int64
}

func (n *node) child(name string) *node {
	if c, ok := n.byName[name]; ok {
		return c
	}
	c := &node{name: name, byName: map[string]*node{}}
	if n.byName == nil {
		n.byName = map[string]*node{}
	}
	n.byName[name] = c
	n.children = append(n.children, c)
	return c
}

func (n *node) observe(d sim.Time) {
	n.count.Add(1)
	n.totalNs.Add(int64(d))
	for {
		cur := n.maxNs.Load()
		if int64(d) <= cur || n.maxNs.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// SpanSeries is a resolved handle onto one span-tree node: an aggregated
// stream of same-kind spans (all requests of a run, all samples of a
// phase). Handles are resolved once at setup via Collector.Span and held by
// the instrumented component; a nil handle makes Observe a no-op.
type SpanSeries struct {
	n *node
	// every downsamples the series: only the first of each stride of
	// `every` observations is recorded (1 records all). The stride counter
	// advances deterministically with the — deterministic — call sequence,
	// so a sampled report is itself reproducible.
	every uint64
	seen  atomic.Uint64
}

// Observe records one completed span of virtual duration d. Safe on a nil
// receiver and for concurrent use.
func (s *SpanSeries) Observe(d sim.Time) {
	if s == nil {
		return
	}
	if s.every > 1 && (s.seen.Add(1)-1)%s.every != 0 {
		return
	}
	s.n.observe(d)
}

// Collector gathers spans, counters, and gauges for one run of the
// pipeline. A nil *Collector is the disabled state: every method is a
// no-op (or returns a nil handle), so callers thread it unconditionally.
//
// Scopes (Enter/Exit) build the span hierarchy: the registry enters an
// experiment scope, core.Run enters a run scope beneath it, and the
// instrumented subsystems resolve leaf series (request, phase, sample)
// under whatever scope is current at setup. Scope changes take the
// collector's lock; leaf observations are lock-free.
type Collector struct {
	mu          sync.Mutex
	root        node
	cur         *node
	counters    []*Counter
	counterByNm map[string]*Counter
	gauges      []*Gauge
	gaugeByNm   map[string]*Gauge
	hists       []*Histogram
	histByNm    map[string]*Histogram
	sampleEvery uint64
	sampler     SamplerStats
}

// New returns an enabled collector whose root span carries the given label
// (e.g. the command name or test name).
func New(label string) *Collector {
	c := &Collector{
		root:        node{name: label, byName: map[string]*node{}},
		counterByNm: map[string]*Counter{},
		gaugeByNm:   map[string]*Gauge{},
		sampleEvery: 1,
	}
	c.cur = &c.root
	c.root.count.Store(1)
	return c
}

// SetSampleEvery puts the collector in sampling mode: span series resolved
// via SampledSpan afterwards record only one observation in every n. n < 1
// is treated as 1 (record everything). Set before instrumenting.
func (c *Collector) SetSampleEvery(n uint64) {
	if c == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	c.sampleEvery = n
	c.mu.Unlock()
}

// Enter descends into (creating on first use) the named child scope of the
// current scope and counts one entry. No-op on a nil collector.
func (c *Collector) Enter(name string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.cur = c.cur.child(name)
	c.cur.count.Add(1)
	c.mu.Unlock()
}

// Exit closes the current scope, adding the scope's own virtual duration d
// (0 for scopes whose time lives in their children), and ascends. Exiting
// the root is a no-op. No-op on a nil collector.
func (c *Collector) Exit(d sim.Time) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.cur != &c.root {
		c.cur.totalNs.Add(int64(d))
		if int64(d) > c.cur.maxNs.Load() {
			c.cur.maxNs.Store(int64(d))
		}
		c.cur = c.parentOf(c.cur)
	}
	c.mu.Unlock()
}

// parentOf finds a node's parent by walking from the root; scope stacks are
// a handful deep, so the walk is trivially cheap and saves a parent pointer
// per node. Caller holds c.mu.
func (c *Collector) parentOf(target *node) *node {
	var walk func(n *node) *node
	walk = func(n *node) *node {
		for _, ch := range n.children {
			if ch == target {
				return n
			}
			if p := walk(ch); p != nil {
				return p
			}
		}
		return nil
	}
	if p := walk(&c.root); p != nil {
		return p
	}
	return &c.root
}

// Span resolves a span-series handle at path under the current scope,
// creating tree nodes as needed. Returns nil on a nil collector, so the
// handle itself carries the enabled/disabled state.
func (c *Collector) Span(path ...string) *SpanSeries {
	return c.span(1, path)
}

// SampledSpan is Span honoring the collector's sampling mode: in a
// collector configured with SetSampleEvery(n), the returned series records
// one observation in every n. Use for the highest-frequency series (the
// per-sample spans).
func (c *Collector) SampledSpan(path ...string) *SpanSeries {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	every := c.sampleEvery
	c.mu.Unlock()
	return c.span(every, path)
}

func (c *Collector) span(every uint64, path []string) *SpanSeries {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	n := c.cur
	for _, p := range path {
		n = n.child(p)
	}
	c.mu.Unlock()
	return &SpanSeries{n: n, every: every}
}

// Counter returns the named counter, creating it on first use. The same
// name always returns the same counter, so independent runs accumulate.
// Returns nil on a nil collector.
func (c *Collector) Counter(name string) *Counter {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ct, ok := c.counterByNm[name]; ok {
		return ct
	}
	ct := &Counter{name: name}
	c.counterByNm[name] = ct
	c.counters = append(c.counters, ct)
	return ct
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil collector.
func (c *Collector) Gauge(name string) *Gauge {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if g, ok := c.gaugeByNm[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	c.gaugeByNm[name] = g
	c.gauges = append(c.gauges, g)
	return g
}

// SamplerStats is one run's sampling-overhead accounting in the paper's
// Table 1 terms: sample counts per context times the measured per-sample
// cost, against the run's simulated wall time.
type SamplerStats struct {
	// KernelSamples and InterruptSamples count samples per context.
	KernelSamples, InterruptSamples uint64
	// KernelCostNs and InterruptCostNs are the per-sample costs (Table 1,
	// Mbench-Spin).
	KernelCostNs, InterruptCostNs float64
	// WallNs is the run's simulated duration.
	WallNs int64
}

// OverheadNs returns the estimated total sampling overhead.
func (s SamplerStats) OverheadNs() float64 {
	return float64(s.KernelSamples)*s.KernelCostNs + float64(s.InterruptSamples)*s.InterruptCostNs
}

// OverheadPct returns the overhead as a percentage of simulated wall time
// (0 when no wall time was recorded).
func (s SamplerStats) OverheadPct() float64 {
	if s.WallNs <= 0 {
		return 0
	}
	return 100 * s.OverheadNs() / float64(s.WallNs)
}

// AddSamplerStats accumulates one run's sampler accounting into the
// collector (counts and wall time add; per-sample costs adopt the latest
// non-zero values). No-op on a nil collector.
func (c *Collector) AddSamplerStats(s SamplerStats) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.sampler.KernelSamples += s.KernelSamples
	c.sampler.InterruptSamples += s.InterruptSamples
	c.sampler.WallNs += s.WallNs
	if s.KernelCostNs > 0 {
		c.sampler.KernelCostNs = s.KernelCostNs
	}
	if s.InterruptCostNs > 0 {
		c.sampler.InterruptCostNs = s.InterruptCostNs
	}
	c.mu.Unlock()
}
