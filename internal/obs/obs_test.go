package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

// Every method must be a no-op (or return nil handles) on a nil collector —
// this is the disabled state the whole pipeline threads unconditionally.
func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Enter("scope")
	c.Exit(5)
	c.SetSampleEvery(10)
	c.AddSamplerStats(SamplerStats{KernelSamples: 1})
	if s := c.Span("a", "b"); s != nil {
		t.Errorf("Span on nil collector = %v, want nil", s)
	}
	if s := c.SampledSpan("a"); s != nil {
		t.Errorf("SampledSpan on nil collector = %v, want nil", s)
	}
	if ct := c.Counter("x"); ct != nil {
		t.Errorf("Counter on nil collector = %v, want nil", ct)
	}
	if g := c.Gauge("x"); g != nil {
		t.Errorf("Gauge on nil collector = %v, want nil", g)
	}
	if r := c.Report(); r != nil {
		t.Errorf("Report on nil collector = %v, want nil", r)
	}

	// Nil handles are the hot-path disabled state.
	var span *SpanSeries
	span.Observe(7)
	var ct *Counter
	ct.Add(3)
	if ct.Value() != 0 || ct.Name() != "" {
		t.Error("nil counter leaked state")
	}
	var g *Gauge
	g.Set(1.5)
	if g.Value() != 0 || g.Name() != "" {
		t.Error("nil gauge leaked state")
	}
}

func TestSpanTreeAggregation(t *testing.T) {
	c := New("test")
	c.Enter("exp")
	c.Enter("run")
	req := c.Span("request")
	phase := c.Span("request", "phase")
	req.Observe(100)
	req.Observe(300)
	phase.Observe(60)
	c.Exit(400) // the run scope's own duration
	c.Exit(0)

	r := c.Report()
	if r.Label != "test" {
		t.Errorf("label = %q", r.Label)
	}
	run := r.Spans.Children[0].Children[0]
	if run.Name != "run" || run.Count != 1 || run.TotalNs != 400 {
		t.Errorf("run node = %+v", run)
	}
	reqN := run.Children[0]
	if reqN.Name != "request" || reqN.Count != 2 || reqN.TotalNs != 400 || reqN.MaxNs != 300 {
		t.Errorf("request node = %+v", reqN)
	}
	ph := reqN.Children[0]
	if ph.Name != "phase" || ph.Count != 1 || ph.TotalNs != 60 {
		t.Errorf("phase node = %+v", ph)
	}
}

// Re-entering a scope by name reuses the node, so repeated runs of the same
// experiment aggregate instead of fanning out.
func TestScopeReuseAggregates(t *testing.T) {
	c := New("test")
	for i := 0; i < 3; i++ {
		c.Enter("run")
		c.Exit(sim.Time(10 * (i + 1)))
	}
	r := c.Report()
	if len(r.Spans.Children) != 1 {
		t.Fatalf("children = %d, want 1 reused node", len(r.Spans.Children))
	}
	run := r.Spans.Children[0]
	if run.Count != 3 || run.TotalNs != 60 || run.MaxNs != 30 {
		t.Errorf("run node = %+v", run)
	}
}

func TestCountersAndGauges(t *testing.T) {
	c := New("test")
	a := c.Counter("a")
	a.Add(2)
	if again := c.Counter("a"); again != a {
		t.Error("same name should return the same counter")
	}
	c.Counter("a").Add(3)
	c.Counter("b").Add(1)
	c.Gauge("w").Set(4)

	// Concurrent adds must not lose counts.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				a.Add(1)
			}
		}()
	}
	wg.Wait()

	r := c.Report()
	if len(r.Counters) != 2 || r.Counters[0].Name != "a" || r.Counters[1].Name != "b" {
		t.Fatalf("counters = %+v (registration order expected)", r.Counters)
	}
	if r.Counters[0].Value != 8005 {
		t.Errorf("a = %d, want 8005", r.Counters[0].Value)
	}
	if len(r.Gauges) != 1 || r.Gauges[0].Value != 4 {
		t.Errorf("gauges = %+v", r.Gauges)
	}
}

func TestSampledSpanStride(t *testing.T) {
	c := New("test")
	c.SetSampleEvery(4)
	s := c.SampledSpan("sample")
	for i := 0; i < 10; i++ {
		s.Observe(10)
	}
	r := c.Report()
	sample := r.Spans.Children[0]
	// Observations 0, 4, 8 are recorded: deterministic 1-in-4 stride.
	if sample.Count != 3 || sample.TotalNs != 30 {
		t.Errorf("sampled node = %+v, want count=3 total=30", sample)
	}
	if r.SampleEvery != 4 {
		t.Errorf("SampleEvery = %d", r.SampleEvery)
	}

	// Span (unsampled) ignores the collector's sampling mode.
	full := c.Span("full")
	for i := 0; i < 10; i++ {
		full.Observe(1)
	}
	if n := c.Report().Spans.Children[1]; n.Count != 10 {
		t.Errorf("unsampled count = %d, want 10", n.Count)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	c := New("round")
	c.Enter("run")
	c.Span("request").Observe(123)
	c.Exit(123)
	c.Counter("k").Add(7)
	c.AddSamplerStats(SamplerStats{
		KernelSamples: 100, InterruptSamples: 50,
		KernelCostNs: 423.3, InterruptCostNs: 758.7,
		WallNs: 1_000_000,
	})

	var buf bytes.Buffer
	if err := c.Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, buf.String())
	}
	if back.Label != "round" || back.Spans == nil || back.Spans.Children[0].Name != "run" {
		t.Errorf("round trip lost spans: %+v", back)
	}
	if len(back.Counters) != 1 || back.Counters[0].Value != 7 {
		t.Errorf("round trip lost counters: %+v", back.Counters)
	}
	if back.Sampler == nil {
		t.Fatal("round trip lost sampler accounting")
	}
	wantOverhead := 100*423.3 + 50*758.7
	if back.Sampler.OverheadNs != wantOverhead {
		t.Errorf("overhead = %g, want %g", back.Sampler.OverheadNs, wantOverhead)
	}
	if pct := back.Sampler.OverheadPct; pct < 7.9 || pct > 8.1 {
		t.Errorf("overhead pct = %g, want ~8.0", pct)
	}
}

func TestSummaryContents(t *testing.T) {
	c := New("sum")
	c.Enter("fig1")
	c.Enter("run")
	c.Span("request").Observe(2 * sim.Millisecond)
	c.Exit(2 * sim.Millisecond)
	c.Exit(0)
	c.Counter("kernel.context_switches").Add(42)
	c.AddSamplerStats(SamplerStats{
		KernelSamples: 10, InterruptSamples: 20,
		KernelCostNs: 423.3, InterruptCostNs: 758.7,
		WallNs: int64(10 * sim.Millisecond),
	})
	s := c.Report().Summary()
	for _, want := range []string{
		"observability report: sum",
		"spans (virtual clock):",
		"fig1", "run", "request",
		"counters:",
		"kernel.context_switches",
		"sampling overhead (Table 1 accounting):",
		"in-kernel", "interrupt", "ns/sample",
		"% of", "simulated",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

// AddSamplerStats must accumulate counts/wall across runs while adopting
// the per-sample costs.
func TestSamplerStatsAccumulate(t *testing.T) {
	c := New("acc")
	c.AddSamplerStats(SamplerStats{KernelSamples: 5, KernelCostNs: 400, WallNs: 100})
	c.AddSamplerStats(SamplerStats{KernelSamples: 7, InterruptSamples: 2, KernelCostNs: 423.3, InterruptCostNs: 758.7, WallNs: 50})
	s := c.Report().Sampler
	if s.KernelSamples != 12 || s.InterruptSamples != 2 || s.WallNs != 150 {
		t.Errorf("accumulated = %+v", s)
	}
	if s.KernelCostNs != 423.3 {
		t.Errorf("cost should adopt latest non-zero: %g", s.KernelCostNs)
	}
}
