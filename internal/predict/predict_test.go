package predict

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLastValue(t *testing.T) {
	p := NewLastValue()
	if p.Predict() != 0 {
		t.Fatal("fresh predictor should predict 0")
	}
	p.Observe(3, 1)
	p.Observe(7, 100)
	if p.Predict() != 7 {
		t.Fatalf("Predict = %v, want 7", p.Predict())
	}
	p.Reset()
	if p.Predict() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestRequestAverage(t *testing.T) {
	p := NewRequestAverage()
	p.Observe(2, 10)
	p.Observe(4, 30)
	if got := p.Predict(); math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("weighted average = %v, want 3.5", got)
	}
	p.Observe(99, 0) // zero-length observation is ignored
	if got := p.Predict(); math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("zero-length observation changed estimate: %v", got)
	}
}

func TestEWMAConvergesAndSmoothes(t *testing.T) {
	p := NewEWMA(0.6)
	p.Observe(10, 1)
	if p.Predict() != 10 {
		t.Fatal("first observation should seed the estimate")
	}
	p.Observe(0, 1)
	// E = 0.6*10 + 0.4*0 = 6.
	if got := p.Predict(); math.Abs(got-6) > 1e-12 {
		t.Fatalf("EWMA = %v, want 6", got)
	}
	// Converges to a constant signal.
	for i := 0; i < 200; i++ {
		p.Observe(5, 1)
	}
	if got := p.Predict(); math.Abs(got-5) > 1e-6 {
		t.Fatalf("EWMA did not converge: %v", got)
	}
}

func TestVaEWMAUnitLengthMatchesEWMA(t *testing.T) {
	e := NewEWMA(0.6)
	v := NewVaEWMA(0.6, 1)
	vals := []float64{3, 8, 1, 9, 4}
	for _, x := range vals {
		e.Observe(x, 1)
		v.Observe(x, 1) // unit-length observations
	}
	if math.Abs(e.Predict()-v.Predict()) > 1e-12 {
		t.Fatalf("vaEWMA with unit lengths %v != EWMA %v", v.Predict(), e.Predict())
	}
}

func TestVaEWMALongObservationAgesMore(t *testing.T) {
	short := NewVaEWMA(0.6, 1)
	long := NewVaEWMA(0.6, 1)
	short.Observe(10, 1)
	long.Observe(10, 1)
	// A long new observation should pull the estimate further toward it.
	short.Observe(0, 0.5)
	long.Observe(0, 5)
	if long.Predict() >= short.Predict() {
		t.Fatalf("long observation aged less: long=%v short=%v",
			long.Predict(), short.Predict())
	}
}

func TestVaEWMAEquationForm(t *testing.T) {
	// E_k = α^(t/t̂)·E_{k−1} + (1−α^(t/t̂))·O_k, α=0.5, t̂=1, t=2 → w=0.25.
	p := NewVaEWMA(0.5, 1)
	p.Observe(8, 1)
	p.Observe(0, 2)
	want := 0.25 * 8.0
	if got := p.Predict(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("vaEWMA = %v, want %v", got, want)
	}
}

func TestPredictorsBoundedByObservationsProperty(t *testing.T) {
	// All predictors' estimates stay within the observed value range.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ps := []Predictor{NewLastValue(), NewRequestAverage(), NewEWMA(0.6), NewVaEWMA(0.6, 1)}
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 1+r.Intn(50); i++ {
			v := r.Float64() * 10
			l := 0.1 + r.Float64()*5
			lo, hi = math.Min(lo, v), math.Max(hi, v)
			for _, p := range ps {
				p.Observe(v, l)
			}
		}
		for _, p := range ps {
			if est := p.Predict(); est < lo-1e-9 || est > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestVaEWMATracksRegimeChangesBetterThanAverage(t *testing.T) {
	// A signal with a regime change: the average predictor lags badly, the
	// vaEWMA adapts — the reason Figure 11 favors it.
	va := NewVaEWMA(0.6, 1)
	avg := NewRequestAverage()
	for i := 0; i < 50; i++ {
		va.Observe(1, 1)
		avg.Observe(1, 1)
	}
	for i := 0; i < 10; i++ {
		va.Observe(9, 1)
		avg.Observe(9, 1)
	}
	errVa := math.Abs(va.Predict() - 9)
	errAvg := math.Abs(avg.Predict() - 9)
	if errVa >= errAvg {
		t.Fatalf("vaEWMA (%v) should adapt faster than average (%v)", errVa, errAvg)
	}
}

func TestNames(t *testing.T) {
	if NewLastValue().Name() == "" || NewRequestAverage().Name() == "" ||
		NewEWMA(0.5).Name() == "" || NewVaEWMA(0.5, 1).Name() == "" {
		t.Fatal("empty predictor name")
	}
}

func TestResets(t *testing.T) {
	ps := []Predictor{NewLastValue(), NewRequestAverage(), NewEWMA(0.6), NewVaEWMA(0.6, 1)}
	for _, p := range ps {
		p.Observe(5, 1)
		p.Reset()
		if p.Predict() != 0 {
			t.Fatalf("%s Reset did not clear", p.Name())
		}
	}
}
