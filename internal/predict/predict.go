// Package predict implements the online request behavior predictors of
// Section 5.1: the running request average, the last-value predictor, the
// classic exponentially weighted moving average (EWMA), and the paper's
// variable-aging vaEWMA filter (Equation 5), which ages past samples in
// proportion to each new observation's duration — necessary because
// samples collected at request context switches and system calls have
// widely varying lengths.
package predict

import "math"

// Predictor estimates the target metric value for the coming execution
// period from past observations.
type Predictor interface {
	// Observe feeds a completed period: its metric value and its length
	// (time or instructions, any consistent unit).
	Observe(value, length float64)
	// Predict returns the estimate for the next period.
	Predict() float64
	// Reset clears state for a new request.
	Reset()
	// Name identifies the predictor in reports.
	Name() string
}

// LastValue predicts the next period's value as the last period's — the
// short-term-stability assumption.
type LastValue struct {
	last float64
	seen bool
}

// NewLastValue returns a LastValue predictor.
func NewLastValue() *LastValue { return &LastValue{} }

// Name implements Predictor.
func (*LastValue) Name() string { return "last value" }

// Observe implements Predictor.
func (p *LastValue) Observe(value, _ float64) { p.last, p.seen = value, true }

// Predict implements Predictor.
func (p *LastValue) Predict() float64 { return p.last }

// Reset implements Predictor.
func (p *LastValue) Reset() { *p = LastValue{} }

// RequestAverage predicts using the cumulative length-weighted average from
// the request beginning — the no-variation assumption.
type RequestAverage struct {
	sum, weight float64
}

// NewRequestAverage returns a RequestAverage predictor.
func NewRequestAverage() *RequestAverage { return &RequestAverage{} }

// Name implements Predictor.
func (*RequestAverage) Name() string { return "request average" }

// Observe implements Predictor.
func (p *RequestAverage) Observe(value, length float64) {
	if length <= 0 {
		return
	}
	p.sum += value * length
	p.weight += length
}

// Predict implements Predictor.
func (p *RequestAverage) Predict() float64 {
	if p.weight == 0 {
		return 0
	}
	return p.sum / p.weight
}

// Reset implements Predictor.
func (p *RequestAverage) Reset() { *p = RequestAverage{} }

// EWMA is the basic filter E_k = α·E_{k−1} + (1−α)·O_k (Equation 4), as
// used for TCP round-trip estimation. It assumes each sample ages previous
// samples equally, regardless of the sample's length.
type EWMA struct {
	// Alpha is the gain: stability (high) vs agility (low).
	Alpha float64

	est  float64
	seen bool
}

// NewEWMA returns an EWMA filter with gain alpha.
func NewEWMA(alpha float64) *EWMA { return &EWMA{Alpha: alpha} }

// Name implements Predictor.
func (*EWMA) Name() string { return "EWMA" }

// Observe implements Predictor.
func (p *EWMA) Observe(value, _ float64) {
	if !p.seen {
		p.est, p.seen = value, true
		return
	}
	p.est = p.Alpha*p.est + (1-p.Alpha)*value
}

// Predict implements Predictor.
func (p *EWMA) Predict() float64 { return p.est }

// Reset implements Predictor.
func (p *EWMA) Reset() { p.est, p.seen = 0, false }

// VaEWMA is the paper's variable-aging filter (Equation 5):
//
//	E_k = α^(t_k/t̂) · E_{k−1} + (1 − α^(t_k/t̂)) · O_k
//
// where t_k is observation k's length and t̂ the unit length, so a long
// observation ages history more than a short one.
type VaEWMA struct {
	// Alpha is the gain parameter (the paper settles on 0.6).
	Alpha float64
	// UnitLength is t̂ (the paper uses 1 ms with time-length samples).
	UnitLength float64

	est  float64
	seen bool
}

// NewVaEWMA returns a variable-aging EWMA filter.
func NewVaEWMA(alpha, unitLength float64) *VaEWMA {
	return &VaEWMA{Alpha: alpha, UnitLength: unitLength}
}

// Name implements Predictor.
func (*VaEWMA) Name() string { return "vaEWMA" }

// Observe implements Predictor.
func (p *VaEWMA) Observe(value, length float64) {
	if !p.seen {
		p.est, p.seen = value, true
		return
	}
	if length < 0 {
		length = 0
	}
	w := math.Pow(p.Alpha, length/p.UnitLength)
	p.est = w*p.est + (1-w)*value
}

// Predict implements Predictor.
func (p *VaEWMA) Predict() float64 { return p.est }

// Reset implements Predictor.
func (p *VaEWMA) Reset() { p.est, p.seen = 0, false }
