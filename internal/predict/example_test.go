package predict_test

import (
	"fmt"

	"repro/internal/predict"
)

// The paper's Equation 5: the variable-aging EWMA weighs each observation
// by its period length, so one long observation moves the estimate as much
// as many short ones.
func ExampleVaEWMA() {
	p := predict.NewVaEWMA(0.5, 1.0) // gain 0.5, unit length 1
	p.Observe(8, 1)                  // seeds the estimate
	p.Observe(0, 2)                  // a double-length observation: weight 0.5^2
	fmt.Printf("%.1f\n", p.Predict())
	// Output: 2.0
}
