package projection

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func defaultPlatform() Platform {
	return FromMachine(machine.DefaultConfig())
}

// mkPeriod builds a period with the given CPI, refs/ins, and miss ratio.
func mkPeriod(cpi, refs, miss float64) metrics.Counters {
	const ins = 1_000_000
	r := uint64(refs * ins)
	return metrics.Counters{
		Cycles:       uint64(cpi * ins),
		Instructions: ins,
		L2Refs:       r,
		L2Misses:     uint64(miss * float64(r)),
	}
}

func TestIdentityProjection(t *testing.T) {
	p := New(defaultPlatform(), defaultPlatform())
	c := mkPeriod(2.0, 0.04, 0.15)
	got := p.PeriodCPI(c)
	if math.Abs(got-2.0) > 0.02 {
		t.Fatalf("identity projection = %v, want ~2.0", got)
	}
}

func TestFasterMemoryLowersCPI(t *testing.T) {
	target := defaultPlatform()
	target.Cache.MissPenalty = 120 // much faster memory
	p := New(defaultPlatform(), target)
	c := mkPeriod(2.0, 0.04, 0.15)
	got := p.PeriodCPI(c)
	if got >= 2.0 {
		t.Fatalf("faster memory projection = %v, want < 2.0", got)
	}
	// A compute-bound period barely benefits.
	cb := mkPeriod(1.2, 0.002, 0.05)
	if d := 1.2 - p.PeriodCPI(cb); d > 0.05 {
		t.Fatalf("compute-bound period improved by %v on faster memory", d)
	}
}

func TestBiggerCacheHelpsMissHeavyPeriods(t *testing.T) {
	target := defaultPlatform()
	target.Cache.CapacityBytes *= 4
	p := New(defaultPlatform(), target)
	missy := mkPeriod(3.0, 0.05, 0.4)
	clean := mkPeriod(3.0, 0.05, 0.02)
	dMissy := 3.0 - p.PeriodCPI(missy)
	dClean := 3.0 - p.PeriodCPI(clean)
	if dMissy <= dClean {
		t.Fatalf("miss-heavy period should benefit more from cache: %v vs %v", dMissy, dClean)
	}
	// Shrinking the cache hurts.
	small := defaultPlatform()
	small.Cache.CapacityBytes /= 4
	ps := New(defaultPlatform(), small)
	if ps.PeriodCPI(missy) <= 3.0 {
		t.Fatal("smaller cache should raise a miss-heavy period's CPI")
	}
}

func TestCapacitySensitivityZero(t *testing.T) {
	target := defaultPlatform()
	target.Cache.CapacityBytes *= 8
	p := New(defaultPlatform(), target)
	p.CapacitySensitivity = 0
	c := mkPeriod(2.5, 0.04, 0.3)
	// Sensitivity 0: the miss ratio is unchanged, so only latency terms
	// (identical here) matter — projection is the identity.
	if got := p.PeriodCPI(c); math.Abs(got-2.5) > 0.02 {
		t.Fatalf("insensitive projection = %v, want ~2.5", got)
	}
}

func TestProjectWholeTrace(t *testing.T) {
	tr := &trace.Request{ID: 1, App: "x", Type: "t"}
	// Durations consistent with the 3 GHz source clock: cycles / 3 ns.
	a := mkPeriod(2.0, 0.04, 0.2)
	b := mkPeriod(1.2, 0.005, 0.05)
	tr.AddPeriod(sim.Time(a.Cycles/3), a)
	tr.AddPeriod(sim.Time(b.Cycles/3), b)
	target := defaultPlatform()
	target.CyclesPerNs = 6.0 // twice the clock
	p := New(defaultPlatform(), target)
	res := p.Project(tr)
	if len(res.PeriodCPI) != 2 {
		t.Fatalf("period series = %d", len(res.PeriodCPI))
	}
	// Same cache, double clock: CPI identical, CPU time halves.
	srcCPI := tr.MetricValue(metrics.CPI)
	if math.Abs(res.CPI-srcCPI) > 0.02 {
		t.Fatalf("CPI changed under clock-only projection: %v vs %v", res.CPI, srcCPI)
	}
	if res.SpeedUp < 1.8 || res.SpeedUp > 2.2 {
		t.Fatalf("speedup = %v, want ~2 for double clock", res.SpeedUp)
	}
}

func TestProjectEmptyTrace(t *testing.T) {
	p := New(defaultPlatform(), defaultPlatform())
	res := p.Project(&trace.Request{})
	if res.CPI != 0 || res.CPUTimeNs != 0 {
		t.Fatalf("empty trace projection = %+v", res)
	}
}

func TestValidate(t *testing.T) {
	p := New(defaultPlatform(), Platform{})
	if p.Validate() == nil {
		t.Fatal("zero target should not validate")
	}
	if New(defaultPlatform(), defaultPlatform()).Validate() != nil {
		t.Fatal("default platforms should validate")
	}
}

// TestProjectionAgainstSimulation is the end-to-end validation: project
// solo-run traces from the default platform onto a modified platform, then
// actually simulate that platform and compare mean request CPI.
func TestProjectionAgainstSimulation(t *testing.T) {
	// Solo 1-core runs give contention-free traces, the regime where
	// per-period inversion of the cost model is exact.
	src, err := core.Run(core.Options{
		App: workload.NewTPCC(), Cores: 1, Concurrency: 1, Requests: 40,
		Sampling: core.DefaultSampling(workload.NewTPCC()), Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Project onto a platform with faster memory.
	target := defaultPlatform()
	target.Cache.MissPenalty = 120
	p := New(defaultPlatform(), target)
	var projected []float64
	for _, r := range p.ProjectAll(src.Store.Traces) {
		projected = append(projected, r.CPI)
	}
	srcMean := stats.Mean(src.Store.MetricValues(metrics.CPI))
	projMean := stats.Mean(projected)
	if projMean >= srcMean {
		t.Fatalf("projection onto faster memory did not lower CPI: %v -> %v", srcMean, projMean)
	}
	// The reduction should be material for TPCC (memory-sensitive) but
	// bounded: the miss contribution is roughly half the total for its
	// hotter periods.
	if projMean < srcMean*0.5 {
		t.Fatalf("projection collapsed CPI implausibly: %v -> %v", srcMean, projMean)
	}
}
