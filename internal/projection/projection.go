// Package projection implements the paper's first future-work direction
// (Section 7): using the characterized request workload as input to a
// performance model that predicts request resource consumption on a new
// hardware platform.
//
// A request trace carries, per period, the measured CPI, L2 references per
// instruction, and L2 miss ratio on the source platform. Projection inverts
// the source platform's cost model per period to recover the
// platform-independent base CPI (the cycles the instruction stream needs
// absent cache/memory stalls), then re-applies the target platform's cost
// model: different hit latency, miss penalty, clock rate, and — through a
// capacity-sensitivity heuristic — L2 size. Fine-grained behavior variation
// patterns make this per-period rather than whole-request, which is exactly
// why the paper argues variation patterns help projection: periods with
// different memory intensities scale differently across platforms.
package projection

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Platform describes the hardware a trace is measured on or projected to.
type Platform struct {
	Cache cache.Config
	// CyclesPerNs is the clock rate.
	CyclesPerNs float64
}

// FromMachine extracts the platform parameters of a machine configuration.
func FromMachine(cfg machine.Config) Platform {
	return Platform{Cache: cfg.Cache, CyclesPerNs: cfg.CyclesPerNs}
}

// Projector maps request traces from a source to a target platform.
type Projector struct {
	Source, Target Platform
	// CapacitySensitivity shapes how the L2 miss ratio responds to a
	// capacity change: missTarget = missSource × (capS/capT)^sensitivity,
	// clamped to [0,1]. 0 means capacity-insensitive (streaming); 1 means
	// fully capacity-bound. The default 0.5 is a neutral middle.
	CapacitySensitivity float64
}

// New returns a projector with the default capacity sensitivity.
func New(source, target Platform) *Projector {
	return &Projector{Source: source, Target: target, CapacitySensitivity: 0.5}
}

// Result is a projected request execution.
type Result struct {
	// CPI is the projected whole-request cycles per instruction.
	CPI float64
	// CPUTimeNs is the projected CPU time.
	CPUTimeNs float64
	// SpeedUp is source CPU time / projected CPU time (>1 = faster).
	SpeedUp float64
	// PeriodCPI is the projected per-period CPI series (aligned with the
	// trace's periods that carried instructions).
	PeriodCPI []float64
}

// missOnTarget scales a measured miss ratio to the target capacity.
func (p *Projector) missOnTarget(miss float64) float64 {
	capS, capT := p.Source.Cache.CapacityBytes, p.Target.Cache.CapacityBytes
	if capS <= 0 || capT <= 0 || capS == capT {
		return miss
	}
	// Power-law capacity response.
	scaled := miss * math.Pow(capS/capT, p.CapacitySensitivity)
	if scaled > 1 {
		scaled = 1
	}
	if scaled < 0 {
		scaled = 0
	}
	return scaled
}

// PeriodCPI projects one measured period's CPI onto the target platform.
// The period must have instructions; zero-instruction periods return 0.
func (p *Projector) PeriodCPI(c metrics.Counters) float64 {
	if c.Instructions == 0 {
		return 0
	}
	cpiS := c.Value(metrics.CPI)
	refs := c.Value(metrics.L2RefsPerIns)
	missS := c.Value(metrics.L2MissRatio)
	// Invert the source cost model: base = CPI − hit − miss contributions.
	base := cpiS - cache.CPI(p.Source.Cache, 0, refs, missS, 1)
	if base < 0.1 {
		base = 0.1 // measured period dominated by effects the model cannot separate
	}
	missT := p.missOnTarget(missS)
	return cache.CPI(p.Target.Cache, base, refs, missT, 1)
}

// Project maps a whole request trace onto the target platform.
func (p *Projector) Project(tr *trace.Request) Result {
	var cycles, ins float64
	var series []float64
	for _, period := range tr.Periods {
		if period.C.Instructions == 0 {
			continue
		}
		cpi := p.PeriodCPI(period.C)
		n := float64(period.C.Instructions)
		cycles += cpi * n
		ins += n
		series = append(series, cpi)
	}
	if ins == 0 {
		return Result{}
	}
	cpi := cycles / ins
	cpuNs := cycles / p.Target.CyclesPerNs
	src := float64(tr.CPUTime())
	speedup := 0.0
	if cpuNs > 0 {
		speedup = src / cpuNs
	}
	return Result{CPI: cpi, CPUTimeNs: cpuNs, SpeedUp: speedup, PeriodCPI: series}
}

// ProjectAll projects every trace in a store and returns the results in
// order.
func (p *Projector) ProjectAll(traces []*trace.Request) []Result {
	out := make([]Result, len(traces))
	for i, tr := range traces {
		out[i] = p.Project(tr)
	}
	return out
}

// Validate reports an error for non-positive target parameters.
func (p *Projector) Validate() error {
	if p.Target.CyclesPerNs <= 0 {
		return fmt.Errorf("projection: target clock rate must be positive")
	}
	if p.Target.Cache.CapacityBytes <= 0 {
		return fmt.Errorf("projection: target cache capacity must be positive")
	}
	return nil
}
