package signature

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/sim"
)

// TestServiceConcurrentStreams drives many in-flight requests through the
// sharded service from concurrent workers (exercised under -race by `make
// check`) and verifies every request's final identification equals the
// naive matcher on its full prefix.
func TestServiceConcurrentStreams(t *testing.T) {
	g := sim.NewRNG(4242)
	bank := randomBank(g, 120, 32)
	m := NewMatcher(bank)
	svc := NewService(m, 0)

	const requests = 96
	streams := make([][]float64, requests)
	for i := range streams {
		streams[i] = randomStream(g, bank, 48)
	}

	finals := make([]int, requests)
	workers := runtime.GOMAXPROCS(0) * 2
	var next sync.Mutex
	cursor := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				next.Lock()
				i := cursor
				cursor++
				next.Unlock()
				if i >= requests {
					return
				}
				stream := streams[i]
				// Stream in small chunks, interleaving with other workers'
				// requests on the same shards.
				best := -1
				for pos := 0; pos < len(stream); {
					end := pos + 1 + i%3
					if end > len(stream) {
						end = len(stream)
					}
					best = svc.Observe(uint64(i), stream[pos:end]...)
					pos = end
				}
				finals[i] = best
			}
		}()
	}
	wg.Wait()

	for i, stream := range streams {
		if want := bank.IdentifyPattern(stream); finals[i] != want {
			t.Fatalf("request %d: service best %d, naive %d", i, finals[i], want)
		}
		if got, want := svc.PredictHigh(uint64(i)), bank.PredictHighUsage(stream); got != want {
			t.Fatalf("request %d: service prediction %v, naive %v", i, got, want)
		}
	}

	if svc.Live() != requests {
		t.Fatalf("live sessions = %d, want %d", svc.Live(), requests)
	}
	for i := 0; i < requests; i++ {
		svc.Finish(uint64(i))
	}
	svc.Finish(9999) // unknown id: no-op
	if svc.Live() != 0 {
		t.Fatalf("live sessions after finish = %d, want 0", svc.Live())
	}
	if svc.Best(0) != -1 || svc.PredictHigh(0) {
		t.Fatal("finished request should report -1/false")
	}

	// Second wave reuses pooled sessions; results must be identical.
	for i, stream := range streams {
		id := uint64(1_000_000 + i)
		svc.Update(id, stream)
		if got, want := svc.Best(id), bank.IdentifyPattern(stream); got != want {
			t.Fatalf("reused session request %d: best %d, naive %d", i, got, want)
		}
	}
}

// TestServiceUpdateRewind checks the Update path end to end: a revised
// tail (as the resampler produces when a request ends mid-bucket) must be
// detected and the rebuilt state must match naive identification.
func TestServiceUpdateRewind(t *testing.T) {
	g := sim.NewRNG(5)
	bank := randomBank(g, 40, 24)
	svc := NewService(NewMatcher(bank), 4)

	stream := randomStream(g, bank, 30)
	for pos := 1; pos <= len(stream); pos++ {
		prefix := append([]float64(nil), stream[:pos]...)
		if pos > 1 {
			prefix[pos-1] *= 1.5 // pretend the tail bucket is still partial
		}
		if got, want := svc.Update(7, prefix), bank.IdentifyPattern(prefix); got != want {
			t.Fatalf("pos %d: update best %d, naive %d", pos, got, want)
		}
	}
}
