// Online identification fast path, part 3: shrinking the candidate set
// itself. Representative traces oversample common request types, so a bank
// holds many near-identical signatures that the matcher re-eliminates on
// every update. Compact deduplicates them once, at build time, by
// k-medoids over the pairwise L1 pattern distances — routed through the
// parallel distance engine — keeping one medoid signature per cluster.
package signature

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/distance"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Compact reduces a bank to k medoid entries chosen by k-medoids over the
// pairwise L1 distances between entry patterns. The prediction threshold
// is preserved (it summarizes the full trace population, not the surviving
// entries), entries keep their relative order, and the original bank is
// left untouched. A non-positive k or one at least the bank size returns
// the bank unchanged. Deterministic for a given bank and seed.
func Compact(b *Bank, k int, seed int64) *Bank {
	if k <= 0 || k >= len(b.Entries) {
		return b
	}
	seqs := make([][]float64, len(b.Entries))
	for i := range b.Entries {
		seqs[i] = b.Entries[i].Pattern
	}
	dm := distance.NewMatrixFromSequences(seqs, distance.L1{}, distance.MatrixOptions{})
	res := cluster.KMedoidsMatrix(dm, cluster.Config{K: k, Seed: seed})
	keep := append([]int(nil), res.Medoids...)
	sort.Ints(keep)
	out := &Bank{
		Metric:      b.Metric,
		BucketIns:   b.BucketIns,
		ThresholdNs: b.ThresholdNs,
		Entries:     make([]Entry, 0, len(keep)),
	}
	for _, i := range keep {
		out.Entries = append(out.Entries, b.Entries[i])
	}
	return out
}

// BuildCompact builds a bank like Build, then compacts it to at most
// compactTo medoid entries (see Compact).
func BuildCompact(traces []*trace.Request, m metrics.Metric, bucketIns float64,
	maxEntries, compactTo int, seed int64) *Bank {
	return Compact(Build(traces, m, bucketIns, maxEntries), compactTo, seed)
}
