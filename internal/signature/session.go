// Online identification fast path, part 2: per-request streaming state. A
// Session tracks one in-flight request's partial variation pattern and
// answers "which bank entry matches best so far" incrementally: arriving
// buckets cost O(Δ × surviving candidates) instead of the naive
// O(bank × prefix) rescan, while the reported index is bit-identical to
// IdentifyPattern on the same prefix.
//
// Exactness argument. Per-entry accumulators replay prefixL1's own
// left-to-right additions, paused and resumed — the float operation
// sequence is identical, so a fully caught-up accumulator equals the naive
// distance bit for bit. All prefix-L1 terms are non-negative, so a partial
// accumulator is a true lower bound of the entry's current distance, and
// the best (minimum) distance is non-decreasing as the prefix grows. A
// candidate is skipped only when a lower bound proves the naive loop could
// not have adopted it: with entries e compared against the running best
// (bestD at index bestIdx), naive's strict `<` adoption means e loses
// whenever d_e > bestD, or d_e == bestD with e > bestIdx. Early abandoning
// applies the same test to the partial sum mid-accumulation.
package signature

import (
	"math"

	"repro/internal/obs"
)

// sessionObs holds resolved counters for the identification cascade's three
// prune stages. One instance is shared by every session a Service drives
// (the counters are atomic), and a nil pointer — the default for sessions
// used outside a Service or without a collector — costs one branch per
// prune site.
type sessionObs struct {
	cachedPruned *obs.Counter // stage 1: cached lower bound won
	paaPruned    *obs.Counter // stage 2: piecewise-aggregate bound won
	abandoned    *obs.Counter // stage 3: exact accumulation abandoned early
}

// Session is one in-flight request's incremental matching state against a
// Matcher's bank. Sessions are not safe for concurrent use (use Service to
// drive many at once); they are reusable via Reset, and a reused session
// reaches an allocation-free steady state once its buffers have grown.
type Session struct {
	// DisableCascade turns off candidate filtering and early abandoning,
	// leaving plain incremental accumulation (every entry caught up on
	// every identification). The result is identical either way; the knob
	// exists to isolate the cascade's contribution in benchmarks.
	DisableCascade bool

	m      *Matcher
	obs    *sessionObs
	prefix []float64 // buckets observed so far
	segP   []float64 // complete-segment sums of prefix (paaSegment wide)
	acc    []float64 // per-entry exact L1 sum over prefix[:done[e]]
	done   []int     // per-entry accumulated bucket count
	// lb caches each entry's best-known lower bound on its current
	// distance. Prefix-L1 distances only grow as the prefix grows, so a
	// bound computed at any earlier prefix stays valid — a candidate
	// pruned by the piecewise-aggregate bound then costs one comparison
	// per update until the best distance overtakes its cached bound,
	// instead of a fresh bound evaluation every time.
	lb    []float64
	dirty bool
	best  int
	bestD float64
}

// NewSession starts a fresh in-flight request against the matcher's bank.
func (m *Matcher) NewSession() *Session {
	s := &Session{
		m:    m,
		acc:  make([]float64, len(m.bank.Entries)),
		done: make([]int, len(m.bank.Entries)),
		lb:   make([]float64, len(m.bank.Entries)),
	}
	s.Reset()
	return s
}

// Reset returns the session to the empty-prefix state, keeping its buffers
// for reuse.
func (s *Session) Reset() {
	s.prefix = s.prefix[:0]
	s.segP = s.segP[:0]
	for e := range s.acc {
		s.acc[e] = 0
		s.done[e] = 0
		s.lb[e] = 0
	}
	s.dirty = true
	s.best = -1
	s.bestD = math.Inf(1)
}

// Len returns the number of buckets observed so far.
func (s *Session) Len() int { return len(s.prefix) }

// Rebind repoints the session at a new matcher (a swapped signature
// bank), keeping the observed prefix. All per-entry accumulators reset to
// zero, so the next identification catches every entry of the new bank up
// over the full prefix — exactly the state a fresh session fed the same
// prefix would reach, which keeps mid-flight requests' results identical
// to IdentifyPattern against the new bank. Buffers are reused; a rebind
// between same-sized banks allocates nothing.
func (s *Session) Rebind(m *Matcher) {
	s.m = m
	n := len(m.bank.Entries)
	if cap(s.acc) >= n {
		s.acc = s.acc[:n]
		s.done = s.done[:n]
		s.lb = s.lb[:n]
	} else {
		s.acc = make([]float64, n)
		s.done = make([]int, n)
		s.lb = make([]float64, n)
	}
	for e := 0; e < n; e++ {
		s.acc[e] = 0
		s.done[e] = 0
		s.lb[e] = 0
	}
	s.dirty = true
	s.best = -1
	s.bestD = math.Inf(1)
}

// Extend appends newly observed buckets to the partial pattern.
func (s *Session) Extend(delta ...float64) {
	if len(delta) == 0 {
		return
	}
	s.dirty = true
	s.prefix = append(s.prefix, delta...)
	for len(s.segP)*paaSegment+paaSegment <= len(s.prefix) {
		base := len(s.segP) * paaSegment
		var sum float64
		for i := base; i < base+paaSegment; i++ {
			sum += s.prefix[i]
		}
		s.segP = append(s.segP, sum)
	}
}

// Update synchronizes the session to an externally recomputed prefix. The
// common case — the new prefix extends the observed one — feeds only the
// delta through Extend. When already-observed buckets changed (resampling
// can revise the final partial bucket of a finished trace), the session
// rebuilds from scratch; that happens at most once per request, after which
// the prefix is stable.
func (s *Session) Update(prefix []float64) {
	shared := 0
	for shared < len(s.prefix) && shared < len(prefix) && s.prefix[shared] == prefix[shared] {
		shared++
	}
	if shared < len(s.prefix) {
		s.Reset()
		shared = 0
	}
	s.Extend(prefix[shared:]...)
}

// Best returns the bank index whose signature best matches the partial
// pattern so far — the same index IdentifyPattern returns for the same
// prefix — or -1 for an empty bank.
func (s *Session) Best() int {
	s.identify()
	return s.best
}

// BestDistance returns the prefix-L1 distance of the best match
// (+Inf for an empty bank).
func (s *Session) BestDistance() float64 {
	s.identify()
	return s.bestD
}

// PredictHigh predicts whether the request's CPU consumption will exceed
// the bank threshold — the streaming equivalent of PredictHighUsage.
func (s *Session) PredictHigh() bool {
	return s.m.bank.HighUsage(s.Best())
}

// identify refreshes the cached best match.
func (s *Session) identify() {
	if !s.dirty {
		return
	}
	s.dirty = false
	ne := len(s.m.bank.Entries)
	if ne == 0 {
		s.best, s.bestD = -1, math.Inf(1)
		return
	}
	if s.DisableCascade {
		best, bestD := -1, math.Inf(1)
		for e := 0; e < ne; e++ {
			if d := s.catchUp(e); d < bestD {
				best, bestD = e, d
			}
		}
		s.best, s.bestD = best, bestD
		return
	}
	// Seed the bound with the previous winner: its distance only grew by
	// the new buckets, and it usually still wins, so the scan starts with
	// a tight bestD and most candidates die on a single comparison.
	seed := s.best
	if seed < 0 {
		seed = 0
	}
	bestIdx, bestD := seed, s.catchUp(seed)
	s.lb[seed] = s.acc[seed]
	n := len(s.prefix)
	// Prune tallies accumulate in locals and flush to the shared atomic
	// counters once per identification, so an attached collector costs
	// three adds per call, not one per pruned candidate.
	var cachedPruned, paaPruned, abandoned uint64
	for e := 0; e < ne; e++ {
		if e == seed {
			continue
		}
		// Cascade stage 1: the cached lower bound (exact partial sum or an
		// earlier envelope bound) kills dead candidates on one comparison.
		if v := s.lb[e]; v > bestD || (v == bestD && e > bestIdx) {
			cachedPruned++
			continue
		}
		if s.done[e] < n {
			// Stage 2: refresh the cheap piecewise-aggregate bound over
			// the unaccumulated gap, and cache it.
			lb := s.acc[e] + s.m.paaRemaining(e, s.done[e], s.segP)
			s.lb[e] = lb
			if lb > bestD || (lb == bestD && e > bestIdx) {
				paaPruned++
				continue
			}
			// Stage 3: exact accumulation with early abandoning. The
			// abandon deadline overshoots bestD so a losing candidate's
			// accumulator lands well above the bound and stays pruned at
			// stage 1 until bestD genuinely overtakes it — without the
			// overshoot, the bound's steady growth would revive every
			// candidate on every update.
			complete := s.catchUpAbandon(e, 2*bestD)
			s.lb[e] = s.acc[e]
			if !complete {
				abandoned++
				continue
			}
		}
		if d := s.acc[e]; d < bestD || (d == bestD && e < bestIdx) {
			bestIdx, bestD = e, d
		}
	}
	if s.obs != nil {
		s.obs.cachedPruned.Add(cachedPruned)
		s.obs.paaPruned.Add(paaPruned)
		s.obs.abandoned.Add(abandoned)
	}
	s.best, s.bestD = bestIdx, bestD
}

// catchUp accumulates entry e's distance over all unconsumed buckets and
// returns the exact prefix-L1 distance.
func (s *Session) catchUp(e int) float64 {
	pat := s.m.bank.Entries[e].Pattern
	acc := s.acc[e]
	for i := s.done[e]; i < len(s.prefix); i++ {
		if i < len(pat) {
			acc += math.Abs(s.prefix[i] - pat[i])
		} else {
			acc += math.Abs(s.prefix[i])
		}
	}
	s.acc[e] = acc
	s.done[e] = len(s.prefix)
	return acc
}

// catchUpAbandon accumulates entry e like catchUp but abandons once the
// partial sum exceeds limit (≥ the best distance, so an abandoned entry
// provably loses). It reports whether the accumulation ran to completion;
// either way acc/done stay exact for the consumed buckets, so later rounds
// resume where it stopped. Abandonment never decides the winner — a
// completed entry is still adopted by the caller's exact comparison — so
// the limit choice only trades when work happens.
func (s *Session) catchUpAbandon(e int, limit float64) bool {
	pat := s.m.bank.Entries[e].Pattern
	acc := s.acc[e]
	i := s.done[e]
	for ; i < len(s.prefix); i++ {
		if i < len(pat) {
			acc += math.Abs(s.prefix[i] - pat[i])
		} else {
			acc += math.Abs(s.prefix[i])
		}
		if acc > limit {
			i++
			break
		}
	}
	s.acc[e] = acc
	s.done[e] = i
	return i == len(s.prefix)
}
