package signature

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// mkTrace builds a trace with a refs/ins profile and a CPU time scale.
func mkTrace(id uint64, typ string, refs []float64, cpuScale float64) *trace.Request {
	tr := &trace.Request{ID: id, App: "a", Type: typ}
	for _, r := range refs {
		const ins = 100_000
		lr := uint64(r * ins)
		tr.AddPeriod(sim.Time(1000*cpuScale), metrics.Counters{
			Cycles: 2 * ins, Instructions: ins, L2Refs: lr, L2Misses: lr / 5,
		})
	}
	return tr
}

func buildBank(t *testing.T) *Bank {
	t.Helper()
	// Two families: "light" short requests with low refs, "heavy" long
	// requests with a recognizable ramp.
	var traces []*trace.Request
	for i := uint64(0); i < 10; i++ {
		traces = append(traces, mkTrace(i, "light", []float64{0.005, 0.006, 0.005}, 1))
	}
	for i := uint64(10); i < 20; i++ {
		traces = append(traces,
			mkTrace(i, "heavy", []float64{0.01, 0.03, 0.05, 0.05, 0.05, 0.05}, 4))
	}
	return Build(traces, metrics.L2RefsPerIns, 100_000, 500)
}

func TestBuildSetsMedianThreshold(t *testing.T) {
	b := buildBank(t)
	if len(b.Entries) != 20 {
		t.Fatalf("entries = %d", len(b.Entries))
	}
	// Light requests: 3 periods × 1000 = 3000; heavy: 6 × 4000 = 24000.
	if b.ThresholdNs <= 3000 || b.ThresholdNs >= 24000 {
		t.Fatalf("threshold %v should separate the families", b.ThresholdNs)
	}
}

func TestBuildRespectsMaxEntries(t *testing.T) {
	var traces []*trace.Request
	for i := uint64(0); i < 30; i++ {
		traces = append(traces, mkTrace(i, "x", []float64{0.01}, 1))
	}
	b := Build(traces, metrics.L2RefsPerIns, 100_000, 10)
	if len(b.Entries) != 10 {
		t.Fatalf("maxEntries not respected: %d", len(b.Entries))
	}
}

func TestIdentifyPatternFromPrefix(t *testing.T) {
	b := buildBank(t)
	// A heavy request observed for only its first two buckets: the ramp
	// start distinguishes it from light requests.
	prefix := []float64{0.011, 0.029}
	idx := b.IdentifyPattern(prefix)
	if idx < 0 || b.Entries[idx].Type != "heavy" {
		t.Fatalf("prefix matched %d (%s), want a heavy entry", idx, b.Entries[idx].Type)
	}
	if !b.PredictHighUsage(prefix) {
		t.Fatal("heavy prefix should predict high usage")
	}
	lightPrefix := []float64{0.0052, 0.0058}
	if b.PredictHighUsage(lightPrefix) {
		t.Fatal("light prefix should predict low usage")
	}
}

func TestIdentifyAverageBaseline(t *testing.T) {
	b := buildBank(t)
	idx := b.IdentifyAverage(0.0415) // heavy requests' average refs/ins
	if idx < 0 || b.Entries[idx].Type != "heavy" {
		t.Fatalf("average matched %s, want heavy", b.Entries[idx].Type)
	}
	if !b.PredictHighUsageByAverage(0.0415) {
		t.Fatal("heavy average should predict high usage")
	}
	if b.PredictHighUsageByAverage(0.0053) {
		t.Fatal("light average should predict low usage")
	}
}

func TestAverageSignatureBlindToPattern(t *testing.T) {
	// Two signatures with identical averages but different shapes: the
	// pattern matcher separates them, the average matcher cannot — the
	// paper's core argument for variation-driven signatures.
	flat := mkTrace(1, "flat", []float64{0.03, 0.03, 0.03, 0.03}, 1)
	ramp := mkTrace(2, "ramp", []float64{0.0, 0.02, 0.04, 0.06}, 10)
	b := Build([]*trace.Request{flat, ramp}, metrics.L2RefsPerIns, 100_000, 0)
	if math.Abs(b.Entries[0].Average-b.Entries[1].Average) > 0.002 {
		t.Fatalf("averages should be nearly equal: %v vs %v",
			b.Entries[0].Average, b.Entries[1].Average)
	}
	idx := b.IdentifyPattern([]float64{0.001, 0.019, 0.041})
	if b.Entries[idx].Type != "ramp" {
		t.Fatalf("pattern matching picked %s, want ramp", b.Entries[idx].Type)
	}
}

func TestEmptyBank(t *testing.T) {
	b := &Bank{}
	if b.IdentifyPattern([]float64{1}) != -1 {
		t.Fatal("empty bank should return -1")
	}
	if b.PredictHighUsage([]float64{1}) {
		t.Fatal("empty bank should predict false")
	}
	if b.IdentifyAverage(1) != -1 || b.PredictHighUsageByAverage(1) {
		t.Fatal("empty bank average identification should be -1/false")
	}
}

func TestPrefixL1ShortEntryPenalized(t *testing.T) {
	long := []float64{1, 1, 1, 1}
	short := []float64{1, 1}
	if got := prefixL1(long, short); got != 2 {
		t.Fatalf("short entry penalty = %v, want 2", got)
	}
	if got := prefixL1(short, long); got != 0 {
		t.Fatalf("prefix shorter than entry should match overlap only: %v", got)
	}
}

func TestPastRequests(t *testing.T) {
	p := NewPastRequests(3)
	if p.PredictHigh(10) {
		t.Fatal("empty window should predict false")
	}
	p.Observe(100)
	if !p.PredictHigh(10) {
		t.Fatal("window mean 100 > 10 should predict high")
	}
	// Window slides: old high value evicted by low ones.
	p.Observe(1)
	p.Observe(1)
	p.Observe(1)
	if p.PredictHigh(10) {
		t.Fatal("window should have slid past the high value")
	}
}
