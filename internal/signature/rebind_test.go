package signature

import (
	"testing"

	"repro/internal/sim"
)

// TestSessionRebindMatchesNaive: swapping a session onto a new bank
// mid-stream must leave it answering exactly what naive IdentifyPattern
// says against the new bank for the full observed prefix — including for
// buckets that arrive after the swap.
func TestSessionRebindMatchesNaive(t *testing.T) {
	g := sim.NewRNG(77)
	for trial := 0; trial < 200; trial++ {
		oldBank := randomBank(g, 3+g.Intn(30), 40)
		newBank := randomBank(g, 3+g.Intn(30), 40)
		oldM, newM := NewMatcher(oldBank), NewMatcher(newBank)
		stream := randomStream(g, oldBank, 60)
		cut := g.Intn(len(stream) + 1)

		ses := oldM.NewSession()
		ses.Extend(stream[:cut]...)
		ses.Best() // force an identification against the old bank
		ses.Rebind(newM)
		if got, want := ses.Best(), newBank.IdentifyPattern(stream[:cut]); got != want {
			t.Fatalf("trial %d: after rebind Best=%d, naive=%d", trial, got, want)
		}
		ses.Extend(stream[cut:]...)
		if got, want := ses.Best(), newBank.IdentifyPattern(stream); got != want {
			t.Fatalf("trial %d: post-rebind extend Best=%d, naive=%d", trial, got, want)
		}
		wantBest, wantD := newBank.IdentifyPatternScored(stream)
		if ses.Best() != wantBest || ses.BestDistance() != wantD {
			t.Fatalf("trial %d: scored mismatch: (%d,%v) vs (%d,%v)",
				trial, ses.Best(), ses.BestDistance(), wantBest, wantD)
		}
	}
}

// TestMatcherRebuildMatchesNew: a rebuilt matcher must behave identically
// to a freshly constructed one.
func TestMatcherRebuildMatchesNew(t *testing.T) {
	g := sim.NewRNG(78)
	m := &Matcher{}
	for trial := 0; trial < 50; trial++ {
		b := randomBank(g, 1+g.Intn(40), 50)
		m.Rebuild(b)
		fresh := NewMatcher(b)
		stream := randomStream(g, b, 70)
		s1, s2 := m.NewSession(), fresh.NewSession()
		s1.Extend(stream...)
		s2.Extend(stream...)
		if s1.Best() != s2.Best() || s1.BestDistance() != s2.BestDistance() {
			t.Fatalf("trial %d: rebuilt matcher diverges: (%d,%v) vs (%d,%v)",
				trial, s1.Best(), s1.BestDistance(), s2.Best(), s2.BestDistance())
		}
	}
}

// TestServiceSetMatcher: swapping the bank under a service must rebind
// live sessions (keeping their prefixes) and pooled free sessions, and
// subsequent observations must match naive identification on the new
// bank.
func TestServiceSetMatcher(t *testing.T) {
	g := sim.NewRNG(79)
	oldBank := randomBank(g, 20, 30)
	newBank := randomBank(g, 35, 30)
	svc := NewService(NewMatcher(oldBank), 4)

	streams := make([][]float64, 16)
	for id := range streams {
		streams[id] = randomStream(g, oldBank, 40)
	}
	// Half the requests finish before the swap (populating free lists),
	// half stay live across it.
	for id, st := range streams {
		cut := len(st) / 2
		svc.ObserveScored(uint64(id), st[:cut]...)
		if id%2 == 0 {
			svc.Finish(uint64(id))
		}
	}
	svc.SetMatcher(NewMatcher(newBank))
	for id, st := range streams {
		cut := len(st) / 2
		if id%2 == 0 {
			// Finished pre-swap: a fresh stream through a pooled session.
			best, dist := svc.ObserveScored(uint64(id), st...)
			wantBest, wantD := newBank.IdentifyPatternScored(st)
			if best != wantBest || dist != wantD {
				t.Fatalf("id %d (pooled): (%d,%v) vs naive (%d,%v)", id, best, dist, wantBest, wantD)
			}
			continue
		}
		// Live across the swap: prefix observed against the old bank, tail
		// against the new — the result must equal naive on the whole stream.
		best, dist := svc.ObserveScored(uint64(id), st[cut:]...)
		wantBest, wantD := newBank.IdentifyPatternScored(st)
		if best != wantBest || dist != wantD {
			t.Fatalf("id %d (live): (%d,%v) vs naive (%d,%v)", id, best, dist, wantBest, wantD)
		}
	}
}

// TestServiceSetMatcherAllocFree: swaps between same-shaped banks must
// not allocate once sessions exist.
func TestServiceSetMatcherAllocFree(t *testing.T) {
	g := sim.NewRNG(80)
	bank := randomBank(g, 16, 24)
	m1, m2 := NewMatcher(bank), NewMatcher(bank)
	svc := NewService(m1, 2)
	for id := 0; id < 8; id++ {
		svc.Observe(uint64(id), randomStream(g, bank, 20)...)
	}
	cur := false
	allocs := testing.AllocsPerRun(100, func() {
		if cur {
			svc.SetMatcher(m1)
		} else {
			svc.SetMatcher(m2)
		}
		cur = !cur
	})
	if allocs != 0 {
		t.Fatalf("SetMatcher allocates %v per swap, want 0", allocs)
	}
}
