// Package signature implements Section 4.4: online request identification
// from partial variation patterns. The system maintains a bank of
// representative request signatures — the paper uses the variation pattern
// of L2 references per instruction, a metric reflecting inherent request
// behavior free of dynamic shared-L2 contention effects — and matches an
// in-flight request's partial pattern against the bank to predict request
// properties (CPU consumption above or below a threshold) well before the
// request completes. Online matching uses the L1 distance for its low cost.
package signature

import (
	"math"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

// Entry is one representative signature in the bank.
type Entry struct {
	// Pattern is the signature metric's variation pattern, in fixed
	// instruction buckets.
	Pattern []float64
	// Average is the whole-request average of the signature metric, for
	// the average-value baseline.
	Average float64
	// CPUTimeNs is the source request's CPU consumption — the property
	// being predicted.
	CPUTimeNs float64
	// Type records the source request type (diagnostics only).
	Type string
}

// Bank is a signature bank for one application.
type Bank struct {
	// Metric is the signature metric (the paper: L2 references per
	// instruction).
	Metric metrics.Metric
	// BucketIns is the resampling bucket in instructions.
	BucketIns float64
	// Entries are the representative signatures.
	Entries []Entry
	// ThresholdNs is the CPU-usage prediction threshold (the paper: the
	// workload's median request CPU usage).
	ThresholdNs float64
}

// Build constructs a bank from representative traces (the paper collects
// 500 per application) and sets the prediction threshold to the median CPU
// usage of those traces. An empty trace slice yields an empty bank with a
// zero threshold (which predicts low usage for everything) rather than
// feeding zero CPU samples into the median.
func Build(traces []*trace.Request, m metrics.Metric, bucketIns float64, maxEntries int) *Bank {
	b := &Bank{Metric: m, BucketIns: bucketIns}
	if len(traces) == 0 {
		return b
	}
	n := len(traces)
	if maxEntries > 0 && n > maxEntries {
		n = maxEntries
	}
	var cpus []float64
	for _, tr := range traces[:n] {
		pattern := tr.Resampled(m, bucketIns)
		s := tr.Series(m, timeseries.Instructions)
		b.Entries = append(b.Entries, Entry{
			Pattern:   pattern,
			Average:   s.WeightedMean(),
			CPUTimeNs: float64(tr.CPUTime()),
			Type:      tr.Type,
		})
		cpus = append(cpus, float64(tr.CPUTime()))
	}
	b.ThresholdNs = stats.Median(cpus)
	return b
}

// prefixL1 compares a partial pattern against an entry's leading buckets:
// plain L1 over the overlap; an entry shorter than the prefix pays the
// missing buckets at the prefix's own values (it cannot explain them).
func prefixL1(prefix, entry []float64) float64 {
	n := len(prefix)
	if len(entry) < n {
		n = len(entry)
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += math.Abs(prefix[i] - entry[i])
	}
	for i := n; i < len(prefix); i++ {
		sum += math.Abs(prefix[i])
	}
	return sum
}

// PatternDistance is the bank's matching distance as an exported measure:
// prefix-L1 with the longer pattern's unexplained tail charged at its own
// values. It is symmetric, so it doubles as the pairwise distance for
// online bank compaction (the streaming pipeline clusters window patterns
// under the same metric identification uses).
func PatternDistance(a, b []float64) float64 {
	return prefixL1(a, b)
}

// IdentifyPattern returns the bank index whose signature's leading portion
// best matches the partial variation pattern (smallest L1 distance), or -1
// for an empty bank.
func (b *Bank) IdentifyPattern(prefix []float64) int {
	best, _ := b.IdentifyPatternScored(prefix)
	return best
}

// IdentifyPatternScored is IdentifyPattern returning the winning distance
// too (+Inf for an empty bank) — the anomaly score the streaming pipeline
// thresholds.
func (b *Bank) IdentifyPatternScored(prefix []float64) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i := range b.Entries {
		if d := prefixL1(prefix, b.Entries[i].Pattern); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// IdentifyAverage returns the bank index whose whole-request average
// metric value is closest to the partial execution's average — the paper's
// earlier average-value signatures.
func (b *Bank) IdentifyAverage(prefixAverage float64) int {
	best, bestD := -1, math.Inf(1)
	for i := range b.Entries {
		if d := math.Abs(prefixAverage - b.Entries[i].Average); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// HighUsage reports whether bank entry i predicts above-threshold CPU
// consumption (false for i < 0, the no-match case).
func (b *Bank) HighUsage(i int) bool {
	if i < 0 {
		return false
	}
	return b.Entries[i].CPUTimeNs > b.ThresholdNs
}

// PredictHighUsage predicts whether an in-flight request's CPU consumption
// will exceed the bank threshold, from its partial variation pattern.
func (b *Bank) PredictHighUsage(prefix []float64) bool {
	return b.HighUsage(b.IdentifyPattern(prefix))
}

// PredictHighUsageByAverage is the average-value-signature baseline.
func (b *Bank) PredictHighUsageByAverage(prefixAverage float64) bool {
	return b.HighUsage(b.IdentifyAverage(prefixAverage))
}

// PastRequests is the conventional transparent baseline: with no online
// information about an incoming request, predict its CPU usage as the
// average consumption of recent past requests. The window is a fixed ring
// buffer with a running sum, so Observe and PredictHigh are both O(1).
type PastRequests struct {
	ring  []float64
	head  int // next write position (the oldest observation once full)
	count int
	sum   float64
}

// NewPastRequests returns a predictor over the last size completions (the
// paper uses 10). A non-positive size always predicts low usage.
func NewPastRequests(size int) *PastRequests {
	if size < 0 {
		size = 0
	}
	return &PastRequests{ring: make([]float64, size)}
}

// Observe records a completed request's CPU time, evicting the oldest
// observation once the window is full.
func (p *PastRequests) Observe(cpuNs float64) {
	if len(p.ring) == 0 {
		return
	}
	if p.count == len(p.ring) {
		p.sum -= p.ring[p.head]
	} else {
		p.count++
	}
	p.ring[p.head] = cpuNs
	p.sum += cpuNs
	if p.head++; p.head == len(p.ring) {
		p.head = 0
	}
}

// PredictHigh predicts whether the next request exceeds the threshold.
func (p *PastRequests) PredictHigh(thresholdNs float64) bool {
	if p.count == 0 {
		return false
	}
	return p.sum/float64(p.count) > thresholdNs
}
