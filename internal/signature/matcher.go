// Online identification fast path, part 1: the precomputed side. A
// Matcher freezes a Bank for streaming identification. Per entry it stores
// a piecewise-aggregate envelope — the pattern's bucket sums over fixed
// segments — which yields a cheap lower bound on the prefix-L1 distance:
// over any segment, sum |p_i − e_i| ≥ |sum p_i − sum e_i|. Sessions use the
// bound to filter candidates before touching exact per-bucket state.
package signature

// paaSegment is the envelope granularity in buckets. Eight trades bound
// tightness (coarser segments are looser) against evaluation cost (one
// subtraction per segment instead of eight).
const paaSegment = 8

// Matcher is an immutable view of a Bank prepared for streaming
// identification. It is safe for concurrent use: any number of Sessions
// (and Services) may read it at once.
type Matcher struct {
	bank *Bank
	// segSums[e][k] is the sum of entry e's pattern buckets in segment k
	// (buckets [k·paaSegment, (k+1)·paaSegment) ∩ the pattern). Segments
	// past the pattern's end are implicitly zero.
	segSums [][]float64
}

// NewMatcher prepares a bank for streaming identification. The bank must
// not be mutated afterwards.
func NewMatcher(b *Bank) *Matcher {
	m := &Matcher{}
	m.Rebuild(b)
	return m
}

// Rebuild repoints the matcher at a (possibly new) bank, recomputing the
// envelope in place and reusing the segment-sum storage — repeated
// rebuilds over same-shaped banks reach an allocation-free steady state.
// Rebuild breaks the immutability contract for its duration: the caller
// must guarantee no Session or Service is reading the matcher while it
// runs (the serving pipeline rebuilds only in its serial compaction
// phase, after draining or rebinding every live session).
func (m *Matcher) Rebuild(b *Bank) {
	m.bank = b
	if cap(m.segSums) >= len(b.Entries) {
		m.segSums = m.segSums[:len(b.Entries)]
	} else {
		m.segSums = make([][]float64, len(b.Entries))
	}
	for e := range b.Entries {
		pat := b.Entries[e].Pattern
		ns := (len(pat) + paaSegment - 1) / paaSegment
		sums := m.segSums[e]
		if cap(sums) >= ns {
			sums = sums[:ns]
		} else {
			sums = make([]float64, ns)
		}
		for k := 0; k < ns; k++ {
			hi := min((k+1)*paaSegment, len(pat))
			var s float64
			for i := k * paaSegment; i < hi; i++ {
				s += pat[i]
			}
			sums[k] = s
		}
		m.segSums[e] = sums
	}
}

// Bank returns the matcher's underlying bank.
func (m *Matcher) Bank() *Bank { return m.bank }

// paaRemaining lower-bounds entry e's prefix-L1 contribution over buckets
// [done, ∞) given the prefix's complete-segment sums. Only segments fully
// inside the unaccumulated region count; the partial head and tail are
// bounded by zero. The bound also covers entries shorter than the prefix:
// a segment past the entry's end contributes |segment prefix sum|, which
// lower-bounds the sum of |p_i| penalties prefixL1 charges there.
func (m *Matcher) paaRemaining(e, done int, segPrefix []float64) float64 {
	segE := m.segSums[e]
	var lb float64
	for k := (done + paaSegment - 1) / paaSegment; k < len(segPrefix); k++ {
		var se float64
		if k < len(segE) {
			se = segE[k]
		}
		if d := segPrefix[k] - se; d < 0 {
			lb -= d
		} else {
			lb += d
		}
	}
	return lb
}
