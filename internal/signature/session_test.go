package signature

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// randomBank generates a bank of random-walk patterns with assorted
// lengths (including empty and shorter-than-prefix entries) and plants
// exact duplicates so identification ties are exercised.
func randomBank(g *sim.RNG, entries, maxLen int) *Bank {
	b := &Bank{ThresholdNs: 500}
	for i := 0; i < entries; i++ {
		pat := make([]float64, g.Intn(maxLen+1))
		v := g.Uniform(0, 0.05)
		for j := range pat {
			v += g.Normal(0, 0.01)
			pat[j] = math.Abs(v)
		}
		b.Entries = append(b.Entries, Entry{Pattern: pat, CPUTimeNs: g.Uniform(0, 1000)})
	}
	// Duplicates force distance ties: naive keeps the lowest index, and
	// the fast path must agree.
	for i := 3; i+5 < len(b.Entries); i += 5 {
		b.Entries[i+5].Pattern = append([]float64(nil), b.Entries[i].Pattern...)
	}
	return b
}

// randomStream generates a prefix stream resembling bank patterns closely
// enough that the best match changes over time.
func randomStream(g *sim.RNG, b *Bank, maxLen int) []float64 {
	if len(b.Entries) > 0 && g.Bool(0.5) {
		// Follow a bank entry with noise, then run past its end.
		base := b.Entries[g.Intn(len(b.Entries))].Pattern
		out := make([]float64, maxLen)
		for i := range out {
			var v float64
			if i < len(base) {
				v = base[i]
			}
			out[i] = math.Abs(v + g.Normal(0, 0.002))
		}
		return out
	}
	out := make([]float64, g.Intn(maxLen)+1)
	v := g.Uniform(0, 0.05)
	for i := range out {
		v += g.Normal(0, 0.01)
		out[i] = math.Abs(v)
	}
	return out
}

// TestSessionMatchesNaive is the golden-equality property test: on
// randomized banks and streams — with random chunk sizes, ties, entries
// shorter than the prefix, and mid-stream tail revisions — the cascaded
// session, the plain incremental session, and a fresh Update-driven
// session all report exactly the index naive IdentifyPattern returns.
func TestSessionMatchesNaive(t *testing.T) {
	g := sim.NewRNG(1234)
	for trial := 0; trial < 60; trial++ {
		bank := randomBank(g, 5+g.Intn(60), 24)
		m := NewMatcher(bank)
		cascaded := m.NewSession()
		plain := m.NewSession()
		plain.DisableCascade = true
		updated := m.NewSession()

		stream := randomStream(g, bank, 40)
		pos := 0
		for pos < len(stream) {
			pos += g.Intn(4)
			if pos > len(stream) {
				pos = len(stream)
			}
			prefix := stream[:pos]
			if g.Bool(0.1) && pos > 0 {
				// Simulate a resampler revising the final partial bucket:
				// Update must detect the rewrite and rebuild exactly.
				prefix = append([]float64(nil), prefix...)
				prefix[pos-1] = math.Abs(prefix[pos-1] + g.Normal(0, 0.01))
				stream = append(prefix, stream[pos:]...)
			}
			want := bank.IdentifyPattern(prefix)
			for _, s := range []*Session{cascaded, plain, updated} {
				s.Update(prefix)
				if got := s.Best(); got != want {
					t.Fatalf("trial %d len %d: session best %d, naive %d (cascade=%v)",
						trial, pos, got, want, !s.DisableCascade)
				}
			}
			wantD := math.Inf(1)
			if want >= 0 {
				wantD = prefixL1(prefix, bank.Entries[want].Pattern)
			}
			if got := cascaded.BestDistance(); got != wantD {
				t.Fatalf("trial %d len %d: best distance %v, naive %v", trial, pos, got, wantD)
			}
			if cascaded.PredictHigh() != bank.PredictHighUsage(prefix) {
				t.Fatalf("trial %d len %d: prediction mismatch", trial, pos)
			}
		}
	}
}

func TestSessionEmptyCases(t *testing.T) {
	empty := NewMatcher(&Bank{}).NewSession()
	if empty.Best() != -1 || empty.PredictHigh() {
		t.Fatal("empty bank session should report -1/false")
	}
	empty.Extend(1, 2, 3)
	if empty.Best() != -1 {
		t.Fatal("empty bank session should stay -1 after buckets")
	}

	b := &Bank{Entries: []Entry{
		{Pattern: []float64{5, 5}},
		{Pattern: []float64{1, 2}},
	}}
	s := NewMatcher(b).NewSession()
	// Zero buckets observed: every entry is at distance 0, naive keeps
	// the first.
	if got, want := s.Best(), b.IdentifyPattern(nil); got != want {
		t.Fatalf("empty prefix best = %d, want %d", got, want)
	}
	s.Extend(1)
	if got := s.Best(); got != 1 {
		t.Fatalf("best after one bucket = %d, want 1", got)
	}
	s.Reset()
	if s.Len() != 0 || s.Best() != b.IdentifyPattern(nil) {
		t.Fatal("reset session should match the empty-prefix naive result")
	}
}

// TestSessionIncrementalExtend drives a long stream one bucket at a time —
// the serving-shaped access pattern — and checks agreement at every step.
func TestSessionIncrementalExtend(t *testing.T) {
	g := sim.NewRNG(99)
	bank := randomBank(g, 80, 48)
	s := NewMatcher(bank).NewSession()
	stream := randomStream(g, bank, 64)
	for i, v := range stream {
		s.Extend(v)
		if got, want := s.Best(), bank.IdentifyPattern(stream[:i+1]); got != want {
			t.Fatalf("bucket %d: best %d, naive %d", i, got, want)
		}
	}
}

func TestBuildEmptyTraces(t *testing.T) {
	b := Build(nil, 0, 100_000, 500)
	if len(b.Entries) != 0 {
		t.Fatalf("empty traces should build an empty bank, got %d entries", len(b.Entries))
	}
	if b.ThresholdNs != 0 || math.IsNaN(b.ThresholdNs) {
		t.Fatalf("empty bank threshold = %v, want 0", b.ThresholdNs)
	}
	if b.IdentifyPattern([]float64{1}) != -1 || b.PredictHighUsage([]float64{1}) {
		t.Fatal("empty bank should identify -1 / predict low")
	}
}

func TestCompact(t *testing.T) {
	bank := buildBank(t) // 10 near-identical light + 10 near-identical heavy
	c := Compact(bank, 2, 1)
	if len(c.Entries) != 2 {
		t.Fatalf("compact entries = %d, want 2", len(c.Entries))
	}
	if c.ThresholdNs != bank.ThresholdNs {
		t.Fatalf("compaction changed the threshold: %v vs %v", c.ThresholdNs, bank.ThresholdNs)
	}
	types := map[string]bool{}
	for _, e := range c.Entries {
		types[e.Type] = true
	}
	if !types["light"] || !types["heavy"] {
		t.Fatalf("compaction should keep one medoid per family, got %v", types)
	}
	// The compact bank still classifies prefixes correctly.
	if !c.PredictHighUsage([]float64{0.011, 0.029}) {
		t.Fatal("compact bank should predict high for a heavy prefix")
	}
	if c.PredictHighUsage([]float64{0.0052, 0.0058}) {
		t.Fatal("compact bank should predict low for a light prefix")
	}
	// Degenerate sizes leave the bank alone.
	if got := Compact(bank, 0, 1); got != bank {
		t.Fatal("k<=0 should return the bank unchanged")
	}
	if got := Compact(bank, len(bank.Entries), 1); got != bank {
		t.Fatal("k>=len should return the bank unchanged")
	}
}

func TestPastRequestsRingMatchesWindowSemantics(t *testing.T) {
	// The ring-buffer implementation must agree with a recomputed sliding
	// window mean on a randomized observation stream.
	g := sim.NewRNG(7)
	for _, size := range []int{1, 3, 10} {
		p := NewPastRequests(size)
		var window []float64
		for i := 0; i < 200; i++ {
			v := g.Uniform(0, 1000)
			p.Observe(v)
			window = append(window, v)
			if len(window) > size {
				window = window[1:]
			}
			var sum float64
			for _, w := range window {
				sum += w
			}
			threshold := g.Uniform(0, 1000)
			if got, want := p.PredictHigh(threshold), sum/float64(len(window)) > threshold; got != want {
				t.Fatalf("size %d step %d: PredictHigh(%v) = %v, window mean %v", size, i, threshold, got, sum/float64(len(window)))
			}
		}
	}
	// Degenerate size: never predicts high.
	p := NewPastRequests(0)
	p.Observe(100)
	if p.PredictHigh(1) {
		t.Fatal("size-0 predictor should always predict low")
	}
}
