// Online identification fast path, part 4: serving many in-flight
// requests at once. A Service shards sessions by request ID across
// independently locked shards, so concurrent updates for different
// requests rarely contend, and recycles finished sessions through
// per-shard free lists — the steady state allocates nothing.
package signature

import (
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/obs"
)

// Service drives concurrent in-flight identification sessions against one
// matcher. All methods are safe for concurrent use; operations on distinct
// request IDs proceed in parallel up to shard collisions.
type Service struct {
	m      *Matcher
	shards []serviceShard
	shift  uint

	// sobs is shared by all sessions this service drives (counters are
	// atomic, so concurrent shards may add freely); nil when no collector
	// is attached. created/reused/finished track session lifecycle churn.
	sobs     *sessionObs
	created  *obs.Counter
	reused   *obs.Counter
	finished *obs.Counter
}

type serviceShard struct {
	mu   sync.Mutex
	live map[uint64]*Session
	free []*Session
	// Pad shards to their own cache lines so neighboring locks don't
	// false-share under heavy cross-shard traffic.
	_ [24]byte
}

// NewService returns a service over the matcher's bank with the given
// shard count (rounded up to a power of two; non-positive means
// GOMAXPROCS).
func NewService(m *Matcher, shards int) *Service {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &Service{m: m, shards: make([]serviceShard, n), shift: uint(64 - bits.TrailingZeros(uint(n)))}
	for i := range s.shards {
		s.shards[i].live = make(map[uint64]*Session)
	}
	return s
}

// SetObserver attaches the observability collector: cascade prune counters
// shared across every session the service drives, plus session-lifecycle
// counters. A nil collector leaves the service uninstrumented. Call before
// driving traffic; sessions already live keep their previous handles.
func (s *Service) SetObserver(c *obs.Collector) {
	if c == nil {
		return
	}
	s.sobs = &sessionObs{
		cachedPruned: c.Counter("signature.prune.cached_lb"),
		paaPruned:    c.Counter("signature.prune.paa_bound"),
		abandoned:    c.Counter("signature.prune.abandoned"),
	}
	s.created = c.Counter("signature.sessions.created")
	s.reused = c.Counter("signature.sessions.reused")
	s.finished = c.Counter("signature.sessions.finished")
}

// shardFor hashes a request ID to its shard (Fibonacci hashing spreads
// sequential IDs, the common case, across all shards).
func (s *Service) shardFor(id uint64) *serviceShard {
	if len(s.shards) == 1 {
		return &s.shards[0]
	}
	return &s.shards[(id*0x9E3779B97F4A7C15)>>s.shift]
}

// session returns the live session for id, creating one (from the shard's
// free list when possible) on first sight. Caller holds sh.mu.
func (s *Service) session(sh *serviceShard, id uint64) *Session {
	ses := sh.live[id]
	if ses == nil {
		if n := len(sh.free); n > 0 {
			ses = sh.free[n-1]
			sh.free = sh.free[:n-1]
			ses.Reset()
			s.reused.Add(1)
		} else {
			ses = s.m.NewSession()
			s.created.Add(1)
		}
		ses.obs = s.sobs
		sh.live[id] = ses
	}
	return ses
}

// Observe appends newly observed buckets to request id's partial pattern
// (starting a session on first sight) and returns the current best bank
// index — the same index IdentifyPattern would return for the full prefix.
func (s *Service) Observe(id uint64, delta ...float64) int {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ses := s.session(sh, id)
	ses.Extend(delta...)
	return ses.Best()
}

// ObserveScored is Observe additionally returning the best match's
// prefix-L1 distance — one lock acquisition and one identification for
// both values, the streaming pipeline's hot call.
func (s *Service) ObserveScored(id uint64, delta ...float64) (best int, dist float64) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ses := s.session(sh, id)
	ses.Extend(delta...)
	return ses.Best(), ses.BestDistance()
}

// SetMatcher swaps the service onto a new matcher (a recompacted
// signature bank), rebinding every live and pooled session: live sessions
// keep their observed prefixes and re-identify against the new bank on
// their next observation (see Session.Rebind). Session buffers are
// reused, so a swap between same-sized banks allocates nothing.
//
// SetMatcher is not safe to run concurrently with other Service methods —
// the caller must quiesce traffic first (the serving pipeline swaps banks
// only in its serial compaction phase, between processing ticks).
func (s *Service) SetMatcher(m *Matcher) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		// Iteration order over the live map is irrelevant: each rebind
		// touches only its own session, so any order yields the same state.
		for _, ses := range sh.live { // maporder:ok per-session rebind, order-free
			ses.Rebind(m)
		}
		for _, ses := range sh.free {
			ses.Rebind(m)
		}
		sh.mu.Unlock()
	}
	s.m = m
}

// Update synchronizes request id's session to an externally recomputed
// prefix (see Session.Update) and returns the current best bank index.
func (s *Service) Update(id uint64, prefix []float64) int {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ses := s.session(sh, id)
	ses.Update(prefix)
	return ses.Best()
}

// Best returns the current best bank index for request id, or -1 if the
// request has no session (or the bank is empty).
func (s *Service) Best(id uint64) int {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ses := sh.live[id]; ses != nil {
		return ses.Best()
	}
	return -1
}

// PredictHigh predicts whether request id's CPU consumption will exceed
// the bank threshold (false for an unknown request).
func (s *Service) PredictHigh(id uint64) bool {
	return s.m.bank.HighUsage(s.Best(id))
}

// Finish releases request id's session back to its shard's free list.
// Finishing an unknown request is a no-op.
func (s *Service) Finish(id uint64) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ses := sh.live[id]; ses != nil {
		delete(sh.live, id)
		sh.free = append(sh.free, ses)
		s.finished.Add(1)
	}
}

// Live returns the number of in-flight sessions.
func (s *Service) Live() int {
	var n int
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.live)
		sh.mu.Unlock()
	}
	return n
}
