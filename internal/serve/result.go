// Result is the deterministic outcome of a serving run — plain exported
// data so the verification harness can canonicalize and fingerprint it.
// Wall-clock quantities (the identify-latency histogram) are deliberately
// excluded: every field below is a pure function of the Config.
package serve

import (
	"fmt"
	"strings"
)

// Result summarizes a serving run.
type Result struct {
	// Arrivals is the total stream arrivals ingested; Shed were refused at
	// full shard queues; Degraded were admitted in cached-matching mode.
	Arrivals uint64
	Shed     uint64
	Degraded uint64
	// Completed counts finished requests; CompletedDegraded the subset
	// resolved through the template cache.
	Completed         uint64
	CompletedDegraded uint64
	// EarlyPredictions/EarlyWrong are the half-pattern CPU-class
	// predictions and their error count (the paper's Figure 10, online).
	EarlyPredictions uint64
	EarlyWrong       uint64
	// Injected counts admitted requests carrying an injected anomaly;
	// Flagged the requests whose identification score exceeded the
	// calibrated threshold; FlaggedInjected their intersection.
	Injected        uint64
	Flagged         uint64
	FlaggedInjected uint64
	// ScoreSum is the sum of completion scores (distance per bucket) — a
	// high-sensitivity determinism witness.
	ScoreSum float64
	// Compactions and Recalibrations count bank rebuilds and threshold
	// calibrations.
	Compactions    uint64
	Recalibrations uint64
	// Ticks and VirtualNs measure the run on the virtual clock.
	Ticks     uint64
	VirtualNs int64
	// MaxShardDepth is the deepest any shard queue got (backpressure
	// witness); Queued is the in-flight count at snapshot time.
	MaxShardDepth int
	Queued        int
	// BankEntries, Threshold, and WindowFill snapshot the adaptive state.
	BankEntries int
	Threshold   float64
	WindowFill  int
}

// String renders the run summary as a fixed-width table.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "service-mode run: %d ticks, %.3fs virtual\n", r.Ticks, float64(r.VirtualNs)/1e9)
	row := func(label, format string, args ...any) {
		fmt.Fprintf(&b, "  %-22s "+format+"\n", append([]any{label}, args...)...)
	}
	row("arrivals", "%d (shed %d, degraded %d)", r.Arrivals, r.Shed, r.Degraded)
	row("completed", "%d (degraded %d, in flight %d)", r.Completed, r.CompletedDegraded, r.Queued)
	if r.EarlyPredictions > 0 {
		row("early predictions", "%d (%.2f%% wrong)", r.EarlyPredictions,
			100*float64(r.EarlyWrong)/float64(r.EarlyPredictions))
	}
	row("anomalies", "injected %d, flagged %d (hits %d)", r.Injected, r.Flagged, r.FlaggedInjected)
	row("bank", "%d entries, %d compactions, %d recalibrations", r.BankEntries, r.Compactions, r.Recalibrations)
	row("threshold", "%.6g (window %d)", r.Threshold, r.WindowFill)
	row("backpressure", "max shard depth %d", r.MaxShardDepth)
	return b.String()
}
