// Fleet mode: the serving pipeline sharded across a simulated fleet of
// machines. One deterministic stream feeds every node; a placement policy
// (round-robin or contention-easing) routes each arrival to a core queue;
// cores execute head-of-queue requests under the paper's shared-cache
// contention model, evaluated per package from tick-start snapshots; each
// node keeps its own sliding window and compacted signature bank, and the
// fleet periodically merges the per-node banks into one global bank that
// every node adopts.
//
// Determinism mirrors the single-node engine: ingest, rate snapshots, and
// all cross-unit aggregation run serially in (node, package) order; the
// parallel phase executes packages whose work is a pure function of their
// own queues plus the serial snapshot, so worker scheduling cannot change
// results. Latency histograms use fixed log buckets with commutative
// atomic counts, so their quantiles are order-independent too.
package serve

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/anomaly"
	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/distance"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/signature"
	"repro/internal/sim"
	"repro/internal/workload"
)

// FleetPolicy selects the fleet's placement policy.
type FleetPolicy int

const (
	// FleetRoundRobin cycles arrivals across nodes, filling each node's
	// shortest core queue.
	FleetRoundRobin FleetPolicy = iota
	// FleetContentionEase places predicted high-usage requests on the
	// fleet package with the least queued high-usage pressure, easing
	// shared-cache contention (the paper's Section 5.2 policy, fleet-wide).
	FleetContentionEase
	// FleetScaleOut starts with one active node and reactively grows or
	// shrinks the active set from a saturation signal — the per-package
	// count of queued predicted-high requests. Placement within the active
	// set follows FleetContentionEase.
	FleetScaleOut
)

func (p FleetPolicy) String() string {
	switch p {
	case FleetRoundRobin:
		return "round-robin"
	case FleetContentionEase:
		return "contention-easing"
	case FleetScaleOut:
		return "scale-out"
	default:
		return fmt.Sprintf("FleetPolicy(%d)", int(p))
	}
}

// FleetConfig specifies a fleet-mode run. Start from DefaultFleetConfig.
type FleetConfig struct {
	// Stream is the fleet-wide arrival process.
	Stream workload.StreamConfig
	// Nodes is the fleet: one machine topology per node (at least one).
	Nodes []machine.Topology
	// Policy is the placement policy.
	Policy FleetPolicy

	// TickNs is the virtual tick length (default 1ms). Contention rates
	// refresh once per tick from head-of-queue snapshots.
	TickNs int64
	// QueueCap is each core's queue capacity; an arrival routed to a full
	// core is shed.
	QueueCap int
	// DegradeDepth is the core queue depth at which newly admitted
	// requests degrade to cached-template serving: a constant
	// CostDegradedNs drain instead of instruction execution (the
	// single-node engine's overload tier, per core).
	DegradeDepth int
	// CostDegradedNs is the constant virtual cost of draining one
	// degraded request.
	CostDegradedNs int64

	// TemplatesPerApp and MaxPatternLen size the behavior template
	// libraries (see the single-node engine).
	TemplatesPerApp int
	MaxPatternLen   int

	// WindowSize is each node's sliding window of completions feeding its
	// bank compaction; CompactTicks the per-node compaction interval;
	// BankK the compacted bank size.
	WindowSize   int
	CompactTicks int
	BankK        int
	// MergeEvery is how many per-node compaction rounds pass between
	// fleet-wide bank merges (0 disables merging).
	MergeEvery int
	// CalibrationQuantile and CalibrationHeadroom set each node's anomaly
	// threshold from its window scores.
	CalibrationQuantile float64
	CalibrationHeadroom float64
	// ScoreSampleEvery identifies every Nth completed request against the
	// node bank for anomaly flagging (1 = every request).
	ScoreSampleEvery int

	// ScaleHighWater, ScaleLowWater, and ScaleCooldownTicks tune the
	// FleetScaleOut policy (ignored otherwise). A package counts saturated
	// when its queued predicted-high requests per core reach ScaleHighWater;
	// the fleet activates another node when at least half its active
	// packages are saturated, and deactivates its newest node when the
	// fleet-wide queued-high count per active core falls to ScaleLowWater
	// and that node has drained. ScaleCooldownTicks separates consecutive
	// scaling actions. Zero values take the defaults (2, 0.25, 25).
	ScaleHighWater     float64
	ScaleLowWater      float64
	ScaleCooldownTicks int

	// Workers bounds the goroutines of the parallel package phase; ≤0
	// means GOMAXPROCS. Changes wall-clock time only, never results.
	Workers int
	// Obs, when non-nil, collects fleet counters. Results are identical
	// either way.
	Obs *obs.Collector
}

// DefaultFleet is the standard heterogeneous 16-core evaluation fleet: the
// paper's box, a slow 4-core node, and a fast 8-core node with bigger
// caches.
func DefaultFleet() []machine.Topology {
	fleet, err := machine.ParseFleet("pkg=2,2/pkg=4:0.85/pkg=4:1.15:8,4:1.15:8")
	if err != nil {
		panic(err)
	}
	return fleet
}

// DefaultFleetStream is the fleet arrival process: a webserver-heavy mix
// under diurnal-style modulation, one flash crowd, slow drift, and four
// behavior cohorts whose drift rates fan out.
func DefaultFleetStream(seed int64) workload.StreamConfig {
	return workload.StreamConfig{
		RatePerSec: 24_000,
		Apps: []workload.StreamApp{
			{Name: "webserver", Weight: 6},
			{Name: "tpcc", Weight: 2},
			{Name: "rubis", Weight: 2},
		},
		Periods: []workload.StreamPeriod{
			{PeriodNs: 2e9, Amplitude: 0.3},
			{PeriodNs: 13e9, Amplitude: 0.2, Phase: 0.25},
		},
		Bursts:       []workload.StreamBurst{{StartNs: 5e9, DurationNs: 1.5e9, Factor: 2}},
		DriftPerSec:  0.004,
		Cohorts:      4,
		CohortSpread: 0.75,
		Seed:         seed,
	}
}

// DefaultFleetConfig returns the standard fleet-mode configuration on
// DefaultFleet over DefaultFleetStream(seed).
func DefaultFleetConfig(seed int64) FleetConfig {
	return FleetConfig{
		Stream:              DefaultFleetStream(seed),
		Nodes:               DefaultFleet(),
		TickNs:              1e6,
		QueueCap:            256,
		DegradeDepth:        192,
		CostDegradedNs:      300,
		TemplatesPerApp:     24,
		MaxPatternLen:       256,
		WindowSize:          512,
		CompactTicks:        500,
		BankK:               16,
		MergeEvery:          4,
		CalibrationQuantile: 0.99,
		CalibrationHeadroom: 1.5,
		ScoreSampleEvery:    8,
		ScaleHighWater:      2,
		ScaleLowWater:       0.25,
		ScaleCooldownTicks:  25,
	}
}

// normalize fills defaults and validates, naming the offending field.
func (c FleetConfig) normalize() (FleetConfig, error) {
	if err := c.Stream.Validate(); err != nil {
		return c, err
	}
	if len(c.Nodes) == 0 {
		return c, fmt.Errorf("serve: FleetConfig.Nodes must have at least one node")
	}
	for i, t := range c.Nodes {
		if err := t.Validate(); err != nil {
			return c, fmt.Errorf("serve: FleetConfig.Nodes[%d]: %w", i, err)
		}
	}
	switch c.Policy {
	case FleetRoundRobin, FleetContentionEase, FleetScaleOut:
	default:
		return c, fmt.Errorf("serve: FleetConfig.Policy unknown: %d", c.Policy)
	}
	if c.ScaleHighWater <= 0 {
		c.ScaleHighWater = 2
	}
	if c.ScaleLowWater <= 0 {
		c.ScaleLowWater = 0.25
	}
	if c.ScaleCooldownTicks <= 0 {
		c.ScaleCooldownTicks = 25
	}
	if c.ScaleLowWater >= c.ScaleHighWater {
		return c, fmt.Errorf("serve: FleetConfig.ScaleLowWater %g must be below ScaleHighWater %g",
			c.ScaleLowWater, c.ScaleHighWater)
	}
	if c.TickNs <= 0 {
		return c, fmt.Errorf("serve: FleetConfig.TickNs must be positive, got %d", c.TickNs)
	}
	if c.QueueCap <= 0 {
		return c, fmt.Errorf("serve: FleetConfig.QueueCap must be positive, got %d", c.QueueCap)
	}
	if c.DegradeDepth <= 0 || c.DegradeDepth > c.QueueCap {
		return c, fmt.Errorf("serve: FleetConfig.DegradeDepth must be in (0, QueueCap], got %d", c.DegradeDepth)
	}
	if c.CostDegradedNs <= 0 {
		return c, fmt.Errorf("serve: FleetConfig.CostDegradedNs must be positive, got %d", c.CostDegradedNs)
	}
	if c.TemplatesPerApp <= 0 {
		return c, fmt.Errorf("serve: FleetConfig.TemplatesPerApp must be positive, got %d", c.TemplatesPerApp)
	}
	if c.MaxPatternLen <= 0 {
		return c, fmt.Errorf("serve: FleetConfig.MaxPatternLen must be positive, got %d", c.MaxPatternLen)
	}
	if c.WindowSize <= 1 {
		return c, fmt.Errorf("serve: FleetConfig.WindowSize must exceed 1, got %d", c.WindowSize)
	}
	if c.CompactTicks <= 0 {
		return c, fmt.Errorf("serve: FleetConfig.CompactTicks must be positive, got %d", c.CompactTicks)
	}
	if c.BankK <= 0 {
		return c, fmt.Errorf("serve: FleetConfig.BankK must be positive, got %d", c.BankK)
	}
	if c.MergeEvery < 0 {
		return c, fmt.Errorf("serve: FleetConfig.MergeEvery must be non-negative, got %d", c.MergeEvery)
	}
	if !(c.CalibrationQuantile >= 0 && c.CalibrationQuantile <= 1) {
		return c, fmt.Errorf("serve: FleetConfig.CalibrationQuantile must be in [0,1], got %v", c.CalibrationQuantile)
	}
	if !(c.CalibrationHeadroom > 0) {
		return c, fmt.Errorf("serve: FleetConfig.CalibrationHeadroom must be positive, got %v", c.CalibrationHeadroom)
	}
	if c.ScoreSampleEvery <= 0 {
		c.ScoreSampleEvery = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c, nil
}

// fleetReq is one queued request on a core.
type fleetReq struct {
	id        uint64
	arrivalNs int64
	remIns    float64 // instructions left to execute
	drift     float64
	cpuNs     float64 // solo CPU estimate (classification + window record)
	app       int32
	tmpl      int32
	cohort    int32
	anom      bool
	predHigh  bool
	degraded  bool
}

// fleetCore is one core's FIFO queue plus its tick-rate snapshot.
type fleetCore struct {
	q, qNext []fleetReq
	scale    float64 // static topology frequency scale
	// Tick-start snapshot (serial phase): effective CPI of the occupant
	// set and the resulting instruction rate. Zero insPerNs means idle.
	cpi      float64
	insPerNs float64
}

// pkgTally is one package's per-tick outcome, merged serially.
type pkgTally struct {
	completed       uint64
	flagged         uint64
	flaggedInjected uint64
	scoreSum        float64
	cycles, ins     float64 // executed work, for CPI accounting
	highDone        int     // predicted-high completions (queuedHigh drain)
}

// fleetPkg is one package of one node: the unit of parallel execution.
// During the parallel phase its owning worker touches only this struct,
// its cores' queues, and the node's read-only bank.
type fleetPkg struct {
	node, idx  int
	cores      []int // node-local core indices
	cacheCfg   cache.Config
	queuedHigh int // predicted-high requests queued here (serial ingest)

	tally  pkgTally
	winBuf []winRec
	patBuf []float64 // pattern scratch for sampled completion scoring

	// Rate-snapshot scratch.
	miss      []float64
	demands   []*cache.Demand
	demandBuf []cache.Demand
	_         [64]byte
}

// fleetNode is one machine of the fleet.
type fleetNode struct {
	topo  machine.Topology
	clock float64
	cores []fleetCore
	pkgs  []int // indices into Fleet.pkgs

	// Sliding window and per-node bank state (serial phase only).
	win       []winRec
	winLen    int
	winHead   int
	winPats   [][]float64
	winN      int
	bank      *signature.Bank
	threshold float64
	dm        distance.Matrix
	pairFn    distance.PairFunc
	csc       cluster.Scratch
	crng      *sim.RNG
	scores    []float64
	cpus      []float64
	patBufs   [][]float64

	hist *obs.Histogram
	res  NodeResult
}

// Fleet is a running fleet-mode pipeline. Methods are not safe for
// concurrent use; the fleet parallelizes internally.
type Fleet struct {
	cfg    FleetConfig
	stream *workload.Stream
	tmpl   [][]template
	nodes  []*fleetNode
	pkgs   []*fleetPkg  // all packages, node order — the parallel work units
	penCfg cache.Config // bandwidth-penalty knobs (machine defaults)

	// fleetThresholds classifies predicted high usage at admission, one
	// threshold per arrival cohort (index 0 when cohorts are disabled).
	// Every entry starts at the template median; at each merge the
	// thresholds refresh from per-cohort medians of the fleet's window
	// records, so a cohort whose drift inflates its costs is judged
	// against its own population rather than the fleet-wide one.
	fleetThresholds []float64
	cohortCPUs      [][]float64 // per-cohort merge scratch

	pending     workload.Arrival
	havePending bool
	nextID      uint64
	rrSeq       uint64
	tick        uint64
	nowNs       int64

	// active is the number of routable nodes (a prefix of nodes, in config
	// order). Non-scale-out policies route across the whole fleet; the
	// scale-out policy starts at one node and adjusts serially at ingest
	// tick starts, so scaling decisions are deterministic.
	active   int
	cooldown int // ticks until the next scaling action is allowed

	res FleetResult

	// Merge scratch: concatenated node-bank patterns and their records.
	mergePats [][]float64
	mergeCPUs []float64
	mergeApps []int32
	mergeDM   distance.Matrix
	mergeCSC  cluster.Scratch
	mergeRNG  *sim.RNG
	mergeFn   distance.PairFunc

	fleetHist *obs.Histogram

	workers int
	workCh  []chan struct{}
	wg      sync.WaitGroup
	claim   atomic.Int64
	closed  bool

	cArrivals, cShed, cDegraded, cCompleted *obs.Counter
	cFlagged, cMerges                       *obs.Counter
}

// NewFleet builds the fleet: per-node topologies, template libraries,
// per-node template banks, and the persistent package worker pool.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	stream, err := workload.NewStream(cfg.Stream)
	if err != nil {
		return nil, err
	}
	// Template libraries reuse the single-node engine's builder: only the
	// stream/template knobs matter to it.
	tmpl, err := buildTemplates(Config{
		Stream:          cfg.Stream,
		TemplatesPerApp: cfg.TemplatesPerApp,
		MaxPatternLen:   cfg.MaxPatternLen,
	})
	if err != nil {
		return nil, err
	}
	f := &Fleet{cfg: cfg, stream: stream, tmpl: tmpl, workers: cfg.Workers}
	mc := machine.DefaultConfig()
	f.penCfg = mc.Cache
	for ni, topo := range cfg.Nodes {
		clock := mc.CyclesPerNs
		if topo.CyclesPerNs > 0 {
			clock = topo.CyclesPerNs
		}
		n := &fleetNode{
			topo:  topo,
			clock: clock,
			crng:  sim.NewRNG(0),
			win:   make([]winRec, cfg.WindowSize),
		}
		n.res.Node = ni
		n.res.Topology = topo.String()
		for pi, ps := range topo.Packages {
			pc := mc.Cache
			if ps.CacheMB > 0 {
				pc.CapacityBytes = ps.CacheMB * (1 << 20)
			}
			pkg := &fleetPkg{
				node:      ni,
				idx:       pi,
				cacheCfg:  pc,
				winBuf:    make([]winRec, 0, ps.Cores*cfg.QueueCap),
				patBuf:    make([]float64, 0, cfg.MaxPatternLen),
				miss:      make([]float64, ps.Cores),
				demands:   make([]*cache.Demand, ps.Cores),
				demandBuf: make([]cache.Demand, ps.Cores),
			}
			for j := 0; j < ps.Cores; j++ {
				pkg.cores = append(pkg.cores, len(n.cores))
				n.cores = append(n.cores, fleetCore{
					q:     make([]fleetReq, 0, cfg.QueueCap),
					qNext: make([]fleetReq, 0, cfg.QueueCap),
					scale: ps.FreqScale,
				})
			}
			n.pkgs = append(n.pkgs, len(f.pkgs))
			f.pkgs = append(f.pkgs, pkg)
		}
		n.winPats = make([][]float64, cfg.WindowSize)
		for i := range n.winPats {
			n.winPats[i] = make([]float64, 0, cfg.MaxPatternLen)
		}
		n.patBufs = make([][]float64, cfg.BankK)
		for i := range n.patBufs {
			n.patBufs[i] = make([]float64, 0, cfg.MaxPatternLen)
		}
		n.scores = make([]float64, 0, cfg.WindowSize)
		n.cpus = make([]float64, 0, cfg.WindowSize+cfg.TemplatesPerApp*len(tmpl))
		node := n
		n.pairFn = func(i, j int) float64 {
			return signature.PatternDistance(node.winPats[i], node.winPats[j])
		}
		n.buildTemplateBank(f)
		n.hist = obs.NewHistogram(fmt.Sprintf("fleet.node%d.latency.ns", ni))
		f.nodes = append(f.nodes, n)
	}
	nc := cfg.Stream.Cohorts
	if nc < 1 {
		nc = 1
	}
	f.fleetThresholds = make([]float64, nc)
	for i := range f.fleetThresholds {
		f.fleetThresholds[i] = f.nodes[0].bank.ThresholdNs
	}
	f.cohortCPUs = make([][]float64, nc)
	for i := range f.cohortCPUs {
		f.cohortCPUs[i] = make([]float64, 0, len(f.nodes)*cfg.WindowSize)
	}
	f.fleetHist = obs.NewHistogram("fleet.latency.ns")
	f.res.Policy = cfg.Policy.String()
	f.active = len(f.nodes)
	if cfg.Policy == FleetScaleOut {
		f.active = 1
	}

	// Merge scratch sized to the concatenation of every node's bank.
	mcap := len(f.nodes) * cfg.BankK
	if tb := cfg.TemplatesPerApp * len(tmpl) * len(f.nodes); tb > mcap {
		mcap = tb
	}
	f.mergePats = make([][]float64, mcap)
	for i := range f.mergePats {
		f.mergePats[i] = make([]float64, 0, cfg.MaxPatternLen)
	}
	f.mergeCPUs = make([]float64, 0, mcap)
	f.mergeApps = make([]int32, 0, mcap)
	f.mergeRNG = sim.NewRNG(0)
	f.mergeFn = func(i, j int) float64 {
		return signature.PatternDistance(f.mergePats[i], f.mergePats[j])
	}

	if c := cfg.Obs; c != nil {
		c.RegisterHistogram(f.fleetHist)
		for _, n := range f.nodes {
			c.RegisterHistogram(n.hist)
		}
		f.cArrivals = c.Counter("fleet.arrivals")
		f.cShed = c.Counter("fleet.shed")
		f.cDegraded = c.Counter("fleet.degraded")
		f.cCompleted = c.Counter("fleet.completed")
		f.cFlagged = c.Counter("fleet.flagged")
		f.cMerges = c.Counter("fleet.merges")
	}
	if f.workers > len(f.pkgs) {
		f.workers = len(f.pkgs)
	}
	if f.workers > 1 {
		f.workCh = make([]chan struct{}, f.workers)
		for w := range f.workCh {
			ch := make(chan struct{}, 1)
			f.workCh[w] = ch
			go func() {
				for range ch {
					for {
						p := int(f.claim.Add(1)) - 1
						if p >= len(f.pkgs) {
							break
						}
						f.processPkg(f.pkgs[p])
					}
					f.wg.Done()
				}
			}()
		}
	}
	return f, nil
}

// buildTemplateBank seeds a node's bank with the template library (see the
// single-node engine's buildInitialBank).
func (n *fleetNode) buildTemplateBank(f *Fleet) {
	n.bank = &signature.Bank{Metric: metrics.L2RefsPerIns}
	n.threshold = math.Inf(1)
	for ai := range f.tmpl {
		for t := range f.tmpl[ai] {
			tm := &f.tmpl[ai][t]
			n.bank.Entries = append(n.bank.Entries, signature.Entry{
				Pattern:   tm.pattern,
				Average:   meanOf(tm.pattern),
				CPUTimeNs: tm.cpuNs,
				Type:      f.cfg.Stream.Apps[ai].Name,
			})
			n.cpus = append(n.cpus, tm.cpuNs)
		}
	}
	n.bank.ThresholdNs = medianInPlace(n.cpus)
	n.cpus = n.cpus[:0]
}

// Process advances the fleet until at least n more arrivals have been
// ingested (admitted or shed), then finishes the tick.
func (f *Fleet) Process(n int) {
	var ingested int
	for ingested < n {
		ingested += f.runTick(true)
	}
}

// Drain runs ticks without ingesting until every core queue is empty.
func (f *Fleet) Drain() {
	for {
		f.runTick(false)
		empty := true
		for _, n := range f.nodes {
			for i := range n.cores {
				if len(n.cores[i].q) > 0 {
					empty = false
					break
				}
			}
		}
		if empty {
			return
		}
	}
}

// runTick executes one tick: serial ingest, serial rate snapshots, the
// parallel package phase, serial aggregation, and periodic compaction.
func (f *Fleet) runTick(ingest bool) int {
	tickEnd := f.nowNs + f.cfg.TickNs
	var arrivals int
	if ingest {
		if f.cfg.Policy == FleetScaleOut {
			f.updateScale()
		}
		arrivals = f.ingest(tickEnd)
	}
	f.snapshotRates()
	if f.workers > 1 {
		f.claim.Store(0)
		f.wg.Add(f.workers)
		for _, ch := range f.workCh {
			ch <- struct{}{}
		}
		f.wg.Wait()
	} else {
		for _, pkg := range f.pkgs {
			f.processPkg(pkg)
		}
	}
	f.aggregate()
	f.nowNs = tickEnd
	f.tick++
	if f.tick%uint64(f.cfg.CompactTicks) == 0 {
		for _, n := range f.nodes {
			n.compactNode(f)
		}
		f.res.CompactionRounds++
		if f.cfg.MergeEvery > 0 && f.res.CompactionRounds%uint64(f.cfg.MergeEvery) == 0 {
			f.mergeBanks()
		}
	}
	return arrivals
}

// ingest routes stream arrivals up to the tick boundary through the
// placement policy.
func (f *Fleet) ingest(tickEnd int64) int {
	var n int
	for {
		if !f.havePending {
			f.stream.Next(&f.pending)
			f.havePending = true
		}
		if f.pending.TimeNs >= tickEnd {
			return n
		}
		a := f.pending
		f.havePending = false
		n++
		f.res.Arrivals++
		f.cArrivals.Add(1)

		tmpls := f.tmpl[a.App]
		t := int((a.Bits >> 8) % uint64(len(tmpls)))
		anom := isAnomalous(a.Bits)
		cohort := f.cfg.Stream.CohortOf(a.Bits)
		drift := f.stream.CohortDriftAt(a.TimeNs, cohort)
		cpu := tmpls[t].cpuNs * drift
		if anom {
			cpu *= anomalyCPUFactor
			f.res.Injected++
		}
		r := fleetReq{
			id:        f.nextID,
			arrivalNs: a.TimeNs,
			remIns:    tmpls[t].ins,
			drift:     drift,
			cpuNs:     cpu,
			app:       int32(a.App),
			tmpl:      int32(t),
			cohort:    int32(cohort),
			anom:      anom,
			predHigh:  cpu > f.fleetThresholds[cohort],
		}
		f.nextID++
		node, core := f.place(&r)
		nd := f.nodes[node]
		c := &nd.cores[core]
		if len(c.q) == cap(c.q) {
			f.res.Shed++
			nd.res.Shed++
			f.cShed.Add(1)
			continue
		}
		if len(c.q) >= f.cfg.DegradeDepth {
			r.degraded = true
			f.res.Degraded++
			nd.res.Degraded++
			f.cDegraded.Add(1)
		}
		c.q = append(c.q, r)
		if r.predHigh {
			f.pkgs[f.pkgOf(node, core)].queuedHigh++
		}
		if len(c.q) > nd.res.MaxQueueDepth {
			nd.res.MaxQueueDepth = len(c.q)
		}
	}
}

// pkgOf returns the global package index of a node-local core.
func (f *Fleet) pkgOf(node, core int) int {
	nd := f.nodes[node]
	for _, pi := range nd.pkgs {
		pkg := f.pkgs[pi]
		if core >= pkg.cores[0] && core <= pkg.cores[len(pkg.cores)-1] {
			return pi
		}
	}
	return nd.pkgs[0]
}

// updateScale is the scale-out policy's serial control loop, run at the
// start of every ingesting tick before arrivals route. It counts saturated
// active packages against the high-water mark to grow the active set, and
// shrinks from the newest active node when fleet-wide queued-high pressure
// falls under the low-water mark and that node has drained. At most one
// action per cooldown window, so the fleet cannot thrash.
func (f *Fleet) updateScale() {
	if f.cooldown > 0 {
		f.cooldown--
		return
	}
	var pkgs, cores, queuedHigh, saturated int
	for _, pkg := range f.pkgs {
		if pkg.node >= f.active {
			continue
		}
		pkgs++
		cores += len(pkg.cores)
		queuedHigh += pkg.queuedHigh
		if float64(pkg.queuedHigh) >= f.cfg.ScaleHighWater*float64(len(pkg.cores)) {
			saturated++
		}
	}
	switch {
	case 2*saturated >= pkgs && f.active < len(f.nodes):
		f.active++
		f.res.ScaleUps++
		f.cooldown = f.cfg.ScaleCooldownTicks
	case f.active > 1 &&
		float64(queuedHigh) <= f.cfg.ScaleLowWater*float64(cores) &&
		f.nodeIdle(f.active-1):
		f.active--
		f.res.ScaleDowns++
		f.cooldown = f.cfg.ScaleCooldownTicks
	}
}

// nodeIdle reports whether every core queue of a node is empty.
func (f *Fleet) nodeIdle(ni int) bool {
	nd := f.nodes[ni]
	for i := range nd.cores {
		if len(nd.cores[i].q) > 0 {
			return false
		}
	}
	return true
}

// place picks the (node, core) for an arrival. All tie-breaks are by lowest
// index, so placement is deterministic. Routing only ever considers the
// active node prefix — the whole fleet except under scale-out.
func (f *Fleet) place(r *fleetReq) (node, core int) {
	ease := f.cfg.Policy == FleetContentionEase || f.cfg.Policy == FleetScaleOut
	if ease && r.predHigh {
		// Least high-usage pressure per core across the active packages.
		bestPkg, best := -1, math.Inf(1)
		for pi, pkg := range f.pkgs {
			if pkg.node >= f.active {
				continue
			}
			p := float64(pkg.queuedHigh) / float64(len(pkg.cores))
			if p < best {
				best, bestPkg = p, pi
			}
		}
		pkg := f.pkgs[bestPkg]
		return pkg.node, shortestCore(f.nodes[pkg.node], pkg.cores)
	}
	if ease {
		// Low-usage requests fill the shortest active queue.
		bestNode, bestCore, best := 0, 0, int(^uint(0)>>1)
		for ni, nd := range f.nodes[:f.active] {
			for ci := range nd.cores {
				if l := len(nd.cores[ci].q); l < best {
					best, bestNode, bestCore = l, ni, ci
				}
			}
		}
		return bestNode, bestCore
	}
	// Round-robin across active nodes, shortest queue within the node.
	node = int(f.rrSeq % uint64(f.active))
	f.rrSeq++
	nd := f.nodes[node]
	core = 0
	for ci := 1; ci < len(nd.cores); ci++ {
		if len(nd.cores[ci].q) < len(nd.cores[core].q) {
			core = ci
		}
	}
	return node, core
}

// shortestCore returns the package core with the shortest queue (lowest
// index on ties).
func shortestCore(nd *fleetNode, cores []int) int {
	best := cores[0]
	for _, ci := range cores[1:] {
		if len(nd.cores[ci].q) < len(nd.cores[best].q) {
			best = ci
		}
	}
	return best
}

// snapshotRates derives every core's tick execution rate from the
// head-of-queue occupant set, per package, under the paper's shared-cache
// and bandwidth contention model. Serial, so the parallel phase reads a
// consistent snapshot.
func (f *Fleet) snapshotRates() {
	for _, nd := range f.nodes {
		// Per-package effective miss ratios.
		for _, pi := range nd.pkgs {
			pkg := f.pkgs[pi]
			for j, ci := range pkg.cores {
				c := &nd.cores[ci]
				if len(c.q) == 0 {
					pkg.demands[j] = nil
					continue
				}
				r := &c.q[0]
				tm := &f.tmpl[r.app][r.tmpl]
				d := tm.demand
				d.RefsPerIns *= r.drift
				if r.anom {
					// Injected anomalies behave as cache polluters.
					d.RefsPerIns *= anomalyPatFactor
					d.WorkingSetBytes *= anomalyPatFactor
				}
				pkg.demandBuf[j] = d
				pkg.demands[j] = &pkg.demandBuf[j]
			}
			cache.MissRatiosInto(pkg.cacheCfg, pkg.demands, pkg.miss)
		}
		// Node-wide bandwidth pressure, then per-core CPI and rate.
		var traffic float64
		for _, pi := range nd.pkgs {
			pkg := f.pkgs[pi]
			for j := range pkg.cores {
				if pkg.demands[j] != nil {
					traffic += pkg.demands[j].RefsPerIns * pkg.miss[j]
				}
			}
		}
		penalty := cache.PenaltyFactor(f.penCfg, traffic)
		for _, pi := range nd.pkgs {
			pkg := f.pkgs[pi]
			for j, ci := range pkg.cores {
				c := &nd.cores[ci]
				if pkg.demands[j] == nil {
					c.cpi, c.insPerNs = 0, 0
					continue
				}
				r := &c.q[0]
				tm := &f.tmpl[r.app][r.tmpl]
				cpi := cache.CPI(pkg.cacheCfg, tm.baseCPI, pkg.demands[j].RefsPerIns, pkg.miss[j], penalty)
				c.cpi = cpi
				c.insPerNs = nd.clock * c.scale / cpi
			}
		}
	}
}

// processPkg burns each of the package's cores' tick budgets on their
// queues. Rates are the tick-start snapshot; a core that finishes its head
// continues into the next request at the same rate (rates refresh at tick
// granularity). Only this package's state is touched.
func (f *Fleet) processPkg(pkg *fleetPkg) {
	nd := f.nodes[pkg.node]
	for _, ci := range pkg.cores {
		c := &nd.cores[ci]
		if c.insPerNs == 0 || len(c.q) == 0 {
			continue
		}
		budget := float64(f.cfg.TickNs)
		for i := range c.q {
			r := &c.q[i]
			if r.degraded {
				// Cached-template serving: a constant drain cost, no
				// instruction execution and no CPI contribution.
				if cost := float64(f.cfg.CostDegradedNs); cost > budget {
					break
				} else {
					budget -= cost
				}
				r.remIns = 0
				f.completeFleet(pkg, nd, r, f.nowNs+f.cfg.TickNs-int64(budget))
				continue
			}
			need := r.remIns / c.insPerNs
			if need > budget {
				done := budget * c.insPerNs
				r.remIns -= done
				pkg.tally.ins += done
				pkg.tally.cycles += done * c.cpi
				break
			}
			budget -= need
			pkg.tally.ins += r.remIns
			pkg.tally.cycles += r.remIns * c.cpi
			r.remIns = 0
			f.completeFleet(pkg, nd, r, f.nowNs+f.cfg.TickNs-int64(budget))
		}
		// Compact the queue: completed requests are a prefix.
		c.qNext = c.qNext[:0]
		for i := range c.q {
			if c.q[i].remIns > 0 {
				c.qNext = append(c.qNext, c.q[i])
			}
		}
		c.q, c.qNext = c.qNext, c.q
	}
}

// completeFleet finalizes a request: latency histograms, sampled anomaly
// scoring against the node bank, tallies, and the window record.
func (f *Fleet) completeFleet(pkg *fleetPkg, nd *fleetNode, r *fleetReq, doneNs int64) {
	pkg.tally.completed++
	if r.predHigh {
		pkg.tally.highDone++
	}
	lat := doneNs - r.arrivalNs
	if lat < 0 {
		// A request that arrives late in the tick and completes within the
		// same tick's budget sweep reads as instantaneous.
		lat = 0
	}
	nd.hist.Observe(lat)
	f.fleetHist.Observe(lat)
	// Degraded requests skip identification entirely — that is what the
	// degraded tier buys — so they are never scored or flagged.
	if !r.degraded && r.id%uint64(f.cfg.ScoreSampleEvery) == 0 {
		tm := f.tmpl[r.app][r.tmpl].pattern
		buf := pkg.patBuf[:0]
		for j := range tm {
			buf = append(buf, patternValue(tm, j, r.drift, r.anom))
		}
		pkg.patBuf = buf
		_, dist := nd.bank.IdentifyPatternScored(buf)
		score := dist / float64(len(buf))
		pkg.tally.scoreSum += score
		if score > nd.threshold {
			pkg.tally.flagged++
			if r.anom {
				pkg.tally.flaggedInjected++
			}
		}
	}
	pkg.winBuf = append(pkg.winBuf, winRec{
		app: r.app, tmpl: r.tmpl, cohort: r.cohort, anom: r.anom, drift: r.drift, cpuNs: r.cpuNs,
	})
}

// aggregate merges package tallies serially in (node, package) order —
// which is how f.pkgs is laid out.
func (f *Fleet) aggregate() {
	for _, pkg := range f.pkgs {
		nd := f.nodes[pkg.node]
		t := &pkg.tally
		nd.res.Completed += t.completed
		nd.res.Flagged += t.flagged
		nd.res.FlaggedInjected += t.flaggedInjected
		nd.res.ScoreSum += t.scoreSum
		nd.res.Cycles += t.cycles
		nd.res.Instructions += t.ins
		f.res.Completed += t.completed
		f.res.Flagged += t.flagged
		f.res.FlaggedInjected += t.flaggedInjected
		f.res.ScoreSum += t.scoreSum
		f.cCompleted.Add(t.completed)
		f.cFlagged.Add(t.flagged)
		pkg.queuedHigh -= t.highDone
		*t = pkgTally{}
		for _, rec := range pkg.winBuf {
			nd.win[nd.winHead] = rec
			nd.winHead++
			if nd.winHead == len(nd.win) {
				nd.winHead = 0
			}
			if nd.winLen < len(nd.win) {
				nd.winLen++
			}
		}
		pkg.winBuf = pkg.winBuf[:0]
	}
	f.res.Ticks++
}

// compactNode rebuilds one node's bank from its window via k-medoids and
// recalibrates its anomaly threshold (mirrors the single-node engine's
// compact, without the matcher plumbing the fleet path doesn't use).
func (n *fleetNode) compactNode(f *Fleet) {
	if n.winLen < minWindowFill {
		if n.winLen > 0 {
			n.recalibrateNode(f)
		}
		return
	}
	n.materializeNodeWindow(f)
	n.dm.Fill(n.winN, n.pairFn, distance.MatrixOptions{Workers: 1})
	n.crng.Reseed(f.cfg.Stream.Seed + int64(n.res.Node)*1_000_003 + int64(n.res.Compactions))
	k := f.cfg.BankK
	if k > n.winN {
		k = n.winN
	}
	cres := n.csc.KMedoids(&n.dm, cluster.Config{K: k, Rand: n.crng})
	n.bank.Entries = n.bank.Entries[:0]
	n.cpus = n.cpus[:0]
	for c, m := range cres.Medoids {
		src := n.winPats[m]
		n.patBufs[c] = append(n.patBufs[c][:0], src...)
		rec := n.winAtNode(m)
		n.bank.Entries = append(n.bank.Entries, signature.Entry{
			Pattern:   n.patBufs[c],
			Average:   meanOf(n.patBufs[c]),
			CPUTimeNs: rec.cpuNs,
			Type:      f.cfg.Stream.Apps[rec.app].Name,
		})
	}
	for i := 0; i < n.winN; i++ {
		n.cpus = append(n.cpus, n.winAtNode(i).cpuNs)
	}
	n.bank.ThresholdNs = medianInPlace(n.cpus)
	n.recalibrateNode(f)
	n.res.Compactions++
}

// materializeNodeWindow rematerializes the node window's patterns into
// pooled buffers.
func (n *fleetNode) materializeNodeWindow(f *Fleet) {
	n.winN = n.winLen
	for i := 0; i < n.winN; i++ {
		rec := n.winAtNode(i)
		tmpl := f.tmpl[rec.app][rec.tmpl].pattern
		buf := n.winPats[i][:0]
		for j := range tmpl {
			buf = append(buf, patternValue(tmpl, j, rec.drift, rec.anom))
		}
		n.winPats[i] = buf
	}
}

// winAtNode returns node window record i, oldest first.
func (n *fleetNode) winAtNode(i int) *winRec {
	idx := n.winHead - n.winLen + i
	if idx < 0 {
		idx += len(n.win)
	}
	return &n.win[idx]
}

// recalibrateNode rescores the node window against its bank and resets the
// anomaly threshold.
func (n *fleetNode) recalibrateNode(f *Fleet) {
	n.materializeNodeWindow(f)
	n.scores = n.scores[:0]
	for i := 0; i < n.winN; i++ {
		_, dist := n.bank.IdentifyPatternScored(n.winPats[i])
		n.scores = append(n.scores, dist/float64(len(n.winPats[i])))
	}
	n.threshold = anomaly.Calibrate(n.scores, f.cfg.CalibrationQuantile, f.cfg.CalibrationHeadroom)
	n.res.Recalibrations++
}

// mergeBanks concatenates every node's bank in node order, reclusters the
// union to BankK medoids, and installs the merged bank on every node —
// the fleet's gossip step, collapsed to one deterministic serial
// operation. Node thresholds recalibrate against the merged bank, and the
// per-cohort high-usage thresholds refresh from the windows' cohort
// medians.
func (f *Fleet) mergeBanks() {
	var m int
	for _, n := range f.nodes {
		for _, e := range n.bank.Entries {
			if m == len(f.mergePats) {
				break
			}
			f.mergePats[m] = append(f.mergePats[m][:0], e.Pattern...)
			f.mergeCPUs = append(f.mergeCPUs, e.CPUTimeNs)
			f.mergeApps = append(f.mergeApps, appIndexOf(f.cfg.Stream.Apps, e.Type))
			m++
		}
	}
	if m == 0 {
		return
	}
	f.mergeDM.Fill(m, f.mergeFn, distance.MatrixOptions{Workers: 1})
	f.mergeRNG.Reseed(f.cfg.Stream.Seed + int64(f.res.Merges))
	k := f.cfg.BankK
	if k > m {
		k = m
	}
	cres := f.mergeCSC.KMedoids(&f.mergeDM, cluster.Config{K: k, Rand: f.mergeRNG})
	for _, n := range f.nodes {
		n.bank.Entries = n.bank.Entries[:0]
		for c, mi := range cres.Medoids {
			n.patBufs[c] = append(n.patBufs[c][:0], f.mergePats[mi]...)
			n.bank.Entries = append(n.bank.Entries, signature.Entry{
				Pattern:   n.patBufs[c],
				Average:   meanOf(n.patBufs[c]),
				CPUTimeNs: f.mergeCPUs[mi],
				Type:      f.cfg.Stream.Apps[f.mergeApps[mi]].Name,
			})
		}
		n.cpus = append(n.cpus[:0], f.mergeCPUs[:m]...)
		n.bank.ThresholdNs = medianInPlace(n.cpus)
		n.cpus = n.cpus[:0]
		n.recalibrateNode(f)
	}
	// Per-cohort admission thresholds: the median request cost of each
	// cohort across every node's current window, in node order. Cohorts
	// with no windowed completions fall back to the merged bank's median.
	for ci := range f.cohortCPUs {
		f.cohortCPUs[ci] = f.cohortCPUs[ci][:0]
	}
	for _, n := range f.nodes {
		for i := 0; i < n.winLen; i++ {
			rec := n.winAtNode(i)
			f.cohortCPUs[rec.cohort] = append(f.cohortCPUs[rec.cohort], rec.cpuNs)
		}
	}
	for ci := range f.fleetThresholds {
		if cpus := f.cohortCPUs[ci]; len(cpus) > 0 {
			f.fleetThresholds[ci] = medianInPlace(cpus)
		} else {
			f.fleetThresholds[ci] = f.nodes[0].bank.ThresholdNs
		}
	}
	f.mergeCPUs = f.mergeCPUs[:0]
	f.mergeApps = f.mergeApps[:0]
	f.res.Merges++
	f.cMerges.Add(1)
}

// appIndexOf maps an app name back to its mix index (0 fallback).
func appIndexOf(apps []workload.StreamApp, name string) int32 {
	for i, a := range apps {
		if a.Name == name {
			return int32(i)
		}
	}
	return 0
}

// Queued returns the total in-flight requests across the fleet.
func (f *Fleet) Queued() int {
	var q int
	for _, n := range f.nodes {
		for i := range n.cores {
			q += len(n.cores[i].q)
		}
	}
	return q
}

// Histogram returns the fleet-wide virtual-latency histogram.
func (f *Fleet) Histogram() *obs.Histogram { return f.fleetHist }

// Result snapshots the run's deterministic outcome.
func (f *Fleet) Result() FleetResult {
	r := f.res
	r.VirtualNs = f.nowNs
	r.Queued = f.Queued()
	r.Nodes = make([]NodeResult, len(f.nodes))
	for i, n := range f.nodes {
		nr := n.res
		nr.Cores = len(n.cores)
		if nr.Instructions > 0 {
			nr.CPI = nr.Cycles / nr.Instructions
		}
		nr.P99Ns = n.hist.Quantile(0.99)
		nr.BankEntries = len(n.bank.Entries)
		nr.Threshold = n.threshold
		r.Nodes[i] = nr
		r.Cycles += nr.Cycles
		r.Instructions += nr.Instructions
	}
	if r.Instructions > 0 {
		r.CPI = r.Cycles / r.Instructions
	}
	r.P99Ns = f.fleetHist.Quantile(0.99)
	r.ActiveNodes = f.active
	return r
}

// Close stops the worker pool. The fleet must not be used afterwards.
func (f *Fleet) Close() {
	if f.closed {
		return
	}
	f.closed = true
	for _, ch := range f.workCh {
		close(ch)
	}
}

// NodeResult is one node's deterministic outcome.
type NodeResult struct {
	Node     int
	Topology string
	Cores    int

	Completed       uint64
	Shed            uint64
	Degraded        uint64
	Flagged         uint64
	FlaggedInjected uint64
	ScoreSum        float64
	Compactions     uint64
	Recalibrations  uint64

	Cycles       float64
	Instructions float64
	CPI          float64
	P99Ns        float64

	MaxQueueDepth int
	BankEntries   int
	Threshold     float64
}

// FleetResult is the whole fleet's deterministic outcome.
type FleetResult struct {
	Policy string

	Arrivals        uint64
	Shed            uint64
	Degraded        uint64
	Injected        uint64
	Completed       uint64
	Flagged         uint64
	FlaggedInjected uint64
	ScoreSum        float64

	Cycles       float64
	Instructions float64
	CPI          float64
	P99Ns        float64

	CompactionRounds uint64
	Merges           uint64
	Ticks            uint64
	VirtualNs        int64
	Queued           int

	// ScaleUps and ScaleDowns count scale-out policy actions; ActiveNodes
	// is the final active-set size (always the full fleet for the other
	// placement policies).
	ScaleUps    uint64
	ScaleDowns  uint64
	ActiveNodes int

	Nodes []NodeResult
}

// String renders the fleet summary.
func (r FleetResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet run (%s): %d ticks, %.3fs virtual\n", r.Policy, r.Ticks, float64(r.VirtualNs)/1e9)
	fmt.Fprintf(&b, "  arrivals %d (shed %d, degraded %d), completed %d, in flight %d\n", r.Arrivals, r.Shed, r.Degraded, r.Completed, r.Queued)
	fmt.Fprintf(&b, "  fleet CPI %.4f, p99 %.3fms\n", r.CPI, r.P99Ns/1e6)
	fmt.Fprintf(&b, "  anomalies: injected %d, flagged %d (hits %d)\n", r.Injected, r.Flagged, r.FlaggedInjected)
	fmt.Fprintf(&b, "  banks: %d compaction rounds, %d merges\n", r.CompactionRounds, r.Merges)
	if r.Policy == FleetScaleOut.String() {
		fmt.Fprintf(&b, "  scale: %d ups, %d downs, %d/%d nodes active\n", r.ScaleUps, r.ScaleDowns, r.ActiveNodes, len(r.Nodes))
	}
	for _, n := range r.Nodes {
		fmt.Fprintf(&b, "  node%d %-28s %2d cores: completed %8d  CPI %.4f  p99 %8.3fms  depth %3d  shed %d  degraded %d  flagged %d\n",
			n.Node, n.Topology, n.Cores, n.Completed, n.CPI, n.P99Ns/1e6, n.MaxQueueDepth, n.Shed, n.Degraded, n.Flagged)
	}
	return b.String()
}
