package serve

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/machine"
)

// smallFleetConfig is a scaled-down fleet run that still exercises
// compaction, merging, and both anomaly paths quickly.
func smallFleetConfig(seed int64) FleetConfig {
	cfg := DefaultFleetConfig(seed)
	cfg.WindowSize = 128
	cfg.CompactTicks = 50
	cfg.MergeEvery = 2
	return cfg
}

func runFleet(t *testing.T, cfg FleetConfig, n int) FleetResult {
	t.Helper()
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Process(n)
	f.Drain()
	return f.Result()
}

// TestFleetDeterministicAcrossWorkers is the core determinism guarantee:
// the full fleet result — counts, CPI sums, quantiles, per-node bank state
// — must be bit-identical no matter how many workers drive the package
// phase.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	var results []FleetResult
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		cfg := smallFleetConfig(11)
		cfg.Workers = w
		results = append(results, runFleet(t, cfg, 30_000))
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("fleet result differs between workers=1 and run %d:\n%v\nvs\n%v",
				i, results[0], results[i])
		}
	}
	if results[0].Completed == 0 {
		t.Fatal("fleet completed nothing")
	}
}

// TestFleetRunToRunDeterminism: identical configs reproduce identical
// results across fresh fleets.
func TestFleetRunToRunDeterminism(t *testing.T) {
	a := runFleet(t, smallFleetConfig(3), 20_000)
	b := runFleet(t, smallFleetConfig(3), 20_000)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fleet run not reproducible:\n%v\nvs\n%v", a, b)
	}
}

// TestFleetLifecycle checks the pipeline end to end on both policies:
// requests flow, nodes compact, banks merge and converge to BankK entries,
// anomalies are injected and some flagged, latency quantiles populate.
func TestFleetLifecycle(t *testing.T) {
	for _, pol := range []FleetPolicy{FleetRoundRobin, FleetContentionEase} {
		cfg := smallFleetConfig(7)
		cfg.Policy = pol
		res := runFleet(t, cfg, 40_000)
		if res.Policy != pol.String() {
			t.Fatalf("policy label %q", res.Policy)
		}
		if res.Arrivals < 40_000 {
			t.Fatalf("%v: ingested %d arrivals", pol, res.Arrivals)
		}
		if res.Completed+res.Shed != res.Arrivals || res.Queued != 0 {
			t.Fatalf("%v: accounting broken: %d completed + %d shed != %d arrivals (queued %d)",
				pol, res.Completed, res.Shed, res.Arrivals, res.Queued)
		}
		if res.Completed < res.Arrivals*9/10 {
			t.Fatalf("%v: shed too much: completed %d of %d", pol, res.Completed, res.Arrivals)
		}
		if res.CPI <= 0 || res.P99Ns <= 0 {
			t.Fatalf("%v: degenerate fleet metrics: CPI %v p99 %v", pol, res.CPI, res.P99Ns)
		}
		if res.Injected == 0 || res.Flagged == 0 {
			t.Fatalf("%v: anomaly path dead: injected %d flagged %d", pol, res.Injected, res.Flagged)
		}
		if res.CompactionRounds == 0 || res.Merges == 0 {
			t.Fatalf("%v: banks never compacted/merged: %d/%d", pol, res.CompactionRounds, res.Merges)
		}
		if len(res.Nodes) != 3 {
			t.Fatalf("%v: %d node results", pol, len(res.Nodes))
		}
		var total uint64
		for _, n := range res.Nodes {
			total += n.Completed
			if n.Completed == 0 {
				t.Fatalf("%v: node %d starved", pol, n.Node)
			}
			if n.CPI <= 0 || n.P99Ns <= 0 {
				t.Fatalf("%v: node %d degenerate metrics", pol, n.Node)
			}
			if n.BankEntries != cfg.BankK {
				t.Fatalf("%v: node %d bank has %d entries, want %d", pol, n.Node, n.BankEntries, cfg.BankK)
			}
		}
		if total != res.Completed {
			t.Fatalf("%v: node completions %d != fleet %d", pol, total, res.Completed)
		}
		var shed, deg uint64
		for _, n := range res.Nodes {
			shed += n.Shed
			deg += n.Degraded
		}
		if shed != res.Shed || deg != res.Degraded {
			t.Fatalf("%v: per-node shed/degraded %d/%d != fleet %d/%d",
				pol, shed, deg, res.Shed, res.Degraded)
		}
	}
}

// TestFleetDegradedTier: with a shallow degrade depth the loaded fleet
// serves part of the stream from the cached-template tier. Degraded
// requests still complete — they are drained at constant cost, never
// dropped — so the arrival accounting is unchanged.
func TestFleetDegradedTier(t *testing.T) {
	cfg := smallFleetConfig(13)
	cfg.DegradeDepth = 2
	res := runFleet(t, cfg, 40_000)
	if res.Degraded == 0 {
		t.Fatal("no requests degraded at DegradeDepth=2")
	}
	if res.Completed+res.Shed != res.Arrivals || res.Queued != 0 {
		t.Fatalf("degraded accounting broken: %+v", res)
	}
	deep := smallFleetConfig(13) // same stream, default (deep) degrade depth
	if ref := runFleet(t, deep, 40_000); res.Degraded <= ref.Degraded {
		t.Fatalf("shallower depth degraded %d, deeper %d", res.Degraded, ref.Degraded)
	}
}

// TestFleetCohortThresholds: admission thresholds are per-cohort. After
// the banks merge, the cohorts' drift spread pulls their window medians
// apart, so the refreshed thresholds must not collapse to one fleet-wide
// value.
func TestFleetCohortThresholds(t *testing.T) {
	cfg := smallFleetConfig(17)
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Process(60_000)
	f.Drain()
	res := f.Result()
	if res.Merges == 0 {
		t.Fatal("fleet never merged")
	}
	if len(f.fleetThresholds) != cfg.Stream.Cohorts {
		t.Fatalf("%d thresholds for %d cohorts", len(f.fleetThresholds), cfg.Stream.Cohorts)
	}
	varied := false
	for _, th := range f.fleetThresholds[1:] {
		if th != f.fleetThresholds[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatalf("cohort thresholds identical after %d merges: %v", res.Merges, f.fleetThresholds)
	}
}

// TestFleetContentionEasingHelps: on the heterogeneous fleet the
// contention-easing policy must not do worse than round-robin on fleet CPI
// (the paper's Section 5.2 claim, scaled up).
func TestFleetContentionEasingHelps(t *testing.T) {
	rr := smallFleetConfig(5)
	rr.Policy = FleetRoundRobin
	ce := smallFleetConfig(5)
	ce.Policy = FleetContentionEase
	a := runFleet(t, rr, 60_000)
	b := runFleet(t, ce, 60_000)
	if b.CPI > a.CPI*1.02 {
		t.Fatalf("contention easing should not hurt fleet CPI: RR %.4f vs CE %.4f", a.CPI, b.CPI)
	}
}

// TestFleetSteadyStateAllocs: after warmup, the per-request allocation
// cost must stay bounded — the fleet must be able to absorb millions of
// requests with stable memory.
func TestFleetSteadyStateAllocs(t *testing.T) {
	cfg := smallFleetConfig(9)
	cfg.Workers = 1 // count only the pipeline's allocations
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Process(40_000) // warm: windows filled, banks compacted and merged

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const n = 40_000
	f.Process(n)
	runtime.ReadMemStats(&after)
	perReq := float64(after.Mallocs-before.Mallocs) / n
	if perReq > 0.05 {
		t.Fatalf("steady state allocates %.3f objects/request, want ~0", perReq)
	}
}

func TestFleetConfigValidation(t *testing.T) {
	cases := []struct {
		mut  func(*FleetConfig)
		want string
	}{
		{func(c *FleetConfig) { c.Nodes = nil }, "FleetConfig.Nodes"},
		{func(c *FleetConfig) { c.Nodes[1].Packages[0].Cores = 0 }, "FleetConfig.Nodes[1]"},
		{func(c *FleetConfig) { c.Policy = FleetPolicy(9) }, "FleetConfig.Policy"},
		{func(c *FleetConfig) { c.TickNs = 0 }, "FleetConfig.TickNs"},
		{func(c *FleetConfig) { c.QueueCap = -1 }, "FleetConfig.QueueCap"},
		{func(c *FleetConfig) { c.DegradeDepth = 0 }, "FleetConfig.DegradeDepth"},
		{func(c *FleetConfig) { c.DegradeDepth = c.QueueCap + 1 }, "FleetConfig.DegradeDepth"},
		{func(c *FleetConfig) { c.CostDegradedNs = 0 }, "FleetConfig.CostDegradedNs"},
		{func(c *FleetConfig) { c.WindowSize = 1 }, "FleetConfig.WindowSize"},
		{func(c *FleetConfig) { c.BankK = 0 }, "FleetConfig.BankK"},
		{func(c *FleetConfig) { c.MergeEvery = -1 }, "FleetConfig.MergeEvery"},
		{func(c *FleetConfig) { c.CalibrationQuantile = 1.5 }, "FleetConfig.CalibrationQuantile"},
		{func(c *FleetConfig) { c.CalibrationHeadroom = 0 }, "FleetConfig.CalibrationHeadroom"},
	}
	for _, tc := range cases {
		cfg := DefaultFleetConfig(1)
		tc.mut(&cfg)
		_, err := NewFleet(cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("want error naming %s, got %v", tc.want, err)
		}
	}
}

// TestFleetSingleNodeDegenerate: a one-node fleet is valid and behaves.
func TestFleetSingleNodeDegenerate(t *testing.T) {
	cfg := smallFleetConfig(2)
	cfg.Nodes = []machine.Topology{machine.Homogeneous(4, 2)}
	cfg.Stream.RatePerSec = 8000
	res := runFleet(t, cfg, 5000)
	if len(res.Nodes) != 1 || res.Completed == 0 {
		t.Fatalf("single-node fleet broken: %+v", res)
	}
}
