package serve

import (
	"reflect"
	"strings"
	"testing"
)

// TestFleetPolicyRegistry pins the registry order and the flag-facing
// spellings the CLI depends on.
func TestFleetPolicyRegistry(t *testing.T) {
	want := []string{"round-robin", "contention-easing", "scale-out"}
	if got := FleetPolicyNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("FleetPolicyNames() = %v, want %v", got, want)
	}
	for _, p := range FleetPolicies() {
		if p.Doc == "" {
			t.Fatalf("policy %q has no doc line", p.Name)
		}
		if p.Name != p.Policy.String() {
			t.Fatalf("policy %q name disagrees with String() %q", p.Name, p.Policy)
		}
	}
	cases := map[string]FleetPolicy{
		"round-robin":       FleetRoundRobin,
		"rr":                FleetRoundRobin,
		"contention-easing": FleetContentionEase,
		"ease":              FleetContentionEase,
		"scale-out":         FleetScaleOut,
		"scale":             FleetScaleOut,
	}
	for name, want := range cases { // maporder:ok — assertions only
		got, err := ParseFleetPolicy(name)
		if err != nil || got != want {
			t.Fatalf("ParseFleetPolicy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseFleetPolicy("fifo"); err == nil || !strings.Contains(err.Error(), "fifo") {
		t.Fatalf("unknown policy error must quote the name, got %v", err)
	}
	if _, err := ParseFleetPolicy("fifo"); !strings.Contains(err.Error(), "scale-out") {
		t.Fatalf("unknown policy error must list valid names, got %v", err)
	}
}

// TestFleetScaleOutValidation: the low-water mark must stay below the
// high-water mark once defaults are filled.
func TestFleetScaleOutValidation(t *testing.T) {
	cfg := DefaultFleetConfig(1)
	cfg.ScaleLowWater = 3
	cfg.ScaleHighWater = 2
	if _, err := NewFleet(cfg); err == nil || !strings.Contains(err.Error(), "ScaleLowWater") {
		t.Fatalf("want ScaleLowWater error, got %v", err)
	}
}

// TestFleetScaleOutGrowsUnderLoad: the scale-out fleet starts at one node;
// the default stream overwhelms a single node's cores, so the saturation
// signal must activate more nodes, and the accounting invariants hold
// throughout.
func TestFleetScaleOutGrowsUnderLoad(t *testing.T) {
	cfg := smallFleetConfig(11)
	cfg.Policy = FleetScaleOut
	res := runFleet(t, cfg, 40_000)
	if res.Policy != "scale-out" {
		t.Fatalf("policy label %q", res.Policy)
	}
	if res.ScaleUps == 0 {
		t.Fatalf("scale-out never activated a node under the default stream: %+v", res)
	}
	if res.ActiveNodes < 1 || res.ActiveNodes > len(res.Nodes) {
		t.Fatalf("active set %d outside [1,%d]", res.ActiveNodes, len(res.Nodes))
	}
	if res.Completed+res.Shed != res.Arrivals || res.Queued != 0 {
		t.Fatalf("scale-out accounting broken: %+v", res)
	}
	if !strings.Contains(res.String(), "scale:") {
		t.Fatalf("scale-out summary missing scale line:\n%s", res)
	}
}

// TestFleetScaleOutIdlesSmall: a stream a single node absorbs must never
// trip the saturation signal, so the fleet stays at one active node.
func TestFleetScaleOutIdlesSmall(t *testing.T) {
	cfg := smallFleetConfig(11)
	cfg.Policy = FleetScaleOut
	cfg.Stream.RatePerSec = 1500
	cfg.Stream.Bursts = nil
	res := runFleet(t, cfg, 4000)
	if res.ScaleUps != 0 || res.ActiveNodes != 1 {
		t.Fatalf("light load scaled out anyway: ups %d, active %d", res.ScaleUps, res.ActiveNodes)
	}
}

// TestFleetScaleOutShrinksAfterBurst: a short flash crowd on a quiet base
// rate forces a scale-up, then the post-burst lull drains the newest node
// and the low-water check releases it.
func TestFleetScaleOutShrinksAfterBurst(t *testing.T) {
	cfg := smallFleetConfig(19)
	cfg.Policy = FleetScaleOut
	cfg.Stream.RatePerSec = 3000
	cfg.Stream.Bursts[0].StartNs = 2e8
	cfg.Stream.Bursts[0].DurationNs = 5e8
	cfg.Stream.Bursts[0].Factor = 8
	res := runFleet(t, cfg, 20_000)
	if res.ScaleUps == 0 {
		t.Fatalf("burst never scaled out: %+v", res)
	}
	if res.ScaleDowns == 0 {
		t.Fatalf("post-burst lull never scaled in: ups %d, active %d", res.ScaleUps, res.ActiveNodes)
	}
}

// TestFleetScaleOutDeterministic: the scaling control loop is part of the
// serial phase, so scale-out runs reproduce bit-identically across workers
// and fresh fleets.
func TestFleetScaleOutDeterministic(t *testing.T) {
	var results []FleetResult
	for _, w := range []int{1, 4} {
		cfg := smallFleetConfig(23)
		cfg.Policy = FleetScaleOut
		cfg.Workers = w
		results = append(results, runFleet(t, cfg, 25_000))
	}
	results = append(results, func() FleetResult {
		cfg := smallFleetConfig(23)
		cfg.Policy = FleetScaleOut
		cfg.Workers = 1
		return runFleet(t, cfg, 25_000)
	}())
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("scale-out result differs (run %d):\n%v\nvs\n%v", i, results[0], results[i])
		}
	}
}
