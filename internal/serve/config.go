// Package serve is the always-on service mode: the paper's offline loop —
// signature identification, k-medoids bank construction, anomaly
// detection — run online over a continuous deterministic request stream.
// The engine advances a virtual clock in fixed ticks; each tick ingests
// arrivals under admission control, feeds queued requests through the
// sharded identification cascade in parallel, and periodically recompacts
// the signature bank from a sliding window of recent traffic, recalibrating
// the anomaly threshold as the workload drifts.
//
// Everything is deterministic: results are a pure function of the Config,
// bit-identical across repeats and GOMAXPROCS settings. Parallelism only
// changes wall-clock time — each shard's work is independent, and all
// cross-shard aggregation happens serially in shard order. The steady
// state allocates nothing: queues are preallocated double buffers,
// sessions recycle through the Service's free lists, and compaction runs
// entirely in pooled scratch (distance.Matrix.Fill, cluster.Scratch,
// Matcher.Rebuild).
package serve

import (
	"fmt"
	"math/bits"
	"runtime"

	"repro/internal/obs"
	"repro/internal/workload"
)

// Config specifies a serving run. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Stream is the arrival process (see workload.StreamConfig).
	Stream workload.StreamConfig

	// Shards is the number of virtual service cores (rounded up to a power
	// of two). Each shard has its own request queue, session shard, and a
	// per-tick processing budget of TickNs virtual nanoseconds, so total
	// virtual capacity is Shards×TickNs per tick.
	Shards int
	// Workers bounds the real goroutines driving the shard phase; ≤0 means
	// runtime.GOMAXPROCS(0). Workers changes wall-clock time only, never
	// results.
	Workers int

	// TickNs is the virtual tick length (default 1ms).
	TickNs int64
	// QueueCap is each shard's queue capacity; an arrival hashing to a
	// full shard is shed (admission control).
	QueueCap int
	// DegradeDepth is the per-shard queue depth at which newly admitted
	// requests degrade to cached-signature matching: a constant-cost
	// template lookup instead of streaming identification. Degraded
	// requests cost CostDegradedNs total, which lets an overloaded shard
	// burn down its queue.
	DegradeDepth int

	// ChunkBuckets is the largest number of pattern buckets one identify
	// call consumes (amortizing per-call cost while keeping early
	// predictions timely).
	ChunkBuckets int
	// TemplatesPerApp sizes each application's behavior template library.
	TemplatesPerApp int
	// MaxPatternLen caps request patterns in buckets.
	MaxPatternLen int

	// WindowSize is the sliding window of recently completed requests that
	// feeds compaction and calibration.
	WindowSize int
	// CompactTicks is the compaction interval in ticks.
	CompactTicks int
	// BankK is the compacted signature bank size (k-medoids k).
	BankK int
	// CalibrationQuantile and CalibrationHeadroom set the anomaly
	// threshold: the quantile of the window's identification scores times
	// the headroom (see anomaly.Calibrate).
	CalibrationQuantile float64
	CalibrationHeadroom float64

	// The virtual cost model of the identify path: each identify call
	// costs CostPerCallNs plus CostPerBucketNs per bucket consumed; a
	// degraded request costs CostDegradedNs once.
	CostPerCallNs   int64
	CostPerBucketNs int64
	CostDegradedNs  int64

	// Obs, when non-nil, collects engine counters and the identify-latency
	// histogram. Results are identical either way.
	Obs *obs.Collector
}

// DefaultStream is the standard service-mode arrival process: 800k req/s
// across a three-app mix, two sinusoidal load periods, one 2.5× burst
// window, and a 1%/s pattern drift that forces recalibration.
func DefaultStream(seed int64) workload.StreamConfig {
	return workload.StreamConfig{
		RatePerSec: 800_000,
		Apps: []workload.StreamApp{
			{Name: "webserver", Weight: 4},
			{Name: "tpcc", Weight: 2},
			{Name: "rubis", Weight: 2},
		},
		Periods: []workload.StreamPeriod{
			{PeriodNs: 50e6, Amplitude: 0.3},
			{PeriodNs: 330e6, Amplitude: 0.25, Phase: 0.5},
		},
		Bursts:      []workload.StreamBurst{{StartNs: 100e6, DurationNs: 40e6, Factor: 2.5}},
		DriftPerSec: 0.01,
		Seed:        seed,
	}
}

// DefaultConfig returns the standard service-mode configuration over
// DefaultStream(seed).
func DefaultConfig(seed int64) Config {
	return Config{
		Stream:              DefaultStream(seed),
		Shards:              8,
		TickNs:              1e6,
		QueueCap:            1024,
		DegradeDepth:        256,
		ChunkBuckets:        32,
		TemplatesPerApp:     24,
		MaxPatternLen:       256,
		WindowSize:          512,
		CompactTicks:        100,
		BankK:               16,
		CalibrationQuantile: 0.99,
		CalibrationHeadroom: 1.5,
		CostPerCallNs:       500,
		CostPerBucketNs:     150,
		CostDegradedNs:      300,
	}
}

// normalize fills defaults and validates; returns the effective config.
func (c Config) normalize() (Config, error) {
	if err := c.Stream.Validate(); err != nil {
		return c, err
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Shards&(c.Shards-1) != 0 {
		c.Shards = 1 << bits.Len(uint(c.Shards))
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > c.Shards {
		c.Workers = c.Shards
	}
	if c.TickNs <= 0 {
		return c, fmt.Errorf("serve: TickNs must be positive, got %d", c.TickNs)
	}
	if c.QueueCap <= 0 {
		return c, fmt.Errorf("serve: QueueCap must be positive, got %d", c.QueueCap)
	}
	if c.DegradeDepth <= 0 || c.DegradeDepth > c.QueueCap {
		return c, fmt.Errorf("serve: DegradeDepth must be in (0, QueueCap], got %d", c.DegradeDepth)
	}
	if c.ChunkBuckets <= 0 {
		return c, fmt.Errorf("serve: ChunkBuckets must be positive, got %d", c.ChunkBuckets)
	}
	if c.TemplatesPerApp <= 0 {
		return c, fmt.Errorf("serve: TemplatesPerApp must be positive, got %d", c.TemplatesPerApp)
	}
	if c.MaxPatternLen <= 0 {
		return c, fmt.Errorf("serve: MaxPatternLen must be positive, got %d", c.MaxPatternLen)
	}
	if c.WindowSize <= 1 {
		return c, fmt.Errorf("serve: WindowSize must exceed 1, got %d", c.WindowSize)
	}
	if c.CompactTicks <= 0 {
		return c, fmt.Errorf("serve: CompactTicks must be positive, got %d", c.CompactTicks)
	}
	if c.BankK <= 0 {
		return c, fmt.Errorf("serve: BankK must be positive, got %d", c.BankK)
	}
	if !(c.CalibrationQuantile >= 0 && c.CalibrationQuantile <= 1) {
		return c, fmt.Errorf("serve: CalibrationQuantile must be in [0,1], got %v", c.CalibrationQuantile)
	}
	if !(c.CalibrationHeadroom > 0) {
		return c, fmt.Errorf("serve: CalibrationHeadroom must be positive, got %v", c.CalibrationHeadroom)
	}
	if c.CostPerCallNs < 0 || c.CostPerBucketNs < 0 || c.CostDegradedNs <= 0 {
		return c, fmt.Errorf("serve: virtual costs must be non-negative (degraded positive)")
	}
	if minCost := c.CostPerCallNs + int64(c.ChunkBuckets)*c.CostPerBucketNs; minCost > c.TickNs {
		return c, fmt.Errorf("serve: one identify chunk (%d virtual ns) exceeds the tick budget (%d): the queue could never drain", minCost, c.TickNs)
	}
	return c, nil
}
