package serve

import (
	"fmt"
	"strings"
)

// FleetPolicyInfo describes one registered fleet placement policy. The
// registry is an ordered slice, not a map, so listings and error messages
// render in a stable order.
type FleetPolicyInfo struct {
	// Policy is the enum value the fleet engine switches on.
	Policy FleetPolicy
	// Name is the canonical flag-facing name (the String() form).
	Name string
	// Aliases are accepted spellings beyond the canonical name.
	Aliases []string
	// Doc is a one-line description for usage text.
	Doc string
}

// fleetPolicies is the registry, in presentation order.
var fleetPolicies = []FleetPolicyInfo{
	{
		Policy:  FleetRoundRobin,
		Name:    FleetRoundRobin.String(),
		Aliases: []string{"rr"},
		Doc:     "cycle arrivals across nodes, shortest core queue within the node",
	},
	{
		Policy:  FleetContentionEase,
		Name:    FleetContentionEase.String(),
		Aliases: []string{"ease"},
		Doc:     "route predicted-high requests to the least-pressured package fleet-wide",
	},
	{
		Policy:  FleetScaleOut,
		Name:    FleetScaleOut.String(),
		Aliases: []string{"scale"},
		Doc:     "grow/shrink the active node set from queued-high saturation; ease within it",
	},
}

// FleetPolicies returns the registered fleet policies in stable order. The
// returned slice is shared; callers must not mutate it.
func FleetPolicies() []FleetPolicyInfo { return fleetPolicies }

// FleetPolicyNames returns the canonical policy names in registry order.
func FleetPolicyNames() []string {
	names := make([]string, len(fleetPolicies))
	for i, p := range fleetPolicies {
		names[i] = p.Name
	}
	return names
}

// ParseFleetPolicy resolves a canonical name or alias to its policy. The
// error quotes the unknown name and lists the valid spellings.
func ParseFleetPolicy(name string) (FleetPolicy, error) {
	for _, p := range fleetPolicies {
		if name == p.Name {
			return p.Policy, nil
		}
		for _, a := range p.Aliases {
			if name == a {
				return p.Policy, nil
			}
		}
	}
	var valid []string
	for _, p := range fleetPolicies {
		valid = append(valid, p.Name)
		valid = append(valid, p.Aliases...)
	}
	return 0, fmt.Errorf("serve: unknown fleet policy %q (valid: %s)", name, strings.Join(valid, ", "))
}
