// Behavior templates: the bridge from the workload generators to the
// streaming pipeline. Running the full simulated kernel per arrival would
// cap throughput far below service rates, so the engine pre-generates a
// library of representative requests per application and derives each
// arrival's behavior from a template plus the arrival's jitter bits —
// exactly the information a production system would observe as the
// request's hardware-counter pattern. Patterns are the paper's signature
// metric (L2 references per instruction) resampled into the application's
// progress buckets; CPU time comes from the calibrated cache model's CPI
// over the solo miss ratio.
package serve

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// template is one representative request behavior.
type template struct {
	pattern []float64 // refs/ins per progress bucket, ≤ MaxPatternLen
	cpuNs   float64   // solo CPU consumption
	// Fleet-mode demand summary (ignored by the single-node engine): total
	// instructions plus the instruction-weighted base CPI and cache demand
	// that drive the per-package contention model.
	ins     float64
	baseCPI float64
	demand  cache.Demand
}

// tmplMatch is the cached identification of a template against the current
// bank, serving degraded requests at constant cost.
type tmplMatch struct {
	best  int
	high  bool
	score float64
}

// templateBucketIns is the per-application progress bucket, following the
// paper's Figure 10 progress units.
func templateBucketIns(app string) float64 {
	switch app {
	case "webserver":
		return 10e3
	case "tpcc":
		return 300e3
	case "tpch":
		return 1e6
	case "rubis":
		return 200e3
	case "webwork":
		return 1e6
	default:
		return 100e3
	}
}

// buildTemplates generates the per-app template libraries for the stream's
// mix. Template t of app a is a pure function of (seed, a, t).
func buildTemplates(cfg Config) ([][]template, error) {
	mc := machine.DefaultConfig()
	out := make([][]template, len(cfg.Stream.Apps))
	for ai, sa := range cfg.Stream.Apps {
		app, err := workload.ByName(sa.Name)
		if err != nil {
			return nil, err
		}
		bucket := templateBucketIns(sa.Name)
		g := sim.ForkLabeled(cfg.Stream.Seed, "serve-templates-"+sa.Name)
		ts := make([]template, cfg.TemplatesPerApp)
		for t := range ts {
			req := app.NewRequest(uint64(t), g)
			ts[t] = requestTemplate(req, bucket, cfg.MaxPatternLen, mc)
			if len(ts[t].pattern) == 0 {
				return nil, fmt.Errorf("serve: app %s produced an empty template", sa.Name)
			}
		}
		out[ai] = ts
	}
	return out, nil
}

// requestTemplate resamples a generated request's inherent refs/ins into
// progress buckets and prices its solo CPU time through the cache model.
func requestTemplate(req *workload.Request, bucketIns float64, maxLen int, mc machine.Config) template {
	var t template
	var fill, acc float64 // instructions and refs accumulated in the open bucket
	for _, p := range req.Phases {
		a := p.Activity
		cpi := cache.CPI(mc.Cache, a.BaseCPI, a.RefsPerIns, a.SoloMissRatio, 1)
		t.cpuNs += p.Instructions * cpi / mc.CyclesPerNs
		t.ins += p.Instructions
		t.baseCPI += p.Instructions * a.BaseCPI
		t.demand.RefsPerIns += p.Instructions * a.RefsPerIns
		t.demand.SoloMissRatio += p.Instructions * a.SoloMissRatio
		if a.WorkingSetBytes > t.demand.WorkingSetBytes {
			t.demand.WorkingSetBytes = a.WorkingSetBytes
		}
		remaining := p.Instructions
		for remaining > 0 {
			take := bucketIns - fill
			if take > remaining {
				take = remaining
			}
			fill += take
			acc += take * a.RefsPerIns
			remaining -= take
			if fill >= bucketIns {
				if len(t.pattern) < maxLen {
					t.pattern = append(t.pattern, acc/fill)
				}
				fill, acc = 0, 0
			}
		}
	}
	if fill > 0 && len(t.pattern) < maxLen {
		t.pattern = append(t.pattern, acc/fill)
	}
	if t.ins > 0 {
		t.baseCPI /= t.ins
		t.demand.RefsPerIns /= t.ins
		t.demand.SoloMissRatio /= t.ins
	}
	return t
}

// Anomaly injection: arrivals whose low jitter byte is zero (1/256) carry
// a contention anomaly — the second half of the pattern inflated, CPU time
// stretched — mirroring the adverse cache-sharing effects the offline
// detector hunts in Section 4.3.
const (
	anomalyMask      = 0xFF
	anomalyPatFactor = 2.5
	anomalyCPUFactor = 1.8
)

// isAnomalous reports whether the arrival's jitter bits inject an anomaly.
func isAnomalous(bits uint64) bool { return bits&anomalyMask == 0 }

// patternValue is bucket i of a request's materialized pattern: the
// template value under the request's drift factor, inflated in the second
// half for injected anomalies.
func patternValue(tmpl []float64, i int, drift float64, anom bool) float64 {
	v := tmpl[i] * drift
	if anom && i >= len(tmpl)/2 {
		v *= anomalyPatFactor
	}
	return v
}
