package serve

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/workload"
)

// testConfig is a small, fast run that still exercises every path:
// periodic load, a burst strong enough to cross the degrade depth, drift,
// and several compactions.
func testConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Stream.Bursts[0] = workload.StreamBurst{StartNs: 12e6, DurationNs: 10e6, Factor: 3}
	cfg.WindowSize = 256
	cfg.CompactTicks = 10
	return cfg
}

func run(t *testing.T, cfg Config, n int) Result {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Process(n)
	e.Drain()
	return e.Result()
}

func TestEngineBasicInvariants(t *testing.T) {
	r := run(t, testConfig(1), 60_000)
	if r.Arrivals < 60_000 {
		t.Fatalf("ingested %d arrivals, want ≥ 60000", r.Arrivals)
	}
	if r.Completed+r.Shed != r.Arrivals || r.Queued != 0 {
		t.Fatalf("accounting broken: arrivals=%d completed=%d shed=%d queued=%d",
			r.Arrivals, r.Completed, r.Shed, r.Queued)
	}
	if r.Compactions == 0 || r.Recalibrations < r.Compactions {
		t.Fatalf("compaction never ran: %+v", r)
	}
	if math.IsInf(r.Threshold, 1) {
		t.Fatal("threshold never calibrated")
	}
	if r.Degraded == 0 {
		t.Fatal("burst never crossed the degrade depth")
	}
	if r.EarlyPredictions != r.Completed {
		t.Fatalf("every completion should carry an early prediction: %d vs %d",
			r.EarlyPredictions, r.Completed)
	}
	if r.Injected == 0 || r.Flagged == 0 || r.FlaggedInjected == 0 {
		t.Fatalf("anomaly pipeline inert: injected=%d flagged=%d hits=%d",
			r.Injected, r.Flagged, r.FlaggedInjected)
	}
	// Detection should beat chance: injected requests are ~0.4% of
	// traffic but should be a far larger share of flags.
	if hitRate := float64(r.FlaggedInjected) / float64(r.Flagged); hitRate < 0.05 {
		t.Fatalf("flagging indistinguishable from noise: hit rate %.3f", hitRate)
	}
}

// TestEngineDeterministic: identical configs must produce bit-identical
// results regardless of worker count or process-call batching.
func TestEngineDeterministic(t *testing.T) {
	base := run(t, testConfig(7), 40_000)
	for _, workers := range []int{1, 2, 8} {
		cfg := testConfig(7)
		cfg.Workers = workers
		if got := run(t, cfg, 40_000); !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d diverges:\n got %+v\nwant %+v", workers, got, base)
		}
	}
	// Two engines driven by the same Process-call sequence must agree
	// (Process granularity is whole ticks, so different batchings of the
	// same total are different — but equal batchings are bit-identical).
	runSplit := func(workers int) Result {
		cfg := testConfig(7)
		cfg.Workers = workers
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for i := 0; i < 4; i++ {
			e.Process(10_000)
		}
		e.Drain()
		return e.Result()
	}
	if a, b := runSplit(1), runSplit(4); !reflect.DeepEqual(a, b) {
		t.Fatalf("split processing diverges across workers:\n got %+v\nwant %+v", a, b)
	}
}

func TestEngineSeedSensitivity(t *testing.T) {
	a := run(t, testConfig(1), 30_000)
	b := run(t, testConfig(2), 30_000)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical results")
	}
}

// TestEngineOverdrive is the backpressure soak: a stream far beyond
// virtual capacity must shed deterministically, keep every queue bounded,
// and still drain — under any worker count (run with -race in CI).
func TestEngineOverdrive(t *testing.T) {
	overdriven := func(workers int) Config {
		cfg := testConfig(3)
		cfg.Stream.RatePerSec = 6_000_000
		cfg.Stream.Bursts = nil
		cfg.QueueCap = 512
		cfg.DegradeDepth = 128
		cfg.Workers = workers
		return cfg
	}
	base := run(t, overdriven(0), 120_000)
	if base.Shed == 0 {
		t.Fatalf("overdriven stream never shed: %+v", base)
	}
	if base.Degraded == 0 || base.CompletedDegraded == 0 {
		t.Fatalf("overdriven stream never degraded: %+v", base)
	}
	if base.MaxShardDepth > 512 {
		t.Fatalf("queue depth %d exceeds cap 512", base.MaxShardDepth)
	}
	if base.Completed+base.Shed != base.Arrivals || base.Queued != 0 {
		t.Fatalf("overdrive accounting broken: %+v", base)
	}
	for _, workers := range []int{1, 4} {
		if got := run(t, overdriven(workers), 120_000); !reflect.DeepEqual(got, base) {
			t.Fatalf("overdrive workers=%d diverges:\n got %+v\nwant %+v", workers, got, base)
		}
	}
}

// TestEngineSteadyStateAllocs: once warmed past the first compactions,
// processing allocates nothing — the headline property of the service
// mode.
func TestEngineSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation steady state needs a long warmup")
	}
	cfg := testConfig(5)
	cfg.Workers = 1 // AllocsPerRun must see every allocation on one goroutine
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Process(120_000) // warm: pools grown, several compactions done
	allocs := testing.AllocsPerRun(5, func() {
		e.Process(20_000)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Process allocates %v per 20k requests, want 0", allocs)
	}
}
