// The tick engine. Each virtual tick runs three phases:
//
//  1. Ingest (serial): pull stream arrivals up to the tick boundary, hash
//     each to a shard, and either enqueue it — degraded past DegradeDepth —
//     or shed it when the shard queue is full.
//  2. Process (parallel): shard workers burn their per-tick virtual budget
//     on their own queues, oldest request first, feeding pattern chunks
//     through the shared signature Service. Shards are claimed off an
//     atomic counter by a persistent worker pool; every shard's work is a
//     pure function of its queue, so worker scheduling cannot change
//     results.
//  3. Aggregate (serial, shard order): merge tick tallies, append
//     completions to the sliding window, compact queues, and — every
//     CompactTicks — rebuild the signature bank and recalibrate the
//     anomaly threshold (compact.go).
package serve

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/distance"
	"repro/internal/obs"
	"repro/internal/signature"
	"repro/internal/sim"
	"repro/internal/workload"
)

// req is one queued in-flight request. Records live in preallocated
// per-shard double buffers and are moved by value; the id links the record
// to its identification session inside the Service.
type req struct {
	id        uint64
	arrivalNs int64
	drift     float64
	cpuNs     float64
	app       int32
	tmpl      int32
	pos       int32
	patLen    int32
	anom      bool
	degraded  bool
	done      bool
	predDone  bool
	predHigh  bool
}

// winRec is one completed request in the sliding window — the compact form
// from which compaction rematerializes the full pattern (a pure function
// of these fields and the template library).
type winRec struct {
	app    int32
	tmpl   int32
	cohort int32 // arrival cohort (always 0 on the single-node engine)
	anom   bool
	drift  float64
	cpuNs  float64
}

// shardTally is one shard's per-tick outcome counts, merged serially in
// shard order so totals are independent of worker scheduling.
type shardTally struct {
	completed         uint64
	completedDegraded uint64
	flagged           uint64
	flaggedInjected   uint64
	early             uint64
	earlyWrong        uint64
	scoreSum          float64
}

// shardState is one virtual service core: its queue double buffer, chunk
// scratch, tick tally, and completion buffer. Only its owning worker
// touches it during the parallel phase.
type shardState struct {
	q, qNext []req
	chunk    []float64
	winBuf   []winRec
	tally    shardTally
	depth    int // peak queue depth seen on this shard
	// Pad to keep neighboring shards off each other's cache lines.
	_ [64]byte
}

// Engine is a running service-mode pipeline. Methods are not safe for
// concurrent use; the engine parallelizes internally.
type Engine struct {
	cfg    Config
	stream *workload.Stream
	tmpl   [][]template
	// tmplCache[app][t] is template t identified against the current bank
	// (refreshed at every compaction); degraded requests resolve against
	// it at constant cost.
	tmplCache [][]tmplMatch

	svc     *signature.Service
	matcher *signature.Matcher
	bank    *signature.Bank
	// threshold is the calibrated anomaly threshold on identification
	// scores (+Inf until the first calibration).
	threshold float64

	shards []shardState
	shift  uint

	pending     workload.Arrival
	havePending bool
	nextID      uint64
	tick        uint64
	nowNs       int64

	// Sliding window ring of recent completions.
	win     []winRec
	winLen  int
	winHead int

	// Compaction scratch (see compact.go); pairFn is bound once so the
	// per-compaction Fill call allocates no closure.
	winPats [][]float64
	winN    int
	dm      distance.Matrix
	pairFn  distance.PairFunc
	csc     cluster.Scratch
	crng    *sim.RNG
	scores  []float64
	cpus    []float64
	patBufs [][]float64

	res Result

	workers int
	workCh  []chan struct{}
	wg      sync.WaitGroup
	claim   atomic.Int64
	closed  bool

	hist                                    *obs.Histogram
	cArrivals, cShed, cDegraded, cCompleted *obs.Counter
	cFlagged, cCompactions, cRecalibrations *obs.Counter
}

// New builds the engine: template libraries, the initial signature bank
// (the templates themselves, so identification works from tick zero), the
// sharded session service, and the persistent worker pool.
func New(cfg Config) (*Engine, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	stream, err := workload.NewStream(cfg.Stream)
	if err != nil {
		return nil, err
	}
	tmpl, err := buildTemplates(cfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:       cfg,
		stream:    stream,
		tmpl:      tmpl,
		threshold: math.Inf(1),
		shards:    make([]shardState, cfg.Shards),
		shift:     uint(64 - log2(cfg.Shards)),
		win:       make([]winRec, cfg.WindowSize),
		workers:   cfg.Workers,
		crng:      sim.NewRNG(0),
	}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.q = make([]req, 0, cfg.QueueCap)
		sh.qNext = make([]req, 0, cfg.QueueCap)
		sh.chunk = make([]float64, cfg.ChunkBuckets)
		sh.winBuf = make([]winRec, 0, cfg.QueueCap)
	}
	e.tmplCache = make([][]tmplMatch, len(tmpl))
	for a := range tmpl {
		e.tmplCache[a] = make([]tmplMatch, len(tmpl[a]))
	}
	// Pattern scratch is preallocated at the hard length cap so window
	// rematerialization and bank rebuilds never grow a buffer mid-run.
	e.winPats = make([][]float64, cfg.WindowSize)
	for i := range e.winPats {
		e.winPats[i] = make([]float64, 0, cfg.MaxPatternLen)
	}
	e.patBufs = make([][]float64, cfg.BankK)
	for i := range e.patBufs {
		e.patBufs[i] = make([]float64, 0, cfg.MaxPatternLen)
	}
	e.scores = make([]float64, 0, cfg.WindowSize)
	e.cpus = make([]float64, 0, cfg.WindowSize)
	e.pairFn = func(i, j int) float64 {
		return signature.PatternDistance(e.winPats[i], e.winPats[j])
	}
	e.buildInitialBank()
	e.svc = signature.NewService(e.matcher, cfg.Shards)
	e.refreshTemplateCache()
	e.hist = obs.NewHistogram("serve.identify.ns")
	if c := cfg.Obs; c != nil {
		c.RegisterHistogram(e.hist)
		e.svc.SetObserver(c)
		e.cArrivals = c.Counter("serve.arrivals")
		e.cShed = c.Counter("serve.shed")
		e.cDegraded = c.Counter("serve.degraded")
		e.cCompleted = c.Counter("serve.completed")
		e.cFlagged = c.Counter("serve.flagged")
		e.cCompactions = c.Counter("serve.compactions")
		e.cRecalibrations = c.Counter("serve.recalibrations")
	}
	if e.workers > 1 {
		e.workCh = make([]chan struct{}, e.workers)
		for w := range e.workCh {
			ch := make(chan struct{}, 1)
			e.workCh[w] = ch
			go func() {
				for range ch {
					for {
						s := int(e.claim.Add(1)) - 1
						if s >= len(e.shards) {
							break
						}
						e.processShard(&e.shards[s])
					}
					e.wg.Done()
				}
			}()
		}
	}
	return e, nil
}

// log2 of a power of two.
func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// shardFor mirrors the Service's Fibonacci-hash sharding, so each engine
// shard drives exactly one Service shard and the parallel phase never
// contends on session locks.
func (e *Engine) shardFor(id uint64) *shardState {
	if len(e.shards) == 1 {
		return &e.shards[0]
	}
	return &e.shards[(id*0x9E3779B97F4A7C15)>>e.shift]
}

// Process advances the engine until at least n more stream arrivals have
// been ingested (admitted or shed), then finishes the current tick and
// returns. The queue may hold in-flight requests afterwards; call Drain to
// run them down, or Process again to continue the stream.
func (e *Engine) Process(n int) {
	var ingested int
	for ingested < n {
		ingested += e.runTick(true)
	}
}

// Drain runs ticks without ingesting until every shard queue is empty.
func (e *Engine) Drain() {
	for {
		e.runTick(false)
		empty := true
		for i := range e.shards {
			if len(e.shards[i].q) > 0 {
				empty = false
				break
			}
		}
		if empty {
			return
		}
	}
}

// runTick executes one full tick and returns the number of arrivals
// ingested.
func (e *Engine) runTick(ingest bool) int {
	tickEnd := e.nowNs + e.cfg.TickNs
	var arrivals int
	if ingest {
		arrivals = e.ingest(tickEnd)
	}
	// Parallel shard phase.
	if e.workers > 1 {
		e.claim.Store(0)
		e.wg.Add(e.workers)
		for _, ch := range e.workCh {
			ch <- struct{}{}
		}
		e.wg.Wait()
	} else {
		for i := range e.shards {
			e.processShard(&e.shards[i])
		}
	}
	e.aggregate()
	e.nowNs = tickEnd
	e.tick++
	if e.tick%uint64(e.cfg.CompactTicks) == 0 {
		e.compact()
	}
	return arrivals
}

// ingest admits stream arrivals up to the tick boundary.
func (e *Engine) ingest(tickEnd int64) int {
	var n int
	for {
		if !e.havePending {
			e.stream.Next(&e.pending)
			e.havePending = true
		}
		if e.pending.TimeNs >= tickEnd {
			return n
		}
		a := e.pending
		e.havePending = false
		n++
		e.res.Arrivals++
		e.cArrivals.Add(1)
		sh := e.shardFor(e.nextID)
		if len(sh.q) == cap(sh.q) {
			e.res.Shed++
			e.cShed.Add(1)
			e.nextID++
			continue
		}
		tmpls := e.tmpl[a.App]
		t := int((a.Bits >> 8) % uint64(len(tmpls)))
		anom := isAnomalous(a.Bits)
		drift := e.stream.DriftAt(a.TimeNs)
		cpu := tmpls[t].cpuNs * drift
		if anom {
			cpu *= anomalyCPUFactor
			e.res.Injected++
		}
		degraded := len(sh.q) >= e.cfg.DegradeDepth
		if degraded {
			e.res.Degraded++
			e.cDegraded.Add(1)
		}
		sh.q = append(sh.q, req{
			id:        e.nextID,
			arrivalNs: a.TimeNs,
			drift:     drift,
			cpuNs:     cpu,
			app:       int32(a.App),
			tmpl:      int32(t),
			patLen:    int32(len(tmpls[t].pattern)),
			anom:      anom,
			degraded:  degraded,
		})
		if len(sh.q) > sh.depth {
			sh.depth = len(sh.q)
		}
		e.nextID++
	}
}

// processShard burns one shard's tick budget on its queue, oldest request
// first. It touches only the shard's own state and the Service shard its
// requests hash to, so concurrent shards never conflict.
func (e *Engine) processShard(sh *shardState) {
	budget := e.cfg.TickNs
	for i := range sh.q {
		r := &sh.q[i]
		if r.degraded {
			if budget < e.cfg.CostDegradedNs {
				return
			}
			budget -= e.cfg.CostDegradedNs
			m := e.tmplCache[r.app][r.tmpl]
			if !r.predDone {
				r.predDone = true
				r.predHigh = m.high
				sh.tally.early++
				if m.high != (r.cpuNs > e.bank.ThresholdNs) {
					sh.tally.earlyWrong++
				}
			}
			e.complete(sh, r, m.score, true)
			continue
		}
		for r.pos < r.patLen {
			nb := int32(e.cfg.ChunkBuckets)
			if rem := r.patLen - r.pos; rem < nb {
				nb = rem
			}
			cost := e.cfg.CostPerCallNs + int64(nb)*e.cfg.CostPerBucketNs
			if budget < cost {
				return
			}
			budget -= cost
			pat := e.tmpl[r.app][r.tmpl].pattern
			for k := int32(0); k < nb; k++ {
				sh.chunk[k] = patternValue(pat, int(r.pos+k), r.drift, r.anom)
			}
			t0 := time.Now()
			best, dist := e.svc.ObserveScored(r.id, sh.chunk[:nb]...)
			e.hist.Observe(int64(time.Since(t0)))
			r.pos += nb
			if !r.predDone && r.pos >= (r.patLen+1)/2 {
				r.predDone = true
				r.predHigh = e.bank.HighUsage(best)
				sh.tally.early++
				if r.predHigh != (r.cpuNs > e.bank.ThresholdNs) {
					sh.tally.earlyWrong++
				}
			}
			if r.pos == r.patLen {
				e.svc.Finish(r.id)
				e.complete(sh, r, dist/float64(r.patLen), false)
			}
		}
	}
}

// complete finalizes a request on its shard: anomaly scoring against the
// calibrated threshold, tick tallies, and the window record.
func (e *Engine) complete(sh *shardState, r *req, score float64, degraded bool) {
	r.done = true
	sh.tally.completed++
	if degraded {
		sh.tally.completedDegraded++
	}
	sh.tally.scoreSum += score
	if score > e.threshold {
		sh.tally.flagged++
		if r.anom {
			sh.tally.flaggedInjected++
		}
	}
	sh.winBuf = append(sh.winBuf, winRec{
		app: r.app, tmpl: r.tmpl, anom: r.anom, drift: r.drift, cpuNs: r.cpuNs,
	})
}

// aggregate merges every shard's tick outcome serially in shard order and
// compacts the queues (survivors keep arrival order).
func (e *Engine) aggregate() {
	for i := range e.shards {
		sh := &e.shards[i]
		t := &sh.tally
		e.res.Completed += t.completed
		e.res.CompletedDegraded += t.completedDegraded
		e.res.Flagged += t.flagged
		e.res.FlaggedInjected += t.flaggedInjected
		e.res.EarlyPredictions += t.early
		e.res.EarlyWrong += t.earlyWrong
		e.res.ScoreSum += t.scoreSum
		e.cCompleted.Add(t.completed)
		e.cFlagged.Add(t.flagged)
		*t = shardTally{}
		for _, rec := range sh.winBuf {
			e.win[e.winHead] = rec
			e.winHead++
			if e.winHead == len(e.win) {
				e.winHead = 0
			}
			if e.winLen < len(e.win) {
				e.winLen++
			}
		}
		sh.winBuf = sh.winBuf[:0]
		if sh.depth > e.res.MaxShardDepth {
			e.res.MaxShardDepth = sh.depth
		}
		// Queue compaction: processing stops at the first request the
		// budget could not finish, so survivors are contiguous in arrival
		// order; copying them preserves FIFO.
		sh.qNext = sh.qNext[:0]
		for _, r := range sh.q {
			if !r.done {
				sh.qNext = append(sh.qNext, r)
			}
		}
		sh.q, sh.qNext = sh.qNext, sh.q
	}
	e.res.Ticks++
}

// Queued returns the total in-flight requests across shards.
func (e *Engine) Queued() int {
	var n int
	for i := range e.shards {
		n += len(e.shards[i].q)
	}
	return n
}

// Histogram returns the identify-path latency histogram (wall-clock
// nanoseconds per Service call; observability only, never fingerprinted).
func (e *Engine) Histogram() *obs.Histogram { return e.hist }

// Result snapshots the run's deterministic outcome.
func (e *Engine) Result() Result {
	r := e.res
	r.VirtualNs = e.nowNs
	r.BankEntries = len(e.bank.Entries)
	r.Threshold = e.threshold
	r.WindowFill = e.winLen
	r.Queued = e.Queued()
	return r
}

// Close stops the worker pool. The engine must not be used afterwards.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, ch := range e.workCh {
		close(ch)
	}
}
