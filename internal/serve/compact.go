// Online bank compaction and threshold calibration. Every CompactTicks
// ticks the engine, in its serial phase, rematerializes the sliding
// window's patterns, reclusters them with k-medoids over a pooled distance
// matrix, rebuilds the signature bank from the medoids, rebinds every
// in-flight session (Service.SetMatcher), refreshes the degraded-path
// template cache, and recalibrates the anomaly threshold against the new
// bank — all in preallocated scratch, so a steady-state compaction
// allocates nothing.
package serve

import (
	"sort"

	"repro/internal/anomaly"
	"repro/internal/cluster"
	"repro/internal/distance"
	"repro/internal/metrics"
	"repro/internal/signature"
)

// minWindowFill is the smallest window occupancy worth compacting:
// clustering a handful of requests would thrash the bank.
const minWindowFill = 32

// buildInitialBank seeds the bank with the template libraries themselves —
// every template of every mix app, in app-then-template order — so
// identification and CPU prediction work from tick zero. The anomaly
// threshold stays +Inf until the first window calibration.
func (e *Engine) buildInitialBank() {
	e.bank = &signature.Bank{Metric: metrics.L2RefsPerIns}
	for ai := range e.tmpl {
		for t := range e.tmpl[ai] {
			tm := &e.tmpl[ai][t]
			e.bank.Entries = append(e.bank.Entries, signature.Entry{
				Pattern:   tm.pattern,
				Average:   meanOf(tm.pattern),
				CPUTimeNs: tm.cpuNs,
				Type:      e.cfg.Stream.Apps[ai].Name,
			})
			e.cpus = append(e.cpus, tm.cpuNs)
		}
	}
	e.bank.ThresholdNs = medianInPlace(e.cpus)
	e.cpus = e.cpus[:0]
	// Pre-size the matcher's envelope against a worst-case bank — as many
	// entries as the larger of the template bank and the compacted bank,
	// every pattern at the length cap — before pointing it at the real one:
	// Rebuild only reuses per-slot storage that is already big enough, so
	// seeding every slot at the cap makes all later compaction rebuilds
	// allocation-free no matter which medoid lengths they draw.
	e.matcher = &signature.Matcher{}
	k := e.cfg.BankK
	if n := len(e.bank.Entries); n > k {
		k = n
	}
	if k > 0 {
		warm := &signature.Bank{Entries: make([]signature.Entry, k)}
		full := make([]float64, e.cfg.MaxPatternLen)
		for i := range warm.Entries {
			warm.Entries[i].Pattern = full
		}
		e.matcher.Rebuild(warm)
	}
	e.matcher.Rebuild(e.bank)
}

// compact runs one bank rebuild + recalibration cycle. A window below
// minWindowFill skips the rebuild but still recalibrates, so thresholds
// track drift even under light traffic.
func (e *Engine) compact() {
	if e.winLen < minWindowFill {
		if e.winLen > 0 {
			e.recalibrate()
		}
		return
	}
	e.materializeWindow()

	// Pairwise distances and k-medoids over the window, fully pooled. One
	// fill worker: compaction runs in the serial phase, and spawning a
	// pool would allocate.
	e.dm.Fill(e.winN, e.pairFn, distance.MatrixOptions{Workers: 1})
	e.crng.Reseed(e.cfg.Stream.Seed + int64(e.res.Compactions))
	k := e.cfg.BankK
	if k > e.winN {
		k = e.winN
	}
	cres := e.csc.KMedoids(&e.dm, cluster.Config{K: k, Rand: e.crng})

	// Rebuild the bank from the medoids in cluster order. Medoid indices
	// are deterministic, and every buffer below is pooled: entry patterns
	// copy into per-slot buffers, CPU medians sort in scratch.
	e.bank.Entries = e.bank.Entries[:0]
	e.cpus = e.cpus[:0]
	for c, m := range cres.Medoids {
		src := e.winPats[m]
		e.patBufs[c] = append(e.patBufs[c][:0], src...)
		rec := e.winAt(m)
		e.bank.Entries = append(e.bank.Entries, signature.Entry{
			Pattern:   e.patBufs[c],
			Average:   meanOf(e.patBufs[c]),
			CPUTimeNs: rec.cpuNs,
			Type:      e.cfg.Stream.Apps[rec.app].Name,
		})
	}
	for i := 0; i < e.winN; i++ {
		e.cpus = append(e.cpus, e.winAt(i).cpuNs)
	}
	e.bank.ThresholdNs = medianInPlace(e.cpus)

	// Swap the bank under live traffic: rebuild the envelope in place,
	// rebind every live and pooled session (their next identification
	// re-runs the full prefix against the new bank, bit-identical to a
	// fresh session), refresh the degraded-path cache, recalibrate.
	e.matcher.Rebuild(e.bank)
	e.svc.SetMatcher(e.matcher)
	e.refreshTemplateCache()
	e.recalibrate()
	e.res.Compactions++
	e.cCompactions.Add(1)
}

// materializeWindow rematerializes every window record's full pattern into
// pooled buffers (winPats[0:winN], oldest first).
func (e *Engine) materializeWindow() {
	e.winN = e.winLen
	for i := 0; i < e.winN; i++ {
		rec := e.winAt(i)
		tmpl := e.tmpl[rec.app][rec.tmpl].pattern
		buf := e.winPats[i][:0]
		for j := range tmpl {
			buf = append(buf, patternValue(tmpl, j, rec.drift, rec.anom))
		}
		e.winPats[i] = buf
	}
}

// winAt returns window record i, i ∈ [0, winLen), oldest first.
func (e *Engine) winAt(i int) *winRec {
	idx := e.winHead - e.winLen + i
	if idx < 0 {
		idx += len(e.win)
	}
	return &e.win[idx]
}

// refreshTemplateCache re-identifies every template against the current
// bank. Cached matches are anomaly- and drift-free (the template's
// inherent behavior), which is exactly the blindness degradation buys:
// an overloaded shard stops seeing per-request deviations.
func (e *Engine) refreshTemplateCache() {
	for a := range e.tmpl {
		for t := range e.tmpl[a] {
			pat := e.tmpl[a][t].pattern
			best, dist := e.bank.IdentifyPatternScored(pat)
			e.tmplCache[a][t] = tmplMatch{
				best:  best,
				high:  e.bank.HighUsage(best),
				score: dist / float64(len(pat)),
			}
		}
	}
}

// recalibrate rescores the window against the current bank and resets the
// anomaly threshold to the calibration quantile of those scores.
func (e *Engine) recalibrate() {
	e.materializeWindow()
	e.scores = e.scores[:0]
	for i := 0; i < e.winN; i++ {
		_, dist := e.bank.IdentifyPatternScored(e.winPats[i])
		e.scores = append(e.scores, dist/float64(len(e.winPats[i])))
	}
	e.threshold = anomaly.Calibrate(e.scores, e.cfg.CalibrationQuantile, e.cfg.CalibrationHeadroom)
	e.res.Recalibrations++
	e.cRecalibrations.Add(1)
}

// meanOf returns the arithmetic mean (0 for an empty slice).
func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// medianInPlace sorts xs and returns its median (0 for empty) — the
// paper's bank threshold, computed without the stats package's copy.
func medianInPlace(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}
