package trace

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/timeseries"
)

func sampleTrace() *Request {
	r := &Request{ID: 1, App: "app", Type: "t", Start: 0, End: 1000}
	r.AddPeriod(100, metrics.Counters{Cycles: 200, Instructions: 100, L2Refs: 10, L2Misses: 2})
	r.AddPeriod(100, metrics.Counters{Cycles: 600, Instructions: 200, L2Refs: 40, L2Misses: 20})
	r.AddSyscall("read", 100, 100)
	r.AddSyscall("write", 250, 180)
	return r
}

func TestTotalsAndMetrics(t *testing.T) {
	r := sampleTrace()
	tot := r.Totals()
	if tot.Cycles != 800 || tot.Instructions != 300 {
		t.Fatalf("totals = %v", tot)
	}
	if got := r.MetricValue(metrics.CPI); got != 800.0/300.0 {
		t.Fatalf("CPI = %v", got)
	}
	if r.CPUTime() != 200 {
		t.Fatalf("CPUTime = %v", r.CPUTime())
	}
	if r.Instructions() != 300 {
		t.Fatalf("Instructions = %v", r.Instructions())
	}
}

func TestAddPeriodDropsEmpty(t *testing.T) {
	r := &Request{}
	r.AddPeriod(0, metrics.Counters{})
	if len(r.Periods) != 0 {
		t.Fatal("empty period added")
	}
	r.AddPeriod(5, metrics.Counters{})
	if len(r.Periods) != 1 {
		t.Fatal("non-empty-duration period dropped")
	}
}

func TestSeries(t *testing.T) {
	r := sampleTrace()
	s := r.Series(metrics.CPI, timeseries.Instructions)
	if s.Len() != 2 {
		t.Fatalf("series len = %d", s.Len())
	}
	if s.Points[0].Value != 2.0 || s.Points[1].Value != 3.0 {
		t.Fatalf("series values = %v", s.Values())
	}
	if s.Points[0].Len != 100 || s.Points[1].Len != 200 {
		t.Fatalf("series lengths = %v", s.Lengths())
	}
	// Nanos unit uses durations as lengths.
	sn := r.Series(metrics.CPI, timeseries.Nanos)
	if sn.Points[0].Len != 100 {
		t.Fatalf("nanos lengths = %v", sn.Lengths())
	}
	// Miss ratio series skips zero-reference periods.
	r2 := &Request{}
	r2.AddPeriod(50, metrics.Counters{Cycles: 100, Instructions: 50})
	if got := r2.Series(metrics.L2MissRatio, timeseries.Instructions).Len(); got != 0 {
		t.Fatalf("zero-ref period included in miss-ratio series: %d", got)
	}
}

func TestResampled(t *testing.T) {
	r := sampleTrace()
	vals := r.Resampled(metrics.CPI, 150)
	if len(vals) != 2 {
		t.Fatalf("resampled = %v", vals)
	}
	// First bucket: 100 ins at CPI 2 + 50 ins at CPI 3 → 2.333…
	want := (100*2.0 + 50*3.0) / 150
	if diff := vals[0] - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("bucket 0 = %v, want %v", vals[0], want)
	}
}

func TestSyscallHelpers(t *testing.T) {
	r := sampleTrace()
	names := r.SyscallNames()
	if len(names) != 2 || names[0] != "read" || names[1] != "write" {
		t.Fatalf("names = %v", names)
	}
	ins, cpu := r.SyscallGaps()
	// Gaps: 0→100, 100→250, 250→300 (trailing).
	if len(ins) != 3 || ins[0] != 100 || ins[1] != 150 || ins[2] != 50 {
		t.Fatalf("ins gaps = %v", ins)
	}
	if len(cpu) != 3 || cpu[0] != 100 || cpu[1] != 80 {
		t.Fatalf("cpu gaps = %v", cpu)
	}
	if cpu[2] != sim.Time(200-180) {
		t.Fatalf("trailing cpu gap = %v", cpu[2])
	}
}

func TestStore(t *testing.T) {
	s := &Store{}
	a := sampleTrace()
	b := sampleTrace()
	b.Type = "u"
	s.Add(a)
	s.Add(b)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	groups := s.ByType()
	if len(groups["t"]) != 1 || len(groups["u"]) != 1 {
		t.Fatalf("ByType = %v", groups)
	}
	if got := s.MetricValues(metrics.CPI); len(got) != 2 {
		t.Fatalf("MetricValues = %v", got)
	}
	if got := s.CPUTimes(); got[0] != 200 {
		t.Fatalf("CPUTimes = %v", got)
	}
}

func TestString(t *testing.T) {
	if sampleTrace().String() == "" {
		t.Fatal("empty trace string")
	}
}
