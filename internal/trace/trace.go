// Package trace holds per-request execution timelines: the time-ordered
// hardware-counter periods and system call events that the sampling layer
// attributes to each request. A trace is the raw material for every analysis
// in the paper — coefficient-of-variation characterization (Figure 3),
// request differencing and classification (Section 4), anomaly analysis,
// signature identification, and scheduling-time behavior prediction.
package trace

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/timeseries"
)

// Period is one measured execution period: the counter delta between two
// consecutive samples attributed to a request, and the wall (== CPU, since
// the request held the core) duration between them.
type Period struct {
	Dur sim.Time
	C   metrics.Counters
}

// SyscallEvent is one system call the request issued, positioned by the
// request's cumulative progress at the call's kernel entrance.
type SyscallEvent struct {
	Name string
	// Ins is the request's cumulative application instruction position.
	Ins float64
	// CPUTime is the request's cumulative CPU time.
	CPUTime sim.Time
}

// Request is a complete per-request trace.
type Request struct {
	ID        uint64
	App       string
	Type      string
	TypeIndex int
	// Start and End are wall-clock request boundaries.
	Start, End sim.Time
	// Periods is the serialized sequence of measured periods, spanning the
	// request's entire CPU execution across cores and processes.
	Periods []Period
	// Syscalls is the request's system call stream.
	Syscalls []SyscallEvent

	// cpuSummed/cpuPeriods cache the running duration sum over
	// Periods[:cpuPeriods], making CPUTime O(1) amortized. The sampling
	// layer calls CPUTime at every system call entrance; without the cache
	// that scan is quadratic in trace length. Periods only ever grows (see
	// AddPeriod), so summing the tail on demand is always correct.
	cpuSummed  sim.Time
	cpuPeriods int
}

// AddPeriod appends a measured period, dropping empty ones.
func (r *Request) AddPeriod(dur sim.Time, c metrics.Counters) {
	if dur <= 0 && c.IsZero() {
		return
	}
	r.Periods = append(r.Periods, Period{Dur: dur, C: c})
}

// AddSyscall appends a system call event.
func (r *Request) AddSyscall(name string, ins float64, cpu sim.Time) {
	r.Syscalls = append(r.Syscalls, SyscallEvent{Name: name, Ins: ins, CPUTime: cpu})
}

// Totals returns the summed counters over all periods.
func (r *Request) Totals() metrics.Counters {
	var t metrics.Counters
	for _, p := range r.Periods {
		t = t.Add(p.C)
	}
	return t
}

// CPUTime returns the request's total CPU execution time.
func (r *Request) CPUTime() sim.Time {
	for _, p := range r.Periods[r.cpuPeriods:] {
		r.cpuSummed += p.Dur
	}
	r.cpuPeriods = len(r.Periods)
	return r.cpuSummed
}

// Instructions returns the request's total retired instructions.
func (r *Request) Instructions() uint64 { return r.Totals().Instructions }

// MetricValue returns the whole-request value of metric m (e.g., the
// per-request CPI of Figure 1).
func (r *Request) MetricValue(m metrics.Metric) float64 {
	return r.Totals().Value(m)
}

// Series builds the request's time series for metric m, with period lengths
// in the given unit. Periods whose weight is zero (no instructions, or no
// L2 references for the miss ratio) are skipped.
func (r *Request) Series(m metrics.Metric, unit timeseries.Unit) *timeseries.Series {
	s := timeseries.New(unit)
	for _, p := range r.Periods {
		var length float64
		switch unit {
		case timeseries.Instructions:
			length = float64(p.C.Instructions)
		case timeseries.Nanos:
			length = float64(p.Dur)
		}
		if w := p.C.Weight(m); w <= 0 {
			continue
		}
		s.Append(length, p.C.Value(m))
	}
	return s
}

// InsSeries is Series with instruction-count period lengths — the unit the
// paper's request-progress analyses use.
func (r *Request) InsSeries(m metrics.Metric) *timeseries.Series {
	return r.Series(m, timeseries.Instructions)
}

// Resampled returns metric m resampled into fixed instruction-length
// buckets — the "sequence of measured metric values for fixed-length
// periods" Section 4.1's distances consume.
func (r *Request) Resampled(m metrics.Metric, bucketIns float64) []float64 {
	return r.Series(m, timeseries.Instructions).Resample(bucketIns)
}

// SyscallNames returns the request's system call name sequence, the input
// to Magpie-style Levenshtein differencing.
func (r *Request) SyscallNames() []string {
	out := make([]string, len(r.Syscalls))
	for i, s := range r.Syscalls {
		out[i] = s.Name
	}
	return out
}

// SyscallGaps returns the distances between consecutive system calls (and
// from the request start to the first one) in instructions and CPU time.
// These gap populations underlie the paper's Figure 4 CDFs.
func (r *Request) SyscallGaps() (ins []float64, cpu []sim.Time) {
	prevIns, prevCPU := 0.0, sim.Time(0)
	for _, s := range r.Syscalls {
		ins = append(ins, s.Ins-prevIns)
		cpu = append(cpu, s.CPUTime-prevCPU)
		prevIns, prevCPU = s.Ins, s.CPUTime
	}
	// Trailing gap to request end.
	totalIns := float64(r.Instructions())
	if totalIns > prevIns {
		ins = append(ins, totalIns-prevIns)
		cpu = append(cpu, r.CPUTime()-prevCPU)
	}
	return ins, cpu
}

func (r *Request) String() string {
	return fmt.Sprintf("trace %s/%s#%d: %d periods, %d syscalls, %v CPU",
		r.App, r.Type, r.ID, len(r.Periods), len(r.Syscalls), r.CPUTime())
}

// Store collects completed request traces for offline analysis.
type Store struct {
	Traces []*Request
}

// Add appends a trace.
func (s *Store) Add(r *Request) { s.Traces = append(s.Traces, r) }

// Len reports the number of traces.
func (s *Store) Len() int { return len(s.Traces) }

// ByType groups traces by request type.
func (s *Store) ByType() map[string][]*Request {
	out := map[string][]*Request{}
	for _, r := range s.Traces {
		out[r.Type] = append(out[r.Type], r)
	}
	return out
}

// MetricValues extracts the whole-request metric value of every trace.
func (s *Store) MetricValues(m metrics.Metric) []float64 {
	out := make([]float64, len(s.Traces))
	for i, r := range s.Traces {
		out[i] = r.MetricValue(m)
	}
	return out
}

// CPUTimes extracts every trace's CPU time in nanoseconds.
func (s *Store) CPUTimes() []float64 {
	out := make([]float64, len(s.Traces))
	for i, r := range s.Traces {
		out[i] = float64(r.CPUTime())
	}
	return out
}
