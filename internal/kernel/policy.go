package kernel

import "repro/internal/sim"

// Policy is a pluggable CPU scheduling policy. At each scheduling
// opportunity the kernel asks the policy to pick among candidate threads.
//
// When curIncluded is true the call is a re-scheduling attempt at quantum
// expiry and candidates[0] is the currently running thread, kept at the
// head so that choosing it resumes execution without any context switch
// cost (Section 5.2's "keep the current request at the head of the local
// runqueue" rule). When curIncluded is false the core is free and the
// candidates are the runqueue in FIFO order.
type Policy interface {
	// Pick returns the index of the chosen candidate. Out-of-range values
	// fall back to the head.
	Pick(k *Kernel, core int, candidates []*Thread, curIncluded bool) int
	// Quantum returns the interval between re-scheduling opportunities.
	Quantum(k *Kernel) sim.Time
}

// RoundRobin is the default policy: FIFO runqueues with a fixed timeslice,
// like the baseline Linux 2.6.18 scheduler the paper compares against.
type RoundRobin struct {
	// Timeslice overrides the kernel's configured quantum when positive.
	Timeslice sim.Time
}

// Pick implements Policy.
func (RoundRobin) Pick(_ *Kernel, _ int, candidates []*Thread, curIncluded bool) int {
	if curIncluded && len(candidates) > 1 {
		return 1 // preempt: next thread in FIFO order
	}
	return 0
}

// Quantum implements Policy.
func (p RoundRobin) Quantum(k *Kernel) sim.Time {
	if p.Timeslice > 0 {
		return p.Timeslice
	}
	return k.cfg.Quantum
}
