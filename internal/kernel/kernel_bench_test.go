package kernel

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// BenchmarkWebLoad measures end-to-end simulation throughput: a concurrent
// web load of 200 requests on the 4-core machine.
func BenchmarkWebLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		k := New(eng, DefaultConfig())
		d := NewDriver(k, LoadConfig{
			App: workload.NewWebServer(), Concurrency: 8, Requests: 200, Seed: 1,
		})
		d.Start()
		eng.RunAll()
		if d.Completed() != 200 {
			b.Fatal("incomplete")
		}
	}
}

// BenchmarkTPCHLoad exercises the long-request path (many syscall events).
func BenchmarkTPCHLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		k := New(eng, DefaultConfig())
		d := NewDriver(k, LoadConfig{
			App: workload.NewTPCH(), Concurrency: 8, Requests: 10, Seed: 1,
		})
		d.Start()
		eng.RunAll()
	}
}
