// Package kernel simulates the operating system of the paper's testbed
// (instrumented Linux 2.6.18): per-CPU runqueues with quantum-based
// scheduling, context switches with cache-pollution costs, system call
// dispatch, one-shot timer (APIC) interrupts, and — central to the paper —
// request context tracking that follows a request across threads and server
// processes through socket operations, so per-request hardware counter
// periods can be attributed correctly.
//
// The kernel exposes the exact hook points the paper's sampling layer uses:
// request context switches, system call entrances, and programmable timer
// interrupts. The scheduling policy is pluggable; package sched provides the
// contention-easing policy of Section 5.2.
package kernel

import (
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config parameterizes the kernel.
type Config struct {
	// Machine is the hardware configuration.
	Machine machine.Config
	// Quantum is the scheduling timeslice (Linux 2.6.18 timeslices reach
	// 100 ms; Section 5.2 shortens re-scheduling to 5 ms).
	Quantum sim.Time
	// SyscallCost is the per-system-call kernel work injected into the
	// running request (trap, dispatch, copyin/out).
	SyscallCost metrics.Counters
	// CtxSwitchCost is the direct cost of a context switch (register and
	// address-space switching), charged to the incoming thread.
	CtxSwitchCost metrics.Counters
	// PollutionOnSwitch charges the incoming thread the cache-refill cost
	// of a context switch (machine.PollutionEvents). Disabling it is the
	// ablation for the paper's concern that frequent re-scheduling's cache
	// pollution can negate adaptive scheduling benefits.
	PollutionOnSwitch bool
	// Policy selects the scheduling policy; nil means round-robin FIFO.
	Policy Policy
}

// DefaultConfig returns a Linux-2.6.18-like configuration on the paper's
// hardware.
func DefaultConfig() Config {
	return Config{
		Machine:           machine.DefaultConfig(),
		Quantum:           100 * sim.Millisecond,
		SyscallCost:       metrics.Counters{Cycles: 600, Instructions: 280, L2Refs: 4},
		CtxSwitchCost:     metrics.Counters{Cycles: 1800, Instructions: 700, L2Refs: 12},
		PollutionOnSwitch: true,
	}
}

// Validate reports configuration errors, naming the offending field.
func (c Config) Validate() error {
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if c.Quantum < 0 {
		return fmt.Errorf("kernel: Quantum must be non-negative, got %v", c.Quantum)
	}
	return nil
}

// ThreadState is a worker thread's scheduling state.
type ThreadState int

const (
	// Idle means the worker has no request stage to run.
	Idle ThreadState = iota
	// Runnable means the thread waits on a runqueue.
	Runnable
	// Running means the thread is current on a core.
	Running
	// Blocked means the thread waits on I/O or on a downstream tier.
	Blocked
)

func (s ThreadState) String() string {
	switch s {
	case Idle:
		return "idle"
	case Runnable:
		return "runnable"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	default:
		return fmt.Sprintf("ThreadState(%d)", int(s))
	}
}

// Thread is a server worker process/thread.
type Thread struct {
	ID    int
	Tier  int
	State ThreadState
	// Run is the request execution the thread currently hosts (nil when
	// idle).
	Run *RequestRun
	// core is the thread's home core (-1 before first placement). Threads
	// do not migrate, matching the paper's scheduler.
	core int
	// resumePhase, while Blocked waiting for the request to come back to
	// this tier, is the phase index at which this thread resumes.
	resumePhase int
	// wake is the thread's reusable I/O-completion timer. A thread blocks
	// on at most one I/O wait at a time, so one timer per thread replaces a
	// fresh event + closure per block.
	wake *sim.Timer
}

// Core returns the thread's home core, or -1 if unplaced.
func (t *Thread) Core() int { return t.core }

// RequestRun is the kernel-side execution state of one request: the
// "request context" the paper's OS instrumentation maintains across CPU
// context switches and inter-process propagation.
type RequestRun struct {
	Req *workload.Request
	// Done is set when the request completes.
	Done bool
	// Submit, Start, and End are the request's lifecycle timestamps.
	Submit, Start, End sim.Time

	phase       int
	phaseStart  sim.Time // when the current phase began (observability spans)
	insIntoRun  float64  // app instructions completed over the whole request
	insInPhase  float64  // app instructions completed in the current phase
	nextSyscall float64 // insInPhase position of the next within-phase syscall
	syscallIdx  int     // cycles through Phase.Syscalls
	entryPend   string  // syscall to issue before the current phase starts
	phaseFresh  bool    // the current phase has not begun executing yet
	started     bool
	waiters     []*Thread // upstream threads blocked on this request
}

// Phase returns the currently executing phase index.
func (r *RequestRun) Phase() int { return r.phase }

// InstructionsDone reports the request's completed application instructions.
func (r *RequestRun) InstructionsDone() float64 { return r.insIntoRun }

// CurrentPhase returns the phase under execution, or nil after completion.
func (r *RequestRun) CurrentPhase() *workload.Phase {
	if r.phase >= len(r.Req.Phases) {
		return nil
	}
	return &r.Req.Phases[r.phase]
}

// Hooks are the sampling layer's attachment points. Nil fields are skipped.
// SwitchIn fires after the incoming request's activity is installed but
// before context-switch costs are charged; SwitchOut fires before the
// outgoing activity is removed — both are the paper's "request context
// switch" sampling moments. Syscall fires at each system call's kernel
// entrance.
type Hooks struct {
	SwitchIn    func(core int, run *RequestRun)
	SwitchOut   func(core int, run *RequestRun)
	Syscall     func(core int, run *RequestRun, name string)
	RequestDone func(run *RequestRun)
}

type coreState struct {
	id   int
	runq []*Thread
	cur  *Thread
	// quantum and brk are the core's two local timers — the re-scheduling
	// opportunity and the next execution breakpoint (phase end or system
	// call). Both re-arm millions of times per run, so they are reusable
	// sim.Timers bound once at construction instead of per-arm events.
	quantum *sim.Timer
	brk     *sim.Timer
	// cands is quantumExpiry's candidate-list scratch buffer, reused across
	// picks so re-scheduling does not allocate.
	cands []*Thread
	// syncedAppIns is the machine app-instruction count already folded
	// into the current run's progress (reset with each SetActivity).
	syncedAppIns float64
}

// kernelObs holds the kernel's resolved observability handles. All fields
// are nil when no collector is attached, so each hook site costs one
// branch (see package obs).
type kernelObs struct {
	requests  *obs.SpanSeries // request latency spans (submit → completion)
	phases    *obs.SpanSeries // per-phase spans (phase begin → advance)
	switches  *obs.Counter    // context switches performed
	syscalls  *obs.Counter    // system calls dispatched
	pollution *obs.Counter    // cache-pollution cycles charged at switch-in
}

// Kernel is the simulated operating system instance.
type Kernel struct {
	eng   *sim.Engine
	mach  *machine.Machine
	cfg   Config
	hooks Hooks
	kobs  kernelObs

	cores        []*coreState
	idleWorkers  [][]*Thread // per tier
	pendingStage [][]*RequestRun
	nextThreadID int

	doneFns []func(*RequestRun)
	active  int // in-flight requests

	// Stats counts scheduling events for overhead analysis.
	Stats struct {
		ContextSwitches uint64
		Syscalls        uint64
		Preemptions     uint64
		KeptCurrent     uint64 // re-scheduling attempts that kept the current thread
	}
}

// New builds a kernel and its machine on the engine.
func New(eng *sim.Engine, cfg Config) *Kernel {
	if cfg.Quantum <= 0 {
		cfg.Quantum = 100 * sim.Millisecond
	}
	k := &Kernel{
		eng:  eng,
		mach: machine.New(eng, cfg.Machine),
		cfg:  cfg,
	}
	if k.cfg.Policy == nil {
		k.cfg.Policy = RoundRobin{}
	}
	for i := 0; i < cfg.Machine.NumCores(); i++ {
		c := &coreState{id: i}
		c.quantum = eng.NewTimer(func() { k.quantumExpiry(c) })
		c.brk = eng.NewTimer(func() { k.breakpoint(c) })
		k.cores = append(k.cores, c)
	}
	k.mach.OnRateChange(k.onRateChange)
	return k
}

// Engine returns the driving simulation engine.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Machine returns the underlying hardware model.
func (k *Kernel) Machine() *machine.Machine { return k.mach }

// Config returns the kernel configuration.
func (k *Kernel) Config() Config { return k.cfg }

// SetHooks installs the sampling layer's hooks. Must be called before the
// simulation starts.
func (k *Kernel) SetHooks(h Hooks) { k.hooks = h }

// SetObserver attaches the observability collector, resolving span and
// counter handles under the collector's current scope. A nil collector
// leaves the kernel uninstrumented. Must be called before the simulation
// starts. Instrumentation reads only the virtual clock and state the
// kernel already computes, so it cannot change any simulation outcome.
func (k *Kernel) SetObserver(c *obs.Collector) {
	if c == nil {
		return
	}
	k.kobs = kernelObs{
		requests:  c.Span("request"),
		phases:    c.Span("request", "phase"),
		switches:  c.Counter("kernel.context_switches"),
		syscalls:  c.Counter("kernel.syscalls"),
		pollution: c.Counter("kernel.pollution_cycles"),
	}
}

// SetFrequencyScale scales this node's CPU clock (DVFS): effective
// frequency = nominal × f, so f < 1 slows every core of the machine.
// Safe to call mid-simulation — the machine advances all counters first
// and the kernel's rate-change listener reschedules pending execution
// breakpoints — which is exactly how fault injection actuates node
// slowdown windows.
func (k *Kernel) SetFrequencyScale(f float64) { k.mach.SetFrequencyScale(f) }

// SetPolicy replaces the scheduling policy. Must be called before the
// simulation starts (policies that depend on the sampling layer are built
// after the kernel and installed here).
func (k *Kernel) SetPolicy(p Policy) {
	if p == nil {
		p = RoundRobin{}
	}
	k.cfg.Policy = p
}

// AddWorkers creates n idle worker threads in the given tier.
func (k *Kernel) AddWorkers(tier, n int) {
	for len(k.idleWorkers) <= tier {
		k.idleWorkers = append(k.idleWorkers, nil)
		k.pendingStage = append(k.pendingStage, nil)
	}
	for i := 0; i < n; i++ {
		t := &Thread{ID: k.nextThreadID, Tier: tier, State: Idle, core: -1}
		t.wake = k.eng.NewTimer(func() {
			t.State = Runnable
			k.enqueue(t)
		})
		k.nextThreadID++
		k.idleWorkers[tier] = append(k.idleWorkers[tier], t)
	}
}

// OnRequestDone registers a completion callback (load drivers use this).
func (k *Kernel) OnRequestDone(fn func(*RequestRun)) {
	k.doneFns = append(k.doneFns, fn)
}

// ActiveRequests reports the number of in-flight requests.
func (k *Kernel) ActiveRequests() int { return k.active }

// CurrentRun returns the request executing on the core, or nil.
func (k *Kernel) CurrentRun(core int) *RequestRun {
	if c := k.cores[core].cur; c != nil {
		return c.Run
	}
	return nil
}

// Runqueue returns the core's queued (runnable, not running) threads.
// The returned slice must not be modified.
func (k *Kernel) Runqueue(core int) []*Thread { return k.cores[core].runq }

// Submit injects a request into the system; it will be picked up by a
// tier-0 worker (or queue for one).
func (k *Kernel) Submit(req *workload.Request) *RequestRun {
	if len(req.Phases) == 0 {
		panic("kernel: Submit of request with no phases")
	}
	run := &RequestRun{
		Req:         req,
		Submit:      k.eng.Now(),
		phaseStart:  k.eng.Now(),
		nextSyscall: math.Inf(1),
		entryPend:   req.Phases[0].EntrySyscall,
		phaseFresh:  true,
	}
	k.active++
	k.startStage(run, req.Phases[0].Tier)
	return run
}

// Sample reads the core's hardware counters in the given context, modelling
// the observer effect, and keeps execution breakpoints consistent with the
// sampling stall. This is the primitive the sampling layer builds on.
func (k *Kernel) Sample(core int, ctx metrics.SampleContext) metrics.Counters {
	snap, _ := k.mach.ReadCounters(core, ctx)
	k.rescheduleBreak(k.cores[core])
	return snap
}

// SetTimer schedules fn to run on the core in d nanoseconds, like a
// CPU-local APIC one-shot timer. The returned event can be cancelled.
func (k *Kernel) SetTimer(core int, d sim.Time, fn func()) *sim.Event {
	return k.eng.After(d, fn)
}

// NewTimer returns a reusable CPU-local one-shot timer (see sim.Timer).
// Long-lived periodic users (the sampling layer's per-core backup
// interrupts) should prefer this over SetTimer: re-arming allocates
// nothing, and each arm costs exactly one scheduling sequence number, the
// same as a SetTimer call.
func (k *Kernel) NewTimer(core int, fn func()) *sim.Timer {
	return k.eng.NewTimer(fn)
}

// CancelTimer cancels a timer event.
func (k *Kernel) CancelTimer(ev *sim.Event) { k.eng.Cancel(ev) }
