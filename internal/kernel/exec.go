package kernel

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/workload"
)

// startStage hands the request's current phase-group to a worker in the
// given tier: a thread already blocked waiting for this request, an idle
// worker, or the tier's pending queue.
func (k *Kernel) startStage(run *RequestRun, tier int) {
	// A waiter blocked at this resume point takes priority: it is the
	// upstream thread to which the downstream tier just "responded".
	for i, w := range run.waiters {
		if w.Tier == tier && w.resumePhase == run.phase {
			run.waiters = append(run.waiters[:i], run.waiters[i+1:]...)
			w.State = Runnable
			k.enqueue(w)
			return
		}
	}
	if tier >= len(k.idleWorkers) {
		panic(fmt.Sprintf("kernel: no worker pool for tier %d", tier))
	}
	if n := len(k.idleWorkers[tier]); n > 0 {
		w := k.idleWorkers[tier][n-1]
		k.idleWorkers[tier] = k.idleWorkers[tier][:n-1]
		w.Run = run
		w.State = Runnable
		k.enqueue(w)
		return
	}
	k.pendingStage[tier] = append(k.pendingStage[tier], run)
}

// enqueue places a runnable thread on its home core's runqueue, choosing
// the least-loaded core on first placement, and dispatches if the core is
// free.
func (k *Kernel) enqueue(t *Thread) {
	if t.core < 0 {
		best, bestLoad := 0, math.MaxInt
		for _, c := range k.cores {
			load := len(c.runq)
			if c.cur != nil {
				load++
			}
			if load < bestLoad {
				best, bestLoad = c.id, load
			}
		}
		t.core = best
	}
	c := k.cores[t.core]
	c.runq = append(c.runq, t)
	if c.cur == nil {
		k.dispatch(c)
	}
}

// dispatchIfFree dispatches only when the core is free; helpers that may
// have indirectly filled the core (worker recycling re-enqueuing onto it)
// use this form.
func (k *Kernel) dispatchIfFree(c *coreState) {
	if c.cur == nil {
		k.dispatch(c)
	}
}

// dispatch selects the next thread for a free core and switches it in.
func (k *Kernel) dispatch(c *coreState) {
	if c.cur != nil {
		panic("kernel: dispatch with a current thread")
	}
	if len(c.runq) == 0 {
		k.mach.SetActivity(c.id, nil)
		return
	}
	idx := k.cfg.Policy.Pick(k, c.id, c.runq, false)
	if idx < 0 || idx >= len(c.runq) {
		idx = 0
	}
	t := c.runq[idx]
	c.runq = append(c.runq[:idx], c.runq[idx+1:]...)
	k.switchIn(c, t)
}

// switchIn makes t current on the core: installs its activity, fires the
// request-context-switch-in sampling hook, charges switch costs, and arms
// the quantum and execution breakpoint.
func (k *Kernel) switchIn(c *coreState, t *Thread) {
	t.State = Running
	c.cur = t
	run := t.Run
	if !run.started {
		run.started = true
		run.Start = k.eng.Now()
	}
	k.Stats.ContextSwitches++

	ph := run.CurrentPhase()
	if ph == nil {
		panic("kernel: switchIn with completed request")
	}
	act := ph.Activity
	k.mach.SetActivity(c.id, &act)
	c.syncedAppIns = 0

	if k.hooks.SwitchIn != nil {
		k.hooks.SwitchIn(c.id, run)
	}
	if k.kobs.switches != nil {
		k.kobs.switches.Add(1)
	}
	// Direct switch cost plus cache re-warming land in the incoming
	// request's first period, as on real hardware.
	cost := k.cfg.CtxSwitchCost
	if k.cfg.PollutionOnSwitch {
		poll := k.mach.PollutionEvents(&act)
		if k.kobs.pollution != nil {
			k.kobs.pollution.Add(poll.Cycles)
		}
		cost = cost.Add(poll)
	}
	k.mach.Inject(c.id, cost)

	k.armQuantum(c)
	if run.phaseFresh {
		// First execution of this phase on any core: draw its system call
		// schedule and issue the stage-entry system call (phase entry call
		// or the socket receive of a tier hop).
		run.phaseFresh = false
		k.drawNextSyscall(run)
		k.beginStage(c)
	}
	k.rescheduleBreak(c)
}

// switchOut removes the current thread from the core (sampling the
// counters for request attribution first) and leaves the core free.
// The caller decides where the thread goes next.
func (k *Kernel) switchOut(c *coreState) *Thread {
	t := c.cur
	if t == nil {
		return nil
	}
	k.syncProgress(c)
	if k.hooks.SwitchOut != nil {
		k.hooks.SwitchOut(c.id, t.Run)
	}
	c.quantum.Stop()
	c.brk.Stop()
	c.cur = nil
	t.State = Runnable
	return t
}

// syncProgress folds the machine's application-instruction progress made
// since the last sync into the run's phase position.
func (k *Kernel) syncProgress(c *coreState) {
	t := c.cur
	if t == nil {
		return
	}
	run := t.Run
	done := k.mach.AppInstructions(c.id)
	delta := done - c.syncedAppIns
	if delta > 0 {
		c.syncedAppIns = done
		run.insInPhase += delta
		run.insIntoRun += delta
	}
}

// armQuantum schedules the policy's re-scheduling opportunity.
func (k *Kernel) armQuantum(c *coreState) {
	c.quantum.Arm(k.cfg.Policy.Quantum(k))
}

// quantumExpiry is a scheduling opportunity: the policy chooses among the
// current thread (kept at the head of the runqueue, so that resuming it
// costs nothing — Section 5.2) and the queued threads.
func (k *Kernel) quantumExpiry(c *coreState) {
	if c.cur == nil {
		return
	}
	if len(c.runq) == 0 {
		k.Stats.KeptCurrent++
		k.armQuantum(c)
		return
	}
	k.syncProgress(c)
	cands := append(c.cands[:0], c.cur)
	cands = append(cands, c.runq...)
	c.cands = cands // keep the grown buffer for the next pick
	idx := k.cfg.Policy.Pick(k, c.id, cands, true)
	if idx <= 0 || idx > len(c.runq) {
		// Keep the current request: no context switch, no pollution.
		k.Stats.KeptCurrent++
		k.armQuantum(c)
		return
	}
	k.Stats.Preemptions++
	chosen := cands[idx]
	prev := k.switchOut(c)
	c.runq = append(c.runq, prev) // round-robin: to the tail
	for i, t := range c.runq {
		if t == chosen {
			c.runq = append(c.runq[:i], c.runq[i+1:]...)
			break
		}
	}
	k.switchIn(c, chosen)
}

// rescheduleBreak recomputes the core's next execution breakpoint (phase
// end or next system call) from current machine rates and stalls.
func (k *Kernel) rescheduleBreak(c *coreState) {
	t := c.cur
	if t == nil {
		c.brk.Stop()
		return
	}
	run := t.Run
	ph := run.CurrentPhase()
	if ph == nil {
		c.brk.Stop()
		return
	}
	k.syncProgress(c)
	target := ph.Instructions
	if run.nextSyscall < target {
		target = run.nextSyscall
	}
	machTarget := c.syncedAppIns + (target - run.insInPhase)
	d, ok := k.mach.TimeToReach(c.id, machTarget)
	if !ok {
		// Already past the target (or the activity was just installed and
		// the target is zero-length): handle immediately.
		d = 0
	}
	c.brk.Arm(d)
}

// onRateChange keeps breakpoints consistent when contention changes a
// co-runner's execution rate.
func (k *Kernel) onRateChange(core int) {
	c := k.cores[core]
	if c.cur != nil && c.brk.Pending() {
		k.rescheduleBreak(c)
	}
}

// breakpoint handles the current thread reaching its next behavioral event.
func (k *Kernel) breakpoint(c *coreState) {
	t := c.cur
	if t == nil {
		return
	}
	run := t.Run
	k.syncProgress(c)
	ph := run.CurrentPhase()
	if ph == nil {
		return
	}
	const eps = 1.5 // instruction rounding slack from time quantization
	if run.nextSyscall < ph.Instructions && run.insInPhase+eps >= run.nextSyscall {
		// Draw the position of the following system call before handling
		// this one, so that blocking here leaves a valid schedule behind.
		k.drawNextSyscall(run)
		k.handleSyscall(c, nextSyscallName(run, ph), ph.BlockProb, ph.BlockMeanNs)
		return
	}
	if run.insInPhase+eps >= ph.Instructions {
		k.advancePhase(c)
		return
	}
	// Spurious wakeup (e.g., from rounding): re-arm.
	k.rescheduleBreak(c)
}

// nextSyscallName cycles through the phase's within-phase system call names.
func nextSyscallName(run *RequestRun, ph *workload.Phase) string {
	if len(ph.Syscalls) == 0 {
		return "syscall"
	}
	name := ph.Syscalls[run.syscallIdx%len(ph.Syscalls)]
	run.syscallIdx++
	return name
}

// drawNextSyscall samples the phase position of the next within-phase
// system call from the phase's exponential gap distribution.
func (k *Kernel) drawNextSyscall(run *RequestRun) {
	ph := run.CurrentPhase()
	if ph == nil || ph.SyscallGap <= 0 {
		run.nextSyscall = math.Inf(1)
		return
	}
	gap := run.Req.RNG.Exp(ph.SyscallGap)
	if gap < 500 {
		gap = 500 // syscalls cannot be arbitrarily dense
	}
	run.nextSyscall = run.insInPhase + gap
}

// handleSyscall models one system call: the sampling hook at kernel
// entrance, the kernel work, and a possible I/O block.
func (k *Kernel) handleSyscall(c *coreState, name string, blockProb, blockMeanNs float64) {
	t := c.cur
	run := t.Run
	k.Stats.Syscalls++
	if k.hooks.Syscall != nil {
		k.hooks.Syscall(c.id, run, name)
	}
	if k.kobs.syscalls != nil {
		k.kobs.syscalls.Add(1)
	}
	k.mach.Inject(c.id, k.cfg.SyscallCost)
	if blockProb > 0 && run.Req.RNG.Bool(blockProb) {
		dur := run.Req.RNG.Exp(blockMeanNs)
		if dur < float64(sim.Microsecond) {
			dur = float64(sim.Microsecond)
		}
		k.blockForIO(c, sim.Time(dur))
		return
	}
	k.rescheduleBreak(c)
}

// blockForIO deschedules the current thread for an I/O wait and wakes it
// after the given duration.
func (k *Kernel) blockForIO(c *coreState, d sim.Time) {
	t := k.switchOut(c)
	t.State = Blocked
	t.wake.Arm(d)
	k.dispatchIfFree(c)
}

// advancePhase moves the run to its next phase, handling phase-entry
// system calls, tier propagation via socket operations, and completion.
func (k *Kernel) advancePhase(c *coreState) {
	t := c.cur
	run := t.Run
	if k.kobs.phases != nil {
		// The completed phase's span: from when the phase began (request
		// submission for the first) to now. Phase spans tile the request
		// span exactly.
		k.kobs.phases.Observe(k.eng.Now() - run.phaseStart)
	}
	run.phaseStart = k.eng.Now()
	run.phase++
	run.insInPhase = 0
	run.syscallIdx = 0

	next := run.CurrentPhase()
	if next == nil {
		k.finishRequest(c)
		return
	}

	if next.Tier != t.Tier {
		// The request propagates to another process through socket
		// operations: a send on this side, a receive on the destination.
		// The paper's request context tracking follows exactly this hop.
		k.handleSyscall(c, "sendto", 0, 0)
		run.entryPend = "recvfrom"
		if next.EntrySyscall != "" {
			run.entryPend = next.EntrySyscall
		}
		run.phaseFresh = true
		// Does this thread resume later, when the request returns to its
		// tier?
		resume := -1
		for i := run.phase; i < len(run.Req.Phases); i++ {
			if run.Req.Phases[i].Tier == t.Tier {
				resume = i
				break
			}
		}
		prev := k.switchOut(c)
		if resume >= 0 {
			prev.State = Blocked
			prev.resumePhase = resume
			run.waiters = append(run.waiters, prev)
		} else {
			k.releaseWorker(prev)
		}
		k.startStage(run, next.Tier)
		k.dispatchIfFree(c)
		return
	}

	// Same tier: install the next phase's activity in place.
	act := next.Activity
	k.mach.SetActivity(c.id, &act)
	c.syncedAppIns = 0
	k.drawNextSyscall(run)
	if next.EntrySyscall != "" {
		k.handleSyscall(c, next.EntrySyscall, next.BlockProb, next.BlockMeanNs)
		if c.cur != t {
			return // blocked at phase entry
		}
	}
	k.rescheduleBreak(c)
}

// beginStage is called when a thread switches in with a pending stage-entry
// system call (socket receive or phase-entry call after a tier hop).
func (k *Kernel) beginStage(c *coreState) {
	run := c.cur.Run
	if run.entryPend == "" {
		return
	}
	name := run.entryPend
	run.entryPend = ""
	k.handleSyscall(c, name, 0, 0)
}

// finishRequest completes the current request and recycles the worker.
func (k *Kernel) finishRequest(c *coreState) {
	t := k.switchOut(c)
	run := t.Run
	run.Done = true
	run.End = k.eng.Now()
	k.active--
	// Defensive: wake any stray waiters (well-formed phase programs leave
	// none, since the final phase runs on the original tier-0 thread).
	for _, w := range run.waiters {
		k.releaseWorker(w)
	}
	run.waiters = nil
	k.releaseWorker(t)
	if k.kobs.requests != nil {
		k.kobs.requests.Observe(run.End - run.Submit)
	}
	if k.hooks.RequestDone != nil {
		k.hooks.RequestDone(run)
	}
	for _, fn := range k.doneFns {
		fn(run)
	}
	k.dispatchIfFree(c)
}

// releaseWorker returns a thread to its tier's idle pool, or hands it the
// next pending stage.
func (k *Kernel) releaseWorker(t *Thread) {
	t.Run = nil
	t.State = Idle
	tier := t.Tier
	if n := len(k.pendingStage[tier]); n > 0 {
		run := k.pendingStage[tier][0]
		k.pendingStage[tier] = k.pendingStage[tier][1:]
		t.Run = run
		t.State = Runnable
		k.enqueue(t)
		return
	}
	k.idleWorkers[tier] = append(k.idleWorkers[tier], t)
}
