package kernel

import (
	"repro/internal/sim"
	"repro/internal/workload"
)

// LoadConfig drives a closed-loop client population against one
// application, the way the paper's benchmark harnesses (SPECweb99 clients,
// TPC terminal emulators, RUBiS session emulators) do.
type LoadConfig struct {
	// App generates the requests.
	App workload.App
	// Concurrency is the number of closed-loop client sessions. 1
	// reproduces the paper's serial (1-core) executions; the 4-core
	// experiments use enough sessions to keep all cores busy.
	Concurrency int
	// Requests is the total number of requests to complete.
	Requests int
	// ThinkMean is the mean exponential client think time between a
	// response and the next request (0 for a saturating load).
	ThinkMean sim.Time
	// WorkersPerTier sizes each tier's process pool; 0 means Concurrency.
	WorkersPerTier int
	// Seed drives workload generation and think times.
	Seed int64
}

// Driver runs a closed-loop load against a kernel.
type Driver struct {
	cfg       LoadConfig
	k         *Kernel
	gen       *sim.RNG
	think     *sim.RNG
	submitted int
	completed int
	runs      []*RequestRun
	stopped   bool
}

// NewDriver attaches a closed-loop driver to the kernel, creating the
// application's worker pools. Call Start before running the engine.
func NewDriver(k *Kernel, cfg LoadConfig) *Driver {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	workers := cfg.WorkersPerTier
	if workers <= 0 {
		workers = cfg.Concurrency
	}
	for tier := 0; tier < cfg.App.Tiers(); tier++ {
		k.AddWorkers(tier, workers)
	}
	d := &Driver{
		cfg:   cfg,
		k:     k,
		gen:   sim.ForkLabeled(cfg.Seed, "driver-gen-"+cfg.App.Name()),
		think: sim.ForkLabeled(cfg.Seed, "driver-think-"+cfg.App.Name()),
	}
	k.OnRequestDone(d.onDone)
	return d
}

// Start launches the client sessions. The engine's event loop then carries
// the run; the driver stops the engine when the configured number of
// requests has completed.
func (d *Driver) Start() {
	sessions := d.cfg.Concurrency
	if sessions > d.cfg.Requests {
		sessions = d.cfg.Requests
	}
	for i := 0; i < sessions; i++ {
		d.submitNext()
	}
}

// Runs returns the completed request executions, in completion order.
func (d *Driver) Runs() []*RequestRun { return d.runs }

// Completed reports how many requests have finished.
func (d *Driver) Completed() int { return d.completed }

func (d *Driver) submitNext() {
	if d.submitted >= d.cfg.Requests {
		return
	}
	d.submitted++
	req := d.cfg.App.NewRequest(uint64(d.submitted), d.gen)
	d.k.Submit(req)
}

func (d *Driver) onDone(run *RequestRun) {
	d.completed++
	d.runs = append(d.runs, run)
	if d.completed >= d.cfg.Requests {
		if !d.stopped {
			d.stopped = true
			d.k.Engine().Stop()
		}
		return
	}
	if d.cfg.ThinkMean > 0 {
		delay := sim.Time(d.think.Exp(float64(d.cfg.ThinkMean)))
		d.k.Engine().After(delay, d.submitNext)
		return
	}
	d.submitNext()
}
