package kernel

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// runLoad executes a closed-loop load to completion and returns the kernel
// and driver.
func runLoad(t *testing.T, app workload.App, concurrency, requests int, cfg Config) (*Kernel, *Driver) {
	t.Helper()
	eng := sim.NewEngine()
	k := New(eng, cfg)
	d := NewDriver(k, LoadConfig{
		App:         app,
		Concurrency: concurrency,
		Requests:    requests,
		Seed:        42,
	})
	d.Start()
	eng.RunAll()
	if d.Completed() != requests {
		t.Fatalf("completed %d/%d requests", d.Completed(), requests)
	}
	return k, d
}

func TestSerialWebLoadCompletes(t *testing.T) {
	k, d := runLoad(t, workload.NewWebServer(), 1, 20, DefaultConfig())
	if k.ActiveRequests() != 0 {
		t.Fatalf("active requests after drain: %d", k.ActiveRequests())
	}
	for _, run := range d.Runs() {
		if !run.Done {
			t.Fatal("run not marked done")
		}
		if run.End <= run.Start || run.Start < run.Submit {
			t.Fatalf("bad lifecycle times: submit=%v start=%v end=%v",
				run.Submit, run.Start, run.End)
		}
		// The request should have executed all of its instructions.
		want := run.Req.TotalInstructions()
		if math.Abs(run.InstructionsDone()-want) > 0.01*want+100 {
			t.Fatalf("instructions done %.0f, want %.0f", run.InstructionsDone(), want)
		}
	}
}

func TestConcurrentLoadCompletes(t *testing.T) {
	k, _ := runLoad(t, workload.NewWebServer(), 8, 100, DefaultConfig())
	if k.Stats.ContextSwitches == 0 {
		t.Fatal("no context switches in a concurrent load")
	}
	if k.Stats.Syscalls == 0 {
		t.Fatal("no syscalls recorded")
	}
}

func TestMultiTierRUBiS(t *testing.T) {
	var hops int
	eng := sim.NewEngine()
	k := New(eng, DefaultConfig())
	k.SetHooks(Hooks{
		Syscall: func(core int, run *RequestRun, name string) {
			if name == "sendto" {
				hops++
			}
		},
	})
	d := NewDriver(k, LoadConfig{App: workload.NewRUBiS(), Concurrency: 4, Requests: 30, Seed: 7})
	d.Start()
	eng.RunAll()
	if d.Completed() != 30 {
		t.Fatalf("completed %d/30", d.Completed())
	}
	if hops == 0 {
		t.Fatal("no tier hops (sendto syscalls) in RUBiS")
	}
	// All requests finished with full instruction counts despite hopping.
	for _, run := range d.Runs() {
		want := run.Req.TotalInstructions()
		if math.Abs(run.InstructionsDone()-want) > 0.01*want+100 {
			t.Fatalf("RUBiS %s: done %.0f of %.0f", run.Req, run.InstructionsDone(), want)
		}
	}
}

func TestHooksFireInOrder(t *testing.T) {
	eng := sim.NewEngine()
	k := New(eng, DefaultConfig())
	var events []string
	var switchIns, switchOuts int
	k.SetHooks(Hooks{
		SwitchIn:  func(core int, run *RequestRun) { switchIns++; events = append(events, "in") },
		SwitchOut: func(core int, run *RequestRun) { switchOuts++; events = append(events, "out") },
		Syscall:   func(core int, run *RequestRun, name string) { events = append(events, "sys:"+name) },
		RequestDone: func(run *RequestRun) {
			events = append(events, "done")
		},
	})
	d := NewDriver(k, LoadConfig{App: workload.NewWebServer(), Concurrency: 1, Requests: 2, Seed: 1})
	d.Start()
	eng.RunAll()
	if switchIns == 0 || switchOuts == 0 {
		t.Fatal("switch hooks did not fire")
	}
	if switchIns != switchOuts {
		t.Fatalf("unbalanced switches: %d in, %d out", switchIns, switchOuts)
	}
	// First event must be a switch-in; a done must be preceded by an out.
	if events[0] != "in" {
		t.Fatalf("first event = %q", events[0])
	}
	for i, e := range events {
		if e == "done" && events[i-1] != "out" {
			t.Fatalf("done not preceded by switch-out: %v", events[i-1])
		}
	}
}

func TestWebSyscallSequence(t *testing.T) {
	eng := sim.NewEngine()
	k := New(eng, DefaultConfig())
	var names []string
	k.SetHooks(Hooks{
		Syscall: func(core int, run *RequestRun, name string) { names = append(names, name) },
	})
	d := NewDriver(k, LoadConfig{App: workload.NewWebServer(), Concurrency: 1, Requests: 1, Seed: 3})
	d.Start()
	eng.RunAll()
	// The web request's characteristic sequence must appear in order.
	want := []string{"poll", "read", "stat", "open", "lseek", "writev", "write", "shutdown"}
	wi := 0
	for _, n := range names {
		if wi < len(want) && n == want[wi] {
			wi++
		}
	}
	if wi != len(want) {
		t.Fatalf("syscall sequence %v missing expected subsequence %v (matched %d)",
			names, want, wi)
	}
}

func TestSerialExecutionUsesOneRequestAtATime(t *testing.T) {
	eng := sim.NewEngine()
	k := New(eng, DefaultConfig())
	maxActive := 0
	k.SetHooks(Hooks{
		SwitchIn: func(core int, run *RequestRun) {
			active := 0
			for c := 0; c < k.Machine().NumCores(); c++ {
				if k.CurrentRun(c) != nil {
					active++
				}
			}
			if active > maxActive {
				maxActive = active
			}
		},
	})
	d := NewDriver(k, LoadConfig{App: workload.NewTPCC(), Concurrency: 1, Requests: 10, Seed: 5})
	d.Start()
	eng.RunAll()
	if maxActive > 1 {
		t.Fatalf("serial load ran %d requests concurrently", maxActive)
	}
}

func TestConcurrentLoadUsesMultipleCores(t *testing.T) {
	eng := sim.NewEngine()
	k := New(eng, DefaultConfig())
	coresSeen := map[int]bool{}
	k.SetHooks(Hooks{
		SwitchIn: func(core int, run *RequestRun) { coresSeen[core] = true },
	})
	d := NewDriver(k, LoadConfig{App: workload.NewTPCC(), Concurrency: 8, Requests: 60, Seed: 5})
	d.Start()
	eng.RunAll()
	if len(coresSeen) < 4 {
		t.Fatalf("concurrent load used only cores %v", coresSeen)
	}
}

func TestRequestCPUTimePlausible(t *testing.T) {
	// A serial web request at ~150k instructions and CPI ~2 on 3 GHz
	// should take on the order of 100 µs of CPU time.
	_, d := runLoad(t, workload.NewWebServer(), 1, 10, DefaultConfig())
	for _, run := range d.Runs() {
		cpu := run.End - run.Start
		if cpu < 10*sim.Microsecond || cpu > 10*sim.Millisecond {
			t.Fatalf("web request wall time %v implausible", cpu)
		}
	}
}

func TestSampleReadsAndPerturbs(t *testing.T) {
	eng := sim.NewEngine()
	k := New(eng, DefaultConfig())
	d := NewDriver(k, LoadConfig{App: workload.NewTPCH(), Concurrency: 1, Requests: 1, Seed: 2})
	var samples []metrics.Counters
	done := false
	var tick func()
	tick = func() {
		if done {
			return
		}
		if k.CurrentRun(0) != nil {
			samples = append(samples, k.Sample(0, metrics.CtxInterrupt))
		}
		k.SetTimer(0, sim.Millisecond, tick)
	}
	k.OnRequestDone(func(*RequestRun) { done = true })
	k.SetTimer(0, sim.Millisecond, tick)
	d.Start()
	eng.RunAll()
	if len(samples) < 10 {
		t.Fatalf("expected many periodic samples, got %d", len(samples))
	}
	// Counters are monotone.
	for i := 1; i < len(samples); i++ {
		if samples[i].Cycles < samples[i-1].Cycles {
			t.Fatal("counter went backwards")
		}
	}
}

func TestQuantumPreemption(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Quantum = 2 * sim.Millisecond // short quantum forces preemption
	eng := sim.NewEngine()
	k := New(eng, cfg)
	// Two long TPCH requests pinned by concurrency to interleave.
	d := NewDriver(k, LoadConfig{App: workload.NewTPCH(), Concurrency: 6, Requests: 6, Seed: 9})
	d.Start()
	eng.RunAll()
	if k.Stats.Preemptions == 0 {
		t.Fatal("short quantum produced no preemptions")
	}
	if d.Completed() != 6 {
		t.Fatalf("completed %d/6", d.Completed())
	}
}

func TestDeterministicRuns(t *testing.T) {
	sig := func() (uint64, sim.Time) {
		eng := sim.NewEngine()
		k := New(eng, DefaultConfig())
		d := NewDriver(k, LoadConfig{App: workload.NewTPCC(), Concurrency: 4, Requests: 30, Seed: 11})
		d.Start()
		eng.RunAll()
		var last sim.Time
		for _, r := range d.Runs() {
			if r.End > last {
				last = r.End
			}
		}
		return k.Stats.Syscalls, last
	}
	s1, t1 := sig()
	s2, t2 := sig()
	if s1 != s2 || t1 != t2 {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", s1, t1, s2, t2)
	}
}

func TestThinkTimeDelaysSubmission(t *testing.T) {
	eng := sim.NewEngine()
	k := New(eng, DefaultConfig())
	d := NewDriver(k, LoadConfig{
		App: workload.NewWebServer(), Concurrency: 1, Requests: 5,
		ThinkMean: 5 * sim.Millisecond, Seed: 13,
	})
	d.Start()
	eng.RunAll()
	if d.Completed() != 5 {
		t.Fatalf("completed %d/5", d.Completed())
	}
	// Total wall time must be at least a few think times.
	if eng.Now() < 5*sim.Millisecond {
		t.Fatalf("run finished too fast for think times: %v", eng.Now())
	}
}

func TestSubmitEmptyRequestPanics(t *testing.T) {
	eng := sim.NewEngine()
	k := New(eng, DefaultConfig())
	k.AddWorkers(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Submit of empty request did not panic")
		}
	}()
	k.Submit(&workload.Request{ID: 1, RNG: sim.NewRNG(1)})
}

func TestThreadStateString(t *testing.T) {
	for s, want := range map[ThreadState]string{
		Idle: "idle", Runnable: "runnable", Running: "running", Blocked: "blocked",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}
