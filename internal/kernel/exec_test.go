package kernel

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// simpleRequest builds a single-tier request with the given phases.
func simpleRequest(id uint64, phases ...workload.Phase) *workload.Request {
	return &workload.Request{
		ID: id, App: "test", Type: "t",
		Phases: phases,
		RNG:    sim.NewRNG(int64(id)),
	}
}

func cpuPhase(name string, ins float64) workload.Phase {
	return workload.Phase{
		Name: name, Instructions: ins,
		Activity: machine.Activity{BaseCPI: 1, RefsPerIns: 0.005, SoloMissRatio: 0.1, WorkingSetBytes: 256 << 10},
	}
}

func TestWorkerPoolExhaustionQueuesStages(t *testing.T) {
	eng := sim.NewEngine()
	k := New(eng, DefaultConfig())
	k.AddWorkers(0, 1) // one worker, three requests
	var done int
	k.OnRequestDone(func(*RequestRun) { done++ })
	for i := uint64(1); i <= 3; i++ {
		k.Submit(simpleRequest(i, cpuPhase("p", 50_000)))
	}
	if k.ActiveRequests() != 3 {
		t.Fatalf("active = %d", k.ActiveRequests())
	}
	eng.RunAll()
	if done != 3 {
		t.Fatalf("completed %d/3 with a single worker", done)
	}
	if k.ActiveRequests() != 0 {
		t.Fatalf("active after drain = %d", k.ActiveRequests())
	}
}

func TestBlockedIOResumesAndCompletes(t *testing.T) {
	eng := sim.NewEngine()
	k := New(eng, DefaultConfig())
	k.AddWorkers(0, 2)
	ph := cpuPhase("io", 200_000)
	ph.SyscallGap = 20_000
	ph.Syscalls = []string{"read"}
	ph.BlockProb = 1.0 // every syscall blocks
	ph.BlockMeanNs = float64(50 * sim.Microsecond)
	run := k.Submit(simpleRequest(1, ph))
	eng.RunAll()
	if !run.Done {
		t.Fatal("blocking request did not complete")
	}
	want := 200_000.0
	if math.Abs(run.InstructionsDone()-want) > 0.01*want+10 {
		t.Fatalf("instructions %v, want %v", run.InstructionsDone(), want)
	}
	// The run took much longer than pure execution due to blocking.
	if run.End-run.Start < 300*sim.Microsecond {
		t.Fatalf("blocking run finished suspiciously fast: %v", run.End-run.Start)
	}
}

func TestThreadAffinityNoMigration(t *testing.T) {
	eng := sim.NewEngine()
	k := New(eng, DefaultConfig())
	coresByThread := map[*RequestRun]map[int]bool{}
	k.SetHooks(Hooks{
		SwitchIn: func(core int, run *RequestRun) {
			if coresByThread[run] == nil {
				coresByThread[run] = map[int]bool{}
			}
			coresByThread[run][core] = true
		},
	})
	d := NewDriver(k, LoadConfig{App: workload.NewTPCC(), Concurrency: 8, Requests: 40, Seed: 3})
	d.Start()
	eng.RunAll()
	// Single-tier requests are pinned to one worker, which never migrates:
	// each run executes on exactly one core.
	for run, cores := range coresByThread {
		if len(cores) != 1 {
			t.Fatalf("request %v ran on %d cores; threads must not migrate", run.Req, len(cores))
		}
	}
}

func TestPolicyPickOutOfRangeFallsBack(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Policy = badPolicy{}
	k := New(eng, cfg)
	k.AddWorkers(0, 2)
	var done int
	k.OnRequestDone(func(*RequestRun) { done++ })
	for i := uint64(1); i <= 4; i++ {
		k.Submit(simpleRequest(i, cpuPhase("p", 30_000)))
	}
	eng.RunAll()
	if done != 4 {
		t.Fatalf("completed %d/4 under an out-of-range policy", done)
	}
}

// badPolicy returns indices far outside the candidate slice.
type badPolicy struct{}

func (badPolicy) Pick(*Kernel, int, []*Thread, bool) int { return 999 }
func (badPolicy) Quantum(k *Kernel) sim.Time             { return 10 * sim.Millisecond }

func TestSetPolicyNilRestoresDefault(t *testing.T) {
	eng := sim.NewEngine()
	k := New(eng, DefaultConfig())
	k.SetPolicy(nil)
	k.AddWorkers(0, 1)
	run := k.Submit(simpleRequest(1, cpuPhase("p", 10_000)))
	eng.RunAll()
	if !run.Done {
		t.Fatal("nil policy should fall back to round-robin")
	}
}

func TestCurrentRunAndRunqueueViews(t *testing.T) {
	eng := sim.NewEngine()
	k := New(eng, DefaultConfig())
	k.AddWorkers(0, 8)
	for i := uint64(1); i <= 8; i++ {
		k.Submit(simpleRequest(i, cpuPhase("p", 5_000_000)))
	}
	// Mid-run: every core busy, queues hold the surplus.
	eng.Run(100 * sim.Microsecond)
	busy, queued := 0, 0
	for c := 0; c < k.Machine().NumCores(); c++ {
		if k.CurrentRun(c) != nil {
			busy++
		}
		queued += len(k.Runqueue(c))
	}
	if busy != 4 {
		t.Fatalf("busy cores = %d, want 4", busy)
	}
	if queued != 4 {
		t.Fatalf("queued threads = %d, want 4", queued)
	}
	eng.RunAll()
}

func TestZeroQuantumDefaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Quantum = 0
	eng := sim.NewEngine()
	k := New(eng, cfg)
	if k.Config().Quantum <= 0 {
		t.Fatal("zero quantum should default")
	}
}

func TestMultiPhaseTierHopStatsBalance(t *testing.T) {
	// Multi-tier request: the request hops 0→1→0; hooks must show matched
	// switch in/out counts and the sendto/recvfrom pair.
	eng := sim.NewEngine()
	k := New(eng, DefaultConfig())
	k.AddWorkers(0, 1)
	k.AddWorkers(1, 1)
	var ins, outs int
	var sends, recvs int
	k.SetHooks(Hooks{
		SwitchIn:  func(int, *RequestRun) { ins++ },
		SwitchOut: func(int, *RequestRun) { outs++ },
		Syscall: func(_ int, _ *RequestRun, name string) {
			switch name {
			case "sendto":
				sends++
			case "recvfrom":
				recvs++
			}
		},
	})
	p0 := cpuPhase("web", 50_000)
	p1 := cpuPhase("db", 80_000)
	p1.Tier = 1
	p2 := cpuPhase("render", 30_000)
	run := k.Submit(simpleRequest(1, p0, p1, p2))
	eng.RunAll()
	if !run.Done {
		t.Fatal("tier-hop request did not complete")
	}
	if ins != outs {
		t.Fatalf("unbalanced switches: %d in, %d out", ins, outs)
	}
	if sends != 2 || recvs != 2 {
		t.Fatalf("socket ops = %d sendto / %d recvfrom, want 2/2", sends, recvs)
	}
	want := 160_000.0
	if math.Abs(run.InstructionsDone()-want) > 0.01*want+10 {
		t.Fatalf("instructions %v, want %v", run.InstructionsDone(), want)
	}
}

func TestEntrySyscallBlockingAtPhaseBoundary(t *testing.T) {
	// A phase whose entry syscall can block must still execute fully.
	eng := sim.NewEngine()
	k := New(eng, DefaultConfig())
	k.AddWorkers(0, 1)
	a := cpuPhase("a", 40_000)
	b := cpuPhase("b", 40_000)
	b.EntrySyscall = "fsync"
	b.BlockProb = 1.0
	b.BlockMeanNs = float64(100 * sim.Microsecond)
	run := k.Submit(simpleRequest(1, a, b))
	eng.RunAll()
	if !run.Done {
		t.Fatal("request with blocking entry syscall did not complete")
	}
	want := 80_000.0
	if math.Abs(run.InstructionsDone()-want) > 0.01*want+10 {
		t.Fatalf("instructions %v, want %v", run.InstructionsDone(), want)
	}
}
