package distributed

import (
	"testing"

	"repro/internal/sampling"
	"repro/internal/sim"
	"repro/internal/workload"
)

func clusterConfig(nodes int, placement []int) Config {
	return Config{
		Nodes:     nodes,
		Sampling:  sampling.Config{Mode: sampling.CtxSwitchOnly, Compensate: true},
		Placement: placement,
		Network:   NetworkConfig{HopLatency: 200 * sim.Microsecond},
		Seed:      7,
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(Config{}); err == nil {
		t.Fatal("zero nodes should error")
	}
	if _, err := NewCluster(clusterConfig(2, []int{0, 5})); err == nil {
		t.Fatal("out-of-range placement should error")
	}
	c, err := NewCluster(clusterConfig(2, []int{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes()) != 2 {
		t.Fatalf("nodes = %d", len(c.Nodes()))
	}
	if c.NodeFor(0) != 0 || c.NodeFor(1) != 1 || c.NodeFor(9) != 0 {
		t.Fatal("NodeFor placement mapping wrong")
	}
}

func TestSplitSegments(t *testing.T) {
	req := &workload.Request{Phases: []workload.Phase{
		{Name: "a", Tier: 0, Instructions: 1},
		{Name: "b", Tier: 0, Instructions: 1},
		{Name: "c", Tier: 1, Instructions: 1},
		{Name: "d", Tier: 2, Instructions: 1},
		{Name: "e", Tier: 1, Instructions: 1},
		{Name: "f", Tier: 0, Instructions: 1},
	}}
	segs := splitSegments(req)
	wantTiers := []int{0, 1, 2, 1, 0}
	if len(segs) != len(wantTiers) {
		t.Fatalf("segments = %d, want %d", len(segs), len(wantTiers))
	}
	for i, s := range segs {
		if s.tier != wantTiers[i] {
			t.Fatalf("segment %d tier = %d, want %d", i, s.tier, wantTiers[i])
		}
		for _, ph := range s.phases {
			if ph.Tier != 0 {
				t.Fatal("segment phases must be rebased to the node-local tier")
			}
		}
	}
	if len(segs[0].phases) != 2 {
		t.Fatalf("first segment phases = %d, want 2", len(segs[0].phases))
	}
}

func TestDistributedRUBiSAcrossThreeNodes(t *testing.T) {
	c, err := NewCluster(clusterConfig(3, []int{0, 1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	traces := NewDriver(c, workload.NewRUBiS(), 4, 25, 3).Run()
	if len(traces) != 25 {
		t.Fatalf("completed %d/25", len(traces))
	}
	sawThreeNodes := false
	for _, tr := range traces {
		if tr.End <= tr.Start {
			t.Fatal("bad trace boundaries")
		}
		if tr.CPUTime() <= 0 {
			t.Fatal("no CPU time accumulated")
		}
		perNode := tr.PerNodeCPU()
		if len(perNode) == 3 {
			sawThreeNodes = true
		}
		// Requests crossing machines must have paid network time, and
		// latency covers CPU plus network.
		if len(perNode) > 1 {
			if tr.NetworkTime() <= 0 {
				t.Fatal("multi-node request with no network time")
			}
			if tr.Latency() < tr.NetworkTime() {
				t.Fatal("latency below network time")
			}
		}
	}
	if !sawThreeNodes {
		t.Fatal("no request spanned all three nodes")
	}
}

func TestColocationAvoidsNetwork(t *testing.T) {
	c, err := NewCluster(clusterConfig(3, []int{0, 0, 0})) // all tiers on node0
	if err != nil {
		t.Fatal(err)
	}
	traces := NewDriver(c, workload.NewRUBiS(), 4, 15, 3).Run()
	for _, tr := range traces {
		if tr.NetworkTime() != 0 {
			t.Fatalf("co-located placement paid network time %v", tr.NetworkTime())
		}
		if len(tr.PerNodeCPU()) != 1 {
			t.Fatal("co-located placement used multiple nodes")
		}
	}
}

func TestInterMachineVariationsExposed(t *testing.T) {
	// The distributed trace separates per-node execution: the DB node's
	// segments should show the DB tier's hotter characteristics.
	c, err := NewCluster(clusterConfig(3, []int{0, 1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	traces := NewDriver(c, workload.NewRUBiS(), 4, 25, 3).Run()
	var webCPU, dbCPU float64
	for _, tr := range traces {
		for _, seg := range tr.Segments {
			switch seg.Tier {
			case 0:
				webCPU += float64(seg.Trace.CPUTime())
			case 2:
				dbCPU += float64(seg.Trace.CPUTime())
			}
		}
	}
	if webCPU == 0 || dbCPU == 0 {
		t.Fatal("missing per-tier CPU accounting")
	}
}

func TestEvaluatePlacementsRanksColocationFirst(t *testing.T) {
	// With an expensive network, co-locating all tiers must beat full
	// spreading on mean latency; the advisor should rank it first.
	base := clusterConfig(3, nil)
	base.Network.HopLatency = 2 * sim.Millisecond
	results, err := EvaluatePlacements(workload.NewRUBiS(), base,
		[][]int{{0, 1, 2}, {0, 0, 0}}, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	best := results[0]
	if !(best.Placement[0] == 0 && best.Placement[1] == 0 && best.Placement[2] == 0) {
		t.Fatalf("expected co-location to win under expensive network, got %v", best.Placement)
	}
	if best.MeanNetworkNs != 0 {
		t.Fatalf("co-location network time = %v", best.MeanNetworkNs)
	}
	spread := results[1]
	if spread.MeanLatencyNs <= best.MeanLatencyNs {
		t.Fatal("ranking not by mean latency")
	}
	if best.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestDeterministicDistributedRuns(t *testing.T) {
	run := func() sim.Time {
		c, err := NewCluster(clusterConfig(3, []int{0, 1, 2}))
		if err != nil {
			t.Fatal(err)
		}
		traces := NewDriver(c, workload.NewRUBiS(), 4, 15, 9).Run()
		var last sim.Time
		for _, tr := range traces {
			if tr.End > last {
				last = tr.End
			}
		}
		return last
	}
	if run() != run() {
		t.Fatal("distributed runs not deterministic")
	}
}

func TestDistributedInstructionConservation(t *testing.T) {
	// The stitched segments must execute the whole request: summed segment
	// instructions match the generated request totals.
	c, err := NewCluster(clusterConfig(3, []int{0, 1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	app := workload.NewRUBiS()
	gen := sim.ForkLabeled(3, "distributed-gen-"+app.Name()) // driver's stream
	want := map[uint64]float64{}
	for i := 1; i <= 10; i++ {
		want[uint64(i)] = app.NewRequest(uint64(i), gen).TotalInstructions()
	}
	// Fresh generator state inside the driver reproduces the same requests.
	traces := NewDriver(c, app, 2, 10, 3).Run()
	for _, tr := range traces {
		var got float64
		for _, seg := range tr.Segments {
			got += float64(seg.Trace.Instructions())
		}
		w := want[tr.ID]
		// Traced instructions include injected kernel work, so >= app total
		// within a modest envelope.
		if got < w*0.95 || got > w*1.3 {
			t.Fatalf("request %d: traced %.0f instructions, generated %.0f", tr.ID, got, w)
		}
	}
}
