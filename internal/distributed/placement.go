package distributed

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Driver runs a closed-loop load against a cluster.
type Driver struct {
	c         *Cluster
	app       workload.App
	gen       *sim.RNG
	requests  int
	submitted int
	traces    []*Trace
}

// NewDriver attaches a closed-loop driver with the given concurrency.
func NewDriver(c *Cluster, app workload.App, concurrency, requests int, seed int64) *Driver {
	d := &Driver{
		c:        c,
		app:      app,
		gen:      sim.ForkLabeled(seed, "distributed-gen-"+app.Name()),
		requests: requests,
	}
	c.OnDone(d.onDone)
	if concurrency > requests {
		concurrency = requests
	}
	for i := 0; i < concurrency; i++ {
		d.submitNext()
	}
	return d
}

// Run executes the load to completion and returns the distributed traces.
func (d *Driver) Run() []*Trace {
	d.c.Engine().RunAll()
	return d.traces
}

func (d *Driver) submitNext() {
	if d.submitted >= d.requests {
		return
	}
	d.submitted++
	d.c.Submit(d.app.NewRequest(uint64(d.submitted), d.gen))
}

func (d *Driver) onDone(t *Trace) {
	d.traces = append(d.traces, t)
	if len(d.traces) >= d.requests {
		d.c.Engine().Stop()
		return
	}
	d.submitNext()
}

// PlacementResult evaluates one tier-to-node assignment.
type PlacementResult struct {
	Placement []int
	// MeanLatencyNs and P95LatencyNs summarize end-to-end response times.
	MeanLatencyNs, P95LatencyNs float64
	// MeanNetworkNs is the average per-request inter-machine time.
	MeanNetworkNs float64
	// NodeCPU is each node's total CPU time — the load-balance view.
	NodeCPU []float64
}

func (r PlacementResult) String() string {
	return fmt.Sprintf("placement %v: mean %.2fms p95 %.2fms (net %.2fms)",
		r.Placement, r.MeanLatencyNs/1e6, r.P95LatencyNs/1e6, r.MeanNetworkNs/1e6)
}

// EvaluatePlacements simulates the application under each candidate
// placement and ranks them by mean latency — the paper's envisioned
// component-placement guidance from distributed variation tracking.
func EvaluatePlacements(app workload.App, base Config, placements [][]int, concurrency, requests int) ([]PlacementResult, error) {
	var out []PlacementResult
	for _, pl := range placements {
		cfg := base
		cfg.Placement = pl
		c, err := NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		traces := NewDriver(c, app, concurrency, requests, base.Seed).Run()
		if len(traces) != requests {
			return nil, fmt.Errorf("distributed: placement %v stalled at %d/%d requests",
				pl, len(traces), requests)
		}
		var lat, net []float64
		nodeCPU := make([]float64, cfg.Nodes)
		for _, t := range traces {
			lat = append(lat, float64(t.Latency()))
			net = append(net, float64(t.NetworkTime()))
			for i, n := range c.Nodes() {
				if cpu, ok := t.PerNodeCPU()[n.Name]; ok {
					nodeCPU[i] += float64(cpu)
				}
			}
		}
		out = append(out, PlacementResult{
			Placement:     append([]int(nil), pl...),
			MeanLatencyNs: stats.Mean(lat),
			P95LatencyNs:  stats.Percentile(lat, 95),
			MeanNetworkNs: stats.Mean(net),
			NodeCPU:       nodeCPU,
		})
	}
	// Stable sort: placements are generated in a deterministic order, so
	// equal-latency entries keep it — sort.Slice's unstable ordering of
	// ties must never reach the rendered ranking.
	sort.SliceStable(out, func(i, j int) bool { return out[i].MeanLatencyNs < out[j].MeanLatencyNs })
	return out, nil
}
