// Package distributed implements the paper's second future-work direction
// (Section 7): "the online management of request behavior variations
// across a distributed server architecture can expose both local and
// inter-machine variations … [and] may also guide additional distributed
// system resource management such as component placement."
//
// A cluster is a set of simulated machines sharing one virtual clock, each
// with its own kernel and tracker. A multi-tier request is split into
// per-tier segments; each segment executes on the node hosting its tier,
// and segments are stitched — across simulated network hops — into one
// distributed trace that separates per-machine execution, exactly the
// request context propagation the paper's single-machine prototype could
// not follow past one kernel.
package distributed

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sampling"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// NetworkConfig models the interconnect between nodes.
type NetworkConfig struct {
	// HopLatency is the mean one-way latency of a tier hop between
	// different nodes (exponentially distributed). Hops between tiers
	// placed on the same node are free (they stay in-kernel).
	HopLatency sim.Time
}

// Node is one machine of the cluster: a kernel with its own cores and an
// attached tracker.
type Node struct {
	Name    string
	Kernel  *kernel.Kernel
	Tracker *sampling.Tracker

	// expects maps request id → the pending distributed request whose
	// current segment runs on this node.
	expects map[uint64]expectation
}

// Cluster is a set of nodes on one simulation clock, plus the placement of
// application tiers onto nodes.
type Cluster struct {
	eng   *sim.Engine
	net   NetworkConfig
	nodes []*Node
	// placement maps tier → node index.
	placement []int

	inflight int
	done     func(*Trace)
}

// Config builds a cluster.
type Config struct {
	// Nodes is the number of machines (each gets KernelConfig's cores).
	Nodes int
	// KernelConfig configures every node's kernel (zero value = default).
	KernelConfig *kernel.Config
	// Sampling configures every node's tracker.
	Sampling sampling.Config
	// Placement maps each application tier to a node index. Tiers beyond
	// the slice default to node 0.
	Placement []int
	// Network models the interconnect.
	Network NetworkConfig
	// Seed drives network latency draws.
	Seed int64
}

// NewCluster builds the cluster on a fresh simulation engine.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("distributed: Nodes must be positive, got %d", cfg.Nodes)
	}
	for _, p := range cfg.Placement {
		if p < 0 || p >= cfg.Nodes {
			return nil, fmt.Errorf("distributed: placement %d outside [0,%d)", p, cfg.Nodes)
		}
	}
	eng := sim.NewEngine()
	c := &Cluster{
		eng:       eng,
		net:       cfg.Network,
		placement: append([]int(nil), cfg.Placement...),
	}
	for i := 0; i < cfg.Nodes; i++ {
		kcfg := kernel.DefaultConfig()
		if cfg.KernelConfig != nil {
			kcfg = *cfg.KernelConfig
		}
		k := kernel.New(eng, kcfg)
		tk := sampling.NewTracker(k, cfg.Sampling)
		// Every node hosts a single local "tier 0" worker pool; segments
		// arriving at a node always run as that node's tier 0.
		k.AddWorkers(0, kcfg.Machine.Cores*2)
		node := &Node{Name: fmt.Sprintf("node%d", i), Kernel: k, Tracker: tk}
		c.nodes = append(c.nodes, node)
		tk.OnComplete(c.segmentDone(node))
	}
	return c, nil
}

// Engine returns the shared simulation engine.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Nodes returns the cluster's machines.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// NodeFor returns the node index hosting a tier.
func (c *Cluster) NodeFor(tier int) int {
	if tier < len(c.placement) {
		return c.placement[tier]
	}
	return 0
}

// Segment is one per-node stretch of a distributed request.
type Segment struct {
	Node  string
	Tier  int
	Trace *trace.Request
	// NetworkDelay is the hop latency paid before this segment started.
	NetworkDelay sim.Time
}

// Trace is a stitched distributed request execution.
type Trace struct {
	ID       uint64
	App      string
	Type     string
	Segments []Segment
	// Start and End are wall-clock request boundaries across the cluster.
	Start, End sim.Time
}

// CPUTime sums CPU execution across all machines.
func (t *Trace) CPUTime() sim.Time {
	var total sim.Time
	for _, s := range t.Segments {
		total += s.Trace.CPUTime()
	}
	return total
}

// NetworkTime sums the inter-machine hop latencies.
func (t *Trace) NetworkTime() sim.Time {
	var total sim.Time
	for _, s := range t.Segments {
		total += s.NetworkDelay
	}
	return total
}

// Latency is the end-to-end response time.
func (t *Trace) Latency() sim.Time { return t.End - t.Start }

// PerNodeCPU returns CPU time by node name — the inter-machine variation
// view.
func (t *Trace) PerNodeCPU() map[string]sim.Time {
	out := map[string]sim.Time{}
	for _, s := range t.Segments {
		out[s.Node] += s.Trace.CPUTime()
	}
	return out
}

// pending tracks one distributed request mid-flight.
type pending struct {
	cluster  *Cluster
	trace    *Trace
	segments []segmentPlan
	next     int
	rng      *sim.RNG
}

type segmentPlan struct {
	tier   int
	phases []workload.Phase
}

// splitSegments groups consecutive phases by tier.
func splitSegments(req *workload.Request) []segmentPlan {
	var out []segmentPlan
	for _, ph := range req.Phases {
		n := len(out)
		if n == 0 || out[n-1].tier != ph.Tier {
			out = append(out, segmentPlan{tier: ph.Tier})
			n++
		}
		local := ph
		local.Tier = 0 // segments run as the hosting node's local tier
		out[n-1].phases = append(out[n-1].phases, local)
	}
	return out
}

// Submit launches a distributed request. The done callback fires when the
// final segment completes.
func (c *Cluster) Submit(req *workload.Request) {
	p := &pending{
		cluster: c,
		trace: &Trace{
			ID:    req.ID,
			App:   req.App,
			Type:  req.Type,
			Start: c.eng.Now(),
		},
		segments: splitSegments(req),
		rng:      req.RNG,
	}
	c.inflight++
	p.launchNext(0)
}

// OnDone registers the completion callback for distributed traces.
func (c *Cluster) OnDone(fn func(*Trace)) { c.done = fn }

// Inflight reports in-flight distributed requests.
func (c *Cluster) Inflight() int { return c.inflight }

func (p *pending) launchNext(delay sim.Time) {
	c := p.cluster
	seg := p.segments[p.next]
	nodeIdx := c.NodeFor(seg.tier)
	node := c.nodes[nodeIdx]
	launch := func() {
		sub := &workload.Request{
			ID:     p.trace.ID,
			App:    p.trace.App,
			Type:   p.trace.Type,
			Phases: seg.phases,
			RNG:    p.rng,
		}
		c.expect(node, sub.ID, p, delay)
		node.Kernel.Submit(sub)
	}
	if delay > 0 {
		c.eng.After(delay, launch)
		return
	}
	launch()
}

// expectations map (node, request id) to the pending distributed request.
type expectation struct {
	p     *pending
	delay sim.Time
}

func (c *Cluster) expect(node *Node, id uint64, p *pending, delay sim.Time) {
	if node.expects == nil {
		node.expects = map[uint64]expectation{}
	}
	node.expects[id] = expectation{p: p, delay: delay}
}

// segmentDone stitches a completed node-local trace into its distributed
// request and launches the next segment (after a network hop if the next
// tier lives elsewhere).
func (c *Cluster) segmentDone(node *Node) func(tr *trace.Request) {
	return func(tr *trace.Request) {
		exp, ok := node.expects[tr.ID]
		if !ok {
			return
		}
		delete(node.expects, tr.ID)
		p := exp.p
		seg := p.segments[p.next]
		p.trace.Segments = append(p.trace.Segments, Segment{
			Node:         node.Name,
			Tier:         seg.tier,
			Trace:        tr,
			NetworkDelay: exp.delay,
		})
		p.next++
		if p.next >= len(p.segments) {
			p.trace.End = c.eng.Now()
			c.inflight--
			if c.done != nil {
				c.done(p.trace)
			}
			return
		}
		// Network hop when the next tier lives on a different node.
		var delay sim.Time
		if c.NodeFor(p.segments[p.next].tier) != c.NodeFor(seg.tier) {
			delay = sim.Time(p.rng.Exp(float64(c.net.HopLatency)))
			if delay < sim.Microsecond {
				delay = sim.Microsecond
			}
		}
		p.launchNext(delay)
	}
}
