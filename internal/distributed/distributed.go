// Package distributed implements the paper's second future-work direction
// (Section 7): "the online management of request behavior variations
// across a distributed server architecture can expose both local and
// inter-machine variations … [and] may also guide additional distributed
// system resource management such as component placement."
//
// A cluster is a set of simulated machines sharing one virtual clock, each
// with its own kernel and tracker. A multi-tier request is split into
// per-tier segments; each segment executes on the node hosting its tier,
// and segments are stitched — across simulated network hops — into one
// distributed trace that separates per-machine execution, exactly the
// request context propagation the paper's single-machine prototype could
// not follow past one kernel.
//
// The driver is robust to an imperfect interconnect: hops carry per-hop
// timeouts with capped exponential backoff retries, and a segment that
// overstays its latency budget can be hedged — re-dispatched to an
// alternate node, first completion wins. Both mechanisms, and the fault
// injector (package fault) that exercises them, run entirely on the shared
// virtual clock from labeled RNG streams, so a cluster run is
// bit-reproducible for a given Config.Seed.
package distributed

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sampling"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// NetworkConfig models the interconnect between nodes.
type NetworkConfig struct {
	// HopLatency is the mean one-way latency of a tier hop between
	// different nodes (exponentially distributed). Hops between tiers
	// placed on the same node are free (they stay in-kernel).
	HopLatency sim.Time
	// DropRTO is the lower-layer retransmission penalty a dropped hop pays
	// when the driver's own retries are exhausted or disabled — the
	// kernel-TCP timeout cliff that application-level retry is meant to
	// beat. Defaults to 25 × HopLatency.
	DropRTO sim.Time
}

// RetryConfig controls the driver's robustness mechanisms.
type RetryConfig struct {
	// Enabled turns on per-hop timeouts with retries. Off, a dropped hop
	// pays the full DropRTO retransmission penalty.
	Enabled bool
	// MaxRetries caps resend attempts per hop (default 3).
	MaxRetries int
	// HopTimeout is the per-attempt delivery timeout (default
	// 4 × HopLatency).
	HopTimeout sim.Time
	// Backoff is the base retry backoff, doubled per attempt (default
	// HopLatency) and capped at BackoffCap (default 8 × Backoff).
	Backoff, BackoffCap sim.Time
	// Hedge re-dispatches a segment that has run longer than HedgeAfter to
	// an alternate node; the first completion wins. Requires ≥ 2 nodes and
	// HedgeAfter > 0.
	Hedge      bool
	HedgeAfter sim.Time
}

// Resolved returns the config with defaults filled in for the given
// network — the values a cluster built from it actually runs with, which
// is what a localizer needs to cost out observed retry overhead.
func (r RetryConfig) Resolved(net NetworkConfig) RetryConfig {
	return r.withDefaults(net)
}

func (r RetryConfig) withDefaults(net NetworkConfig) RetryConfig {
	if !r.Enabled {
		return r
	}
	if r.MaxRetries <= 0 {
		r.MaxRetries = 3
	}
	if r.HopTimeout <= 0 {
		r.HopTimeout = 4 * net.HopLatency
		if r.HopTimeout <= 0 {
			r.HopTimeout = sim.Millisecond
		}
	}
	if r.Backoff <= 0 {
		r.Backoff = net.HopLatency
		if r.Backoff <= 0 {
			r.Backoff = 100 * sim.Microsecond
		}
	}
	if r.BackoffCap <= 0 {
		r.BackoffCap = 8 * r.Backoff
	}
	return r
}

// Node is one machine of the cluster: a kernel with its own cores and an
// attached tracker.
type Node struct {
	Name    string
	Kernel  *kernel.Kernel
	Tracker *sampling.Tracker

	idx int
	// expects maps each dispatched sub-request (a distinct pointer per
	// dispatch, so hedged duplicates of the same request ID stay distinct)
	// to the pending distributed request it belongs to.
	expects map[*workload.Request]expectation
	// lastDone stashes the trace the tracker just completed; the kernel's
	// OnRequestDone callback — which fires immediately after within the
	// same completion and carries the *workload.Request key — consumes it.
	lastDone *trace.Request
}

// clusterObs holds the cluster's resolved observability handles (all nil
// when no collector is attached; see package obs).
type clusterObs struct {
	hops     *obs.SpanSeries // delivered hop latency (including retries)
	retries  *obs.Counter    // hop resend attempts
	hedges   *obs.Counter    // hedged segment dispatches
	timeouts *obs.Counter    // hop delivery timeouts
	drops    *obs.Counter    // hop messages lost to fault windows
	faults   *obs.Counter    // fault impacts applied to requests
}

// Cluster is a set of nodes on one simulation clock, plus the placement of
// application tiers onto nodes.
type Cluster struct {
	eng   *sim.Engine
	net   NetworkConfig
	retry RetryConfig
	nodes []*Node
	// placement maps tier → node index.
	placement []int
	// netRNG drives all network latency draws: a labeled fork of
	// Config.Seed, independent of workload content draws.
	netRNG *sim.RNG
	faults *fault.Schedule
	cobs   clusterObs

	inflight int
	done     func(*Trace)
}

// Config builds a cluster.
type Config struct {
	// Nodes is the number of machines (each gets KernelConfig's cores).
	Nodes int
	// KernelConfig configures every node's kernel (zero value = default).
	KernelConfig *kernel.Config
	// Sampling configures every node's tracker.
	Sampling sampling.Config
	// Placement maps each application tier to a node index. Tiers beyond
	// the slice default to node 0.
	Placement []int
	// Network models the interconnect.
	Network NetworkConfig
	// Retry configures hop timeouts/retries and segment hedging.
	Retry RetryConfig
	// Seed drives network latency draws, through a labeled RNG fork, so
	// the interconnect's randomness is independent of each request's
	// workload content stream.
	Seed int64
	// Topology, when non-nil, sets every node's machine layout (it
	// overrides KernelConfig's machine topology).
	Topology *machine.Topology
	// Topologies, when non-empty, gives each node its own layout — a
	// heterogeneous fleet. Its length must equal Nodes; it overrides
	// Topology.
	Topologies []machine.Topology
}

// Validate reports configuration errors, naming the offending field.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("distributed: Config.Nodes must be positive, got %d", c.Nodes)
	}
	for i, p := range c.Placement {
		if p < 0 || p >= c.Nodes {
			return fmt.Errorf("distributed: Config.Placement[%d] = %d outside [0,%d)", i, p, c.Nodes)
		}
	}
	if c.Topology != nil {
		if err := c.Topology.Validate(); err != nil {
			return fmt.Errorf("distributed: Config.Topology: %w", err)
		}
	}
	if len(c.Topologies) > 0 && len(c.Topologies) != c.Nodes {
		return fmt.Errorf("distributed: Config.Topologies has %d entries for %d nodes",
			len(c.Topologies), c.Nodes)
	}
	for i, t := range c.Topologies {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("distributed: Config.Topologies[%d]: %w", i, err)
		}
	}
	return nil
}

// topologyFor resolves node i's machine topology override (nil = keep the
// kernel config's layout).
func (c Config) topologyFor(i int) *machine.Topology {
	if len(c.Topologies) > 0 {
		return &c.Topologies[i]
	}
	return c.Topology
}

// NewCluster builds the cluster on a fresh simulation engine.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	net := cfg.Network
	if net.DropRTO <= 0 {
		net.DropRTO = 25 * net.HopLatency
		if net.DropRTO <= 0 {
			net.DropRTO = sim.Millisecond
		}
	}
	eng := sim.NewEngine()
	c := &Cluster{
		eng:       eng,
		net:       net,
		retry:     cfg.Retry.withDefaults(net),
		placement: append([]int(nil), cfg.Placement...),
		netRNG:    sim.ForkLabeled(cfg.Seed, "distributed-net"),
	}
	for i := 0; i < cfg.Nodes; i++ {
		kcfg := kernel.DefaultConfig()
		if cfg.KernelConfig != nil {
			kcfg = *cfg.KernelConfig
		}
		if t := cfg.topologyFor(i); t != nil {
			kcfg.Machine.Topology = *t
		}
		k := kernel.New(eng, kcfg)
		tk := sampling.NewTracker(k, cfg.Sampling)
		// Every node hosts a single local "tier 0" worker pool; segments
		// arriving at a node always run as that node's tier 0 (which is
		// also what lets a hedged segment run on any alternate node).
		k.AddWorkers(0, kcfg.Machine.NumCores()*2)
		node := &Node{Name: fmt.Sprintf("node%d", i), Kernel: k, Tracker: tk, idx: i}
		c.nodes = append(c.nodes, node)
		tk.OnComplete(func(tr *trace.Request) { node.lastDone = tr })
		k.OnRequestDone(c.segmentDone(node))
	}
	return c, nil
}

// Engine returns the shared simulation engine.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Nodes returns the cluster's machines.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// NodeFor returns the node index hosting a tier.
func (c *Cluster) NodeFor(tier int) int {
	if tier < len(c.placement) {
		return c.placement[tier]
	}
	return 0
}

// SetObserver attaches the observability collector, resolving the
// cluster's hop span and robustness counters. A nil collector leaves the
// cluster uninstrumented. Must be called before the simulation starts.
func (c *Cluster) SetObserver(col *obs.Collector) {
	if col == nil {
		return
	}
	c.cobs = clusterObs{
		hops:     col.Span("hop"),
		retries:  col.Counter("net.retries"),
		hedges:   col.Counter("net.hedges"),
		timeouts: col.Counter("net.timeouts"),
		drops:    col.Counter("net.drops"),
		faults:   col.Counter("fault.impacts"),
	}
	for _, n := range c.nodes {
		n.Tracker.SetObserver(col)
	}
}

// SetFaults installs a fault schedule: hop sends consult it for latency
// spikes and drops, segment dispatches for pollution bursts, and node
// slowdown windows are armed as virtual-clock events that scale the
// target kernel's CPU frequency at each window edge. Call once, before
// the simulation starts; the schedule records the ground-truth impacts.
func (c *Cluster) SetFaults(s *fault.Schedule) {
	c.faults = s
	for _, f := range s.Faults() {
		if f.Kind != fault.NodeSlowdown || f.Node < 0 || f.Node >= len(c.nodes) {
			continue
		}
		f := f
		node := c.nodes[f.Node]
		apply := func() {
			node.Kernel.SetFrequencyScale(c.faults.FreqScale(f.Node, c.eng.Now()))
		}
		c.eng.At(f.Start, apply)
		c.eng.At(f.End, apply)
	}
}

// Faults returns the installed schedule (nil when clean).
func (c *Cluster) Faults() *fault.Schedule { return c.faults }

// Segment is one per-node stretch of a distributed request.
type Segment struct {
	Node  string
	Tier  int
	Trace *trace.Request
	// NetworkDelay is the hop latency paid before this segment started,
	// including retry backoffs and retransmission penalties.
	NetworkDelay sim.Time
	// Hedged marks a segment completed by a hedged duplicate rather than
	// the primary dispatch.
	Hedged bool
}

// Trace is a stitched distributed request execution.
type Trace struct {
	ID       uint64
	App      string
	Type     string
	Segments []Segment
	// Start and End are wall-clock request boundaries across the cluster.
	Start, End sim.Time
	// Retries, Hedges, and Timeouts count the robustness events this
	// request needed.
	Retries, Hedges, Timeouts int
	// Path is the request's causal path tree: every hop and execution
	// segment in virtual-event order, with node/tier attribution and the
	// robustness events each step observed. Built without RNG draws, so it
	// never perturbs the run it describes.
	Path *obs.CausalPath
}

// CPUTime sums CPU execution across all machines.
func (t *Trace) CPUTime() sim.Time {
	var total sim.Time
	for _, s := range t.Segments {
		total += s.Trace.CPUTime()
	}
	return total
}

// NetworkTime sums the inter-machine hop latencies.
func (t *Trace) NetworkTime() sim.Time {
	var total sim.Time
	for _, s := range t.Segments {
		total += s.NetworkDelay
	}
	return total
}

// Latency is the end-to-end response time.
func (t *Trace) Latency() sim.Time { return t.End - t.Start }

// PerNodeCPU returns CPU time by node name — the inter-machine variation
// view.
func (t *Trace) PerNodeCPU() map[string]sim.Time {
	out := map[string]sim.Time{}
	for _, s := range t.Segments {
		out[s.Node] += s.Trace.CPUTime()
	}
	return out
}

// pending tracks one distributed request mid-flight.
type pending struct {
	cluster   *Cluster
	trace     *Trace
	segments  []segmentPlan
	next      int
	typeIndex int
	rng       *sim.RNG
	// hedgedSeg marks the one segment index already hedged (-1: none);
	// each segment is hedged at most once.
	hedgedSeg int
}

type segmentPlan struct {
	tier   int
	phases []workload.Phase
}

// splitSegments groups consecutive phases by tier.
func splitSegments(req *workload.Request) []segmentPlan {
	var out []segmentPlan
	for _, ph := range req.Phases {
		n := len(out)
		if n == 0 || out[n-1].tier != ph.Tier {
			out = append(out, segmentPlan{tier: ph.Tier})
			n++
		}
		local := ph
		local.Tier = 0 // segments run as the hosting node's local tier
		out[n-1].phases = append(out[n-1].phases, local)
	}
	return out
}

// Submit launches a distributed request. The done callback fires when the
// final segment completes.
func (c *Cluster) Submit(req *workload.Request) {
	p := &pending{
		cluster: c,
		trace: &Trace{
			ID:    req.ID,
			App:   req.App,
			Type:  req.Type,
			Start: c.eng.Now(),
			Path:  obs.NewCausalPath(req.ID, req.Type, c.eng.Now()),
		},
		segments:  splitSegments(req),
		typeIndex: req.TypeIndex,
		rng:       req.RNG,
		hedgedSeg: -1,
	}
	c.inflight++
	// The entry segment arrives with the request itself — no cluster hop.
	c.dispatch(p, 0, c.NodeFor(p.segments[0].tier), 0, false)
}

// OnDone registers the completion callback for distributed traces.
func (c *Cluster) OnDone(fn func(*Trace)) { c.done = fn }

// Inflight reports in-flight distributed requests.
func (c *Cluster) Inflight() int { return c.inflight }

// expectation links a dispatched sub-request back to its distributed
// request: the segment index detects stale hedge losers, delay carries the
// hop latency to attribute, hedge marks the duplicate dispatch.
type expectation struct {
	p     *pending
	seg   int
	delay sim.Time
	hedge bool
}

// hopState is one in-flight network message carrying a segment to its
// node, across however many attempts its delivery needs.
type hopState struct {
	p         *pending
	seg       int
	to        int
	hedge     bool
	attempt   int
	start     sim.Time
	delivered bool
	timeout   *sim.Event
	// pnode is the hop's step in the request's causal path tree.
	pnode *obs.CausalNode
}

// sendHop launches the network delivery of segment seg to node to.
func (c *Cluster) sendHop(p *pending, seg, to int, hedge bool) {
	h := &hopState{p: p, seg: seg, to: to, hedge: hedge, start: c.eng.Now()}
	h.pnode = p.trace.Path.Root.Add(&obs.CausalNode{
		Kind:   obs.CausalHop,
		Node:   to,
		Tier:   p.segments[seg].tier,
		Start:  h.start,
		Hedged: hedge,
	})
	c.attemptHop(h)
}

// attemptHop makes one delivery attempt: draw the hop latency from the
// cluster's network stream, apply any active latency-spike window, decide
// loss from the fault schedule's drop stream, and schedule delivery — or,
// when the message is lost and retries remain, leave it to the pending
// timeout to resend. A lost message with no retry budget still delivers,
// after the DropRTO retransmission penalty, so every hop terminates in at
// most MaxRetries+1 attempts.
func (c *Cluster) attemptHop(h *hopState) {
	now := c.eng.Now()
	delay := sim.Time(c.netRNG.Exp(float64(c.net.HopLatency)))
	if delay < sim.Microsecond {
		delay = sim.Microsecond
	}
	if f := c.faults.HopFactor(h.to, now); f > 1 {
		delay = sim.Time(float64(delay) * f)
		c.faults.Record(h.p.trace.ID, fault.HopDelay, h.to, -1, now)
		c.cobs.faults.Add(1)
	}
	dropped := c.faults.DropHop(h.to, now)
	canRetry := c.retry.Enabled && h.attempt < c.retry.MaxRetries
	if dropped {
		c.faults.Record(h.p.trace.ID, fault.HopDrop, h.to, -1, now)
		c.cobs.drops.Add(1)
		c.cobs.faults.Add(1)
		if !canRetry {
			// Lower-layer retransmission eventually delivers, at the RTO
			// cliff application-level retries are meant to avoid.
			c.eng.After(delay+c.net.DropRTO, func() { c.deliverHop(h) })
		}
	} else {
		c.eng.After(delay, func() { c.deliverHop(h) })
	}
	if canRetry {
		h.timeout = c.eng.After(c.retry.HopTimeout, func() { c.hopTimeout(h) })
	}
}

// deliverHop completes a hop's first successful delivery and dispatches
// the segment; late duplicates (a slow primary racing a retry) are
// dropped here.
func (c *Cluster) deliverHop(h *hopState) {
	if h.delivered {
		return
	}
	h.delivered = true
	if h.timeout != nil {
		c.eng.Cancel(h.timeout)
		h.timeout = nil
	}
	netDelay := c.eng.Now() - h.start
	h.pnode.Dur = netDelay
	c.cobs.hops.Observe(netDelay)
	c.dispatch(h.p, h.seg, h.to, netDelay, h.hedge)
}

// hopTimeout fires when an attempt's delivery window lapses: resend after
// a capped exponential backoff.
func (c *Cluster) hopTimeout(h *hopState) {
	if h.delivered {
		return
	}
	h.timeout = nil
	c.cobs.timeouts.Add(1)
	h.p.trace.Timeouts++
	h.pnode.Timeouts++
	h.pnode.Retries++
	backoff := c.retry.Backoff << uint(h.attempt)
	if backoff > c.retry.BackoffCap {
		backoff = c.retry.BackoffCap
	}
	h.attempt++
	c.cobs.retries.Add(1)
	h.p.trace.Retries++
	c.eng.After(backoff, func() { c.attemptHop(h) })
}

// dispatch submits segment seg of p to a node, applying any active
// pollution-burst window to the segment's activity, and arms the hedge
// timer for the primary dispatch.
func (c *Cluster) dispatch(p *pending, seg, nodeIdx int, netDelay sim.Time, hedge bool) {
	if p.next != seg {
		return // the segment already completed via the other copy
	}
	c.inflightFaultImpacts(p, seg, nodeIdx)
	node := c.nodes[nodeIdx]
	phases := p.segments[seg].phases
	now := c.eng.Now()
	if f := c.faults.Pollution(p.segments[seg].tier, now); f > 1 {
		phases = pollutedPhases(phases, f)
		c.faults.Record(p.trace.ID, fault.PollutionBurst, nodeIdx, p.segments[seg].tier, now)
		c.cobs.faults.Add(1)
	}
	rng := p.rng
	if hedge {
		// The duplicate gets its own stream so it cannot perturb the
		// primary's workload draws.
		rng = c.netRNG.Fork()
	}
	sub := &workload.Request{
		ID:        p.trace.ID,
		App:       p.trace.App,
		Type:      p.trace.Type,
		TypeIndex: p.typeIndex,
		Phases:    phases,
		RNG:       rng,
	}
	c.expect(node, sub, p, seg, netDelay, hedge)
	node.Kernel.Submit(sub)
	if !hedge && c.retry.Hedge && c.retry.HedgeAfter > 0 && len(c.nodes) > 1 {
		c.eng.After(c.retry.HedgeAfter, func() { c.maybeHedge(p, seg, nodeIdx) })
	}
}

// maybeHedge re-dispatches a segment still running past its latency budget
// to the next node over; the duplicate pays its own network hop and races
// the primary — first completion wins.
func (c *Cluster) maybeHedge(p *pending, seg, primary int) {
	if p.next != seg || p.hedgedSeg == seg {
		return
	}
	p.hedgedSeg = seg
	alt := (primary + 1) % len(c.nodes)
	c.cobs.hedges.Add(1)
	p.trace.Hedges++
	c.sendHop(p, seg, alt, true)
}

// inflightFaultImpacts records ground truth for windows that stretch a
// segment's execution from below: a dispatch onto a slowed node.
func (c *Cluster) inflightFaultImpacts(p *pending, seg, nodeIdx int) {
	now := c.eng.Now()
	if c.faults.FreqScale(nodeIdx, now) < 1 {
		c.faults.Record(p.trace.ID, fault.NodeSlowdown, nodeIdx, p.segments[seg].tier, now)
		c.cobs.faults.Add(1)
	}
}

// pollutedPhases returns a copy of the phases with an active pollution
// burst folded into their cache behavior: the footprint and miss ratio
// inflate and the base CPI drifts up, while the reference rate per
// instruction stays put — the paper's signature of a cache-contention
// anomaly (similar L2-reference patterns, divergent CPI).
func pollutedPhases(phases []workload.Phase, f float64) []workload.Phase {
	out := append([]workload.Phase(nil), phases...)
	for i := range out {
		a := out[i].Activity
		a.WorkingSetBytes *= f
		a.SoloMissRatio *= f
		if a.SoloMissRatio > 0.9 {
			a.SoloMissRatio = 0.9
		}
		a.BaseCPI *= 1 + 0.5*(f-1)
		out[i].Activity = a
	}
	return out
}

func (c *Cluster) expect(node *Node, sub *workload.Request, p *pending, seg int, delay sim.Time, hedge bool) {
	if node.expects == nil {
		node.expects = map[*workload.Request]expectation{}
	}
	node.expects[sub] = expectation{p: p, seg: seg, delay: delay, hedge: hedge}
}

// segmentDone stitches a completed node-local trace into its distributed
// request and launches the next segment (over a network hop if the next
// tier lives elsewhere). Completions of hedge losers — whose segment index
// has already been passed — are discarded.
func (c *Cluster) segmentDone(node *Node) func(run *kernel.RequestRun) {
	return func(run *kernel.RequestRun) {
		tr := node.lastDone
		node.lastDone = nil
		exp, ok := node.expects[run.Req]
		if !ok {
			return
		}
		delete(node.expects, run.Req)
		p := exp.p
		if exp.seg != p.next || tr == nil {
			return // stale duplicate: the other copy finished first
		}
		seg := p.segments[p.next]
		p.trace.Segments = append(p.trace.Segments, Segment{
			Node:         node.Name,
			Tier:         seg.tier,
			Trace:        tr,
			NetworkDelay: exp.delay,
			Hedged:       exp.hedge,
		})
		totals := tr.Totals()
		p.trace.Path.Root.Add(&obs.CausalNode{
			Kind:         obs.CausalExec,
			Node:         node.idx,
			Tier:         seg.tier,
			Start:        tr.Start,
			Dur:          tr.End - tr.Start,
			Hedged:       exp.hedge,
			CPUTime:      tr.CPUTime(),
			Instructions: totals.Instructions,
			Cycles:       totals.Cycles,
		})
		p.next++
		if p.next >= len(p.segments) {
			p.trace.End = c.eng.Now()
			p.trace.Path.Root.Dur = p.trace.End - p.trace.Start
			c.inflight--
			if c.done != nil {
				c.done(p.trace)
			}
			return
		}
		// Network hop when the next tier lives on a different node than
		// the one that actually ran this segment (a hedge winner may sit
		// off the placement path).
		to := c.NodeFor(p.segments[p.next].tier)
		if to != node.idx {
			c.sendHop(p, p.next, to, false)
			return
		}
		c.dispatch(p, p.next, to, 0, false)
	}
}
