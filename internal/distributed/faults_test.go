package distributed

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// fingerprint renders a run's traces into a canonical string so two runs
// can be compared bit-for-bit.
func fingerprint(traces []*Trace) string {
	sorted := append([]*Trace(nil), traces...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	out := ""
	for _, tr := range sorted {
		out += fmt.Sprintf("%d:%d:%d:%d:%d:%d:%d:%d:%d\n",
			tr.ID, tr.Start, tr.End, tr.NetworkTime(), tr.CPUTime(),
			tr.Retries, tr.Hedges, tr.Timeouts, len(tr.Segments))
	}
	return out
}

func runCluster(t *testing.T, cfg Config, requests int, faults *fault.Schedule) []*Trace {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if faults != nil {
		c.SetFaults(faults)
	}
	traces := NewDriver(c, workload.NewRUBiS(), 4, requests, 3).Run()
	if len(traces) != requests {
		t.Fatalf("completed %d/%d requests", len(traces), requests)
	}
	return traces
}

func TestSameSeedBitIdenticalTraces(t *testing.T) {
	a := fingerprint(runCluster(t, clusterConfig(3, []int{0, 1, 2}), 20, nil))
	b := fingerprint(runCluster(t, clusterConfig(3, []int{0, 1, 2}), 20, nil))
	if a != b {
		t.Fatalf("same seed gave different runs:\n%s\nvs\n%s", a, b)
	}
}

func TestDifferentSeedsDifferentNetworkTimes(t *testing.T) {
	cfgA := clusterConfig(3, []int{0, 1, 2})
	cfgB := cfgA
	cfgB.Seed = 1234
	a := runCluster(t, cfgA, 15, nil)
	b := runCluster(t, cfgB, 15, nil)
	netA, netB := sim.Time(0), sim.Time(0)
	for i := range a {
		netA += a[i].NetworkTime()
		netB += b[i].NetworkTime()
	}
	if netA == netB {
		t.Fatal("different cluster seeds drew identical network times")
	}
}

func TestSeedDeterminismAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	runtime.GOMAXPROCS(1)
	a := fingerprint(runCluster(t, clusterConfig(3, []int{0, 1, 2}), 15, nil))
	runtime.GOMAXPROCS(prev)
	b := fingerprint(runCluster(t, clusterConfig(3, []int{0, 1, 2}), 15, nil))
	if a != b {
		t.Fatal("run fingerprint varies with GOMAXPROCS")
	}
}

func TestEvaluatePlacementsBitIdentical(t *testing.T) {
	base := clusterConfig(3, nil)
	placements := [][]int{{0, 1, 2}, {0, 0, 0}}
	a, err := EvaluatePlacements(workload.NewRUBiS(), base, placements, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluatePlacements(workload.NewRUBiS(), base, placements, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("placement evaluation not reproducible:\n%v\nvs\n%v", a, b)
	}
}

func TestFaultScheduleDeterministicUnderInjection(t *testing.T) {
	horizon := 500 * sim.Millisecond
	mkSched := func() *fault.Schedule {
		s, err := fault.NewSchedule(fault.Config{
			Seed: 11, Horizon: horizon, Nodes: 3, Tiers: 3,
			Slowdowns: 1, HopSpikes: 1, Drops: 1, Bursts: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cfg := clusterConfig(3, []int{0, 1, 2})
	cfg.Retry.Enabled = true
	sa, sb := mkSched(), mkSched()
	a := fingerprint(runCluster(t, cfg, 20, sa))
	b := fingerprint(runCluster(t, cfg, 20, sb))
	if a != b {
		t.Fatalf("fault-injected runs with identical schedules diverged:\n%s\nvs\n%s", a, b)
	}
	if !reflect.DeepEqual(sa.Impacts(), sb.Impacts()) {
		t.Fatal("recorded ground-truth impacts diverged between identical runs")
	}
}

func TestDropsPayRTOWithoutRetries(t *testing.T) {
	// A full-run drop window on the node hosting tier 1: without retries
	// every affected hop pays the DropRTO retransmission cliff.
	window := []fault.Fault{{
		Kind: fault.HopDrop, Node: 1, Tier: -1,
		Start: 0, End: sim.Time(1) << 60, Prob: 1,
	}}
	cfg := clusterConfig(3, []int{0, 1, 2})
	sched := fault.FromFaults(5, window)
	traces := runCluster(t, cfg, 10, sched)
	if len(sched.ImpactedIDs(fault.HopDrop)) == 0 {
		t.Fatal("no drop impacts recorded under a permanent drop window")
	}
	rto := 25 * cfg.Network.HopLatency // the default DropRTO
	sawRTO := false
	for _, tr := range traces {
		for _, seg := range tr.Segments {
			if seg.NetworkDelay >= rto {
				sawRTO = true
			}
		}
		if tr.Retries != 0 {
			t.Fatal("retries counted with retries disabled")
		}
	}
	if !sawRTO {
		t.Fatal("no segment paid the retransmission penalty")
	}
}

func TestRetriesBeatRTOOnWorstCaseLatency(t *testing.T) {
	window := []fault.Fault{{
		Kind: fault.HopDrop, Node: 1, Tier: -1,
		Start: 0, End: sim.Time(1) << 60, Prob: 0.7,
	}}
	run := func(retries bool) []float64 {
		cfg := clusterConfig(3, []int{0, 1, 2})
		cfg.Retry.Enabled = retries
		traces := runCluster(t, cfg, 30, fault.FromFaults(5, window))
		var lat []float64
		for _, tr := range traces {
			lat = append(lat, float64(tr.Latency()))
		}
		return lat
	}
	off := stats.Percentile(run(false), 99)
	on := stats.Percentile(run(true), 99)
	if on >= off {
		t.Fatalf("retries did not improve p99: on=%.2fms off=%.2fms", on/1e6, off/1e6)
	}
}

func TestRetriesCountedAndObserved(t *testing.T) {
	window := []fault.Fault{{
		Kind: fault.HopDrop, Node: 1, Tier: -1,
		Start: 0, End: sim.Time(1) << 60, Prob: 1,
	}}
	cfg := clusterConfig(3, []int{0, 1, 2})
	cfg.Retry.Enabled = true
	col := obs.New("test")
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.SetObserver(col)
	c.SetFaults(fault.FromFaults(5, window))
	traces := NewDriver(c, workload.NewRUBiS(), 4, 10, 3).Run()
	totalRetries, totalTimeouts := 0, 0
	for _, tr := range traces {
		totalRetries += tr.Retries
		totalTimeouts += tr.Timeouts
	}
	if totalRetries == 0 || totalTimeouts == 0 {
		t.Fatal("permanent drop window with retries on produced no retries/timeouts")
	}
	if col.Counter("net.retries").Value() != uint64(totalRetries) {
		t.Fatalf("obs retries %d != trace retries %d",
			col.Counter("net.retries").Value(), totalRetries)
	}
	if col.Counter("net.timeouts").Value() != uint64(totalTimeouts) {
		t.Fatal("obs timeouts disagree with trace timeouts")
	}
	if col.Counter("net.drops").Value() == 0 {
		t.Fatal("no drops observed")
	}
}

func TestHedgingCompletesAndIsCounted(t *testing.T) {
	cfg := clusterConfig(3, []int{0, 1, 2})
	cfg.Retry.Enabled = true
	cfg.Retry.Hedge = true
	cfg.Retry.HedgeAfter = 100 * sim.Microsecond // hedge nearly every segment
	traces := runCluster(t, cfg, 20, nil)
	hedges := 0
	sawHedgedSegment := false
	for _, tr := range traces {
		hedges += tr.Hedges
		for _, seg := range tr.Segments {
			if seg.Hedged {
				sawHedgedSegment = true
			}
		}
		if tr.End <= tr.Start || tr.CPUTime() <= 0 {
			t.Fatal("bad trace under hedging")
		}
	}
	if hedges == 0 {
		t.Fatal("aggressive hedge budget produced no hedges")
	}
	if !sawHedgedSegment {
		t.Fatal("no segment was won by a hedge duplicate")
	}
}

func TestHedgingDeterministic(t *testing.T) {
	run := func() string {
		cfg := clusterConfig(3, []int{0, 1, 2})
		cfg.Retry.Enabled = true
		cfg.Retry.Hedge = true
		cfg.Retry.HedgeAfter = 200 * sim.Microsecond
		return fingerprint(runCluster(t, cfg, 20, nil))
	}
	if run() != run() {
		t.Fatal("hedged runs not reproducible")
	}
}

func TestPollutionBurstRecordsGroundTruthAndStretchesCPI(t *testing.T) {
	// A permanent burst on tier 2 must hit every request's DB segment and
	// inflate its CPU time versus a clean run.
	window := []fault.Fault{{
		Kind: fault.PollutionBurst, Node: -1, Tier: 2,
		Start: 0, End: sim.Time(1) << 60, Factor: 4,
	}}
	cfg := clusterConfig(3, []int{0, 1, 2})
	clean := runCluster(t, cfg, 10, nil)
	sched := fault.FromFaults(5, window)
	dirty := runCluster(t, cfg, 10, sched)
	hit := sched.ImpactedIDs(fault.PollutionBurst)
	if len(hit) != 10 {
		t.Fatalf("permanent tier-2 burst hit %d/10 requests", len(hit))
	}
	var cleanDB, dirtyDB float64
	for i := range clean {
		for _, seg := range clean[i].Segments {
			if seg.Tier == 2 {
				cleanDB += float64(seg.Trace.CPUTime())
			}
		}
		for _, seg := range dirty[i].Segments {
			if seg.Tier == 2 {
				dirtyDB += float64(seg.Trace.CPUTime())
			}
		}
	}
	if dirtyDB <= cleanDB {
		t.Fatalf("pollution burst did not inflate DB CPU time: %.0f vs %.0f", dirtyDB, cleanDB)
	}
}

func TestNodeSlowdownStretchesRun(t *testing.T) {
	window := []fault.Fault{{
		Kind: fault.NodeSlowdown, Node: 2, Tier: -1,
		Start: 0, End: sim.Time(1) << 60, Factor: 0.25,
	}}
	cfg := clusterConfig(3, []int{0, 1, 2})
	clean := runCluster(t, cfg, 10, nil)
	sched := fault.FromFaults(5, window)
	slow := runCluster(t, cfg, 10, sched)
	var cleanLat, slowLat float64
	for i := range clean {
		cleanLat += float64(clean[i].Latency())
		slowLat += float64(slow[i].Latency())
	}
	if slowLat <= cleanLat {
		t.Fatalf("node slowdown did not stretch latency: %.0f vs %.0f", slowLat, cleanLat)
	}
	if len(sched.ImpactedIDs(fault.NodeSlowdown)) == 0 {
		t.Fatal("no slowdown impacts recorded")
	}
}
