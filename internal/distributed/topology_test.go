package distributed

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/workload"
)

func TestClusterTopologyValidation(t *testing.T) {
	cfg := clusterConfig(2, []int{0, 1})
	bad := machine.Topology{Packages: []machine.PackageSpec{{Cores: 0, FreqScale: 1}}}
	cfg.Topology = &bad
	if _, err := NewCluster(cfg); err == nil || !strings.Contains(err.Error(), "Config.Topology") {
		t.Fatalf("bad shared topology: err = %v", err)
	}
	cfg = clusterConfig(2, []int{0, 1})
	cfg.Topologies = []machine.Topology{machine.DefaultTopology()}
	if _, err := NewCluster(cfg); err == nil || !strings.Contains(err.Error(), "Topologies has 1 entries for 2 nodes") {
		t.Fatalf("length mismatch: err = %v", err)
	}
	cfg.Topologies = []machine.Topology{machine.DefaultTopology(), bad}
	if _, err := NewCluster(cfg); err == nil || !strings.Contains(err.Error(), "Config.Topologies[1]") {
		t.Fatalf("per-node topology error should name the node: err = %v", err)
	}
}

func TestHeterogeneousFleetNodes(t *testing.T) {
	fleet, err := machine.ParseFleet("pkg=2,2/pkg=4:0.85/pkg=4:1.15,4:1.15")
	if err != nil {
		t.Fatal(err)
	}
	cfg := clusterConfig(3, []int{0, 1, 2})
	cfg.Topologies = fleet
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantCores := []int{4, 4, 8}
	for i, n := range c.Nodes() {
		if got := n.Kernel.Machine().NumCores(); got != wantCores[i] {
			t.Fatalf("node %d cores = %d, want %d", i, got, wantCores[i])
		}
	}
	if c.Nodes()[1].Kernel.Machine().CoreFrequencyScale(0) != 0.85 {
		t.Fatal("node 1 frequency scale not applied")
	}
	traces := NewDriver(c, workload.NewRUBiS(), 4, 25, 3).Run()
	if len(traces) != 25 {
		t.Fatalf("completed %d/25", len(traces))
	}

	// Same fleet, same seed → bit-identical end times.
	c2, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	traces2 := NewDriver(c2, workload.NewRUBiS(), 4, 25, 3).Run()
	for i := range traces {
		if traces[i].End != traces2[i].End || traces[i].Start != traces2[i].Start {
			t.Fatalf("fleet run not deterministic at trace %d", i)
		}
	}
}

func TestSharedTopologyAppliesToAllNodes(t *testing.T) {
	topo, err := machine.ParseTopology("cores=8;per=4")
	if err != nil {
		t.Fatal(err)
	}
	cfg := clusterConfig(2, []int{0, 1})
	cfg.Topology = &topo
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range c.Nodes() {
		if got := n.Kernel.Machine().NumCores(); got != 8 {
			t.Fatalf("node %d cores = %d, want 8", i, got)
		}
		if got := n.Kernel.Machine().Topology().NumPackages(); got != 2 {
			t.Fatalf("node %d packages = %d, want 2", i, got)
		}
	}
}
