package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func cfg() Config { return DefaultConfig() }

func TestSoloDemandKeepsSoloMissRatio(t *testing.T) {
	d := &Demand{RefsPerIns: 0.04, SoloMissRatio: 0.15, WorkingSetBytes: 2 << 20}
	got := MissRatios(cfg(), []*Demand{d, nil})
	if got[0] != 0.15 {
		t.Fatalf("solo miss ratio = %v, want 0.15", got[0])
	}
	if got[1] != 0 {
		t.Fatalf("idle core miss ratio = %v, want 0", got[1])
	}
}

func TestSmallWorkingSetsDoNotContend(t *testing.T) {
	// Two 1 MB working sets fit together in a 4 MB cache: no inflation.
	a := &Demand{RefsPerIns: 0.01, SoloMissRatio: 0.1, WorkingSetBytes: 1 << 20}
	b := &Demand{RefsPerIns: 0.01, SoloMissRatio: 0.1, WorkingSetBytes: 1 << 20}
	got := MissRatios(cfg(), []*Demand{a, b})
	if got[0] != 0.1 || got[1] != 0.1 {
		t.Fatalf("fitting working sets inflated: %v", got)
	}
}

func TestLargeWorkingSetsContend(t *testing.T) {
	a := &Demand{RefsPerIns: 0.04, SoloMissRatio: 0.15, WorkingSetBytes: 6 << 20}
	b := &Demand{RefsPerIns: 0.04, SoloMissRatio: 0.15, WorkingSetBytes: 6 << 20}
	got := MissRatios(cfg(), []*Demand{a, b})
	if got[0] <= 0.15 {
		t.Fatalf("co-running large working sets should inflate miss ratio: %v", got[0])
	}
	if got[0] != got[1] {
		t.Fatalf("symmetric demands got asymmetric ratios: %v", got)
	}
	if got[0] > 1 {
		t.Fatalf("miss ratio exceeded 1: %v", got[0])
	}
}

func TestIntenseCoRunnerHurtsMore(t *testing.T) {
	victim := &Demand{RefsPerIns: 0.02, SoloMissRatio: 0.1, WorkingSetBytes: 3 << 20}
	mild := &Demand{RefsPerIns: 0.005, SoloMissRatio: 0.1, WorkingSetBytes: 3 << 20}
	fierce := &Demand{RefsPerIns: 0.08, SoloMissRatio: 0.3, WorkingSetBytes: 8 << 20}
	withMild := MissRatios(cfg(), []*Demand{victim, mild})[0]
	withFierce := MissRatios(cfg(), []*Demand{victim, fierce})[0]
	if withFierce <= withMild {
		t.Fatalf("fierce co-runner (%v) should hurt more than mild (%v)", withFierce, withMild)
	}
}

func TestMissRatiosBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		ds := make([]*Demand, n)
		for i := range ds {
			ds[i] = &Demand{
				RefsPerIns:      r.Float64() * 0.1,
				SoloMissRatio:   r.Float64(),
				WorkingSetBytes: r.Float64() * float64(32<<20),
			}
		}
		for i, m := range MissRatios(cfg(), ds) {
			if m < ds[i].SoloMissRatio-1e-12 || m > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMoreCoRunnersMonotoneProperty(t *testing.T) {
	// Adding a co-runner never improves anyone's miss ratio.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() *Demand {
			return &Demand{
				RefsPerIns:      0.001 + r.Float64()*0.1,
				SoloMissRatio:   r.Float64() * 0.5,
				WorkingSetBytes: 1e5 + r.Float64()*16e6,
			}
		}
		a, b, c := mk(), mk(), mk()
		two := MissRatios(cfg(), []*Demand{a, b})[0]
		three := MissRatios(cfg(), []*Demand{a, b, c})[0]
		return three >= two-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPenaltyFactor(t *testing.T) {
	c := cfg()
	if got := PenaltyFactor(c, 0); got != 1 {
		t.Fatalf("no traffic penalty = %v", got)
	}
	if got := PenaltyFactor(c, c.BandwidthKnee); got != 1 {
		t.Fatalf("at-knee penalty = %v", got)
	}
	above := PenaltyFactor(c, c.BandwidthKnee*3)
	if above <= 1 {
		t.Fatalf("above-knee penalty = %v, want > 1", above)
	}
	higher := PenaltyFactor(c, c.BandwidthKnee*5)
	if higher <= above {
		t.Fatal("penalty factor not monotone in traffic")
	}
}

func TestCPIComposition(t *testing.T) {
	c := cfg()
	base := CPI(c, 1.0, 0, 0, 1)
	if base != 1.0 {
		t.Fatalf("no-memory CPI = %v", base)
	}
	solo := CPI(c, 1.0, 0.04, 0.15, 1)
	if solo <= base {
		t.Fatal("memory activity should raise CPI")
	}
	contended := CPI(c, 1.0, 0.04, 0.5, 1.3)
	if contended <= solo {
		t.Fatal("contention should raise CPI further")
	}
}

func TestCPIMonotoneInMissRatioProperty(t *testing.T) {
	c := cfg()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		refs := r.Float64() * 0.1
		m1 := r.Float64()
		m2 := m1 + (1-m1)*r.Float64()
		pf := 1 + r.Float64()
		return CPI(c, 1, refs, m2, pf) >= CPI(c, 1, refs, m1, pf)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPollutionCost(t *testing.T) {
	c := cfg()
	cy0, _, _ := PollutionCost(c, 0, 1)
	if cy0 != 0 {
		t.Fatalf("zero working set pollution = %v", cy0)
	}
	small, _, _ := PollutionCost(c, 1<<20, 1)
	big, refs, misses := PollutionCost(c, 16<<20, 1)
	if big <= small {
		t.Fatal("bigger working set should cost more pollution")
	}
	// Pollution is capped by cache capacity.
	huge, _, _ := PollutionCost(c, 64<<20, 1)
	if huge != big {
		t.Fatalf("pollution should cap at capacity: %v vs %v", huge, big)
	}
	if refs != misses {
		t.Fatal("each refill line should be one ref and one miss")
	}
	// Worst case costs tens of microseconds at 3 GHz — substantial against
	// a 5 ms re-scheduling interval but far below the paper's adversarial
	// 12 ms microbenchmark bound.
	us := big / 3e9 * 1e6
	if us < 10 || us > 1000 {
		t.Fatalf("worst-case pollution = %.2f us, expected tens-of-us scale", us)
	}
}
