// Package cache models the shared on-chip L2 caches and the memory
// bandwidth of the simulated multicore machine.
//
// The paper's platform has two dual-core packages, each pair of cores
// sharing one 4 MB 16-way L2 cache (64-byte lines, 14-cycle latency), with a
// memory bus shared machine-wide. Inter-core sharing of these resources is
// what "obfuscates" request performance in the paper (Figure 1): co-running
// requests inflate each other's L2 miss ratios (capacity contention) and
// memory latency (bandwidth contention).
//
// Rather than simulating individual cache lines — which the paper's analyses
// never observe — the model is analytic: each core's running activity places
// a demand (working set × reference intensity) on its package's cache, the
// cache capacity is divided proportionally to demand, and a core whose share
// falls below its working set suffers a miss-ratio inflation. Total miss
// traffic above a knee inflates the effective memory penalty for everyone.
// This preserves exactly the behavior the paper's experiments key on:
// solo executions show each activity's inherent miss ratio, and co-running
// intensity monotonically degrades CPI, more for large-working-set
// memory-intensive activities (TPCH) and hardly at all for small-footprint
// compute-bound ones (WeBWorK).
package cache

import "math"

// Config describes one shared L2 cache and the machine's memory system.
type Config struct {
	// CapacityBytes is the shared L2 capacity per package (4 MB on the
	// paper's Xeon 5160).
	CapacityBytes float64
	// LineBytes is the cache line size (64 B).
	LineBytes float64
	// HitLatency is the L2 hit latency in cycles (14 on Woodcrest).
	HitLatency float64
	// MissPenalty is the baseline memory access penalty in cycles.
	MissPenalty float64
	// HitOverlap is the fraction of hit latency exposed in CPI after
	// out-of-order overlap.
	HitOverlap float64
	// MissOverlap is the fraction of miss penalty exposed in CPI.
	MissOverlap float64
	// StressScale converts capacity stress (the fraction of a working set
	// that does not fit in the core's cache share) into miss-ratio
	// inflation.
	StressScale float64
	// StressExponent shapes how quickly stress grows as share shrinks.
	StressExponent float64
	// BandwidthKnee is the machine-wide L2 miss traffic (misses per
	// instruction summed over running cores) above which the memory bus
	// saturates.
	BandwidthKnee float64
	// BandwidthSlope is the relative miss-penalty inflation per unit of
	// traffic above the knee, normalized by the knee.
	BandwidthSlope float64
}

// DefaultConfig returns parameters calibrated against the paper's Xeon 5160
// "Woodcrest" platform.
func DefaultConfig() Config {
	return Config{
		CapacityBytes:  4 << 20,
		LineBytes:      64,
		HitLatency:     14,
		MissPenalty:    250,
		HitOverlap:     0.35,
		MissOverlap:    0.70,
		StressScale:    0.42,
		StressExponent: 1.0,
		BandwidthKnee:  0.013,
		BandwidthSlope: 0.16,
	}
}

// Demand is one core's current load on its package's shared cache.
type Demand struct {
	// RefsPerIns is the activity's L2 references per instruction.
	RefsPerIns float64
	// SoloMissRatio is the L2 miss ratio the activity exhibits running
	// alone with the full cache.
	SoloMissRatio float64
	// WorkingSetBytes is the activity's working set size.
	WorkingSetBytes float64
}

// weight is the demand's claim on cache capacity: how much data it touches,
// scaled by how hard it touches it. A core with a big but cold footprint
// claims less than one streaming through the same footprint.
func (d Demand) weight(cfg Config) float64 {
	intensity := math.Sqrt(d.RefsPerIns) // diminishing returns on intensity
	return d.WorkingSetBytes * (0.25 + intensity)
}

// MissRatios returns the effective miss ratio for each demand when all of
// them co-run on one package sharing a cfg-shaped cache. nil entries in
// demands denote idle cores and produce 0.
func MissRatios(cfg Config, demands []*Demand) []float64 {
	out := make([]float64, len(demands))
	MissRatiosInto(cfg, demands, out)
	return out
}

// MissRatiosInto is MissRatios writing into a caller-provided slice, for
// hot paths (the machine re-derives rates on every activity change) that
// must not allocate. out must have len(demands) entries; entries for nil
// demands are set to 0.
func MissRatiosInto(cfg Config, demands []*Demand, out []float64) {
	var totalWeight, totalWS float64
	for _, d := range demands {
		if d == nil {
			continue
		}
		totalWeight += d.weight(cfg)
		totalWS += d.WorkingSetBytes
	}
	for i, d := range demands {
		if d == nil {
			out[i] = 0
			continue
		}
		out[i] = effectiveMiss(cfg, d, totalWeight, totalWS)
	}
}

func effectiveMiss(cfg Config, d *Demand, totalWeight, totalWS float64) float64 {
	m := d.SoloMissRatio
	if totalWS <= cfg.CapacityBytes || d.WorkingSetBytes <= 0 {
		// Everything fits: no capacity contention.
		return clampRatio(m)
	}
	share := cfg.CapacityBytes
	if totalWeight > 0 {
		share = cfg.CapacityBytes * d.weight(cfg) / totalWeight
	}
	// The solo miss ratio already reflects the part of the working set that
	// does not fit in the full cache; stress measures the additional
	// shortfall relative to what the activity could use solo.
	soloFit := math.Min(d.WorkingSetBytes, cfg.CapacityBytes)
	if share >= soloFit {
		return clampRatio(m)
	}
	stress := math.Pow(1-share/soloFit, cfg.StressExponent)
	return clampRatio(m + (1-m)*cfg.StressScale*stress)
}

func clampRatio(m float64) float64 {
	if m < 0 {
		return 0
	}
	if m > 1 {
		return 1
	}
	return m
}

// PenaltyFactor returns the machine-wide miss-penalty inflation given the
// total miss traffic (sum over running cores of refs/ins × effective miss
// ratio).
func PenaltyFactor(cfg Config, totalMissPerIns float64) float64 {
	if cfg.BandwidthKnee <= 0 || totalMissPerIns <= cfg.BandwidthKnee {
		return 1
	}
	return 1 + cfg.BandwidthSlope*(totalMissPerIns-cfg.BandwidthKnee)/cfg.BandwidthKnee
}

// CPI computes the cycles-per-instruction an activity achieves given its
// base (cache-independent) CPI, its L2 reference rate, its effective miss
// ratio, and the current penalty factor.
func CPI(cfg Config, baseCPI, refsPerIns, missRatio, penaltyFactor float64) float64 {
	hit := refsPerIns * (1 - missRatio) * cfg.HitLatency * cfg.HitOverlap
	miss := refsPerIns * missRatio * cfg.MissPenalty * cfg.MissOverlap * penaltyFactor
	return baseCPI + hit + miss
}

// PollutionCost estimates the cycles lost re-warming the cache after a
// context switch brings in an activity with the given working set: the
// lines it must refill, each paying the (current) miss penalty. The paper
// measured worst-case pollution above 12 ms; frequent re-scheduling must be
// charged for this (Section 5.2).
func PollutionCost(cfg Config, workingSetBytes, penaltyFactor float64) (cycles, refs, misses float64) {
	lines := math.Min(workingSetBytes, cfg.CapacityBytes) / cfg.LineBytes
	// Only a small fraction of the working set is both evicted while
	// descheduled and needed again promptly, and refills overlap with
	// execution; the paper's 12 ms figure is an adversarial microbenchmark
	// bound, not the common case.
	const refillFraction = 0.02
	refills := lines * refillFraction
	return refills * cfg.MissPenalty * cfg.MissOverlap * penaltyFactor, refills, refills
}
