// Package verify is the repository's deterministic verification engine.
// Every PR so far stakes its value on two claims — experiment outputs are
// bit-identical across repeats and GOMAXPROCS, and every fast path exactly
// matches its naive reference — and this package turns both claims into
// executable infrastructure:
//
//   - Golden fingerprints: each experiment's structured result is reduced
//     to a canonical line serialization (see Canonicalize) and hashed; a
//     committed corpus under testdata/golden records the expected
//     fingerprint and lines for a grid of (experiment, seed, scale) cells,
//     and Sweep re-runs the grid — in parallel, optionally across
//     GOMAXPROCS settings — and reports the first divergent field of any
//     cell that drifted.
//
//   - Differential checks: Differentials pairs each fast path with its
//     reference oracle over seeded random inputs (see differential.go).
//
//   - Fuzzing: native Go fuzz targets stress the same equivalences plus
//     the canonicalization itself (see fuzz_test.go).
package verify

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// Line is one leaf of a canonicalized value: a slash-separated path from
// the root and the leaf's formatted value. The full line stream, in emitted
// order, is the canonical serialization that fingerprints hash and diffs
// compare.
type Line struct {
	Path  string
	Value string
}

func (l Line) String() string { return l.Path + "\t" + l.Value }

// Canonicalize reduces a structured experiment result to its canonical
// line serialization. The normalization rules (documented in DESIGN.md §7):
//
//   - Struct fields are emitted in declaration order; unexported fields are
//     skipped (they are implementation detail, not output).
//   - Slices and arrays emit an explicit <path>/len line first, then their
//     elements as <path>/<index>, so a length change diverges before any
//     cascade of shifted elements.
//   - Maps emit <path>/len, then entries sorted by formatted key — map
//     iteration order never reaches the serialization.
//   - Floats are quantized to 12 significant decimal digits ('g' format).
//     Negative zero normalizes to "0"; NaN and infinities format as "NaN",
//     "+Inf", "-Inf".
//   - Pointers and interfaces are dereferenced; nil emits the value "nil".
//   - Strings are quoted with strconv.Quote, so values never contain a
//     bare tab (the path/value separator) or newline (the line separator).
//
// Channels, functions, and unsafe pointers have no canonical form and
// return an error: corpus types must be plain data.
func Canonicalize(v any) ([]Line, error) {
	c := &canonicalizer{seen: map[uintptr]bool{}}
	if err := c.walk(reflect.ValueOf(v), "result"); err != nil {
		return nil, err
	}
	return c.lines, nil
}

// Fingerprint hashes a value's canonical serialization into a short stable
// identifier ("sha256:" + first 16 hash bytes, hex). Two values fingerprint
// equally exactly when their canonical lines are identical.
func Fingerprint(v any) (string, error) {
	lines, err := Canonicalize(v)
	if err != nil {
		return "", err
	}
	return FingerprintLines(lines), nil
}

// FingerprintLines hashes an already-canonicalized line stream.
func FingerprintLines(lines []Line) string {
	h := sha256.New()
	for _, l := range lines {
		h.Write([]byte(l.Path))
		h.Write([]byte{'\t'})
		h.Write([]byte(l.Value))
		h.Write([]byte{'\n'})
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil)[:16])
}

type canonicalizer struct {
	lines []Line
	// seen guards against pointer cycles: the walk errors out rather than
	// recursing forever. Addresses are removed on exit so DAG sharing (two
	// fields aliasing one slice) stays legal.
	seen map[uintptr]bool
}

func (c *canonicalizer) emit(path, value string) {
	c.lines = append(c.lines, Line{Path: path, Value: value})
}

func (c *canonicalizer) walk(v reflect.Value, path string) error {
	if !v.IsValid() {
		c.emit(path, "nil")
		return nil
	}
	switch v.Kind() {
	case reflect.Bool:
		c.emit(path, strconv.FormatBool(v.Bool()))
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		c.emit(path, strconv.FormatInt(v.Int(), 10))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		c.emit(path, strconv.FormatUint(v.Uint(), 10))
	case reflect.Float32, reflect.Float64:
		c.emit(path, FormatFloat(v.Float()))
	case reflect.Complex64, reflect.Complex128:
		x := v.Complex()
		c.emit(path, FormatFloat(real(x))+"+"+FormatFloat(imag(x))+"i")
	case reflect.String:
		c.emit(path, strconv.Quote(v.String()))
	case reflect.Pointer:
		if v.IsNil() {
			c.emit(path, "nil")
			return nil
		}
		addr := v.Pointer()
		if c.seen[addr] {
			return fmt.Errorf("verify: pointer cycle at %s", path)
		}
		c.seen[addr] = true
		err := c.walk(v.Elem(), path)
		delete(c.seen, addr)
		return err
	case reflect.Interface:
		if v.IsNil() {
			c.emit(path, "nil")
			return nil
		}
		return c.walk(v.Elem(), path)
	case reflect.Slice, reflect.Array:
		c.emit(path+"/len", strconv.Itoa(v.Len()))
		for i := 0; i < v.Len(); i++ {
			if err := c.walk(v.Index(i), path+"/"+strconv.Itoa(i)); err != nil {
				return err
			}
		}
	case reflect.Map:
		c.emit(path+"/len", strconv.Itoa(v.Len()))
		keys := make([]mapKey, 0, v.Len())
		for _, k := range v.MapKeys() {
			keys = append(keys, mapKey{formatMapKey(k), k})
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].text < keys[j].text })
		for _, k := range keys {
			if err := c.walk(v.MapIndex(k.val), path+"/"+k.text); err != nil {
				return err
			}
		}
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			if err := c.walk(v.Field(i), path+"/"+f.Name); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("verify: cannot canonicalize %s at %s", v.Kind(), path)
	}
	return nil
}

type mapKey struct {
	text string
	val  reflect.Value
}

// formatMapKey renders a map key for path use: deterministic, tab- and
// newline-free. String keys quote only when they contain characters that
// would break the line format or path splitting.
func formatMapKey(k reflect.Value) string {
	switch k.Kind() {
	case reflect.String:
		s := k.String()
		if strings.ContainsAny(s, "\t\n/\\\"") || s == "" {
			return strconv.Quote(s)
		}
		return s
	case reflect.Float32, reflect.Float64:
		return FormatFloat(k.Float())
	default:
		return fmt.Sprint(k.Interface())
	}
}

// floatDigits is the quantization policy: floats are serialized with this
// many significant decimal digits. 12 digits distinguish any values whose
// relative difference exceeds ~1e-12 — far below anything an experiment
// legitimately reports — while absorbing nothing the engine computes
// (fingerprints are built from deterministic runs, so equal runs match
// bit for bit; the quantization only bounds the corpus's textual size).
const floatDigits = 12

// FormatFloat renders one float under the corpus quantization policy.
func FormatFloat(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	case f == 0:
		return "0" // negative zero normalizes
	}
	return strconv.FormatFloat(f, 'g', floatDigits, 64)
}
