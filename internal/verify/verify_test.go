package verify

import (
	"os"
	"strings"
	"testing"
)

type sample struct {
	Name   string
	Values []float64
	ByApp  map[string]float64
	Nested *sample
	hidden int // unexported: must not reach the serialization
}

func TestCanonicalizeShape(t *testing.T) {
	v := &sample{
		Name:   "web server", // space survives quoting
		Values: []float64{1.5, 0, -0.0, 3},
		ByApp:  map[string]float64{"b": 2, "a": 1},
		hidden: 99,
	}
	lines, err := Canonicalize(v)
	if err != nil {
		t.Fatal(err)
	}
	want := []Line{
		{"result/Name", `"web server"`},
		{"result/Values/len", "4"},
		{"result/Values/0", "1.5"},
		{"result/Values/1", "0"},
		{"result/Values/2", "0"}, // negative zero normalizes
		{"result/Values/3", "3"},
		{"result/ByApp/len", "2"},
		{"result/ByApp/a", "1"}, // map keys sorted, not insertion order
		{"result/ByApp/b", "2"},
		{"result/Nested", "nil"},
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d: %v", len(lines), len(want), lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %v, want %v", i, lines[i], want[i])
		}
	}
}

func TestCanonicalizeMapOrderIndependent(t *testing.T) {
	a := map[string]float64{}
	b := map[string]float64{}
	keys := []string{"x", "y", "z", "w", "q", "cpi", "l2"}
	for i, k := range keys {
		a[k] = float64(i)
	}
	for i := len(keys) - 1; i >= 0; i-- {
		b[keys[i]] = float64(i)
	}
	fa, err := Fingerprint(a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Fingerprint(b)
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Fatalf("insertion order changed the fingerprint: %s vs %s", fa, fb)
	}
}

func TestCanonicalizeRejectsCycles(t *testing.T) {
	v := &sample{}
	v.Nested = v
	if _, err := Canonicalize(v); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not rejected: %v", err)
	}
}

func TestCanonicalizeRejectsFuncs(t *testing.T) {
	if _, err := Canonicalize(struct{ F func() }{}); err == nil {
		t.Fatal("func field accepted")
	}
}

func TestFormatFloatPolicy(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.5",
		1e300:   "1e+300",
		-2.25:   "-2.25",
		1.0 / 3: "0.333333333333",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestDiffFirstDivergence(t *testing.T) {
	golden := []Line{{"a", "1"}, {"b", "2"}, {"c", "3"}}
	if d := Diff(golden, golden); d != nil {
		t.Fatalf("identical streams diverged: %v", d)
	}
	d := Diff(golden, []Line{{"a", "1"}, {"b", "9"}, {"c", "8"}})
	if d == nil || d.Index != 1 || d.Path != "b" || d.Golden != "2" || d.Got != "9" {
		t.Fatalf("value diff wrong: %+v", d)
	}
	if d := Diff(golden, golden[:2]); d == nil || d.Path != "c" || !strings.Contains(d.String(), "missing") {
		t.Fatalf("truncation diff wrong: %+v", d)
	}
	if d := Diff(golden[:2], golden); d == nil || d.Path != "c" || !strings.Contains(d.String(), "extra") {
		t.Fatalf("extension diff wrong: %+v", d)
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cell := Cell{Experiment: "fig1", Seed: 3, Scale: 0.25}
	lines := []Line{{"result/X", "1.5"}, {"result/S", `"a	b"`}}
	if err := WriteGolden(dir, cell, lines); err != nil {
		t.Fatal(err)
	}
	g, err := ReadGolden(dir, cell)
	if err != nil {
		t.Fatal(err)
	}
	if g.Fingerprint != FingerprintLines(lines) {
		t.Fatalf("fingerprint mismatch after round trip")
	}
	if len(g.Lines) != len(lines) || g.Lines[0] != lines[0] {
		t.Fatalf("lines mismatch: %v", g.Lines)
	}
	corpus, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Entries) != 1 || corpus.Entries[cell.Key()] == nil {
		t.Fatalf("corpus load missed the entry: %v", corpus.Keys())
	}
	if got := corpus.Entries[cell.Key()].Cell; got != cell {
		t.Fatalf("key round trip: %+v != %+v", got, cell)
	}
}

func TestReadGoldenDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	cell := Cell{Experiment: "fig1", Seed: 1, Scale: 0.05}
	if err := WriteGolden(dir, cell, []Line{{"result/X", "1"}}); err != nil {
		t.Fatal(err)
	}
	path := goldenPath(dir, cell)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(string(data), "result/X\t1", "result/X\t2", 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadGolden(dir, cell); err == nil || !strings.Contains(err.Error(), "corrupted") {
		t.Fatalf("hand-edited golden accepted: %v", err)
	}
}

func TestDefaultGridCoversRegistryAndProcs(t *testing.T) {
	grid := DefaultGrid()
	base := map[string]bool{}
	procs := map[string]map[int]bool{}
	for _, c := range grid {
		if c.Seed == 1 && c.Scale == 0.05 && c.Procs == 0 {
			base[c.Experiment] = true
		}
		if c.Procs > 0 {
			if procs[c.Experiment] == nil {
				procs[c.Experiment] = map[int]bool{}
			}
			procs[c.Experiment][c.Procs] = true
		}
	}
	if len(base) != 21 {
		t.Fatalf("base grid covers %d experiments, want all 21", len(base))
	}
	for _, name := range []string{"fig1", "fig7", "fig10", "fig12", "faultanomaly", "faultlocalize", "serve", "fleet", "schedlab"} {
		if !procs[name][1] || !procs[name][4] {
			t.Errorf("%s missing GOMAXPROCS={1,4} variants", name)
		}
	}
	// Every experiment — including the scheduling figures, which used to be
	// gated as too expensive — now carries the seed and scale spread.
	spread := map[string]int{}
	for _, c := range grid {
		if c.Procs == 0 {
			spread[c.Experiment]++
		}
	}
	for name, n := range spread {
		want := 3
		if name == "fig12" || name == "fig13" {
			want = 6 // the scheduler comparisons carry the widened spread
		}
		if n != want {
			t.Errorf("%s has %d seed/scale cells, want %d", name, n, want)
		}
	}
}

func TestFullGridIsOneFullScaleCellPerExperiment(t *testing.T) {
	grid := FullGrid()
	if len(grid) != 21 {
		t.Fatalf("full grid has %d cells, want one per experiment (21)", len(grid))
	}
	for _, c := range grid {
		if c.Seed != 1 || c.Scale != 1 || c.Procs != 0 {
			t.Fatalf("full grid cell %+v is not seed 1, scale 1, ambient procs", c)
		}
	}
}

// TestSweepRoundTrip drives the whole engine over two cheap cells: update
// mode writes the corpus, check mode verifies it, and GOMAXPROCS-pinned
// variants reproduce the same fingerprints.
func TestSweepRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cells := []Cell{
		{Experiment: "faultanomaly", Seed: 1, Scale: 0.05},
		{Experiment: "fig6", Seed: 1, Scale: 0.05},
		{Experiment: "faultanomaly", Seed: 1, Scale: 0.05, Procs: 1},
	}
	up, err := Sweep(cells, Options{Dir: dir, Update: true})
	if err != nil {
		t.Fatal(err)
	}
	if up.Updated != 2 {
		t.Fatalf("update wrote %d files, want 2 (procs variant shares its key)", up.Updated)
	}
	chk, err := Sweep(cells, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !chk.OK() {
		t.Fatalf("fresh corpus did not verify:\n%s", chk)
	}
	for _, r := range chk.Results {
		if r.Fingerprint != chk.Results[0].Fingerprint && r.Cell.Experiment == cells[0].Experiment {
			t.Fatalf("GOMAXPROCS variant changed the fingerprint: %+v", r)
		}
	}
}

// TestSweepReportsMissingAndStale: a cell without a golden entry reports
// MISS; a corpus file no grid cell references reports STALE.
func TestSweepReportsMissingAndStale(t *testing.T) {
	dir := t.TempDir()
	orphan := Cell{Experiment: "fig6", Seed: 9, Scale: 0.05}
	if err := WriteGolden(dir, orphan, []Line{{"result/X", "1"}}); err != nil {
		t.Fatal(err)
	}
	rep, err := Sweep([]Cell{{Experiment: "faultanomaly", Seed: 1, Scale: 0.05}}, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("sweep passed with a missing cell and a stale entry")
	}
	out := rep.String()
	if !strings.Contains(out, "MISS faultanomaly") || !strings.Contains(out, "STALE "+orphan.Key()) {
		t.Fatalf("report missing MISS/STALE markers:\n%s", out)
	}
}

// TestSweepDetectsPerturbedOutput is the acceptance demonstration: inject a
// perturbation into one experiment's recorded output and the sweep must
// fail with a diff naming the experiment and the first divergent field.
func TestSweepDetectsPerturbedOutput(t *testing.T) {
	dir := t.TempDir()
	cell := Cell{Experiment: "faultanomaly", Seed: 1, Scale: 0.05}
	if _, err := Sweep([]Cell{cell}, Options{Dir: dir, Update: true}); err != nil {
		t.Fatal(err)
	}
	g, err := ReadGolden(dir, cell)
	if err != nil {
		t.Fatal(err)
	}
	// The injected perturbation: one field of the experiment's output
	// changes value (as a silently buggy refactor would change it). The
	// golden file stands in for the old output; internal consistency is
	// preserved so only the real comparison can catch it.
	perturbed := append([]Line{}, g.Lines...)
	idx := -1
	for i, l := range perturbed {
		if strings.HasSuffix(l.Path, "/Eval/F1") {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatalf("faultanomaly output has no Eval/F1 field; lines: %d", len(perturbed))
	}
	perturbed[idx].Value = "0.123456789"
	if err := WriteGolden(dir, cell, perturbed); err != nil {
		t.Fatal(err)
	}
	rep, err := Sweep([]Cell{cell}, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	fails := rep.Failures()
	if len(fails) != 1 || fails[0].Diff == nil {
		t.Fatalf("perturbation not caught:\n%s", rep)
	}
	if d := fails[0].Diff; !strings.HasSuffix(d.Path, "/Eval/F1") || d.Golden != "0.123456789" {
		t.Fatalf("diff did not pinpoint the perturbed field: %+v", d)
	}
	out := rep.String()
	if !strings.Contains(out, "faultanomaly") || !strings.Contains(out, "Eval/F1") {
		t.Fatalf("failure report must name the experiment and divergent field:\n%s", out)
	}
}

// TestCommittedCorpusSubset spot-checks the committed corpus with the
// cheapest grid cells, so plain `go test` catches output drift early
// without paying for the full sweep (that is `make verify`).
func TestCommittedCorpusSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus subset check skipped in -short mode")
	}
	cells := []Cell{
		{Experiment: "table1", Seed: 1, Scale: 0.05},
		{Experiment: "fig6", Seed: 1, Scale: 0.05},
		{Experiment: "fig9", Seed: 1, Scale: 0.05},
		{Experiment: "table2", Seed: 1, Scale: 0.05},
		{Experiment: "faultanomaly", Seed: 1, Scale: 0.05},
	}
	rep, err := Sweep(cells, Options{Dir: "testdata/golden"})
	if err != nil {
		t.Fatal(err)
	}
	// The subset references few keys; every other committed entry is
	// expected and not stale.
	rep.Stale = nil
	if !rep.OK() {
		t.Fatalf("committed corpus drifted:\n%s\nIf the change is intentional, regenerate with `make golden`.", rep)
	}
}
