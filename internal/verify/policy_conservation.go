package verify

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/signature"
	"repro/internal/workload"
)

// checkPolicyConservation: every registered scheduling policy must conserve
// the workload. A policy only reorders execution — it must never duplicate,
// drop, or mutate a request — so for each policy in the sched registry the
// same closed loop must (a) complete every arrival exactly once, (b) execute
// the same total instruction stream as every other policy (cycles may
// differ: that is what contention policies change), and (c) replay to a
// bit-identical trace fingerprint on a second run.
func checkPolicyConservation(seed int64) error {
	app := workload.NewWebServer()
	const requests = 12
	sampl := core.DefaultSampling(app)
	sampl.DiscardSyscallEvents = true

	// Shared calibration for the policies that need a threshold or bank.
	calib, err := core.Run(core.Options{App: app, Requests: requests, Seed: seed},
		core.WithSampling(sampl))
	if err != nil {
		return fmt.Errorf("calibration: %w", err)
	}
	threshold := sched.HighUsageThreshold(calib.Store, 80)
	bank := signature.BuildCompact(calib.Store.Traces, metrics.L2RefsPerIns,
		core.BucketFor(app.Name()), 0, 4, seed)

	var refIns uint64
	var refPolicy string
	for _, name := range sched.PolicyNames() {
		run := func() (*core.Result, string, error) {
			res, err := core.Run(core.Options{
				App: app, Requests: requests, Seed: seed, Sampling: sampl,
				PolicyName: name, UsageThreshold: threshold, SignatureBank: bank,
			})
			if err != nil {
				return nil, "", err
			}
			lines, err := Canonicalize(res.Store)
			if err != nil {
				return nil, "", err
			}
			return res, FingerprintLines(lines), nil
		}
		res, fp, err := run()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if _, fp2, err := run(); err != nil {
			return fmt.Errorf("%s repeat: %w", name, err)
		} else if fp != fp2 {
			return fmt.Errorf("%s: trace fingerprint differs between repeats", name)
		}

		// Exactly-once completion: the trace count matches the arrivals and
		// no ID appears twice (traces are in completion order, so the first
		// duplicate found is deterministic).
		if res.Store.Len() != requests {
			return fmt.Errorf("%s: %d traced requests, want %d", name, res.Store.Len(), requests)
		}
		seen := make(map[uint64]bool, requests)
		var ins uint64
		for _, tr := range res.Store.Traces {
			if seen[tr.ID] {
				return fmt.Errorf("%s: request %d completed more than once", name, tr.ID)
			}
			seen[tr.ID] = true
			ins += tr.Instructions()
		}

		// Cross-policy conservation: the same total instruction stream. The
		// traced totals round at period boundaries, and different policies
		// cut periods at different context switches, so a couple of
		// instructions of slack per request is measurement noise; anything
		// beyond that means a policy changed what executed, not just when.
		tol := uint64(requests) * 4
		if refPolicy == "" {
			refIns, refPolicy = ins, name
		} else if d := diffU64(ins, refIns); d > tol {
			return fmt.Errorf("%s executed %d instructions, %s executed %d (Δ%d > %d) — a policy mutated the workload",
				name, ins, refPolicy, refIns, d, tol)
		}
	}
	return nil
}

func diffU64(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
