package verify

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Options tunes a verification sweep.
type Options struct {
	// Dir is the golden corpus directory.
	Dir string
	// Workers bounds the number of cells running concurrently; ≤0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Obs, when non-nil, records one span series per corpus key under
	// verify/cell/<key> (observed once per cell run, so GOMAXPROCS
	// variants of a key accumulate into the same series) plus
	// verify.cells.{pass,fail} counters.
	Obs *obs.Collector
	// Update regenerates the corpus from the fresh runs instead of
	// checking against it. Cells that disagree across GOMAXPROCS variants
	// still fail — a corpus must never be regenerated over a determinism
	// violation.
	Update bool
}

// CellResult is one cell's outcome.
type CellResult struct {
	Cell        Cell
	Fingerprint string
	// Err reports a run or canonicalization failure (including an unknown
	// experiment name).
	Err error
	// Missing is set in check mode when the corpus has no entry for the
	// cell — the signature of a newly added experiment or grid point.
	Missing bool
	// Diff is the first divergence from the golden entry, nil when the
	// cell matched (or Missing/Err preempted the comparison).
	Diff *Divergence
	// Wall is the cell's wall-clock run time (reporting only; it never
	// participates in fingerprints).
	Wall time.Duration
}

// OK reports whether the cell verified cleanly.
func (r CellResult) OK() bool { return r.Err == nil && !r.Missing && r.Diff == nil }

// Report is a sweep's aggregate outcome.
type Report struct {
	Results []CellResult
	// Stale lists corpus keys no grid cell references (check mode only):
	// leftovers from removed experiments or grid points.
	Stale []string
	// Removed lists stale golden files deleted during regeneration
	// (update mode only).
	Removed []string
	// Updated counts golden files rewritten (update mode only).
	Updated int
}

// Failures returns the cells that did not verify.
func (r *Report) Failures() []CellResult {
	var out []CellResult
	for _, c := range r.Results {
		if !c.OK() {
			out = append(out, c)
		}
	}
	return out
}

// OK reports whether every cell verified and no corpus entry is stale.
func (r *Report) OK() bool { return len(r.Failures()) == 0 && len(r.Stale) == 0 }

// String renders the human-readable sweep summary: one line per failure
// (experiment named, first divergent field quoted), then the tally.
func (r *Report) String() string {
	var b strings.Builder
	for _, c := range r.Results {
		switch {
		case c.Err != nil:
			fmt.Fprintf(&b, "FAIL %s: %v\n", c.Cell, c.Err)
		case c.Missing:
			fmt.Fprintf(&b, "MISS %s: no golden entry %s%s — run with -golden to record it\n",
				c.Cell, c.Cell.Key(), corpusExt)
		case c.Diff != nil:
			fmt.Fprintf(&b, "FAIL %s: %s\n", c.Cell, c.Diff)
		}
	}
	for _, k := range r.Stale {
		fmt.Fprintf(&b, "STALE %s%s: corpus entry matches no grid cell — delete it or re-run -golden\n", k, corpusExt)
	}
	pass := len(r.Results) - len(r.Failures())
	fmt.Fprintf(&b, "verify: %d/%d cells ok", pass, len(r.Results))
	if r.Updated > 0 {
		fmt.Fprintf(&b, ", %d golden files written", r.Updated)
	}
	if len(r.Removed) > 0 {
		fmt.Fprintf(&b, ", %d stale golden files removed", len(r.Removed))
	}
	if len(r.Stale) > 0 {
		fmt.Fprintf(&b, ", %d stale corpus entries", len(r.Stale))
	}
	b.WriteString("\n")
	return b.String()
}

// DefaultGrid is the standard verification grid: every registry experiment
// at seed 1 and the smoke scale; a seed×scale spread for the cheap ones;
// and GOMAXPROCS={1,4} variants for a representative subset, which assert
// that parallelism never reaches an output. The grid is derived from the
// live registry, so a newly added experiment fails verification (missing
// golden entry) until the corpus is regenerated.
func DefaultGrid() []Cell {
	const smoke = 0.05
	// procsSubset exercises the stacks with real internal parallelism: the
	// distance engine (fig7), the signature service (fig10), the kernel
	// exec loop (fig1), the distributed driver (faultanomaly), the
	// contention-easing run fan-out (fig12), the service-mode shard
	// workers (serve), the fleet package phase (fleet), causal-path
	// localization over the distributed driver (faultlocalize), and the
	// policy-race fan-out (schedlab) — the GOMAXPROCS=1 variant asserts
	// its concurrent simulations aggregate identically to a serial
	// execution.
	procsSubset := map[string]bool{
		"fig1": true, "fig7": true, "fig10": true, "fig12": true,
		"faultanomaly": true, "serve": true, "fleet": true,
		"faultlocalize": true, "schedlab": true,
	}
	// The scheduler comparisons (Figures 12–13) get a wider seed×scale
	// spread: their full-scale runs are interactive now, and the
	// contention-easing deltas are the numbers most sensitive to an
	// accidental behavior change.
	widened := map[string]bool{"fig12": true, "fig13": true}

	var grid []Cell
	for _, name := range experiments.Names() {
		grid = append(grid,
			Cell{Experiment: name, Seed: 1, Scale: smoke},
			Cell{Experiment: name, Seed: 2, Scale: smoke},
			Cell{Experiment: name, Seed: 1, Scale: 0.1},
		)
		if procsSubset[name] {
			grid = append(grid,
				Cell{Experiment: name, Seed: 1, Scale: smoke, Procs: 1},
				Cell{Experiment: name, Seed: 1, Scale: smoke, Procs: 4},
			)
		}
		if widened[name] {
			grid = append(grid,
				Cell{Experiment: name, Seed: 3, Scale: smoke},
				Cell{Experiment: name, Seed: 2, Scale: 0.1},
				Cell{Experiment: name, Seed: 1, Scale: 0.25},
			)
		}
	}
	return grid
}

// FullGrid is the full-evaluation tier: every registry experiment at seed 1
// and scale 1 — the configuration whose numbers the README quotes. One cell
// per experiment keeps the tier's cost a handful of minutes; the seed and
// scale spreads live in DefaultGrid. Its corpus is committed separately
// (testdata/golden-full) so the smoke and full tiers can be regenerated
// independently.
func FullGrid() []Cell {
	var grid []Cell
	for _, name := range experiments.Names() {
		grid = append(grid, Cell{Experiment: name, Seed: 1, Scale: 1})
	}
	return grid
}

// Sweep runs every grid cell and checks it against (or, with Update,
// rewrites) the golden corpus. Cells sharing a GOMAXPROCS setting run
// concurrently under a bounded worker pool; cells pinning different
// GOMAXPROCS values run as separate pool phases so the setting is stable
// while any cell that observes it is in flight.
func Sweep(cells []Cell, opt Options) (*Report, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var corpus *Corpus
	if !opt.Update {
		var err error
		corpus, err = LoadCorpus(opt.Dir)
		if errors.Is(err, fs.ErrNotExist) {
			corpus = &Corpus{Dir: opt.Dir, Entries: map[string]*Golden{}}
		} else if err != nil {
			return nil, err
		}
	}

	// Per-key span handles are resolved up front (Span takes the collector
	// lock; Observe is lock-free), so workers only touch atomics.
	spans := map[string]*obs.SpanSeries{}
	if opt.Obs != nil {
		for _, c := range cells {
			if _, ok := spans[c.Key()]; !ok {
				spans[c.Key()] = opt.Obs.Span("cell", c.Key())
			}
		}
	}
	passCt := opt.Obs.Counter("verify.cells.pass")
	failCt := opt.Obs.Counter("verify.cells.fail")

	rep := &Report{Results: make([]CellResult, len(cells))}
	lines := make([][]Line, len(cells))

	// Group cell indices by their GOMAXPROCS pin; the default group (0)
	// runs first under the ambient setting.
	groups := map[int][]int{}
	for i, c := range cells {
		groups[c.Procs] = append(groups[c.Procs], i)
	}
	procsOrder := make([]int, 0, len(groups))
	for p := range groups { // maporder:ok keys drained then sorted below
		procsOrder = append(procsOrder, p)
	}
	sort.Ints(procsOrder)

	runGroup := func(idxs []int) {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for _, i := range idxs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				cell := cells[i]
				start := time.Now()
				ls, fp, err := runCell(cell)
				res := CellResult{Cell: cell, Fingerprint: fp, Err: err, Wall: time.Since(start)}
				spans[cell.Key()].Observe(sim.Time(res.Wall.Nanoseconds()))
				if err == nil && !opt.Update {
					if g, ok := corpus.Entries[cell.Key()]; !ok {
						res.Missing = true
					} else if g.Fingerprint != fp {
						res.Diff = Diff(g.Lines, ls)
					}
				}
				lines[i] = ls
				rep.Results[i] = res
			}(i)
		}
		wg.Wait()
	}

	for _, p := range procsOrder {
		if p > 0 {
			prev := runtime.GOMAXPROCS(p)
			runGroup(groups[p])
			runtime.GOMAXPROCS(prev)
		} else {
			runGroup(groups[p])
		}
	}

	if opt.Update {
		if err := writeCorpus(opt.Dir, cells, lines, rep); err != nil {
			return nil, err
		}
	} else {
		live := map[string]bool{}
		for _, c := range cells {
			live[c.Key()] = true
		}
		for _, k := range corpus.Keys() {
			if !live[k] {
				rep.Stale = append(rep.Stale, k)
			}
		}
	}
	for _, r := range rep.Results {
		if r.OK() {
			passCt.Add(1)
		} else {
			failCt.Add(1)
		}
	}
	return rep, nil
}

// writeCorpus records update-mode results, one golden file per corpus key.
// GOMAXPROCS variants of a key must agree with its canonical (Procs == 0)
// run before anything is written; a disagreement is a determinism violation
// and marks the variant cell failed instead of silently picking a winner.
func writeCorpus(dir string, cells []Cell, lines [][]Line, rep *Report) error {
	byKey := map[string]int{} // key → index of the canonical run
	for i, c := range cells {
		if rep.Results[i].Err != nil {
			continue
		}
		j, ok := byKey[c.Key()]
		if !ok {
			byKey[c.Key()] = i
			continue
		}
		if rep.Results[j].Fingerprint != rep.Results[i].Fingerprint {
			rep.Results[i].Diff = Diff(lines[j], lines[i])
			rep.Results[i].Err = fmt.Errorf("output differs across GOMAXPROCS variants of %s: %s",
				cells[j], rep.Results[i].Diff)
		}
	}
	for i, c := range cells {
		if byKey[c.Key()] != i || rep.Results[i].Err != nil {
			continue
		}
		cell := c
		cell.Procs = 0
		if err := WriteGolden(dir, cell, lines[i]); err != nil {
			return err
		}
		rep.Updated++
	}
	// Regeneration owns the directory: golden files for keys the grid no
	// longer produces are removed so stale entries cannot accumulate.
	if prior, err := LoadCorpus(dir); err == nil {
		for _, k := range prior.Keys() {
			if _, live := byKey[k]; !live {
				if err := os.Remove(goldenPath(dir, prior.Entries[k].Cell)); err != nil {
					return err
				}
				rep.Removed = append(rep.Removed, k)
			}
		}
	}
	return nil
}

// runCell executes one cell and canonicalizes its result. The run is
// uninstrumented (results are identical either way; see package obs) — the
// sweep's own collector times the cell from outside.
func runCell(c Cell) ([]Line, string, error) {
	e, ok := experiments.Lookup(c.Experiment)
	if !ok {
		return nil, "", fmt.Errorf("unknown experiment %q (valid: %s)",
			c.Experiment, strings.Join(experiments.Names(), ","))
	}
	res, err := e.Run(experiments.Config{Seed: c.Seed, Scale: c.Scale})
	if err != nil {
		return nil, "", err
	}
	ls, err := Canonicalize(res)
	if err != nil {
		return nil, "", err
	}
	return ls, FingerprintLines(ls), nil
}
