package verify

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Cell identifies one verification run: an experiment at a seed and scale,
// optionally pinned to a GOMAXPROCS setting. Procs is not part of the
// corpus key — determinism across GOMAXPROCS is the claim under test, so
// cells differing only in Procs must reproduce the same fingerprint and
// compare against the same golden file.
type Cell struct {
	Experiment string
	Seed       int64
	Scale      float64
	// Procs, when positive, runs the cell under that GOMAXPROCS setting;
	// zero inherits the process default.
	Procs int
}

// Key is the cell's corpus identity (and golden file basename).
func (c Cell) Key() string {
	return fmt.Sprintf("%s_seed%d_scale%s", c.Experiment, c.Seed, FormatFloat(c.Scale))
}

func (c Cell) String() string {
	if c.Procs > 0 {
		return fmt.Sprintf("%s seed=%d scale=%s procs=%d", c.Experiment, c.Seed, FormatFloat(c.Scale), c.Procs)
	}
	return fmt.Sprintf("%s seed=%d scale=%s", c.Experiment, c.Seed, FormatFloat(c.Scale))
}

// Golden is one committed corpus entry: a cell's expected fingerprint and
// canonical lines.
type Golden struct {
	Cell        Cell
	Fingerprint string
	Lines       []Line
}

// Corpus is a loaded golden directory, keyed by Cell.Key.
type Corpus struct {
	Dir     string
	Entries map[string]*Golden
}

const (
	corpusExt    = ".golden"
	corpusHeader = "# rbv golden fingerprint v1"
)

// goldenPath returns the file a cell's golden entry lives in.
func goldenPath(dir string, c Cell) string {
	return filepath.Join(dir, c.Key()+corpusExt)
}

// WriteGolden writes one cell's canonical lines (and fingerprint header)
// into the corpus directory, creating it as needed.
func WriteGolden(dir string, c Cell, lines []Line) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", corpusHeader)
	fmt.Fprintf(&b, "# cell: %s seed=%d scale=%s\n", c.Experiment, c.Seed, FormatFloat(c.Scale))
	fmt.Fprintf(&b, "# fingerprint: %s\n", FingerprintLines(lines))
	for _, l := range lines {
		b.WriteString(l.Path)
		b.WriteByte('\t')
		b.WriteString(l.Value)
		b.WriteByte('\n')
	}
	return os.WriteFile(goldenPath(dir, c), []byte(b.String()), 0o644)
}

// ReadGolden loads one cell's committed entry.
func ReadGolden(dir string, c Cell) (*Golden, error) {
	f, err := os.Open(goldenPath(dir, c))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g := &Golden{Cell: c}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# fingerprint: "); ok {
				g.Fingerprint = rest
			}
			continue
		}
		if line == "" {
			continue
		}
		path, value, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("verify: %s: malformed line %q", goldenPath(dir, c), line)
		}
		g.Lines = append(g.Lines, Line{Path: path, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if got := FingerprintLines(g.Lines); g.Fingerprint != got {
		return nil, fmt.Errorf("verify: %s: header fingerprint %s does not match its own lines (%s) — file corrupted or hand-edited",
			goldenPath(dir, c), g.Fingerprint, got)
	}
	return g, nil
}

// LoadCorpus reads every golden file in dir. Unknown cells (files whose key
// no grid cell references) are fine at this layer; Sweep reports them as
// stale when asked.
func LoadCorpus(dir string) (*Corpus, error) {
	corpus := &Corpus{Dir: dir, Entries: map[string]*Golden{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, corpusExt) {
			continue
		}
		key := strings.TrimSuffix(name, corpusExt)
		cell, err := parseKey(key)
		if err != nil {
			return nil, fmt.Errorf("verify: %s: %w", name, err)
		}
		g, err := ReadGolden(dir, cell)
		if err != nil {
			return nil, err
		}
		corpus.Entries[key] = g
	}
	return corpus, nil
}

// Keys returns the corpus's cell keys, sorted.
func (c *Corpus) Keys() []string {
	keys := make([]string, 0, len(c.Entries))
	for k := range c.Entries { // maporder:ok sorted immediately below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// parseKey inverts Cell.Key for corpus loading.
func parseKey(key string) (Cell, error) {
	i := strings.LastIndex(key, "_seed")
	j := strings.LastIndex(key, "_scale")
	if i < 0 || j < i {
		return Cell{}, fmt.Errorf("malformed corpus key %q", key)
	}
	var cell Cell
	cell.Experiment = key[:i]
	if _, err := fmt.Sscanf(key[i:j], "_seed%d", &cell.Seed); err != nil {
		return Cell{}, fmt.Errorf("malformed corpus key %q: %v", key, err)
	}
	if _, err := fmt.Sscanf(key[j:], "_scale%g", &cell.Scale); err != nil {
		return Cell{}, fmt.Errorf("malformed corpus key %q: %v", key, err)
	}
	return cell, nil
}

// Divergence pinpoints the first difference between a cell's fresh run and
// its golden entry.
type Divergence struct {
	// Index is the 0-based line position where the streams first differ.
	Index int
	// Path is the divergent field (the golden line's when present, else
	// the fresh run's).
	Path string
	// Golden and Got are the differing rendered values; an empty Golden
	// with a non-empty Got means the fresh run emitted extra lines, and
	// vice versa.
	Golden, Got string
	// GoldenPath is set (and differs from Path) when the two streams
	// diverge structurally — different fields at the same position.
	GoldenPath string
}

func (d *Divergence) String() string {
	switch {
	case d.Golden == "" && d.GoldenPath == "":
		return fmt.Sprintf("line %d: extra output %s = %s (golden ends earlier)", d.Index+1, d.Path, d.Got)
	case d.Got == "" && d.Path == d.GoldenPath:
		return fmt.Sprintf("line %d: missing output %s = %s (run ends earlier)", d.Index+1, d.GoldenPath, d.Golden)
	case d.GoldenPath != "" && d.GoldenPath != d.Path:
		return fmt.Sprintf("line %d: structure changed: golden has %s = %s, run has %s = %s",
			d.Index+1, d.GoldenPath, d.Golden, d.Path, d.Got)
	default:
		return fmt.Sprintf("line %d: %s: golden %s, got %s", d.Index+1, d.Path, d.Golden, d.Got)
	}
}

// Diff locates the first divergence between golden and fresh canonical
// lines, or nil when they are identical.
func Diff(golden, got []Line) *Divergence {
	n := len(golden)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		g, r := golden[i], got[i]
		if g.Path == r.Path && g.Value == r.Value {
			continue
		}
		d := &Divergence{Index: i, Path: r.Path, Got: r.Value, Golden: g.Value}
		if g.Path != r.Path {
			d.GoldenPath = g.Path
		}
		return d
	}
	if len(got) > n {
		return &Divergence{Index: n, Path: got[n].Path, Got: got[n].Value}
	}
	if len(golden) > n {
		return &Divergence{Index: n, Path: golden[n].Path, GoldenPath: golden[n].Path, Golden: golden[n].Value}
	}
	return nil
}
