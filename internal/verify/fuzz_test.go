package verify

import (
	"math"
	"strings"
	"testing"

	"repro/internal/distance"
	"repro/internal/machine"
	"repro/internal/signature"
	"repro/internal/workload"
)

// The fuzz targets stress the same equivalences the differential suite
// samples, but with adversarial inputs: arbitrary lengths (empty sequences
// included), arbitrary band widths, banks whose entries tie or truncate.
// CI runs each under a short smoke budget (`make fuzz`); the checked-in
// seed corpus below keeps plain `go test` exercising the properties too.

// fuzzSeq decodes fuzz bytes into a bounded non-negative sequence: one
// value per byte, so the fuzzer controls length and shape byte by byte.
func fuzzSeq(data []byte, maxLen int) []float64 {
	if len(data) > maxLen {
		data = data[:maxLen]
	}
	s := make([]float64, len(data))
	for i, b := range data {
		s[i] = float64(b) / 16
	}
	return s
}

// FuzzDTW checks three DTW invariants for arbitrary sequences, penalties,
// and band widths: a band covering the grid is bit-identical to the exact
// distance; any band is an upper bound on it (paths are only forbidden,
// never added); and the distance is symmetric.
func FuzzDTW(f *testing.F) {
	f.Add([]byte{0, 16, 32}, []byte{32, 16, 0}, uint8(1), uint8(8))
	f.Add([]byte{}, []byte{200, 3}, uint8(0), uint8(0))
	f.Add([]byte{5}, []byte{5, 5, 5, 5, 5, 5, 5, 5}, uint8(2), uint8(16))
	f.Fuzz(func(t *testing.T, xb, yb []byte, window, penalty uint8) {
		x, y := fuzzSeq(xb, 64), fuzzSeq(yb, 64)
		pen := float64(penalty) / 32
		exact := distance.DTW{AsyncPenalty: pen}
		e := exact.Distance(x, y)

		m := len(x)
		if len(y) > m {
			m = len(y)
		}
		full := distance.DTW{AsyncPenalty: pen, Window: m + 1}
		if fb := full.Distance(x, y); math.Float64bits(fb) != math.Float64bits(e) {
			t.Fatalf("full band (w=%d) %v != exact %v (len %d,%d)", m+1, fb, e, len(x), len(y))
		}
		if w := int(window); w > 0 {
			banded := distance.DTW{AsyncPenalty: pen, Window: w}
			if b := banded.Distance(x, y); b < e {
				t.Fatalf("band w=%d produced %v below the unconstrained %v", w, b, e)
			}
		}
		if s := exact.Distance(y, x); math.Float64bits(s) != math.Float64bits(e) {
			t.Fatalf("asymmetric: d(x,y)=%v d(y,x)=%v", e, s)
		}
	})
}

// FuzzSignatureMatch checks that the incremental Session reports the same
// best index as the naive full rescan after every single-bucket extension,
// for arbitrary banks (entry lengths chosen by the fuzzer, duplicates
// possible) and arbitrary prefixes.
func FuzzSignatureMatch(f *testing.F) {
	f.Add([]byte{4, 1, 2, 3, 4, 2, 9, 9, 0}, []byte{1, 2, 3, 4, 5})
	f.Add([]byte{0, 3, 7, 7, 7}, []byte{7, 7})
	f.Add([]byte{1, 200, 1, 200}, []byte{})
	f.Fuzz(func(t *testing.T, bankBytes, prefixBytes []byte) {
		// Bank encoding: [len][len bytes of pattern]... repeated; a zero
		// length makes an empty-pattern entry (legal: it can never explain
		// any bucket, so it pays the prefix's own values).
		bank := &signature.Bank{BucketIns: 1e6}
		for i := 0; i < len(bankBytes) && len(bank.Entries) < 16; {
			n := int(bankBytes[i] % 12)
			i++
			end := i + n
			if end > len(bankBytes) {
				end = len(bankBytes)
			}
			bank.Entries = append(bank.Entries, signature.Entry{
				Pattern:   fuzzSeq(bankBytes[i:end], 12),
				CPUTimeNs: float64(n) * 1e6,
			})
			i = end
		}
		bank.ThresholdNs = 4e6
		s := signature.NewMatcher(bank).NewSession()
		var prefix []float64
		for _, b := range fuzzSeq(prefixBytes, 48) {
			prefix = append(prefix, b)
			s.Extend(b)
			if got, want := s.Best(), bank.IdentifyPattern(prefix); got != want {
				t.Fatalf("prefix len %d: session best %d, naive %d", len(prefix), got, want)
			}
		}
	})
}

// FuzzStreamSpec checks the stream-spec parser (the service mode's config
// surface) on arbitrary input: it must never panic, and every accepted
// spec must satisfy the round-trip property — the parsed config validates,
// renders back through String, and re-parses to an identical config, with
// both renderings byte-equal (String is a canonical form).
func FuzzStreamSpec(f *testing.F) {
	f.Add("rate=800000;mix=webserver:4,tpcc:2,rubis:2;period=50ms:0.3,330ms:0.25:0.5;burst=100ms+40ms*2.5;drift=0.01;seed=1")
	f.Add("rate=1;mix=webserver:1")
	f.Add("rate=1e9;mix=tpch:0.5;period=1h:1:0.999;burst=0s+1ns*1000")
	f.Add("rate=5;;mix= rubis : 2 ;drift=-1")
	f.Add("rate=inf;mix=webserver:nan")
	f.Fuzz(func(t *testing.T, spec string) {
		c, err := workload.ParseStream(spec)
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("accepted spec %q fails Validate: %v", spec, verr)
		}
		s1 := c.String()
		c2, err := workload.ParseStream(s1)
		if err != nil {
			t.Fatalf("canonical form %q of %q rejected: %v", s1, spec, err)
		}
		if s2 := c2.String(); s2 != s1 {
			t.Fatalf("round trip unstable:\n first %q\nsecond %q", s1, s2)
		}
	})
}

// FuzzFingerprintStability checks the canonicalization's own guarantees:
// fingerprinting is deterministic, independent of map insertion order, and
// emits a parseable line format (exactly one path, tab, value per line; no
// raw newlines or tabs leak out of quoted strings).
func FuzzFingerprintStability(f *testing.F) {
	f.Add([]byte{1, 2, 3}, "app\tname\n")
	f.Add([]byte{}, "")
	f.Add([]byte{255, 0, 128}, "Ω non-ascii / slash")
	f.Fuzz(func(t *testing.T, nums []byte, s string) {
		type inner struct {
			Tag  string
			Vals []float64
		}
		vals := fuzzSeq(nums, 32)
		fwd := map[string]inner{}
		rev := map[string]inner{}
		keys := []string{s, s + "x", "k\t" + s, "", "plain"}
		for i, k := range keys {
			v := inner{Tag: s, Vals: append([]float64{float64(i)}, vals...)}
			fwd[k] = v
		}
		for i := len(keys) - 1; i >= 0; i-- {
			rev[keys[i]] = fwd[keys[i]]
		}
		fa, err := Fingerprint(fwd)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := Fingerprint(rev)
		if err != nil {
			t.Fatal(err)
		}
		if fa != fb {
			t.Fatalf("map insertion order changed fingerprint: %s vs %s", fa, fb)
		}
		again, err := Fingerprint(fwd)
		if err != nil {
			t.Fatal(err)
		}
		if fa != again {
			t.Fatalf("fingerprint unstable across calls: %s vs %s", fa, again)
		}
		lines, err := Canonicalize(fwd)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range lines {
			if strings.ContainsAny(l.Path, "\t\n") {
				t.Fatalf("path %q contains separator bytes", l.Path)
			}
			if strings.Contains(l.Value, "\n") {
				t.Fatalf("value %q contains a newline", l.Value)
			}
		}
	})
}

// FuzzTopologySpec checks the machine-topology parser (the fleet's config
// surface) the same way FuzzStreamSpec checks the stream parser: arbitrary
// input must never panic, and every accepted spec must validate and
// round-trip through String to an identical topology with a stable
// canonical rendering. The fleet form ("/"-separated nodes) must satisfy
// the same property through ParseFleet/FleetString.
func FuzzTopologySpec(f *testing.F) {
	f.Add("pkg=2,2")
	f.Add("cores=16;per=4")
	f.Add("pkg=2:0.8,4:1.2:8;clock=2.5")
	f.Add("pkg=1:0.5:0.125,3:1:8")
	f.Add("cores=1")
	f.Add("pkg=2,2/pkg=4:0.85/pkg=4:1.15:8,4:1.15:8")
	f.Add("pkg=1e3:inf;clock=nan")
	f.Fuzz(func(t *testing.T, spec string) {
		if topo, err := machine.ParseTopology(spec); err == nil {
			if verr := topo.Validate(); verr != nil {
				t.Fatalf("accepted spec %q fails Validate: %v", spec, verr)
			}
			s1 := topo.String()
			topo2, err := machine.ParseTopology(s1)
			if err != nil {
				t.Fatalf("canonical form %q of %q rejected: %v", s1, spec, err)
			}
			if !topo.Equal(topo2) {
				t.Fatalf("round trip changed the topology: %q -> %#v vs %#v", spec, topo, topo2)
			}
			if s2 := topo2.String(); s2 != s1 {
				t.Fatalf("round trip unstable:\n first %q\nsecond %q", s1, s2)
			}
		}
		if fleet, err := machine.ParseFleet(spec); err == nil {
			s1 := machine.FleetString(fleet)
			fleet2, err := machine.ParseFleet(s1)
			if err != nil {
				t.Fatalf("canonical fleet %q of %q rejected: %v", s1, spec, err)
			}
			if s2 := machine.FleetString(fleet2); s2 != s1 {
				t.Fatalf("fleet round trip unstable:\n first %q\nsecond %q", s1, s2)
			}
		}
	})
}
