package verify

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/distance"
	"repro/internal/fault"
	"repro/internal/signature"
)

// Differential is one fast-path/oracle equivalence check. Check runs a
// seeded randomized trial and returns an error describing the first
// mismatch between the optimized implementation and its naive reference;
// equal seeds replay equal trials, so a failure reported by CI reproduces
// locally from its seed alone.
type Differential struct {
	Name string
	// Check must be safe to call concurrently with other Check calls (the
	// suite runs under -race at several GOMAXPROCS settings).
	Check func(seed int64) error
}

// Differentials pairs every fast path in the repository with its reference
// oracle. The suite is the authoritative list — tests range over it, so a
// new fast path earns continuous differential coverage by adding one entry
// here.
func Differentials() []Differential {
	return []Differential{
		{Name: "matrix/parallel-vs-serial", Check: checkMatrixParallel},
		{Name: "dtw/banded-vs-exact", Check: checkDTWBand},
		{Name: "signature/session-vs-naive", Check: checkSessionNaive},
		{Name: "signature/service-vs-naive", Check: checkServiceNaive},
		{Name: "pastrequests/ring-vs-recompute", Check: checkPastRequests},
		{Name: "fault/evaluate-vs-bruteforce", Check: checkFaultEvaluate},
		{Name: "causal/localizer-vs-bruteforce", Check: checkCausalLocalize},
		{Name: "sched/policy-conservation", Check: checkPolicyConservation},
	}
}

// randSeq draws a length-n sequence of non-negative values shaped like the
// resampled metric patterns the real pipeline produces.
func randSeq(r *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 4 * r.Float64()
		if r.Intn(8) == 0 {
			s[i] *= 10 // occasional spike, like a pollution burst
		}
	}
	return s
}

// checkMatrixParallel: the parallel triangular fill must be bit-identical
// to a serial fill of the same population under the same measure.
func checkMatrixParallel(seed int64) error {
	r := rand.New(rand.NewSource(seed))
	n := 12 + r.Intn(30)
	seqs := make([][]float64, n)
	for i := range seqs {
		seqs[i] = randSeq(r, 5+r.Intn(40))
	}
	d := distance.DTW{AsyncPenalty: r.Float64()}
	serial := distance.NewMatrixFromSequences(seqs, d, distance.MatrixOptions{Workers: 1})
	par := distance.NewMatrixFromSequences(seqs, d, distance.MatrixOptions{
		Workers:  2 + r.Intn(7),
		RowBlock: 1 + r.Intn(4),
	})
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if s, p := serial.At(i, j), par.At(i, j); math.Float64bits(s) != math.Float64bits(p) {
				return fmt.Errorf("cell (%d,%d): serial %v, parallel %v", i, j, s, p)
			}
		}
	}
	return nil
}

// checkDTWBand: a Sakoe-Chiba band covering the whole DP grid must be
// bit-identical to the unconstrained distance, for every pair of a small
// random population (empty sequences included — their early returns bypass
// the band entirely and must stay consistent).
func checkDTWBand(seed int64) error {
	r := rand.New(rand.NewSource(seed))
	pool := make([][]float64, 8)
	for i := range pool {
		pool[i] = randSeq(r, r.Intn(30)) // Intn(30) can be 0: empty sequence
	}
	penalty := r.Float64()
	exact := distance.DTW{AsyncPenalty: penalty}
	for i := range pool {
		for j := range pool {
			x, y := pool[i], pool[j]
			m := len(x)
			if len(y) > m {
				m = len(y)
			}
			full := distance.DTW{AsyncPenalty: penalty, Window: m} // ≥ max(m,n)−1: covers the grid
			e, b := exact.Distance(x, y), full.Distance(x, y)
			if math.Float64bits(e) != math.Float64bits(b) {
				return fmt.Errorf("pair (%d,%d) len (%d,%d): exact %v, full-band %v", i, j, len(x), len(y), e, b)
			}
		}
	}
	return nil
}

// randBank builds a bank of random signature patterns, with deliberate
// duplicates so tie-breaking is exercised (naive adoption is strict <, so
// the lowest index wins a tie — the fast path must reproduce that).
func randBank(r *rand.Rand) *signature.Bank {
	b := &signature.Bank{BucketIns: 1e6}
	n := 3 + r.Intn(20)
	for i := 0; i < n; i++ {
		var pat []float64
		if i > 0 && r.Intn(5) == 0 {
			pat = append([]float64{}, b.Entries[r.Intn(i)].Pattern...) // duplicate: forces a tie
		} else {
			pat = randSeq(r, r.Intn(24)) // may be empty or shorter than prefixes
		}
		b.Entries = append(b.Entries, signature.Entry{
			Pattern:   pat,
			CPUTimeNs: r.Float64() * 1e7,
		})
	}
	b.ThresholdNs = 5e6
	return b
}

// checkSessionNaive: a Session's incremental Best must equal the naive
// IdentifyPattern rescan after every extension, including mid-request
// prefix rewrites (Update with a changed bucket forces the rebuild path).
func checkSessionNaive(seed int64) error {
	r := rand.New(rand.NewSource(seed))
	bank := randBank(r)
	m := signature.NewMatcher(bank)
	s := m.NewSession()
	var prefix []float64
	for step := 0; step < 30; step++ {
		if r.Intn(10) == 0 && len(prefix) > 0 {
			// Resampling revised an already-observed bucket: rebuild.
			prefix = append([]float64{}, prefix...)
			prefix[r.Intn(len(prefix))] += r.Float64()
			s.Update(prefix)
		} else {
			delta := randSeq(r, 1+r.Intn(3))
			prefix = append(prefix, delta...)
			s.Extend(delta...)
		}
		want := bank.IdentifyPattern(prefix)
		if got := s.Best(); got != want {
			return fmt.Errorf("step %d (prefix %d): session best %d, naive %d", step, len(prefix), got, want)
		}
		if wantHigh := bank.PredictHighUsage(prefix); s.PredictHigh() != wantHigh {
			return fmt.Errorf("step %d: session PredictHigh %v, naive %v", step, s.PredictHigh(), wantHigh)
		}
	}
	return nil
}

// checkServiceNaive: the sharded concurrent Service must agree with the
// naive rescan for every in-flight request, with interleaved observations
// from several goroutines.
func checkServiceNaive(seed int64) error {
	r := rand.New(rand.NewSource(seed))
	bank := randBank(r)
	svc := signature.NewService(signature.NewMatcher(bank), 4)
	const requests = 24
	prefixes := make([][]float64, requests)
	steps := make([][][]float64, requests)
	for id := range steps {
		n := 1 + r.Intn(8)
		for s := 0; s < n; s++ {
			d := randSeq(r, 1+r.Intn(3))
			steps[id] = append(steps[id], d)
			prefixes[id] = append(prefixes[id], d...)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, requests)
	for id := 0; id < requests; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for _, d := range steps[id] {
				svc.Observe(uint64(id), d...)
			}
			want := bank.IdentifyPattern(prefixes[id])
			if got := svc.Best(uint64(id)); got != want {
				errs[id] = fmt.Errorf("request %d: service best %d, naive %d", id, got, want)
			}
			svc.Finish(uint64(id))
		}(id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if live := svc.Live(); live != 0 {
		return fmt.Errorf("service leaked %d sessions", live)
	}
	return nil
}

// checkPastRequests: the O(1) ring-plus-running-sum predictor must agree
// with a from-scratch mean over the trailing window after every
// observation.
func checkPastRequests(seed int64) error {
	r := rand.New(rand.NewSource(seed))
	size := 1 + r.Intn(12)
	p := signature.NewPastRequests(size)
	threshold := 5e6
	var history []float64
	for step := 0; step < 200; step++ {
		cpu := r.Float64() * 1e7
		p.Observe(cpu)
		history = append(history, cpu)
		window := history
		if len(window) > size {
			window = window[len(window)-size:]
		}
		var sum float64
		for _, v := range window {
			sum += v
		}
		want := sum/float64(len(window)) > threshold
		if got := p.PredictHigh(threshold); got != want {
			return fmt.Errorf("step %d (window %d): ring %v, recompute %v", step, len(window), got, want)
		}
	}
	return nil
}

// checkFaultEvaluate: precision/recall/F1 from fault.Evaluate must match a
// brute-force recount over explicit set intersections, including the
// empty-truth conventions.
func checkFaultEvaluate(seed int64) error {
	r := rand.New(rand.NewSource(seed))
	randSet := func() map[uint64]bool {
		s := map[uint64]bool{}
		for n := r.Intn(40); n > 0; n-- {
			s[uint64(r.Intn(50))] = true
		}
		return s
	}
	for trial := 0; trial < 20; trial++ {
		pred, truth := randSet(), randSet()
		switch trial {
		case 0:
			pred, truth = map[uint64]bool{}, map[uint64]bool{} // both-empty convention: perfect score
		case 1:
			truth = map[uint64]bool{} // nothing to find, false alarms only
		case 2:
			pred = map[uint64]bool{} // everything missed
		}
		got := fault.Evaluate(pred, truth)
		var tp int
		for id := range pred { // maporder:ok per-key tally, order-free sum
			if truth[id] {
				tp++
			}
		}
		want := fault.Eval{TruePositives: tp, FalsePositives: len(pred) - tp, FalseNegatives: len(truth) - tp}
		want.Precision, want.Recall, want.F1 = prf(tp, len(pred), len(truth))
		if got != want {
			return fmt.Errorf("trial %d: Evaluate %+v, brute force %+v", trial, got, want)
		}
	}
	return nil
}

// prf computes precision/recall/F1 from the set sizes, as an independent
// reimplementation of fault.Evaluate's arithmetic and its documented
// empty-set conventions: nothing to find scores recall 1 regardless of
// claims, and claiming nothing is perfect precision only when there was
// nothing to find.
func prf(tp, predicted, truth int) (p, rec, f1 float64) {
	switch {
	case predicted > 0:
		p = float64(tp) / float64(predicted)
	case truth == 0:
		p = 1
	}
	if truth == 0 {
		rec = 1
	} else {
		rec = float64(tp) / float64(truth)
	}
	if p+rec > 0 {
		f1 = 2 * p * rec / (p + rec)
	}
	return p, rec, f1
}
