package verify

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// differentialSeeds is the per-check trial budget: every differential runs
// each seed, so a CI failure names the (check, seed) pair that reproduces
// it locally.
const differentialSeeds = 25

// TestDifferentials runs every fast-path/oracle pair over the seeded trial
// grid at GOMAXPROCS 1 and 4 — under `go test -race` this is the suite the
// acceptance criteria name. GOMAXPROCS is process-global, so the two legs
// run sequentially; within a leg the seeds run concurrently to give the
// race detector real interleavings.
func TestDifferentials(t *testing.T) {
	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			for _, d := range Differentials() {
				t.Run(d.Name, func(t *testing.T) {
					errs := make([]error, differentialSeeds)
					var wg sync.WaitGroup
					for i := range errs {
						wg.Add(1)
						go func(i int) {
							defer wg.Done()
							errs[i] = d.Check(int64(i) + 1)
						}(i)
					}
					wg.Wait()
					for i, err := range errs {
						if err != nil {
							t.Fatalf("seed %d: %v", i+1, err)
						}
					}
				})
			}
		})
	}
}

// TestDifferentialNamesAreStable pins the suite's contents: removing a
// check (or renaming one CI greps for) should be a deliberate act.
func TestDifferentialNamesAreStable(t *testing.T) {
	want := map[string]bool{
		"matrix/parallel-vs-serial":      true,
		"dtw/banded-vs-exact":            true,
		"signature/session-vs-naive":     true,
		"signature/service-vs-naive":     true,
		"pastrequests/ring-vs-recompute": true,
		"fault/evaluate-vs-bruteforce":   true,
		"causal/localizer-vs-bruteforce": true,
		"sched/policy-conservation":      true,
	}
	got := Differentials()
	if len(got) < len(want) {
		t.Fatalf("differential suite shrank: %d checks", len(got))
	}
	for _, d := range got {
		delete(want, d.Name)
	}
	for name := range want {
		t.Errorf("differential %q missing from the suite", name)
	}
}
