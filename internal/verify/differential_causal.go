package verify

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/causal"
	"repro/internal/distributed"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
)

// checkCausalLocalize: the localizer's per-request cause attribution must
// match a brute-force reimplementation that rescans the whole clean
// population for every decision. Paths are synthesized directly — every
// classification rule (slowdown, pollution, drop-vs-delay residual,
// timeout-free spikes, undelivered hops) gets exercised without paying
// for a cluster run per trial.
func checkCausalLocalize(seed int64) error {
	r := rand.New(rand.NewSource(seed))
	types := []string{"browse", "bid"}

	mkExec := func(tier int, cpi, npc float64) *obs.CausalNode {
		const ins = 1_000_000
		cycles := uint64(cpi * ins)
		return &obs.CausalNode{
			Kind: obs.CausalExec, Node: r.Intn(3), Tier: tier,
			CPUTime:      sim.Time(npc * float64(cycles)),
			Instructions: ins,
			Cycles:       cycles,
			Hedged:       r.Intn(8) == 0,
		}
	}
	mkHop := func(tier int, dur sim.Time, timeouts int) *obs.CausalNode {
		return &obs.CausalNode{
			Kind: obs.CausalHop, Node: r.Intn(3), Tier: tier,
			Dur: dur, Timeouts: timeouts, Retries: timeouts,
		}
	}
	mkTrace := func(id uint64, dirty bool) *distributed.Trace {
		typ := types[r.Intn(len(types))]
		t := &distributed.Trace{ID: id, Type: typ, Path: obs.NewCausalPath(id, typ, 0)}
		for tier := 0; tier < 1+r.Intn(3); tier++ {
			// Clean envelope: CPI in [1.0, 1.5), ns/cycle in [0.33, 0.40),
			// hops under 500µs. Dirty traces stray outside it at random.
			cpi := 1 + 0.5*r.Float64()
			npc := 0.33 + 0.07*r.Float64()
			dur := sim.Time(50_000 + r.Intn(450_000))
			timeouts := 0
			if dirty {
				switch r.Intn(5) {
				case 0:
					cpi *= 1.5 + 2*r.Float64() // pollution
				case 1:
					npc *= 1.5 + r.Float64() // slowdown
				case 2:
					dur *= sim.Time(3 + r.Intn(10)) // spike
				case 3:
					timeouts = 1 + r.Intn(3) // resends: drop or spiked retry
					dur += sim.Time(r.Intn(4_000_000))
				}
			}
			if tier > 0 || r.Intn(4) == 0 {
				if r.Intn(12) == 0 {
					dur = 0 // a hop the run ended before delivering
				}
				t.Path.Root.Add(mkHop(tier, dur, timeouts))
			}
			t.Path.Root.Add(mkExec(tier, cpi, npc))
		}
		return t
	}

	var clean []*distributed.Trace
	for i := 0; i < 20+r.Intn(20); i++ {
		clean = append(clean, mkTrace(uint64(i), false))
	}
	retry := distributed.RetryConfig{
		Enabled: true, MaxRetries: 3,
		HopTimeout: 800 * sim.Microsecond,
		Backoff:    200 * sim.Microsecond,
		BackoffCap: 1600 * sim.Microsecond,
	}
	cfg := causal.Config{}
	loc := causal.NewLocalizer(causal.NewBaseline(clean), retry, cfg)

	for trial := 0; trial < 30; trial++ {
		t := mkTrace(uint64(1000+trial), true)
		got := loc.Localize(t)
		want := bruteLocalize(clean, retry, t)
		if len(got) != len(want) {
			return fmt.Errorf("trial %d: localizer %v, brute force %v", trial, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("trial %d cause %d: localizer %v, brute force %v", trial, i, got[i], want[i])
			}
		}
	}
	return nil
}

// bruteLocalize reimplements the localizer's documented rules from
// scratch: every threshold is recomputed by rescanning the entire clean
// population at each step, and deduplication goes through an explicit
// keyed map instead of the sort-and-sweep fast path.
func bruteLocalize(clean []*distributed.Trace, retry distributed.RetryConfig, t *distributed.Trace) []fault.Cause {
	const (
		slowdownHeadroom   = 1.15
		cpiHeadroom        = 1.15
		hopHeadroom        = 1.5
		dropResidualFactor = 3
	)
	execMax := func(typ string, tier int) (maxCPI, maxNpc float64, n int) {
		for _, c := range clean {
			c.Path.Walk(func(s *obs.CausalNode) {
				if s.Kind != obs.CausalExec || c.Type != typ || s.Tier != tier {
					return
				}
				n++
				cpi := float64(s.Cycles) / float64(s.Instructions)
				npc := float64(s.CPUTime) / float64(s.Cycles)
				if cpi > maxCPI {
					maxCPI = cpi
				}
				if npc > maxNpc {
					maxNpc = npc
				}
			})
		}
		return maxCPI, maxNpc, n
	}
	hopStats := func() (mean, max float64) {
		var sum float64
		var n int
		for _, c := range clean {
			c.Path.Walk(func(s *obs.CausalNode) {
				if s.Kind != obs.CausalHop || s.Dur <= 0 {
					return
				}
				n++
				sum += float64(s.Dur)
				if float64(s.Dur) > max {
					max = float64(s.Dur)
				}
			})
		}
		if n > 0 {
			mean = sum / float64(n)
		}
		return mean, max
	}
	sched := func(k int) float64 {
		var total float64
		for i := 0; i < k; i++ {
			b := retry.Backoff << uint(i)
			if b > retry.BackoffCap {
				b = retry.BackoffCap
			}
			total += float64(retry.HopTimeout) + float64(b)
		}
		return total
	}

	type key struct {
		k          fault.Kind
		node, tier int
	}
	best := map[key]float64{}
	claim := func(k fault.Kind, node, tier int, score float64) {
		id := key{k, node, tier}
		if score > best[id] {
			best[id] = score
		}
	}
	t.Path.Walk(func(s *obs.CausalNode) {
		switch s.Kind {
		case obs.CausalExec:
			maxCPI, maxNpc, n := execMax(t.Type, s.Tier)
			if n == 0 {
				return
			}
			cpi := float64(s.Cycles) / float64(s.Instructions)
			npc := float64(s.CPUTime) / float64(s.Cycles)
			if maxCPI > 0 && cpi/maxCPI > cpiHeadroom {
				claim(fault.PollutionBurst, s.Node, s.Tier, cpi/maxCPI)
			}
			if maxNpc > 0 && npc/maxNpc > slowdownHeadroom {
				claim(fault.NodeSlowdown, s.Node, s.Tier, npc/maxNpc)
			}
		case obs.CausalHop:
			hopMean, hopMax := hopStats()
			if s.Dur <= 0 || hopMax <= 0 {
				return
			}
			dur := float64(s.Dur)
			if s.Timeouts > 0 && dur >= sched(s.Timeouts) {
				kind := fault.HopDrop
				if dur-sched(s.Timeouts) > hopMean*dropResidualFactor {
					kind = fault.HopDelay
				}
				claim(kind, s.Node, -1, dur/hopMax)
				return
			}
			if dur/hopMax > hopHeadroom {
				claim(fault.HopDelay, s.Node, -1, dur/hopMax)
			}
		}
	})

	keys := make([]key, 0, len(best))
	for id := range best { // maporder:ok sorted immediately below
		keys = append(keys, id)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.k != b.k {
			return a.k < b.k
		}
		if a.node != b.node {
			return a.node < b.node
		}
		return a.tier < b.tier
	})
	var out []fault.Cause
	for _, id := range keys {
		out = append(out, fault.Cause{Kind: id.k, Node: id.node, Tier: id.tier, Score: best[id]})
	}
	return out
}
