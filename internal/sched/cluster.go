// Signature-cluster co-scheduling: an extension beyond the paper that
// combines its two halves. Section 4.4 identifies an in-flight request
// against a signature bank from its partial variation pattern; Section 5.2
// eases contention by not co-running predicted high-usage requests. This
// policy joins them: two high-usage requests matching the *same* bank
// signature are the worst co-runners (same phase structure, so their cache
// pollution peaks coincide), and the scheduler avoids adding a runnable
// request to a core while another core runs a high-usage request of the
// same signature cluster.
package sched

import (
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/sampling"
	"repro/internal/signature"
	"repro/internal/sim"
	"repro/internal/trace"
)

// sessionState is one in-flight request's streaming identification state:
// a matcher session plus the partial instruction bucket being accumulated.
type sessionState struct {
	sess *signature.Session
	// bucketLen/bucketSum replay timeseries.Resample incrementally: each
	// attributed period contributes (instructions × metric value), and a
	// full bucket is flushed into the session as one pattern point.
	bucketLen, bucketSum float64
}

// SignatureSessions feeds every in-flight request's sampled periods into an
// incremental signature-matching session, giving policies an online answer
// to "which bank entry does this request look like so far" (Cluster) and
// "how much CPU will it consume" (PredictedCPUNs). Completed buckets are
// bit-identical to resampling the finished trace, so identification matches
// the offline IdentifyPattern on the same prefix.
type SignatureSessions struct {
	matcher   *signature.Matcher
	metric    metrics.Metric
	bucketIns float64

	states map[*kernel.RequestRun]*sessionState
	free   []*signature.Session // reset sessions pooled for reuse
}

// NewSignatureSessions subscribes to a tracker's period stream and wires
// request completion to cleanup, mirroring Monitor's lifecycle. The bank
// must have a positive BucketIns and at least one entry.
func NewSignatureSessions(tk *sampling.Tracker, bank *signature.Bank) *SignatureSessions {
	s := &SignatureSessions{
		matcher:   signature.NewMatcher(bank),
		metric:    bank.Metric,
		bucketIns: bank.BucketIns,
		states:    map[*kernel.RequestRun]*sessionState{},
	}
	tk.OnPeriod(s.onPeriod)
	tk.Kernel().OnRequestDone(s.Forget)
	return s
}

func (s *SignatureSessions) onPeriod(run *kernel.RequestRun, _ *trace.Request, _ sim.Time, c metrics.Counters) {
	if run.Done {
		s.Forget(run)
		return
	}
	if c.Instructions == 0 {
		return
	}
	st := s.states[run]
	if st == nil {
		st = &sessionState{}
		if n := len(s.free); n > 0 {
			st.sess = s.free[n-1]
			s.free = s.free[:n-1]
		} else {
			st.sess = s.matcher.NewSession()
		}
		s.states[run] = st
	}
	// Stream the period into fixed instruction buckets (the incremental
	// counterpart of timeseries.Resample; partial tail buckets wait for
	// more instructions rather than being reported early).
	rem := float64(c.Instructions)
	v := c.Value(s.metric)
	for rem > 0 {
		take := rem
		if space := s.bucketIns - st.bucketLen; take > space {
			take = space
		}
		st.bucketLen += take
		st.bucketSum += take * v
		rem -= take
		if st.bucketLen >= s.bucketIns {
			st.sess.Extend(st.bucketSum / st.bucketLen)
			st.bucketLen, st.bucketSum = 0, 0
		}
	}
}

// Forget releases a completed request's session back to the pool.
func (s *SignatureSessions) Forget(run *kernel.RequestRun) {
	if st := s.states[run]; st != nil {
		st.sess.Reset()
		s.free = append(s.free, st.sess)
		delete(s.states, run)
	}
}

// Tracked reports the number of requests with live session state — zero
// after a run drains, or the feed leaks.
func (s *SignatureSessions) Tracked() int { return len(s.states) }

// Cluster returns the bank entry index the request's partial pattern best
// matches, or -1 while nothing has been observed yet.
func (s *SignatureSessions) Cluster(run *kernel.RequestRun) int {
	st := s.states[run]
	if st == nil || st.sess.Len() == 0 {
		return -1
	}
	return st.sess.Best()
}

// PredictedCPUNs returns the CPU consumption of the request's best-matching
// bank entry (0 while unidentified) — the online Section 4.4 prediction.
func (s *SignatureSessions) PredictedCPUNs(run *kernel.RequestRun) float64 {
	c := s.Cluster(run)
	if c < 0 {
		return 0
	}
	return s.matcher.Bank().Entries[c].CPUTimeNs
}

// ClusterCoSched avoids co-running same-cluster cache polluters. At each
// scheduling opportunity it collects the signature clusters of high-usage
// requests running on other cores; if the head candidate is a high-usage
// request in one of those clusters, it picks the closest-to-head candidate
// that is not (keeping the current request at the head per the paper's
// no-migration, resume-free rule). With no hot clusters it schedules
// normally, and with no acceptable candidate it gives up.
type ClusterCoSched struct {
	// Monitor provides online usage predictions.
	Monitor *Monitor
	// Sessions provides online signature-cluster identification.
	Sessions *SignatureSessions
	// Threshold is the high-usage boundary (see HighUsageThreshold).
	Threshold float64
	// RescheduleInterval mirrors ContentionEasing's 5 ms default.
	RescheduleInterval sim.Time

	// Stats counts policy decisions.
	Stats struct {
		Opportunities uint64 // Pick calls with queued alternatives
		Eased         uint64 // picked past a same-cluster polluter
		GaveUp        uint64 // every candidate was a same-cluster polluter
	}
}

// NewClusterCoSched builds the policy with the paper's 5 ms interval.
func NewClusterCoSched(m *Monitor, s *SignatureSessions, threshold float64) *ClusterCoSched {
	return &ClusterCoSched{
		Monitor:            m,
		Sessions:           s,
		Threshold:          threshold,
		RescheduleInterval: 5 * sim.Millisecond,
	}
}

// Quantum implements kernel.Policy.
func (p *ClusterCoSched) Quantum(*kernel.Kernel) sim.Time {
	if p.RescheduleInterval > 0 {
		return p.RescheduleInterval
	}
	return 5 * sim.Millisecond
}

// hotClusters returns a bitmask of the signature clusters of high-usage
// requests currently running on other cores (clusters ≥ 64 saturate into
// bit 63; banks are compacted far below that).
func (p *ClusterCoSched) hotClusters(k *kernel.Kernel, core int) uint64 {
	var mask uint64
	for c := 0; c < k.Machine().NumCores(); c++ {
		if c == core {
			continue
		}
		run := k.CurrentRun(c)
		if run == nil || p.Monitor.Predicted(run) < p.Threshold {
			continue
		}
		cl := p.Sessions.Cluster(run)
		if cl < 0 {
			continue
		}
		if cl > 63 {
			cl = 63
		}
		mask |= 1 << uint(cl)
	}
	return mask
}

// pollutes reports whether scheduling t would co-run a high-usage request
// whose signature cluster is already hot on another core.
func (p *ClusterCoSched) pollutes(t *kernel.Thread, mask uint64) bool {
	if t == nil || t.Run == nil {
		return false
	}
	if p.Monitor.Predicted(t.Run) < p.Threshold {
		return false
	}
	cl := p.Sessions.Cluster(t.Run)
	if cl < 0 {
		return false
	}
	if cl > 63 {
		cl = 63
	}
	return mask&(1<<uint(cl)) != 0
}

// Pick implements kernel.Policy. Tie-break is by candidate index (closest
// to the head wins), never map order.
func (p *ClusterCoSched) Pick(k *kernel.Kernel, core int, cands []*kernel.Thread, curIncluded bool) int {
	if len(cands) > 1 {
		p.Stats.Opportunities++
	}
	mask := p.hotClusters(k, core)
	if mask == 0 {
		return 0
	}
	return p.pickAvoiding(mask, cands)
}

// pickAvoiding picks the first candidate that is not a same-cluster
// polluter under the hot-cluster mask, giving up to the head when every
// candidate pollutes. Split out so the tie-break order is unit-testable
// without simulated co-runners.
func (p *ClusterCoSched) pickAvoiding(mask uint64, cands []*kernel.Thread) int {
	for i, t := range cands {
		if !p.pollutes(t, mask) {
			if i > 0 {
				p.Stats.Eased++
			}
			return i
		}
	}
	p.Stats.GaveUp++
	return 0
}

var _ kernel.Policy = (*ClusterCoSched)(nil)
