// Deadline-ordered scheduling: an urgency policy over the paper's online
// identification. Each runnable request gets a virtual deadline
//
//	Submit + BaseSlack + ServiceWeight × predictedCPU
//
// where predictedCPU is the CPU consumption of its best-matching signature
// bank entry (Section 4.4's online prediction). The scheduler picks the
// earliest deadline. Requests predicted short therefore overtake long ones
// even when they arrived later — shortest-predicted-job-first blended with
// FIFO aging, which trades average efficiency (more context switches, no
// contention awareness) for tail latency. A plain earliest-submit policy
// would degenerate to FIFO under the closed-loop driver (submit times only
// increase along the queue); the predicted-service term is what genuinely
// reorders.
package sched

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// DeadlineOrdered is the urgency policy.
type DeadlineOrdered struct {
	// Sessions provides online predicted CPU consumption per request.
	Sessions *SignatureSessions
	// BaseSlack is the deadline offset every request gets from its submit
	// time (keeps unidentified requests FIFO-ordered).
	BaseSlack sim.Time
	// ServiceWeight scales the predicted-CPU term of the deadline.
	ServiceWeight float64
	// RescheduleInterval is the quantum: deadline ordering re-evaluates
	// more often than contention easing since urgency changes as
	// identifications firm up (default 1 ms).
	RescheduleInterval sim.Time

	// Stats counts policy decisions.
	Stats struct {
		Opportunities uint64 // Pick calls with queued alternatives
		Reordered     uint64 // picked a non-head candidate
	}
}

// NewDeadlineOrdered builds the policy with a 2 ms base slack, service
// weight 4, and a 1 ms reschedule interval.
func NewDeadlineOrdered(s *SignatureSessions) *DeadlineOrdered {
	return &DeadlineOrdered{
		Sessions:           s,
		BaseSlack:          2 * sim.Millisecond,
		ServiceWeight:      4,
		RescheduleInterval: sim.Millisecond,
	}
}

// Quantum implements kernel.Policy.
func (p *DeadlineOrdered) Quantum(*kernel.Kernel) sim.Time {
	if p.RescheduleInterval > 0 {
		return p.RescheduleInterval
	}
	return sim.Millisecond
}

// deadline computes a request's virtual deadline.
func (p *DeadlineOrdered) deadline(run *kernel.RequestRun) sim.Time {
	d := run.Submit + p.BaseSlack
	if p.Sessions != nil {
		if pred := p.Sessions.PredictedCPUNs(run); pred > 0 {
			d += sim.Time(p.ServiceWeight * pred)
		}
	}
	return d
}

// Pick implements kernel.Policy: the candidate with the earliest deadline
// wins; ties go to the lowest index (closest to the head, so the current
// request is kept when urgency is equal). Candidates without a request are
// never preferred over one with a deadline.
func (p *DeadlineOrdered) Pick(k *kernel.Kernel, core int, cands []*kernel.Thread, curIncluded bool) int {
	if len(cands) > 1 {
		p.Stats.Opportunities++
	}
	best, haveBest := 0, false
	var bestD sim.Time
	for i, t := range cands {
		if t == nil || t.Run == nil {
			continue
		}
		if d := p.deadline(t.Run); !haveBest || d < bestD {
			best, bestD, haveBest = i, d, true
		}
	}
	if best > 0 {
		p.Stats.Reordered++
	}
	return best
}

var _ kernel.Policy = (*DeadlineOrdered)(nil)
