// The scheduling-policy registry: the single authoritative list of every
// CPU scheduling policy the lab can race. Policies are constructed by name
// from a PolicyContext bundling the shared inputs (sampling tracker, usage
// monitor, high-usage threshold, signature bank), so core.Run, the schedlab
// experiment, and the conservation differential all build the same policy
// from the same name — adding a policy is one entry here and nowhere else.
//
// The registry is an ordered slice, not a map: PolicyNames() is the
// presentation and iteration order everywhere (comparison tables, golden
// fingerprints, differential sweeps), and map iteration order must never
// reach an output.
package sched

import (
	"fmt"
	"strings"

	"repro/internal/kernel"
	"repro/internal/sampling"
	"repro/internal/signature"
)

// PolicyContext bundles the inputs a policy factory may draw on. Tracker is
// required by every adaptive policy (the baseline ignores it); Threshold by
// every policy that classifies high usage; Bank by the signature-driven
// policies (cluster co-scheduling, deadline ordering).
//
// Monitor and Sessions are built lazily from the tracker on first use and
// cached, so factories constructed from one context share predictor state —
// exactly one vaEWMA subscription and one signature-session feed per run.
type PolicyContext struct {
	// Tracker is the run's sampling layer.
	Tracker *sampling.Tracker
	// Monitor overrides the lazily built usage monitor (tests).
	Monitor *Monitor
	// Threshold is the high-usage boundary (see HighUsageThreshold).
	Threshold float64
	// Bank is the application's signature bank, for policies that predict
	// request properties from partial variation patterns.
	Bank *signature.Bank
	// Sessions overrides the lazily built signature-session feed (tests).
	Sessions *SignatureSessions
}

// monitor returns the context's usage monitor, building one from the
// tracker on first use.
func (c *PolicyContext) monitor() (*Monitor, error) {
	if c.Monitor == nil {
		if c.Tracker == nil {
			return nil, fmt.Errorf("sched: policy requires a sampling tracker")
		}
		c.Monitor = NewMonitor(c.Tracker, 0.6)
	}
	return c.Monitor, nil
}

// sessions returns the context's signature-session feed, building one from
// the tracker and bank on first use.
func (c *PolicyContext) sessions() (*SignatureSessions, error) {
	if c.Sessions == nil {
		if c.Tracker == nil {
			return nil, fmt.Errorf("sched: policy requires a sampling tracker")
		}
		if c.Bank == nil || len(c.Bank.Entries) == 0 {
			return nil, fmt.Errorf("sched: policy requires a non-empty signature bank")
		}
		c.Sessions = NewSignatureSessions(c.Tracker, c.Bank)
	}
	return c.Sessions, nil
}

// threshold validates the context's high-usage threshold.
func (c *PolicyContext) threshold(policy string) (float64, error) {
	if c.Threshold <= 0 {
		return 0, fmt.Errorf("sched: policy %s requires a positive usage threshold, got %g", policy, c.Threshold)
	}
	return c.Threshold, nil
}

// PolicyFactory names one registered scheduling policy.
type PolicyFactory struct {
	// Name is the registry key (CLI flags, comparison tables, hypotheses).
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// New builds the policy from the shared context.
	New func(*PolicyContext) (kernel.Policy, error)
}

// policies is the registry, in presentation order: the baseline first, then
// the paper's policy, then the extensions in the order they were added.
var policies = []PolicyFactory{
	{
		Name: "round-robin",
		Doc:  "baseline Linux-like scheduler (kernel.RoundRobin)",
		New: func(*PolicyContext) (kernel.Policy, error) {
			return kernel.RoundRobin{}, nil
		},
	},
	{
		Name: "contention-easing",
		Doc:  "Section 5.2: avoid co-executing predicted high-usage requests",
		New: func(c *PolicyContext) (kernel.Policy, error) {
			th, err := c.threshold("contention-easing")
			if err != nil {
				return nil, err
			}
			m, err := c.monitor()
			if err != nil {
				return nil, err
			}
			return NewContentionEasing(m, th), nil
		},
	},
	{
		Name: "topology-aware",
		Doc:  "contention easing weighted by shared-cache package locality",
		New: func(c *PolicyContext) (kernel.Policy, error) {
			th, err := c.threshold("topology-aware")
			if err != nil {
				return nil, err
			}
			m, err := c.monitor()
			if err != nil {
				return nil, err
			}
			return NewTopologyAware(m, th), nil
		},
	},
	{
		Name: "cluster-cosched",
		Doc:  "avoid co-running same-signature-cluster cache polluters",
		New: func(c *PolicyContext) (kernel.Policy, error) {
			th, err := c.threshold("cluster-cosched")
			if err != nil {
				return nil, err
			}
			m, err := c.monitor()
			if err != nil {
				return nil, err
			}
			s, err := c.sessions()
			if err != nil {
				return nil, err
			}
			return NewClusterCoSched(m, s, th), nil
		},
	},
	{
		Name: "deadline",
		Doc:  "urgency order: earliest predicted-completion deadline first",
		New: func(c *PolicyContext) (kernel.Policy, error) {
			s, err := c.sessions()
			if err != nil {
				return nil, err
			}
			return NewDeadlineOrdered(s), nil
		},
	},
}

// PolicyFactories returns the registry in order (a fresh copy).
func PolicyFactories() []PolicyFactory {
	return append([]PolicyFactory(nil), policies...)
}

// PolicyNames returns the registered policy names in registry order.
func PolicyNames() []string {
	names := make([]string, len(policies))
	for i, f := range policies {
		names[i] = f.Name
	}
	return names
}

// LookupPolicy finds a registered policy factory by name.
func LookupPolicy(name string) (PolicyFactory, bool) {
	for _, f := range policies {
		if f.Name == name {
			return f, true
		}
	}
	return PolicyFactory{}, false
}

// NewPolicy builds a registered policy by name.
func NewPolicy(name string, ctx *PolicyContext) (kernel.Policy, error) {
	f, ok := LookupPolicy(name)
	if !ok {
		return nil, fmt.Errorf("sched: unknown policy %q (valid: %s)",
			name, strings.Join(PolicyNames(), ", "))
	}
	return f.New(ctx)
}
