package sched

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/sampling"
	"repro/internal/signature"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// tpchRun executes a TPCH load under a policy and returns the tracker,
// kernel, and meter results.
func tpchRun(t *testing.T, requests int, usePolicy bool, threshold float64) (*sampling.Tracker, *kernel.Kernel, HighUsageCoExecution) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := kernel.DefaultConfig()
	k := kernel.New(eng, cfg)
	tk := sampling.NewTracker(k, sampling.Config{
		Mode: sampling.Interrupt, Period: sim.Millisecond, Compensate: true,
	})
	var pol *ContentionEasing
	if usePolicy {
		mon := NewMonitor(tk, 0.6)
		pol = NewContentionEasing(mon, threshold)
		k.SetPolicy(pol)
	}
	meter := NewCoExecutionMeter(k, threshold, sim.Millisecond)
	d := kernel.NewDriver(k, kernel.LoadConfig{
		App: workload.NewTPCH(), Concurrency: 8, Requests: requests, Seed: 21,
	})
	d.Start()
	eng.RunAll()
	meter.Stop()
	if d.Completed() != requests {
		t.Fatalf("completed %d/%d", d.Completed(), requests)
	}
	return tk, k, meter.Result()
}

func TestHighUsageThreshold(t *testing.T) {
	st := &trace.Store{}
	tr := &trace.Request{}
	for i := 0; i < 10; i++ {
		miss := uint64(i) // rising misses per 100 instructions
		tr.AddPeriod(100, metrics.Counters{Cycles: 200, Instructions: 100, L2Refs: 20, L2Misses: miss})
	}
	st.Add(tr)
	th := HighUsageThreshold(st, 80)
	if th <= 0.04 || th >= 0.09 {
		t.Fatalf("threshold = %v, want ~0.072 (80th pct of 0.00..0.09)", th)
	}
}

func TestMonitorPredictsFromPeriods(t *testing.T) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig())
	tk := sampling.NewTracker(k, sampling.Config{
		Mode: sampling.Interrupt, Period: sim.Millisecond, Compensate: true,
	})
	mon := NewMonitor(tk, 0.6)
	// Observe predictions on the live period stream (the monitor's own
	// subscription runs first, so a prediction exists by the time this
	// callback sees the period); completion wipes predictor state.
	var sawPrediction bool
	tk.OnPeriod(func(run *kernel.RequestRun, _ *trace.Request, _ sim.Time, _ metrics.Counters) {
		if mon.Predicted(run) > 0 {
			sawPrediction = true
		}
	})
	d := kernel.NewDriver(k, kernel.LoadConfig{
		App: workload.NewTPCH(), Concurrency: 2, Requests: 4, Seed: 5,
	})
	d.Start()
	eng.RunAll()
	if !sawPrediction {
		t.Fatal("monitor never produced a positive prediction for TPCH")
	}
}

func TestMonitorStateDrainsAfterRun(t *testing.T) {
	// Requests that finish without a trailing sampling period must still be
	// forgotten: after a fully drained run the predictor map is empty.
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig())
	tk := sampling.NewTracker(k, sampling.Config{
		Mode: sampling.Interrupt, Period: sim.Millisecond, Compensate: true,
	})
	mon := NewMonitor(tk, 0.6)
	d := kernel.NewDriver(k, kernel.LoadConfig{
		App: workload.NewTPCH(), Concurrency: 4, Requests: 8, Seed: 5,
	})
	d.Start()
	eng.RunAll()
	if d.Completed() != 8 {
		t.Fatalf("completed %d/8", d.Completed())
	}
	if mon.Tracked() != 0 {
		t.Fatalf("monitor leaked %d predictor entries after a drained run", mon.Tracked())
	}
}

func TestContentionEasingReducesCoExecution(t *testing.T) {
	// Calibrate the threshold from a baseline run's traces.
	base, _, baseCo := tpchRun(t, 40, false, 0.004)
	threshold := HighUsageThreshold(base.Store(), 80)
	if threshold <= 0 {
		t.Fatalf("bad threshold %v", threshold)
	}
	_, _, baseCo = tpchRun(t, 40, false, threshold)
	_, k2, easedCo := tpchRun(t, 40, true, threshold)

	if baseCo.AtLeast2 == 0 {
		t.Skip("baseline produced no high-usage co-execution; nothing to ease")
	}
	// The policy must at least not worsen the most intensive contention,
	// and should typically reduce it (paper: ~25% reduction of 4-core-high
	// time).
	if easedCo.All4 > baseCo.All4*1.15 {
		t.Fatalf("contention easing worsened 4-core-high time: %v -> %v",
			baseCo.All4, easedCo.All4)
	}
	_ = k2
}

func TestPolicyPickPrefersLowUsage(t *testing.T) {
	// Direct unit test of Pick: a synthetic monitor state.
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig())
	tk := sampling.NewTracker(k, sampling.Config{Mode: sampling.CtxSwitchOnly})
	mon := NewMonitor(tk, 0.6)
	pol := NewContentionEasing(mon, 0.01)

	// With no high-usage runs anywhere, Pick keeps the head.
	cands := []*kernel.Thread{{}, {}}
	if got := pol.Pick(k, 0, cands, false); got != 0 {
		t.Fatalf("Pick = %d, want 0 with no contention", got)
	}
}

func TestQuantumDefault(t *testing.T) {
	pol := NewContentionEasing(nil, 1)
	if pol.Quantum(nil) != 5*sim.Millisecond {
		t.Fatalf("Quantum = %v, want 5ms", pol.Quantum(nil))
	}
	pol.RescheduleInterval = 0
	if pol.Quantum(nil) != 5*sim.Millisecond {
		t.Fatal("zero interval should fall back to 5ms")
	}
}

func TestMeterCounts(t *testing.T) {
	_, _, co := tpchRun(t, 20, false, 1e-9) // threshold ~0: every executing core is "high"
	if co.AtLeast2 == 0 {
		t.Fatal("with a zero threshold, concurrent execution must register")
	}
	if co.AtLeast2 < co.AtLeast3 || co.AtLeast3 < co.All4 {
		t.Fatalf("co-execution proportions not monotone: %+v", co)
	}
}

func TestWorstCaseCPIImproves(t *testing.T) {
	// The headline Figure 13 shape: contention easing should not hurt the
	// average CPI and should help (or at least not hurt) the worst case.
	base, _, _ := tpchRun(t, 60, false, 0.004)
	threshold := HighUsageThreshold(base.Store(), 80)
	eased, _, _ := tpchRun(t, 60, true, threshold)

	baseCPI := base.Store().MetricValues(metrics.CPI)
	easedCPI := eased.Store().MetricValues(metrics.CPI)
	baseWorst := stats.Percentile(baseCPI, 99)
	easedWorst := stats.Percentile(easedCPI, 99)
	if easedWorst > baseWorst*1.1 {
		t.Fatalf("worst-case CPI regressed: %.3f -> %.3f", baseWorst, easedWorst)
	}
	baseAvg := stats.Mean(baseCPI)
	easedAvg := stats.Mean(easedCPI)
	if easedAvg > baseAvg*1.15 {
		t.Fatalf("average CPI regressed badly: %.3f -> %.3f", baseAvg, easedAvg)
	}
}

// topoRun executes a TPCH load under the topology-aware policy.
func topoRun(t *testing.T, requests int, threshold float64) (*sampling.Tracker, HighUsageCoExecution) {
	t.Helper()
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig())
	tk := sampling.NewTracker(k, sampling.Config{
		Mode: sampling.Interrupt, Period: sim.Millisecond, Compensate: true,
	})
	mon := NewMonitor(tk, 0.6)
	pol := NewTopologyAware(mon, threshold)
	k.SetPolicy(pol)
	meter := NewCoExecutionMeter(k, threshold, sim.Millisecond)
	d := kernel.NewDriver(k, kernel.LoadConfig{
		App: workload.NewTPCH(), Concurrency: 8, Requests: requests, Seed: 21,
	})
	d.Start()
	eng.RunAll()
	meter.Stop()
	if d.Completed() != requests {
		t.Fatalf("completed %d/%d", d.Completed(), requests)
	}
	return tk, meter.Result()
}

func TestTopologyAwareCompletesAndEases(t *testing.T) {
	base, _, baseCo := tpchRun(t, 60, false, 0.004)
	threshold := HighUsageThreshold(base.Store(), 80)
	_, _, baseCo = tpchRun(t, 60, false, threshold)
	_, topoCo := topoRun(t, 60, threshold)
	if baseCo.AtLeast2 == 0 {
		t.Skip("no baseline contention to ease")
	}
	// The topology-aware policy must not make the most intensive
	// contention worse.
	if topoCo.All4 > baseCo.All4*1.2+0.001 {
		t.Fatalf("topology-aware policy worsened 4-high time: %v -> %v",
			baseCo.All4, topoCo.All4)
	}
}

func TestTopologyAwarePickSemantics(t *testing.T) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig())
	tk := sampling.NewTracker(k, sampling.Config{Mode: sampling.CtxSwitchOnly})
	mon := NewMonitor(tk, 0.6)
	pol := NewTopologyAware(mon, 0.01)
	// No contention anywhere: keep the head.
	if got := pol.Pick(k, 0, []*kernel.Thread{{}, {}}, false); got != 0 {
		t.Fatalf("Pick = %d, want 0", got)
	}
	if pol.Quantum(nil) != 5*sim.Millisecond {
		t.Fatal("default quantum should be 5ms")
	}
	pol.RescheduleInterval = 0
	if pol.Quantum(nil) != 5*sim.Millisecond {
		t.Fatal("zero interval should fall back")
	}
}

// TestSignatureSessionsLiveStream drives the cluster co-scheduling stack
// end to end on a live kernel run: sessions fed from the tracker's period
// stream must identify in-flight requests against a calibration bank,
// identification must yield positive CPU predictions, and all session
// state must drain when the run completes.
func TestSignatureSessionsLiveStream(t *testing.T) {
	base, _, _ := tpchRun(t, 24, false, 0.004)
	threshold := HighUsageThreshold(base.Store(), 80)
	bank := signature.BuildCompact(base.Store().Traces, metrics.L2RefsPerIns, 2e6, 0, 4, 1)
	if len(bank.Entries) == 0 {
		t.Fatal("empty calibration bank")
	}

	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig())
	tk := sampling.NewTracker(k, sampling.Config{
		Mode: sampling.Interrupt, Period: sim.Millisecond, Compensate: true,
	})
	mon := NewMonitor(tk, 0.6)
	sessions := NewSignatureSessions(tk, bank)
	pol := NewClusterCoSched(mon, sessions, threshold)
	k.SetPolicy(pol)

	// Observe identification on the live stream (the sessions' own
	// subscription runs first, so state is current when this callback sees
	// the period).
	var identified, predicted bool
	tk.OnPeriod(func(run *kernel.RequestRun, _ *trace.Request, _ sim.Time, _ metrics.Counters) {
		cl := sessions.Cluster(run)
		if cl < 0 {
			return
		}
		identified = true
		if cl >= len(bank.Entries) {
			t.Errorf("cluster %d out of range [0,%d)", cl, len(bank.Entries))
		}
		if sessions.PredictedCPUNs(run) > 0 {
			predicted = true
		}
	})
	const requests = 24
	d := kernel.NewDriver(k, kernel.LoadConfig{
		App: workload.NewTPCH(), Concurrency: 8, Requests: requests, Seed: 21,
	})
	d.Start()
	eng.RunAll()
	if d.Completed() != requests {
		t.Fatalf("completed %d/%d", d.Completed(), requests)
	}
	if !identified {
		t.Fatal("no in-flight request was ever identified against the bank")
	}
	if !predicted {
		t.Fatal("identification never yielded a positive CPU prediction")
	}
	if sessions.Tracked() != 0 {
		t.Fatalf("sessions leaked %d entries after a drained run", sessions.Tracked())
	}
	if pol.Stats.Opportunities == 0 {
		t.Fatal("policy saw no scheduling opportunities at concurrency 8")
	}
}

// TestQuantumFallbacks pins the new policies' reschedule intervals and
// their zero-interval fallbacks (ContentionEasing's is covered by
// TestQuantumDefault).
func TestQuantumFallbacks(t *testing.T) {
	cluster := NewClusterCoSched(nil, nil, 1)
	if cluster.Quantum(nil) != 5*sim.Millisecond {
		t.Fatalf("cluster default quantum = %v, want 5ms", cluster.Quantum(nil))
	}
	cluster.RescheduleInterval = 0
	if cluster.Quantum(nil) != 5*sim.Millisecond {
		t.Fatal("cluster zero interval should fall back to 5ms")
	}
	deadline := NewDeadlineOrdered(nil)
	if deadline.Quantum(nil) != sim.Millisecond {
		t.Fatalf("deadline default quantum = %v, want 1ms", deadline.Quantum(nil))
	}
	deadline.RescheduleInterval = 0
	if deadline.Quantum(nil) != sim.Millisecond {
		t.Fatal("deadline zero interval should fall back to 1ms")
	}
}
