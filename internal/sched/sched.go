// Package sched implements the contention-easing CPU scheduling of
// Section 5.2: requests in high resource usage periods should avoid
// co-execution. At each scheduling opportunity the policy checks whether
// any other core is executing a request predicted to be in a high-usage
// period (L2 cache misses per instruction above the workload's
// 80-percentile threshold); if so, it searches the local runqueue for a
// request not in a high-usage period, picking the one closest to the head.
// If none exists it gives up and schedules normally. Requests never migrate
// between core runqueues, and the current request is kept at the head of
// the runqueue so that resuming it costs no context switch — both per the
// paper.
//
// The resource usage of the coming period is predicted online with the
// paper's vaEWMA filter over the sampling layer's per-period observations.
package sched

import (
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/predict"
	"repro/internal/sampling"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Monitor maintains per-request online predictions of L2 misses per
// instruction from the sampling layer's period stream.
type Monitor struct {
	// Alpha is the vaEWMA gain (the paper settles on 0.6).
	Alpha float64
	// UnitNs is the filter's unit observation length t̂ (1 ms).
	UnitNs float64

	preds map[*kernel.RequestRun]*predict.VaEWMA
}

// NewMonitor subscribes a monitor to a tracker's period stream and wires
// request completion to Forget, so predictor state cannot outlive its
// request: the final period is attributed at the completion context switch
// (before the run is marked done), then the kernel's completion callbacks
// — this cleanup among them — fire within the same virtual instant.
func NewMonitor(tk *sampling.Tracker, alpha float64) *Monitor {
	m := &Monitor{
		Alpha:  alpha,
		UnitNs: float64(sim.Millisecond),
		preds:  map[*kernel.RequestRun]*predict.VaEWMA{},
	}
	tk.OnPeriod(m.onPeriod)
	tk.Kernel().OnRequestDone(m.Forget)
	return m
}

func (m *Monitor) onPeriod(run *kernel.RequestRun, _ *trace.Request, dur sim.Time, c metrics.Counters) {
	if run.Done {
		delete(m.preds, run)
		return
	}
	if c.Instructions == 0 {
		return
	}
	p := m.preds[run]
	if p == nil {
		p = predict.NewVaEWMA(m.Alpha, m.UnitNs)
		m.preds[run] = p
	}
	p.Observe(c.Value(metrics.L2MissesPerIns), float64(dur))
}

// Forget drops a completed request's predictor state.
func (m *Monitor) Forget(run *kernel.RequestRun) { delete(m.preds, run) }

// Tracked reports the number of requests with live predictor state —
// zero after a run drains, or the monitor leaks.
func (m *Monitor) Tracked() int { return len(m.preds) }

// Predicted returns the request's predicted L2 misses per instruction for
// its coming execution period (0 if never observed).
func (m *Monitor) Predicted(run *kernel.RequestRun) float64 {
	if p := m.preds[run]; p != nil {
		return p.Predict()
	}
	return 0
}

// ContentionEasing is the Section 5.2 scheduling policy.
type ContentionEasing struct {
	// Monitor provides online usage predictions.
	Monitor *Monitor
	// Threshold is the high-usage boundary: the 80-percentile of L2 cache
	// misses per instruction for the application.
	Threshold float64
	// RescheduleInterval overrides the default 5 ms re-scheduling attempt
	// interval when positive.
	RescheduleInterval sim.Time

	// Stats counts policy decisions for evaluation.
	Stats struct {
		Opportunities uint64 // Pick calls with queued alternatives
		Eased         uint64 // picked a low-usage request over the default
		GaveUp        uint64 // no low-usage candidate existed
	}
}

// NewContentionEasing builds the policy with the paper's 5 ms interval.
func NewContentionEasing(m *Monitor, threshold float64) *ContentionEasing {
	return &ContentionEasing{
		Monitor:            m,
		Threshold:          threshold,
		RescheduleInterval: 5 * sim.Millisecond,
	}
}

// Quantum implements kernel.Policy: re-scheduling attempts at no more than
// 5 ms intervals.
func (p *ContentionEasing) Quantum(*kernel.Kernel) sim.Time {
	if p.RescheduleInterval > 0 {
		return p.RescheduleInterval
	}
	return 5 * sim.Millisecond
}

// high reports whether a thread's request is predicted to be in a high
// resource usage period.
func (p *ContentionEasing) high(t *kernel.Thread) bool {
	if t == nil || t.Run == nil {
		return false
	}
	return p.Monitor.Predicted(t.Run) >= p.Threshold
}

// Pick implements kernel.Policy.
func (p *ContentionEasing) Pick(k *kernel.Kernel, core int, cands []*kernel.Thread, curIncluded bool) int {
	if len(cands) > 1 {
		p.Stats.Opportunities++
	}
	// Step 1: is any other CPU core currently executing a request in a
	// high resource usage period?
	otherHigh := false
	for c := 0; c < k.Machine().NumCores(); c++ {
		if c == core {
			continue
		}
		if run := k.CurrentRun(c); run != nil && p.Monitor.Predicted(run) >= p.Threshold {
			otherHigh = true
			break
		}
	}
	if !otherHigh {
		// Schedule in the normal fashion: the head (or keep the current).
		return 0
	}
	// Step 2: pick the request closest to the head that is not in a high
	// resource usage period. The current thread sits at index 0 when
	// curIncluded, honoring "keep the current request at the head".
	return p.pickEased(cands)
}

// pickEased scans the candidates in queue order for the first one not in a
// high-usage period, giving up to the head when none exists. Split out so
// the tie-break order (lowest index wins, never map order) is unit-testable
// without simulated co-runners.
func (p *ContentionEasing) pickEased(cands []*kernel.Thread) int {
	for i, t := range cands {
		if !p.high(t) {
			if i > 0 {
				p.Stats.Eased++
			}
			return i
		}
	}
	// No such request: give up and schedule normally.
	p.Stats.GaveUp++
	return 0
}

// HighUsageThreshold computes the paper's threshold from an application's
// traced periods: the pct-percentile (80 in the paper) of per-period L2
// misses per instruction.
func HighUsageThreshold(store *trace.Store, pct float64) float64 {
	var vals []float64
	for _, tr := range store.Traces {
		for _, p := range tr.Periods {
			if p.C.Instructions > 0 {
				vals = append(vals, p.C.Value(metrics.L2MissesPerIns))
			}
		}
	}
	return stats.Percentile(vals, pct)
}

// HighUsageCoExecution measures, from a run's concurrency samples, the
// proportion of execution time during which at least k cores simultaneously
// executed at high resource usage levels — Figure 12's metric.
type HighUsageCoExecution struct {
	// AtLeast2, AtLeast3, All4 are time proportions in [0,1].
	AtLeast2, AtLeast3, All4 float64
}

// interface check
var _ kernel.Policy = (*ContentionEasing)(nil)
