package sched

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// CoExecutionMeter measures the proportion of time during which multiple
// cores simultaneously execute at high resource usage levels — the
// evaluation metric of Figure 12. It polls the machine's ground-truth
// per-core execution rates (the simulation's omniscient view; the paper
// measures the same with offline counter analysis).
type CoExecutionMeter struct {
	k         *kernel.Kernel
	threshold float64
	interval  sim.Time
	timer     *sim.Timer

	samples int
	ge2     int
	ge3     int
	all4    int
	stopped bool
}

// NewCoExecutionMeter starts polling the kernel every interval. Stop it
// before reading results.
func NewCoExecutionMeter(k *kernel.Kernel, threshold float64, interval sim.Time) *CoExecutionMeter {
	m := &CoExecutionMeter{k: k, threshold: threshold, interval: interval}
	m.timer = k.Engine().NewTimer(m.tick)
	m.timer.Arm(interval)
	return m
}

func (m *CoExecutionMeter) tick() {
	if m.stopped {
		return
	}
	mach := m.k.Machine()
	busyHigh := 0
	executing := 0
	for c := 0; c < mach.NumCores(); c++ {
		if m.k.CurrentRun(c) == nil {
			continue
		}
		executing++
		r := mach.Rate(c)
		if r.RefsPerIns*r.MissRatio >= m.threshold {
			busyHigh++
		}
	}
	if executing > 0 {
		m.samples++
		if busyHigh >= 2 {
			m.ge2++
		}
		if busyHigh >= 3 {
			m.ge3++
		}
		if busyHigh >= 4 {
			m.all4++
		}
	}
	m.timer.Arm(m.interval)
}

// Stop halts polling.
func (m *CoExecutionMeter) Stop() { m.stopped = true }

// Result returns the measured co-execution proportions.
func (m *CoExecutionMeter) Result() HighUsageCoExecution {
	if m.samples == 0 {
		return HighUsageCoExecution{}
	}
	n := float64(m.samples)
	return HighUsageCoExecution{
		AtLeast2: float64(m.ge2) / n,
		AtLeast3: float64(m.ge3) / n,
		All4:     float64(m.all4) / n,
	}
}
