package sched

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// TopologyAware extends the paper's contention-easing policy with shared-
// cache topology knowledge. The paper's policy reacts to high usage on
// *any* other core, but capacity contention happens between cores sharing
// an L2 package; this variant (an extension beyond the paper, motivated by
// its future-work discussion of finer resource management) weighs the
// package-local neighbor most and treats remote-package high usage only as
// a bandwidth concern.
type TopologyAware struct {
	// Monitor provides online usage predictions.
	Monitor *Monitor
	// Threshold is the high-usage boundary (see HighUsageThreshold).
	Threshold float64
	// BandwidthThreshold is the machine-wide sum of predicted misses per
	// instruction above which even remote-package co-execution is avoided.
	BandwidthThreshold float64
	// RescheduleInterval mirrors ContentionEasing's 5 ms default.
	RescheduleInterval sim.Time

	// Stats counts policy decisions.
	Stats struct {
		Opportunities uint64
		EasedLocal    uint64 // avoided a same-package high co-runner
		EasedGlobal   uint64 // avoided machine-wide bandwidth pressure
		GaveUp        uint64
	}
}

// NewTopologyAware builds the policy; the bandwidth threshold defaults to
// twice the per-core threshold (two cores' worth of high traffic).
func NewTopologyAware(m *Monitor, threshold float64) *TopologyAware {
	return &TopologyAware{
		Monitor:            m,
		Threshold:          threshold,
		BandwidthThreshold: 2 * threshold,
		RescheduleInterval: 5 * sim.Millisecond,
	}
}

// Quantum implements kernel.Policy.
func (p *TopologyAware) Quantum(*kernel.Kernel) sim.Time {
	if p.RescheduleInterval > 0 {
		return p.RescheduleInterval
	}
	return 5 * sim.Millisecond
}

// Pick implements kernel.Policy.
func (p *TopologyAware) Pick(k *kernel.Kernel, core int, cands []*kernel.Thread, curIncluded bool) int {
	if len(cands) > 1 {
		p.Stats.Opportunities++
	}
	mach := k.Machine()
	myPkg := mach.Package(core)

	// Package-local pressure: a same-package sibling in a high-usage
	// period is the direct capacity competitor.
	localHigh := false
	var totalPredicted float64
	for c := 0; c < mach.NumCores(); c++ {
		if c == core {
			continue
		}
		run := k.CurrentRun(c)
		if run == nil {
			continue
		}
		pred := p.Monitor.Predicted(run)
		totalPredicted += pred
		if pred >= p.Threshold && mach.Package(c) == myPkg {
			localHigh = true
		}
	}
	globalPressure := totalPredicted >= p.BandwidthThreshold

	if !localHigh && !globalPressure {
		return 0
	}
	return p.pickLow(localHigh, cands)
}

// pickLow scans the candidates in queue order for the first low-usage
// request (threadless candidates are skipped, never preferred), giving up
// to the head when none exists. Split out so the tie-break order is
// unit-testable without simulated co-runners.
func (p *TopologyAware) pickLow(localHigh bool, cands []*kernel.Thread) int {
	for i, t := range cands {
		if t == nil || t.Run == nil {
			continue
		}
		if p.Monitor.Predicted(t.Run) < p.Threshold {
			if i > 0 {
				if localHigh {
					p.Stats.EasedLocal++
				} else {
					p.Stats.EasedGlobal++
				}
			}
			return i
		}
	}
	p.Stats.GaveUp++
	return 0
}

var _ kernel.Policy = (*TopologyAware)(nil)
