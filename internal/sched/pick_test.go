package sched

import (
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/predict"
	"repro/internal/sampling"
	"repro/internal/signature"
	"repro/internal/sim"
)

// monitorWith builds a monitor with pinned predictions: runs paired with a
// positive value predict that value (well above/below a threshold of 1);
// runs without an entry predict 0.
func monitorWith(runs []*kernel.RequestRun, vals []float64) *Monitor {
	m := &Monitor{Alpha: 0.6, UnitNs: 1, preds: map[*kernel.RequestRun]*predict.VaEWMA{}}
	for i, run := range runs {
		if vals[i] <= 0 {
			continue
		}
		p := predict.NewVaEWMA(0.9, 1)
		for j := 0; j < 8; j++ {
			p.Observe(vals[i], 1)
		}
		m.preds[run] = p
	}
	return m
}

// twoClusterBank returns a bank with two well-separated signatures.
func twoClusterBank() *signature.Bank {
	return &signature.Bank{
		Metric:      metrics.L2RefsPerIns,
		BucketIns:   1e4,
		ThresholdNs: 10,
		Entries: []signature.Entry{
			{Pattern: []float64{1, 1, 1}, CPUTimeNs: 5e6},
			{Pattern: []float64{9, 9, 9}, CPUTimeNs: 40e6},
		},
	}
}

// sessionsWith pins each run's signature cluster by pre-extending its
// session with that bank entry's exact pattern.
func sessionsWith(bank *signature.Bank, runs []*kernel.RequestRun, clusters []int) *SignatureSessions {
	s := &SignatureSessions{
		matcher:   signature.NewMatcher(bank),
		metric:    bank.Metric,
		bucketIns: bank.BucketIns,
		states:    map[*kernel.RequestRun]*sessionState{},
	}
	for i, run := range runs {
		sess := s.matcher.NewSession()
		sess.Extend(bank.Entries[clusters[i]].Pattern...)
		s.states[run] = &sessionState{sess: sess}
	}
	return s
}

func runThread(run *kernel.RequestRun) *kernel.Thread { return &kernel.Thread{Run: run} }

// TestPickEdgeCases drives every registered policy's full Pick through the
// cases the simulator can't hit on purpose: an empty ready queue and a
// single-candidate fallthrough, both with and without curIncluded. Every
// policy must return index 0 (the out-of-range fallback would mask a bug
// here, so this locks the explicit contract).
func TestPickEdgeCases(t *testing.T) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig()) // idle: no core runs anything
	tk := sampling.NewTracker(k, sampling.Config{})
	ctx := &PolicyContext{Tracker: tk, Threshold: 1, Bank: twoClusterBank()}

	single := []*kernel.Thread{runThread(&kernel.RequestRun{})}
	for _, f := range PolicyFactories() {
		pol, err := f.New(ctx)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		for _, tc := range []struct {
			name  string
			cands []*kernel.Thread
			curIn bool
		}{
			{"empty", nil, false},
			{"empty-slice", []*kernel.Thread{}, false},
			{"single", single, false},
			{"single-current", single, true},
		} {
			if got := pol.Pick(k, 0, tc.cands, tc.curIn); got != 0 {
				t.Errorf("%s/%s: Pick = %d, want 0", f.Name, tc.name, got)
			}
		}
		if q := pol.Quantum(k); q <= 0 {
			t.Errorf("%s: Quantum = %v, want positive", f.Name, q)
		}
	}
}

// TestPickEasedTieBreak locks contention easing's candidate scan: the
// lowest index wins among equally acceptable candidates (queue order,
// never map order), and an all-high queue gives up to the head.
func TestPickEasedTieBreak(t *testing.T) {
	runs := []*kernel.RequestRun{{}, {}, {}}
	high, low := 10.0, 0.0
	cands := []*kernel.Thread{runThread(runs[0]), runThread(runs[1]), runThread(runs[2])}

	cases := []struct {
		name        string
		vals        []float64
		want        int
		eased, gave uint64
	}{
		{"head-low", []float64{low, low, low}, 0, 0, 0},
		{"first-low-wins", []float64{high, low, low}, 1, 1, 0},
		{"second-low", []float64{high, high, low}, 2, 1, 0},
		{"all-high-ties", []float64{high, high, high}, 0, 0, 1},
	}
	for _, tc := range cases {
		p := NewContentionEasing(monitorWith(runs, tc.vals), 1)
		if got := p.pickEased(cands); got != tc.want {
			t.Errorf("%s: pickEased = %d, want %d", tc.name, got, tc.want)
		}
		if p.Stats.Eased != tc.eased || p.Stats.GaveUp != tc.gave {
			t.Errorf("%s: stats eased=%d gaveUp=%d, want %d/%d",
				tc.name, p.Stats.Eased, p.Stats.GaveUp, tc.eased, tc.gave)
		}
	}
}

// TestPickLowTopology locks the topology-aware scan: threadless candidates
// are skipped (never preferred over a real request), all-high queues give
// up, and the local/global stat split follows the pressure kind.
func TestPickLowTopology(t *testing.T) {
	runs := []*kernel.RequestRun{{}, {}}
	high, low := 10.0, 0.0
	idle := &kernel.Thread{} // no Run: an idle worker on the queue

	p := NewTopologyAware(monitorWith(runs, []float64{high, low}), 1)
	cands := []*kernel.Thread{runThread(runs[0]), idle, runThread(runs[1])}
	if got := p.pickLow(true, cands); got != 2 {
		t.Fatalf("pickLow skipped to %d, want 2 (idle thread must not win)", got)
	}
	if p.Stats.EasedLocal != 1 || p.Stats.EasedGlobal != 0 {
		t.Fatalf("local easing stats = %+v", p.Stats)
	}
	if got := p.pickLow(false, cands); got != 2 || p.Stats.EasedGlobal != 1 {
		t.Fatalf("global easing: got %d, stats %+v", got, p.Stats)
	}

	allHigh := NewTopologyAware(monitorWith(runs, []float64{high, high}), 1)
	cands = []*kernel.Thread{runThread(runs[0]), runThread(runs[1])}
	if got := allHigh.pickLow(true, cands); got != 0 || allHigh.Stats.GaveUp != 1 {
		t.Fatalf("all-high ties: got %d, stats %+v", got, allHigh.Stats)
	}
}

// TestPickAvoidingCluster locks the cluster co-scheduling scan: only a
// high-usage candidate in a hot cluster is skipped; a high-usage request of
// a different cluster, or a low-usage request of the same cluster, is
// schedulable. All-polluter queues give up to the head.
func TestPickAvoidingCluster(t *testing.T) {
	bank := twoClusterBank()
	runs := []*kernel.RequestRun{{}, {}, {}, {}}
	high, low := 10.0, 0.0
	// runs: 0 high@cluster1, 1 high@cluster0, 2 low@cluster1, 3 high@cluster1
	mon := monitorWith(runs, []float64{high, high, low, high})
	sess := sessionsWith(bank, runs, []int{1, 0, 1, 1})
	p := NewClusterCoSched(mon, sess, 1)

	cands := []*kernel.Thread{runThread(runs[0]), runThread(runs[1]), runThread(runs[2])}
	maskCluster1 := uint64(1 << 1)
	if got := p.pickAvoiding(maskCluster1, cands); got != 1 {
		t.Fatalf("pickAvoiding = %d, want 1 (high but different cluster)", got)
	}
	cands = []*kernel.Thread{runThread(runs[0]), runThread(runs[2])}
	if got := p.pickAvoiding(maskCluster1, cands); got != 1 || p.Stats.Eased != 2 {
		t.Fatalf("low same-cluster candidate: got %d, stats %+v", got, p.Stats)
	}
	cands = []*kernel.Thread{runThread(runs[0]), runThread(runs[3])}
	if got := p.pickAvoiding(maskCluster1, cands); got != 0 || p.Stats.GaveUp != 1 {
		t.Fatalf("all polluters: got %d, stats %+v", got, p.Stats)
	}
	// An unidentified or low-usage head passes any mask untouched.
	if got := p.pickAvoiding(maskCluster1, []*kernel.Thread{runThread(runs[2]), runThread(runs[0])}); got != 0 {
		t.Fatalf("low head: got %d, want 0", got)
	}
}

// TestDeadlinePick locks the deadline policy's ordering: earliest deadline
// wins, ties go to the lowest index, threadless candidates are never
// preferred, and the predicted-service term genuinely reorders (a
// later-submitted request predicted short overtakes an earlier long one).
func TestDeadlinePick(t *testing.T) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig())

	// Without sessions the deadline is Submit + BaseSlack: FIFO by submit.
	p := &DeadlineOrdered{BaseSlack: 2 * sim.Millisecond, ServiceWeight: 4}
	early, late := &kernel.RequestRun{Submit: 100}, &kernel.RequestRun{Submit: 900}
	cands := []*kernel.Thread{runThread(late), runThread(early)}
	if got := p.Pick(k, 0, cands, false); got != 1 {
		t.Fatalf("submit order: Pick = %d, want 1", got)
	}
	if p.Stats.Reordered != 1 || p.Stats.Opportunities != 1 {
		t.Fatalf("stats = %+v", p.Stats)
	}
	// Equal deadlines tie to the lowest index.
	twin := &kernel.RequestRun{Submit: 100}
	if got := p.Pick(k, 0, []*kernel.Thread{runThread(early), runThread(twin)}, false); got != 0 {
		t.Fatalf("tie-break: Pick = %d, want 0", got)
	}
	// A threadless candidate never beats a real request.
	if got := p.Pick(k, 0, []*kernel.Thread{{}, runThread(early)}, false); got != 1 {
		t.Fatalf("idle head: Pick = %d, want 1", got)
	}

	// With sessions, a later request predicted cheap (cluster 0, 5 ms)
	// overtakes an earlier one predicted expensive (cluster 1, 40 ms).
	bank := twoClusterBank()
	runs := []*kernel.RequestRun{{Submit: 0}, {Submit: 1 * sim.Millisecond}}
	pd := NewDeadlineOrdered(sessionsWith(bank, runs, []int{1, 0}))
	cands = []*kernel.Thread{runThread(runs[0]), runThread(runs[1])}
	if got := pd.Pick(k, 0, cands, false); got != 1 {
		t.Fatalf("predicted service: Pick = %d, want 1", got)
	}
}

// TestPolicyRegistry pins the registry contract: the name list and its
// order (golden tables and hypotheses iterate it), lookup behavior, and
// each factory's input requirements.
func TestPolicyRegistry(t *testing.T) {
	want := "round-robin,contention-easing,topology-aware,cluster-cosched,deadline"
	if got := strings.Join(PolicyNames(), ","); got != want {
		t.Fatalf("PolicyNames = %s\nwant %s", got, want)
	}
	for _, f := range PolicyFactories() {
		if f.Doc == "" {
			t.Errorf("%s: empty Doc", f.Name)
		}
		got, ok := LookupPolicy(f.Name)
		if !ok || got.Name != f.Name {
			t.Errorf("LookupPolicy(%q) = %v, %v", f.Name, got.Name, ok)
		}
	}
	if _, ok := LookupPolicy("fifo"); ok {
		t.Error("LookupPolicy of unknown name succeeded")
	}
	if _, err := NewPolicy("fifo", &PolicyContext{}); err == nil || !strings.Contains(err.Error(), "fifo") {
		t.Errorf("NewPolicy unknown: err = %v, want name in message", err)
	}

	// The baseline needs nothing.
	if pol, err := NewPolicy("round-robin", &PolicyContext{}); err != nil || pol == nil {
		t.Fatalf("round-robin from empty context: %v, %v", pol, err)
	}
	// Adaptive policies without a threshold, tracker, or bank fail loudly
	// at build time, before any simulation runs.
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig())
	tk := sampling.NewTracker(k, sampling.Config{})
	for _, tc := range []struct {
		policy string
		ctx    *PolicyContext
		want   string
	}{
		{"contention-easing", &PolicyContext{Tracker: tk}, "threshold"},
		{"topology-aware", &PolicyContext{Tracker: tk}, "threshold"},
		{"contention-easing", &PolicyContext{Threshold: 1}, "tracker"},
		{"cluster-cosched", &PolicyContext{Tracker: tk, Threshold: 1}, "signature bank"},
		{"deadline", &PolicyContext{Tracker: tk}, "signature bank"},
	} {
		if _, err := NewPolicy(tc.policy, tc.ctx); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.policy, err, tc.want)
		}
	}

	// A full context builds every policy, and the shared monitor/session
	// state is constructed exactly once across factories.
	ctx := &PolicyContext{Tracker: tk, Threshold: 1, Bank: twoClusterBank()}
	for _, f := range PolicyFactories() {
		pol, err := f.New(ctx)
		if err != nil || pol == nil {
			t.Fatalf("%s: %v, %v", f.Name, pol, err)
		}
	}
	if ctx.Monitor == nil || ctx.Sessions == nil {
		t.Fatal("context did not cache monitor/sessions")
	}
}
