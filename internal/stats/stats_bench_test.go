package stats

import (
	"math/rand"
	"testing"
)

func benchData(n int) []float64 {
	r := rand.New(rand.NewSource(1))
	out := make([]float64, n)
	for i := range out {
		out[i] = r.NormFloat64()
	}
	return out
}

func BenchmarkPercentile(b *testing.B) {
	xs := benchData(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Percentile(xs, 99)
	}
}

func BenchmarkCoV(b *testing.B) {
	v, w := benchData(10000), benchData(10000)
	for i := range w {
		if w[i] < 0 {
			w[i] = -w[i]
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CoV(v, w)
	}
}
