package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if s := StdDev(xs); !almost(s, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", s)
	}
	m, s := MeanStd(xs)
	if !almost(m, 5, 1e-12) || !almost(s, 2, 1e-12) {
		t.Fatalf("MeanStd = %v, %v", m, s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty-slice mean/std should be 0")
	}
}

func TestWeightedMean(t *testing.T) {
	v := []float64{1, 3}
	w := []float64{1, 3}
	if got := WeightedMean(v, w); !almost(got, 2.5, 1e-12) {
		t.Fatalf("WeightedMean = %v, want 2.5", got)
	}
	if got := WeightedMean([]float64{5}, []float64{0}); got != 0 {
		t.Fatalf("zero weight should yield 0, got %v", got)
	}
}

func TestCoVUniformIsZero(t *testing.T) {
	v := []float64{3, 3, 3}
	w := []float64{1, 10, 2}
	if got := CoV(v, w); got != 0 {
		t.Fatalf("CoV of constant series = %v, want 0", got)
	}
}

func TestCoVKnownValue(t *testing.T) {
	// Two equal-length periods with values 1 and 3: xbar = 2,
	// variance = ((1-2)^2 + (3-2)^2)/2 = 1, CoV = 1/2.
	got := CoV([]float64{1, 3}, []float64{1, 1})
	if !almost(got, 0.5, 1e-12) {
		t.Fatalf("CoV = %v, want 0.5", got)
	}
}

func TestCoVWeighting(t *testing.T) {
	// A long period at the mean plus a tiny deviant period should produce a
	// much smaller CoV than equal weighting.
	equal := CoV([]float64{1, 3}, []float64{1, 1})
	skewed := CoV([]float64{1, 3}, []float64{99, 1})
	if skewed >= equal {
		t.Fatalf("weighted CoV %v should be < unweighted %v", skewed, equal)
	}
}

func TestCoVNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		v := make([]float64, n)
		w := make([]float64, n)
		for i := range v {
			v[i] = r.Float64() * 10
			w[i] = r.Float64() + 0.01
		}
		return CoV(v, w) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRMSE(t *testing.T) {
	a := []float64{1, 2, 3}
	p := []float64{1, 2, 3}
	w := []float64{1, 1, 1}
	if got := RMSE(a, p, w); got != 0 {
		t.Fatalf("RMSE of perfect prediction = %v", got)
	}
	p2 := []float64{2, 3, 4}
	if got := RMSE(a, p2, w); !almost(got, 1, 1e-12) {
		t.Fatalf("RMSE = %v, want 1", got)
	}
	// Weighting: error only on a zero-weight period contributes nothing.
	if got := RMSE([]float64{1, 1}, []float64{1, 9}, []float64{1, 0}); got != 0 {
		t.Fatalf("zero-weight period affected RMSE: %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if got := Percentile(xs, 0); got != 15 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 35 {
		t.Fatalf("p50 = %v", got)
	}
	// Interpolated: p25 over 5 points → rank 1.0 → 20.
	if got := Percentile(xs, 25); !almost(got, 20, 1e-12) {
		t.Fatalf("p25 = %v, want 20", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 90)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentilesOfMatchesSingle(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	ps := []float64{10, 50, 90, 99}
	multi := PercentilesOf(xs, ps...)
	for i, p := range ps {
		if single := Percentile(xs, p); !almost(single, multi[i], 1e-12) {
			t.Fatalf("PercentilesOf[%v] = %v, single = %v", p, multi[i], single)
		}
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+r.Intn(50))
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	if Min(xs) != 1 || Max(xs) != 9 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if got := Median([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Median = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1.05, 1.15, 1.15, 0.5, 9.9}, 1, 0.1, 5)
	if h.N != 5 {
		t.Fatalf("N = %d", h.N)
	}
	if h.Below != 1 || h.Above != 1 {
		t.Fatalf("Below/Above = %d/%d", h.Below, h.Above)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 {
		t.Fatalf("Counts = %v", h.Counts)
	}
	probs := h.Prob()
	if !almost(probs[1], 0.4, 1e-12) {
		t.Fatalf("Prob[1] = %v, want 0.4", probs[1])
	}
	if c := h.BinCenter(0); !almost(c, 1.05, 1e-12) {
		t.Fatalf("BinCenter(0) = %v", c)
	}
}

func TestHistogramProbSumsToAtMostOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := NewHistogram(nil, 0, 0.5, 10)
		for i := 0; i < 200; i++ {
			h.Add(r.NormFloat64() * 3)
		}
		var sum float64
		for _, p := range h.Prob() {
			sum += p
		}
		return sum <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	pts := CDF(xs, []float64{0, 1, 2, 3, 4})
	want := []float64{0, 0.25, 0.75, 1, 1}
	for i, p := range pts {
		if !almost(p.P, want[i], 1e-12) {
			t.Fatalf("CDF at %v = %v, want %v", p.X, p.P, want[i])
		}
	}
	if got := CDFAt(xs, 2); !almost(got, 0.75, 1e-12) {
		t.Fatalf("CDFAt(2) = %v", got)
	}
	if got := CDFAt(nil, 2); got != 0 {
		t.Fatalf("CDFAt on empty = %v", got)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+r.Intn(40))
		for i := range xs {
			xs[i] = r.Float64() * 10
		}
		at := []float64{0, 1, 2, 4, 6, 8, 10}
		pts := CDF(xs, at)
		prev := 0.0
		for _, p := range pts {
			if p.P < prev || p.P > 1 {
				return false
			}
			prev = p.P
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPanicsOnMismatch(t *testing.T) {
	for name, fn := range map[string]func(){
		"WeightedMean": func() { WeightedMean([]float64{1}, []float64{1, 2}) },
		"CoV":          func() { CoV([]float64{1}, []float64{1, 2}) },
		"RMSE":         func() { RMSE([]float64{1}, []float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}
