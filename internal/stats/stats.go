// Package stats implements the statistical machinery the paper's analyses
// rely on: weighted coefficient of variation (Equation 1), weighted root
// mean square error (Equation 7), percentiles, histograms, and cumulative
// distribution summaries.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MeanStd returns both the mean and population standard deviation in one
// pass over xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	var s float64
	for _, x := range xs {
		d := x - mean
		s += d * d
	}
	return mean, math.Sqrt(s / float64(len(xs)))
}

// WeightedMean returns sum(w_i * x_i) / sum(w_i). Weights must be
// non-negative; a zero total weight yields 0.
func WeightedMean(values, weights []float64) float64 {
	if len(values) != len(weights) {
		panic("stats: WeightedMean length mismatch")
	}
	var num, den float64
	for i, v := range values {
		num += weights[i] * v
		den += weights[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// CoV implements the paper's Equation 1: the length-weighted coefficient of
// variation of metric values x_i measured over periods of lengths t_i,
// relative to the overall metric value xbar:
//
//	sqrt( sum(t_i (x_i - xbar)^2) / sum(t_i) ) / xbar
//
// The overall value xbar is the length-weighted mean of the x_i, which
// matches "the overall metric value for the whole execution" when lengths
// are the natural weights of the metric (e.g., instructions for CPI).
func CoV(values, lengths []float64) float64 {
	if len(values) != len(lengths) {
		panic("stats: CoV length mismatch")
	}
	xbar := WeightedMean(values, lengths)
	if xbar == 0 {
		return 0
	}
	var num, den float64
	for i, x := range values {
		d := x - xbar
		num += lengths[i] * d * d
		den += lengths[i]
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num/den) / xbar
}

// RMSE implements the paper's Equation 7: the length-weighted root mean
// square error between actual values x_i and predictions xhat_i over
// periods of lengths t_i.
func RMSE(actual, predicted, lengths []float64) float64 {
	if len(actual) != len(predicted) || len(actual) != len(lengths) {
		panic("stats: RMSE length mismatch")
	}
	var num, den float64
	for i := range actual {
		d := actual[i] - predicted[i]
		num += lengths[i] * d * d
		den += lengths[i]
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. xs need not be sorted; it is not
// modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentilesOf computes several percentiles with a single sort.
func PercentilesOf(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Histogram is a fixed-bin-width histogram over [Lo, Lo + Width*len(Counts)).
// It mirrors the probability histograms of the paper's Figure 1.
type Histogram struct {
	Lo     float64
	Width  float64
	Counts []int
	N      int // total samples including out-of-range ones
	Below  int // samples < Lo
	Above  int // samples >= Lo + Width*len(Counts)
}

// NewHistogram builds a histogram of xs with the given origin, bin width,
// and bin count.
func NewHistogram(xs []float64, lo, width float64, bins int) *Histogram {
	if width <= 0 || bins <= 0 {
		panic("stats: NewHistogram requires positive width and bins")
	}
	h := &Histogram{Lo: lo, Width: width, Counts: make([]int, bins)}
	for _, x := range xs {
		h.Add(x)
	}
	return h
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.N++
	if x < h.Lo {
		h.Below++
		return
	}
	i := int((x - h.Lo) / h.Width)
	if i >= len(h.Counts) {
		h.Above++
		return
	}
	h.Counts[i]++
}

// Prob returns each bin's probability mass (count / total samples).
func (h *Histogram) Prob() []float64 {
	out := make([]float64, len(h.Counts))
	if h.N == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.N)
	}
	return out
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.Width
}

// CDFPoint is one (x, cumulative probability) pair of an empirical CDF.
type CDFPoint struct {
	X float64
	P float64
}

// CDFAt returns the empirical cumulative probability P(X <= x) over xs.
func CDFAt(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// CDF evaluates the empirical CDF of xs at each point in at, sharing one
// sort across all evaluation points.
func CDF(xs []float64, at []float64) []CDFPoint {
	out := make([]CDFPoint, len(at))
	if len(xs) == 0 {
		for i, x := range at {
			out[i] = CDFPoint{X: x}
		}
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, x := range at {
		idx := sort.SearchFloat64s(sorted, x)
		// SearchFloat64s returns the first index >= x; walk forward over
		// equal values to count them as <= x.
		for idx < len(sorted) && sorted[idx] <= x {
			idx++
		}
		out[i] = CDFPoint{X: x, P: float64(idx) / float64(len(sorted))}
	}
	return out
}
