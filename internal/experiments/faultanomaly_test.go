package experiments

import (
	"strings"
	"testing"
)

func TestFaultAnomalyReport(t *testing.T) {
	r, err := FaultAnomaly(Config{Seed: 1, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Scheduled == 0 || r.Impacts == 0 {
		t.Fatalf("no faults scheduled/applied: %+v", r)
	}
	if r.Truth == 0 {
		t.Fatal("no pollution-burst ground truth recorded")
	}
	if r.Eval.F1 <= 0 {
		t.Fatalf("detector found nothing against ground truth: %s", r.Eval)
	}
	if r.Eval.Precision < 0.5 {
		t.Fatalf("detector precision too low: %s", r.Eval)
	}
	if r.Retries == 0 || r.Timeouts == 0 {
		t.Fatalf("robustness run exercised no retries: %+v", r)
	}
	// The acceptance criterion: retries/hedging must cut worst-case
	// latency under the identical fault schedule.
	if r.P99OnNs >= r.P99OffNs {
		t.Fatalf("retries+hedging did not reduce p99: on=%.2fms off=%.2fms",
			r.P99OnNs/1e6, r.P99OffNs/1e6)
	}
	out := r.String()
	for _, want := range []string{"precision", "recall", "F1", "p99 latency", "cut p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestFaultAnomalyDeterministic(t *testing.T) {
	run := func() string {
		r, err := FaultAnomaly(Config{Seed: 3, Scale: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		return r.String()
	}
	if run() != run() {
		t.Fatal("faultanomaly report not bit-identical across runs")
	}
}
