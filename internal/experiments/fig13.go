package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

// CPISummary is a request CPI population summary: the average and the
// high-percentile worst cases Figure 13 plots.
type CPISummary struct {
	Average float64
	P99     float64
	P999    float64
}

// Figure13App compares request CPI under the original and contention-
// easing schedulers for one application.
type Figure13App struct {
	App             string
	Threshold       float64
	Original, Eased CPISummary
	Runs            int
}

// Figure13Result reproduces Figure 13: request CPI performance under
// contention-easing CPU scheduling (lower is better); the paper's result is
// a ~10% reduction of worst-case CPI with little change in the average.
type Figure13Result struct {
	Apps []Figure13App
}

// Figure13 runs the Figure 12 configurations and summarizes the pooled
// per-request CPI populations.
func Figure13(cfg Config) (*Figure13Result, error) {
	out := &Figure13Result{}
	apps := []workload.App{workload.NewTPCH(), workload.NewWeBWorK()}
	for _, app := range apps {
		n := cfg.schedRequests(app.Name())
		calib, err := runTracked(cfg, app, 0, n)
		if err != nil {
			return nil, fmt.Errorf("figure13 %s calibration: %w", app.Name(), err)
		}
		threshold := sched.HighUsageThreshold(calib.Store, 80)

		const runs = 3
		var origCPI, easedCPI []float64
		for r := 0; r < runs; r++ {
			seed := cfg.Seed + int64(r)*101
			o, err := core.Run(core.Options{
				App: app, Requests: n, Sampling: core.DefaultSampling(app), Seed: seed,
			}, core.WithObserver(cfg.Obs))
			if err != nil {
				return nil, fmt.Errorf("figure13 %s original: %w", app.Name(), err)
			}
			e, err := core.Run(core.Options{
				App: app, Requests: n, Sampling: core.DefaultSampling(app),
				Policy: core.PolicyContentionEasing, UsageThreshold: threshold, Seed: seed,
			}, core.WithObserver(cfg.Obs))
			if err != nil {
				return nil, fmt.Errorf("figure13 %s eased: %w", app.Name(), err)
			}
			origCPI = append(origCPI, o.Store.MetricValues(metrics.CPI)...)
			easedCPI = append(easedCPI, e.Store.MetricValues(metrics.CPI)...)
		}
		out.Apps = append(out.Apps, Figure13App{
			App:       app.Name(),
			Threshold: threshold,
			Original:  summarizeCPI(origCPI),
			Eased:     summarizeCPI(easedCPI),
			Runs:      runs,
		})
	}
	return out, nil
}

func summarizeCPI(xs []float64) CPISummary {
	return CPISummary{
		Average: stats.Mean(xs),
		P99:     stats.Percentile(xs, 99),
		P999:    stats.Percentile(xs, 99.9),
	}
}

// WorstCaseReduction returns the relative 99.9-percentile CPI reduction.
func (a Figure13App) WorstCaseReduction() float64 {
	if a.Original.P999 == 0 {
		return 0
	}
	return 1 - a.Eased.P999/a.Original.P999
}

// String renders the comparison.
func (r *Figure13Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 13: request CPI under contention-easing scheduling\n")
	for _, a := range r.Apps {
		fmt.Fprintf(&b, "\n%s (%d runs):\n", a.App, a.Runs)
		rows := [][]string{
			{"average", fmt.Sprintf("%.3f", a.Original.Average), fmt.Sprintf("%.3f", a.Eased.Average)},
			{"99 percentile", fmt.Sprintf("%.3f", a.Original.P99), fmt.Sprintf("%.3f", a.Eased.P99)},
			{"99.9 percentile", fmt.Sprintf("%.3f", a.Original.P999), fmt.Sprintf("%.3f", a.Eased.P999)},
		}
		b.WriteString(table([]string{"CPI", "original", "contention easing"}, rows))
		fmt.Fprintf(&b, "worst-case (p99.9) reduction: %.1f%%\n", a.WorstCaseReduction()*100)
	}
	return b.String()
}
