package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

// CPISummary is a request CPI population summary: the average and the
// high-percentile worst cases Figure 13 plots.
type CPISummary struct {
	Average float64
	P99     float64
	P999    float64
}

// Figure13App compares request CPI under the original and contention-
// easing schedulers for one application.
type Figure13App struct {
	App             string
	Threshold       float64
	Original, Eased CPISummary
	Runs            int
}

// Figure13Result reproduces Figure 13: request CPI performance under
// contention-easing CPU scheduling (lower is better); the paper's result is
// a ~10% reduction of worst-case CPI with little change in the average.
type Figure13Result struct {
	Apps []Figure13App
}

// Figure13 runs the Figure 12 configurations and summarizes the pooled
// per-request CPI populations.
//
// Like Figure12, the independent simulations fan out concurrently when the
// config allows it, and the CPI populations are pooled afterward in the
// fixed serial order, so results match a sequential execution exactly.
func Figure13(cfg Config) (*Figure13Result, error) {
	apps := []workload.App{workload.NewTPCH(), workload.NewWeBWorK()}
	const runs = 3
	par := cfg.parallelizable()

	type appRuns struct {
		n           int
		threshold   float64
		orig, eased [runs]*core.Result
	}
	states := make([]appRuns, len(apps))

	err := forEachIndex(len(apps), par, func(i int) error {
		app, st := apps[i], &states[i]
		st.n = cfg.schedRequests(app.Name())
		calib, err := core.Run(core.Options{
			App: app, Requests: st.n, Seed: cfg.Seed,
		}, core.WithSampling(schedSampling(app)), core.WithObserver(cfg.Obs))
		if err != nil {
			return fmt.Errorf("figure13 %s calibration: %w", app.Name(), err)
		}
		st.threshold = sched.HighUsageThreshold(calib.Store, 80)
		return nil
	})
	if err != nil {
		return nil, err
	}

	err = forEachIndex(len(apps)*runs*2, par, func(j int) error {
		i, r, easing := j/(runs*2), (j%(runs*2))/2, j%2 == 1
		app, st := apps[i], &states[i]
		opts := core.Options{
			App: app, Requests: st.n, Sampling: schedSampling(app),
			Seed: cfg.Seed + int64(r)*101,
		}
		kind := "original"
		if easing {
			opts.Policy = core.PolicyContentionEasing
			opts.UsageThreshold = st.threshold
			kind = "eased"
		}
		res, err := core.Run(opts, core.WithObserver(cfg.Obs))
		if err != nil {
			return fmt.Errorf("figure13 %s %s: %w", app.Name(), kind, err)
		}
		if easing {
			st.eased[r] = res
		} else {
			st.orig[r] = res
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &Figure13Result{}
	for i, app := range apps {
		st := &states[i]
		var origCPI, easedCPI []float64
		for r := 0; r < runs; r++ {
			origCPI = append(origCPI, st.orig[r].Store.MetricValues(metrics.CPI)...)
			easedCPI = append(easedCPI, st.eased[r].Store.MetricValues(metrics.CPI)...)
		}
		out.Apps = append(out.Apps, Figure13App{
			App:       app.Name(),
			Threshold: st.threshold,
			Original:  summarizeCPI(origCPI),
			Eased:     summarizeCPI(easedCPI),
			Runs:      runs,
		})
	}
	return out, nil
}

func summarizeCPI(xs []float64) CPISummary {
	return CPISummary{
		Average: stats.Mean(xs),
		P99:     stats.Percentile(xs, 99),
		P999:    stats.Percentile(xs, 99.9),
	}
}

// WorstCaseReduction returns the relative 99.9-percentile CPI reduction.
func (a Figure13App) WorstCaseReduction() float64 {
	if a.Original.P999 == 0 {
		return 0
	}
	return 1 - a.Eased.P999/a.Original.P999
}

// String renders the comparison.
func (r *Figure13Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 13: request CPI under contention-easing scheduling\n")
	for _, a := range r.Apps {
		fmt.Fprintf(&b, "\n%s (%d runs):\n", a.App, a.Runs)
		rows := [][]string{
			{"average", fmt.Sprintf("%.3f", a.Original.Average), fmt.Sprintf("%.3f", a.Eased.Average)},
			{"99 percentile", fmt.Sprintf("%.3f", a.Original.P99), fmt.Sprintf("%.3f", a.Eased.P99)},
			{"99.9 percentile", fmt.Sprintf("%.3f", a.Original.P999), fmt.Sprintf("%.3f", a.Eased.P999)},
		}
		b.WriteString(table([]string{"CPI", "original", "contention easing"}, rows))
		fmt.Fprintf(&b, "worst-case (p99.9) reduction: %.1f%%\n", a.WorstCaseReduction()*100)
	}
	return b.String()
}
