package experiments

import (
	"fmt"
	"strings"

	"repro/internal/machine"
	"repro/internal/serve"
	"repro/internal/workload"
)

// FleetResult reports experiment 19: the streaming pipeline scaled to a
// simulated heterogeneous fleet, comparing round-robin placement against
// fleet-wide contention-easing on the same arrival stream — the paper's
// Section 5.2 scheduler claim at datacenter granularity. The fingerprint
// covers the stream spec, the fleet topology, and both runs' full
// deterministic results (per-node and fleet-wide CPI and p99).
type FleetResult struct {
	Spec     string
	Fleet    string
	Requests int
	RR       serve.FleetResult
	Eased    serve.FleetResult
}

func (r *FleetResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet service mode: %d requests over %q\n", r.Requests, r.Spec)
	fmt.Fprintf(&b, "fleet topology: %s (%d nodes)\n", r.Fleet, len(r.RR.Nodes))
	b.WriteString(r.RR.String())
	b.WriteString(r.Eased.String())
	dCPI := (r.RR.CPI - r.Eased.CPI) / r.RR.CPI * 100
	dP99 := (r.RR.P99Ns - r.Eased.P99Ns) / r.RR.P99Ns * 100
	fmt.Fprintf(&b, "contention easing vs round-robin: CPI %+.2f%%, p99 %+.2f%%\n", dCPI, dP99)
	return b.String()
}

// Fleet runs experiment 19: one deterministic arrival stream over the
// standard heterogeneous 16-core fleet, once under round-robin placement
// and once under contention-easing, at a scale of one million requests per
// policy. Bursts and the bank maintenance cadence track the run's span so
// every scale exercises the flash crowd, per-node compaction, and
// fleet-wide bank merges. Results are bit-identical across repeats and
// GOMAXPROCS settings.
func Fleet(cfg Config) (*FleetResult, error) {
	requests := cfg.scaled(1_000_000, 20_000)
	fc := serve.DefaultFleetConfig(cfg.Seed)
	// The flash crowd lands at 30% of the expected span regardless of
	// scale; compaction runs ~10 rounds and merges ~5 times per run.
	spanNs := float64(requests) / fc.Stream.RatePerSec * 1e9
	fc.Stream.Bursts = []workload.StreamBurst{
		{StartNs: 0.30 * spanNs, DurationNs: 0.15 * spanNs, Factor: 2},
	}
	if ticks := int(spanNs / float64(fc.TickNs)); ticks/10 > 0 {
		fc.CompactTicks = ticks / 10
	} else {
		fc.CompactTicks = 1
	}
	fc.MergeEvery = 2
	fc.Obs = cfg.Obs

	res := &FleetResult{
		Spec:     fc.Stream.String(),
		Fleet:    machine.FleetString(fc.Nodes),
		Requests: requests,
	}
	for _, pol := range []serve.FleetPolicy{serve.FleetRoundRobin, serve.FleetContentionEase} {
		fc.Policy = pol
		f, err := serve.NewFleet(fc)
		if err != nil {
			return nil, err
		}
		f.Process(requests)
		f.Drain()
		r := f.Result()
		f.Close()
		if pol == serve.FleetRoundRobin {
			res.RR = r
		} else {
			res.Eased = r
		}
	}
	return res, nil
}
