package experiments

import (
	"fmt"
	"strings"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Table1Row is one measured sampling-cost configuration: a sampling
// context × running microbenchmark pair.
type Table1Row struct {
	Context  string
	Workload string
	// TimeCostNs is the per-sample cost.
	TimeCostNs float64
	// Extra are the additional hardware events injected per sample.
	Extra metrics.Counters
}

// Table1Result reproduces Table 1: per-sampling average cost and
// additional event counts, for in-kernel and interrupt sampling contexts,
// under the Mbench-Spin and Mbench-Data cache pollution extremes.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 measures the observer effect the way the paper does: run each
// microbenchmark, take samples, and measure the cost and counter
// perturbation each sample leaves behind. Back-to-back samples isolate a
// single sample's own events, since sampling stalls application progress.
func Table1(cfg Config) (*Table1Result, error) {
	out := &Table1Result{}
	benches := []workload.App{workload.NewMbenchSpin(), workload.NewMbenchData()}
	contexts := []metrics.SampleContext{metrics.CtxKernel, metrics.CtxInterrupt}
	for _, ctx := range contexts {
		for _, mb := range benches {
			row, err := measureObserver(cfg, mb, ctx)
			if err != nil {
				return nil, fmt.Errorf("table1 %s/%s: %w", ctx, mb.Name(), err)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func measureObserver(cfg Config, mb workload.App, ctx metrics.SampleContext) (Table1Row, error) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig())
	k.AddWorkers(0, 1)
	g := sim.ForkLabeled(cfg.Seed, "table1-"+mb.Name())
	k.Submit(mb.NewRequest(1, g))

	var total metrics.Counters
	samples := 0
	const measurements = 200
	// Let the benchmark warm up, then take paired samples at intervals.
	var step func()
	step = func() {
		if samples >= measurements {
			eng.Stop()
			return
		}
		a := k.Sample(0, ctx)
		b := k.Sample(0, ctx)
		total = total.Add(b.Sub(a))
		samples++
		eng.After(50*sim.Microsecond, step)
	}
	eng.After(100*sim.Microsecond, step)
	eng.Run(2 * sim.Second)
	if samples == 0 {
		return Table1Row{}, fmt.Errorf("no samples taken")
	}
	n := uint64(samples)
	avg := metrics.Counters{
		Cycles:       total.Cycles / n,
		Instructions: total.Instructions / n,
		L2Refs:       total.L2Refs / n,
		L2Misses:     total.L2Misses / n,
	}
	return Table1Row{
		Context:    ctx.String(),
		Workload:   mb.Name(),
		TimeCostNs: float64(avg.Cycles) / 3.0, // 3 GHz
		Extra:      avg,
	}, nil
}

// String renders the table in the paper's layout.
func (r *Table1Result) String() string {
	var rows [][]string
	for _, row := range r.Rows {
		nm := func(v uint64) string {
			if v == 0 {
				return "N/M"
			}
			return fmt.Sprintf("%d", v)
		}
		rows = append(rows, []string{
			row.Context, row.Workload,
			fmt.Sprintf("%.2f us", row.TimeCostNs/1000),
			fmt.Sprintf("%d", row.Extra.Cycles),
			fmt.Sprintf("%d", row.Extra.Instructions),
			nm(row.Extra.L2Refs),
			nm(row.Extra.L2Misses),
		})
	}
	var b strings.Builder
	b.WriteString("Table 1: per-sampling average cost and additional event counts\n")
	b.WriteString(table(
		[]string{"context", "workload", "time cost", "cycles", "ins", "L2 ref", "L2 miss"},
		rows))
	return b.String()
}
