package experiments

import (
	"fmt"

	"repro/internal/anomaly"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Figure9Result reproduces Figure 9: an anomalous WeBWorK request compared
// against a reference processing the same problem (the paper's example
// uses problem identifier 954), found through multi-metric differencing —
// similar L2-references-per-instruction patterns, divergent CPI.
type Figure9Result struct {
	Comparison AnomalyComparison
	Problem    int
}

// figure9Problem is the paper's example problem identifier.
const figure9Problem = 954

// Figure9 runs a WeBWorK load restricted to a handful of problems (so the
// target problem recurs), then searches for the strongest anomaly-reference
// pair among the target problem's requests.
func Figure9(cfg Config) (*Figure9Result, error) {
	app := workload.NewWeBWorKProblems(figure9Problem, 117, 1501, 2222, 2718)
	n := cfg.scaled(40, 15)
	res, err := runTracked(cfg, app, 0, n)
	if err != nil {
		return nil, fmt.Errorf("figure9: %w", err)
	}
	m := core.NewModeler("webwork", res.Store.Traces)
	det := &anomaly.Detector{BucketIns: m.BucketIns, Measure: m.DTWPenalized()}

	group := res.Store.ByType()[fmt.Sprintf("problem-%d", figure9Problem)]
	if len(group) < 2 {
		return nil, fmt.Errorf("figure9: only %d requests for problem %d", len(group), figure9Problem)
	}
	pairs := det.FindPairs(group, 1)
	if len(pairs) == 0 {
		return nil, fmt.Errorf("figure9: no anomaly-reference pair found")
	}
	p := pairs[0]
	cmp := AnomalyComparison{
		App:              "webwork",
		GroupName:        fmt.Sprintf("problem-%d", figure9Problem),
		BucketIns:        m.BucketIns,
		AnomalyCPI:       p.Anomaly.Resampled(metrics.CPI, m.BucketIns),
		ReferenceCPI:     p.Reference.Resampled(metrics.CPI, m.BucketIns),
		AnomalyMissIns:   p.Anomaly.Resampled(metrics.L2MissesPerIns, m.BucketIns),
		ReferenceMissIns: p.Reference.Resampled(metrics.L2MissesPerIns, m.BucketIns),
		AnomalyRefsIns:   p.Anomaly.Resampled(metrics.L2RefsPerIns, m.BucketIns),
		ReferenceRefsIns: p.Reference.Resampled(metrics.L2RefsPerIns, m.BucketIns),
		Analysis:         det.Analyze(p),
		CentroidDistance: p.CPIDistance,
	}
	return &Figure9Result{Comparison: cmp, Problem: figure9Problem}, nil
}

// String summarizes the comparison.
func (r *Figure9Result) String() string {
	return fmt.Sprintf("Figure 9: WeBWorK anomaly vs reference (problem %d)\n", r.Problem) +
		r.Comparison.render("WeBWorK same-problem anomaly analysis")
}
