package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/anomaly"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// AnomalyComparison holds an anomaly-vs-reference pattern comparison (the
// content of Figures 8 and 9): the three metric variation patterns for
// both requests plus the quantitative analysis.
type AnomalyComparison struct {
	App       string
	GroupName string
	BucketIns float64

	AnomalyCPI, ReferenceCPI         []float64
	AnomalyMissIns, ReferenceMissIns []float64
	AnomalyRefsIns, ReferenceRefsIns []float64
	Analysis                         anomaly.Analysis
	// CentroidDistance is the anomaly's pattern distance from the group
	// centroid (Figure 8's detection criterion).
	CentroidDistance float64
}

// Figure8Result reproduces Figure 8: an anomalous TPCH request (Q20)
// compared against the centroid of the group processing the same query.
type Figure8Result struct {
	Comparison AnomalyComparison
}

// Figure8 runs TPCH concurrently, groups requests by query, detects the
// most anomalous Q20 request by centroid distance, and analyzes it against
// the group centroid as the reference.
func Figure8(cfg Config) (*Figure8Result, error) {
	n := cfg.scaled(120, 30)
	res, err := runTracked(cfg, workload.NewTPCH(), 0, n)
	if err != nil {
		return nil, fmt.Errorf("figure8: %w", err)
	}
	m := core.NewModeler("tpch", res.Store.Traces)
	det := &anomaly.Detector{BucketIns: m.BucketIns, Measure: m.DTWPenalized()}

	// Prefer Q20 like the paper; fall back to the largest group.
	groups := res.Store.ByType()
	group := groups["Q20"]
	name := "Q20"
	if len(group) < 3 {
		// Pick the largest group, walking names in sorted order so ties
		// break identically on every run (map iteration order must never
		// reach a result).
		names := make([]string, 0, len(groups))
		for g := range groups { // maporder:ok sorted immediately below
			names = append(names, g)
		}
		sort.Strings(names)
		for _, g := range names {
			if trs := groups[g]; len(trs) > len(group) {
				group, name = trs, g
			}
		}
	}
	if len(group) < 3 {
		return nil, fmt.Errorf("figure8: no query group large enough (best %d)", len(group))
	}
	centroid, ranked := det.GroupAnomalies(group, metrics.CPI)
	// Anomalies of interest are the slow ones: prefer the farthest-from-
	// centroid request whose CPI exceeds the centroid's (adverse dynamic
	// effects), falling back to the farthest overall.
	anom := ranked[0]
	cCPI := centroid.MetricValue(metrics.CPI)
	for _, cand := range ranked {
		if cand.Trace.MetricValue(metrics.CPI) > cCPI {
			anom = cand
			break
		}
	}
	pair := anomaly.Pair{Anomaly: anom.Trace, Reference: centroid}
	cmp := AnomalyComparison{
		App:              "tpch",
		GroupName:        name,
		BucketIns:        m.BucketIns,
		AnomalyCPI:       anom.Trace.Resampled(metrics.CPI, m.BucketIns),
		ReferenceCPI:     centroid.Resampled(metrics.CPI, m.BucketIns),
		AnomalyMissIns:   anom.Trace.Resampled(metrics.L2MissesPerIns, m.BucketIns),
		ReferenceMissIns: centroid.Resampled(metrics.L2MissesPerIns, m.BucketIns),
		AnomalyRefsIns:   anom.Trace.Resampled(metrics.L2RefsPerIns, m.BucketIns),
		ReferenceRefsIns: centroid.Resampled(metrics.L2RefsPerIns, m.BucketIns),
		Analysis:         det.Analyze(pair),
		CentroidDistance: anom.Distance,
	}
	return &Figure8Result{Comparison: cmp}, nil
}

func (c AnomalyComparison) render(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (group %s, bucket %.0f ins)\n", title, c.GroupName, c.BucketIns)
	fmt.Fprintf(&b, "anomaly CPI:   %s\n", summarize(c.AnomalyCPI))
	fmt.Fprintf(&b, "reference CPI: %s\n", summarize(c.ReferenceCPI))
	fmt.Fprintf(&b, "anomaly CPI excess: %.3f\n", c.Analysis.CPIExcess)
	fmt.Fprintf(&b, "CPI-vs-miss pattern correlation: %.3f\n", c.Analysis.MissCorrelation)
	fmt.Fprintf(&b, "instruction excess: %.3fx, L2 refs/ins excess: %.3fx\n",
		c.Analysis.InstructionExcess, c.Analysis.RefsExcess)
	return b.String()
}

// String summarizes the comparison.
func (r *Figure8Result) String() string {
	return "Figure 8: TPCH anomaly vs group centroid\n" +
		r.Comparison.render("TPCH per-query anomaly analysis")
}
