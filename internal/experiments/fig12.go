package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Figure12App compares high-resource-usage co-execution with and without
// contention-easing scheduling for one application.
type Figure12App struct {
	App string
	// Threshold is the 80-percentile L2 misses-per-instruction boundary.
	Threshold float64
	// Original and Eased are time proportions (averaged over runs) of ≥2,
	// ≥3, and 4 cores simultaneously executing at high usage.
	Original, Eased sched.HighUsageCoExecution
	// Runs is the number of averaged test runs (the paper uses three
	// 1000-request runs).
	Runs int
}

// Figure12Result reproduces Figure 12: effectiveness of contention-easing
// request scheduling for TPCH and WeBWorK.
type Figure12Result struct {
	Apps []Figure12App
}

// Figure12 calibrates the per-application high-usage threshold from a
// baseline run, then measures co-execution proportions under the original
// and contention-easing schedulers, averaging several runs.
//
// All simulations are independent closed-loop runs, so they execute
// concurrently when the config allows it (see forEachIndex): first the
// per-app calibrations, then every (app, run, policy) measurement.
// Aggregation happens afterward in the fixed serial order, keeping results
// bit-identical to a sequential execution.
func Figure12(cfg Config) (*Figure12Result, error) {
	apps := []workload.App{workload.NewTPCH(), workload.NewWeBWorK()}
	const runs = 3
	par := cfg.parallelizable()

	type appRuns struct {
		n           int
		threshold   float64
		orig, eased [runs]*core.Result
	}
	states := make([]appRuns, len(apps))

	err := forEachIndex(len(apps), par, func(i int) error {
		app, st := apps[i], &states[i]
		st.n = cfg.schedRequests(app.Name())
		calib, err := core.Run(core.Options{
			App: app, Requests: st.n, Seed: cfg.Seed,
		}, core.WithSampling(schedSampling(app)), core.WithObserver(cfg.Obs))
		if err != nil {
			return fmt.Errorf("figure12 %s calibration: %w", app.Name(), err)
		}
		st.threshold = sched.HighUsageThreshold(calib.Store, 80)
		if st.threshold <= 0 {
			return fmt.Errorf("figure12 %s: degenerate threshold", app.Name())
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	err = forEachIndex(len(apps)*runs*2, par, func(j int) error {
		i, r, easing := j/(runs*2), (j%(runs*2))/2, j%2 == 1
		app, st := apps[i], &states[i]
		opts := core.Options{
			App: app, Requests: st.n, Sampling: schedSampling(app),
			UsageThreshold: st.threshold, MeterCoExecution: true,
			Seed: cfg.Seed + int64(r)*101,
		}
		kind := "original"
		if easing {
			opts.Policy = core.PolicyContentionEasing
			kind = "eased"
		}
		res, err := core.Run(opts, core.WithObserver(cfg.Obs))
		if err != nil {
			return fmt.Errorf("figure12 %s %s: %w", app.Name(), kind, err)
		}
		if easing {
			st.eased[r] = res
		} else {
			st.orig[r] = res
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &Figure12Result{}
	for i, app := range apps {
		st := &states[i]
		var orig, eased sched.HighUsageCoExecution
		for r := 0; r < runs; r++ {
			o, e := st.orig[r], st.eased[r]
			orig.AtLeast2 += o.CoExecution.AtLeast2 / runs
			orig.AtLeast3 += o.CoExecution.AtLeast3 / runs
			orig.All4 += o.CoExecution.All4 / runs
			eased.AtLeast2 += e.CoExecution.AtLeast2 / runs
			eased.AtLeast3 += e.CoExecution.AtLeast3 / runs
			eased.All4 += e.CoExecution.All4 / runs
		}
		out.Apps = append(out.Apps, Figure12App{
			App: app.Name(), Threshold: st.threshold,
			Original: orig, Eased: eased, Runs: runs,
		})
	}
	return out, nil
}

// Reduction returns the relative reduction of the 4-cores-high proportion.
func (a Figure12App) Reduction() float64 {
	if a.Original.All4 == 0 {
		return 0
	}
	return 1 - a.Eased.All4/a.Original.All4
}

// String renders the per-level comparison.
func (r *Figure12Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 12: contention-easing scheduling, high-usage co-execution time\n")
	for _, a := range r.Apps {
		fmt.Fprintf(&b, "\n%s (threshold %.2e misses/ins, %d runs):\n", a.App, a.Threshold, a.Runs)
		rows := [][]string{
			{">=2 cores", pct(a.Original.AtLeast2), pct(a.Eased.AtLeast2), pctDelta(a.Original.AtLeast2, a.Eased.AtLeast2)},
			{">=3 cores", pct(a.Original.AtLeast3), pct(a.Eased.AtLeast3), pctDelta(a.Original.AtLeast3, a.Eased.AtLeast3)},
			{"4 cores", pct(a.Original.All4), pct(a.Eased.All4), pctDelta(a.Original.All4, a.Eased.All4)},
		}
		b.WriteString(table([]string{"level", "original", "contention easing", "reduction"}, rows))
	}
	return b.String()
}

func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

func pctDelta(orig, eased float64) string {
	if orig == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", (1-eased/orig)*100)
}
