package experiments

import (
	"strings"
	"testing"
)

// testCfg runs experiments at reduced scale; the assertions below check the
// paper's qualitative shapes, which must hold even at this scale.
var testCfg = Config{Seed: 1, Scale: 0.2}

func TestFigure1Shapes(t *testing.T) {
	r, err := Figure1(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Apps) != 5 {
		t.Fatalf("apps = %d", len(r.Apps))
	}
	byApp := map[string]Figure1App{}
	for _, a := range r.Apps {
		byApp[a.App] = a
		if len(a.Serial) == 0 || len(a.Concurrent) == 0 {
			t.Fatalf("%s: empty distributions", a.App)
		}
		// Concurrency never improves the 90-percentile CPI.
		if a.ConcurrentP90 < a.SerialP90*0.95 {
			t.Errorf("%s: 4-core p90 %.2f below 1-core %.2f", a.App, a.ConcurrentP90, a.SerialP90)
		}
	}
	// TPCH's 90-percentile roughly doubles under concurrency.
	tpch := byApp["tpch"]
	if ratio := tpch.ConcurrentP90 / tpch.SerialP90; ratio < 1.5 || ratio > 3.0 {
		t.Errorf("TPCH p90 obfuscation ratio = %.2f, want ~2x", ratio)
	}
	// WeBWorK sees no significant impact.
	ww := byApp["webwork"]
	if ratio := ww.ConcurrentP90 / ww.SerialP90; ratio > 1.15 {
		t.Errorf("WeBWorK p90 ratio = %.2f, want ~1x", ratio)
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFigure2Shapes(t *testing.T) {
	r, err := Figure2(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Requests) != 5 {
		t.Fatalf("requests = %d", len(r.Requests))
	}
	for _, q := range r.Requests {
		if len(q.CPI) < 3 {
			t.Errorf("%s: too few pattern points (%d)", q.App, len(q.CPI))
		}
		if q.CPICoV <= 0 {
			t.Errorf("%s: no intra-request variation captured", q.App)
		}
		if len(q.RefsPerIn) == 0 || len(q.MissRatio) == 0 {
			t.Errorf("%s: missing companion metric patterns", q.App)
		}
	}
	// WeBWorK requests are by far the longest (hundreds of millions of
	// instructions) and web requests the shortest.
	byApp := map[string]Figure2Request{}
	for _, q := range r.Requests {
		byApp[q.App] = q
	}
	if byApp["webwork"].TotalIns < 50*byApp["webserver"].TotalIns {
		t.Error("request length scales not preserved")
	}
	_ = r.String()
}

func TestTable1Shapes(t *testing.T) {
	r, err := Table1(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	find := func(ctx, wl string) Table1Row {
		for _, row := range r.Rows {
			if row.Context == ctx && strings.Contains(row.Workload, wl) {
				return row
			}
		}
		t.Fatalf("missing row %s/%s", ctx, wl)
		return Table1Row{}
	}
	ks := find("in-kernel", "spin")
	kd := find("in-kernel", "data")
	is := find("interrupt", "spin")
	id := find("interrupt", "data")
	// Interrupt sampling costs more than in-kernel sampling (the extra
	// user/kernel domain switch).
	if is.TimeCostNs <= ks.TimeCostNs {
		t.Errorf("interrupt cost %.0f <= kernel cost %.0f", is.TimeCostNs, ks.TimeCostNs)
	}
	// Cache-polluting workloads raise the cost and inject L2 references.
	if kd.TimeCostNs <= ks.TimeCostNs || id.TimeCostNs <= is.TimeCostNs {
		t.Error("Mbench-Data should cost more per sample than Mbench-Spin")
	}
	if kd.Extra.L2Refs == 0 || id.Extra.L2Refs == 0 {
		t.Error("Mbench-Data samples should inject L2 references")
	}
	if ks.Extra.L2Refs > 2 || is.Extra.L2Refs > 2 {
		t.Error("Mbench-Spin samples should inject (almost) no L2 references")
	}
	// The paper's absolute scale: in-kernel ~0.4 µs, interrupt ~0.8 µs.
	if ks.TimeCostNs < 300 || ks.TimeCostNs > 600 {
		t.Errorf("in-kernel sample cost %.0f ns outside Table 1 scale", ks.TimeCostNs)
	}
	if is.TimeCostNs < 600 || is.TimeCostNs > 1000 {
		t.Errorf("interrupt sample cost %.0f ns outside Table 1 scale", is.TimeCostNs)
	}
	_ = r.String()
}

func TestFigure3Shapes(t *testing.T) {
	r, err := Figure3(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Figure3App{}
	for _, a := range r.Apps {
		byApp[a.App] = a
	}
	for _, m := range r.Metrics {
		var tpchRatio float64
		for name, a := range byApp {
			inter, intra := a.InterOnly[m], a.WithIntra[m]
			if intra < inter*0.9 {
				t.Errorf("%s/%v: intra-request consideration reduced CoV (%.3f -> %.3f)",
					name, m, inter, intra)
			}
			ratio := intra / inter
			if name == "tpch" {
				tpchRatio = ratio
			}
		}
		// TPCH gains the least from intra-request consideration: its ratio
		// is below most other applications'.
		above := 0
		for name, a := range byApp {
			if name == "tpch" {
				continue
			}
			if a.WithIntra[m]/a.InterOnly[m] > tpchRatio {
				above++
			}
		}
		if above < 3 {
			t.Errorf("metric %v: TPCH intra/inter ratio %.2f not among the lowest (only %d apps above)",
				m, tpchRatio, above)
		}
	}
	_ = r.String()
}

func TestFigure4Shapes(t *testing.T) {
	r, err := Figure4(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Figure4App{}
	for _, a := range r.Apps {
		byApp[a.App] = a
		// CDFs are monotone and end at ~1.
		prev := 0.0
		for _, v := range a.TimeCDF {
			if v < prev-1e-9 {
				t.Fatalf("%s: time CDF not monotone", a.App)
			}
			prev = v
		}
		if prev < 0.95 {
			t.Errorf("%s: time CDF tops out at %.2f", a.App, prev)
		}
	}
	// The paper's frequency ordering at 16 µs: web > tpch > rubis are all
	// frequent; TPCC and WeBWorK are not.
	if byApp["webserver"].At(16) < 0.80 {
		t.Errorf("web P(syscall within 16us) = %.2f, want very high", byApp["webserver"].At(16))
	}
	if byApp["tpch"].At(16) < 0.6 {
		t.Errorf("tpch P(16us) = %.2f, want high", byApp["tpch"].At(16))
	}
	if byApp["rubis"].At(16) < 0.5 {
		t.Errorf("rubis P(16us) = %.2f, want moderately high", byApp["rubis"].At(16))
	}
	for _, slow := range []string{"tpcc", "webwork"} {
		if v := byApp[slow].At(16); v > 0.5 {
			t.Errorf("%s P(16us) = %.2f, should be low", slow, v)
		}
		// …but a system call within a millisecond is likely.
		if v := byApp[slow].At(1024); v < 0.6 {
			t.Errorf("%s P(1ms) = %.2f, want high", slow, v)
		}
	}
	_ = r.String()
}

func TestFigure5Shapes(t *testing.T) {
	r, err := Figure5(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range r.Apps {
		// Syscall-triggered sampling saves overhead at matched frequency
		// (the paper: 18–38%; bounded by the 44% kernel/interrupt cost gap).
		if a.Normalized >= 1.0 {
			t.Errorf("%s: no overhead saving (normalized %.2f)", a.App, a.Normalized)
		}
		if a.Normalized < 0.5 {
			t.Errorf("%s: saving %.2f exceeds the possible kernel-vs-interrupt gap",
				a.App, 1-a.Normalized)
		}
		// Frequencies matched within a third.
		ratio := float64(a.SyscallSamples) / float64(a.InterruptSamples)
		if ratio < 0.6 || ratio > 1.4 {
			t.Errorf("%s: sample frequency mismatch %.2f", a.App, ratio)
		}
	}
	// The base cost ordering follows sampling granularity: web (10 µs)
	// costs by far the most, TPCH/WeBWorK (1 ms) the least.
	byApp := map[string]Figure5App{}
	for _, a := range r.Apps {
		byApp[a.App] = a
	}
	if byApp["webserver"].BaseCostPct < 2 {
		t.Errorf("web base cost %.2f%%, want the largest (paper: 5.81%%)", byApp["webserver"].BaseCostPct)
	}
	if byApp["tpch"].BaseCostPct > 0.5 || byApp["webwork"].BaseCostPct > 0.5 {
		t.Error("1 ms-sampled apps should have tiny base costs")
	}
	_ = r.String()
}

func TestTable2Shapes(t *testing.T) {
	r, err := Table2(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	wv, ok := r.Signal("writev")
	if !ok || !wv.Increase() || wv.Mean < 2 {
		t.Errorf("writev should signal a strong CPI increase, got %+v", wv)
	}
	for _, dec := range []string{"lseek", "stat", "open"} {
		s, ok := r.Signal(dec)
		if !ok || s.Increase() {
			t.Errorf("%s should signal a CPI decrease, got %+v", dec, s)
		}
	}
	for _, inc := range []string{"poll", "shutdown", "read"} {
		s, ok := r.Signal(inc)
		if !ok || !s.Increase() {
			t.Errorf("%s should signal a CPI increase, got %+v", inc, s)
		}
	}
	// writev must rank first by |mean| and be selected as a trigger.
	if r.Signals[0].Name != "writev" {
		t.Errorf("top signal = %s, want writev", r.Signals[0].Name)
	}
	found := false
	for _, s := range r.Selected {
		if s == "writev" {
			found = true
		}
	}
	if !found {
		t.Error("writev not selected as a trigger")
	}
	// Targeted sampling captures at least as much variation at a similar
	// sampling frequency (the paper: 0.60 -> 0.65).
	if r.SignalCoV <= r.UniformCoV {
		t.Errorf("signal-targeted CoV %.3f should exceed uniform %.3f", r.SignalCoV, r.UniformCoV)
	}
	_ = r.String()
}

func TestFigure6Shapes(t *testing.T) {
	r, err := Figure6(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	// The drift example: L1 over-estimates relative to penalized DTW.
	if r.Ratio <= 1.0 {
		t.Errorf("L1/DTW ratio = %.2f, want > 1 (over-estimation)", r.Ratio)
	}
	if len(r.RequestA) == 0 || len(r.RequestB) == 0 {
		t.Error("empty patterns")
	}
	_ = r.String()
}

func TestFigure7Shapes(t *testing.T) {
	r, err := Figure7(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Apps) != 5 {
		t.Fatalf("apps = %d", len(r.Apps))
	}
	const (
		dtwPen = "DTW+asynchrony-penalty"
		dtw    = "DTW-CPI-variations"
		avg    = "average-CPI"
		lev    = "levenshtein-syscalls"
		l1     = "L1-CPI-variations"
	)
	// Averaged over applications (CPU-time panel): the paper's ordering —
	// DTW with asynchrony penalty beats plain DTW, the software-only
	// Levenshtein measure, and the average-value measure; L1 is close to
	// penalized DTW.
	if r.Mean(dtwPen, false) >= r.Mean(dtw, false) {
		t.Errorf("penalized DTW (%.3f) should beat plain DTW (%.3f) on CPU time",
			r.Mean(dtwPen, false), r.Mean(dtw, false))
	}
	if r.Mean(dtwPen, false) >= r.Mean(avg, false) {
		t.Errorf("penalized DTW (%.3f) should beat average-CPI (%.3f) on CPU time",
			r.Mean(dtwPen, false), r.Mean(avg, false))
	}
	if r.Mean(dtwPen, false) >= r.Mean(lev, false) {
		t.Errorf("penalized DTW (%.3f) should beat Levenshtein (%.3f) on CPU time",
			r.Mean(dtwPen, false), r.Mean(lev, false))
	}
	if r.Mean(l1, false) > 2.5*r.Mean(dtwPen, false)+0.02 {
		t.Errorf("L1 (%.3f) should be competitive with penalized DTW (%.3f)",
			r.Mean(l1, false), r.Mean(dtwPen, false))
	}
	// On the peak-CPI property, the average-CPI measure is competitive
	// (strong correlation between average and peak CPI) — it must not be
	// the worst there.
	if r.Mean(avg, true) >= r.Mean(lev, true) {
		t.Errorf("average-CPI (%.3f) should beat Levenshtein (%.3f) on peak CPI",
			r.Mean(avg, true), r.Mean(lev, true))
	}
	_ = r.String()
}

func TestFigure8Shapes(t *testing.T) {
	r, err := Figure8(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	c := r.Comparison
	if c.Analysis.CPIExcess <= 0 {
		t.Errorf("anomaly CPI excess = %.3f, want positive", c.Analysis.CPIExcess)
	}
	// The anomalous CPI pattern matches the L2 miss pattern.
	if c.Analysis.MissCorrelation < 0.5 {
		t.Errorf("CPI-vs-miss correlation = %.2f, want strong", c.Analysis.MissCorrelation)
	}
	if len(c.AnomalyCPI) == 0 || len(c.ReferenceCPI) == 0 {
		t.Error("empty patterns")
	}
	_ = r.String()
}

func TestFigure9Shapes(t *testing.T) {
	r, err := Figure9(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	c := r.Comparison
	// Same-problem pairs share reference streams: refs/ins patterns agree
	// within a few percent on average.
	if c.Analysis.RefsExcess < 0.9 || c.Analysis.RefsExcess > 1.1 {
		t.Errorf("refs/ins excess = %.3f, want ~1 (similar reference streams)", c.Analysis.RefsExcess)
	}
	if c.Analysis.CPIExcess < 0 {
		t.Errorf("anomaly should not be faster than its reference: %.3f", c.Analysis.CPIExcess)
	}
	_ = r.String()
}

func TestFigure10Shapes(t *testing.T) {
	r, err := Figure10(Config{Seed: 1, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Apps) != 5 {
		t.Fatalf("apps = %d", len(r.Apps))
	}
	for _, a := range r.Apps {
		if len(a.PatternErr) != 10 || len(a.AverageErr) != 10 {
			t.Fatalf("%s: wrong step count", a.App)
		}
		for _, e := range append(append([]float64{}, a.PatternErr...), a.AverageErr...) {
			if e < 0 || e > 1 {
				t.Fatalf("%s: error out of range: %v", a.App, e)
			}
		}
	}
	// For the database-driven applications the variation signature beats
	// the past-requests baseline clearly by full progress.
	byApp := map[string]Figure10App{}
	for _, a := range r.Apps {
		byApp[a.App] = a
	}
	for _, name := range []string{"tpcc", "rubis"} {
		a := byApp[name]
		if a.FinalErr(true) >= a.PastErr {
			t.Errorf("%s: variation signature (%.2f) should beat past-requests (%.2f)",
				name, a.FinalErr(true), a.PastErr)
		}
	}
	_ = r.String()
}

func TestFigure11Shapes(t *testing.T) {
	r, err := Figure11(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Apps) != 2 {
		t.Fatalf("apps = %d", len(r.Apps))
	}
	for _, a := range r.Apps {
		// The best vaEWMA setting is the best predictor, or within a hair
		// of it (the paper's last-value bars are close for WeBWorK, whose
		// module phases outlast the sampling period).
		bestVa := ""
		for _, l := range a.Labels {
			if strings.Contains(l, "vaEWMA") && (bestVa == "" || a.RMSE[l] < a.RMSE[bestVa]) {
				bestVa = l
			}
		}
		best := a.Best()
		if a.RMSE[bestVa] > a.RMSE[best]*1.03 {
			t.Errorf("%s: best vaEWMA (%.3e) not within 3%% of best %s (%.3e)",
				a.App, a.RMSE[bestVa], best, a.RMSE[best])
		}
		// The request-average predictor must not beat the best vaEWMA.
		if a.RMSE["request average"] <= a.RMSE[bestVa] {
			t.Errorf("%s: request average (%.3e) beat vaEWMA (%.3e)",
				a.App, a.RMSE["request average"], a.RMSE[bestVa])
		}
	}
	_ = r.String()
}

func TestFigure12Shapes(t *testing.T) {
	r, err := Figure12(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Apps) != 2 {
		t.Fatalf("apps = %d", len(r.Apps))
	}
	for _, a := range r.Apps {
		// Proportions are sane and monotone by level.
		for _, co := range []struct{ l2, l3, l4 float64 }{
			{a.Original.AtLeast2, a.Original.AtLeast3, a.Original.All4},
			{a.Eased.AtLeast2, a.Eased.AtLeast3, a.Eased.All4},
		} {
			if co.l2 < co.l3 || co.l3 < co.l4 {
				t.Errorf("%s: co-execution proportions not monotone", a.App)
			}
		}
	}
	// TPCH: the most intensive contention (all four cores high) drops
	// substantially under contention easing.
	tpch := r.Apps[0]
	if tpch.App != "tpch" {
		t.Fatalf("first app = %s", tpch.App)
	}
	if tpch.Original.All4 > 0 && tpch.Reduction() < 0.1 {
		t.Errorf("tpch 4-core-high reduction = %.2f, want substantial", tpch.Reduction())
	}
	_ = r.String()
}

func TestFigure13Shapes(t *testing.T) {
	r, err := Figure13(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range r.Apps {
		// Summaries are ordered: average <= p99 <= p999.
		for _, s := range []CPISummary{a.Original, a.Eased} {
			if s.Average > s.P99 || s.P99 > s.P999 {
				t.Errorf("%s: CPI summary not ordered: %+v", a.App, s)
			}
		}
		// Contention easing does not meaningfully hurt the average…
		if a.Eased.Average > a.Original.Average*1.05 {
			t.Errorf("%s: average CPI regressed %.3f -> %.3f", a.App, a.Original.Average, a.Eased.Average)
		}
		// …and does not worsen the worst case.
		if a.Eased.P999 > a.Original.P999*1.05 {
			t.Errorf("%s: worst-case CPI regressed %.3f -> %.3f", a.App, a.Original.P999, a.Eased.P999)
		}
	}
	_ = r.String()
}
