package experiments

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// Figure1App holds one application's per-request CPI distributions under
// 1-core serial and 4-core concurrent execution.
type Figure1App struct {
	App string
	// Serial and Concurrent are the per-request CPI populations.
	Serial, Concurrent []float64
	// SerialP90 and ConcurrentP90 are the marked 90-percentile values.
	SerialP90, ConcurrentP90 float64
	// SerialHist and ConcurrentHist are probability histograms on a shared
	// axis (per application, like the paper's column-shared axes).
	BinLo, BinWidth            float64
	SerialHist, ConcurrentHist []float64
}

// Figure1Result reproduces Figure 1: multicore performance obfuscation in
// terms of request CPI distributions.
type Figure1Result struct {
	Apps []Figure1App
}

// Figure1 runs each application serially on one core and concurrently on
// four cores and reports the per-request CPI distributions.
func Figure1(cfg Config) (*Figure1Result, error) {
	out := &Figure1Result{}
	for _, app := range appSet() {
		n := cfg.modelingRequests(app.Name())
		serial, err := runTracked(cfg, app, 1, n)
		if err != nil {
			return nil, fmt.Errorf("figure1 %s serial: %w", app.Name(), err)
		}
		conc, err := runTracked(cfg, app, 0, n)
		if err != nil {
			return nil, fmt.Errorf("figure1 %s concurrent: %w", app.Name(), err)
		}
		s := serial.Store.MetricValues(metrics.CPI)
		c := conc.Store.MetricValues(metrics.CPI)
		lo := 1.0
		hi := stats.Max(append(append([]float64{}, s...), c...))
		if hi <= lo {
			hi = lo + 1
		}
		const bins = 40
		width := (hi - lo) / bins
		sh := stats.NewHistogram(s, lo, width, bins)
		ch := stats.NewHistogram(c, lo, width, bins)
		out.Apps = append(out.Apps, Figure1App{
			App:            app.Name(),
			Serial:         s,
			Concurrent:     c,
			SerialP90:      stats.Percentile(s, 90),
			ConcurrentP90:  stats.Percentile(c, 90),
			BinLo:          lo,
			BinWidth:       width,
			SerialHist:     sh.Prob(),
			ConcurrentHist: ch.Prob(),
		})
	}
	return out, nil
}

// String renders the paper-style summary rows.
func (r *Figure1Result) String() string {
	var rows [][]string
	for _, a := range r.Apps {
		rows = append(rows, []string{
			a.App,
			fmt.Sprintf("%.2f", stats.Median(a.Serial)),
			fmt.Sprintf("%.2f", a.SerialP90),
			fmt.Sprintf("%.2f", stats.Median(a.Concurrent)),
			fmt.Sprintf("%.2f", a.ConcurrentP90),
			fmt.Sprintf("%.2fx", a.ConcurrentP90/a.SerialP90),
		})
	}
	var b strings.Builder
	b.WriteString("Figure 1: request CPI distributions, 1-core serial vs 4-core concurrent\n")
	b.WriteString(table(
		[]string{"app", "1-core p50", "1-core p90", "4-core p50", "4-core p90", "p90 ratio"},
		rows))
	return b.String()
}
