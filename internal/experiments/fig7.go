package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/distance"
	"repro/internal/metrics"
)

// Figure7Measures names the five differencing measures in the paper's
// comparison order.
var Figure7Measures = []string{
	"levenshtein-syscalls",
	"average-CPI",
	"L1-CPI-variations",
	"DTW-CPI-variations",
	"DTW+asynchrony-penalty",
}

// Figure7App holds one application's classification quality per measure.
type Figure7App struct {
	App string
	// CPUTimeDivergence and PeakCPIDivergence map measure name to the
	// average divergence from centroid on the two request properties.
	CPUTimeDivergence map[string]float64
	PeakCPIDivergence map[string]float64
}

// Figure7Result reproduces Figure 7: request classification effectiveness
// under different request differencing measures, evaluated as cluster
// members' divergence from their centroids on (A) request CPU time and (B)
// request 90-percentile CPI.
type Figure7Result struct {
	Apps []Figure7App
	K    int
}

// levenshteinCap truncates system call sequences for tractable Levenshtein
// comparisons on long-request applications (the paper's TPCH requests make
// thousands of calls; the prefix carries the type-identifying structure).
const levenshteinCap = 300

// Figure7 clusters each application's requests with k-medoids (k=10) under
// all five measures and scores classification quality.
func Figure7(cfg Config) (*Figure7Result, error) {
	out := &Figure7Result{K: 10}
	for _, app := range appSet() {
		n := cfg.modelingRequests(app.Name())
		res, err := runTracked(cfg, app, 0, n)
		if err != nil {
			return nil, fmt.Errorf("figure7 %s: %w", app.Name(), err)
		}
		traces := res.Store.Traces
		m := core.NewModeler(app.Name(), traces)

		cpiPatterns := make([][]float64, len(traces))
		syscalls := make([][]string, len(traces))
		averages := make([][]float64, len(traces))
		for i, tr := range traces {
			cpiPatterns[i] = tr.Resampled(metrics.CPI, m.BucketIns)
			names := tr.SyscallNames()
			if len(names) > levenshteinCap {
				names = names[:levenshteinCap]
			}
			syscalls[i] = names
			averages[i] = []float64{tr.MetricValue(metrics.CPI)}
		}

		// Precompute each measure's full pairwise matrix through the
		// parallel engine; k-medoids then shares the read-only matrices.
		opt := distance.MatrixOptions{Obs: cfg.Obs}
		dists := map[string]*distance.Matrix{
			"levenshtein-syscalls": distance.NewMatrix(len(traces), func(i, j int) float64 {
				return float64(distance.Levenshtein(syscalls[i], syscalls[j]))
			}, opt),
			"average-CPI":            distance.NewMatrixFromSequences(averages, distance.AverageDiff{}, opt),
			"L1-CPI-variations":      distance.NewMatrixFromSequences(cpiPatterns, m.L1(), opt),
			"DTW-CPI-variations":     distance.NewMatrixFromSequences(cpiPatterns, m.DTW(), opt),
			"DTW+asynchrony-penalty": distance.NewMatrixFromSequences(cpiPatterns, m.DTWPenalized(), opt),
		}

		cpuTimes := make([]float64, len(traces))
		peaks := make([]float64, len(traces))
		for i, tr := range traces {
			cpuTimes[i] = float64(tr.CPUTime())
			peaks[i] = requestPeakCPI(tr)
		}

		fa := Figure7App{
			App:               app.Name(),
			CPUTimeDivergence: map[string]float64{},
			PeakCPIDivergence: map[string]float64{},
		}
		for _, name := range Figure7Measures {
			resCl := cluster.KMedoidsMatrix(dists[name], cluster.Config{
				K: out.K, Seed: cfg.Seed,
			})
			fa.CPUTimeDivergence[name] = cluster.Divergence(resCl, cpuTimes)
			fa.PeakCPIDivergence[name] = cluster.Divergence(resCl, peaks)
		}
		out.Apps = append(out.Apps, fa)
	}
	return out, nil
}

// Mean returns a measure's divergence averaged over applications.
func (r *Figure7Result) Mean(measure string, peak bool) float64 {
	var sum float64
	for _, a := range r.Apps {
		if peak {
			sum += a.PeakCPIDivergence[measure]
		} else {
			sum += a.CPUTimeDivergence[measure]
		}
	}
	if len(r.Apps) == 0 {
		return 0
	}
	return sum / float64(len(r.Apps))
}

// String renders both panels.
func (r *Figure7Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 7: classification quality (divergence from centroid, lower is better)\n")
	render := func(title string, pick func(Figure7App) map[string]float64) {
		header := []string{"measure"}
		for _, a := range r.Apps {
			header = append(header, a.App)
		}
		var rows [][]string
		for _, mName := range Figure7Measures {
			row := []string{mName}
			for _, a := range r.Apps {
				row = append(row, fmt.Sprintf("%.1f%%", pick(a)[mName]*100))
			}
			rows = append(rows, row)
		}
		fmt.Fprintf(&b, "\n%s:\n", title)
		b.WriteString(table(header, rows))
	}
	render("(A) on request CPU time", func(a Figure7App) map[string]float64 { return a.CPUTimeDivergence })
	render("(B) on request 90-percentile CPI", func(a Figure7App) map[string]float64 { return a.PeakCPIDivergence })
	return b.String()
}
