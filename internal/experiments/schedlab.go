package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/signature"
	"repro/internal/stats"
	"repro/internal/workload"
)

// schedLabBankK is the compacted signature bank size the lab's signature-
// driven policies (cluster co-scheduling, deadline ordering) predict from.
const schedLabBankK = 8

// SchedLabKernelRow is one kernel policy × load cell of the scheduling lab.
type SchedLabKernelRow struct {
	Policy string
	Load   string

	CPIMean float64
	CPIP99  float64
	// LatencyP99Ns is the 99th-percentile request latency (submit to
	// completion) in virtual nanoseconds.
	LatencyP99Ns    float64
	ContextSwitches uint64
	WallNs          int64
}

// SchedLabFleetRow is one fleet placement policy's outcome on the shared
// stream.
type SchedLabFleetRow struct {
	Policy string

	Completed uint64
	Shed      uint64
	Degraded  uint64
	CPI       float64
	P99Ns     float64

	ScaleUps    uint64
	ScaleDowns  uint64
	ActiveNodes int
}

// SchedLabResult reports experiment 21: every registered scheduling policy
// — kernel and fleet — raced under identical seeds. The kernel race runs
// each policy over the same TPC-H closed loop at two load levels (steady
// and flash-crowd concurrency) from one shared calibration (usage
// threshold + compacted signature bank), so row differences are purely the
// policies' decisions. The fleet race replays one arrival stream under
// every registered placement policy.
type SchedLabResult struct {
	App         string
	Requests    int
	Threshold   float64
	BankEntries int
	Kernel      []SchedLabKernelRow
	FleetSpec   string
	FleetReqs   int
	Fleet       []SchedLabFleetRow
}

// schedLabLoads are the closed-loop concurrency levels of the kernel race:
// the default two sessions per core, and a flash-crowd sixfold that.
var schedLabLoads = []struct {
	Name     string
	Sessions int
}{
	{"steady", 0},
	{"crowd", 24},
}

// SchedLab runs experiment 21. Policies come from the sched and serve
// registries, never a hand-kept list, so a newly registered policy joins
// the race automatically. All kernel cells fan out concurrently when the
// config allows; results aggregate in the fixed (policy, load) order and
// are bit-identical across repeats and GOMAXPROCS settings.
func SchedLab(cfg Config) (*SchedLabResult, error) {
	app := workload.NewTPCH()
	n := cfg.schedRequests(app.Name())
	par := cfg.parallelizable()

	// Shared calibration: a round-robin run yields the 80-percentile usage
	// threshold and the compacted signature bank every policy consumes.
	calib, err := core.Run(core.Options{
		App: app, Requests: n, Seed: cfg.Seed,
	}, core.WithSampling(schedSampling(app)), core.WithObserver(cfg.Obs))
	if err != nil {
		return nil, fmt.Errorf("schedlab calibration: %w", err)
	}
	threshold := sched.HighUsageThreshold(calib.Store, 80)
	bank := signature.BuildCompact(calib.Store.Traces, metrics.L2RefsPerIns,
		core.BucketFor(app.Name()), 0, schedLabBankK, cfg.Seed)

	out := &SchedLabResult{
		App:         app.Name(),
		Requests:    n,
		Threshold:   threshold,
		BankEntries: len(bank.Entries),
	}

	policies := sched.PolicyNames()
	cells := len(policies) * len(schedLabLoads)
	rows := make([]SchedLabKernelRow, cells)
	err = forEachIndex(cells, par, func(j int) error {
		pi, li := j/len(schedLabLoads), j%len(schedLabLoads)
		name, load := policies[pi], schedLabLoads[li]
		res, err := core.Run(core.Options{
			App: app, Requests: n, Sampling: schedSampling(app),
			Seed: cfg.Seed, Concurrency: load.Sessions,
			PolicyName: name, UsageThreshold: threshold, SignatureBank: bank,
		}, core.WithObserver(cfg.Obs))
		if err != nil {
			return fmt.Errorf("schedlab %s/%s: %w", name, load.Name, err)
		}
		cpis := res.Store.MetricValues(metrics.CPI)
		lats := make([]float64, 0, res.Store.Len())
		for _, tr := range res.Store.Traces {
			lats = append(lats, float64(tr.End-tr.Start))
		}
		rows[j] = SchedLabKernelRow{
			Policy:          name,
			Load:            load.Name,
			CPIMean:         stats.Mean(cpis),
			CPIP99:          stats.Percentile(cpis, 99),
			LatencyP99Ns:    stats.Percentile(lats, 99),
			ContextSwitches: res.ContextSwitches,
			WallNs:          int64(res.WallTime),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.Kernel = rows

	// Fleet race: one stream, every registered placement policy. Burst and
	// maintenance cadence track the span as in the fleet experiment.
	freq := cfg.scaled(150_000, 6_000)
	fc := serve.DefaultFleetConfig(cfg.Seed)
	spanNs := float64(freq) / fc.Stream.RatePerSec * 1e9
	fc.Stream.Bursts = []workload.StreamBurst{
		{StartNs: 0.30 * spanNs, DurationNs: 0.15 * spanNs, Factor: 2.5},
	}
	if ticks := int(spanNs / float64(fc.TickNs)); ticks/10 > 0 {
		fc.CompactTicks = ticks / 10
	} else {
		fc.CompactTicks = 1
	}
	fc.MergeEvery = 2
	fc.Obs = cfg.Obs
	out.FleetSpec = fc.Stream.String()
	out.FleetReqs = freq
	for _, info := range serve.FleetPolicies() {
		fc.Policy = info.Policy
		f, err := serve.NewFleet(fc)
		if err != nil {
			return nil, fmt.Errorf("schedlab fleet %s: %w", info.Name, err)
		}
		f.Process(freq)
		f.Drain()
		r := f.Result()
		f.Close()
		out.Fleet = append(out.Fleet, SchedLabFleetRow{
			Policy:      info.Name,
			Completed:   r.Completed,
			Shed:        r.Shed,
			Degraded:    r.Degraded,
			CPI:         r.CPI,
			P99Ns:       r.P99Ns,
			ScaleUps:    r.ScaleUps,
			ScaleDowns:  r.ScaleDowns,
			ActiveNodes: r.ActiveNodes,
		})
	}
	return out, nil
}

// String renders the two race tables.
func (r *SchedLabResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheduling-policy lab: %s, %d requests/run, threshold %.4g, bank %d entries\n\n",
		r.App, r.Requests, r.Threshold, r.BankEntries)
	kr := make([][]string, len(r.Kernel))
	for i, row := range r.Kernel {
		kr[i] = []string{
			row.Policy, row.Load,
			fmt.Sprintf("%.3f", row.CPIMean),
			fmt.Sprintf("%.3f", row.CPIP99),
			fmt.Sprintf("%.3f", row.LatencyP99Ns/1e6),
			fmt.Sprintf("%d", row.ContextSwitches),
			fmt.Sprintf("%.1f", float64(row.WallNs)/1e6),
		}
	}
	b.WriteString(table([]string{"policy", "load", "CPI mean", "CPI p99", "lat p99 ms", "switches", "wall ms"}, kr))
	fmt.Fprintf(&b, "\nfleet race: %d requests over %q\n", r.FleetReqs, r.FleetSpec)
	fr := make([][]string, len(r.Fleet))
	for i, row := range r.Fleet {
		fr[i] = []string{
			row.Policy,
			fmt.Sprintf("%d", row.Completed),
			fmt.Sprintf("%d", row.Shed),
			fmt.Sprintf("%d", row.Degraded),
			fmt.Sprintf("%.4f", row.CPI),
			fmt.Sprintf("%.3f", row.P99Ns/1e6),
			fmt.Sprintf("%d/%d/%d", row.ActiveNodes, row.ScaleUps, row.ScaleDowns),
		}
	}
	b.WriteString(table([]string{"policy", "completed", "shed", "degraded", "CPI", "p99 ms", "active/ups/downs"}, fr))
	return b.String()
}
