// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a function returning a structured result
// with a printable rendering; cmd/rbvrepro runs them from the command line
// and the repository-root benchmarks time them.
//
// Absolute numbers differ from the paper's (the substrate is a calibrated
// simulator, not the authors' Xeon 5160 testbed); what each experiment
// preserves — and what EXPERIMENTS.md records — is the paper's shape: who
// wins, by roughly what factor, and where the crossovers fall.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config scales and seeds the experiment suite.
type Config struct {
	// Seed drives all randomness; equal seeds reproduce results exactly.
	Seed int64
	// Scale multiplies request counts. 1.0 is the default evaluation
	// scale; tests and quick runs use less.
	Scale float64
	// Obs, when non-nil, collects spans and counters across the suite:
	// registry entries open a span scope per experiment and every workload
	// run instruments its kernel and sampler (see package obs). Nil — the
	// default — leaves runs uninstrumented; results are identical either
	// way.
	Obs *obs.Collector
	// Topology, when non-nil, overrides the machine layout of every
	// multi-core run in the suite (runs that pin an explicit core count,
	// like Figure 1's solo-core calibration, keep it). Nil reproduces the
	// paper's 2×2-core box.
	Topology *machine.Topology
}

// DefaultConfig returns the standard evaluation configuration.
func DefaultConfig() Config { return Config{Seed: 1, Scale: 1} }

// scaled returns n×Scale, at least min.
func (c Config) scaled(n, min int) int {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	v := int(float64(n) * c.Scale)
	if v < min {
		v = min
	}
	return v
}

// modelingRequests is the per-application request count for the modeling
// experiments, balancing statistical weight against the very different
// request lengths.
func (c Config) modelingRequests(app string) int {
	switch app {
	case "webserver":
		return c.scaled(600, 30)
	case "tpcc":
		return c.scaled(600, 30)
	case "tpch":
		return c.scaled(120, 20)
	case "rubis":
		return c.scaled(400, 30)
	case "webwork":
		return c.scaled(48, 12)
	default:
		return c.scaled(200, 20)
	}
}

// schedRequests sizes the contention-easing runs (Figures 12–13): the
// closed-loop system needs enough requests for a steady state in which the
// scheduler's choices, not the drain phase, dominate the measurement (the
// paper uses three 1000-request runs).
func (c Config) schedRequests(app string) int {
	n := c.modelingRequests(app)
	min := 150
	if app == "webwork" {
		min = 32
	}
	if n < min {
		n = min
	}
	return n
}

// appSet returns the five applications in the paper's order.
func appSet() []workload.App { return workload.All() }

// runTracked runs an application with its paper-standard periodic sampling.
// cores > 0 pins a homogeneous layout of that many cores (solo-core
// calibration); cores == 0 uses cfg.Topology, or the paper's default box.
func runTracked(cfg Config, app workload.App, cores, requests int) (*core.Result, error) {
	opts := []core.Option{core.WithSampling(core.DefaultSampling(app)), core.WithObserver(cfg.Obs)}
	switch {
	case cores > 0:
		per := 2
		if cores < per {
			per = cores
		}
		opts = append(opts, core.WithTopology(machine.Homogeneous(cores, per)))
	case cfg.Topology != nil:
		opts = append(opts, core.WithTopology(*cfg.Topology))
	}
	return core.Run(core.Options{
		App:      app,
		Requests: requests,
		Seed:     cfg.Seed,
	}, opts...)
}

// schedSampling is DefaultSampling without system call event retention. The
// scheduling experiments (Figures 12–13) consume measured periods and the
// co-execution meter only — never a trace's syscall stream — and their
// closed-loop request floors make that stream the dominant memory cost of a
// full-scale registry run. Discarding it changes no simulated event and no
// reported value.
func schedSampling(app workload.App) sampling.Config {
	s := core.DefaultSampling(app)
	s.DiscardSyscallEvents = true
	return s
}

// forEachIndex invokes fn for every index in [0, n): serially in order, or
// concurrently (bounded by GOMAXPROCS) when parallel is set. Concurrency
// only reorders wall-clock completion, never results: each fn owns its
// index's result slot and the caller aggregates in index order afterward,
// so outputs — including float summation order — are bit-identical to the
// serial path. On failure the lowest failing index's error is returned,
// again independent of completion order.
func forEachIndex(n int, parallel bool, fn func(int) error) error {
	if !parallel {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// parallelizable reports whether concurrent core.Run calls are safe for
// this config. Each run owns its engine, kernel, and RNG streams, so runs
// never share simulation state; the only shared mutable object is the
// observability collector, whose scope stack assumes one runner — so
// instrumented configs stay serial.
func (c Config) parallelizable() bool { return c.Obs == nil }

// requestPeakCPI is the per-request 90-percentile CPI over its measured
// periods (a request property used by Figures 7).
func requestPeakCPI(tr *trace.Request) float64 {
	return tr.InsSeries(metrics.CPI).Percentile(90)
}

// summarize renders a float slice compactly for reports.
func summarize(xs []float64) string {
	if len(xs) == 0 {
		return "n/a"
	}
	return fmt.Sprintf("mean=%.3f p50=%.3f p90=%.3f max=%.3f",
		stats.Mean(xs), stats.Median(xs), stats.Percentile(xs, 90), stats.Max(xs))
}

// table renders rows of cells with aligned columns.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i >= len(widths) {
				break // ignore cells beyond the header
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
