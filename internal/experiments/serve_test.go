package experiments

import (
	"strings"
	"testing"
)

// The serve and fleet experiments are pinned continuously by the golden
// tiers; these smoke tests keep their report paths covered at unit-test
// speed and assert the shapes the docs quote.

func TestServeReport(t *testing.T) {
	r, err := Serve(Config{Seed: 1, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests <= 0 || r.Run.Completed == 0 {
		t.Fatalf("degenerate run: %+v", r.Run)
	}
	// The scaled burst windows must still exercise admission control.
	if r.Run.Degraded == 0 {
		t.Fatal("burst windows produced no degraded requests")
	}
	out := r.String()
	for _, want := range []string{"service mode:", r.Spec} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestFleetReport(t *testing.T) {
	r, err := Fleet(Config{Seed: 1, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if r.RR.Completed == 0 || r.Eased.Completed == 0 {
		t.Fatalf("degenerate fleet runs: rr %+v, eased %+v", r.RR, r.Eased)
	}
	if len(r.RR.Nodes) != len(r.Eased.Nodes) || len(r.RR.Nodes) == 0 {
		t.Fatalf("per-node results missing: %d vs %d", len(r.RR.Nodes), len(r.Eased.Nodes))
	}
	out := r.String()
	for _, want := range []string{"fleet service mode:", "fleet topology:", "contention easing vs round-robin:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
