package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sampling"
	"repro/internal/sim"
)

// Table2Result reproduces Table 2 (mappings from system call names to
// subsequent CPI changes for the Apache web server) and the Section 3.2
// result that transition-signal-targeted sampling captures more variation
// than uniform syscall sampling at matched cost.
type Table2Result struct {
	// Signals are the trained per-syscall CPI change statistics, ordered
	// by decreasing |mean|.
	Signals []sampling.SignalStat
	// Selected is the trigger subset chosen for targeted sampling.
	Selected []string
	// UniformCoV is the captured sample CoV under uniform syscall-
	// triggered sampling; SignalCoV under transition-signal sampling at a
	// matched sampling frequency (the paper reports 0.60 → 0.65).
	UniformCoV, SignalCoV float64
	// UniformSamples, SignalSamples verify the frequency match.
	UniformSamples, SignalSamples uint64
}

// Table2 trains transition signals on the web server online, then compares
// uniform syscall-triggered sampling against signal-targeted sampling with
// a smaller TsyscallMin chosen to match overall sampling frequency.
func Table2(cfg Config) (*Table2Result, error) {
	app := appSet()[0] // web server
	n := cfg.modelingRequests("webserver")

	// Training run: sample at every syscall, pairing before/after periods.
	train, err := core.Run(core.Options{
		App: app, Requests: n,
		Sampling: sampling.Config{
			Mode:         sampling.SyscallTriggered,
			TsyscallMin:  0,
			TbackupInt:   500 * sim.Microsecond,
			Compensate:   true,
			TrainSignals: true,
		},
		Seed: cfg.Seed,
	}, core.WithObserver(cfg.Obs))
	if err != nil {
		return nil, fmt.Errorf("table2 training: %w", err)
	}
	out := &Table2Result{Signals: train.Trainer.Stats()}

	// Select the most transition-correlated syscalls (the paper picks
	// writev, lseek, stat, poll for Apache). Select returns a set; the
	// reported subset is sorted so the output never depends on map
	// iteration order (caught by the golden-fingerprint corpus).
	selected := train.Trainer.Select(4, 20)
	for name := range selected { // maporder:ok sorted immediately below
		out.Selected = append(out.Selected, name)
	}
	sort.Strings(out.Selected)

	// Uniform syscall-triggered sampling at the paper's web granularity.
	uniform, err := core.Run(core.Options{
		App: app, Requests: n,
		Sampling: sampling.Config{
			Mode:        sampling.SyscallTriggered,
			TsyscallMin: 10 * sim.Microsecond,
			TbackupInt:  80 * sim.Microsecond,
			Compensate:  true,
		},
		Seed: cfg.Seed,
	}, core.WithObserver(cfg.Obs))
	if err != nil {
		return nil, fmt.Errorf("table2 uniform: %w", err)
	}

	// Signal-targeted sampling: a smaller TsyscallMin (the subset fires
	// less often) and a tighter backup delay, calibrated to match the
	// uniform scheme's overall frequency; the targeted samples align
	// periods with behavior transitions, raising the captured variation.
	signal, err := core.Run(core.Options{
		App: app, Requests: n,
		Sampling: sampling.Config{
			Mode:        sampling.SignalTriggered,
			TsyscallMin: 2 * sim.Microsecond,
			TbackupInt:  16 * sim.Microsecond,
			Signals:     selected,
			Compensate:  true,
		},
		Seed: cfg.Seed,
	}, core.WithObserver(cfg.Obs))
	if err != nil {
		return nil, fmt.Errorf("table2 signal: %w", err)
	}

	out.UniformCoV = sampleCoV(uniform.Store, metrics.CPI)
	out.SignalCoV = sampleCoV(signal.Store, metrics.CPI)
	out.UniformSamples = uniform.Samples.Total()
	out.SignalSamples = signal.Samples.Total()
	return out, nil
}

// Signal returns the trained statistics for one syscall name.
func (r *Table2Result) Signal(name string) (sampling.SignalStat, bool) {
	for _, s := range r.Signals {
		if s.Name == name {
			return s, true
		}
	}
	return sampling.SignalStat{}, false
}

// String renders Table 2 plus the targeted-sampling comparison.
func (r *Table2Result) String() string {
	var rows [][]string
	for _, s := range r.Signals {
		dir := "Increase"
		if !s.Increase() {
			dir = "Decrease"
		}
		rows = append(rows, []string{
			s.Name, dir,
			fmt.Sprintf("%.2f +/- %.2f", s.Mean, s.Std),
			fmt.Sprintf("%d", s.N),
		})
	}
	var b strings.Builder
	b.WriteString("Table 2: system call name -> subsequent CPI change (web server)\n")
	b.WriteString(table([]string{"system call", "direction", "CPI change", "n"}, rows))
	fmt.Fprintf(&b, "\nSelected transition signals: %v\n", r.Selected)
	fmt.Fprintf(&b, "Captured sample CoV: uniform %.3f (%d samples) -> signal-targeted %.3f (%d samples)\n",
		r.UniformCoV, r.UniformSamples, r.SignalCoV, r.SignalSamples)
	return b.String()
}
