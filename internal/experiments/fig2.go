package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Figure2Request is one representative request's intra-request variation
// traces: CPI, L2 references per instruction, and L2 miss ratio, indexed by
// execution progress in instructions.
type Figure2Request struct {
	App  string
	Type string
	// BucketIns is the progress step of each series point.
	BucketIns float64
	CPI       []float64
	RefsPerIn []float64
	MissRatio []float64
	// TotalIns is the request's total instruction count.
	TotalIns uint64
	// CPICoV summarizes how strongly the request's behavior varies.
	CPICoV float64
}

// Figure2Result reproduces Figure 2: examples of behavior variation within
// a single request execution, one per application.
type Figure2Result struct {
	Requests []Figure2Request
}

// Figure2 runs a small concurrent load per application with the paper's
// fine-grained sampling and extracts a representative (longest, so the
// variation structure is visible) request per application.
func Figure2(cfg Config) (*Figure2Result, error) {
	out := &Figure2Result{}
	for _, app := range appSet() {
		n := cfg.scaled(24, 8)
		res, err := runTracked(cfg, app, 0, n)
		if err != nil {
			return nil, fmt.Errorf("figure2 %s: %w", app.Name(), err)
		}
		var pick *trace.Request
		for _, tr := range res.Store.Traces {
			if pick == nil || tr.Instructions() > pick.Instructions() {
				pick = tr
			}
		}
		bucket := core.BucketFor(app.Name())
		s := pick.InsSeries(metrics.CPI)
		out.Requests = append(out.Requests, Figure2Request{
			App:       app.Name(),
			Type:      pick.Type,
			BucketIns: bucket,
			CPI:       pick.Resampled(metrics.CPI, bucket),
			RefsPerIn: pick.Resampled(metrics.L2RefsPerIns, bucket),
			MissRatio: pick.Resampled(metrics.L2MissRatio, bucket),
			TotalIns:  pick.Instructions(),
			CPICoV:    s.CoV(),
		})
	}
	return out, nil
}

// String summarizes each representative request.
func (r *Figure2Result) String() string {
	var rows [][]string
	for _, q := range r.Requests {
		rows = append(rows, []string{
			q.App, q.Type,
			fmt.Sprintf("%.2fM", float64(q.TotalIns)/1e6),
			fmt.Sprintf("%d", len(q.CPI)),
			summarize(q.CPI),
			fmt.Sprintf("%.3f", q.CPICoV),
		})
	}
	var b strings.Builder
	b.WriteString("Figure 2: intra-request behavior variation examples\n")
	b.WriteString(table(
		[]string{"app", "request", "length", "points", "CPI over progress", "CPI CoV"},
		rows))
	return b.String()
}
