package experiments

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// The registry must list every experiment of the paper's evaluation, in
// presentation order. This golden list is the completeness check: adding an
// experiment function without registering it (or reordering the registry)
// fails here.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "table1", "fig3", "fig4", "fig5", "table2",
		"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "ablations", "faultanomaly", "serve", "fleet",
		"faultlocalize", "schedlab",
	}
	got := Names()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("registry = %v\nwant %v", got, want)
	}
	for _, name := range want {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		if e.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, e.Name())
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
}

// Running a registry entry must scope its spans under the experiment's name
// and propagate errors unwrapped in a (nil, err) pair.
func TestRegistryEntryScopesSpans(t *testing.T) {
	col := obs.New("test")
	e, _ := Lookup("fig6") // the cheapest experiment: two requests, two matrices
	res, err := e.Run(Config{Seed: 1, Scale: 0.1, Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Error("empty rendering through the interface")
	}
	rep := col.Report()
	if len(rep.Spans.Children) != 1 || rep.Spans.Children[0].Name != "fig6" {
		t.Fatalf("top-level spans = %+v, want one fig6 scope", rep.Spans.Children)
	}
	// core.Run's "run" scope nests under the experiment scope.
	fig := rep.Spans.Children[0]
	if len(fig.Children) == 0 || fig.Children[0].Name != "run" {
		t.Errorf("fig6 children = %+v, want a run scope", fig.Children)
	}
}

// TestTracingDoesNotPerturbResults is the tentpole's golden guarantee: an
// attached collector — full or sampling — must leave every experiment's
// rendered output bit-identical to the uninstrumented run. fig1 exercises
// the kernel spans, fig7 the distance engine, fig10 the signature service.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	cases := []string{"fig1", "fig7", "fig10"}
	for _, name := range cases {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			e, ok := Lookup(name)
			if !ok {
				t.Fatalf("missing experiment %s", name)
			}
			run := func(col *obs.Collector) string {
				r, err := e.Run(Config{Seed: 1, Scale: 0.1, Obs: col})
				if err != nil {
					t.Fatal(err)
				}
				return r.String()
			}
			base := run(nil)
			full := obs.New("full")
			if got := run(full); got != base {
				t.Errorf("full collector perturbed %s output", name)
			}
			sampled := obs.New("sampled")
			sampled.SetSampleEvery(16)
			if got := run(sampled); got != base {
				t.Errorf("sampling collector perturbed %s output", name)
			}
			// The instrumented runs must actually have recorded something —
			// otherwise this test proves nothing.
			rep := full.Report()
			if len(rep.Spans.Children) == 0 {
				t.Error("full collector recorded no spans")
			}
			if len(rep.Counters) == 0 {
				t.Error("full collector recorded no counters")
			}
		})
	}
}
