package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/anomaly"
	"repro/internal/core"
	"repro/internal/distributed"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sampling"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// FaultAnomalyResult closes the loop the paper's Section 6 evaluation
// could not: anomalies with known ground truth. A labeled fault schedule
// perturbs a distributed RUBiS run — node slowdowns, hop latency spikes
// and drops, per-tier cache-pollution bursts — and the Section 4.3 group
// anomaly detector is scored against the injected pollution bursts, the
// one fault class that carries the paper's CPI-visible contention
// signature. The same schedule also exercises the driver's robustness: the
// run repeats with hop retries/hedging off and on, comparing worst-case
// latency.
type FaultAnomalyResult struct {
	Requests int
	// Scheduled is the number of fault windows; Impacts the ground-truth
	// fault applications recorded during the detection (retries-on) run.
	Scheduled, Impacts int
	// Truth is the number of requests hit by a pollution burst; Detected
	// the number the detector flagged.
	Truth, Detected int
	// Eval scores the detector against the injected ground truth.
	Eval fault.Eval
	// P99OffNs/P99OnNs and MaxOffNs/MaxOnNs compare worst-case latency
	// with retries+hedging disabled vs enabled, under identical fault
	// schedules.
	P99OffNs, P99OnNs float64
	MaxOffNs, MaxOnNs float64
	// Retries, Hedges, and Timeouts count robustness events in the
	// retries-on run; Drops the hop messages lost to fault windows in it.
	Retries, Hedges, Timeouts, Drops int
}

// faultClusterConfig is the shared cluster shape of all three runs: RUBiS
// spread over three nodes, one per tier.
func faultClusterConfig(cfg Config) distributed.Config {
	return distributed.Config{
		Nodes:     3,
		Sampling:  sampling.Config{Mode: sampling.Interrupt, Period: sim.Millisecond, Compensate: true},
		Placement: []int{0, 1, 2},
		Network:   distributed.NetworkConfig{HopLatency: 200 * sim.Microsecond},
		Seed:      cfg.Seed,
	}
}

// runFaultCluster executes one RUBiS run, optionally fault-injected.
func runFaultCluster(cfg Config, dcfg distributed.Config, requests int, sched *fault.Schedule) ([]*distributed.Trace, error) {
	c, err := distributed.NewCluster(dcfg)
	if err != nil {
		return nil, err
	}
	c.SetObserver(cfg.Obs)
	if sched != nil {
		c.SetFaults(sched)
	}
	traces := distributed.NewDriver(c, workload.NewRUBiS(), 6, requests, cfg.Seed).Run()
	if len(traces) != requests {
		return nil, fmt.Errorf("cluster run stalled at %d/%d requests", len(traces), requests)
	}
	return traces, nil
}

// mergeSegments flattens a distributed trace's per-node segments into one
// request trace, in execution order, for the single-request anomaly
// detector.
func mergeSegments(t *distributed.Trace) *trace.Request {
	m := &trace.Request{ID: t.ID, App: t.App, Type: t.Type, Start: t.Start, End: t.End}
	for _, seg := range t.Segments {
		m.Periods = append(m.Periods, seg.Trace.Periods...)
		m.Syscalls = append(m.Syscalls, seg.Trace.Syscalls...)
	}
	return m
}

// FaultAnomaly injects a labeled fault schedule into a distributed RUBiS
// run, scores the Section 6 anomaly detector against the injected ground
// truth, and reports the latency cost of faults with the robustness
// mechanisms off versus on.
func FaultAnomaly(cfg Config) (*FaultAnomalyResult, error) {
	requests := cfg.scaled(120, 36)
	dcfg := faultClusterConfig(cfg)

	// Clean run: sizes the fault horizon from the undisturbed run length.
	clean, err := runFaultCluster(cfg, dcfg, requests, nil)
	if err != nil {
		return nil, fmt.Errorf("faultanomaly: clean run: %w", err)
	}
	var horizon sim.Time
	var cleanLat []float64
	for _, tr := range clean {
		if tr.End > horizon {
			horizon = tr.End
		}
		cleanLat = append(cleanLat, float64(tr.Latency()))
	}
	fcfg := fault.Config{
		Seed:    cfg.Seed,
		Horizon: horizon,
		Nodes:   dcfg.Nodes,
		Tiers:   3,
		// A modest mixed schedule: every fault class present, pollution
		// bursts wide enough to label a detectable anomaly population.
		Slowdowns: 1,
		HopSpikes: 1,
		Drops:     2,
		Bursts:    2,
		MaxWindow: horizon / 4,
	}

	// Fault run with the robustness mechanisms off: dropped hops pay the
	// full lower-layer retransmission timeout.
	schedOff, err := fault.NewSchedule(fcfg)
	if err != nil {
		return nil, fmt.Errorf("faultanomaly: %w", err)
	}
	off, err := runFaultCluster(cfg, dcfg, requests, schedOff)
	if err != nil {
		return nil, fmt.Errorf("faultanomaly: retries-off run: %w", err)
	}

	// Identical schedule, retries and hedging on.
	schedOn, err := fault.NewSchedule(fcfg)
	if err != nil {
		return nil, fmt.Errorf("faultanomaly: %w", err)
	}
	on := dcfg
	on.Retry = distributed.RetryConfig{
		Enabled:    true,
		Hedge:      true,
		HedgeAfter: sim.Time(stats.Mean(cleanLat)),
	}
	onTraces, err := runFaultCluster(cfg, on, requests, schedOn)
	if err != nil {
		return nil, fmt.Errorf("faultanomaly: retries-on run: %w", err)
	}

	res := &FaultAnomalyResult{
		Requests:  requests,
		Scheduled: len(schedOn.Faults()),
		Impacts:   len(schedOn.Impacts()),
	}
	var offLat, onLat []float64
	for _, tr := range off {
		offLat = append(offLat, float64(tr.Latency()))
	}
	for _, tr := range onTraces {
		onLat = append(onLat, float64(tr.Latency()))
		res.Retries += tr.Retries
		res.Hedges += tr.Hedges
		res.Timeouts += tr.Timeouts
	}
	for _, im := range schedOn.Impacts() {
		if im.Kind == fault.HopDrop {
			res.Drops++
		}
	}
	res.P99OffNs = stats.Percentile(offLat, 99)
	res.P99OnNs = stats.Percentile(onLat, 99)
	res.MaxOffNs = stats.Max(offLat)
	res.MaxOnNs = stats.Max(onLat)

	// Detection over the retries-on run: the Section 4.3 group detector on
	// CPI patterns, which the pollution bursts (inflated misses at
	// unchanged reference rates) light up. The expected similarity is
	// calibrated per request type on the clean run — each type's maximum
	// centroid distance under undisturbed execution, with headroom — so a
	// widely-polluted group cannot inflate its own threshold.
	groupByType := func(traces []*distributed.Trace) (map[string][]*trace.Request, []*trace.Request) {
		groups := map[string][]*trace.Request{}
		merged := make([]*trace.Request, len(traces))
		for i, tr := range traces {
			merged[i] = mergeSegments(tr)
			groups[tr.Type] = append(groups[tr.Type], merged[i])
		}
		return groups, merged
	}
	cleanGroups, cleanMerged := groupByType(clean)
	dirtyGroups, _ := groupByType(onTraces)
	modeler := core.NewModeler("rubis", cleanMerged)
	det := &anomaly.Detector{BucketIns: modeler.BucketIns, Measure: modeler.DTWPenalized()}
	thresholds := map[string]float64{}
	for typ, group := range cleanGroups { // maporder:ok per-key threshold writes, order-free
		if len(group) < 5 {
			continue
		}
		_, ranked := det.GroupAnomalies(group, metrics.CPI)
		max := 0.0
		for _, s := range ranked {
			if s.Distance > max {
				max = s.Distance
			}
		}
		if max > 0 {
			thresholds[typ] = max * 1.2
		}
	}
	types := make([]string, 0, len(dirtyGroups))
	for typ := range dirtyGroups { // maporder:ok sorted immediately below
		types = append(types, typ)
	}
	sort.Strings(types)
	predicted := map[uint64]bool{}
	for _, typ := range types {
		threshold, ok := thresholds[typ]
		if !ok {
			continue
		}
		_, ranked := det.GroupAnomalies(dirtyGroups[typ], metrics.CPI)
		for _, s := range ranked {
			if s.Distance > threshold {
				predicted[s.Trace.ID] = true
			}
		}
	}
	truth := schedOn.ImpactedIDs(fault.PollutionBurst)
	res.Truth = len(truth)
	res.Detected = len(predicted)
	res.Eval = fault.Evaluate(predicted, truth)
	return res, nil
}

// String renders the report.
func (r *FaultAnomalyResult) String() string {
	var b strings.Builder
	b.WriteString("Fault injection: detector scored against injected ground truth\n")
	fmt.Fprintf(&b, "%d requests, %d scheduled fault windows, %d recorded impacts (%d hop drops)\n",
		r.Requests, r.Scheduled, r.Impacts, r.Drops)
	fmt.Fprintf(&b, "pollution-burst ground truth: %d requests; detector flagged %d\n",
		r.Truth, r.Detected)
	fmt.Fprintf(&b, "detection: %s\n", r.Eval)
	b.WriteString(table(
		[]string{"robustness", "p99 latency", "max latency", "retries", "hedges", "timeouts"},
		[][]string{
			{"off", fmt.Sprintf("%.2fms", r.P99OffNs/1e6), fmt.Sprintf("%.2fms", r.MaxOffNs/1e6), "0", "0", "0"},
			{"on", fmt.Sprintf("%.2fms", r.P99OnNs/1e6), fmt.Sprintf("%.2fms", r.MaxOnNs/1e6),
				fmt.Sprintf("%d", r.Retries), fmt.Sprintf("%d", r.Hedges), fmt.Sprintf("%d", r.Timeouts)},
		}))
	if r.P99OnNs < r.P99OffNs {
		fmt.Fprintf(&b, "retries+hedging cut p99 latency %.2fx under the same fault schedule\n",
			r.P99OffNs/r.P99OnNs)
	}
	return b.String()
}
