package experiments

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/predict"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Figure11App holds one application's online prediction accuracy (root
// mean square error of predicting L2 cache misses per instruction) for
// each predictor.
type Figure11App struct {
	App string
	// RMSE maps predictor label to its Equation 7 error.
	RMSE map[string]float64
	// Labels preserves presentation order.
	Labels []string
}

// Figure11Result reproduces Figure 11: accuracy of predicting L2 cache
// misses per instruction for TPCH and WeBWorK under the request-average
// and last-value predictors and the vaEWMA filter across gain settings.
type Figure11Result struct {
	Apps []Figure11App
}

// figure11Alphas is the paper's gain sweep.
var figure11Alphas = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

// Figure11 replays each traced request's period stream through every
// predictor: at each sampling moment the predictor estimates the metric
// value for the coming period, then observes it. Errors are pooled over
// requests with Equation 7's length weighting. The unit observation length
// t̂ is 1 ms.
func Figure11(cfg Config) (*Figure11Result, error) {
	out := &Figure11Result{}
	apps := []workload.App{workload.NewTPCH(), workload.NewWeBWorK()}
	for _, app := range apps {
		n := cfg.modelingRequests(app.Name())
		res, err := runTracked(cfg, app, 0, n)
		if err != nil {
			return nil, fmt.Errorf("figure11 %s: %w", app.Name(), err)
		}
		fa := Figure11App{App: app.Name(), RMSE: map[string]float64{}}

		mkPredictors := func() (map[string]predict.Predictor, []string) {
			const unitNs = 1e6 // 1 ms
			ps := map[string]predict.Predictor{
				"request average": predict.NewRequestAverage(),
				"last value":      predict.NewLastValue(),
			}
			labels := []string{"request average", "last value"}
			for _, a := range figure11Alphas {
				l := fmt.Sprintf("vaEWMA a=%.1f", a)
				ps[l] = predict.NewVaEWMA(a, unitNs)
				labels = append(labels, l)
			}
			return ps, labels
		}
		preds, labels := mkPredictors()
		fa.Labels = labels

		actuals := map[string][]float64{}
		predicted := map[string][]float64{}
		weights := map[string][]float64{}
		for _, tr := range res.Store.Traces {
			for _, l := range labels { // ordered: never range the preds map
				preds[l].Reset()
			}
			first := true
			for _, period := range tr.Periods {
				if period.C.Instructions == 0 || period.Dur <= 0 {
					continue
				}
				val := period.C.Value(metrics.L2MissesPerIns)
				dur := float64(period.Dur)
				for _, l := range labels {
					p := preds[l]
					if !first {
						actuals[l] = append(actuals[l], val)
						predicted[l] = append(predicted[l], p.Predict())
						weights[l] = append(weights[l], dur)
					}
					p.Observe(val, dur)
				}
				first = false
			}
		}
		for _, l := range labels {
			fa.RMSE[l] = stats.RMSE(actuals[l], predicted[l], weights[l])
		}
		out.Apps = append(out.Apps, fa)
	}
	return out, nil
}

// Best returns the label with the lowest RMSE for an application.
func (a Figure11App) Best() string {
	best, bestV := "", 0.0
	for _, l := range a.Labels {
		if best == "" || a.RMSE[l] < bestV {
			best, bestV = l, a.RMSE[l]
		}
	}
	return best
}

// String renders the predictor comparison.
func (r *Figure11Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 11: RMSE of predicting L2 misses per instruction\n")
	for _, a := range r.Apps {
		fmt.Fprintf(&b, "\n%s (best: %s):\n", a.App, a.Best())
		var rows [][]string
		for _, l := range a.Labels {
			rows = append(rows, []string{l, fmt.Sprintf("%.3e", a.RMSE[l])})
		}
		b.WriteString(table([]string{"predictor", "RMSE"}, rows))
	}
	return b.String()
}
