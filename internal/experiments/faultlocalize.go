package experiments

import (
	"fmt"
	"strings"

	"repro/internal/causal"
	"repro/internal/distributed"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stats"
)

// FaultLocalizeResult reports experiment 20: automatic root-cause
// localization over causal path trees. A labeled fault schedule perturbs
// a distributed RUBiS run; every request's causal path — hops and
// per-node execution segments with retry/timeout/hedge events — is
// compared against clean-run baselines, and each deviating step is
// classified to a (fault class, node, tier) cause. The causes are scored
// per fault class against the schedule's recorded ground truth, closing
// the loop from "was this request anomalous?" (faultanomaly) to "which
// tier, node, and fault class caused it?".
type FaultLocalizeResult struct {
	Requests int
	// Scheduled is the number of fault windows; Impacts the ground-truth
	// fault applications recorded during the faulted run.
	Scheduled, Impacts int
	// Localized is the number of faulted-run requests the localizer
	// claimed at least one cause for; CleanCauses the number of clean-run
	// requests it claims causes for (the self-test: the baselines come
	// from that very run, so this stays near zero).
	Localized, CleanCauses int
	// Retries, Hedges, and Timeouts count the faulted run's robustness
	// events — the noise causal attribution has to see through.
	Retries, Hedges, Timeouts int
	// Eval scores localization per fault class, with node/tier
	// attribution accuracy among the true positives.
	Eval fault.LocalizationEval
}

// FaultLocalize runs experiment 20. Three runs share one cluster shape:
// a sizing run fixes the fault horizon and the hedge budget, a clean run
// under the exact faulted-run driver config yields the baselines (natural
// timeouts and hedges included), and the faulted run is localized.
func FaultLocalize(cfg Config) (*FaultLocalizeResult, error) {
	requests := cfg.scaled(150, 45)
	dcfg := faultClusterConfig(cfg)

	// Sizing run: the undisturbed horizon and mean latency.
	sizing, err := runFaultCluster(cfg, dcfg, requests, nil)
	if err != nil {
		return nil, fmt.Errorf("faultlocalize: sizing run: %w", err)
	}
	var horizon sim.Time
	var cleanLat []float64
	for _, tr := range sizing {
		if tr.End > horizon {
			horizon = tr.End
		}
		cleanLat = append(cleanLat, float64(tr.Latency()))
	}

	// Clean baseline run, with the robustness mechanisms the faulted run
	// will use: natural timeouts and hedges belong in the baseline.
	robust := dcfg
	robust.Retry = distributed.RetryConfig{
		Enabled:    true,
		Hedge:      true,
		HedgeAfter: sim.Time(stats.Mean(cleanLat)),
	}
	clean, err := runFaultCluster(cfg, robust, requests, nil)
	if err != nil {
		return nil, fmt.Errorf("faultlocalize: clean run: %w", err)
	}
	base := causal.NewBaseline(clean)

	// Faulted run: a denser schedule than faultanomaly's, so every class
	// carries enough ground-truth pairs to score.
	sched, err := fault.NewSchedule(fault.Config{
		Seed:      cfg.Seed,
		Horizon:   horizon,
		Nodes:     dcfg.Nodes,
		Tiers:     3,
		Slowdowns: 2,
		HopSpikes: 2,
		Drops:     2,
		Bursts:    2,
		MaxWindow: horizon / 4,
	})
	if err != nil {
		return nil, fmt.Errorf("faultlocalize: %w", err)
	}
	dirty, err := runFaultCluster(cfg, robust, requests, sched)
	if err != nil {
		return nil, fmt.Errorf("faultlocalize: faulted run: %w", err)
	}

	loc := causal.NewLocalizer(base, robust.Retry.Resolved(robust.Network), causal.Config{})
	pred := loc.LocalizeAll(dirty)

	res := &FaultLocalizeResult{
		Requests:    requests,
		Scheduled:   len(sched.Faults()),
		Impacts:     len(sched.Impacts()),
		Localized:   len(pred),
		CleanCauses: len(loc.LocalizeAll(clean)),
		Eval:        fault.EvaluateLocalization(pred, sched.Impacts()),
	}
	for _, tr := range dirty {
		res.Retries += tr.Retries
		res.Hedges += tr.Hedges
		res.Timeouts += tr.Timeouts
	}
	return res, nil
}

// String renders the per-class localization scorecard.
func (r *FaultLocalizeResult) String() string {
	var b strings.Builder
	b.WriteString("Causal localization: per-class root-cause attribution vs injected ground truth\n")
	fmt.Fprintf(&b, "%d requests, %d scheduled fault windows, %d recorded impacts\n",
		r.Requests, r.Scheduled, r.Impacts)
	fmt.Fprintf(&b, "faulted run: %d retries, %d hedges, %d timeouts; localizer claimed causes on %d requests (%d on its own clean run)\n",
		r.Retries, r.Hedges, r.Timeouts, r.Localized, r.CleanCauses)
	rows := make([][]string, 0, fault.NumKinds)
	for k := 0; k < fault.NumKinds; k++ {
		e := r.Eval.Kinds[k]
		rows = append(rows, []string{
			fault.Kind(k).String(),
			fmt.Sprintf("%d", e.TruePositives+e.FalseNegatives),
			fmt.Sprintf("%d", e.TruePositives+e.FalsePositives),
			fmt.Sprintf("%.3f", e.Precision),
			fmt.Sprintf("%.3f", e.Recall),
			fmt.Sprintf("%.3f", e.F1),
		})
	}
	b.WriteString(table(
		[]string{"fault class", "truth", "claimed", "precision", "recall", "F1"}, rows))
	fmt.Fprintf(&b, "macro F1 %.3f over classes present in truth\n", r.Eval.MacroF1())
	fmt.Fprintf(&b, "attribution among true positives: node %d/%d, tier %d/%d\n",
		r.Eval.NodeHits, r.Eval.NodeTotal, r.Eval.TierHits, r.Eval.TierTotal)
	return b.String()
}
