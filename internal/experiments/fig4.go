package experiments

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Figure4App holds one application's cumulative probability that, from an
// arbitrary instant of request execution, the next system call occurs
// within each distance.
type Figure4App struct {
	App string
	// TimePointsUs are the evaluated time distances in microseconds.
	TimePointsUs []float64
	TimeCDF      []float64
	// InsPointsK are the evaluated instruction distances in thousands.
	InsPointsK []float64
	InsCDF     []float64
}

// Figure4Result reproduces Figure 4: the distribution of next-system-call
// distances in time and instruction count.
type Figure4Result struct {
	Apps []Figure4App
}

// figure4Points is the paper's logarithmic X axis: 4, 16, 64, 256, 1K, 4K,
// 16K (microseconds or thousand instructions).
var figure4Points = []float64{4, 16, 64, 256, 1024, 4096, 16384}

// Figure4 computes, from traced system call gaps, the probability that the
// next system call falls within each distance of an arbitrary instant:
// with gap lengths g_i, P(D) = Σ min(g_i, D) / Σ g_i (an instant lands in a
// gap with probability proportional to the gap's length).
func Figure4(cfg Config) (*Figure4Result, error) {
	out := &Figure4Result{}
	for _, app := range appSet() {
		n := cfg.modelingRequests(app.Name())
		res, err := runTracked(cfg, app, 0, n)
		if err != nil {
			return nil, fmt.Errorf("figure4 %s: %w", app.Name(), err)
		}
		var insGaps, timeGaps []float64
		for _, tr := range res.Store.Traces {
			ig, tg := tr.SyscallGaps()
			insGaps = append(insGaps, ig...)
			for _, t := range tg {
				timeGaps = append(timeGaps, float64(t))
			}
		}
		fa := Figure4App{App: app.Name()}
		for _, p := range figure4Points {
			fa.TimePointsUs = append(fa.TimePointsUs, p)
			fa.TimeCDF = append(fa.TimeCDF, gapCDF(timeGaps, p*float64(sim.Microsecond)))
			fa.InsPointsK = append(fa.InsPointsK, p)
			fa.InsCDF = append(fa.InsCDF, gapCDF(insGaps, p*1000))
		}
		out.Apps = append(out.Apps, fa)
	}
	return out, nil
}

// gapCDF is P(next syscall within d of an arbitrary instant) over gaps.
func gapCDF(gaps []float64, d float64) float64 {
	var within, total float64
	for _, g := range gaps {
		if g <= 0 {
			continue
		}
		total += g
		if g <= d {
			within += g
		} else {
			within += d
		}
	}
	if total == 0 {
		return 0
	}
	return within / total
}

// At returns the time-CDF value at the given microsecond distance, for
// shape assertions.
func (a Figure4App) At(us float64) float64 {
	for i, p := range a.TimePointsUs {
		if p == us {
			return a.TimeCDF[i]
		}
	}
	return 0
}

// String renders both CDFs.
func (r *Figure4Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 4: cumulative probability of next system call distance\n")
	header := []string{"app"}
	for _, p := range figure4Points {
		header = append(header, fmt.Sprintf("%gus", p))
	}
	var rows [][]string
	for _, a := range r.Apps {
		row := []string{a.App}
		for _, v := range a.TimeCDF {
			row = append(row, fmt.Sprintf("%.0f%%", v*100))
		}
		rows = append(rows, row)
	}
	b.WriteString("\n(A) distance in time:\n")
	b.WriteString(table(header, rows))

	header = []string{"app"}
	for _, p := range figure4Points {
		header = append(header, fmt.Sprintf("%gK ins", p))
	}
	rows = nil
	for _, a := range r.Apps {
		row := []string{a.App}
		for _, v := range a.InsCDF {
			row = append(row, fmt.Sprintf("%.0f%%", v*100))
		}
		rows = append(rows, row)
	}
	b.WriteString("\n(B) distance in instruction count:\n")
	b.WriteString(table(header, rows))
	return b.String()
}
