package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AblationRow is one design-choice probe: the quantity with the mechanism
// on and off, and what the ratio means.
type AblationRow struct {
	Name    string
	On, Off float64
	Unit    string
	Meaning string
}

// Ratio is On/Off (the mechanism's multiplicative effect).
func (r AblationRow) Ratio() float64 {
	if r.Off == 0 {
		return 0
	}
	return r.On / r.Off
}

// AblationsResult quantifies the design choices DESIGN.md calls out, as
// runnable experiments (the root benchmarks report the same quantities as
// custom metrics).
type AblationsResult struct {
	Rows []AblationRow
}

// Ablations runs the design-choice probes.
func Ablations(cfg Config) (*AblationsResult, error) {
	out := &AblationsResult{}

	// 1. Contention model: 4-core TPCH p90 CPI with and without the
	// shared-cache/bandwidth model.
	tpch := workload.NewTPCH()
	n := cfg.scaled(40, 15)
	p90 := func(noContention bool) (float64, error) {
		res, err := core.Run(core.Options{
			App: tpch, Requests: n, Sampling: core.DefaultSampling(tpch),
			NoContention: noContention, Seed: cfg.Seed,
		}, core.WithObserver(cfg.Obs))
		if err != nil {
			return 0, err
		}
		return stats.Percentile(res.Store.MetricValues(metrics.CPI), 90), nil
	}
	on, err := p90(false)
	if err != nil {
		return nil, fmt.Errorf("ablations contention: %w", err)
	}
	off, err := p90(true)
	if err != nil {
		return nil, fmt.Errorf("ablations contention: %w", err)
	}
	out.Rows = append(out.Rows, AblationRow{
		Name: "contention model", On: on, Off: off, Unit: "p90 CPI",
		Meaning: "shared-cache+bandwidth contention drives Figure 1's obfuscation",
	})

	// 2. Observer compensation: measured web CPI with and without the
	// "do no harm" subtraction under 10 µs sampling.
	web := workload.NewWebServer()
	wn := cfg.scaled(120, 30)
	meanCPI := func(compensate bool) (float64, error) {
		scfg := core.DefaultSampling(web)
		scfg.Compensate = compensate
		res, err := core.Run(core.Options{App: web, Requests: wn, Sampling: scfg, Seed: cfg.Seed},
			core.WithObserver(cfg.Obs))
		if err != nil {
			return 0, err
		}
		return stats.Mean(res.Store.MetricValues(metrics.CPI)), nil
	}
	raw, err := meanCPI(false)
	if err != nil {
		return nil, fmt.Errorf("ablations compensation: %w", err)
	}
	comp, err := meanCPI(true)
	if err != nil {
		return nil, fmt.Errorf("ablations compensation: %w", err)
	}
	out.Rows = append(out.Rows, AblationRow{
		Name: "observer compensation", On: comp, Off: raw, Unit: "mean CPI",
		Meaning: "uncompensated fine-grained sampling inflates measured CPI",
	})

	// 3. Switch pollution: TPCH mean CPI with and without the context-
	// switch cache-refill charge.
	cpiPoll := func(noPollution bool) (float64, error) {
		res, err := core.Run(core.Options{
			App: tpch, Requests: n, Sampling: core.DefaultSampling(tpch),
			NoSwitchPollution: noPollution, Seed: cfg.Seed,
		}, core.WithObserver(cfg.Obs))
		if err != nil {
			return 0, err
		}
		return stats.Mean(res.Store.MetricValues(metrics.CPI)), nil
	}
	pollOn, err := cpiPoll(false)
	if err != nil {
		return nil, fmt.Errorf("ablations pollution: %w", err)
	}
	pollOff, err := cpiPoll(true)
	if err != nil {
		return nil, fmt.Errorf("ablations pollution: %w", err)
	}
	out.Rows = append(out.Rows, AblationRow{
		Name: "switch pollution", On: pollOn, Off: pollOff, Unit: "mean CPI",
		Meaning: "context-switch cache refills cost real cycles (Section 5.2's concern)",
	})

	// 4. Topology-aware scheduling extension vs the paper's policy, on
	// worst-case CPI.
	calib, err := core.Run(core.Options{
		App: tpch, Requests: n, Sampling: core.DefaultSampling(tpch), Seed: cfg.Seed,
	}, core.WithObserver(cfg.Obs))
	if err != nil {
		return nil, fmt.Errorf("ablations topology calib: %w", err)
	}
	threshold := sched.HighUsageThreshold(calib.Store, 80)
	p99 := func(policy core.PolicyKind) (float64, error) {
		res, err := core.Run(core.Options{
			App: tpch, Requests: n, Sampling: core.DefaultSampling(tpch),
			Policy: policy, UsageThreshold: threshold, Seed: cfg.Seed + 1,
		}, core.WithObserver(cfg.Obs))
		if err != nil {
			return 0, err
		}
		return stats.Percentile(res.Store.MetricValues(metrics.CPI), 99), nil
	}
	paperP99, err := p99(core.PolicyContentionEasing)
	if err != nil {
		return nil, fmt.Errorf("ablations topology: %w", err)
	}
	topoP99, err := p99(core.PolicyTopologyAware)
	if err != nil {
		return nil, fmt.Errorf("ablations topology: %w", err)
	}
	out.Rows = append(out.Rows, AblationRow{
		Name: "topology-blind vs -aware policy", On: paperP99, Off: topoP99, Unit: "p99 CPI",
		Meaning: "the extension targets same-package capacity contention directly",
	})

	return out, nil
}

// String renders the probe table.
func (r *AblationsResult) String() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			fmt.Sprintf("%.3f", row.On),
			fmt.Sprintf("%.3f", row.Off),
			fmt.Sprintf("%.2fx", row.Ratio()),
			row.Unit,
			row.Meaning,
		})
	}
	var b strings.Builder
	b.WriteString("Ablations: design-choice probes (mechanism on vs off)\n")
	b.WriteString(table([]string{"mechanism", "on", "off", "ratio", "unit", "meaning"}, rows))
	return b.String()
}
