package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/signature"
	"repro/internal/trace"
)

// Figure10App holds one application's online identification accuracy
// curves: prediction error (fraction of requests whose CPU usage class —
// above or below the median — was predicted wrongly) at each progress step.
type Figure10App struct {
	App string
	// UnitIns is the progress step in instructions (the paper: 10,000 for
	// the web server up to 1M for TPCH/WeBWorK).
	UnitIns float64
	// Steps are the evaluated progress multiples (1..10).
	Steps []int
	// PatternErr is the variation-pattern signature approach; AverageErr
	// the average-metric-value signature; PastErr the past-requests
	// baseline (constant across progress).
	PatternErr, AverageErr []float64
	PastErr                float64
	// TestRequests is the evaluation set size.
	TestRequests int
}

// Figure10Result reproduces Figure 10: effectiveness of online request
// signature identification and CPU usage prediction.
type Figure10Result struct {
	Apps []Figure10App
}

// figure10Unit is the per-application progress unit, following the paper's
// X axes.
func figure10Unit(app string) float64 {
	switch app {
	case "webserver":
		return 10e3
	case "tpcc":
		return 300e3
	case "tpch":
		return 1e6
	case "rubis":
		return 200e3
	case "webwork":
		return 1e6
	default:
		return 100e3
	}
}

// Figure10 builds a signature bank per application from the first portion
// of the traced requests (the paper uses 500 representative signatures) and
// evaluates prediction accuracy on the remainder at increasing execution
// progress.
func Figure10(cfg Config) (*Figure10Result, error) {
	out := &Figure10Result{}
	for _, app := range appSet() {
		n := cfg.modelingRequests(app.Name())
		res, err := runTracked(cfg, app, 0, n)
		if err != nil {
			return nil, fmt.Errorf("figure10 %s: %w", app.Name(), err)
		}
		traces := res.Store.Traces
		bankSize := len(traces) * 2 / 3
		if bankSize < 2 {
			return nil, fmt.Errorf("figure10 %s: too few traces (%d)", app.Name(), len(traces))
		}
		unit := figure10Unit(app.Name())
		bank := signature.Build(traces[:bankSize], metrics.L2RefsPerIns, unit, 500)
		test := traces[bankSize:]

		fa := Figure10App{App: app.Name(), UnitIns: unit, TestRequests: len(test)}
		past := signature.NewPastRequests(10)

		// Past-requests baseline: predict each test request from the 10
		// preceding completions (warm the window with the bank's tail).
		pastWrong := 0
		for i, tr := range traces {
			if i >= bankSize {
				actual := float64(tr.CPUTime()) > bank.ThresholdNs
				if past.PredictHigh(bank.ThresholdNs) != actual {
					pastWrong++
				}
			}
			past.Observe(float64(tr.CPUTime()))
		}
		if len(test) > 0 {
			fa.PastErr = float64(pastWrong) / float64(len(test))
		}

		// Pattern identification runs through the streaming fast path: one
		// in-flight session per test request, held across progress steps so
		// each step's matching is incremental, driven concurrently by the
		// sharded service. Sessions return exactly what IdentifyPattern
		// returns for the same prefix, so the curves are unchanged.
		svc := signature.NewService(signature.NewMatcher(bank), 0)
		svc.SetObserver(cfg.Obs)
		for step := 1; step <= 10; step++ {
			progress := float64(step) * unit
			var patWrong, avgWrong atomic.Int64
			forEachRequest(len(test), func(i int) {
				tr := test[i]
				actual := float64(tr.CPUTime()) > bank.ThresholdNs
				prefix := prefixPattern(tr, metrics.L2RefsPerIns, progress, unit)
				if bank.HighUsage(svc.Update(uint64(i), prefix)) != actual {
					patWrong.Add(1)
				}
				avg := prefixAverage(tr, metrics.L2RefsPerIns, progress)
				if bank.PredictHighUsageByAverage(avg) != actual {
					avgWrong.Add(1)
				}
			})
			fa.Steps = append(fa.Steps, step)
			fa.PatternErr = append(fa.PatternErr, float64(patWrong.Load())/float64(len(test)))
			fa.AverageErr = append(fa.AverageErr, float64(avgWrong.Load())/float64(len(test)))
		}
		for i := range test {
			svc.Finish(uint64(i))
		}
		out.Apps = append(out.Apps, fa)
	}
	return out, nil
}

// forEachRequest runs fn(0..n-1) across a GOMAXPROCS worker pool. The
// per-request work is independent, so the outcome is order-free.
func forEachRequest(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// prefixPattern resamples the leading progress instructions of a trace.
func prefixPattern(tr *trace.Request, m metrics.Metric, progress, bucket float64) []float64 {
	return tr.InsSeries(m).Prefix(progress).Resample(bucket)
}

// prefixAverage is the length-weighted metric average over the prefix.
func prefixAverage(tr *trace.Request, m metrics.Metric, progress float64) float64 {
	return tr.InsSeries(m).Prefix(progress).WeightedMean()
}

// FinalErr returns an approach's error at the last progress step.
func (a Figure10App) FinalErr(pattern bool) float64 {
	if len(a.PatternErr) == 0 {
		return 0
	}
	if pattern {
		return a.PatternErr[len(a.PatternErr)-1]
	}
	return a.AverageErr[len(a.AverageErr)-1]
}

// String renders the error curves.
func (r *Figure10Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 10: online signature identification prediction error\n")
	for _, a := range r.Apps {
		fmt.Fprintf(&b, "\n%s (unit %.0f ins, %d test requests, past-requests baseline %.0f%%):\n",
			a.App, a.UnitIns, a.TestRequests, a.PastErr*100)
		var rows [][]string
		for i, s := range a.Steps {
			rows = append(rows, []string{
				fmt.Sprintf("%d", s),
				fmt.Sprintf("%.0f%%", a.PatternErr[i]*100),
				fmt.Sprintf("%.0f%%", a.AverageErr[i]*100),
			})
		}
		b.WriteString(table([]string{"progress", "variation signature", "average signature"}, rows))
	}
	return b.String()
}
