package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestTableRenderer(t *testing.T) {
	got := table([]string{"a", "long-header"}, [][]string{
		{"x", "1"},
		{"yyyy", "22"},
	})
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), got)
	}
	// Columns align: every line has the header's separator position.
	if !strings.HasPrefix(lines[0], "a    ") {
		t.Fatalf("header not padded: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("no separator row: %q", lines[1])
	}
	// Rows with more cells than headers must not panic (extra ignored).
	_ = table([]string{"a"}, [][]string{{"1", "2", "3"}})
}

func TestGapCDF(t *testing.T) {
	gaps := []float64{10, 10, 80}
	// P(D=10): gaps of 10 fully within, gap 80 contributes 10/80 of its
	// mass: (10+10+10)/100 = 0.3.
	if got := gapCDF(gaps, 10); got != 0.3 {
		t.Fatalf("gapCDF(10) = %v, want 0.3", got)
	}
	if got := gapCDF(gaps, 1000); got != 1 {
		t.Fatalf("gapCDF(huge) = %v, want 1", got)
	}
	if got := gapCDF(nil, 5); got != 0 {
		t.Fatalf("empty gapCDF = %v", got)
	}
	if got := gapCDF([]float64{0, -3}, 5); got != 0 {
		t.Fatalf("degenerate gaps = %v", got)
	}
}

func TestPctHelpers(t *testing.T) {
	if pct(0.123) != "12.30%" {
		t.Fatalf("pct = %q", pct(0.123))
	}
	if pctDelta(0, 1) != "n/a" {
		t.Fatal("zero-original delta should be n/a")
	}
	if pctDelta(0.2, 0.1) != "50%" {
		t.Fatalf("pctDelta = %q", pctDelta(0.2, 0.1))
	}
}

func TestConfigScaling(t *testing.T) {
	c := Config{Seed: 1, Scale: 0.5}
	if got := c.scaled(100, 10); got != 50 {
		t.Fatalf("scaled = %d", got)
	}
	if got := c.scaled(10, 30); got != 30 {
		t.Fatalf("min not applied: %d", got)
	}
	zero := Config{}
	if got := zero.scaled(100, 1); got != 100 {
		t.Fatalf("zero scale should default to 1: %d", got)
	}
	// Per-app request counts stay ordered by request length.
	if c.modelingRequests("webserver") <= c.modelingRequests("tpch") {
		t.Fatal("short-request apps should get more requests")
	}
	if c.modelingRequests("unknown") <= 0 {
		t.Fatal("unknown app should get a default")
	}
	if c.schedRequests("tpch") < 100 {
		t.Fatal("scheduling experiments need a steady-state floor")
	}
}

func TestSampleCoVHelper(t *testing.T) {
	res, err := core.Run(core.Options{
		App: workload.NewWebServer(), Requests: 10,
		Sampling: core.DefaultSampling(workload.NewWebServer()), Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cov := sampleCoV(res.Store, metrics.CPI)
	if cov <= 0 {
		t.Fatalf("sampleCoV = %v, want positive", cov)
	}
}

func TestAblationFlagsChangeBehavior(t *testing.T) {
	app := workload.NewTPCH()
	run := func(noContention bool) float64 {
		res, err := core.Run(core.Options{
			App: app, Requests: 15, Sampling: core.DefaultSampling(app),
			NoContention: noContention, Seed: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Percentile(res.Store.MetricValues(metrics.CPI), 90)
	}
	withC := run(false)
	without := run(true)
	// Disabling contention collapses 4-core TPCH CPI toward solo levels.
	if without >= withC*0.8 {
		t.Fatalf("NoContention had little effect: %.2f vs %.2f", without, withC)
	}
}

func TestRequestPeakCPI(t *testing.T) {
	res, err := core.Run(core.Options{
		App: workload.NewTPCC(), Requests: 5,
		Sampling: core.DefaultSampling(workload.NewTPCC()), Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Store.Traces {
		peak := requestPeakCPI(tr)
		mean := tr.MetricValue(metrics.CPI)
		if peak < mean*0.9 {
			t.Fatalf("90-percentile CPI %v below mean %v", peak, mean)
		}
	}
}

func TestSummarizeHelper(t *testing.T) {
	if summarize(nil) != "n/a" {
		t.Fatal("empty summarize should be n/a")
	}
	if !strings.Contains(summarize([]float64{1, 2, 3}), "mean=2.000") {
		t.Fatalf("summarize = %q", summarize([]float64{1, 2, 3}))
	}
}

func TestAblationsExperiment(t *testing.T) {
	r, err := Ablations(Config{Seed: 1, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]AblationRow{}
	for _, row := range r.Rows {
		byName[row.Name] = row
		if row.On <= 0 || row.Off <= 0 {
			t.Fatalf("degenerate probe %q: %+v", row.Name, row)
		}
	}
	// Contention must inflate p90 CPI markedly; compensation must lower
	// measured CPI; pollution must cost something.
	if byName["contention model"].Ratio() < 1.2 {
		t.Errorf("contention ratio = %.2f, want > 1.2", byName["contention model"].Ratio())
	}
	if byName["observer compensation"].Ratio() >= 1.0 {
		t.Errorf("compensation should lower CPI: %.3f", byName["observer compensation"].Ratio())
	}
	if byName["switch pollution"].Ratio() < 1.0 {
		t.Errorf("pollution should cost cycles: %.3f", byName["switch pollution"].Ratio())
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}
