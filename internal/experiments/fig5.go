package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Figure5App compares sampling overhead for one application.
type Figure5App struct {
	App string
	// InterruptSamples and SyscallSamples are total sample counts (the
	// calibration target: similar overall sampling frequencies).
	InterruptSamples, SyscallSamples uint64
	// BackupShare is the fraction of syscall-mode samples taken by the
	// backup interrupt.
	BackupShare float64
	// InterruptOverheadNs and SyscallOverheadNs are estimated total costs
	// (per-sample costs of Table 1, Mbench-Spin).
	InterruptOverheadNs, SyscallOverheadNs float64
	// Normalized is SyscallOverheadNs / InterruptOverheadNs.
	Normalized float64
	// BaseCostPct is the interrupt-based sampling cost as a percentage of
	// total CPU consumption (the numbers atop Figure 5's bars).
	BaseCostPct float64
	// InterruptCoV and SyscallCoV verify that both approaches capture
	// similar levels of request behavior variation.
	InterruptCoV, SyscallCoV float64
}

// Figure5Result reproduces Figure 5: the overhead comparison of system
// call-triggered vs interrupt-based processor counter sampling.
type Figure5Result struct {
	Apps []Figure5App
}

// Figure5 runs both sampling schemes per application, calibrating the
// syscall-triggered scheme's TsyscallMin so both produce similar overall
// sampling frequencies, then compares estimated overheads.
func Figure5(cfg Config) (*Figure5Result, error) {
	out := &Figure5Result{}
	for _, app := range appSet() {
		n := cfg.modelingRequests(app.Name())
		intr, err := runTracked(cfg, app, 0, n)
		if err != nil {
			return nil, fmt.Errorf("figure5 %s interrupt: %w", app.Name(), err)
		}

		scfg := core.SyscallSampling(app)
		sys, err := core.Run(core.Options{
			App: app, Requests: n, Sampling: scfg, Seed: cfg.Seed,
		}, core.WithObserver(cfg.Obs))
		if err != nil {
			return nil, fmt.Errorf("figure5 %s syscall: %w", app.Name(), err)
		}
		// Calibrate TsyscallMin and the backup delay so the syscall scheme
		// produces a similar overall sampling frequency to the interrupt
		// scheme's — the paper's fairness condition. Counts scale roughly
		// inversely with both knobs, so scaling by the count ratio
		// converges in a few passes.
		for pass := 0; pass < 4; pass++ {
			if sys.Samples.Total() == 0 || intr.Samples.Total() == 0 {
				break
			}
			ratio := float64(sys.Samples.Total()) / float64(intr.Samples.Total())
			if ratio > 0.9 && ratio < 1.1 {
				break
			}
			scfg.TsyscallMin = sim.Time(float64(scfg.TsyscallMin) * ratio)
			if scfg.TsyscallMin < 200*sim.Nanosecond {
				scfg.TsyscallMin = 200 * sim.Nanosecond
			}
			scfg.TbackupInt = sim.Time(float64(scfg.TbackupInt) * ratio)
			if scfg.TbackupInt < 4*scfg.TsyscallMin {
				scfg.TbackupInt = 4 * scfg.TsyscallMin
			}
			sys, err = core.Run(core.Options{
				App: app, Requests: n, Sampling: scfg, Seed: cfg.Seed,
			}, core.WithObserver(cfg.Obs))
			if err != nil {
				return nil, fmt.Errorf("figure5 %s recalibrated: %w", app.Name(), err)
			}
		}

		iOver := intr.Samples.OverheadNs()
		sOver := sys.Samples.OverheadNs()
		var totalCPU float64
		for _, tr := range intr.Store.Traces {
			totalCPU += float64(tr.CPUTime())
		}
		fa := Figure5App{
			App:                 app.Name(),
			InterruptSamples:    intr.Samples.Total(),
			SyscallSamples:      sys.Samples.Total(),
			InterruptOverheadNs: iOver,
			SyscallOverheadNs:   sOver,
			InterruptCoV:        sampleCoV(intr.Store, metrics.CPI),
			SyscallCoV:          sampleCoV(sys.Store, metrics.CPI),
		}
		if sys.Samples.Total() > 0 {
			fa.BackupShare = float64(sys.Samples.Interrupt) / float64(sys.Samples.Total())
		}
		if iOver > 0 {
			fa.Normalized = sOver / iOver
		}
		if totalCPU > 0 {
			fa.BaseCostPct = iOver / totalCPU * 100
		}
		out.Apps = append(out.Apps, fa)
	}
	return out, nil
}

// sampleCoV is the pooled coefficient of variation of per-period metric
// values across all traces — "the captured request behavior variation".
func sampleCoV(store *trace.Store, m metrics.Metric) float64 {
	var vals, ws []float64
	for _, tr := range store.Traces {
		for _, p := range tr.Periods {
			if w := p.C.Weight(m); w > 0 {
				vals = append(vals, p.C.Value(m))
				ws = append(ws, w)
			}
		}
	}
	return stats.CoV(vals, ws)
}

// String renders the comparison.
func (r *Figure5Result) String() string {
	var rows [][]string
	for _, a := range r.Apps {
		rows = append(rows, []string{
			a.App,
			fmt.Sprintf("%d", a.InterruptSamples),
			fmt.Sprintf("%d", a.SyscallSamples),
			fmt.Sprintf("%.0f%%", a.BackupShare*100),
			fmt.Sprintf("%.2f", a.Normalized),
			fmt.Sprintf("%.0f%%", (1-a.Normalized)*100),
			fmt.Sprintf("%.2f%%", a.BaseCostPct),
			fmt.Sprintf("%.2f/%.2f", a.InterruptCoV, a.SyscallCoV),
		})
	}
	var b strings.Builder
	b.WriteString("Figure 5: syscall-triggered vs interrupt-based sampling overhead\n")
	b.WriteString(table(
		[]string{"app", "intr samples", "sys samples", "backup", "normalized", "saving", "base cost", "CoV i/s"},
		rows))
	return b.String()
}
