package experiments

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

func TestFaultLocalizeReport(t *testing.T) {
	r, err := FaultLocalize(Config{Seed: 1, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Scheduled == 0 || r.Impacts == 0 {
		t.Fatalf("no faults scheduled/applied: %+v", r)
	}
	if r.Localized == 0 {
		t.Fatal("localizer claimed no causes on the faulted run")
	}
	// The baselines come from the clean run itself: self-claims must stay
	// a small fraction of it.
	if r.CleanCauses*10 > r.Requests {
		t.Fatalf("localizer claimed %d/%d clean-run requests", r.CleanCauses, r.Requests)
	}
	if r.Eval.MacroF1() <= 0.5 {
		t.Fatalf("macro F1 too low: %.3f", r.Eval.MacroF1())
	}
	// The pollution and slowdown detectors ride clean physical signatures
	// (CPI vs ns-per-cycle); both classes must localize well.
	if e := r.Eval.Kinds[3]; e.F1 < 0.8 { // PollutionBurst
		t.Fatalf("pollution localization F1 %.3f: %+v", e.F1, e)
	}
	if e := r.Eval.Kinds[0]; e.F1 < 0.8 { // NodeSlowdown
		t.Fatalf("slowdown localization F1 %.3f: %+v", e.F1, e)
	}
	// Attribution among TPs is the tentpole claim: (tier, node, kind).
	if r.Eval.NodeTotal == 0 || r.Eval.NodeHits*2 < r.Eval.NodeTotal {
		t.Fatalf("node attribution %d/%d", r.Eval.NodeHits, r.Eval.NodeTotal)
	}
	out := r.String()
	for _, want := range []string{"fault class", "precision", "recall", "macro F1", "attribution", "node-slowdown", "pollution-burst"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestFaultLocalizeSeedFingerprint pins the seed-determinism contract the
// golden tiers rely on: the rendered report's hash is identical across
// repeats and across GOMAXPROCS 1 and 4 for every seed tried.
func TestFaultLocalizeSeedFingerprint(t *testing.T) {
	fingerprint := func(seed int64) string {
		r, err := FaultLocalize(Config{Seed: seed, Scale: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%x", sha256.Sum256([]byte(r.String())))
	}
	for _, seed := range []int64{1, 2, 5} {
		want := fingerprint(seed)
		for _, procs := range []int{1, 4} {
			prev := runtime.GOMAXPROCS(procs)
			got := fingerprint(seed)
			runtime.GOMAXPROCS(prev)
			if got != want {
				t.Fatalf("seed %d: fingerprint diverged at GOMAXPROCS %d", seed, procs)
			}
		}
	}
}
