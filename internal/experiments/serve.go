package experiments

import (
	"fmt"
	"strings"

	"repro/internal/serve"
	"repro/internal/workload"
)

// ServeResult wraps the service-mode engine's run summary for the registry
// and the verification harness: the full deterministic Result plus the
// stream spec it ran, so the fingerprint covers the workload too.
type ServeResult struct {
	Spec     string
	Requests int
	Run      serve.Result
}

func (r *ServeResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "service mode: %d requests over %q\n", r.Requests, r.Spec)
	b.WriteString(r.Run.String())
	return b.String()
}

// Serve runs the streaming pipeline end to end: a scaled slice of the
// default service stream with burst windows placed relative to the run's
// expected span (so every scale exercises admission control), processed to
// completion and drained. Results are bit-identical across repeats and
// GOMAXPROCS settings — the registry's online counterpart to the offline
// figures.
func Serve(cfg Config) (*ServeResult, error) {
	requests := cfg.scaled(1_000_000, 20_000)
	sc := serve.DefaultConfig(cfg.Seed)
	// Expected virtual span at the base rate; bursts land at 25% (2.5×,
	// degrading) and 60% (6×, shedding) of it regardless of scale, and the
	// compaction interval tracks the span so every scale recompacts several
	// times. Admission is tightened (smaller queues, costlier degraded
	// matching) so the shedding burst genuinely overruns capacity.
	spanNs := float64(requests) / sc.Stream.RatePerSec * 1e9
	sc.Stream.Bursts = []workload.StreamBurst{
		{StartNs: 0.25 * spanNs, DurationNs: 0.20 * spanNs, Factor: 2.5},
		{StartNs: 0.60 * spanNs, DurationNs: 0.08 * spanNs, Factor: 6},
	}
	if ticks := int(spanNs / float64(sc.TickNs)); ticks/8 > 0 {
		sc.CompactTicks = ticks / 8
	} else {
		sc.CompactTicks = 1
	}
	sc.QueueCap = 320
	sc.DegradeDepth = 128
	sc.CostDegradedNs = 1500
	sc.Obs = cfg.Obs
	e, err := serve.New(sc)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	e.Process(requests)
	e.Drain()
	return &ServeResult{
		Spec:     sc.Stream.String(),
		Requests: requests,
		Run:      e.Result(),
	}, nil
}
