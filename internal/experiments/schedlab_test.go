package experiments

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/serve"
)

func TestSchedLabReport(t *testing.T) {
	r, err := SchedLab(Config{Seed: 1, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Kernel) != len(sched.PolicyNames())*len(schedLabLoads) {
		t.Fatalf("kernel race has %d rows, want %d policies × %d loads",
			len(r.Kernel), len(sched.PolicyNames()), len(schedLabLoads))
	}
	if len(r.Fleet) != len(serve.FleetPolicies()) {
		t.Fatalf("fleet race has %d rows, want %d", len(r.Fleet), len(serve.FleetPolicies()))
	}
	if r.Threshold <= 0 || r.BankEntries == 0 {
		t.Fatalf("degenerate calibration: threshold %v, bank %d", r.Threshold, r.BankEntries)
	}
	for _, row := range r.Kernel {
		if row.CPIMean <= 0 || row.CPIP99 < row.CPIMean {
			t.Fatalf("%s/%s: degenerate CPI summary %+v", row.Policy, row.Load, row)
		}
		if row.LatencyP99Ns <= 0 || row.WallNs <= 0 || row.ContextSwitches == 0 {
			t.Fatalf("%s/%s: degenerate run stats %+v", row.Policy, row.Load, row)
		}
	}
	// The crowd load must actually be heavier than steady state.
	var steady, crowd float64
	for _, row := range r.Kernel {
		if row.Policy != "round-robin" {
			continue
		}
		if row.Load == "steady" {
			steady = row.LatencyP99Ns
		} else {
			crowd = row.LatencyP99Ns
		}
	}
	if crowd <= steady {
		t.Fatalf("crowd p99 %.0f not above steady %.0f", crowd, steady)
	}
	for _, row := range r.Fleet {
		if row.Completed == 0 || row.CPI <= 0 || row.P99Ns <= 0 {
			t.Fatalf("fleet %s: degenerate row %+v", row.Policy, row)
		}
	}
	out := r.String()
	for _, want := range append(append([]string{}, sched.PolicyNames()...),
		"steady", "crowd", "CPI p99", "active/ups/downs", "scale-out") {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestSchedLabSeedFingerprint pins the seed-determinism contract the golden
// tiers rely on: the rendered report's hash is identical across repeats and
// across GOMAXPROCS 1 and 4. The race's 150-request floor makes every run
// cost the same regardless of scale, so the matrix is kept lean — the full
// procs sweep at seed 1 plus a repeat check at a second seed; the golden
// corpus's schedlab procs cells re-prove procs-invariance on every
// `make verify`.
func TestSchedLabSeedFingerprint(t *testing.T) {
	fingerprint := func(seed int64) string {
		r, err := SchedLab(Config{Seed: seed, Scale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%x", sha256.Sum256([]byte(r.String())))
	}
	want := fingerprint(1)
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		got := fingerprint(1)
		runtime.GOMAXPROCS(prev)
		if got != want {
			t.Fatalf("seed 1: fingerprint diverged at GOMAXPROCS %d", procs)
		}
	}
	if fingerprint(5) != fingerprint(5) {
		t.Fatal("seed 5: fingerprint diverged across repeats")
	}
}
