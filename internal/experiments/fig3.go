package experiments

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// Figure3App holds one application's captured coefficient of variation per
// metric, with and without intra-request variations.
type Figure3App struct {
	App string
	// InterOnly treats each request as one uniform period (Equation 1 over
	// whole-request values).
	InterOnly map[metrics.Metric]float64
	// WithIntra pools every sampled period of every request.
	WithIntra map[metrics.Metric]float64
}

// Figure3Result reproduces Figure 3: captured request behavior variations
// on CPU cycles per instruction, L2 references per instruction, and L2
// misses per reference.
type Figure3Result struct {
	Apps    []Figure3App
	Metrics []metrics.Metric
}

// Figure3 runs each application concurrently with the paper's per-app
// sampling frequency and computes both variation levels.
func Figure3(cfg Config) (*Figure3Result, error) {
	ms := []metrics.Metric{metrics.CPI, metrics.L2RefsPerIns, metrics.L2MissRatio}
	out := &Figure3Result{Metrics: ms}
	for _, app := range appSet() {
		n := cfg.modelingRequests(app.Name())
		res, err := runTracked(cfg, app, 0, n)
		if err != nil {
			return nil, fmt.Errorf("figure3 %s: %w", app.Name(), err)
		}
		fa := Figure3App{
			App:       app.Name(),
			InterOnly: map[metrics.Metric]float64{},
			WithIntra: map[metrics.Metric]float64{},
		}
		for _, m := range ms {
			var interVals, interW []float64
			var intraVals, intraW []float64
			for _, tr := range res.Store.Traces {
				tot := tr.Totals()
				if w := tot.Weight(m); w > 0 {
					interVals = append(interVals, tot.Value(m))
					interW = append(interW, w)
				}
				for _, p := range tr.Periods {
					if w := p.C.Weight(m); w > 0 {
						intraVals = append(intraVals, p.C.Value(m))
						intraW = append(intraW, w)
					}
				}
			}
			fa.InterOnly[m] = stats.CoV(interVals, interW)
			fa.WithIntra[m] = stats.CoV(intraVals, intraW)
		}
		out.Apps = append(out.Apps, fa)
	}
	return out, nil
}

// String renders per-metric comparison rows.
func (r *Figure3Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 3: captured behavior variations (coefficient of variation)\n")
	for _, m := range r.Metrics {
		var rows [][]string
		for _, a := range r.Apps {
			inter, intra := a.InterOnly[m], a.WithIntra[m]
			gain := 0.0
			if inter > 0 {
				gain = intra / inter
			}
			rows = append(rows, []string{
				a.App,
				fmt.Sprintf("%.3f", inter),
				fmt.Sprintf("%.3f", intra),
				fmt.Sprintf("%.2fx", gain),
			})
		}
		fmt.Fprintf(&b, "\n%s:\n", m)
		b.WriteString(table([]string{"app", "inter-request only", "+intra-request", "ratio"}, rows))
	}
	return b.String()
}
