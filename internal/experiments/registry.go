// The experiment registry: the single authoritative list of every table
// and figure in the paper's evaluation, in paper order. Both CLIs and the
// test suite iterate this list instead of keeping their own dispatch
// tables, so adding an experiment is one line here and nowhere else.
package experiments

import "fmt"

// Experiment is one runnable unit of the evaluation — a table or figure.
// Run executes it under the configuration and returns its printable result.
type Experiment interface {
	Name() string
	Run(Config) (fmt.Stringer, error)
}

// entry adapts a concrete experiment function (returning its own result
// type) to the Experiment interface, and threads the configuration's
// observability collector: each run is wrapped in a span scope named after
// the experiment, so core.Run's "run" spans nest under it.
type entry[T fmt.Stringer] struct {
	name string
	fn   func(Config) (T, error)
}

func (e entry[T]) Name() string { return e.name }

func (e entry[T]) Run(cfg Config) (fmt.Stringer, error) {
	cfg.Obs.Enter(e.name)
	defer cfg.Obs.Exit(0) // scope node: time lives in the child "run" spans
	r, err := e.fn(cfg)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// def wraps an experiment function into a registry entry.
func def[T fmt.Stringer](name string, fn func(Config) (T, error)) Experiment {
	return entry[T]{name: name, fn: fn}
}

// Registry returns every experiment in the paper's presentation order.
// The returned slice is freshly allocated; callers may reorder or filter.
func Registry() []Experiment {
	return []Experiment{
		def("fig1", Figure1),
		def("fig2", Figure2),
		def("table1", Table1),
		def("fig3", Figure3),
		def("fig4", Figure4),
		def("fig5", Figure5),
		def("table2", Table2),
		def("fig6", Figure6),
		def("fig7", Figure7),
		def("fig8", Figure8),
		def("fig9", Figure9),
		def("fig10", Figure10),
		def("fig11", Figure11),
		def("fig12", Figure12),
		def("fig13", Figure13),
		def("ablations", Ablations),
		def("faultanomaly", FaultAnomaly),
		def("serve", Serve),
		def("fleet", Fleet),
		def("faultlocalize", FaultLocalize),
		def("schedlab", SchedLab),
	}
}

// Names returns the registry's experiment names in order.
func Names() []string {
	reg := Registry()
	names := make([]string, len(reg))
	for i, e := range reg {
		names[i] = e.Name()
	}
	return names
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.Name() == name {
			return e, true
		}
	}
	return nil, false
}
