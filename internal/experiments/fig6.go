package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/distance"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Figure6Result reproduces Figure 6: two inherently similar TPCC requests
// whose executions drift apart slightly, the case where the L1 distance
// over-estimates and dynamic time warping (with asynchrony penalty)
// measures the true similarity.
type Figure6Result struct {
	// RequestA and RequestB are the two requests' CPI patterns over fixed
	// instruction buckets.
	RequestA, RequestB []float64
	BucketIns          float64
	// L1Distance over-estimates due to the shift; DTWDistance (asynchrony
	// penalized) stays small.
	L1Distance, DTWDistance float64
	// Ratio is L1Distance / DTWDistance — the over-estimation factor.
	Ratio float64
}

// Figure6 runs TPCC concurrently and selects the "new order" pair with the
// largest L1-to-penalized-DTW distance ratio: inherently similar requests
// whose progress drifted apart under dynamic execution conditions.
func Figure6(cfg Config) (*Figure6Result, error) {
	n := cfg.scaled(250, 40)
	res, err := runTracked(cfg, workload.NewTPCC(), 0, n)
	if err != nil {
		return nil, fmt.Errorf("figure6: %w", err)
	}
	newOrders := res.Store.ByType()["new order"]
	if len(newOrders) < 2 {
		return nil, fmt.Errorf("figure6: only %d new-order requests traced", len(newOrders))
	}
	m := core.NewModeler("tpcc", res.Store.Traces)
	l1 := m.L1()
	dtw := m.DTWPenalized()

	patterns := make([][]float64, len(newOrders))
	for i, tr := range newOrders {
		patterns[i] = tr.Resampled(metrics.CPI, m.BucketIns)
	}
	// Both measures' pairwise matrices fill in parallel; the ratio scan
	// then reads precomputed cells.
	dtwM := distance.NewMatrixFromSequences(patterns, dtw, distance.MatrixOptions{Obs: cfg.Obs})
	l1M := distance.NewMatrixFromSequences(patterns, l1, distance.MatrixOptions{Obs: cfg.Obs})
	bestI, bestJ, bestRatio := -1, -1, 0.0
	var bestL1, bestDTW float64
	for i := 0; i < len(patterns); i++ {
		for j := i + 1; j < len(patterns); j++ {
			dv := dtwM.At(i, j)
			lv := l1M.At(i, j)
			if dv <= 0 {
				continue
			}
			if ratio := lv / dv; ratio > bestRatio {
				bestRatio, bestI, bestJ = ratio, i, j
				bestL1, bestDTW = lv, dv
			}
		}
	}
	if bestI < 0 {
		return nil, fmt.Errorf("figure6: no drifting pair found")
	}
	return &Figure6Result{
		RequestA:    patterns[bestI],
		RequestB:    patterns[bestJ],
		BucketIns:   m.BucketIns,
		L1Distance:  bestL1,
		DTWDistance: bestDTW,
		Ratio:       bestRatio,
	}, nil
}

// String summarizes the drift example.
func (r *Figure6Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 6: two similar TPCC new-order requests drifting apart\n")
	fmt.Fprintf(&b, "pattern lengths: %d vs %d buckets of %.0f instructions\n",
		len(r.RequestA), len(r.RequestB), r.BucketIns)
	fmt.Fprintf(&b, "L1 distance:  %.3f (over-estimates under drift)\n", r.L1Distance)
	fmt.Fprintf(&b, "DTW distance: %.3f (asynchrony-penalized)\n", r.DTWDistance)
	fmt.Fprintf(&b, "over-estimation factor: %.2fx\n", r.Ratio)
	return b.String()
}
