package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// TestRequestValidityProperty checks structural invariants for every
// application across many seeds: positive phase lengths, sane activities,
// valid tiers, non-negative syscall parameters.
func TestRequestValidityProperty(t *testing.T) {
	apps := append(All(), App(NewMbenchSpin()), App(NewMbenchData()))
	f := func(seed int64) bool {
		g := sim.NewRNG(seed)
		for _, app := range apps {
			r := app.NewRequest(1, g)
			if len(r.Phases) == 0 || r.RNG == nil {
				return false
			}
			if r.App != app.Name() {
				return false
			}
			for _, p := range r.Phases {
				a := p.Activity
				if p.Instructions <= 0 ||
					a.BaseCPI <= 0 ||
					a.RefsPerIns < 0 || a.RefsPerIns > 0.5 ||
					a.SoloMissRatio < 0 || a.SoloMissRatio > 1 ||
					a.WorkingSetBytes < 0 {
					return false
				}
				if p.Tier < 0 || p.Tier >= app.Tiers() {
					return false
				}
				if p.SyscallGap < 0 || p.BlockProb < 0 || p.BlockProb > 1 {
					return false
				}
				if p.SyscallGap > 0 && len(p.Syscalls) == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestActForHitsTarget verifies the inverse cost-model calibration helper:
// the solo effective CPI of the produced activity lands near the target
// (up to the deliberate jitter).
func TestActForHitsTarget(t *testing.T) {
	g := sim.NewRNG(11)
	targets := []struct{ cpi, refs, miss, ws float64 }{
		{1.2, 0.005, 0.05, 256 << 10},
		{2.0, 0.02, 0.1, 2 << 20},
		{3.0, 0.04, 0.2, 8 << 20},
		{4.9, 0.04, 0.1, 192 << 10},
	}
	for _, tc := range targets {
		var sum float64
		const n = 200
		for i := 0; i < n; i++ {
			a := actFor(g, tc.cpi, tc.refs, tc.miss, tc.ws)
			sum += soloCPI(&Request{Phases: []Phase{{Instructions: 1, Activity: a}}})
		}
		mean := sum / n
		if math.Abs(mean-tc.cpi) > 0.12*tc.cpi {
			t.Errorf("actFor(%v) solo CPI mean = %.3f", tc.cpi, mean)
		}
	}
}

// TestJitterBounds verifies draws stay within the clamp band.
func TestJitterBounds(t *testing.T) {
	g := sim.NewRNG(12)
	for i := 0; i < 2000; i++ {
		v := jitter(g, 100, 0.5)
		if v < 25 || v > 400 {
			t.Fatalf("jitter escaped clamp band: %v", v)
		}
	}
	if jitter(g, 0, 0.5) != 0 {
		t.Fatal("zero-mean jitter should be zero")
	}
}

// TestTypeIndexDense verifies type indexes map consistently to type names.
func TestTypeIndexDense(t *testing.T) {
	for _, app := range All() {
		g := sim.NewRNG(13)
		seen := map[int]string{}
		for i := 0; i < 300; i++ {
			r := app.NewRequest(uint64(i), g)
			if prev, ok := seen[r.TypeIndex]; ok && prev != r.Type {
				t.Fatalf("%s: TypeIndex %d maps to %q and %q",
					app.Name(), r.TypeIndex, prev, r.Type)
			}
			seen[r.TypeIndex] = r.Type
		}
	}
}

// TestWebChunkCountTracksFileSize: bigger SPECweb classes produce more
// send chunks (longer requests).
func TestWebChunkCountTracksFileSize(t *testing.T) {
	g := sim.NewRNG(14)
	w := NewWebServer()
	byClass := map[string][]float64{}
	for i := 0; i < 800; i++ {
		r := w.NewRequest(uint64(i), g)
		byClass[r.Type] = append(byClass[r.Type], r.TotalInstructions())
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if len(byClass["class0"]) == 0 || len(byClass["class2"]) == 0 {
		t.Skip("class mix too sparse")
	}
	if mean(byClass["class2"]) <= mean(byClass["class0"]) {
		t.Fatal("larger file class should produce longer requests")
	}
}

// TestTPCHPrologueIdentifiesQuery: the plan prologue length is
// query-characteristic (the Figure 10 identification signal).
func TestTPCHPrologueIdentifiesQuery(t *testing.T) {
	g := sim.NewRNG(15)
	tp := NewTPCH()
	prologues := map[string][]float64{}
	for i := 0; i < 300; i++ {
		r := tp.NewRequest(uint64(i), g)
		if r.Phases[0].Name != "plan" {
			t.Fatal("TPCH requests must start with the plan prologue")
		}
		prologues[r.Type] = append(prologues[r.Type], r.Phases[0].Instructions)
	}
	// Q2 (index 0) and Q22 (index 16) prologues must be well separated.
	q2, q22 := prologues["Q2"], prologues["Q22"]
	if len(q2) == 0 || len(q22) == 0 {
		t.Skip("query mix too sparse")
	}
	var m2, m22 float64
	for _, v := range q2 {
		m2 += v
	}
	for _, v := range q22 {
		m22 += v
	}
	m2 /= float64(len(q2))
	m22 /= float64(len(q22))
	if m22 < m2*2 {
		t.Fatalf("prologues not query-characteristic: Q2 %.0f vs Q22 %.0f", m2, m22)
	}
}
