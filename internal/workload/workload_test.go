package workload

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/sim"
)

func gen(t *testing.T, app App, n int, seed int64) []*Request {
	t.Helper()
	g := sim.NewRNG(seed)
	out := make([]*Request, n)
	for i := range out {
		out[i] = app.NewRequest(uint64(i), g)
		if len(out[i].Phases) == 0 {
			t.Fatalf("%s request %d has no phases", app.Name(), i)
		}
	}
	return out
}

// soloCPI computes the length-weighted solo CPI of a request under the
// default cache model.
func soloCPI(r *Request) float64 {
	cfg := cache.DefaultConfig()
	var cyc, ins float64
	for _, p := range r.Phases {
		a := p.Activity
		cpi := cache.CPI(cfg, a.BaseCPI, a.RefsPerIns, a.SoloMissRatio, 1)
		cyc += cpi * p.Instructions
		ins += p.Instructions
	}
	return cyc / ins
}

func TestByName(t *testing.T) {
	for _, name := range []string{"webserver", "tpcc", "tpch", "rubis", "webwork"} {
		app, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if app.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, app.Name())
		}
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName of unknown app should error")
	}
	if len(All()) != 5 {
		t.Fatalf("All() returned %d apps", len(All()))
	}
}

func TestSamplingPeriodsMatchPaper(t *testing.T) {
	want := map[string]sim.Time{
		"webserver": 10 * sim.Microsecond,
		"tpcc":      100 * sim.Microsecond,
		"tpch":      sim.Millisecond,
		"rubis":     100 * sim.Microsecond,
		"webwork":   sim.Millisecond,
	}
	for _, app := range All() {
		if got := app.SamplingPeriod(); got != want[app.Name()] {
			t.Errorf("%s sampling period = %v, want %v", app.Name(), got, want[app.Name()])
		}
	}
}

func TestRequestLengthScales(t *testing.T) {
	// The paper: web requests run a few hundred thousand instructions;
	// WeBWorK requests may run as many as 600 million.
	cases := []struct {
		app      App
		min, max float64 // bounds on the *mean* length
	}{
		{NewWebServer(), 100e3, 600e3},
		{NewTPCC(), 500e3, 3e6},
		{NewTPCH(), 30e6, 200e6},
		{NewRUBiS(), 800e3, 5e6},
		{NewWeBWorK(), 50e6, 500e6},
	}
	for _, c := range cases {
		reqs := gen(t, c.app, 60, 1)
		var sum float64
		for _, r := range reqs {
			sum += r.TotalInstructions()
		}
		mean := sum / float64(len(reqs))
		if mean < c.min || mean > c.max {
			t.Errorf("%s mean length = %.0f, want in [%.0f, %.0f]",
				c.app.Name(), mean, c.min, c.max)
		}
	}
}

func TestSoloCPIRanges(t *testing.T) {
	// Figure 1's 1-core clusters: web ~1-3, TPCC 1-3, TPCH 1.5-2.5,
	// RUBiS 1.5-2.5, WeBWorK 1-2.
	cases := []struct {
		app      App
		min, max float64
	}{
		{NewWebServer(), 1.0, 3.0},
		{NewTPCC(), 1.0, 3.2},
		{NewTPCH(), 1.4, 3.1},
		{NewRUBiS(), 1.4, 2.6},
		{NewWeBWorK(), 1.0, 2.0},
	}
	for _, c := range cases {
		for _, r := range gen(t, c.app, 40, 2) {
			cpi := soloCPI(r)
			if cpi < c.min || cpi > c.max {
				t.Errorf("%s %s solo CPI = %.2f outside [%v, %v]",
					c.app.Name(), r.Type, cpi, c.min, c.max)
			}
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	for _, app := range All() {
		a := gen(t, app, 5, 7)
		b := gen(t, app, 5, 7)
		for i := range a {
			if a[i].Type != b[i].Type || len(a[i].Phases) != len(b[i].Phases) {
				t.Fatalf("%s generation not deterministic", app.Name())
			}
			for j := range a[i].Phases {
				if a[i].Phases[j].Instructions != b[i].Phases[j].Instructions {
					t.Fatalf("%s phase lengths differ across identical seeds", app.Name())
				}
			}
		}
	}
}

func TestTPCCMixAndClusters(t *testing.T) {
	reqs := gen(t, NewTPCC(), 2000, 3)
	counts := map[string]int{}
	for _, r := range reqs {
		counts[r.Type]++
	}
	if n := counts["new order"]; n < 800 || n > 1000 {
		t.Errorf("new order count = %d/2000, want ~45%%", n)
	}
	if n := counts["payment"]; n < 780 || n > 950 {
		t.Errorf("payment count = %d/2000, want ~43%%", n)
	}
	for _, minor := range []string{"order status", "delivery", "stock level"} {
		if n := counts[minor]; n < 40 || n > 140 {
			t.Errorf("%s count = %d/2000, want ~4%%", minor, n)
		}
	}
	// Distinct transaction types should form distinct CPI clusters
	// (Figure 1's multi-modal TPCC distribution).
	byType := map[string][]float64{}
	for _, r := range reqs[:300] {
		byType[r.Type] = append(byType[r.Type], soloCPI(r))
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if len(byType["payment"]) == 0 || len(byType["stock level"]) == 0 {
		t.Skip("mix too small in 300 draws")
	}
	if math.Abs(mean(byType["payment"])-mean(byType["stock level"])) < 0.3 {
		t.Error("payment and stock level CPI clusters not separated")
	}
}

func TestTPCHUniformWithinRequest(t *testing.T) {
	// TPCH behavior is uniform over a request: phase CPIs within one
	// request should span a narrow range.
	for _, r := range gen(t, NewTPCH(), 20, 4) {
		cfg := cache.DefaultConfig()
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range r.Phases {
			if p.Name == "aggregate" || p.Name == "plan" {
				continue // small prologue/tail stages
			}
			cpi := cache.CPI(cfg, p.Activity.BaseCPI, p.Activity.RefsPerIns, p.Activity.SoloMissRatio, 1)
			lo, hi = math.Min(lo, cpi), math.Max(hi, cpi)
		}
		if hi/lo > 1.8 {
			t.Errorf("TPCH %s phase CPI spread %.2f–%.2f too wide", r.Type, lo, hi)
		}
	}
	if len(TPCHQueryNames()) != 17 {
		t.Fatalf("TPCH should have 17 query types, got %d", len(TPCHQueryNames()))
	}
}

func TestRUBiSTiers(t *testing.T) {
	reqs := gen(t, NewRUBiS(), 50, 5)
	sawTier2 := false
	for _, r := range reqs {
		if r.Phases[0].Tier != 0 {
			t.Fatal("RUBiS requests must start at the web tier")
		}
		last := r.Phases[len(r.Phases)-1]
		if last.Tier != 0 {
			t.Fatal("RUBiS requests must finish at the web tier")
		}
		if r.MaxTier() == 2 {
			sawTier2 = true
		}
		// Tier changes must be to adjacent stages we can socket-hop.
		for i := 1; i < len(r.Phases); i++ {
			d := r.Phases[i].Tier - r.Phases[i-1].Tier
			if d > 1 || d < -2 {
				t.Fatalf("implausible tier hop %d -> %d", r.Phases[i-1].Tier, r.Phases[i].Tier)
			}
		}
	}
	if !sawTier2 {
		t.Fatal("no RUBiS request reached the database tier")
	}
	if NewRUBiS().Tiers() != 3 {
		t.Fatal("RUBiS should have 3 tiers")
	}
}

func TestWeBWorKCommonPrefix(t *testing.T) {
	reqs := gen(t, NewWeBWorK(), 10, 6)
	// The first three phases are the session/Moodle/course prefix with
	// nearly identical lengths across requests.
	for _, r := range reqs {
		if r.Phases[0].Name != "session-init" || r.Phases[2].Name != "course-load" {
			t.Fatal("WeBWorK prefix structure missing")
		}
	}
	base := reqs[0].Phases[0].Instructions
	for _, r := range reqs[1:] {
		if math.Abs(r.Phases[0].Instructions-base)/base > 0.25 {
			t.Error("WeBWorK common prefix varies too much across requests")
		}
	}
}

func TestWeBWorKSameProblemSimilar(t *testing.T) {
	w := NewWeBWorK()
	g := sim.NewRNG(9)
	a := w.RequestForProblem(1, 954, g)
	b := w.RequestForProblem(2, 954, g)
	if len(a.Phases) != len(b.Phases) {
		t.Fatalf("same problem produced different phase counts: %d vs %d",
			len(a.Phases), len(b.Phases))
	}
	for i := range a.Phases {
		pa, pb := a.Phases[i], b.Phases[i]
		if pa.Name != pb.Name {
			t.Fatalf("phase %d names differ: %s vs %s", i, pa.Name, pb.Name)
		}
		if math.Abs(pa.Instructions-pb.Instructions) > 0.3*pa.Instructions {
			t.Fatalf("phase %d lengths diverge too much", i)
		}
	}
	c := w.RequestForProblem(3, 955, g)
	if len(c.Phases) == len(a.Phases) {
		// Different problems usually have different phase counts; equal
		// counts are possible but then characteristics should differ.
		same := true
		for i := range a.Phases {
			if a.Phases[i].Name != c.Phases[i].Name {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different problems produced identical structure")
		}
	}
}

// NewWeBWorKProblems restricts the library so a modest run yields several
// requests per problem (the Figure 9 anomaly-reference setup).
func TestWeBWorKProblemsRestriction(t *testing.T) {
	ids := []int{954, 117, 1501}
	w := NewWeBWorKProblems(ids...)
	allowed := map[int]bool{}
	for _, id := range ids {
		allowed[id] = true
	}
	reqs := gen(t, w, 40, 12)
	drawn := map[int]int{}
	for _, r := range reqs {
		if !allowed[r.TypeIndex] {
			t.Fatalf("request drew problem %d outside the restriction %v", r.TypeIndex, ids)
		}
		if want := fmt.Sprintf("problem-%d", r.TypeIndex); r.Type != want {
			t.Fatalf("request type %q does not name its problem (%s)", r.Type, want)
		}
		drawn[r.TypeIndex]++
	}
	// 40 draws over 3 problems: every problem appears, giving the several
	// same-problem requests Figure 9 needs.
	for _, id := range ids {
		if drawn[id] < 3 {
			t.Errorf("problem %d drawn only %d times in 40 requests", id, drawn[id])
		}
	}

	// The restricted workload shares structure with the full library: the
	// same problem id produces the same phase sequence either way.
	full := NewWeBWorK()
	a := w.RequestForProblem(1, 954, sim.NewRNG(3))
	b := full.RequestForProblem(1, 954, sim.NewRNG(3))
	if len(a.Phases) != len(b.Phases) {
		t.Fatalf("restricted and full workloads disagree on problem 954 structure: %d vs %d phases",
			len(a.Phases), len(b.Phases))
	}
	for i := range a.Phases {
		if a.Phases[i].Name != b.Phases[i].Name {
			t.Fatalf("phase %d differs between restricted and full workloads", i)
		}
	}
}

// The constructor copies its argument: mutating the caller's slice must not
// change which problems the workload draws.
func TestWeBWorKProblemsCopiesIDs(t *testing.T) {
	ids := []int{954, 117}
	w := NewWeBWorKProblems(ids...)
	ids[0] = 9999
	for _, r := range gen(t, w, 20, 13) {
		if r.TypeIndex == 9999 {
			t.Fatal("workload aliased the caller's id slice")
		}
	}
}

func TestWebServerTable2Structure(t *testing.T) {
	// The phase entered via writev must have the highest CPI jump; the one
	// after lseek must drop (Table 2's strongest signals).
	r := gen(t, NewWebServer(), 1, 8)[0]
	cpiOf := map[string]float64{}
	var order []string
	cfg := cache.DefaultConfig()
	for _, p := range r.Phases {
		cpi := cache.CPI(cfg, p.Activity.BaseCPI, p.Activity.RefsPerIns, p.Activity.SoloMissRatio, 1)
		if p.EntrySyscall != "" {
			cpiOf["after-"+p.EntrySyscall] = cpi
		}
		order = append(order, p.Name)
		cpiOf[p.Name] = cpi
	}
	if cpiOf["after-writev"] < cpiOf["sendprep"]+2 {
		t.Error("writev should signal a large CPI increase")
	}
	if cpiOf["after-lseek"] > cpiOf["prepare"]-1 {
		t.Error("lseek should signal a large CPI decrease")
	}
	_ = order
}

func TestMbench(t *testing.T) {
	g := sim.NewRNG(1)
	spin := NewMbenchSpin().NewRequest(0, g)
	data := NewMbenchData().NewRequest(1, g)
	if len(spin.Phases) != 1 || len(data.Phases) != 1 {
		t.Fatal("microbenchmarks should be single-phase")
	}
	if spin.Phases[0].Activity.WorkingSetBytes >= data.Phases[0].Activity.WorkingSetBytes {
		t.Fatal("Mbench-Data should have the larger working set")
	}
	if data.Phases[0].Activity.WorkingSetBytes < 15<<20 {
		t.Fatal("Mbench-Data should stream ~16MB")
	}
	if spin.Phases[0].SyscallGap != 0 {
		t.Fatal("microbenchmarks make no system calls")
	}
}

func TestRequestString(t *testing.T) {
	r := gen(t, NewTPCC(), 1, 10)[0]
	if r.String() == "" {
		t.Fatal("empty request string")
	}
}
