package workload

import (
	"fmt"

	"repro/internal/sim"
)

// RUBiS models the three-tier J2EE auction site: a front-end web server
// (tier 0), business-logic Enterprise Java Beans on JBoss (tier 1), and a
// MySQL back-end (tier 2). A request propagates across tiers through socket
// operations — exactly the inter-process context propagation the paper's
// request tracking follows — and the componentized architecture keeps
// system calls frequent (a 72% probability of one within 16 µs).
type RUBiS struct{}

// NewRUBiS returns the RUBiS workload.
func NewRUBiS() *RUBiS { return &RUBiS{} }

// Name implements App.
func (*RUBiS) Name() string { return "rubis" }

// SamplingPeriod implements App: the paper samples RUBiS once per 100 µs.
func (*RUBiS) SamplingPeriod() sim.Time { return 100 * sim.Microsecond }

// Tiers implements App: web server, EJB container, database.
func (*RUBiS) Tiers() int { return 3 }

// rubisType calibrates one interaction: how much work each tier does and
// how many EJB↔DB round trips the business logic makes.
type rubisType struct {
	name      string
	weight    float64
	webIns    float64 // servlet parse + render, split before/after
	ejbIns    float64 // per EJB stage
	dbIns     float64 // per DB query
	dbTrips   int     // EJB→DB round trips
	dbCPI     float64
	dbRefs    float64
	dbMiss    float64
	dbWS      float64
	renderIns float64
}

var rubisTypes = []rubisType{
	{"Home", 0.10, 60e3, 80e3, 100e3, 1, 1.8, 0.016, 0.10, 2 << 20, 120e3},
	{"Browse", 0.15, 70e3, 120e3, 300e3, 1, 2.0, 0.020, 0.12, 3 << 20, 180e3},
	{"SearchItemsByCategory", 0.20, 80e3, 150e3, 900e3, 1, 2.3, 0.028, 0.15, 4 << 20, 250e3},
	{"ViewItem", 0.20, 70e3, 130e3, 250e3, 2, 2.0, 0.022, 0.12, 3 << 20, 200e3},
	{"ViewUserInfo", 0.08, 60e3, 110e3, 200e3, 2, 1.9, 0.020, 0.11, 2 << 20, 150e3},
	{"PutBid", 0.12, 70e3, 140e3, 180e3, 2, 1.9, 0.018, 0.11, 2 << 20, 160e3},
	{"StoreBid", 0.08, 70e3, 160e3, 220e3, 3, 1.8, 0.018, 0.12, 2 << 20, 140e3},
	{"RegisterItem", 0.07, 80e3, 180e3, 260e3, 3, 1.8, 0.018, 0.12, 2 << 20, 150e3},
}

// RUBiS system call texture: componentized servers chatter constantly.
var rubisSyscalls = []string{"read", "write", "sendto", "recvfrom", "gettimeofday"}

// NewRequest implements App.
func (r *RUBiS) NewRequest(id uint64, g *sim.RNG) *Request {
	weights := make([]float64, len(rubisTypes))
	for i, t := range rubisTypes {
		weights[i] = t.weight
	}
	ti := g.Pick(weights)
	t := rubisTypes[ti]

	chatter := func(p Phase) Phase {
		p.SyscallGap = 14e3
		p.Syscalls = rubisSyscalls
		return p
	}

	ph := []Phase{
		chatter(Phase{Name: "servlet-parse", Tier: 0, EntrySyscall: "read",
			Instructions: jitter(g, t.webIns, 0.2),
			Activity:     actFor(g, 1.6, 0.012, 0.08, 1<<20)}),
	}
	for trip := 0; trip < t.dbTrips; trip++ {
		ph = append(ph,
			chatter(Phase{Name: fmt.Sprintf("ejb-dispatch%d", trip), Tier: 1,
				Instructions: jitter(g, t.ejbIns, 0.2),
				Activity:     actFor(g, 1.9, 0.018, 0.10, 2<<20)}),
			chatter(Phase{Name: fmt.Sprintf("db-query%d", trip), Tier: 2,
				Instructions: jitter(g, t.dbIns, 0.25),
				Activity:     actFor(g, t.dbCPI, t.dbRefs, t.dbMiss, t.dbWS),
				BlockProb:    0.05,
				BlockMeanNs:  float64(120 * sim.Microsecond)}),
		)
	}
	ph = append(ph,
		chatter(Phase{Name: "ejb-assemble", Tier: 1,
			Instructions: jitter(g, t.ejbIns*1.5, 0.2),
			Activity:     actFor(g, 2.0, 0.020, 0.11, 2<<20)}),
		chatter(Phase{Name: "servlet-render", Tier: 0, EntrySyscall: "recvfrom",
			Instructions: jitter(g, t.renderIns, 0.2),
			Activity:     actFor(g, 1.7, 0.014, 0.09, 1<<20)}),
		Phase{Name: "respond", Tier: 0, EntrySyscall: "write",
			Instructions: jitter(g, 30e3, 0.2),
			Activity:     actFor(g, 1.5, 0.012, 0.10, 1<<20)},
	)

	return &Request{
		ID:        id,
		App:       r.Name(),
		Type:      t.name,
		TypeIndex: ti,
		Phases:    ph,
		RNG:       g.Fork(),
	}
}
