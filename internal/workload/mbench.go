package workload

import "repro/internal/sim"

// The two microbenchmarks of Table 1 calibrate the sampling observer
// effect: Mbench-Spin spins the CPU with almost no data access (minimum
// cache state pollution), while Mbench-Data repeatedly streams through
// 16 MB of memory (replacing the entire cache state very quickly).

// Mbench is a single-phase microbenchmark workload.
type Mbench struct {
	name   string
	cpi    float64
	refs   float64
	miss   float64
	ws     float64
	length float64
}

// NewMbenchSpin returns the CPU-spinning microbenchmark.
func NewMbenchSpin() *Mbench {
	return &Mbench{name: "mbench-spin", cpi: 1.0, refs: 0.0001, miss: 0.01,
		ws: 4 << 10, length: 3e9}
}

// NewMbenchData returns the 16 MB sequential-streaming microbenchmark.
func NewMbenchData() *Mbench {
	return &Mbench{name: "mbench-data", cpi: 3.5, refs: 0.08, miss: 0.5,
		ws: 16 << 20, length: 3e9}
}

// Name implements App.
func (m *Mbench) Name() string { return m.name }

// SamplingPeriod implements App.
func (*Mbench) SamplingPeriod() sim.Time { return 10 * sim.Microsecond }

// Tiers implements App.
func (*Mbench) Tiers() int { return 1 }

// NewRequest implements App: one long uniform phase with no system calls,
// so every counter sample during it measures pure observer effect.
func (m *Mbench) NewRequest(id uint64, g *sim.RNG) *Request {
	return &Request{
		ID:   id,
		App:  m.name,
		Type: m.name,
		Phases: []Phase{{
			Name:         "loop",
			Instructions: m.length,
			Activity:     actFor(g, m.cpi, m.refs, m.miss, m.ws),
		}},
		RNG: g.Fork(),
	}
}
