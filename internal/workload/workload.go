// Package workload models the five server applications of the paper — the
// Apache web server serving SPECweb99 static content, TPC-C and TPC-H on
// MySQL, the three-tier RUBiS auction site, and the WeBWorK online teaching
// application — as synthetic request generators.
//
// The paper's analyses observe requests only through (a) their hardware
// characteristics over time (CPI, L2 references per instruction, L2 miss
// ratio), (b) their system call streams, and (c) their propagation across
// server processes. A request here is therefore a sequence of phases, each
// with inherent hardware characteristics (a machine.Activity), a tier (which
// server process class executes it), an optional phase-entry system call
// (the paper's "behavior transition signal"), and a within-phase system
// call pattern. Per-request jitter makes same-type requests similar but not
// identical, exactly the structure the classification, anomaly, and
// signature experiments need.
package workload

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Phase is one homogeneous stretch of a request's execution.
type Phase struct {
	// Name labels the phase for traces and debugging.
	Name string
	// Tier selects which server process class executes the phase (0 =
	// front-most). Multi-tier applications like RUBiS propagate the request
	// across processes via socket operations when the tier changes.
	Tier int
	// Instructions is the phase's application instruction count.
	Instructions float64
	// Activity is the phase's inherent hardware characteristics.
	Activity machine.Activity
	// EntrySyscall, when non-empty, is the system call issued on entering
	// the phase. Because it immediately precedes a behavior change, it is
	// exactly the kind of "behavior transition signal" Section 3.2 mines.
	EntrySyscall string
	// SyscallGap is the mean instruction distance between within-phase
	// system calls (exponentially distributed); 0 means the phase makes no
	// system calls beyond EntrySyscall.
	SyscallGap float64
	// Syscalls are the names of within-phase system calls, cycled in order.
	Syscalls []string
	// BlockProb is the probability that a within-phase system call blocks
	// (I/O wait), descheduling the thread.
	BlockProb float64
	// BlockMeanNs is the mean block duration in virtual nanoseconds.
	BlockMeanNs float64
}

// Request is one user request: the unit the paper models and schedules.
type Request struct {
	// ID is unique within a run.
	ID uint64
	// App is the generating application's name.
	App string
	// Type is the request's semantic class ("new order", "Q20", problem id…).
	Type string
	// TypeIndex is the dense index of Type within the application.
	TypeIndex int
	// Phases is the execution program.
	Phases []Phase
	// RNG drives lazy per-request draws (system call positions, block
	// durations) so request behavior is reproducible in isolation.
	RNG *sim.RNG
}

// TotalInstructions sums the phase lengths.
func (r *Request) TotalInstructions() float64 {
	var t float64
	for _, p := range r.Phases {
		t += p.Instructions
	}
	return t
}

// MaxTier returns the highest tier any phase runs on.
func (r *Request) MaxTier() int {
	max := 0
	for _, p := range r.Phases {
		if p.Tier > max {
			max = p.Tier
		}
	}
	return max
}

func (r *Request) String() string {
	return fmt.Sprintf("%s/%s#%d", r.App, r.Type, r.ID)
}

// App generates requests for one application.
type App interface {
	// Name returns the application's name.
	Name() string
	// NewRequest builds request id using randomness from g.
	NewRequest(id uint64, g *sim.RNG) *Request
	// SamplingPeriod is the paper's per-application periodic sampling
	// granularity (Section 3.1): 10 µs for the web server, 100 µs for TPCC
	// and RUBiS, 1 ms for TPCH and WeBWorK.
	SamplingPeriod() sim.Time
	// Tiers is the number of server process classes requests traverse.
	Tiers() int
}

// jitter scales mean by a clamped normal factor with the given relative
// standard deviation, bounded to [0.25, 4] × mean to keep draws sane.
func jitter(g *sim.RNG, mean, rel float64) float64 {
	if mean == 0 {
		return 0
	}
	return g.ClampedNormal(mean, mean*rel, mean*0.25, mean*4)
}

// jact builds an Activity jittered around base characteristics. Relative
// noise is modest so requests of one type stay recognizably similar.
func jact(g *sim.RNG, baseCPI, refsPerIns, missRatio, workingSet float64) machine.Activity {
	return machine.Activity{
		BaseCPI:         jitter(g, baseCPI, 0.06),
		RefsPerIns:      jitter(g, refsPerIns, 0.10),
		SoloMissRatio:   clamp01(jitter(g, missRatio, 0.10)),
		WorkingSetBytes: jitter(g, workingSet, 0.10),
	}
}

// actFor builds a jittered Activity whose *solo* effective CPI lands near
// targetCPI, by solving the default cache cost model for the base CPI. This
// lets application definitions be calibrated directly in the observable
// quantity the paper plots.
func actFor(g *sim.RNG, targetCPI, refsPerIns, missRatio, workingSet float64) machine.Activity {
	cfg := cache.DefaultConfig()
	base := targetCPI - (cache.CPI(cfg, 0, refsPerIns, missRatio, 1))
	if base < 0.3 {
		base = 0.3
	}
	return jact(g, base, refsPerIns, missRatio, workingSet)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// ByName returns the named application with the given workload seed, or an
// error for unknown names. Valid names: webserver, tpcc, tpch, rubis,
// webwork.
func ByName(name string) (App, error) {
	switch name {
	case "webserver":
		return NewWebServer(), nil
	case "tpcc":
		return NewTPCC(), nil
	case "tpch":
		return NewTPCH(), nil
	case "rubis":
		return NewRUBiS(), nil
	case "webwork":
		return NewWeBWorK(), nil
	default:
		return nil, fmt.Errorf("workload: unknown application %q", name)
	}
}

// All returns the five server applications in the paper's presentation
// order.
func All() []App {
	return []App{NewWebServer(), NewTPCC(), NewTPCH(), NewRUBiS(), NewWeBWorK()}
}
