// Continuous deterministic request streams for the always-on service
// mode. A Stream turns a StreamConfig — base arrival rate, application
// mix, multi-period sinusoidal load modulation, burst windows, and a slow
// workload drift — into an endless arrival sequence on the virtual clock.
// Arrivals are drawn from one owned RNG in a fixed order, so the sequence
// is a pure function of the config: replaying a config bit-identically
// replays the stream, which is what lets the serving pipeline's output be
// golden-fingerprinted.
package workload

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// StreamApp is one application's share of the stream mix.
type StreamApp struct {
	// Name is a workload.ByName application name.
	Name string
	// Weight is the app's relative arrival share (need not normalize).
	Weight float64
}

// StreamPeriod is one sinusoidal load-modulation component: the
// instantaneous rate is scaled by 1 + Amplitude·sin(2π(t/PeriodNs + Phase))
// summed over components, modeling multi-period diurnal/periodic load.
type StreamPeriod struct {
	PeriodNs  float64
	Amplitude float64
	// Phase is the fractional phase offset in [0,1).
	Phase float64
}

// StreamBurst is one transient overload window: arrivals inside
// [StartNs, StartNs+DurationNs) are generated at Factor times the
// modulated rate.
type StreamBurst struct {
	StartNs    float64
	DurationNs float64
	Factor     float64
}

// StreamConfig specifies a deterministic request stream.
type StreamConfig struct {
	// RatePerSec is the base arrival rate in requests per virtual second.
	RatePerSec float64
	// Apps is the application mix (at least one entry).
	Apps []StreamApp
	// Periods are the sinusoidal modulation components (may be empty).
	Periods []StreamPeriod
	// Bursts are transient overload windows (may be empty).
	Bursts []StreamBurst
	// DriftPerSec is the relative per-second drift of request variation
	// patterns: a request arriving at t carries patterns scaled by
	// 1 + DriftPerSec·t/1e9, modeling slow workload evolution that forces
	// the serving pipeline to re-calibrate.
	DriftPerSec float64
	// Cohorts, when ≥ 2, splits requests into that many behavior cohorts
	// (derived from the arrival's jitter bits) whose drift rates spread
	// around DriftPerSec: cohort k drifts at
	// DriftPerSec·(1 + CohortSpread·(2k/(Cohorts−1) − 1)) per second —
	// fleet-scale per-cohort behavior drift. 0 or 1 means one uniform
	// cohort (CohortDriftAt == DriftAt).
	Cohorts int
	// CohortSpread is the relative drift-rate spread across cohorts, in
	// [0, 1]. Zero keeps all cohorts at DriftPerSec.
	CohortSpread float64
	// Seed drives the stream's arrival draws.
	Seed int64
}

// Validate checks the config's invariants.
func (c StreamConfig) Validate() error {
	if !(c.RatePerSec > 0) || math.IsInf(c.RatePerSec, 0) {
		return fmt.Errorf("workload: stream rate must be positive and finite, got %v", c.RatePerSec)
	}
	if len(c.Apps) == 0 {
		return fmt.Errorf("workload: stream needs at least one app in the mix")
	}
	var total float64
	for _, a := range c.Apps {
		if _, err := ByName(a.Name); err != nil {
			return err
		}
		if !(a.Weight > 0) || math.IsInf(a.Weight, 0) {
			return fmt.Errorf("workload: stream mix weight for %s must be positive and finite, got %v", a.Name, a.Weight)
		}
		total += a.Weight
	}
	if !(total > 0) || math.IsInf(total, 0) {
		return fmt.Errorf("workload: stream mix weights must sum to a positive finite value")
	}
	for _, p := range c.Periods {
		if !(p.PeriodNs > 0) || math.IsInf(p.PeriodNs, 0) {
			return fmt.Errorf("workload: stream period must be positive and finite, got %v ns", p.PeriodNs)
		}
		if math.IsNaN(p.Amplitude) || math.Abs(p.Amplitude) > 1 {
			return fmt.Errorf("workload: stream period amplitude must be in [-1,1], got %v", p.Amplitude)
		}
		if math.IsNaN(p.Phase) || p.Phase < 0 || p.Phase >= 1 {
			return fmt.Errorf("workload: stream period phase must be in [0,1), got %v", p.Phase)
		}
	}
	for _, b := range c.Bursts {
		if math.IsNaN(b.StartNs) || b.StartNs < 0 || math.IsInf(b.StartNs, 0) {
			return fmt.Errorf("workload: stream burst start must be non-negative and finite, got %v ns", b.StartNs)
		}
		if !(b.DurationNs > 0) || math.IsInf(b.DurationNs, 0) {
			return fmt.Errorf("workload: stream burst duration must be positive and finite, got %v ns", b.DurationNs)
		}
		if !(b.Factor > 0) || math.IsInf(b.Factor, 0) {
			return fmt.Errorf("workload: stream burst factor must be positive and finite, got %v", b.Factor)
		}
	}
	if math.IsNaN(c.DriftPerSec) || math.Abs(c.DriftPerSec) > 1 {
		return fmt.Errorf("workload: stream drift must be in [-1,1] per second, got %v", c.DriftPerSec)
	}
	if c.Cohorts < 0 {
		return fmt.Errorf("workload: stream cohorts must be non-negative, got %d", c.Cohorts)
	}
	if math.IsNaN(c.CohortSpread) || c.CohortSpread < 0 || c.CohortSpread > 1 {
		return fmt.Errorf("workload: stream cohort spread must be in [0,1], got %v", c.CohortSpread)
	}
	return nil
}

// fmtDur renders virtual nanoseconds in the spec's duration syntax.
func fmtDur(ns float64) string {
	return time.Duration(int64(ns)).String()
}

func fmtF(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// String renders the config in the compact spec syntax ParseStream
// accepts; ParseStream(c.String()) round-trips to an equivalent config
// (durations are quantized to whole nanoseconds).
func (c StreamConfig) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rate=%s", fmtF(c.RatePerSec))
	if len(c.Apps) > 0 {
		b.WriteString(";mix=")
		for i, a := range c.Apps {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s:%s", a.Name, fmtF(a.Weight))
		}
	}
	if len(c.Periods) > 0 {
		b.WriteString(";period=")
		for i, p := range c.Periods {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s:%s", fmtDur(p.PeriodNs), fmtF(p.Amplitude))
			if p.Phase != 0 {
				fmt.Fprintf(&b, ":%s", fmtF(p.Phase))
			}
		}
	}
	if len(c.Bursts) > 0 {
		b.WriteString(";burst=")
		for i, bu := range c.Bursts {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s+%s*%s", fmtDur(bu.StartNs), fmtDur(bu.DurationNs), fmtF(bu.Factor))
		}
	}
	if c.DriftPerSec != 0 {
		fmt.Fprintf(&b, ";drift=%s", fmtF(c.DriftPerSec))
	}
	if c.Cohorts != 0 {
		fmt.Fprintf(&b, ";cohort=%d", c.Cohorts)
		if c.CohortSpread != 0 {
			fmt.Fprintf(&b, ":%s", fmtF(c.CohortSpread))
		}
	}
	if c.Seed != 0 {
		fmt.Fprintf(&b, ";seed=%d", c.Seed)
	}
	return b.String()
}

// ParseStream parses the compact stream spec syntax:
//
//	rate=800000;mix=webserver:4,tpcc:2,rubis:2;period=50ms:0.3,330ms:0.25:0.5;burst=100ms+40ms*1.6;drift=0.01;seed=1
//
// Keys are semicolon-separated; rate and mix are required. period entries
// are duration:amplitude[:phase]; burst entries are start+duration*factor;
// durations use Go syntax (50ms, 1.5s). The returned config always passes
// Validate.
func ParseStream(spec string) (StreamConfig, error) {
	var c StreamConfig
	fail := func(format string, args ...any) (StreamConfig, error) {
		return StreamConfig{}, fmt.Errorf("workload: stream spec: "+format, args...)
	}
	seen := map[string]bool{}
	for _, kv := range strings.Split(spec, ";") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fail("%q is not key=value", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if seen[key] {
			return fail("duplicate key %q", key)
		}
		seen[key] = true
		switch key {
		case "rate":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fail("rate %q: %v", val, err)
			}
			c.RatePerSec = v
		case "mix":
			for _, e := range strings.Split(val, ",") {
				name, w, ok := strings.Cut(e, ":")
				if !ok {
					return fail("mix entry %q is not name:weight", e)
				}
				wv, err := strconv.ParseFloat(w, 64)
				if err != nil {
					return fail("mix weight %q: %v", w, err)
				}
				c.Apps = append(c.Apps, StreamApp{Name: strings.TrimSpace(name), Weight: wv})
			}
		case "period":
			for _, e := range strings.Split(val, ",") {
				parts := strings.Split(e, ":")
				if len(parts) != 2 && len(parts) != 3 {
					return fail("period entry %q is not duration:amplitude[:phase]", e)
				}
				d, err := time.ParseDuration(strings.TrimSpace(parts[0]))
				if err != nil {
					return fail("period duration %q: %v", parts[0], err)
				}
				amp, err := strconv.ParseFloat(parts[1], 64)
				if err != nil {
					return fail("period amplitude %q: %v", parts[1], err)
				}
				p := StreamPeriod{PeriodNs: float64(d.Nanoseconds()), Amplitude: amp}
				if len(parts) == 3 {
					if p.Phase, err = strconv.ParseFloat(parts[2], 64); err != nil {
						return fail("period phase %q: %v", parts[2], err)
					}
				}
				c.Periods = append(c.Periods, p)
			}
		case "burst":
			for _, e := range strings.Split(val, ",") {
				start, rest, ok := strings.Cut(e, "+")
				if !ok {
					return fail("burst entry %q is not start+duration*factor", e)
				}
				dur, factor, ok := strings.Cut(rest, "*")
				if !ok {
					return fail("burst entry %q is not start+duration*factor", e)
				}
				sd, err := time.ParseDuration(strings.TrimSpace(start))
				if err != nil {
					return fail("burst start %q: %v", start, err)
				}
				dd, err := time.ParseDuration(strings.TrimSpace(dur))
				if err != nil {
					return fail("burst duration %q: %v", dur, err)
				}
				f, err := strconv.ParseFloat(factor, 64)
				if err != nil {
					return fail("burst factor %q: %v", factor, err)
				}
				c.Bursts = append(c.Bursts, StreamBurst{
					StartNs: float64(sd.Nanoseconds()), DurationNs: float64(dd.Nanoseconds()), Factor: f,
				})
			}
		case "drift":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fail("drift %q: %v", val, err)
			}
			c.DriftPerSec = v
		case "cohort":
			n, spread, hasSpread := strings.Cut(val, ":")
			v, err := strconv.Atoi(n)
			if err != nil {
				return fail("cohort count %q: %v", n, err)
			}
			c.Cohorts = v
			if hasSpread {
				if c.CohortSpread, err = strconv.ParseFloat(spread, 64); err != nil {
					return fail("cohort spread %q: %v", spread, err)
				}
			}
		case "seed":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return fail("seed %q: %v", val, err)
			}
			c.Seed = v
		default:
			return fail("unknown key %q (valid: rate, mix, period, burst, drift, cohort, seed)", key)
		}
	}
	if err := c.Validate(); err != nil {
		return StreamConfig{}, err
	}
	return c, nil
}

// Arrival is one stream event. Its fields are plain values so arrival
// delivery allocates nothing: the receiving pipeline materializes request
// behavior from (App, Bits, TimeNs) on its own schedule.
type Arrival struct {
	// TimeNs is the virtual arrival time.
	TimeNs int64
	// App indexes StreamConfig.Apps.
	App int
	// Bits is the request's jitter entropy: per-request behavior (template
	// choice, amplitude jitter, anomaly injection) derives from it alone,
	// so a request's behavior is reproducible from its arrival record.
	Bits uint64
}

// Stream generates the arrival sequence of a StreamConfig. Not safe for
// concurrent use; Next allocates nothing.
type Stream struct {
	cfg     StreamConfig
	rng     *sim.RNG
	weights []float64
	tNs     float64
	// bursts are sorted by start for the rate evaluation.
	bursts []StreamBurst
}

// NewStream validates the config and positions the stream at virtual
// time 0.
func NewStream(cfg StreamConfig) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Stream{
		cfg:     cfg,
		rng:     sim.ForkLabeled(cfg.Seed, "workload-stream"),
		weights: make([]float64, len(cfg.Apps)),
		bursts:  append([]StreamBurst(nil), cfg.Bursts...),
	}
	for i, a := range cfg.Apps {
		s.weights[i] = a.Weight
	}
	sort.Slice(s.bursts, func(i, j int) bool { return s.bursts[i].StartNs < s.bursts[j].StartNs })
	return s, nil
}

// Config returns the stream's validated config.
func (s *Stream) Config() StreamConfig { return s.cfg }

// RateAt returns the instantaneous arrival rate (requests per virtual
// second) at virtual time t: the base rate under sinusoidal modulation
// (clamped at 5% of base so the stream never stalls) times any active
// burst factors.
func (s *Stream) RateAt(tNs float64) float64 {
	mod := 1.0
	for _, p := range s.cfg.Periods {
		mod += p.Amplitude * math.Sin(2*math.Pi*(tNs/p.PeriodNs+p.Phase))
	}
	if mod < 0.05 {
		mod = 0.05
	}
	rate := s.cfg.RatePerSec * mod
	for _, b := range s.bursts {
		if tNs >= b.StartNs && tNs < b.StartNs+b.DurationNs {
			rate *= b.Factor
		}
	}
	return rate
}

// DriftAt returns the pattern drift factor at virtual time t.
func (s *Stream) DriftAt(tNs int64) float64 {
	return 1 + s.cfg.DriftPerSec*float64(tNs)/1e9
}

// CohortOf returns the cohort index of an arrival's jitter bits (always 0
// without cohorts). It consumes high bits, independent of the low bits the
// serving layer uses for template choice and anomaly injection.
func (c StreamConfig) CohortOf(bits uint64) int {
	if c.Cohorts < 2 {
		return 0
	}
	return int((bits >> 40) % uint64(c.Cohorts))
}

// CohortDriftAt returns the drift factor of a cohort at virtual time t:
// cohorts spread their drift rates by CohortSpread around DriftPerSec.
// With fewer than two cohorts it equals DriftAt.
func (s *Stream) CohortDriftAt(tNs int64, cohort int) float64 {
	n := s.cfg.Cohorts
	if n < 2 {
		return s.DriftAt(tNs)
	}
	rel := 2*float64(cohort)/float64(n-1) - 1
	rate := s.cfg.DriftPerSec * (1 + s.cfg.CohortSpread*rel)
	return 1 + rate*float64(tNs)/1e9
}

// Next fills a with the next arrival. The interarrival gap is an
// exponential draw at the instantaneous rate (a piecewise-evaluated
// inhomogeneous Poisson process); app choice and jitter bits come from the
// same RNG stream, so the whole sequence is a pure function of the config.
func (s *Stream) Next(a *Arrival) {
	rate := s.RateAt(s.tNs)
	gap := s.rng.Exp(1e9 / rate)
	// A floor of 1ns keeps arrival times strictly increasing.
	if gap < 1 {
		gap = 1
	}
	s.tNs += gap
	a.TimeNs = int64(s.tNs)
	if len(s.weights) == 1 {
		a.App = 0
	} else {
		a.App = s.rng.Pick(s.weights)
	}
	// Two 32-bit draws assemble the jitter entropy without widening the
	// RNG API.
	a.Bits = uint64(s.rng.Int63n(1<<32))<<32 | uint64(s.rng.Int63n(1<<32))
}
