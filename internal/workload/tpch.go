package workload

import (
	"fmt"

	"repro/internal/sim"
)

// TPCH models the decision-support benchmark on MySQL with the paper's
// 17-query subset (Q2–Q22, excluding the longest-running five) over a
// 361 MB dataset, with an equal proportion of requests per query type.
// TPCH requests are long (tens to hundreds of millions of instructions) and
// behaviorally uniform within a request — each query streams a specific
// scan/join plan over a long data sequence — which is why TPCH is the one
// application where intra-request variation adds little over inter-request
// variation (Figure 3). Large scan working sets and high reference rates
// make TPCH the most contention-sensitive application: its 90-percentile
// request CPI doubles from 1-core to 4-core runs (Figure 1).
type TPCH struct{}

// NewTPCH returns the TPC-H workload.
func NewTPCH() *TPCH { return &TPCH{} }

// Name implements App.
func (*TPCH) Name() string { return "tpch" }

// SamplingPeriod implements App: the paper samples long-request applications
// once per millisecond.
func (*TPCH) SamplingPeriod() sim.Time { return sim.Millisecond }

// Tiers implements App.
func (*TPCH) Tiers() int { return 1 }

// tpchQuery calibrates one query's plan: total instructions, the dominant
// scan characteristics, and an optional join stage.
type tpchQuery struct {
	name      string
	megaIns   float64 // mean total instructions, in millions
	scanCPI   float64
	scanRefs  float64
	scanMiss  float64
	scanWS    float64
	joinFrac  float64 // fraction of instructions in the join stage (0 = scan only)
	joinCPI   float64
	joinRefs  float64
	joinMiss  float64
	joinWS    float64
	aggregate bool // small final aggregation stage
}

// tpchQueries is the paper's 17-query subset. Lengths and intensities are
// spread so per-query CPI clusters span the 1.5–2.5 solo range of Figure 1
// and request lengths span roughly 15–250 M instructions (Q20 near the
// ~90 M of Figures 2 and 8).
var tpchQueries = []tpchQuery{
	{name: "Q2", megaIns: 18, scanCPI: 1.7, scanRefs: 0.032, scanMiss: 0.12, scanWS: 5 << 20, joinFrac: 0.35, joinCPI: 2.2, joinRefs: 0.040, joinMiss: 0.20, joinWS: 8 << 20, aggregate: true},
	{name: "Q3", megaIns: 60, scanCPI: 1.9, scanRefs: 0.040, scanMiss: 0.15, scanWS: 8 << 20, joinFrac: 0.30, joinCPI: 2.4, joinRefs: 0.045, joinMiss: 0.22, joinWS: 10 << 20, aggregate: true},
	{name: "Q4", megaIns: 45, scanCPI: 1.8, scanRefs: 0.036, scanMiss: 0.14, scanWS: 7 << 20, joinFrac: 0.20, joinCPI: 2.2, joinRefs: 0.040, joinMiss: 0.18, joinWS: 8 << 20},
	{name: "Q5", megaIns: 90, scanCPI: 2.0, scanRefs: 0.042, scanMiss: 0.16, scanWS: 9 << 20, joinFrac: 0.40, joinCPI: 2.5, joinRefs: 0.050, joinMiss: 0.24, joinWS: 11 << 20, aggregate: true},
	{name: "Q6", megaIns: 30, scanCPI: 1.6, scanRefs: 0.045, scanMiss: 0.14, scanWS: 8 << 20},
	{name: "Q7", megaIns: 85, scanCPI: 2.0, scanRefs: 0.040, scanMiss: 0.16, scanWS: 9 << 20, joinFrac: 0.35, joinCPI: 2.4, joinRefs: 0.046, joinMiss: 0.22, joinWS: 10 << 20, aggregate: true},
	{name: "Q8", megaIns: 110, scanCPI: 2.1, scanRefs: 0.042, scanMiss: 0.17, scanWS: 10 << 20, joinFrac: 0.40, joinCPI: 2.5, joinRefs: 0.048, joinMiss: 0.24, joinWS: 11 << 20, aggregate: true},
	{name: "Q9", megaIns: 250, scanCPI: 2.2, scanRefs: 0.044, scanMiss: 0.18, scanWS: 11 << 20, joinFrac: 0.45, joinCPI: 2.6, joinRefs: 0.050, joinMiss: 0.25, joinWS: 12 << 20, aggregate: true},
	{name: "Q11", megaIns: 25, scanCPI: 1.7, scanRefs: 0.034, scanMiss: 0.13, scanWS: 6 << 20, joinFrac: 0.25, joinCPI: 2.1, joinRefs: 0.038, joinMiss: 0.18, joinWS: 7 << 20},
	{name: "Q12", megaIns: 55, scanCPI: 1.8, scanRefs: 0.038, scanMiss: 0.15, scanWS: 8 << 20, joinFrac: 0.20, joinCPI: 2.2, joinRefs: 0.040, joinMiss: 0.19, joinWS: 8 << 20},
	{name: "Q13", megaIns: 70, scanCPI: 2.0, scanRefs: 0.040, scanMiss: 0.16, scanWS: 9 << 20, joinFrac: 0.30, joinCPI: 2.3, joinRefs: 0.044, joinMiss: 0.21, joinWS: 9 << 20, aggregate: true},
	{name: "Q14", megaIns: 40, scanCPI: 1.7, scanRefs: 0.036, scanMiss: 0.14, scanWS: 7 << 20, joinFrac: 0.15, joinCPI: 2.1, joinRefs: 0.038, joinMiss: 0.17, joinWS: 7 << 20},
	{name: "Q15", megaIns: 50, scanCPI: 1.8, scanRefs: 0.038, scanMiss: 0.15, scanWS: 8 << 20, aggregate: true},
	{name: "Q17", megaIns: 130, scanCPI: 2.1, scanRefs: 0.042, scanMiss: 0.17, scanWS: 10 << 20, joinFrac: 0.35, joinCPI: 2.5, joinRefs: 0.046, joinMiss: 0.23, joinWS: 10 << 20},
	{name: "Q19", megaIns: 65, scanCPI: 1.9, scanRefs: 0.040, scanMiss: 0.15, scanWS: 8 << 20, joinFrac: 0.25, joinCPI: 2.3, joinRefs: 0.042, joinMiss: 0.20, joinWS: 9 << 20},
	{name: "Q20", megaIns: 88, scanCPI: 2.0, scanRefs: 0.041, scanMiss: 0.16, scanWS: 9 << 20, joinFrac: 0.30, joinCPI: 2.4, joinRefs: 0.045, joinMiss: 0.22, joinWS: 10 << 20, aggregate: true},
	{name: "Q22", megaIns: 35, scanCPI: 1.7, scanRefs: 0.034, scanMiss: 0.13, scanWS: 6 << 20, aggregate: true},
}

// TPCHQueryNames returns the 17 query names in order.
func TPCHQueryNames() []string {
	out := make([]string, len(tpchQueries))
	for i, q := range tpchQueries {
		out[i] = q.name
	}
	return out
}

// NewRequest implements App: an equal proportion of each query type.
func (t *TPCH) NewRequest(id uint64, g *sim.RNG) *Request {
	qi := g.Intn(len(tpchQueries))
	q := tpchQueries[qi]
	total := jitter(g, q.megaIns*1e6, 0.10)

	// Within-request uniformity (Figure 3): a TPCH request applies one
	// query plan to a long data sequence, so all of its stages share one
	// jittered characteristic draw, with the join only slightly hotter.
	scanAct := actFor(g, q.scanCPI, q.scanRefs, q.scanMiss, q.scanWS)
	joinAct := scanAct
	joinAct.BaseCPI *= 1.08
	joinAct.RefsPerIns = q.joinRefs * scanAct.RefsPerIns / q.scanRefs
	joinAct.SoloMissRatio = clamp01(scanAct.SoloMissRatio * q.joinMiss / q.scanMiss)
	joinAct.WorkingSetBytes = q.joinWS
	aggAct := scanAct
	aggAct.BaseCPI *= 0.95
	aggAct.WorkingSetBytes = 2 << 20
	joinIns := total * q.joinFrac
	aggIns := 0.0
	if q.aggregate {
		aggIns = total * 0.05
	}
	scanIns := total - joinIns - aggIns

	// Storage reads during scans arrive roughly every 15k instructions —
	// a system call within ~16 µs of any instant with ~83% probability, as
	// the paper measures for TPCH.
	var ph []Phase
	// Every query starts with a plan/optimizer prologue whose length is
	// characteristic of the query (metadata probes, statistics lookups):
	// it is the early-prefix structure that lets online signature
	// identification (Figure 10) recognize the query well before the long
	// scans reveal themselves.
	prologueIns := jitter(g, (0.4+0.22*float64(qi))*1e6, 0.05)
	ph = append(ph, Phase{
		Name:         "plan",
		EntrySyscall: "read",
		Instructions: prologueIns,
		Activity:     actFor(g, 1.35, 0.008+0.0015*float64(qi%5), 0.08, 1<<20),
		SyscallGap:   40e3,
		Syscalls:     []string{"pread", "stat"},
	})
	// The scan splits into a query-plan-determined number of table-scan
	// stretches, keeping within-request behavior uniform.
	scanParts := 1 + qi%2
	for i := 0; i < scanParts; i++ {
		ph = append(ph, Phase{
			Name:         fmt.Sprintf("scan%d", i),
			EntrySyscall: "pread",
			Instructions: scanIns / float64(scanParts),
			Activity:     scanAct,
			SyscallGap:   6e3,
			Syscalls:     []string{"pread", "pread", "lseek"},
			BlockProb:    0.0003,
			BlockMeanNs:  float64(150 * sim.Microsecond),
		})
	}
	if joinIns > 0 {
		ph = append(ph, Phase{
			Name:         "join",
			Instructions: joinIns,
			Activity:     joinAct,
			SyscallGap:   8e3,
			Syscalls:     []string{"pread", "read"},
			BlockProb:    0.0003,
			BlockMeanNs:  float64(150 * sim.Microsecond),
		})
	}
	if aggIns > 0 {
		ph = append(ph, Phase{
			Name:         "aggregate",
			Instructions: aggIns,
			Activity:     aggAct,
			SyscallGap:   60e3,
			Syscalls:     []string{"write"},
		})
	}

	return &Request{
		ID:        id,
		App:       t.Name(),
		Type:      q.name,
		TypeIndex: qi,
		Phases:    ph,
		RNG:       g.Fork(),
	}
}
