package workload

import (
	"fmt"

	"repro/internal/sim"
)

// WeBWorK models the user-content-driven online teaching application:
// Apache with a large stack of Perl modules and the Moodle course
// management system, serving ~3,000 teacher-created problem sets. Its
// requests are the longest in the study (up to ~600 M instructions) and are
// CPU-intensive — math computation and graphics rendering make few system
// calls (an 81% probability of one within a millisecond) — with fine-grained
// unstable phase behavior from the many small Perl modules each request
// traverses. Two properties matter for the paper's experiments:
//
//   - every request follows almost identical processing semantics for its
//     early part (session and course management setup), which defeats
//     signatures built from only the first 10 M instructions (Figure 10);
//   - small working sets and low L2 reference rates make WeBWorK nearly
//     immune to multicore performance obfuscation (Figure 1).
type WeBWorK struct {
	// problems, when non-empty, restricts requests to these problem ids
	// (experiments that need same-problem request pairs use this).
	problems []int
}

// NewWeBWorK returns the WeBWorK workload over the full problem library.
func NewWeBWorK() *WeBWorK { return &WeBWorK{} }

// NewWeBWorKProblems returns a WeBWorK workload restricted to the given
// problem identifiers, so that a modest run yields several requests per
// problem (the anomaly-reference setup of Figure 9).
func NewWeBWorKProblems(ids ...int) *WeBWorK {
	return &WeBWorK{problems: append([]int(nil), ids...)}
}

// Name implements App.
func (*WeBWorK) Name() string { return "webwork" }

// SamplingPeriod implements App: long-request applications sample once per
// millisecond.
func (*WeBWorK) SamplingPeriod() sim.Time { return sim.Millisecond }

// Tiers implements App: mod_perl runs inside the Apache process.
func (*WeBWorK) Tiers() int { return 1 }

// webworkProblems is the size of the teacher-created problem library.
const webworkProblems = 3000

// webworkSeed decorrelates problem structure streams from everything else.
const webworkSeed = 0x5eb02c

// perl module texture: names drawn for phase labels only.
var webworkModules = []string{
	"PGbasicmacros", "PGanswermacros", "PGgraphmacros", "MathObjects",
	"Parser", "AnswerChecker", "Units", "PGauxiliaryFunctions",
}

// NewRequest implements App. The problem identifier determines the
// problem-specific phase structure through its own deterministic stream, so
// two requests for the same problem share structure up to small per-request
// jitter — the anomaly-reference setup of Figure 9.
func (w *WeBWorK) NewRequest(id uint64, g *sim.RNG) *Request {
	var problem int
	if len(w.problems) > 0 {
		problem = w.problems[g.Intn(len(w.problems))]
	} else {
		problem = 1 + g.Intn(webworkProblems)
	}
	return w.RequestForProblem(id, problem, g)
}

// RequestForProblem builds a request for a specific problem identifier.
// Experiments that need same-problem pairs (Figure 9 uses problem 954) call
// this directly.
func (w *WeBWorK) RequestForProblem(id uint64, problem int, g *sim.RNG) *Request {
	// The common early part: session handling, authentication, Moodle
	// course lookup. Nearly identical for every request.
	ph := []Phase{
		{Name: "session-init", EntrySyscall: "read",
			Instructions: jitter(g, 4e6, 0.03),
			Activity:     actFor(g, 1.25, 0.004, 0.10, 512<<10),
			SyscallGap:   1.5e6, Syscalls: []string{"stat", "open", "read"}},
		{Name: "moodle-auth",
			Instructions: jitter(g, 3e6, 0.03),
			Activity:     actFor(g, 1.35, 0.005, 0.10, 512<<10),
			SyscallGap:   1.5e6, Syscalls: []string{"read", "write"}},
		{Name: "course-load", EntrySyscall: "open",
			Instructions: jitter(g, 5e6, 0.03),
			Activity:     actFor(g, 1.30, 0.004, 0.10, 768<<10),
			SyscallGap:   1.5e6, Syscalls: []string{"read", "stat"}},
	}

	// Problem-specific content generation: the problem's own stream defines
	// the module sequence; the request's stream adds only small jitter.
	pg := sim.ForkLabeled(webworkSeed, fmt.Sprintf("problem-%d", problem))
	nPhases := 20 + pg.Intn(140) // 20–160 interpreter/module phases
	for i := 0; i < nPhases; i++ {
		name := webworkModules[pg.Intn(len(webworkModules))]
		meanIns := pg.Uniform(0.6e6, 3.2e6)
		cpi := pg.Uniform(1.0, 1.9)
		refs := pg.Uniform(0.002, 0.008)
		ws := pg.Uniform(200e3, 800e3)
		p := Phase{
			Name:         fmt.Sprintf("%s-%d", name, i),
			Instructions: jitter(g, meanIns, 0.05),
			Activity:     actFor(g, cpi, refs, 0.10, ws),
			SyscallGap:   1.3e6,
			Syscalls:     []string{"brk", "read", "write"},
		}
		// Occasional module loads issue an open at entry.
		if pg.Bool(0.15) {
			p.EntrySyscall = "open"
		}
		// Graphics rendering bursts: tens of millions of instructions of
		// elevated CPI, like the sustained high-CPI regions in the paper's
		// Figure 2 WeBWorK example.
		if pg.Bool(0.06) {
			p.Name = fmt.Sprintf("render-%d", i)
			p.Instructions = jitter(g, pg.Uniform(15e6, 35e6), 0.05)
			// Graphics rendering touches image buffers: the one WeBWorK
			// activity with enough cache footprint that coincidental
			// render-render co-execution produces the rare worst-case CPI
			// tail contention-easing scheduling targets (Figure 13).
			p.Activity = actFor(g, 1.8, 0.014, 0.18, 3<<20)
		}
		ph = append(ph, p)
	}
	ph = append(ph, Phase{Name: "respond", EntrySyscall: "writev",
		Instructions: jitter(g, 2e6, 0.1),
		Activity:     actFor(g, 1.4, 0.006, 0.10, 512<<10),
		SyscallGap:   400e3, Syscalls: []string{"write"}})

	return &Request{
		ID:        id,
		App:       w.Name(),
		Type:      fmt.Sprintf("problem-%d", problem),
		TypeIndex: problem,
		Phases:    ph,
		RNG:       g.Fork(),
	}
}
