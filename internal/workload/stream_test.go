package workload

import (
	"reflect"
	"testing"
)

const testSpec = "rate=800000;mix=webserver:4,tpcc:2,rubis:2;period=50ms:0.3,330ms:0.25:0.5;burst=100ms+40ms*1.6;drift=0.01;seed=1"

func TestParseStreamRoundTrip(t *testing.T) {
	cfg, err := ParseStream(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RatePerSec != 800000 || len(cfg.Apps) != 3 || len(cfg.Periods) != 2 || len(cfg.Bursts) != 1 {
		t.Fatalf("unexpected parse: %+v", cfg)
	}
	if cfg.Periods[1].Phase != 0.5 || cfg.Bursts[0].Factor != 1.6 || cfg.DriftPerSec != 0.01 || cfg.Seed != 1 {
		t.Fatalf("unexpected parse: %+v", cfg)
	}
	again, err := ParseStream(cfg.String())
	if err != nil {
		t.Fatalf("round-trip parse of %q: %v", cfg.String(), err)
	}
	if !reflect.DeepEqual(cfg, again) {
		t.Fatalf("round trip changed config:\n %+v\n %+v", cfg, again)
	}
}

func TestParseStreamErrors(t *testing.T) {
	bad := []string{
		"",                                       // no rate/mix
		"rate=100",                               // no mix
		"mix=webserver:1",                        // no rate
		"rate=0;mix=webserver:1",                 // zero rate
		"rate=-5;mix=webserver:1",                // negative rate
		"rate=1e3;mix=nosuchapp:1",               // unknown app
		"rate=1e3;mix=webserver:0",               // zero weight
		"rate=1e3;mix=webserver",                 // missing weight
		"rate=1e3;mix=webserver:1;rate=2e3",      // duplicate key
		"rate=1e3;mix=webserver:1;bogus=1",       // unknown key
		"rate=1e3;mix=webserver:1;period=x",      // malformed period
		"rate=1e3;mix=webserver:1;period=1s:2",   // amplitude out of range
		"rate=1e3;mix=webserver:1;burst=1s*2",    // malformed burst
		"rate=1e3;mix=webserver:1;burst=1s+0s*2", // zero burst duration
		"rate=1e3;mix=webserver:1;drift=2",       // drift out of range
		"notkeyvalue",
	}
	for _, spec := range bad {
		if _, err := ParseStream(spec); err == nil {
			t.Errorf("ParseStream(%q) accepted invalid spec", spec)
		}
	}
}

func TestStreamDeterministicAndMonotone(t *testing.T) {
	cfg, err := ParseStream(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []Arrival {
		s, err := NewStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]Arrival, 5000)
		for i := range out {
			s.Next(&out[i])
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("stream is not deterministic for a fixed config")
	}
	prev := int64(0)
	apps := map[int]int{}
	for _, ar := range a {
		if ar.TimeNs <= prev {
			t.Fatalf("arrival times not strictly increasing: %d after %d", ar.TimeNs, prev)
		}
		prev = ar.TimeNs
		if ar.App < 0 || ar.App >= len(cfg.Apps) {
			t.Fatalf("app index %d out of mix range", ar.App)
		}
		apps[ar.App]++
	}
	for i := range cfg.Apps {
		if apps[i] == 0 {
			t.Fatalf("app %d never drawn in 5000 arrivals", i)
		}
	}
	// The dominant mix entry (weight 4 of 8) should dominate arrivals.
	if apps[0] < apps[1] || apps[0] < apps[2] {
		t.Fatalf("mix weights not respected: %v", apps)
	}
}

func TestStreamSeedChangesSequence(t *testing.T) {
	cfg, _ := ParseStream("rate=1e5;mix=webserver:1;seed=1")
	cfg2 := cfg
	cfg2.Seed = 2
	s1, _ := NewStream(cfg)
	s2, _ := NewStream(cfg2)
	var a1, a2 Arrival
	same := true
	for i := 0; i < 10; i++ {
		s1.Next(&a1)
		s2.Next(&a2)
		if a1 != a2 {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestStreamRateModulation(t *testing.T) {
	cfg, err := ParseStream("rate=1000;mix=webserver:1;period=1s:0.5;burst=10s+1s*3")
	if err != nil {
		t.Fatal(err)
	}
	s, _ := NewStream(cfg)
	// Peak of the sinusoid: t = period/4.
	if up := s.RateAt(0.25e9); up < 1400 {
		t.Fatalf("modulation peak rate %v, want ~1500", up)
	}
	if down := s.RateAt(0.75e9); down > 600 {
		t.Fatalf("modulation trough rate %v, want ~500", down)
	}
	inBurst := s.RateAt(10.25e9)
	outBurst := s.RateAt(9.25e9)
	if inBurst < 2.5*outBurst {
		t.Fatalf("burst factor not applied: in=%v out=%v", inBurst, outBurst)
	}
	if d := s.DriftAt(2e9); d != 1.0 {
		t.Fatalf("zero-drift config must return 1, got %v", d)
	}
}

func TestStreamNextAllocFree(t *testing.T) {
	cfg, err := ParseStream(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var a Arrival
	allocs := testing.AllocsPerRun(1000, func() { s.Next(&a) })
	if allocs != 0 {
		t.Fatalf("Stream.Next allocates %v per call, want 0", allocs)
	}
}
