package workload

import (
	"fmt"

	"repro/internal/sim"
)

// TPCC models the TPC-C order-entry workload on MySQL/InnoDB: five
// transaction types — "new order" (45%), "payment" (43%), "order status"
// (4%), "delivery" (4%), and "stock level" (4%) — whose distinct processing
// gives the multi-cluster per-request CPI distribution of Figure 1.
// Transactions are compute-intensive between sparse system call bursts
// (parse at the start, log writes at commit), giving the paper's measured
// 82% probability of a system call within one millisecond.
type TPCC struct{}

// NewTPCC returns the TPC-C workload.
func NewTPCC() *TPCC { return &TPCC{} }

// Name implements App.
func (*TPCC) Name() string { return "tpcc" }

// SamplingPeriod implements App: the paper samples TPCC once per 100 µs.
func (*TPCC) SamplingPeriod() sim.Time { return 100 * sim.Microsecond }

// Tiers implements App: the client talks to one MySQL server process class.
func (*TPCC) Tiers() int { return 1 }

// tpccTypes lists the transaction mix.
var tpccTypes = []struct {
	name   string
	weight float64
}{
	{"new order", 0.45},
	{"payment", 0.43},
	{"order status", 0.04},
	{"delivery", 0.04},
	{"stock level", 0.04},
}

// TPCC working sets: InnoDB buffer pool regions touched per transaction.
const (
	tpccIndexWS = 3 << 20
	tpccRowWS   = 2 << 20
	tpccLogWS   = 256 << 10
	tpccScanWS  = 4 << 20
)

// NewRequest implements App.
func (t *TPCC) NewRequest(id uint64, g *sim.RNG) *Request {
	weights := make([]float64, len(tpccTypes))
	for i, tt := range tpccTypes {
		weights[i] = tt.weight
	}
	ti := g.Pick(weights)

	var ph []Phase
	parse := func(ins float64) Phase {
		return Phase{Name: "parse", EntrySyscall: "read",
			Instructions: jitter(g, ins, 0.15),
			Activity:     actFor(g, 1.1, 0.006, 0.08, tpccLogWS)}
	}
	logCommit := func(ins float64) Phase {
		return Phase{Name: "log-commit", EntrySyscall: "write",
			Instructions: jitter(g, ins, 0.15),
			Activity:     actFor(g, 1.0, 0.008, 0.10, tpccLogWS),
			SyscallGap:   15e3,
			Syscalls:     []string{"write", "fsync"},
			BlockProb:    0.25,
			BlockMeanNs:  float64(200 * sim.Microsecond)}
	}

	switch tpccTypes[ti].name {
	case "new order":
		ph = append(ph, parse(60e3))
		items := 8 + g.Intn(5) // order lines
		for i := 0; i < items; i++ {
			ph = append(ph, Phase{
				Name:         fmt.Sprintf("item-lookup%d", i),
				Instructions: jitter(g, 50e3, 0.2),
				Activity:     actFor(g, 2.6, 0.024, 0.13, tpccIndexWS),
			})
		}
		ph = append(ph,
			Phase{Name: "stock-update", Instructions: jitter(g, 300e3, 0.15),
				Activity: actFor(g, 1.8, 0.015, 0.10, tpccRowWS)},
			Phase{Name: "insert-order", Instructions: jitter(g, 200e3, 0.15),
				Activity: actFor(g, 1.3, 0.010, 0.10, tpccRowWS)},
			logCommit(80e3))
	case "payment":
		ph = append(ph, parse(50e3),
			Phase{Name: "account-lookup", Instructions: jitter(g, 150e3, 0.2),
				Activity: actFor(g, 1.9, 0.018, 0.10, tpccIndexWS)},
			Phase{Name: "balance-update", Instructions: jitter(g, 250e3, 0.15),
				Activity: actFor(g, 1.5, 0.012, 0.10, tpccRowWS)},
			logCommit(60e3))
	case "order status":
		ph = append(ph, parse(40e3),
			Phase{Name: "order-scan", Instructions: jitter(g, 1.5e6, 0.2),
				Activity: actFor(g, 2.5, 0.028, 0.15, tpccScanWS)},
			Phase{Name: "result-send", EntrySyscall: "write",
				Instructions: jitter(g, 40e3, 0.2),
				Activity:     actFor(g, 1.4, 0.010, 0.08, tpccLogWS)})
	case "delivery":
		ph = append(ph, parse(50e3))
		for d := 0; d < 10; d++ { // ten districts per delivery batch
			ph = append(ph,
				Phase{Name: fmt.Sprintf("district-lookup%d", d),
					Instructions: jitter(g, 80e3, 0.2),
					Activity:     actFor(g, 2.1, 0.020, 0.12, tpccIndexWS)},
				Phase{Name: fmt.Sprintf("district-update%d", d),
					Instructions: jitter(g, 120e3, 0.15),
					Activity:     actFor(g, 1.7, 0.014, 0.10, tpccRowWS)})
		}
		ph = append(ph, logCommit(100e3))
	case "stock level":
		ph = append(ph, parse(40e3),
			Phase{Name: "join-scan", Instructions: jitter(g, 3e6, 0.2),
				Activity: actFor(g, 2.9, 0.035, 0.20, tpccScanWS)},
			Phase{Name: "result-send", EntrySyscall: "write",
				Instructions: jitter(g, 30e3, 0.2),
				Activity:     actFor(g, 1.4, 0.010, 0.08, tpccLogWS)})
	}

	return &Request{
		ID:        id,
		App:       t.Name(),
		Type:      tpccTypes[ti].name,
		TypeIndex: ti,
		Phases:    ph,
		RNG:       g.Fork(),
	}
}
