package workload

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// WebServer models the Apache 2.2.3 web server serving the static content
// portion of SPECweb99: four classes of files from 100 bytes to 900 KB
// (200 MB total dataset). Requests are short — a few hundred thousand
// instructions — with very frequent system calls (the paper measures a 97%
// probability of a system call within 16 µs of any instant), and the
// characteristic phase structure the paper's Table 2 mines for behavior
// transition signals: the writev that starts HTTP header writing signals a
// large CPI increase (fragmented piecemeal memory accesses), while lseek
// and stat precede CPI drops.
type WebServer struct{}

// NewWebServer returns the web server workload.
func NewWebServer() *WebServer { return &WebServer{} }

// Name implements App.
func (*WebServer) Name() string { return "webserver" }

// SamplingPeriod implements App: the paper samples the web server's short
// requests once per 10 microseconds.
func (*WebServer) SamplingPeriod() sim.Time { return 10 * sim.Microsecond }

// Tiers implements App: Apache serves static files in one process class.
func (*WebServer) Tiers() int { return 1 }

// specwebClass describes one SPECweb99 static file class.
type specwebClass struct {
	name     string
	weight   float64
	minBytes float64
	maxBytes float64
}

// specwebClasses follows the SPECweb99 static mix: class 1 (sub-KB) 35%,
// class 2 (KBs) 50%, class 3 (tens of KB) 14%, class 4 (hundreds of KB) 1%.
var specwebClasses = []specwebClass{
	{"class0", 0.35, 100, 900},
	{"class1", 0.50, 1 << 10, 9 << 10},
	{"class2", 0.14, 10 << 10, 90 << 10},
	{"class3", 0.01, 100 << 10, 900 << 10},
}

const sendChunkBytes = 8 << 10

// NewRequest implements App.
func (w *WebServer) NewRequest(id uint64, g *sim.RNG) *Request {
	weights := make([]float64, len(specwebClasses))
	for i, c := range specwebClasses {
		weights[i] = c.weight
	}
	ci := g.Pick(weights)
	class := specwebClasses[ci]
	fileBytes := g.Uniform(class.minBytes, class.maxBytes)
	chunks := int(fileBytes/sendChunkBytes) + 1
	// SPECweb99 classes live in different directory trees and file sizes
	// span four decades: larger files have deeper paths, more metadata
	// blocks, and bigger scatter-gather structures, so the early control
	// phases carry a size-identifying variation pattern (more lookup work,
	// hotter prepare) while the average reference rate stays similar —
	// exactly the structure online signature identification (Section 4.4)
	// exploits.
	cf := 3 * math.Log(fileBytes/100) / math.Log(9000)

	// Control phases touch connection state and parse buffers; the send
	// loop streams the file plus kernel socket buffers through the cache,
	// and concurrent transfers of distinct files contend for L2 space.
	ctlWS := 192 << 10
	fileWS := fileBytes*1.5 + float64(256<<10)
	if fileWS > 2.5*float64(1<<20) {
		fileWS = 2.5 * float64(1<<20)
	}

	ph := []Phase{
		// Event-loop bookkeeping before the connection is accepted: low
		// CPI, establishing the "before" level for the poll transition.
		// Long enough to amortize the preceding context switch's costs, so
		// the poll transition's "before" window reflects the idle loop.
		{Name: "waitloop", Instructions: jitter(g, 30e3, 0.2),
			Activity: actFor(g, 1.0, 0.002, 0.05, float64(ctlWS))},
		// poll returns with the new connection; accept path has moderate
		// CPI (Table 2: poll → increase).
		{Name: "accept", EntrySyscall: "poll", Instructions: jitter(g, 10e3, 0.2),
			Activity: actFor(g, 2.2, 0.010, 0.08, float64(ctlWS))},
		// read pulls in the HTTP request; parsing is branchy and slow
		// (read → increase).
		{Name: "parse", EntrySyscall: "read", Instructions: jitter(g, 28e3, 0.25),
			Activity:   actFor(g, 2.8, 0.014-0.002*cf, 0.08, float64(ctlWS)),
			SyscallGap: 9e3, Syscalls: []string{"read"}},
		// stat checks the file; the lookup that follows is cheap
		// (stat → decrease).
		{Name: "lookup", EntrySyscall: "stat",
			Instructions: jitter(g, 8e3+7e3*cf, 0.2),
			Activity:     actFor(g, 1.4, 0.006+0.004*cf, 0.06, float64(ctlWS))},
		// open the file (open → slight decrease).
		{Name: "openfile", EntrySyscall: "open", Instructions: jitter(g, 8e3, 0.2),
			Activity: actFor(g, 1.25, 0.008, 0.06, float64(ctlWS))},
		// Response preparation maps the file and walks metadata structures:
		// high CPI (mmap → increase).
		{Name: "prepare", EntrySyscall: "mmap",
			Instructions: jitter(g, 9e3+3e3*cf, 0.2),
			Activity:     actFor(g, 3.2, 0.016+0.005*cf, 0.12, float64(ctlWS))},
		// lseek positions the file; the send setup is cheap
		// (lseek → decrease).
		{Name: "sendprep", EntrySyscall: "lseek", Instructions: jitter(g, 8e3, 0.2),
			Activity: actFor(g, 1.2, 0.006, 0.06, float64(ctlWS))},
		// writev writes HTTP headers from fragmented pieces: the paper's
		// signature high-CPI phase (writev → large increase).
		{Name: "headers", EntrySyscall: "writev", Instructions: jitter(g, 10e3, 0.15),
			Activity: actFor(g, 4.9, 0.040, 0.10, float64(ctlWS))},
	}
	for c := 0; c < chunks; c++ {
		ph = append(ph, Phase{
			Name:         fmt.Sprintf("sendchunk%d", c),
			EntrySyscall: "write",
			Instructions: jitter(g, 14e3, 0.15),
			Activity:     actFor(g, 1.6, 0.035, 0.30, fileWS),
			SyscallGap:   7e3,
			Syscalls:     []string{"write", "sendfile"},
			BlockProb:    0.05,
			BlockMeanNs:  float64(100 * sim.Microsecond),
		})
	}
	ph = append(ph, Phase{
		Name:         "teardown",
		EntrySyscall: "shutdown",
		Instructions: jitter(g, 10e3, 0.2),
		Activity:     actFor(g, 2.8, 0.010, 0.08, float64(ctlWS)),
	})

	return &Request{
		ID:        id,
		App:       w.Name(),
		Type:      class.name,
		TypeIndex: ci,
		Phases:    ph,
		RNG:       g.Fork(),
	}
}
