package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func build(pts ...[2]float64) *Series {
	s := New(Instructions)
	for _, p := range pts {
		s.Append(p[0], p[1])
	}
	return s
}

func TestAppendDropsZeroLength(t *testing.T) {
	s := New(Instructions)
	s.Append(0, 5)
	s.Append(-1, 5)
	s.Append(10, 5)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestTotalLenAndValues(t *testing.T) {
	s := build([2]float64{10, 1}, [2]float64{20, 2})
	if got := s.TotalLen(); got != 30 {
		t.Fatalf("TotalLen = %v", got)
	}
	v := s.Values()
	l := s.Lengths()
	if v[0] != 1 || v[1] != 2 || l[0] != 10 || l[1] != 20 {
		t.Fatalf("Values/Lengths = %v/%v", v, l)
	}
}

func TestWeightedMean(t *testing.T) {
	s := build([2]float64{10, 1}, [2]float64{30, 3})
	if got := s.WeightedMean(); !almost(got, 2.5, 1e-12) {
		t.Fatalf("WeightedMean = %v, want 2.5", got)
	}
}

func TestCoVConstantZero(t *testing.T) {
	s := build([2]float64{5, 2}, [2]float64{50, 2}, [2]float64{1, 2})
	if got := s.CoV(); got != 0 {
		t.Fatalf("CoV of constant = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	// 90 units at value 1, 10 units at value 5: p50 = 1, p95 = 5.
	s := build([2]float64{90, 1}, [2]float64{10, 5})
	if got := s.Percentile(50); got != 1 {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile(95); got != 5 {
		t.Fatalf("p95 = %v", got)
	}
	if got := New(Nanos).Percentile(90); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
}

func TestPercentileOrderIndependent(t *testing.T) {
	a := build([2]float64{10, 5}, [2]float64{90, 1})
	b := build([2]float64{90, 1}, [2]float64{10, 5})
	if a.Percentile(95) != b.Percentile(95) {
		t.Fatal("Percentile depends on insertion order")
	}
}

func TestResampleExact(t *testing.T) {
	// Two 50-unit periods resampled at 25 → four buckets [1,1,2,2].
	s := build([2]float64{50, 1}, [2]float64{50, 2})
	got := s.Resample(25)
	want := []float64{1, 1, 2, 2}
	if len(got) != len(want) {
		t.Fatalf("Resample len = %d, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if !almost(got[i], want[i], 1e-12) {
			t.Fatalf("Resample = %v, want %v", got, want)
		}
	}
}

func TestResampleSplitsAcrossBoundary(t *testing.T) {
	// 30 units at 1, 30 at 3, period 20: buckets are [1, (10*1+10*3)/20=2, 3].
	s := build([2]float64{30, 1}, [2]float64{30, 3})
	got := s.Resample(20)
	want := []float64{1, 2, 3}
	for i := range want {
		if !almost(got[i], want[i], 1e-12) {
			t.Fatalf("Resample = %v, want %v", got, want)
		}
	}
}

func TestResampleRemainderFolding(t *testing.T) {
	// 105 units, period 20: five full buckets + 5-unit remainder (< half) →
	// folded into the last bucket, total 5 buckets.
	s := build([2]float64{105, 2})
	got := s.Resample(20)
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5", len(got))
	}
	// 115 units: remainder 15 >= half → emitted, 6 buckets.
	s2 := build([2]float64{115, 2})
	if got2 := s2.Resample(20); len(got2) != 6 {
		t.Fatalf("len = %d, want 6", len(got2))
	}
}

func TestResampleShortSeries(t *testing.T) {
	s := build([2]float64{3, 7})
	got := s.Resample(100)
	if len(got) != 1 || !almost(got[0], 7, 1e-12) {
		t.Fatalf("short series Resample = %v", got)
	}
	if New(Instructions).Resample(10) != nil {
		t.Fatal("empty series should resample to nil")
	}
}

func TestResamplePreservesWeightedMeanProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New(Instructions)
		for i := 0; i < 5+r.Intn(30); i++ {
			s.Append(1+r.Float64()*100, r.Float64()*5)
		}
		period := s.TotalLen() / float64(3+r.Intn(10))
		vals := s.Resample(period)
		if len(vals) == 0 {
			return false
		}
		// The resampled mean approximates the weighted mean: buckets are
		// nearly equal-length so a plain mean is close.
		var sum float64
		for _, v := range vals {
			sum += v
		}
		got := sum / float64(len(vals))
		return math.Abs(got-s.WeightedMean()) < 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestResampleValuesWithinRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New(Instructions)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 3+r.Intn(20); i++ {
			v := r.Float64() * 10
			s.Append(1+r.Float64()*50, v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		for _, v := range s.Resample(17) {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestResamplePanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Resample(0) did not panic")
		}
	}()
	build([2]float64{1, 1}).Resample(0)
}

func TestPrefix(t *testing.T) {
	s := build([2]float64{10, 1}, [2]float64{10, 2}, [2]float64{10, 3})
	p := s.Prefix(15)
	if p.Len() != 2 {
		t.Fatalf("Prefix len = %d", p.Len())
	}
	if p.TotalLen() != 15 {
		t.Fatalf("Prefix TotalLen = %v", p.TotalLen())
	}
	if p.Points[1].Len != 5 || p.Points[1].Value != 2 {
		t.Fatalf("Prefix truncation wrong: %+v", p.Points[1])
	}
	// Prefix longer than series returns everything.
	if got := s.Prefix(1e9).TotalLen(); got != 30 {
		t.Fatalf("long Prefix TotalLen = %v", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	s := build([2]float64{10, 1})
	c := s.Clone()
	c.Points[0].Value = 99
	if s.Points[0].Value != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestUnitString(t *testing.T) {
	if Instructions.String() != "instructions" || Nanos.String() != "nanoseconds" {
		t.Fatal("Unit strings wrong")
	}
	if Unit(9).String() == "" {
		t.Fatal("unknown unit empty string")
	}
}
