package timeseries

import (
	"math/rand"
	"testing"
)

func benchSeries(n int) *Series {
	r := rand.New(rand.NewSource(1))
	s := New(Instructions)
	for i := 0; i < n; i++ {
		s.Append(1+r.Float64()*1000, r.Float64()*5)
	}
	return s
}

func BenchmarkResample(b *testing.B) {
	s := benchSeries(1000)
	period := s.TotalLen() / 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Resample(period)
	}
}

func BenchmarkCoV(b *testing.B) {
	s := benchSeries(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CoV()
	}
}
