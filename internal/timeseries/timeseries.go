// Package timeseries represents a request's time-ordered sequence of metric
// values, each measured over an execution period of some length (in
// instructions or time). It provides the resampling into fixed-length
// periods that the paper's differencing measures (Section 4.1) operate on,
// and the length-weighted summary statistics of Equation 1.
package timeseries

import (
	"fmt"

	"repro/internal/stats"
)

// Point is one measured period: a metric value held over Len units
// (instructions or nanoseconds, per the series' Unit).
type Point struct {
	Len   float64
	Value float64
}

// Unit describes what a Point's Len counts.
type Unit int

const (
	// Instructions means period lengths are retired instruction counts.
	Instructions Unit = iota
	// Nanos means period lengths are virtual nanoseconds.
	Nanos
)

func (u Unit) String() string {
	switch u {
	case Instructions:
		return "instructions"
	case Nanos:
		return "nanoseconds"
	default:
		return fmt.Sprintf("Unit(%d)", int(u))
	}
}

// Series is a time-ordered sequence of measured periods for one metric of
// one request execution.
type Series struct {
	Unit   Unit
	Points []Point
}

// New returns an empty series with the given unit.
func New(u Unit) *Series { return &Series{Unit: u} }

// Append adds a period. Zero-length periods are dropped — they carry no
// weight and would otherwise pollute resampling.
func (s *Series) Append(length, value float64) {
	if length <= 0 {
		return
	}
	s.Points = append(s.Points, Point{Len: length, Value: value})
}

// Len reports the number of periods.
func (s *Series) Len() int { return len(s.Points) }

// TotalLen reports the sum of period lengths (total instructions or time).
func (s *Series) TotalLen() float64 {
	var t float64
	for _, p := range s.Points {
		t += p.Len
	}
	return t
}

// Values returns the period values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Value
	}
	return out
}

// Lengths returns the period lengths.
func (s *Series) Lengths() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Len
	}
	return out
}

// WeightedMean returns the length-weighted mean value — the overall metric
// value for the whole execution.
func (s *Series) WeightedMean() float64 {
	return stats.WeightedMean(s.Values(), s.Lengths())
}

// CoV returns the length-weighted coefficient of variation (Equation 1)
// over the series' periods.
func (s *Series) CoV() float64 {
	return stats.CoV(s.Values(), s.Lengths())
}

// Percentile returns the length-weighted p-th percentile of the values:
// the smallest value v such that periods with value <= v cover at least
// p% of the total length.
func (s *Series) Percentile(p float64) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	pts := make([]Point, len(s.Points))
	copy(pts, s.Points)
	// Sort by value.
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j].Value < pts[j-1].Value; j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	total := 0.0
	for _, q := range pts {
		total += q.Len
	}
	target := p / 100 * total
	var cum float64
	for _, q := range pts {
		cum += q.Len
		if cum >= target {
			return q.Value
		}
	}
	return pts[len(pts)-1].Value
}

// Resample converts the series into consecutive fixed-length periods of the
// given length, averaging (length-weighted) the original values that fall in
// each bucket. The final partial bucket, if at least half full, is emitted
// too; shorter remainders are folded into the previous bucket's average.
// This produces the "sequence of measured metric values for fixed-length
// periods" that Section 4.1's distances consume.
func (s *Series) Resample(period float64) []float64 {
	if period <= 0 {
		panic("timeseries: Resample requires positive period")
	}
	if len(s.Points) == 0 {
		return nil
	}
	var out []float64
	var bucketLen, bucketSum float64 // sum of len*value within bucket
	flush := func() {
		if bucketLen > 0 {
			out = append(out, bucketSum/bucketLen)
		}
		bucketLen, bucketSum = 0, 0
	}
	for _, p := range s.Points {
		remaining := p.Len
		for remaining > 0 {
			space := period - bucketLen
			take := remaining
			if take > space {
				take = space
			}
			bucketLen += take
			bucketSum += take * p.Value
			remaining -= take
			if bucketLen >= period {
				flush()
			}
		}
	}
	if bucketLen >= period/2 {
		flush()
	} else if bucketLen > 0 && len(out) > 0 {
		// Fold the small remainder into the last bucket.
		last := out[len(out)-1]
		out[len(out)-1] = (last*period + bucketSum) / (period + bucketLen)
	} else if bucketLen > 0 {
		flush() // the whole series is shorter than half a period
	}
	return out
}

// Prefix returns a new series containing only the leading periods covering
// at most length units, truncating the period that crosses the boundary.
// Used for online partial-signature matching (Section 4.4).
func (s *Series) Prefix(length float64) *Series {
	out := New(s.Unit)
	var cum float64
	for _, p := range s.Points {
		if cum >= length {
			break
		}
		take := p.Len
		if cum+take > length {
			take = length - cum
		}
		out.Append(take, p.Value)
		cum += take
	}
	return out
}

// Clone returns a deep copy.
func (s *Series) Clone() *Series {
	out := New(s.Unit)
	out.Points = make([]Point, len(s.Points))
	copy(out.Points, s.Points)
	return out
}
