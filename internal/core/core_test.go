package core

import (
	"errors"
	"testing"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestRunValidation(t *testing.T) {
	web := workload.NewWebServer()
	cases := []struct {
		name string
		opts Options
		want error
	}{
		{"missing app", Options{Requests: 1}, ErrNoApp},
		{"zero requests", Options{App: web}, ErrNoRequests},
		{"negative requests", Options{App: web, Requests: -3}, ErrNoRequests},
		{"negative cores", Options{App: web, Requests: 1, Cores: -1}, ErrBadCores},
		{"negative concurrency", Options{App: web, Requests: 1, Concurrency: -2}, ErrBadConcurrency},
		{"policy without threshold", Options{App: web, Requests: 1,
			Policy: PolicyContentionEasing}, ErrBadThreshold},
		{"metering without threshold", Options{App: web, Requests: 1,
			MeterCoExecution: true}, ErrBadThreshold},
		{"unknown policy", Options{App: web, Requests: 1,
			Policy: PolicyKind(99), UsageThreshold: 1}, ErrUnknownPolicy},
	}
	for _, tc := range cases {
		_, err := Run(tc.opts)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, not errors.Is %v", tc.name, err, tc.want)
		}
	}
}

func TestRunOptionsApply(t *testing.T) {
	app := workload.NewWebServer()
	col := obs.New("test")
	res, err := Run(Options{App: app, Requests: 5, Seed: 1},
		WithSampling(DefaultSampling(app)), WithObserver(col))
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples.Total() == 0 {
		t.Fatal("WithSampling not applied: no samples recorded")
	}
	rep := col.Report()
	if len(rep.Spans.Children) != 1 || rep.Spans.Children[0].Name != "run" {
		t.Fatalf("WithObserver not applied: spans = %+v", rep.Spans.Children)
	}
	run := rep.Spans.Children[0]
	var reqNode *obs.SpanReport
	for _, ch := range run.Children {
		if ch.Name == "request" {
			reqNode = ch
		}
	}
	if reqNode == nil || reqNode.Count != 5 {
		t.Fatalf("request spans = %+v, want count 5", reqNode)
	}
	if rep.Sampler == nil || rep.Sampler.OverheadNs <= 0 {
		t.Fatal("sampler overhead accounting missing")
	}
	counters := map[string]uint64{}
	for _, ct := range rep.Counters {
		counters[ct.Name] = ct.Value
	}
	if counters["sim.events_dispatched"] == 0 {
		t.Error("events-dispatched counter missing")
	}
	if counters["kernel.context_switches"] != res.ContextSwitches {
		t.Errorf("context switches: counter %d != result %d",
			counters["kernel.context_switches"], res.ContextSwitches)
	}
	if counters["sampling.kernel_samples"]+counters["sampling.interrupt_samples"] != res.Samples.Total() {
		t.Errorf("sampling counters %d+%d != Counts total %d",
			counters["sampling.kernel_samples"], counters["sampling.interrupt_samples"],
			res.Samples.Total())
	}
}

func TestRunSerialVsConcurrent(t *testing.T) {
	app := workload.NewTPCH()
	serial, err := Run(Options{App: app, Cores: 1, Concurrency: 1, Requests: 15,
		Sampling: DefaultSampling(app), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	conc, err := Run(Options{App: app, Requests: 15,
		Sampling: DefaultSampling(app), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1's headline: concurrent execution obfuscates performance;
	// TPCH's peak CPI worsens markedly.
	s90 := stats.Percentile(serial.Store.MetricValues(metrics.CPI), 90)
	c90 := stats.Percentile(conc.Store.MetricValues(metrics.CPI), 90)
	if c90 < s90*1.3 {
		t.Fatalf("4-core 90p CPI %.2f should substantially exceed 1-core %.2f", c90, s90)
	}
}

func TestRunWithContentionEasing(t *testing.T) {
	app := workload.NewTPCH()
	base, err := Run(Options{App: app, Requests: 20, Sampling: DefaultSampling(app), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	threshold := sched.HighUsageThreshold(base.Store, 80)
	eased, err := Run(Options{App: app, Requests: 20, Sampling: DefaultSampling(app),
		Policy: PolicyContentionEasing, UsageThreshold: threshold,
		MeterCoExecution: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if eased.PolicyStats == nil {
		t.Fatal("policy stats missing")
	}
	if eased.Store.Len() != 20 {
		t.Fatalf("traced %d/20", eased.Store.Len())
	}
}

func TestSamplingPresets(t *testing.T) {
	app := workload.NewWebServer()
	d := DefaultSampling(app)
	if d.Period != app.SamplingPeriod() || !d.Compensate {
		t.Fatalf("DefaultSampling = %+v", d)
	}
	s := SyscallSampling(app)
	if s.TbackupInt <= s.TsyscallMin {
		t.Fatal("backup delay must exceed TsyscallMin")
	}
}

func TestBucketFor(t *testing.T) {
	if BucketFor("webserver") >= BucketFor("tpch") {
		t.Fatal("short-request apps need finer buckets")
	}
	if BucketFor("unknown") <= 0 {
		t.Fatal("unknown app should get a sane default")
	}
}

func TestModelerDerivesPenalty(t *testing.T) {
	app := workload.NewTPCC()
	res, err := Run(Options{App: app, Requests: 30, Sampling: DefaultSampling(app), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := NewModeler("tpcc", res.Store.Traces)
	if m.AsyncPenalty <= 0 {
		t.Fatalf("penalty not derived: %v", m.AsyncPenalty)
	}
	if m.L1().Name() == "" || m.DTW().Name() == "" || m.DTWPenalized().Name() == "" {
		t.Fatal("measure constructors broken")
	}
}
