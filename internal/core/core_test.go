package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(Options{Requests: 1}); err == nil {
		t.Fatal("missing App should error")
	}
	if _, err := Run(Options{App: workload.NewWebServer()}); err == nil {
		t.Fatal("zero Requests should error")
	}
	if _, err := Run(Options{App: workload.NewWebServer(), Requests: 1,
		Policy: PolicyContentionEasing}); err == nil {
		t.Fatal("contention easing without threshold should error")
	}
	if _, err := Run(Options{App: workload.NewWebServer(), Requests: 1,
		MeterCoExecution: true}); err == nil {
		t.Fatal("metering without threshold should error")
	}
}

func TestRunSerialVsConcurrent(t *testing.T) {
	app := workload.NewTPCH()
	serial, err := Run(Options{App: app, Cores: 1, Concurrency: 1, Requests: 15,
		Sampling: DefaultSampling(app), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	conc, err := Run(Options{App: app, Requests: 15,
		Sampling: DefaultSampling(app), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1's headline: concurrent execution obfuscates performance;
	// TPCH's peak CPI worsens markedly.
	s90 := stats.Percentile(serial.Store.MetricValues(metrics.CPI), 90)
	c90 := stats.Percentile(conc.Store.MetricValues(metrics.CPI), 90)
	if c90 < s90*1.3 {
		t.Fatalf("4-core 90p CPI %.2f should substantially exceed 1-core %.2f", c90, s90)
	}
}

func TestRunWithContentionEasing(t *testing.T) {
	app := workload.NewTPCH()
	base, err := Run(Options{App: app, Requests: 20, Sampling: DefaultSampling(app), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	threshold := sched.HighUsageThreshold(base.Store, 80)
	eased, err := Run(Options{App: app, Requests: 20, Sampling: DefaultSampling(app),
		Policy: PolicyContentionEasing, UsageThreshold: threshold,
		MeterCoExecution: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if eased.PolicyStats == nil {
		t.Fatal("policy stats missing")
	}
	if eased.Store.Len() != 20 {
		t.Fatalf("traced %d/20", eased.Store.Len())
	}
}

func TestSamplingPresets(t *testing.T) {
	app := workload.NewWebServer()
	d := DefaultSampling(app)
	if d.Period != app.SamplingPeriod() || !d.Compensate {
		t.Fatalf("DefaultSampling = %+v", d)
	}
	s := SyscallSampling(app)
	if s.TbackupInt <= s.TsyscallMin {
		t.Fatal("backup delay must exceed TsyscallMin")
	}
}

func TestBucketFor(t *testing.T) {
	if BucketFor("webserver") >= BucketFor("tpch") {
		t.Fatal("short-request apps need finer buckets")
	}
	if BucketFor("unknown") <= 0 {
		t.Fatal("unknown app should get a sane default")
	}
}

func TestModelerDerivesPenalty(t *testing.T) {
	app := workload.NewTPCC()
	res, err := Run(Options{App: app, Requests: 30, Sampling: DefaultSampling(app), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := NewModeler("tpcc", res.Store.Traces)
	if m.AsyncPenalty <= 0 {
		t.Fatalf("penalty not derived: %v", m.AsyncPenalty)
	}
	if m.L1().Name() == "" || m.DTW().Name() == "" || m.DTWPenalized().Name() == "" {
		t.Fatal("measure constructors broken")
	}
}
