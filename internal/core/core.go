// Package core is the library facade of the reproduction: it wires the
// simulated multicore machine, kernel, workload drivers, and the paper's
// sampling layer into single-call experiment runs, and bundles the
// variation-driven request modeling (classification, anomaly analysis,
// signature identification) behind one Modeler type.
//
// The paper's contribution decomposes into (1) online OS-level tracking of
// request behavior variations (package sampling on top of kernel/machine),
// (2) variation-driven request modeling (packages distance, cluster,
// anomaly, signature), and (3) contention-easing scheduling (package
// sched). Package core is the front door to all three.
package core

import (
	"errors"
	"fmt"

	"repro/internal/distance"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sampling"
	"repro/internal/sched"
	"repro/internal/signature"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Validation and runtime failures returned by Run. All are sentinel values:
// test with errors.Is; the error actually returned wraps the sentinel with
// the offending value.
var (
	// ErrNoApp reports a missing Options.App.
	ErrNoApp = errors.New("core: Options.App is required")
	// ErrNoRequests reports a non-positive Options.Requests.
	ErrNoRequests = errors.New("core: Options.Requests must be positive")
	// ErrBadCores reports a negative Options.Cores.
	ErrBadCores = errors.New("core: Options.Cores must be non-negative")
	// ErrBadTopology reports a machine layout that fails validation; the
	// wrapped message names the offending topology field.
	ErrBadTopology = errors.New("core: invalid machine topology")
	// ErrBadConcurrency reports a negative Options.Concurrency.
	ErrBadConcurrency = errors.New("core: Options.Concurrency must be non-negative")
	// ErrBadThreshold reports a missing or non-positive UsageThreshold where
	// one is required (adaptive policies, co-execution metering).
	ErrBadThreshold = errors.New("core: a positive UsageThreshold is required")
	// ErrUnknownPolicy reports a PolicyKind outside the declared constants.
	ErrUnknownPolicy = errors.New("core: unknown policy")
	// ErrStalled reports a run whose event queue drained before all
	// requests completed (a workload/scheduler deadlock).
	ErrStalled = errors.New("core: run stalled")
)

// PolicyKind selects the CPU scheduling policy for a run.
type PolicyKind int

const (
	// PolicyRoundRobin is the baseline Linux-like scheduler.
	PolicyRoundRobin PolicyKind = iota
	// PolicyContentionEasing enables Section 5.2's adaptive scheduling.
	PolicyContentionEasing
	// PolicyTopologyAware enables the shared-cache-topology extension of
	// the contention-easing policy (sched.TopologyAware).
	PolicyTopologyAware
)

func (p PolicyKind) String() string {
	switch p {
	case PolicyRoundRobin:
		return "round-robin"
	case PolicyContentionEasing:
		return "contention-easing"
	case PolicyTopologyAware:
		return "topology-aware"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(p))
	}
}

// Options configures a workload run.
type Options struct {
	// App is the server application under study.
	App workload.App
	// Cores overrides the machine's core count (0 = the paper's 4).
	//
	// Deprecated: use WithTopology (or set Topology), which also expresses
	// packages, per-package frequency, and cache capacity. A positive Cores
	// builds the equivalent homogeneous topology; Topology wins when both
	// are set.
	Cores int
	// Topology overrides the full machine layout (nil = the paper's
	// 2×2-core box, or the deprecated Cores shim). Set with WithTopology.
	Topology *machine.Topology
	// Concurrency is the closed-loop client session count (0 = 2×cores,
	// enough to keep every core busy with queued alternatives).
	Concurrency int
	// Requests is the number of requests to complete.
	Requests int
	// Sampling configures the tracker; the zero value means context-switch
	// sampling only. Use DefaultSampling for the paper's per-app setup.
	Sampling sampling.Config
	// Policy selects the scheduler.
	Policy PolicyKind
	// PolicyName selects the scheduler from the sched package's policy
	// registry by name (see sched.PolicyNames); when non-empty it wins over
	// Policy. Registered adaptive policies need UsageThreshold, and the
	// signature-driven ones (cluster-cosched, deadline) need SignatureBank.
	PolicyName string
	// SignatureBank is the application's signature bank, handed to
	// registered policies that predict request properties online.
	SignatureBank *signature.Bank
	// UsageThreshold is the contention-easing high-usage threshold
	// (required for PolicyContentionEasing; see sched.HighUsageThreshold).
	UsageThreshold float64
	// MeterCoExecution enables the Figure 12 co-execution meter using
	// UsageThreshold.
	MeterCoExecution bool
	// Seed drives all randomness.
	Seed int64

	// Ablation switches (DESIGN.md section 5). Zero values are the paper's
	// system; the benches flip these to quantify each design choice.

	// NoContention disables the shared-cache and memory-bandwidth
	// contention model: co-runners no longer affect each other.
	NoContention bool
	// NoSwitchPollution stops charging context switches their cache
	// refill cost.
	NoSwitchPollution bool

	// observer receives spans and counters for the run; set it with
	// WithObserver. Nil (the default) leaves the run uninstrumented.
	observer *obs.Collector
}

// Option adjusts Options functionally; pass options as trailing arguments
// to Run. Options apply in order after the literal struct, so a later
// option overrides both the struct field and any earlier option.
type Option func(*Options)

// WithSampling sets the tracker configuration (see Options.Sampling).
func WithSampling(cfg sampling.Config) Option {
	return func(o *Options) { o.Sampling = cfg }
}

// WithTopology sets the machine layout for the run — package sizes,
// per-package frequency scale and cache capacity, and clock rate (see
// machine.Topology and machine.ParseTopology). It replaces the deprecated
// Options.Cores override; a homogeneous topology of the same core count
// produces bit-identical results.
func WithTopology(t machine.Topology) Option {
	return func(o *Options) { o.Topology = &t }
}

// WithObserver attaches an observability collector to the run. The run
// enters a "run" span scope, instruments the kernel and sampling tracker,
// and records end-of-run totals (events dispatched, preemptions, sampler
// overhead accounting) into the collector. Instrumentation reads only the
// virtual clock and values the simulation already computes, so results are
// bit-identical with or without a collector.
func WithObserver(c *obs.Collector) Option {
	return func(o *Options) { o.observer = c }
}

// validate checks the option set before any simulation state is built.
func (o *Options) validate() error {
	if o.App == nil {
		return ErrNoApp
	}
	if o.Requests <= 0 {
		return fmt.Errorf("%w, got %d", ErrNoRequests, o.Requests)
	}
	if o.Cores < 0 {
		return fmt.Errorf("%w, got %d", ErrBadCores, o.Cores)
	}
	if o.Concurrency < 0 {
		return fmt.Errorf("%w, got %d", ErrBadConcurrency, o.Concurrency)
	}
	switch o.Policy {
	case PolicyRoundRobin, PolicyContentionEasing, PolicyTopologyAware:
	default:
		return fmt.Errorf("%w %d", ErrUnknownPolicy, o.Policy)
	}
	if o.PolicyName != "" {
		if _, ok := sched.LookupPolicy(o.PolicyName); !ok {
			return fmt.Errorf("%w %q (valid: %v)", ErrUnknownPolicy, o.PolicyName, sched.PolicyNames())
		}
	} else if o.Policy != PolicyRoundRobin && o.UsageThreshold <= 0 {
		return fmt.Errorf("%w by policy %v, got %g", ErrBadThreshold, o.Policy, o.UsageThreshold)
	}
	if o.MeterCoExecution && o.UsageThreshold <= 0 {
		return fmt.Errorf("%w by co-execution metering, got %g", ErrBadThreshold, o.UsageThreshold)
	}
	return nil
}

// Result is everything a run produces.
type Result struct {
	// Store holds the completed request traces.
	Store *trace.Store
	// Samples tallies sampling activity for overhead accounting.
	Samples sampling.Counts
	// CoExecution is Figure 12's metric (zero unless metered).
	CoExecution sched.HighUsageCoExecution
	// Trainer carries transition-signal statistics when training was on.
	Trainer *sampling.SignalTrainer
	// PolicyStats reports contention-easing decisions (nil for the
	// baseline policy).
	PolicyStats *sched.ContentionEasing
	// ContextSwitches and Syscalls are kernel event totals.
	ContextSwitches, Syscalls uint64
	// WallTime is the simulated duration of the whole run.
	WallTime sim.Time
}

// DefaultSampling returns the paper's Section 3.1 sampling setup for an
// application: periodic interrupt sampling at the per-app granularity with
// observer-effect compensation.
func DefaultSampling(app workload.App) sampling.Config {
	return sampling.Config{
		Mode:       sampling.Interrupt,
		Period:     app.SamplingPeriod(),
		Compensate: true,
	}
}

// SyscallSampling returns the paper's Section 3.2 setup: system
// call-triggered sampling with a backup interrupt. TsyscallMin is set to
// the app's sampling period (matching overall frequency) and the backup
// delay substantially larger.
func SyscallSampling(app workload.App) sampling.Config {
	return sampling.Config{
		Mode:        sampling.SyscallTriggered,
		TsyscallMin: app.SamplingPeriod(),
		TbackupInt:  8 * app.SamplingPeriod(),
		Compensate:  true,
	}
}

// Run executes a closed-loop load under the given options. Trailing Option
// values are applied to opts first (so callers can keep a literal Options
// and layer WithSampling/WithObserver on top); the combined set is then
// validated against the typed sentinel errors before any simulation state
// is built.
func Run(opts Options, extra ...Option) (*Result, error) {
	for _, o := range extra {
		o(&opts)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	col := opts.observer
	eng := sim.NewEngine()
	kcfg := kernel.DefaultConfig()
	if opts.NoContention {
		kcfg.Machine.Cache.StressScale = 0
		kcfg.Machine.Cache.BandwidthSlope = 0
	}
	if opts.NoSwitchPollution {
		kcfg.PollutionOnSwitch = false
	}
	switch {
	case opts.Topology != nil:
		kcfg.Machine.Topology = *opts.Topology
	case opts.Cores > 0:
		// Deprecated-shim path: the homogeneous topology the old
		// Cores/CoresPerPackage override produced.
		per := kcfg.Machine.CoresPerPackage
		if opts.Cores < per {
			per = opts.Cores
		}
		kcfg.Machine.Topology = machine.Homogeneous(opts.Cores, per)
	}
	if err := kcfg.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTopology, err)
	}
	k := kernel.New(eng, kcfg)
	tk := sampling.NewTracker(k, opts.Sampling)
	// Scope first, then resolve the instrumented components' handles: span
	// series attach to the tree under the scope current at setup time.
	col.Enter("run")
	defer func() { col.Exit(eng.Now()) }()
	k.SetObserver(col)
	tk.SetObserver(col)

	res := &Result{}
	switch {
	case opts.PolicyName != "":
		// Registry path: build the named policy from a shared context, so
		// every caller (experiments, differentials, CLIs) constructs the
		// same policy from the same name. Factory errors (missing threshold
		// or bank) surface before any simulation runs.
		pol, err := sched.NewPolicy(opts.PolicyName, &sched.PolicyContext{
			Tracker:   tk,
			Threshold: opts.UsageThreshold,
			Bank:      opts.SignatureBank,
		})
		if err != nil {
			return nil, err
		}
		k.SetPolicy(pol)
		if ce, ok := pol.(*sched.ContentionEasing); ok {
			res.PolicyStats = ce
		}
	case opts.Policy != PolicyRoundRobin:
		mon := sched.NewMonitor(tk, 0.6)
		k.OnRequestDone(func(run *kernel.RequestRun) { mon.Forget(run) })
		switch opts.Policy {
		case PolicyContentionEasing:
			pol := sched.NewContentionEasing(mon, opts.UsageThreshold)
			k.SetPolicy(pol)
			res.PolicyStats = pol
		case PolicyTopologyAware:
			k.SetPolicy(sched.NewTopologyAware(mon, opts.UsageThreshold))
		}
	}
	var meter *sched.CoExecutionMeter
	if opts.MeterCoExecution {
		meter = sched.NewCoExecutionMeter(k, opts.UsageThreshold, sim.Millisecond)
	}

	concurrency := opts.Concurrency
	if concurrency <= 0 {
		concurrency = 2 * kcfg.Machine.NumCores()
	}
	d := kernel.NewDriver(k, kernel.LoadConfig{
		App:         opts.App,
		Concurrency: concurrency,
		Requests:    opts.Requests,
		Seed:        opts.Seed,
	})
	d.Start()
	eng.RunAll()
	if meter != nil {
		meter.Stop()
		res.CoExecution = meter.Result()
	}
	if d.Completed() != opts.Requests {
		return nil, fmt.Errorf("%w at %d/%d requests", ErrStalled, d.Completed(), opts.Requests)
	}
	res.Store = tk.Store()
	res.Samples = tk.Counts
	res.Trainer = tk.Trainer()
	res.ContextSwitches = k.Stats.ContextSwitches
	res.Syscalls = k.Stats.Syscalls
	res.WallTime = eng.Now()
	if col != nil {
		col.Counter("sim.events_dispatched").Add(eng.Dispatched())
		col.Counter("kernel.preemptions").Add(k.Stats.Preemptions)
		col.Counter("kernel.kept_current").Add(k.Stats.KeptCurrent)
		col.AddSamplerStats(obs.SamplerStats{
			KernelSamples:    res.Samples.Kernel,
			InterruptSamples: res.Samples.Interrupt,
			KernelCostNs:     sampling.KernelSampleCostNs,
			InterruptCostNs:  sampling.InterruptSampleCostNs,
			WallNs:           int64(res.WallTime),
		})
	}
	return res, nil
}

// BucketFor returns the per-application resampling bucket (instructions)
// used when turning traces into fixed-length-period sequences: roughly
// 1/20th of a typical request, so patterns have enough points to compare
// without drowning in noise.
func BucketFor(app string) float64 {
	switch app {
	case "webserver":
		return 10e3
	case "tpcc":
		return 50e3
	case "rubis":
		return 100e3
	case "tpch":
		return 2e6
	case "webwork":
		return 5e6
	default:
		return 100e3
	}
}

// Modeler bundles Section 4's variation-driven request modeling over a set
// of traces from one application.
type Modeler struct {
	// BucketIns is the resampling bucket.
	BucketIns float64
	// AsyncPenalty and L1Penalty, when zero, are derived from the trace
	// population (the paper's 99-percentile peak metric difference).
	AsyncPenalty float64
	L1Penalty    float64
}

// NewModeler builds a modeler for an application's traces, deriving the
// penalty from the population per Section 4.1.
func NewModeler(app string, traces []*trace.Request) *Modeler {
	bucket := BucketFor(app)
	var seqs [][]float64
	for _, tr := range traces {
		seqs = append(seqs, tr.Resampled(metrics.CPI, bucket))
	}
	p := distance.PeakPenalty(seqs)
	return &Modeler{BucketIns: bucket, AsyncPenalty: p, L1Penalty: p}
}

// L1 returns the Equation 2 measure with the derived penalty.
func (m *Modeler) L1() distance.Measure { return distance.L1{Penalty: m.L1Penalty} }

// DTW returns plain dynamic time warping.
func (m *Modeler) DTW() distance.Measure { return distance.DTW{} }

// DTWPenalized returns the paper's enhanced measure.
func (m *Modeler) DTWPenalized() distance.Measure {
	return distance.DTW{AsyncPenalty: m.AsyncPenalty}
}
