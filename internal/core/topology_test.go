package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// fingerprintRun reduces a run to a comparable summary: per-request
// identity, sample counts, and the raw CPI series of every trace.
func fingerprintRun(t *testing.T, res *Result) []float64 {
	t.Helper()
	out := []float64{float64(res.ContextSwitches), float64(res.Syscalls), float64(res.WallTime)}
	for _, tr := range res.Store.Traces {
		out = append(out, float64(tr.ID), float64(tr.Instructions()))
		out = append(out, tr.Resampled(metrics.CPI, BucketFor(tr.App))...)
	}
	return out
}

// TestCoresShimEquivalence is the deprecated-alias golden test: a run with
// Options.Cores must be bit-identical to the same run with WithTopology of
// the equivalent homogeneous layout.
func TestCoresShimEquivalence(t *testing.T) {
	for _, cores := range []int{1, 2, 6} {
		app := workload.NewTPCC()
		viaCores, err := Run(Options{App: app, Cores: cores, Requests: 12,
			Sampling: DefaultSampling(app), Seed: 5})
		if err != nil {
			t.Fatalf("cores=%d: %v", cores, err)
		}
		per := 2
		if cores < per {
			per = cores
		}
		viaTopo, err := Run(Options{App: app, Requests: 12,
			Sampling: DefaultSampling(app), Seed: 5},
			WithTopology(machine.Homogeneous(cores, per)))
		if err != nil {
			t.Fatalf("topology(%d): %v", cores, err)
		}
		a, b := fingerprintRun(t, viaCores), fingerprintRun(t, viaTopo)
		if len(a) != len(b) {
			t.Fatalf("cores=%d: fingerprint lengths %d != %d", cores, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("cores=%d: fingerprint diverges at %d: %v != %v", cores, i, a[i], b[i])
			}
		}
	}
}

// TestTopologyWinsOverCores checks precedence: WithTopology overrides the
// deprecated Cores field when both are set.
func TestTopologyWinsOverCores(t *testing.T) {
	app := workload.NewWebServer()
	halfClock := machine.Topology{
		Packages:    []machine.PackageSpec{{Cores: 1, FreqScale: 1}},
		CyclesPerNs: 1.5,
	}
	res, err := Run(Options{App: app, Cores: 1, Concurrency: 1, Requests: 4, Seed: 1},
		WithTopology(halfClock))
	if err != nil {
		t.Fatal(err)
	}
	solo, err := Run(Options{App: app, Cores: 1, Concurrency: 1, Requests: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.WallTime <= solo.WallTime {
		t.Fatalf("half-clock topology should run slower: %v vs %v", res.WallTime, solo.WallTime)
	}
}

func TestRunRejectsBadTopology(t *testing.T) {
	app := workload.NewWebServer()
	_, err := Run(Options{App: app, Requests: 1, Seed: 1},
		WithTopology(machine.Topology{Packages: []machine.PackageSpec{{Cores: 2, FreqScale: -1}}}))
	if !errors.Is(err, ErrBadTopology) {
		t.Fatalf("err = %v, want ErrBadTopology", err)
	}
	if !strings.Contains(err.Error(), "FreqScale") {
		t.Fatalf("error should name the offending field: %v", err)
	}
	// The deprecated shim surfaces uneven layouts as errors too (they used
	// to panic in machine.New): Cores=3 now builds packages [2 1], which is
	// valid, so it must run.
	if _, err := Run(Options{App: app, Requests: 1, Seed: 1, Cores: 3}); err != nil {
		t.Fatalf("Cores=3 should now run on an uneven topology, got %v", err)
	}
}

// TestHeterogeneousRunDeterminism: a heterogeneous fleet-node layout must
// reproduce bit-identically run to run.
func TestHeterogeneousRunDeterminism(t *testing.T) {
	topo, err := machine.ParseTopology("pkg=2:0.8,4:1.2:8;clock=2.5")
	if err != nil {
		t.Fatal(err)
	}
	app := workload.NewTPCC()
	run := func() []float64 {
		res, err := Run(Options{App: app, Requests: 10, Sampling: DefaultSampling(app), Seed: 7},
			WithTopology(topo))
		if err != nil {
			t.Fatal(err)
		}
		return fingerprintRun(t, res)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("heterogeneous run not deterministic at %d", i)
		}
	}
}
