package sim

import "testing"

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		var tick func()
		n := 0
		tick = func() {
			n++
			if n < 10000 {
				e.After(Time(n%97+1), tick)
			}
		}
		e.After(1, tick)
		e.RunAll()
	}
}

func BenchmarkEngineCancel(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		ev := e.After(1000000, func() {})
		e.Cancel(ev)
	}
}
