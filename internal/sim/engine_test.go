package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	e.Cancel(ev)
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double cancel and cancel-after-fire must be safe.
	e.Cancel(ev)
	ev2 := e.At(20, func() {})
	e.RunAll()
	e.Cancel(ev2)
}

func TestEngineCancelFromWithinEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	var victim *Event
	e.At(1, func() { e.Cancel(victim) })
	victim = e.At(2, func() { fired = true })
	e.RunAll()
	if fired {
		t.Fatal("event cancelled from within an earlier event still fired")
	}
}

func TestEngineScheduleInPastRunsNow(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100, func() {
		e.At(50, func() { at = e.Now() }) // in the past
	})
	e.RunAll()
	if at != 100 {
		t.Fatalf("past event ran at %d, want 100", at)
	}
}

func TestEngineRunHorizon(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		e.After(10, tick)
	}
	e.After(10, tick)
	e.Run(95)
	if count != 9 {
		t.Fatalf("ran %d ticks before horizon 95, want 9", count)
	}
	if e.Now() != 95 {
		t.Fatalf("Now = %d after horizon, want 95", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 100; i++ {
		e.At(Time(i), func() {
			count++
			if count == 5 {
				e.Stop()
			}
		})
	}
	e.RunAll()
	if count != 5 {
		t.Fatalf("Stop did not halt run: count = %d", count)
	}
}

func TestEngineReschedule(t *testing.T) {
	e := NewEngine()
	var at Time
	ev := e.At(10, func() { t.Fatal("original event fired") })
	e.Reschedule(ev, 20, func() { at = e.Now() })
	e.RunAll()
	if at != 20 {
		t.Fatalf("rescheduled event at %d, want 20", at)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := NewRNG(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(42).Float64() == c.Float64() {
			continue
		}
		same = false
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestForkLabeledStable(t *testing.T) {
	a := ForkLabeled(7, "tpcc")
	b := ForkLabeled(7, "tpcc")
	if a.Float64() != b.Float64() {
		t.Fatal("ForkLabeled not stable for identical labels")
	}
	c := ForkLabeled(7, "tpch")
	d := ForkLabeled(7, "tpcc")
	if c.Float64() == d.Float64() {
		t.Fatal("ForkLabeled collision across labels (extremely unlikely)")
	}
}

func TestClampedNormalBounds(t *testing.T) {
	g := NewRNG(1)
	f := func(seed int64) bool {
		v := g.ClampedNormal(5, 100, 0, 10)
		return v >= 0 && v <= 10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPickRespectsWeights(t *testing.T) {
	g := NewRNG(9)
	counts := [3]int{}
	for i := 0; i < 10000; i++ {
		counts[g.Pick([]float64{0.45, 0.43, 0.12})]++
	}
	if counts[0] < 4000 || counts[0] > 5000 {
		t.Fatalf("weight 0.45 drew %d/10000", counts[0])
	}
	if counts[2] > 2000 {
		t.Fatalf("weight 0.12 drew %d/10000", counts[2])
	}
}

func TestPickPanicsOnZeroWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick with zero weights did not panic")
		}
	}()
	NewRNG(1).Pick([]float64{0, 0})
}

func TestParetoBounded(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := g.Pareto(1.2, 100, 900000)
		if v < 100-1e-6 || v > 900000+1e-6 {
			t.Fatalf("Pareto draw %v outside [100, 900000]", v)
		}
	}
}

func TestExpNonNegative(t *testing.T) {
	g := NewRNG(4)
	for i := 0; i < 1000; i++ {
		if g.Exp(5) < 0 {
			t.Fatal("Exp produced negative value")
		}
	}
	if g.Exp(0) != 0 || g.Exp(-1) != 0 {
		t.Fatal("Exp with non-positive mean should be 0")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{4 * Second, "4.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}
