package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	e.Cancel(ev)
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double cancel and cancel-after-fire must be safe.
	e.Cancel(ev)
	ev2 := e.At(20, func() {})
	e.RunAll()
	e.Cancel(ev2)
}

func TestEngineCancelFromWithinEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	var victim *Event
	e.At(1, func() { e.Cancel(victim) })
	victim = e.At(2, func() { fired = true })
	e.RunAll()
	if fired {
		t.Fatal("event cancelled from within an earlier event still fired")
	}
}

func TestEngineScheduleInPastRunsNow(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100, func() {
		e.At(50, func() { at = e.Now() }) // in the past
	})
	e.RunAll()
	if at != 100 {
		t.Fatalf("past event ran at %d, want 100", at)
	}
}

func TestEngineRunHorizon(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		e.After(10, tick)
	}
	e.After(10, tick)
	e.Run(95)
	if count != 9 {
		t.Fatalf("ran %d ticks before horizon 95, want 9", count)
	}
	if e.Now() != 95 {
		t.Fatalf("Now = %d after horizon, want 95", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 100; i++ {
		e.At(Time(i), func() {
			count++
			if count == 5 {
				e.Stop()
			}
		})
	}
	e.RunAll()
	if count != 5 {
		t.Fatalf("Stop did not halt run: count = %d", count)
	}
}

func TestEngineReschedule(t *testing.T) {
	e := NewEngine()
	var at Time
	ev := e.At(10, func() { t.Fatal("original event fired") })
	e.Reschedule(ev, 20, func() { at = e.Now() })
	e.RunAll()
	if at != 20 {
		t.Fatalf("rescheduled event at %d, want 20", at)
	}
}

func TestEnginePendingAndDispatched(t *testing.T) {
	e := NewEngine()
	ev := e.At(10, func() {})
	e.At(20, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	if !ev.Pending() || ev.At() != 10 {
		t.Fatalf("event not pending at 10: pending=%v at=%v", ev.Pending(), ev.At())
	}
	e.Cancel(ev)
	if ev.Pending() || e.Pending() != 1 {
		t.Fatal("cancel did not remove the event eagerly")
	}
	e.RunAll()
	if e.Dispatched() != 1 {
		t.Fatalf("Dispatched = %d, want 1 (cancelled events never count)", e.Dispatched())
	}
	var nilEv *Event
	if nilEv.Pending() {
		t.Fatal("nil event reports pending")
	}
}

// A heavy mixed workload of schedules and mid-queue cancels dispatches in
// exact (time, seq) order — the heap invariant under push/remove/fix.
func TestEngineHeapOrderUnderChurn(t *testing.T) {
	e := NewEngine()
	g := NewRNG(17)
	type rec struct {
		at  Time
		seq int
	}
	var got []rec
	var events []*Event
	for i := 0; i < 500; i++ {
		i := i
		at := Time(g.Intn(100))
		events = append(events, e.At(at, func() { got = append(got, rec{e.Now(), i}) }))
	}
	// Cancel a third of them from the middle of the heap.
	cancelled := map[int]bool{}
	for i := 0; i < 500; i += 3 {
		e.Cancel(events[i])
		cancelled[i] = true
	}
	e.RunAll()
	if len(got) != 500-len(cancelled) {
		t.Fatalf("dispatched %d events, want %d", len(got), 500-len(cancelled))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if b.at < a.at || (b.at == a.at && b.seq < a.seq) {
			t.Fatalf("dispatch order violated at %d: %+v then %+v", i, a, b)
		}
	}
}

func TestTimerFiresAndRearms(t *testing.T) {
	e := NewEngine()
	var fired []Time
	tm := e.NewTimer(func() { fired = append(fired, e.Now()) })
	if tm.Pending() {
		t.Fatal("new timer reports pending")
	}
	tm.Arm(10)
	if !tm.Pending() || tm.At() != 10 {
		t.Fatalf("armed timer: pending=%v at=%v", tm.Pending(), tm.At())
	}
	e.RunAll()
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("fired = %v, want [10]", fired)
	}
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	// Re-arming after firing reuses the same event allocation.
	tm.Arm(5)
	e.RunAll()
	if len(fired) != 2 || fired[1] != 15 {
		t.Fatalf("fired = %v, want [10 15]", fired)
	}
}

// Re-arming a pending timer replaces the earlier arming: moving it both
// earlier and later must reposition it inside the heap.
func TestTimerRearmRepositions(t *testing.T) {
	for _, d := range []Time{3, 40} {
		e := NewEngine()
		var fired []Time
		tm := e.NewTimer(func() { fired = append(fired, e.Now()) })
		// Surrounding events give the heap structure to reposition within.
		for i := Time(1); i <= 50; i += 7 {
			e.At(i, func() {})
		}
		tm.Arm(20)
		tm.Arm(d)
		e.RunAll()
		if len(fired) != 1 || fired[0] != d {
			t.Fatalf("re-armed to %d fired at %v", d, fired)
		}
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	tm := e.NewTimer(func() { t.Fatal("stopped timer fired") })
	tm.Stop() // stop while unarmed is a no-op
	tm.Arm(10)
	tm.Stop()
	if tm.Pending() {
		t.Fatal("stopped timer still pending")
	}
	tm.Stop() // double stop is safe
	e.RunAll()
}

func TestTimerArmInPastClampsToNow(t *testing.T) {
	e := NewEngine()
	var at Time
	tm := e.NewTimer(func() { at = e.Now() })
	e.At(100, func() { tm.ArmAt(50) })
	e.RunAll()
	if at != 100 {
		t.Fatalf("past arming fired at %d, want 100", at)
	}
}

// Each Arm consumes exactly one scheduling sequence number, the same as the
// After call it replaces — the invariant that made the kernel's Timer
// conversion fingerprint-preserving. Same-time Timer and After events must
// interleave purely by arming order.
func TestTimerSeqParityWithAfter(t *testing.T) {
	e := NewEngine()
	var got []int
	tm1 := e.NewTimer(func() { got = append(got, 1) })
	tm2 := e.NewTimer(func() { got = append(got, 3) })
	tm1.Arm(10)
	e.After(10, func() { got = append(got, 2) })
	tm2.Arm(10)
	e.After(10, func() { got = append(got, 4) })
	e.RunAll()
	want := []int{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("same-time dispatch order %v, want %v", got, want)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := NewRNG(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(42).Float64() == c.Float64() {
			continue
		}
		same = false
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestForkLabeledStable(t *testing.T) {
	a := ForkLabeled(7, "tpcc")
	b := ForkLabeled(7, "tpcc")
	if a.Float64() != b.Float64() {
		t.Fatal("ForkLabeled not stable for identical labels")
	}
	c := ForkLabeled(7, "tpch")
	d := ForkLabeled(7, "tpcc")
	if c.Float64() == d.Float64() {
		t.Fatal("ForkLabeled collision across labels (extremely unlikely)")
	}
}

func TestClampedNormalBounds(t *testing.T) {
	g := NewRNG(1)
	f := func(seed int64) bool {
		v := g.ClampedNormal(5, 100, 0, 10)
		return v >= 0 && v <= 10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPickRespectsWeights(t *testing.T) {
	g := NewRNG(9)
	counts := [3]int{}
	for i := 0; i < 10000; i++ {
		counts[g.Pick([]float64{0.45, 0.43, 0.12})]++
	}
	if counts[0] < 4000 || counts[0] > 5000 {
		t.Fatalf("weight 0.45 drew %d/10000", counts[0])
	}
	if counts[2] > 2000 {
		t.Fatalf("weight 0.12 drew %d/10000", counts[2])
	}
}

func TestPickPanicsOnZeroWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick with zero weights did not panic")
		}
	}()
	NewRNG(1).Pick([]float64{0, 0})
}

func TestParetoBounded(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := g.Pareto(1.2, 100, 900000)
		if v < 100-1e-6 || v > 900000+1e-6 {
			t.Fatalf("Pareto draw %v outside [100, 900000]", v)
		}
	}
}

func TestExpNonNegative(t *testing.T) {
	g := NewRNG(4)
	for i := 0; i < 1000; i++ {
		if g.Exp(5) < 0 {
			t.Fatal("Exp produced negative value")
		}
	}
	if g.Exp(0) != 0 || g.Exp(-1) != 0 {
		t.Fatal("Exp with non-positive mean should be 0")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{4 * Second, "4.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}
