// Package sim provides the deterministic discrete-event simulation engine
// that underlies the multicore machine and operating-system models. All
// simulated activity is driven by a virtual clock in nanoseconds; wall-clock
// time never enters the simulation, so any run is exactly reproducible from
// its seed.
package sim

import "fmt"

// Time is a virtual timestamp in nanoseconds since the start of simulation.
type Time int64

// Common durations expressed in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a Time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts a Time to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Event is a scheduled callback. Events are single-shot; cancelling an event
// that already fired is a no-op.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	index     int // heap index, -1 when not queued
	cancelled bool
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Pending reports whether the event is still queued and not cancelled.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 && !e.cancelled }

// before is the queue's total order: time, then scheduling sequence. Every
// event's (at, seq) key is unique, so the dispatch order is a property of
// the schedule alone, never of the heap's internal layout.
func (e *Event) before(o *Event) bool {
	return e.at < o.at || (e.at == o.at && e.seq < o.seq)
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; the whole simulation runs on one goroutine by design so
// that event ordering is total and deterministic.
//
// The queue is a hand-rolled 4-ary min-heap over (at, seq): the wider fanout
// halves the tree depth of the binary heap and the monomorphic *Event
// methods avoid container/heap's interface dispatch on every sift — the
// queue is the hottest structure in the kernel exec loop.
type Engine struct {
	now        Time
	queue      []*Event
	seq        uint64
	stopped    bool
	dispatched uint64
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at virtual time t. Scheduling in the past (or at the
// present instant) runs the event at the current time, ordered after events
// already scheduled for that time.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn, index: -1}
	e.push(ev)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Event { return e.At(e.now+d, fn) }

// Cancel removes ev from the queue. Safe to call on nil, fired, or already
// cancelled events.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled {
		return
	}
	ev.cancelled = true
	if ev.index >= 0 {
		e.remove(ev.index)
	}
}

// Reschedule cancels ev and schedules fn at t, returning the new event.
func (e *Engine) Reschedule(ev *Event, t Time, fn func()) *Event {
	e.Cancel(ev)
	return e.At(t, fn)
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event ran.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.pop()
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.dispatched++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty, the clock passes until, or
// Stop is called. The clock is left at the time of the last event executed
// (or at until, whichever is smaller, if the horizon was hit).
func (e *Engine) Run(until Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			return
		}
		next := e.queue[0].at
		if next > until {
			e.now = until
			return
		}
		e.Step()
	}
}

// RunAll executes events until the queue is empty or Stop is called.
func (e *Engine) RunAll() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// Stop halts Run/RunAll after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of queued events (including cancelled ones not
// yet reaped — cancellation removes them eagerly so this is exact in
// practice).
func (e *Engine) Pending() int { return len(e.queue) }

// Dispatched reports the total number of events executed so far — the
// observability layer's "events dispatched" counter.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// --- 4-ary heap primitives ---

const heapArity = 4

func (e *Engine) push(ev *Event) {
	ev.index = len(e.queue)
	e.queue = append(e.queue, ev)
	e.up(ev.index)
}

func (e *Engine) pop() *Event {
	q := e.queue
	root := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[0].index = 0
	q[n] = nil
	e.queue = q[:n]
	if n > 0 {
		e.down(0)
	}
	root.index = -1
	return root
}

// remove deletes the event at heap index i.
func (e *Engine) remove(i int) {
	q := e.queue
	n := len(q) - 1
	ev := q[i]
	if i != n {
		q[i] = q[n]
		q[i].index = i
	}
	q[n] = nil
	e.queue = q[:n]
	if i < n {
		e.fix(i)
	}
	ev.index = -1
}

// fix restores the heap invariant after the key at index i changed.
func (e *Engine) fix(i int) {
	if !e.down(i) {
		e.up(i)
	}
}

func (e *Engine) up(i int) {
	q := e.queue
	ev := q[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if !ev.before(q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].index = i
		i = parent
	}
	q[i] = ev
	ev.index = i
}

// down sifts the event at index i toward the leaves, reporting whether it
// moved.
func (e *Engine) down(i int) bool {
	q := e.queue
	n := len(q)
	ev := q[i]
	start := i
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q[c].before(q[min]) {
				min = c
			}
		}
		if !q[min].before(ev) {
			break
		}
		q[i] = q[min]
		q[i].index = i
		i = min
	}
	q[i] = ev
	ev.index = i
	return i != start
}

// Timer is a caller-owned, reusable one-shot timer: a single Event
// allocation re-armed for the lifetime of its owner. The kernel's per-core
// quantum and execution-breakpoint timers, the sampling layer's backup
// interrupts, and per-thread I/O wakeups re-schedule millions of times per
// run; routing them through After would allocate an Event (and usually a
// closure) each time, which is the dominant allocation of the whole
// simulator. A Timer arms in place instead — repositioning its event inside
// the heap when it is still queued — so the steady state allocates nothing.
//
// Each Arm consumes exactly one scheduling sequence number, the same as the
// After call it replaces, so converting a call site preserves the engine's
// event dispatch order bit-for-bit.
//
// The timer's event must never be shared: Arm/Stop assume exclusive
// ownership, which is what makes reuse safe (there is no stale *Event handle
// that could cancel an innocent reused event).
type Timer struct {
	eng *Engine
	ev  Event
}

// NewTimer returns an unarmed timer that runs fn when it fires.
func (e *Engine) NewTimer(fn func()) *Timer {
	t := &Timer{eng: e}
	t.ev.fn = fn
	t.ev.index = -1
	return t
}

// Arm schedules the timer d nanoseconds from now, replacing any pending
// arming.
func (t *Timer) Arm(d Time) { t.ArmAt(t.eng.now + d) }

// ArmAt schedules the timer at virtual time at, replacing any pending
// arming. Like Engine.At, times in the past clamp to the present.
func (t *Timer) ArmAt(at Time) {
	e := t.eng
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev := &t.ev
	ev.at, ev.seq, ev.cancelled = at, e.seq, false
	if ev.index >= 0 {
		e.fix(ev.index)
	} else {
		e.push(ev)
	}
}

// Stop cancels a pending arming. Safe to call on an unarmed or fired timer.
func (t *Timer) Stop() {
	ev := &t.ev
	ev.cancelled = true
	if ev.index >= 0 {
		t.eng.remove(ev.index)
	}
}

// Pending reports whether the timer is armed and not yet fired.
func (t *Timer) Pending() bool { return t.ev.Pending() }

// At reports the virtual time of the pending (or last) arming.
func (t *Timer) At() Time { return t.ev.at }
