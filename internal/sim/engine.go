// Package sim provides the deterministic discrete-event simulation engine
// that underlies the multicore machine and operating-system models. All
// simulated activity is driven by a virtual clock in nanoseconds; wall-clock
// time never enters the simulation, so any run is exactly reproducible from
// its seed.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a virtual timestamp in nanoseconds since the start of simulation.
type Time int64

// Common durations expressed in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a Time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts a Time to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Event is a scheduled callback. Events are single-shot; cancelling an event
// that already fired is a no-op.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	index     int // heap index, -1 when not queued
	cancelled bool
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Pending reports whether the event is still queued and not cancelled.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 && !e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; the whole simulation runs on one goroutine by design so
// that event ordering is total and deterministic.
type Engine struct {
	now        Time
	queue      eventHeap
	seq        uint64
	stopped    bool
	dispatched uint64
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at virtual time t. Scheduling in the past (or at the
// present instant) runs the event at the current time, ordered after events
// already scheduled for that time.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn, index: -1}
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Event { return e.At(e.now+d, fn) }

// Cancel removes ev from the queue. Safe to call on nil, fired, or already
// cancelled events.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled {
		return
	}
	ev.cancelled = true
	if ev.index >= 0 {
		heap.Remove(&e.queue, ev.index)
	}
}

// Reschedule cancels ev and schedules fn at t, returning the new event.
func (e *Engine) Reschedule(ev *Event, t Time, fn func()) *Event {
	e.Cancel(ev)
	return e.At(t, fn)
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event ran.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.dispatched++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty, the clock passes until, or
// Stop is called. The clock is left at the time of the last event executed
// (or at until, whichever is smaller, if the horizon was hit).
func (e *Engine) Run(until Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			return
		}
		next := e.queue[0].at
		if next > until {
			e.now = until
			return
		}
		e.Step()
	}
}

// RunAll executes events until the queue is empty or Stop is called.
func (e *Engine) RunAll() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// Stop halts Run/RunAll after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of queued events (including cancelled ones not
// yet reaped — cancellation removes them eagerly so this is exact in
// practice).
func (e *Engine) Pending() int { return len(e.queue) }

// Dispatched reports the total number of events executed so far — the
// observability layer's "events dispatched" counter.
func (e *Engine) Dispatched() uint64 { return e.dispatched }
