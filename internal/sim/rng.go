package sim

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source with the distribution helpers the
// workload models need. Each consumer (application generator, client driver,
// scheduler jitter, …) should own its own stream, derived from the master
// seed, so that adding a new consumer does not perturb existing ones.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Reseed rewinds the stream to the state NewRNG(seed) starts in, without
// allocating — long-running consumers (the serving pipeline's periodic
// compaction) reuse one stream across deterministic episodes.
func (g *RNG) Reseed(seed int64) { g.r.Seed(seed) }

// Fork derives an independent child stream. The child's sequence depends
// only on the parent's seed and the label, not on how many values the parent
// has produced, when used via ForkLabeled; plain Fork consumes one value.
func (g *RNG) Fork() *RNG { return NewRNG(g.r.Int63()) }

// ForkLabeled derives a child stream from a stable label so that sibling
// consumers do not disturb each other's sequences.
func ForkLabeled(seed int64, label string) *RNG {
	h := uint64(seed)
	for _, c := range label {
		h = h*1099511628211 + uint64(c)
	}
	return NewRNG(int64(h & math.MaxInt64))
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform integer in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform int64 in [0,n).
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Uniform returns a uniform value in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// ClampedNormal draws Normal(mean, stddev) truncated into [lo,hi] by
// clamping. Clamping (rather than rejection) keeps the draw count per
// request fixed, which keeps workloads reproducible under model tweaks.
func (g *RNG) ClampedNormal(mean, stddev, lo, hi float64) float64 {
	v := g.Normal(mean, stddev)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Exp returns an exponentially distributed value with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// Pareto returns a bounded Pareto draw with shape alpha on [lo,hi]. Used for
// heavy-tailed object sizes (e.g., SPECweb file classes).
func (g *RNG) Pareto(alpha, lo, hi float64) float64 {
	u := g.r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// LogNormal returns exp(Normal(mu, sigma)).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Pick returns an index drawn from the discrete distribution given by
// weights (which need not be normalized). Pick panics if weights is empty or
// sums to zero.
func (g *RNG) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("sim: Pick requires positive total weight")
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }
