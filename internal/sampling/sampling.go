// Package sampling implements the paper's online tracking of request
// behavior variations (Section 3): hardware counter sampling at request
// context switches, at periodic (APIC) interrupts, at system call entrances
// — the paper's low-cost in-kernel scheme with a backup interrupt timer —
// and at behavior-transition-signal system calls only. It applies the
// paper's "do no harm" observer-effect compensation and accounts sampling
// overhead per Table 1's per-sample costs.
package sampling

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Mode selects the sampling strategy layered on top of the always-on
// request context switch sampling.
type Mode int

const (
	// CtxSwitchOnly samples only at request context switches — the minimum
	// needed for per-request accounting (inter-request variations only).
	CtxSwitchOnly Mode = iota
	// Interrupt adds periodic per-core interrupt sampling (Section 3.1).
	Interrupt
	// SyscallTriggered samples at system call entrances at least
	// TsyscallMin apart, with a backup interrupt at TbackupInt covering
	// system-call-free stretches (Section 3.2).
	SyscallTriggered
	// SignalTriggered is SyscallTriggered restricted to the system calls
	// most correlated with behavior transitions (Section 3.2, "Behavior
	// Transition Signals").
	SignalTriggered
)

func (m Mode) String() string {
	switch m {
	case CtxSwitchOnly:
		return "ctx-switch-only"
	case Interrupt:
		return "interrupt"
	case SyscallTriggered:
		return "syscall-triggered"
	case SignalTriggered:
		return "signal-triggered"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes a Tracker.
type Config struct {
	Mode Mode
	// Period is the periodic interrupt sampling interval (Interrupt mode).
	Period sim.Time
	// TsyscallMin is the minimum spacing between syscall-context samples.
	TsyscallMin sim.Time
	// TbackupInt is the backup interrupt delay, re-armed at every sample;
	// substantially larger than TsyscallMin so that no interrupts occur
	// while system calls are frequent.
	TbackupInt sim.Time
	// Signals is the trigger set for SignalTriggered mode.
	Signals map[string]bool
	// Compensate subtracts the minimum (Mbench-Spin) per-sample observer
	// effect from each measured period — the "do no harm" rule.
	Compensate bool
	// TrainSignals records before/after metric changes around every system
	// call to build Table 2's transition-signal statistics.
	TrainSignals bool
	// Bigrams keys transition-signal training and SignalTriggered triggers
	// by the previous and current call names ("poll>read") instead of the
	// name alone — the Section 3.2 improvement for calls that occur in many
	// semantic contexts.
	Bigrams bool
	// DiscardSyscallEvents skips recording the per-request system call
	// event stream. Sampling, triggering, and period attribution are
	// unaffected — only trace.Request.Syscalls stays empty — so analyses
	// that never read the syscall stream (e.g. the scheduling experiments,
	// which consume periods and co-execution meters only) avoid the
	// dominant trace-memory cost of long runs.
	DiscardSyscallEvents bool
}

// Counts tallies samples by context for overhead accounting.
type Counts struct {
	Kernel    uint64 // in-kernel samples (context switches, system calls)
	Interrupt uint64 // interrupt samples (periodic or backup)
}

// Per-sample time costs from the paper's Table 1 (Mbench-Spin: 1270 and
// 2276 cycles at 3 GHz). Exported so overhead accounting — here and in the
// observability layer's run reports — uses one set of numbers.
const (
	// KernelSampleCostNs is the cost of an in-kernel sample (context
	// switch or system call entrance): 0.42 µs.
	KernelSampleCostNs = 423.3
	// InterruptSampleCostNs is the cost of an interrupt sample, which pays
	// an extra user/kernel domain switch: 0.76 µs.
	InterruptSampleCostNs = 758.7
)

// OverheadNs estimates total sampling overhead using the paper's method:
// sample counts times the measured per-sample costs of Table 1.
func (c Counts) OverheadNs() float64 {
	return float64(c.Kernel)*KernelSampleCostNs + float64(c.Interrupt)*InterruptSampleCostNs
}

// Total returns the total number of samples.
func (c Counts) Total() uint64 { return c.Kernel + c.Interrupt }

type coreTrack struct {
	run      *kernel.RequestRun
	last     metrics.Counters
	lastTime sim.Time
	lastCtx  metrics.SampleContext
	// timer is the core's reusable sampling timer (periodic or backup
	// interrupt), bound once at tracker construction.
	timer *sim.Timer
	// pendingSignal holds a just-sampled syscall's key and the CPI of the
	// period before it, awaiting the after-period for signal training.
	pendingSignal string
	pendingBefore float64
	pendingValid  bool
	// bigrams tracks the previous call name for sequence-keyed signals.
	bigrams bigramState
}

// Tracker attaches to a kernel and maintains per-request traces online.
type Tracker struct {
	k     *kernel.Kernel
	cfg   Config
	store *trace.Store
	cores []*coreTrack

	traces  map[*kernel.RequestRun]*trace.Request
	trainer *SignalTrainer

	onPeriod   []func(run *kernel.RequestRun, tr *trace.Request, dur sim.Time, c metrics.Counters)
	onComplete []func(tr *trace.Request)

	// obs holds resolved observability handles (all nil when disabled).
	tobs struct {
		samples          *obs.SpanSeries // per-sample period spans
		kernelSamples    *obs.Counter
		interruptSamples *obs.Counter
	}

	// Counts tallies samples for overhead accounting.
	Counts Counts
}

// NewTracker builds a tracker and installs its hooks on the kernel. The
// kernel must not have other hooks installed; additional consumers should
// subscribe via OnPeriod/OnComplete.
func NewTracker(k *kernel.Kernel, cfg Config) *Tracker {
	t := &Tracker{
		k:      k,
		cfg:    cfg,
		store:  &trace.Store{},
		traces: map[*kernel.RequestRun]*trace.Request{},
	}
	if cfg.TrainSignals {
		t.trainer = NewSignalTrainer()
	}
	for i := 0; i < k.Machine().NumCores(); i++ {
		core := i
		ct := &coreTrack{}
		ct.timer = k.NewTimer(core, func() { t.timerFired(core) })
		t.cores = append(t.cores, ct)
	}
	k.SetHooks(kernel.Hooks{
		SwitchIn:    t.switchIn,
		SwitchOut:   t.switchOut,
		Syscall:     t.syscall,
		RequestDone: t.requestDone,
	})
	return t
}

// SetObserver attaches the observability collector, resolving the
// per-sample span series (honoring the collector's sampling mode — the
// sample level is the highest-frequency series) and sample counters. A nil
// collector leaves the tracker uninstrumented. The span durations are the
// attributed period lengths already computed for the trace, read off the
// virtual clock, so instrumentation cannot perturb measurements.
func (t *Tracker) SetObserver(c *obs.Collector) {
	if c == nil {
		return
	}
	t.tobs.samples = c.SampledSpan("request", "phase", "sample")
	t.tobs.kernelSamples = c.Counter("sampling.kernel_samples")
	t.tobs.interruptSamples = c.Counter("sampling.interrupt_samples")
}

// Kernel returns the kernel this tracker is attached to.
func (t *Tracker) Kernel() *kernel.Kernel { return t.k }

// Store returns the collected request traces.
func (t *Tracker) Store() *trace.Store { return t.store }

// Trainer returns the transition-signal trainer (nil unless TrainSignals).
func (t *Tracker) Trainer() *SignalTrainer { return t.trainer }

// OnPeriod subscribes to every attributed period as it is recorded; the
// contention-easing scheduler's online predictors consume this.
func (t *Tracker) OnPeriod(fn func(run *kernel.RequestRun, tr *trace.Request, dur sim.Time, c metrics.Counters)) {
	t.onPeriod = append(t.onPeriod, fn)
}

// OnComplete subscribes to request trace completion.
func (t *Tracker) OnComplete(fn func(tr *trace.Request)) {
	t.onComplete = append(t.onComplete, fn)
}

// traceFor lazily creates the request's trace.
func (t *Tracker) traceFor(run *kernel.RequestRun) *trace.Request {
	tr := t.traces[run]
	if tr == nil {
		req := run.Req
		tr = &trace.Request{
			ID:        req.ID,
			App:       req.App,
			Type:      req.Type,
			TypeIndex: req.TypeIndex,
			Start:     run.Start,
		}
		t.traces[run] = tr
	}
	return tr
}

// sample reads the counters in the given context and attributes the period
// since the previous sample to the core's current request.
func (t *Tracker) sample(core int, ctx metrics.SampleContext) {
	ct := t.cores[core]
	run := ct.run
	if run == nil {
		return
	}
	now := t.k.Engine().Now()
	snap := t.k.Sample(core, ctx)
	switch ctx {
	case metrics.CtxKernel:
		t.Counts.Kernel++
		if t.tobs.kernelSamples != nil {
			t.tobs.kernelSamples.Add(1)
		}
	case metrics.CtxInterrupt:
		t.Counts.Interrupt++
		if t.tobs.interruptSamples != nil {
			t.tobs.interruptSamples.Add(1)
		}
	}
	delta := snap.Sub(ct.last)
	if t.cfg.Compensate {
		// The previous sample's own events landed in this period; subtract
		// the minimum per-sample effect (never over-compensating).
		delta = delta.Sub(t.k.Machine().MinObserverEvents(ct.lastCtx))
	}
	dur := now - ct.lastTime
	if t.tobs.samples != nil {
		t.tobs.samples.Observe(dur)
	}
	tr := t.traceFor(run)
	tr.AddPeriod(dur, delta)
	for _, fn := range t.onPeriod {
		fn(run, tr, dur, delta)
	}
	// Signal training: the delta just recorded is the "after" period of a
	// pending syscall observation.
	if ct.pendingValid && t.trainer != nil {
		after := delta.Value(metrics.CPI)
		if delta.Instructions > 0 {
			t.trainer.Record(ct.pendingSignal, after-ct.pendingBefore)
		}
		ct.pendingValid = false
	}
	ct.last = snap
	ct.lastTime = now
	ct.lastCtx = ctx
}

// baseline establishes a fresh sampling baseline at switch-in without
// attributing a period.
func (t *Tracker) baseline(core int) {
	ct := t.cores[core]
	ct.last = t.k.Sample(core, metrics.CtxKernel)
	ct.lastTime = t.k.Engine().Now()
	ct.lastCtx = metrics.CtxKernel
	ct.pendingValid = false
	t.Counts.Kernel++
	if t.tobs.kernelSamples != nil {
		t.tobs.kernelSamples.Add(1)
	}
}

func (t *Tracker) switchIn(core int, run *kernel.RequestRun) {
	ct := t.cores[core]
	ct.run = run
	ct.bigrams.reset()
	t.baseline(core)
	t.armTimer(core)
}

func (t *Tracker) switchOut(core int, run *kernel.RequestRun) {
	ct := t.cores[core]
	if ct.run != run {
		return
	}
	t.sample(core, metrics.CtxKernel)
	ct.run = nil
	ct.timer.Stop()
}

func (t *Tracker) syscall(core int, run *kernel.RequestRun, name string) {
	ct := t.cores[core]
	if ct.run != run {
		return
	}
	now := t.k.Engine().Now()
	if !t.cfg.DiscardSyscallEvents {
		tr := t.traceFor(run)
		cpu := tr.CPUTime() + (now - ct.lastTime)
		tr.AddSyscall(name, run.InstructionsDone(), cpu)
	}

	key := name
	if t.cfg.Bigrams {
		key = ct.bigrams.next(name)
	}
	trigger := false
	switch t.cfg.Mode {
	case SyscallTriggered:
		trigger = true
	case SignalTriggered:
		trigger = t.cfg.Signals[key] || t.cfg.Signals[name]
	}
	if t.cfg.TrainSignals {
		trigger = true
	}
	if !trigger || now-ct.lastTime < t.cfg.TsyscallMin {
		return
	}
	beforeStart := ct.last
	t.sample(core, metrics.CtxKernel)
	if t.cfg.TrainSignals {
		// Stash this syscall and the CPI of the period that just closed as
		// the "before" level; the next sample closes the "after" period.
		before := ct.last.Sub(beforeStart)
		if before.Instructions > 0 {
			ct.pendingSignal = key
			ct.pendingBefore = before.Value(metrics.CPI)
			ct.pendingValid = true
		}
	}
	t.armTimer(core)
}

func (t *Tracker) requestDone(run *kernel.RequestRun) {
	tr := t.traceFor(run)
	tr.End = run.End
	delete(t.traces, run)
	t.store.Add(tr)
	for _, fn := range t.onComplete {
		fn(tr)
	}
}

// armTimer arms the mode's timer: the periodic sampling interrupt or the
// backup interrupt of syscall-triggered sampling.
func (t *Tracker) armTimer(core int) {
	ct := t.cores[core]
	var d sim.Time
	switch t.cfg.Mode {
	case Interrupt:
		d = t.cfg.Period
	case SyscallTriggered, SignalTriggered:
		d = t.cfg.TbackupInt
	default:
		ct.timer.Stop()
		return
	}
	if d <= 0 {
		ct.timer.Stop()
		return
	}
	ct.timer.Arm(d)
}

func (t *Tracker) timerFired(core int) {
	ct := t.cores[core]
	if ct.run != nil {
		t.sample(core, metrics.CtxInterrupt)
	}
	t.armTimer(core)
}
