package sampling

import (
	"math"
	"sort"
)

// SignalStat summarizes one system call name's correlation with behavior
// transitions: the mean and standard deviation of the target metric's
// change over the periods before and after the call's occurrences — the
// rows of the paper's Table 2.
type SignalStat struct {
	Name string
	Mean float64
	Std  float64
	N    int
}

// Increase reports whether the call signals a metric increase on average.
func (s SignalStat) Increase() bool { return s.Mean >= 0 }

// welford maintains an online mean/variance (Welford's algorithm), the
// "continuously maintain the average and standard deviation" the paper
// describes for online training.
type welford struct {
	n    int
	mean float64
	m2   float64
}

func (w *welford) add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

func (w *welford) std() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n))
}

// SignalTrainer learns, per system call name, the distribution of
// subsequent metric changes during an online training run.
type SignalTrainer struct {
	stats map[string]*welford
}

// NewSignalTrainer returns an empty trainer.
func NewSignalTrainer() *SignalTrainer {
	return &SignalTrainer{stats: map[string]*welford{}}
}

// Record adds one observed before→after metric change for a call name.
func (t *SignalTrainer) Record(name string, delta float64) {
	w := t.stats[name]
	if w == nil {
		w = &welford{}
		t.stats[name] = w
	}
	w.add(delta)
}

// Stats returns per-name statistics ordered by decreasing |mean| change —
// Table 2's presentation order (most significant transition signals first).
func (t *SignalTrainer) Stats() []SignalStat {
	out := make([]SignalStat, 0, len(t.stats))
	for name, w := range t.stats { // maporder:ok fully sorted immediately below
		out = append(out, SignalStat{Name: name, Mean: w.mean, Std: w.std(), N: w.n})
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := math.Abs(out[i].Mean), math.Abs(out[j].Mean)
		if ai != aj {
			return ai > aj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Select returns the k call names most correlated with behavior transitions
// (largest |mean| change, requiring a minimum number of observations), as a
// trigger set for SignalTriggered sampling.
func (t *SignalTrainer) Select(k, minObservations int) map[string]bool {
	out := map[string]bool{}
	for _, s := range t.Stats() {
		if len(out) >= k {
			break
		}
		if s.N >= minObservations {
			out[s.Name] = true
		}
	}
	return out
}
