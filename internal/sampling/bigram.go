package sampling

// Section 3.2 notes that a single system call name is a weak transition
// signal when calls of that name occur in many semantic contexts, and
// suggests "employing more complex signals like a sequence of two or more
// recent system call names". This file implements that extension: bigram
// signals keyed by the previous and current call names.
//
// The canonical case is the web server's read: the read that follows poll
// pulls in a fresh HTTP request and precedes a CPI jump, while a read
// inside the parse loop changes nothing. The unigram "read" statistic blurs
// the two; the bigrams "poll>read" and "read>read" separate them.

// BigramKey builds the trainer/trigger key for a call sequence. An empty
// previous name (request start or post-switch) yields just the name, so
// unigram statistics remain available under their plain keys.
func BigramKey(prev, name string) string {
	if prev == "" {
		return name
	}
	return prev + ">" + name
}

// bigramState tracks the previous system call per core for bigram keying.
type bigramState struct {
	prev string
}

func (b *bigramState) next(name string) (key string) {
	key = BigramKey(b.prev, name)
	b.prev = name
	return key
}

func (b *bigramState) reset() { b.prev = "" }
