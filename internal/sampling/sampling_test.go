package sampling

import (
	"math"
	"testing"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runTracked executes a load with a tracker attached.
func runTracked(t *testing.T, app workload.App, concurrency, requests int, cfg Config) *Tracker {
	t.Helper()
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig())
	tk := NewTracker(k, cfg)
	d := kernel.NewDriver(k, kernel.LoadConfig{
		App: app, Concurrency: concurrency, Requests: requests, Seed: 42,
	})
	d.Start()
	eng.RunAll()
	if d.Completed() != requests {
		t.Fatalf("completed %d/%d", d.Completed(), requests)
	}
	if tk.Store().Len() != requests {
		t.Fatalf("traced %d/%d requests", tk.Store().Len(), requests)
	}
	return tk
}

func TestCtxSwitchOnlyTracksWholeRequests(t *testing.T) {
	tk := runTracked(t, workload.NewWebServer(), 1, 20, Config{Mode: CtxSwitchOnly, Compensate: true})
	for _, tr := range tk.Store().Traces {
		if len(tr.Periods) == 0 {
			t.Fatal("trace with no periods")
		}
		if tr.Instructions() == 0 {
			t.Fatal("trace with no instructions")
		}
		cpi := tr.MetricValue(metrics.CPI)
		if cpi < 0.8 || cpi > 6 {
			t.Fatalf("implausible request CPI %v", cpi)
		}
		if tr.CPUTime() <= 0 {
			t.Fatal("non-positive CPU time")
		}
	}
}

func TestInterruptSamplingAddsPeriods(t *testing.T) {
	coarse := runTracked(t, workload.NewTPCC(), 1, 10, Config{Mode: CtxSwitchOnly, Compensate: true})
	fine := runTracked(t, workload.NewTPCC(), 1, 10, Config{Mode: Interrupt, Period: 100 * sim.Microsecond, Compensate: true})
	var nCoarse, nFine int
	for i := range coarse.Store().Traces {
		nCoarse += len(coarse.Store().Traces[i].Periods)
		nFine += len(fine.Store().Traces[i].Periods)
	}
	if nFine <= nCoarse*2 {
		t.Fatalf("interrupt sampling should multiply periods: %d vs %d", nFine, nCoarse)
	}
	if fine.Counts.Interrupt == 0 {
		t.Fatal("no interrupt samples counted")
	}
}

func TestIntraRequestVariationCaptured(t *testing.T) {
	// With fine sampling, the per-request CPI series should show variation
	// (web requests have strongly phased behavior).
	tk := runTracked(t, workload.NewWebServer(), 1, 20, Config{Mode: Interrupt, Period: 10 * sim.Microsecond, Compensate: true})
	var covs []float64
	for _, tr := range tk.Store().Traces {
		s := tr.Series(metrics.CPI, 0)
		if s.Len() >= 3 {
			covs = append(covs, s.CoV())
		}
	}
	if len(covs) == 0 {
		t.Fatal("no multi-period traces")
	}
	if stats.Mean(covs) < 0.1 {
		t.Fatalf("intra-request CPI CoV %.3f too small — phases not captured", stats.Mean(covs))
	}
}

func TestSyscallTriggeredAvoidsInterrupts(t *testing.T) {
	// The web server's syscalls are so frequent that with a proper
	// Tbackup >> TsyscallMin, backup interrupts should (almost) never fire.
	tk := runTracked(t, workload.NewWebServer(), 1, 30, Config{
		Mode:        SyscallTriggered,
		TsyscallMin: 8 * sim.Microsecond,
		TbackupInt:  200 * sim.Microsecond,
		Compensate:  true,
	})
	if tk.Counts.Kernel == 0 {
		t.Fatal("no kernel-context samples")
	}
	frac := float64(tk.Counts.Interrupt) / float64(tk.Counts.Total())
	if frac > 0.05 {
		t.Fatalf("backup interrupts fired for %.1f%% of samples on a syscall-heavy app", frac*100)
	}
}

func TestBackupTimerCoversSyscallFreeStretches(t *testing.T) {
	// WeBWorK has long syscall-free computations: the backup timer must
	// produce samples there.
	tk := runTracked(t, workload.NewWeBWorK(), 1, 2, Config{
		Mode:        SyscallTriggered,
		TsyscallMin: 300 * sim.Microsecond,
		TbackupInt:  sim.Millisecond,
		Compensate:  true,
	})
	if tk.Counts.Interrupt == 0 {
		t.Fatal("backup interrupts never fired on a compute-heavy app")
	}
}

func TestSignalTriggeredRestrictsTriggers(t *testing.T) {
	all := runTracked(t, workload.NewWebServer(), 1, 30, Config{
		Mode:        SyscallTriggered,
		TsyscallMin: 0,
		TbackupInt:  500 * sim.Microsecond,
		Compensate:  true,
	})
	subset := runTracked(t, workload.NewWebServer(), 1, 30, Config{
		Mode:        SignalTriggered,
		TsyscallMin: 0,
		TbackupInt:  500 * sim.Microsecond,
		Signals:     map[string]bool{"writev": true, "lseek": true},
		Compensate:  true,
	})
	if subset.Counts.Kernel >= all.Counts.Kernel {
		t.Fatalf("signal-restricted sampling should sample less: %d vs %d",
			subset.Counts.Kernel, all.Counts.Kernel)
	}
}

func TestSyscallEventsRecorded(t *testing.T) {
	tk := runTracked(t, workload.NewWebServer(), 1, 5, Config{Mode: CtxSwitchOnly})
	for _, tr := range tk.Store().Traces {
		if len(tr.Syscalls) < 5 {
			t.Fatalf("web trace has only %d syscalls", len(tr.Syscalls))
		}
		// Positions must be non-decreasing.
		for i := 1; i < len(tr.Syscalls); i++ {
			if tr.Syscalls[i].Ins < tr.Syscalls[i-1].Ins {
				t.Fatal("syscall instruction positions not monotone")
			}
			if tr.Syscalls[i].CPUTime < tr.Syscalls[i-1].CPUTime {
				t.Fatal("syscall CPU time positions not monotone")
			}
		}
		names := tr.SyscallNames()
		found := false
		for _, n := range names {
			if n == "writev" {
				found = true
			}
		}
		if !found {
			t.Fatal("writev missing from web syscall trace")
		}
	}
}

func TestCompensationReducesBias(t *testing.T) {
	// Sampling at very fine grain inflates measured CPI via the observer
	// effect; compensation should bring it back toward the coarse-grained
	// measurement.
	run := func(compensate bool) float64 {
		eng := sim.NewEngine()
		k := kernel.New(eng, kernel.DefaultConfig())
		tk := NewTracker(k, Config{Mode: Interrupt, Period: 10 * sim.Microsecond, Compensate: compensate})
		d := kernel.NewDriver(k, kernel.LoadConfig{
			App: workload.NewTPCC(), Concurrency: 1, Requests: 10, Seed: 7,
		})
		d.Start()
		eng.RunAll()
		var vals []float64
		for _, tr := range tk.Store().Traces {
			vals = append(vals, tr.MetricValue(metrics.CPI))
		}
		return stats.Mean(vals)
	}
	raw := run(false)
	comp := run(true)
	if comp >= raw {
		t.Fatalf("compensated CPI %.4f should be below raw %.4f", comp, raw)
	}
}

func TestSignalTrainerTable2Shape(t *testing.T) {
	tk := runTracked(t, workload.NewWebServer(), 1, 120, Config{
		Mode:         SyscallTriggered,
		TsyscallMin:  0,
		TbackupInt:   sim.Millisecond,
		Compensate:   true,
		TrainSignals: true,
	})
	st := tk.Trainer().Stats()
	if len(st) < 5 {
		t.Fatalf("trained only %d syscall names", len(st))
	}
	byName := map[string]SignalStat{}
	for _, s := range st {
		byName[s.Name] = s
	}
	// Table 2's strongest signals: writev → large increase, lseek → decrease.
	wv, ok := byName["writev"]
	if !ok || !wv.Increase() || wv.Mean < 1.0 {
		t.Fatalf("writev should signal a strong CPI increase, got %+v", wv)
	}
	ls, ok := byName["lseek"]
	if !ok || ls.Increase() {
		t.Fatalf("lseek should signal a CPI decrease, got %+v", ls)
	}
	stt, ok := byName["stat"]
	if !ok || stt.Increase() {
		t.Fatalf("stat should signal a CPI decrease, got %+v", stt)
	}
	// Selection picks the largest |mean| names.
	sel := tk.Trainer().Select(4, 10)
	if !sel["writev"] {
		t.Fatalf("writev must be among selected signals: %v", sel)
	}
}

func TestOverheadAccounting(t *testing.T) {
	tk := runTracked(t, workload.NewTPCC(), 1, 5, Config{Mode: Interrupt, Period: 100 * sim.Microsecond})
	if tk.Counts.Total() == 0 {
		t.Fatal("no samples")
	}
	oh := tk.Counts.OverheadNs()
	if oh <= 0 {
		t.Fatal("no overhead accounted")
	}
	// Interrupt samples cost more than kernel samples per unit.
	perSample := oh / float64(tk.Counts.Total())
	if perSample < 400 || perSample > 800 {
		t.Fatalf("per-sample overhead %.0f ns outside Table 1 range", perSample)
	}
}

func TestTraceTotalsMatchKernelProgress(t *testing.T) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig())
	tk := NewTracker(k, Config{Mode: CtxSwitchOnly}) // no compensation: raw counts
	var runs []*kernel.RequestRun
	k.OnRequestDone(func(r *kernel.RequestRun) { runs = append(runs, r) })
	d := kernel.NewDriver(k, kernel.LoadConfig{
		App: workload.NewTPCC(), Concurrency: 1, Requests: 5, Seed: 3,
	})
	d.Start()
	eng.RunAll()
	for i, tr := range tk.Store().Traces {
		run := runs[i]
		// Trace instructions = app instructions + injected kernel work, so
		// they must be >= app progress but within a modest envelope.
		app := run.InstructionsDone()
		got := float64(tr.Instructions())
		if got < app*0.95 {
			t.Fatalf("trace lost instructions: %v < %v", got, app)
		}
		if got > app*1.3 {
			t.Fatalf("trace inflated instructions: %v vs app %v", got, app)
		}
	}
}

func TestWelford(t *testing.T) {
	w := &welford{}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.add(x)
	}
	if math.Abs(w.mean-5) > 1e-9 || math.Abs(w.std()-2) > 1e-9 {
		t.Fatalf("welford mean/std = %v/%v, want 5/2", w.mean, w.std())
	}
	var w2 welford
	w2.add(3)
	if w2.std() != 0 {
		t.Fatal("single-sample std should be 0")
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		CtxSwitchOnly: "ctx-switch-only", Interrupt: "interrupt",
		SyscallTriggered: "syscall-triggered", SignalTriggered: "signal-triggered",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
}

func TestStoreHelpers(t *testing.T) {
	tk := runTracked(t, workload.NewTPCC(), 1, 30, Config{Mode: CtxSwitchOnly})
	st := tk.Store()
	byType := st.ByType()
	if len(byType) < 2 {
		t.Fatalf("expected multiple TPCC types, got %d", len(byType))
	}
	if len(st.MetricValues(metrics.CPI)) != 30 || len(st.CPUTimes()) != 30 {
		t.Fatal("store extraction lengths wrong")
	}
	var _ = trace.Store{} // keep import
}

func TestMultiTierTraceContinuity(t *testing.T) {
	// A RUBiS request's trace must stitch periods from all the processes
	// (and cores) it traversed: totals match kernel progress and syscall
	// streams include the socket hops.
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig())
	tk := NewTracker(k, Config{Mode: CtxSwitchOnly})
	var runs []*kernel.RequestRun
	k.OnRequestDone(func(r *kernel.RequestRun) { runs = append(runs, r) })
	d := kernel.NewDriver(k, kernel.LoadConfig{
		App: workload.NewRUBiS(), Concurrency: 4, Requests: 20, Seed: 8,
	})
	d.Start()
	eng.RunAll()
	byID := map[uint64]*kernel.RequestRun{}
	for _, r := range runs {
		byID[r.Req.ID] = r
	}
	for _, tr := range tk.Store().Traces {
		run := byID[tr.ID]
		app := run.InstructionsDone()
		got := float64(tr.Instructions())
		if got < app*0.95 || got > app*1.3 {
			t.Fatalf("multi-tier trace %d: %v instructions vs kernel %v", tr.ID, got, app)
		}
		var hops int
		for _, s := range tr.Syscalls {
			if s.Name == "sendto" {
				hops++
			}
		}
		if hops == 0 {
			t.Fatalf("trace %d recorded no socket hops", tr.ID)
		}
	}
}

func TestDegenerateSamplingConfigsStillTrace(t *testing.T) {
	// Pathological configurations must degrade gracefully, never stall.
	configs := []Config{
		{Mode: Interrupt, Period: 0},                                       // periodic with no period
		{Mode: SyscallTriggered, TsyscallMin: sim.Second, TbackupInt: 0},   // nothing ever triggers
		{Mode: SignalTriggered, Signals: nil, TbackupInt: sim.Millisecond}, // empty trigger set
	}
	for i, cfg := range configs {
		eng := sim.NewEngine()
		k := kernel.New(eng, kernel.DefaultConfig())
		tk := NewTracker(k, cfg)
		d := kernel.NewDriver(k, kernel.LoadConfig{
			App: workload.NewWebServer(), Concurrency: 2, Requests: 10, Seed: 9,
		})
		d.Start()
		eng.RunAll()
		if tk.Store().Len() != 10 {
			t.Fatalf("config %d: traced %d/10", i, tk.Store().Len())
		}
		for _, tr := range tk.Store().Traces {
			if tr.Instructions() == 0 {
				t.Fatalf("config %d: empty trace", i)
			}
		}
	}
}
