package sampling

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/workload"
)

// BenchmarkTrackedLoad measures the tracking layer's cost on top of the
// kernel simulation (compare with kernel.BenchmarkWebLoad).
func BenchmarkTrackedLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		k := kernel.New(eng, kernel.DefaultConfig())
		tk := NewTracker(k, Config{Mode: Interrupt, Period: 10 * sim.Microsecond, Compensate: true})
		d := kernel.NewDriver(k, kernel.LoadConfig{
			App: workload.NewWebServer(), Concurrency: 8, Requests: 200, Seed: 1,
		})
		d.Start()
		eng.RunAll()
		if tk.Store().Len() != 200 {
			b.Fatal("incomplete")
		}
	}
}
