package sampling

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestBigramKey(t *testing.T) {
	if got := BigramKey("", "read"); got != "read" {
		t.Fatalf("no-prev key = %q", got)
	}
	if got := BigramKey("poll", "read"); got != "poll>read" {
		t.Fatalf("bigram key = %q", got)
	}
	var s bigramState
	if s.next("poll") != "poll" {
		t.Fatal("first call should be unigram-keyed")
	}
	if s.next("read") != "poll>read" {
		t.Fatal("second call should be bigram-keyed")
	}
	s.reset()
	if s.next("read") != "read" {
		t.Fatal("reset should clear the previous name")
	}
}

// TestBigramSeparatesContexts demonstrates the Section 3.2 improvement on
// its canonical case: in the web server, the read following poll starts
// request parsing (a CPI increase), while reads inside the parse loop
// change nothing. Unigram training blurs them; bigram training separates
// them.
func TestBigramSeparatesContexts(t *testing.T) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig())
	tk := NewTracker(k, Config{
		Mode:         SyscallTriggered,
		TsyscallMin:  0,
		TbackupInt:   500 * sim.Microsecond,
		Compensate:   true,
		TrainSignals: true,
		Bigrams:      true,
	})
	d := kernel.NewDriver(k, kernel.LoadConfig{
		App: workload.NewWebServer(), Concurrency: 1, Requests: 150, Seed: 4,
	})
	d.Start()
	eng.RunAll()

	stats := map[string]SignalStat{}
	for _, s := range tk.Trainer().Stats() {
		stats[s.Name] = s
	}
	pollRead, ok1 := stats["poll>read"]
	readRead, ok2 := stats["read>read"]
	if !ok1 || !ok2 {
		t.Fatalf("bigram stats missing: %v %v (have %d signals)", ok1, ok2, len(stats))
	}
	if !pollRead.Increase() {
		t.Fatalf("poll>read should signal an increase: %+v", pollRead)
	}
	// The parse-internal read is a much weaker signal than the
	// request-start read.
	if pollRead.Mean < readRead.Mean+0.3 {
		t.Fatalf("bigrams did not separate read contexts: poll>read %.2f vs read>read %.2f",
			pollRead.Mean, readRead.Mean)
	}
	// The blurred unigram (trained separately) sits between the two.
	tk2 := trainUnigrams(t)
	read, ok := tk2["read"]
	if !ok {
		t.Fatal("unigram read missing")
	}
	if !(read.Mean < pollRead.Mean && read.Mean > readRead.Mean-0.05) {
		t.Fatalf("unigram read (%.2f) should blur poll>read (%.2f) and read>read (%.2f)",
			read.Mean, pollRead.Mean, readRead.Mean)
	}
}

func trainUnigrams(t *testing.T) map[string]SignalStat {
	t.Helper()
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig())
	tk := NewTracker(k, Config{
		Mode:         SyscallTriggered,
		TsyscallMin:  0,
		TbackupInt:   500 * sim.Microsecond,
		Compensate:   true,
		TrainSignals: true,
	})
	d := kernel.NewDriver(k, kernel.LoadConfig{
		App: workload.NewWebServer(), Concurrency: 1, Requests: 150, Seed: 4,
	})
	d.Start()
	eng.RunAll()
	out := map[string]SignalStat{}
	for _, s := range tk.Trainer().Stats() {
		out[s.Name] = s
	}
	return out
}

func TestBigramTriggersFireOnSequence(t *testing.T) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig())
	tk := NewTracker(k, Config{
		Mode:        SignalTriggered,
		TsyscallMin: 0,
		TbackupInt:  sim.Millisecond,
		Signals:     map[string]bool{"poll>read": true},
		Bigrams:     true,
		Compensate:  true,
	})
	d := kernel.NewDriver(k, kernel.LoadConfig{
		App: workload.NewWebServer(), Concurrency: 1, Requests: 20, Seed: 2,
	})
	d.Start()
	eng.RunAll()
	// Only the poll>read sequence triggers: roughly one kernel-context
	// syscall sample per request beyond the context switch pair.
	perReq := float64(tk.Counts.Kernel) / 20
	if perReq < 2 || perReq > 6 {
		t.Fatalf("bigram-triggered kernel samples per request = %.1f, want a handful", perReq)
	}
}
