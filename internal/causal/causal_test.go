package causal

import (
	"strings"
	"testing"

	"repro/internal/distributed"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
)

// exec builds an execution step with the given CPI and ns-per-cycle on
// one million instructions.
func exec(node, tier int, cpi, npc float64) *obs.CausalNode {
	const ins = 1_000_000
	cycles := uint64(cpi * ins)
	return &obs.CausalNode{
		Kind: obs.CausalExec, Node: node, Tier: tier,
		CPUTime: sim.Time(npc * float64(cycles)), Instructions: ins, Cycles: cycles,
	}
}

func hop(node, tier int, dur sim.Time, timeouts int) *obs.CausalNode {
	return &obs.CausalNode{
		Kind: obs.CausalHop, Node: node, Tier: tier,
		Dur: dur, Timeouts: timeouts, Retries: timeouts,
	}
}

func mkTrace(id uint64, typ string, steps ...*obs.CausalNode) *distributed.Trace {
	t := &distributed.Trace{ID: id, Type: typ, Path: obs.NewCausalPath(id, typ, 0)}
	for _, s := range steps {
		t.Path.Root.Add(s)
	}
	return t
}

// cleanSet is a small clean population: CPI up to 1.5, ns/cycle up to
// 0.4, hops up to 400µs.
func cleanSet() []*distributed.Trace {
	return []*distributed.Trace{
		mkTrace(1, "browse", exec(0, 0, 1.2, 0.35), hop(1, 1, 200*sim.Microsecond, 0), exec(1, 1, 1.5, 0.40)),
		mkTrace(2, "browse", exec(0, 0, 1.4, 0.38), hop(1, 1, 400*sim.Microsecond, 0), exec(1, 1, 1.3, 0.36)),
		mkTrace(3, "bid", exec(2, 2, 1.1, 0.34)),
	}
}

// testRetry mirrors the defaults a 200µs-hop cluster resolves to.
var testRetry = distributed.RetryConfig{
	Enabled: true, MaxRetries: 3,
	HopTimeout: 800 * sim.Microsecond,
	Backoff:    200 * sim.Microsecond,
	BackoffCap: 1600 * sim.Microsecond,
}

func localizer(t *testing.T) *Localizer {
	t.Helper()
	return NewLocalizer(NewBaseline(cleanSet()), testRetry, Config{})
}

func TestBaselineStats(t *testing.T) {
	b := NewBaseline(cleanSet())
	eb := b.Exec("browse", 0)
	if eb == nil || eb.N != 2 {
		t.Fatalf("browse tier 0 baseline: %+v", eb)
	}
	if eb.MaxCPI != 1.4 {
		t.Fatalf("MaxCPI %v, want 1.4", eb.MaxCPI)
	}
	if b.Exec("browse", 2) != nil || b.Exec("bid", 0) != nil {
		t.Fatal("baseline invented cells the clean run never executed")
	}
	if b.HopN != 2 || b.HopMaxNs != float64(400*sim.Microsecond) {
		t.Fatalf("hop stats: n=%d max=%v", b.HopN, b.HopMaxNs)
	}
	if b.HopMeanNs != float64(300*sim.Microsecond) {
		t.Fatalf("hop mean %v, want 300µs", b.HopMeanNs)
	}
}

// TestLocalizeCleanIsSilent: the clean population judged against its own
// baseline yields no causes.
func TestLocalizeCleanIsSilent(t *testing.T) {
	l := localizer(t)
	for _, tr := range cleanSet() {
		if causes := l.Localize(tr); len(causes) != 0 {
			t.Fatalf("clean trace %d got causes %v", tr.ID, causes)
		}
	}
}

func TestLocalizeSlowdownVsPollution(t *testing.T) {
	l := localizer(t)
	// Stretched ns/cycle at clean CPI: a DVFS slowdown on node 0.
	slow := mkTrace(10, "browse", exec(0, 0, 1.2, 0.95))
	causes := l.Localize(slow)
	if len(causes) != 1 || causes[0].Kind != fault.NodeSlowdown || causes[0].Node != 0 || causes[0].Tier != 0 {
		t.Fatalf("slowdown causes: %v", causes)
	}
	// Inflated CPI at clean ns/cycle: pollution on tier 1.
	pol := mkTrace(11, "browse", exec(1, 1, 3.0, 0.36))
	causes = l.Localize(pol)
	if len(causes) != 1 || causes[0].Kind != fault.PollutionBurst || causes[0].Tier != 1 {
		t.Fatalf("pollution causes: %v", causes)
	}
	// Both at once on the same segment: two distinct claims.
	both := mkTrace(12, "browse", exec(1, 1, 3.0, 0.95))
	causes = l.Localize(both)
	if len(causes) != 2 || causes[0].Kind != fault.NodeSlowdown || causes[1].Kind != fault.PollutionBurst {
		t.Fatalf("combined causes: %v", causes)
	}
}

func TestLocalizeHopRules(t *testing.T) {
	l := localizer(t)
	// Timeout-free delivery far beyond the clean max: a delay spike.
	spike := mkTrace(20, "browse", hop(1, 1, 1500*sim.Microsecond, 0))
	causes := l.Localize(spike)
	if len(causes) != 1 || causes[0].Kind != fault.HopDelay || causes[0].Node != 1 || causes[0].Tier != -1 {
		t.Fatalf("spike causes: %v", causes)
	}
	// One timeout, delivery just past the 1000µs retry schedule with a
	// clean-sized residual: the resend flew clean — a drop.
	drop := mkTrace(21, "browse", hop(1, 1, 1200*sim.Microsecond, 1))
	causes = l.Localize(drop)
	if len(causes) != 1 || causes[0].Kind != fault.HopDrop {
		t.Fatalf("drop causes: %v", causes)
	}
	// One timeout but a residual far beyond a clean draw (schedule 1000µs,
	// residual 2000µs > 3×300µs mean): the delivering attempt was slow too.
	slowRetry := mkTrace(22, "browse", hop(1, 1, 3000*sim.Microsecond, 1))
	causes = l.Localize(slowRetry)
	if len(causes) != 1 || causes[0].Kind != fault.HopDelay {
		t.Fatalf("slow-retry causes: %v", causes)
	}
	// A timeout whose primary still delivered before the retry schedule,
	// inside the clean envelope: natural tail latency, no claim.
	natural := mkTrace(23, "browse", hop(1, 1, 450*sim.Microsecond, 1))
	if causes = l.Localize(natural); len(causes) != 0 {
		t.Fatalf("natural timeout causes: %v", causes)
	}
	// An undelivered hop (run ended first) never claims.
	undelivered := mkTrace(24, "browse", hop(1, 1, 0, 2))
	if causes = l.Localize(undelivered); len(causes) != 0 {
		t.Fatalf("undelivered hop causes: %v", causes)
	}
}

// TestLocalizeUnknownCell: execution in a (type, tier) the clean run never
// saw cannot be judged — no baseline, no claim.
func TestLocalizeUnknownCell(t *testing.T) {
	l := localizer(t)
	tr := mkTrace(30, "bid", exec(1, 1, 9.0, 2.0))
	if causes := l.Localize(tr); len(causes) != 0 {
		t.Fatalf("unknown-cell causes: %v", causes)
	}
}

// TestLocalizeDedupe: repeated deviations of the same (kind, node, tier)
// collapse to the strongest claim, in deterministic order.
func TestLocalizeDedupe(t *testing.T) {
	l := localizer(t)
	tr := mkTrace(40, "browse",
		exec(0, 0, 1.2, 0.80),
		exec(0, 0, 1.2, 1.20),
		hop(1, 1, 1500*sim.Microsecond, 0),
	)
	causes := l.Localize(tr)
	if len(causes) != 2 {
		t.Fatalf("deduped causes: %v", causes)
	}
	if causes[0].Kind != fault.NodeSlowdown || causes[1].Kind != fault.HopDelay {
		t.Fatalf("cause order: %v", causes)
	}
	// The stronger of the two slowdown scores survives: 1.20/0.38 ≈ 3.16.
	if causes[0].Score < 3 {
		t.Fatalf("dedupe kept the weaker score: %v", causes[0])
	}
}

func TestLocalizeAll(t *testing.T) {
	l := localizer(t)
	dirty := []*distributed.Trace{
		mkTrace(50, "browse", exec(0, 0, 1.2, 0.95)),
		mkTrace(51, "browse", exec(0, 0, 1.2, 0.35)), // clean
	}
	out := l.LocalizeAll(dirty)
	if len(out) != 1 || len(out[50]) != 1 {
		t.Fatalf("LocalizeAll: %v", out)
	}
}

// TestCausalPathString pins the rendering's shape (the golden corpus never
// embeds paths, but debugging output must stay deterministic).
func TestCausalPathString(t *testing.T) {
	tr := mkTrace(60, "browse",
		hop(1, 1, 200*sim.Microsecond, 1),
		exec(1, 1, 1.2, 0.35),
	)
	s := tr.Path.String()
	for _, want := range []string{"request 60 (browse)", "hop node=1 tier=1", "timeouts=1", "exec node=1 tier=1", "cpi=1.200"} {
		if !strings.Contains(s, want) {
			t.Fatalf("path rendering missing %q:\n%s", want, s)
		}
	}
}
