// Package causal localizes anomalous distributed requests to a (tier,
// node, fault-kind) root cause. It compares each request's causal path
// tree (obs.CausalPath, built by the distributed driver) against
// baselines taken from a clean run of the same workload, and classifies
// every step that deviates:
//
//   - an execution step whose ns-per-cycle exceeds the clean maximum is a
//     node slowdown (DVFS stretches wall time at unchanged CPI);
//   - an execution step whose CPI exceeds the clean maximum is a
//     pollution burst (inflated misses at unchanged reference rates);
//   - a hop whose delivery needed timeouts and still took at least the
//     full retry schedule is a drop if the residual beyond that schedule
//     looks like a clean draw, and a delay spike if the delivering
//     attempt itself was slow;
//   - a hop delivered without timeouts but far beyond the clean maximum
//     is a delay spike.
//
// Every decision is a pure comparison of recorded path state against
// clean-run statistics — no RNG, no maps in the decision path — so
// localization is bit-identical across repeats and GOMAXPROCS settings.
package causal

import (
	"sort"

	"repro/internal/distributed"
	"repro/internal/fault"
	"repro/internal/obs"
)

// ExecBaseline summarizes clean-run execution steps of one (request type,
// tier): the statistics deviations are measured against.
type ExecBaseline struct {
	N                             int
	MeanCPI, MaxCPI               float64
	MeanNsPerCycle, MaxNsPerCycle float64
}

// Baseline is the clean-run reference a localizer compares against.
type Baseline struct {
	exec map[string][]*ExecBaseline // request type → tier-indexed stats
	// HopMeanNs/HopMaxNs summarize delivered hop latencies across the
	// clean run; HopN counts them.
	HopMeanNs, HopMaxNs float64
	HopN                int
}

// NewBaseline builds the reference from a clean run's causal paths.
func NewBaseline(clean []*distributed.Trace) *Baseline {
	b := &Baseline{exec: map[string][]*ExecBaseline{}}
	var hopSum float64
	for _, t := range clean {
		t.Path.Walk(func(n *obs.CausalNode) {
			switch n.Kind {
			case obs.CausalExec:
				eb := b.execAt(t.Type, n.Tier)
				eb.N++
				eb.MeanCPI += n.CPI()
				eb.MeanNsPerCycle += n.NsPerCycle()
				if n.CPI() > eb.MaxCPI {
					eb.MaxCPI = n.CPI()
				}
				if n.NsPerCycle() > eb.MaxNsPerCycle {
					eb.MaxNsPerCycle = n.NsPerCycle()
				}
			case obs.CausalHop:
				if n.Dur <= 0 {
					return
				}
				b.HopN++
				hopSum += float64(n.Dur)
				if float64(n.Dur) > b.HopMaxNs {
					b.HopMaxNs = float64(n.Dur)
				}
			}
		})
	}
	for _, tiers := range b.exec { // maporder:ok per-cell normalization, order-free
		for _, eb := range tiers {
			if eb != nil && eb.N > 0 {
				eb.MeanCPI /= float64(eb.N)
				eb.MeanNsPerCycle /= float64(eb.N)
			}
		}
	}
	if b.HopN > 0 {
		b.HopMeanNs = hopSum / float64(b.HopN)
	}
	return b
}

// execAt returns the (type, tier) cell, growing storage as needed.
func (b *Baseline) execAt(typ string, tier int) *ExecBaseline {
	tiers := b.exec[typ]
	for len(tiers) <= tier {
		tiers = append(tiers, nil)
	}
	if tiers[tier] == nil {
		tiers[tier] = &ExecBaseline{}
	}
	b.exec[typ] = tiers
	return tiers[tier]
}

// Exec returns the clean-run execution stats for a (type, tier), nil when
// the clean run never executed that cell.
func (b *Baseline) Exec(typ string, tier int) *ExecBaseline {
	tiers := b.exec[typ]
	if tier < 0 || tier >= len(tiers) {
		return nil
	}
	return tiers[tier]
}

// Config sets the localizer's decision headrooms: each threshold is the
// clean-run statistic times its headroom, so the clean run itself never
// exceeds one.
type Config struct {
	// SlowdownHeadroom gates the ns-per-cycle ratio over the clean maximum
	// (default 1.15).
	SlowdownHeadroom float64
	// CPIHeadroom gates the CPI ratio over the clean maximum (default
	// 1.15).
	CPIHeadroom float64
	// HopHeadroom gates a timeout-free hop's delay ratio over the clean
	// maximum (default 1.5).
	HopHeadroom float64
	// DropResidualFactor bounds, in clean hop means, how much delivery
	// time beyond the full retry schedule still reads as a clean resend —
	// within it the hop is a drop, beyond it a delay spike (default 3, the
	// ~p95 of an exponential).
	DropResidualFactor float64
}

func (c Config) withDefaults() Config {
	if c.SlowdownHeadroom <= 1 {
		c.SlowdownHeadroom = 1.15
	}
	if c.CPIHeadroom <= 1 {
		c.CPIHeadroom = 1.15
	}
	if c.HopHeadroom <= 1 {
		c.HopHeadroom = 1.5
	}
	if c.DropResidualFactor <= 0 {
		c.DropResidualFactor = 3
	}
	return c
}

// Localizer classifies requests against a clean-run baseline.
type Localizer struct {
	base  *Baseline
	cfg   Config
	retry distributed.RetryConfig
}

// NewLocalizer builds a localizer. retry must be the resolved config the
// faulted run used (RetryConfig.Resolved), so observed timeouts can be
// costed back out of hop durations.
func NewLocalizer(base *Baseline, retry distributed.RetryConfig, cfg Config) *Localizer {
	return &Localizer{base: base, cfg: cfg.withDefaults(), retry: retry}
}

// retryOverheadNs is the virtual time the driver itself added before
// launching the attempt after k timeouts: k per-attempt windows plus the
// capped exponential backoffs between them.
func (l *Localizer) retryOverheadNs(k int) float64 {
	var total float64
	for i := 0; i < k; i++ {
		backoff := l.retry.Backoff << uint(i)
		if backoff > l.retry.BackoffCap {
			backoff = l.retry.BackoffCap
		}
		total += float64(l.retry.HopTimeout) + float64(backoff)
	}
	return total
}

// Localize classifies one request's causal path against the clean
// baselines. An empty result reads the request as clean; otherwise each
// cause names a fault class with its node/tier attribution, deduplicated
// to the strongest claim per (kind, node, tier) and sorted by attribution.
func (l *Localizer) Localize(t *distributed.Trace) []fault.Cause {
	if t.Path == nil {
		return nil
	}
	var causes []fault.Cause
	t.Path.Walk(func(n *obs.CausalNode) {
		switch n.Kind {
		case obs.CausalExec:
			eb := l.base.Exec(t.Type, n.Tier)
			if eb == nil || eb.N == 0 {
				return
			}
			if eb.MaxCPI > 0 {
				if r := n.CPI() / eb.MaxCPI; r > l.cfg.CPIHeadroom {
					causes = append(causes, fault.Cause{
						Kind: fault.PollutionBurst, Node: n.Node, Tier: n.Tier, Score: r})
				}
			}
			if eb.MaxNsPerCycle > 0 {
				if r := n.NsPerCycle() / eb.MaxNsPerCycle; r > l.cfg.SlowdownHeadroom {
					causes = append(causes, fault.Cause{
						Kind: fault.NodeSlowdown, Node: n.Node, Tier: n.Tier, Score: r})
				}
			}
		case obs.CausalHop:
			if n.Dur <= 0 || l.base.HopMaxNs <= 0 {
				return
			}
			dur := float64(n.Dur)
			score := dur / l.base.HopMaxNs
			if n.Timeouts > 0 {
				// The hop burned resends. If delivery took at least the
				// full retry schedule, every earlier attempt vanished —
				// and a residual the size of a clean draw means the
				// resend itself flew clean: a drop. A residual far beyond
				// that means the delivering attempt was slow too: a delay
				// spike. Deliveries faster than the schedule mean a slow
				// primary raced its retry, judged like a timeout-free hop.
				sched := l.retryOverheadNs(n.Timeouts)
				if dur >= sched {
					kind := fault.HopDrop
					if dur-sched > l.base.HopMeanNs*l.cfg.DropResidualFactor {
						kind = fault.HopDelay
					}
					causes = append(causes, fault.Cause{
						Kind: kind, Node: n.Node, Tier: -1, Score: score})
					return
				}
			}
			if score > l.cfg.HopHeadroom {
				causes = append(causes, fault.Cause{
					Kind: fault.HopDelay, Node: n.Node, Tier: -1, Score: score})
			}
		}
	})
	return dedupe(causes)
}

// LocalizeAll runs Localize over a faulted run, keeping only requests
// with at least one cause.
func (l *Localizer) LocalizeAll(traces []*distributed.Trace) map[uint64][]fault.Cause {
	out := map[uint64][]fault.Cause{}
	for _, t := range traces {
		if causes := l.Localize(t); len(causes) > 0 {
			out[t.ID] = causes
		}
	}
	return out
}

// dedupe keeps the strongest claim per (kind, node, tier) and orders the
// result by kind, node, tier — a deterministic rendering order.
func dedupe(causes []fault.Cause) []fault.Cause {
	if len(causes) == 0 {
		return nil
	}
	sort.Slice(causes, func(i, j int) bool {
		a, b := causes[i], causes[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Tier != b.Tier {
			return a.Tier < b.Tier
		}
		return a.Score > b.Score
	})
	out := causes[:1]
	for _, c := range causes[1:] {
		last := &out[len(out)-1]
		if c.Kind == last.Kind && c.Node == last.Node && c.Tier == last.Tier {
			if c.Score > last.Score {
				last.Score = c.Score
			}
			continue
		}
		out = append(out, c)
	}
	return out
}
