package metrics

import (
	"testing"
	"testing/quick"
)

func TestAddSub(t *testing.T) {
	a := Counters{Cycles: 100, Instructions: 50, L2Refs: 10, L2Misses: 2}
	b := Counters{Cycles: 30, Instructions: 20, L2Refs: 4, L2Misses: 1}
	sum := a.Add(b)
	if sum.Cycles != 130 || sum.Instructions != 70 || sum.L2Refs != 14 || sum.L2Misses != 3 {
		t.Fatalf("Add = %v", sum)
	}
	if got := sum.Sub(b); got != a {
		t.Fatalf("Sub did not invert Add: %v", got)
	}
}

func TestSubSaturates(t *testing.T) {
	small := Counters{Cycles: 5, Instructions: 5}
	big := Counters{Cycles: 10, Instructions: 3, L2Refs: 7}
	got := small.Sub(big)
	if got.Cycles != 0 {
		t.Fatalf("Cycles should saturate at 0, got %d", got.Cycles)
	}
	if got.Instructions != 2 {
		t.Fatalf("Instructions = %d, want 2", got.Instructions)
	}
	if got.L2Refs != 0 {
		t.Fatalf("L2Refs should saturate at 0, got %d", got.L2Refs)
	}
}

func TestSubNeverUnderflowsProperty(t *testing.T) {
	f := func(a, b Counters) bool {
		d := a.Sub(b)
		return d.Cycles <= a.Cycles && d.Instructions <= a.Instructions &&
			d.L2Refs <= a.L2Refs && d.L2Misses <= a.L2Misses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScale(t *testing.T) {
	c := Counters{Cycles: 2, Instructions: 3, L2Refs: 4, L2Misses: 5}
	got := c.Scale(3)
	want := Counters{Cycles: 6, Instructions: 9, L2Refs: 12, L2Misses: 15}
	if got != want {
		t.Fatalf("Scale = %v, want %v", got, want)
	}
	if !c.Scale(0).IsZero() {
		t.Fatal("Scale(0) should be zero")
	}
}

func TestValue(t *testing.T) {
	c := Counters{Cycles: 300, Instructions: 100, L2Refs: 20, L2Misses: 5}
	cases := []struct {
		m    Metric
		want float64
	}{
		{CPI, 3.0},
		{L2RefsPerIns, 0.2},
		{L2MissRatio, 0.25},
		{L2MissesPerIns, 0.05},
	}
	for _, tc := range cases {
		if got := c.Value(tc.m); got != tc.want {
			t.Errorf("%v = %v, want %v", tc.m, got, tc.want)
		}
	}
}

func TestValueZeroDenominator(t *testing.T) {
	var zero Counters
	for _, m := range AllMetrics() {
		if got := zero.Value(m); got != 0 {
			t.Errorf("%v of zero counters = %v, want 0", m, got)
		}
	}
}

func TestValueNonNegativeProperty(t *testing.T) {
	f := func(c Counters) bool {
		for _, m := range AllMetrics() {
			if c.Value(m) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeight(t *testing.T) {
	c := Counters{Instructions: 100, L2Refs: 7}
	if got := c.Weight(CPI); got != 100 {
		t.Fatalf("Weight(CPI) = %v", got)
	}
	if got := c.Weight(L2MissRatio); got != 7 {
		t.Fatalf("Weight(L2MissRatio) = %v", got)
	}
}

func TestStrings(t *testing.T) {
	if CPI.String() != "cycles per instruction" {
		t.Fatalf("CPI.String() = %q", CPI.String())
	}
	if Metric(99).String() == "" {
		t.Fatal("unknown metric String empty")
	}
	if CtxKernel.String() != "in-kernel" || CtxInterrupt.String() != "interrupt" {
		t.Fatal("SampleContext strings wrong")
	}
	if (Counters{}).String() == "" {
		t.Fatal("Counters.String empty")
	}
}

func TestUnknownMetricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Value of unknown metric did not panic")
		}
	}()
	Counters{}.Value(Metric(42))
}
