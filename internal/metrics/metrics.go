// Package metrics defines the hardware performance counter values the
// simulated machine exposes and the derived metrics the paper analyzes:
// cycles per instruction (CPI), L2 cache references per instruction, L2
// misses per reference, and L2 misses per instruction.
//
// The experimental platform in the paper (Intel Xeon 5160) provides two
// fixed counters (non-halted cycles, retired instructions) and two
// general-purpose counters configured here for L2 references and L2 misses;
// Counters mirrors exactly that register set.
package metrics

import "fmt"

// Counters is a snapshot of a core's performance counter registers.
// Values are cumulative; periods are obtained with Sub.
type Counters struct {
	Cycles       uint64
	Instructions uint64
	L2Refs       uint64
	L2Misses     uint64
}

// Add returns c with o's counts added.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		Cycles:       c.Cycles + o.Cycles,
		Instructions: c.Instructions + o.Instructions,
		L2Refs:       c.L2Refs + o.L2Refs,
		L2Misses:     c.L2Misses + o.L2Misses,
	}
}

// Sub returns the per-period delta c - o. Each field saturates at zero
// rather than wrapping, which implements the paper's "do no harm" rule when
// observer-effect compensation is subtracted from a measured period.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Cycles:       satSub(c.Cycles, o.Cycles),
		Instructions: satSub(c.Instructions, o.Instructions),
		L2Refs:       satSub(c.L2Refs, o.L2Refs),
		L2Misses:     satSub(c.L2Misses, o.L2Misses),
	}
}

func satSub(a, b uint64) uint64 {
	if b > a {
		return 0
	}
	return a - b
}

// Scale returns c with each field multiplied by n (used to remove n
// sampling events' worth of observer effect from a period).
func (c Counters) Scale(n uint64) Counters {
	return Counters{
		Cycles:       c.Cycles * n,
		Instructions: c.Instructions * n,
		L2Refs:       c.L2Refs * n,
		L2Misses:     c.L2Misses * n,
	}
}

// IsZero reports whether all counters are zero.
func (c Counters) IsZero() bool {
	return c == Counters{}
}

func (c Counters) String() string {
	return fmt.Sprintf("cycles=%d ins=%d l2ref=%d l2miss=%d",
		c.Cycles, c.Instructions, c.L2Refs, c.L2Misses)
}

// Metric identifies a derived hardware metric.
type Metric int

const (
	// CPI is CPU cycles per retired instruction.
	CPI Metric = iota
	// L2RefsPerIns is L2 cache references per instruction; the paper uses
	// it as an indirect indication of L1 misses and of shared-resource
	// usage, and as the contention-free request signature in Section 4.4.
	L2RefsPerIns
	// L2MissRatio is L2 misses per L2 reference, the performance on the
	// shared resource.
	L2MissRatio
	// L2MissesPerIns is L2 misses per instruction; Section 5 uses it as the
	// resource usage intensity indicator for contention-easing scheduling.
	L2MissesPerIns
)

var metricNames = map[Metric]string{
	CPI:            "cycles per instruction",
	L2RefsPerIns:   "L2 references per instruction",
	L2MissRatio:    "L2 misses per reference",
	L2MissesPerIns: "L2 misses per instruction",
}

func (m Metric) String() string {
	if s, ok := metricNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// AllMetrics lists every derived metric in presentation order.
func AllMetrics() []Metric {
	return []Metric{CPI, L2RefsPerIns, L2MissRatio, L2MissesPerIns}
}

// Value computes metric m from a period's counter delta. Ratios with a zero
// denominator yield 0.
func (c Counters) Value(m Metric) float64 {
	switch m {
	case CPI:
		return ratio(c.Cycles, c.Instructions)
	case L2RefsPerIns:
		return ratio(c.L2Refs, c.Instructions)
	case L2MissRatio:
		return ratio(c.L2Misses, c.L2Refs)
	case L2MissesPerIns:
		return ratio(c.L2Misses, c.Instructions)
	default:
		panic(fmt.Sprintf("metrics: unknown metric %d", int(m)))
	}
}

// Weight returns the natural weighting length of a period for metric m,
// used by Equation 1's length-weighted statistics: instruction count for
// per-instruction metrics, L2 references for the miss ratio.
func (c Counters) Weight(m Metric) float64 {
	if m == L2MissRatio {
		return float64(c.L2Refs)
	}
	return float64(c.Instructions)
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// SampleContext identifies where a counter sample was taken; the cost and
// observer effect differ between contexts (Table 1).
type SampleContext int

const (
	// CtxKernel is a sample taken while already executing in the kernel
	// (request context switch or system call entrance).
	CtxKernel SampleContext = iota
	// CtxInterrupt is a sample taken in an APIC interrupt handler, which
	// pays an additional user/kernel domain switch.
	CtxInterrupt
)

func (c SampleContext) String() string {
	switch c {
	case CtxKernel:
		return "in-kernel"
	case CtxInterrupt:
		return "interrupt"
	default:
		return fmt.Sprintf("SampleContext(%d)", int(c))
	}
}
