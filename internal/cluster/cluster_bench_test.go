package cluster

import (
	"math"
	"math/rand"
	"testing"
)

func BenchmarkKMedoids(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	pts := make([]float64, 400)
	for i := range pts {
		pts[i] = r.Float64() * 100
	}
	dist := func(i, j int) float64 { return math.Abs(pts[i] - pts[j]) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMedoids(len(pts), dist, Config{K: 10, Seed: 1})
	}
}
