package cluster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/distance"
)

func BenchmarkKMedoids(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	pts := make([]float64, 400)
	for i := range pts {
		pts[i] = r.Float64() * 100
	}
	dist := func(i, j int) float64 { return math.Abs(pts[i] - pts[j]) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMedoids(len(pts), dist, Config{K: 10, Seed: 1})
	}
}

// BenchmarkKMedoidsPrecomputed isolates the iteration cost when the
// pairwise matrix is built once and shared across clustering runs (the
// Figure 7 shape: five measures over one population).
func BenchmarkKMedoidsPrecomputed(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	pts := make([]float64, 400)
	for i := range pts {
		pts[i] = r.Float64() * 100
	}
	m := distance.NewMatrix(len(pts), func(i, j int) float64 {
		return math.Abs(pts[i] - pts[j])
	}, distance.MatrixOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMedoidsMatrix(m, Config{K: 10, Seed: 1})
	}
}
