// Package cluster implements the k-medoids classification of Section 4.2:
// k-means-style iteration where each cluster is represented by its centroid
// request (the member minimizing the summed distance to all other members),
// since the mean of a set of request variation patterns is not well defined.
package cluster

import (
	"math"

	"repro/internal/sim"
)

// DistFunc returns the dissimilarity between items i and j of the
// population being clustered.
type DistFunc func(i, j int) float64

// Result is a k-medoids clustering outcome.
type Result struct {
	// Medoids holds the item index of each cluster's centroid request.
	Medoids []int
	// Assign maps each item to its cluster (index into Medoids).
	Assign []int
	// Iterations is the number of refinement rounds performed.
	Iterations int
}

// Members returns the item indices assigned to cluster c.
func (r *Result) Members(c int) []int {
	var out []int
	for i, a := range r.Assign {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}

// Config tunes the algorithm.
type Config struct {
	// K is the number of clusters (the paper uses 10).
	K int
	// MaxIterations bounds refinement (default 50).
	MaxIterations int
	// Seed drives the initial medoid selection.
	Seed int64
}

// KMedoids clusters n items under dist. It uses a distance cache, so dist
// is called O(n²/2) times at most; callers with expensive distances (DTW)
// should still pre-resample their sequences.
func KMedoids(n int, dist DistFunc, cfg Config) *Result {
	if cfg.K <= 0 {
		panic("cluster: K must be positive")
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 50
	}
	k := cfg.K
	if k > n {
		k = n
	}
	cache := newDistCache(n, dist)

	// Initialization: greedy k-means++-style spread using a seeded stream —
	// the first medoid is random; each next maximizes distance to chosen.
	g := sim.NewRNG(cfg.Seed)
	medoids := make([]int, 0, k)
	if n > 0 {
		medoids = append(medoids, g.Intn(n))
	}
	for len(medoids) < k {
		best, bestD := -1, -1.0
		for i := 0; i < n; i++ {
			if containsInt(medoids, i) {
				continue
			}
			d := math.Inf(1)
			for _, m := range medoids {
				if v := cache.get(i, m); v < d {
					d = v
				}
			}
			if d > bestD {
				best, bestD = i, d
			}
		}
		if best < 0 {
			break
		}
		medoids = append(medoids, best)
	}

	assign := make([]int, n)
	res := &Result{Medoids: medoids, Assign: assign}
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		res.Iterations = iter + 1
		// Assignment step.
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := assign[i], math.Inf(1)
			for c, m := range medoids {
				if d := cache.get(i, m); d < bestD {
					best, bestD = c, d
				}
			}
			if best != assign[i] {
				assign[i] = best
				changed = true
			}
		}
		if iter > 0 && !changed {
			break
		}
		// Update step: each cluster's medoid becomes the member minimizing
		// the sum of distances to all other members.
		moved := false
		for c := range medoids {
			members := res.Members(c)
			if len(members) == 0 {
				continue
			}
			best, bestSum := medoids[c], math.Inf(1)
			for _, cand := range members {
				var sum float64
				for _, other := range members {
					sum += cache.get(cand, other)
				}
				if sum < bestSum {
					best, bestSum = cand, sum
				}
			}
			if best != medoids[c] {
				medoids[c] = best
				moved = true
			}
		}
		if !moved && !changed {
			break
		}
	}
	return res
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// distCache memoizes the symmetric distance matrix lazily.
type distCache struct {
	n    int
	dist DistFunc
	vals []float64
	set  []bool
}

func newDistCache(n int, dist DistFunc) *distCache {
	return &distCache{n: n, dist: dist, vals: make([]float64, n*n), set: make([]bool, n*n)}
}

func (c *distCache) get(i, j int) float64 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	idx := i*c.n + j
	if !c.set[idx] {
		c.vals[idx] = c.dist(i, j)
		c.set[idx] = true
	}
	return c.vals[idx]
}

// Divergence measures classification quality the paper's way (Figure 7):
// each request's divergence from its cluster centroid on some request
// property (CPU time, peak CPI, …), |v_r − v_c| / v_c, averaged over all
// requests. prop[i] is the property value of item i.
func Divergence(res *Result, prop []float64) float64 {
	if len(prop) != len(res.Assign) {
		panic("cluster: Divergence property length mismatch")
	}
	var sum float64
	var n int
	for i, c := range res.Assign {
		cv := prop[res.Medoids[c]]
		if cv == 0 {
			continue
		}
		sum += math.Abs(prop[i]-cv) / cv
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
