// Package cluster implements the k-medoids classification of Section 4.2:
// k-means-style iteration where each cluster is represented by its centroid
// request (the member minimizing the summed distance to all other members),
// since the mean of a set of request variation patterns is not well defined.
package cluster

import (
	"math"

	"repro/internal/distance"
	"repro/internal/sim"
)

// DistFunc returns the dissimilarity between items i and j of the
// population being clustered. KMedoids precomputes all pairs through the
// parallel distance engine, so the function must be safe for concurrent
// calls — pure functions over read-only inputs (every distance.Measure)
// qualify.
type DistFunc func(i, j int) float64

// Distances is a read-only precomputed pairwise-distance view, satisfied
// by *distance.Matrix. At must be symmetric with a zero diagonal.
type Distances interface {
	N() int
	At(i, j int) float64
}

// Result is a k-medoids clustering outcome.
type Result struct {
	// Medoids holds the item index of each cluster's centroid request.
	// Indices are unique: an emptied cluster is re-seeded rather than left
	// pointing at a stale (possibly shared) medoid.
	Medoids []int
	// Assign maps each item to its cluster (index into Medoids).
	Assign []int
	// Iterations is the number of refinement rounds performed.
	Iterations int
}

// Members returns the item indices assigned to cluster c.
func (r *Result) Members(c int) []int {
	var out []int
	for i, a := range r.Assign {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}

// Config tunes the algorithm.
type Config struct {
	// K is the number of clusters (the paper uses 10).
	K int
	// MaxIterations bounds refinement (default 50).
	MaxIterations int
	// Seed drives the initial medoid selection.
	Seed int64
	// Workers bounds the parallel distance precompute in KMedoids
	// (default runtime.GOMAXPROCS); KMedoidsMatrix ignores it.
	Workers int
	// Rand, when non-nil, supplies the seeded stream for the initial
	// medoid selection instead of a fresh NewRNG(Seed). The caller must
	// Reseed it to the intended seed first; a reseeded stream reproduces
	// NewRNG bit for bit, so results are unchanged — the knob only lets
	// repeated clustering (the serving pipeline's periodic compaction)
	// reuse one stream without allocating.
	Rand *sim.RNG
}

// KMedoids clusters n items under dist. All n·(n−1)/2 pairwise distances
// are precomputed in parallel through the distance engine (dist must
// therefore be concurrency-safe; see DistFunc), then the iteration reads
// the matrix. Callers clustering several measures over one population
// should build the matrices themselves and use KMedoidsMatrix to share
// them with other analyses.
func KMedoids(n int, dist DistFunc, cfg Config) *Result {
	m := distance.NewMatrix(n, distance.PairFunc(dist), distance.MatrixOptions{Workers: cfg.Workers})
	return KMedoidsMatrix(m, cfg)
}

// KMedoidsMatrix clusters the population of a precomputed pairwise
// distance matrix. The result is deterministic for a given matrix and
// seed.
func KMedoidsMatrix(dm Distances, cfg Config) *Result {
	var sc Scratch
	return sc.KMedoids(dm, cfg)
}

// Scratch holds the working storage for repeated k-medoids runs. A zero
// Scratch is ready to use; reusing one across runs over same-or-smaller
// populations reaches an allocation-free steady state (the serving
// pipeline reclusters its signature window every compaction interval).
// The returned Result aliases scratch storage and is valid until the next
// KMedoids call on the same scratch.
type Scratch struct {
	res     Result
	members []int // items grouped by cluster, ascending within each
	offs    []int // cluster c's group is members[offs[c]:offs[c+1]]
	cursor  []int // per-cluster write positions while grouping
}

// KMedoids is KMedoidsMatrix running in pooled storage. Results are bit
// identical to KMedoidsMatrix for the same matrix and config: the
// iteration visits candidates in the same order (the member grouping is a
// counting sort, which preserves ascending item order — exactly the order
// Result.Members yields).
func (sc *Scratch) KMedoids(dm Distances, cfg Config) *Result {
	if cfg.K <= 0 {
		panic("cluster: K must be positive")
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 50
	}
	n := dm.N()
	k := cfg.K
	if k > n {
		k = n
	}

	// Initialization: greedy k-means++-style spread using a seeded stream —
	// the first medoid is random; each next maximizes distance to chosen.
	g := cfg.Rand
	if g == nil {
		g = sim.NewRNG(cfg.Seed)
	}
	medoids := growInts(sc.res.Medoids, k)[:0]
	if n > 0 {
		medoids = append(medoids, g.Intn(n))
	}
	for len(medoids) < k {
		best, bestD := -1, -1.0
		for i := 0; i < n; i++ {
			if containsInt(medoids, i) {
				continue
			}
			d := math.Inf(1)
			for _, m := range medoids {
				if v := dm.At(i, m); v < d {
					d = v
				}
			}
			if d > bestD {
				best, bestD = i, d
			}
		}
		if best < 0 {
			break
		}
		medoids = append(medoids, best)
	}

	assign := growInts(sc.res.Assign, n)
	for i := range assign {
		assign[i] = 0
	}
	sc.members = growInts(sc.members, n)
	sc.offs = growInts(sc.offs, k+1)
	sc.cursor = growInts(sc.cursor, k)
	res := &sc.res
	res.Medoids, res.Assign, res.Iterations = medoids, assign, 0
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		res.Iterations = iter + 1
		// Assignment step.
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := assign[i], math.Inf(1)
			for c, m := range medoids {
				if d := dm.At(i, m); d < bestD {
					best, bestD = c, d
				}
			}
			if best != assign[i] {
				assign[i] = best
				changed = true
			}
		}
		if iter > 0 && !changed {
			break
		}
		// Group items by cluster once per iteration (counting sort keeps
		// each group in ascending item order, matching Result.Members).
		// Assignments are fixed for the whole update step, so one grouping
		// serves every cluster.
		for c := 0; c <= k; c++ {
			sc.offs[c] = 0
		}
		for _, a := range assign {
			sc.offs[a+1]++
		}
		for c := 1; c <= k; c++ {
			sc.offs[c] += sc.offs[c-1]
		}
		copy(sc.cursor, sc.offs[:k])
		for i, a := range assign {
			sc.members[sc.cursor[a]] = i
			sc.cursor[a]++
		}
		// Update step: each cluster's medoid becomes the member minimizing
		// the sum of distances to all other members. An emptied cluster is
		// re-seeded from the item farthest from its assigned medoid, so no
		// cluster keeps a stale medoid (which another cluster could
		// otherwise duplicate under distance ties).
		moved := false
		for c := range medoids {
			members := sc.members[sc.offs[c]:sc.offs[c+1]]
			if len(members) == 0 {
				if far := farthestNonMedoid(dm, medoids, assign); far >= 0 && far != medoids[c] {
					medoids[c] = far
					moved = true
				}
				continue
			}
			best, bestSum := medoids[c], math.Inf(1)
			for _, cand := range members {
				// Never adopt another cluster's medoid (reachable only
				// under exact distance ties): medoid indices stay unique.
				if cand != medoids[c] && containsInt(medoids, cand) {
					continue
				}
				var sum float64
				for _, other := range members {
					sum += dm.At(cand, other)
				}
				if sum < bestSum {
					best, bestSum = cand, sum
				}
			}
			if best != medoids[c] {
				medoids[c] = best
				moved = true
			}
		}
		if !moved && !changed {
			break
		}
	}
	res.Medoids = medoids
	return res
}

// growInts returns s resized to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

// farthestNonMedoid returns the item with the greatest distance to its
// assigned medoid, excluding current medoids (ties to the lowest index),
// or -1 when every item is a medoid.
func farthestNonMedoid(dm Distances, medoids, assign []int) int {
	best, bestD := -1, -1.0
	for i := 0; i < dm.N(); i++ {
		if containsInt(medoids, i) {
			continue
		}
		if d := dm.At(i, medoids[assign[i]]); d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Divergence measures classification quality the paper's way (Figure 7):
// each request's divergence from its cluster centroid on some request
// property (CPU time, peak CPI, …), |v_r − v_c| / v_c, averaged over all
// requests. prop[i] is the property value of item i.
func Divergence(res *Result, prop []float64) float64 {
	if len(prop) != len(res.Assign) {
		panic("cluster: Divergence property length mismatch")
	}
	var sum float64
	var n int
	for i, c := range res.Assign {
		cv := prop[res.Medoids[c]]
		if cv == 0 {
			continue
		}
		sum += math.Abs(prop[i]-cv) / cv
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
