package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/distance"
)

// pointsDist builds a DistFunc over 1-D points.
func pointsDist(pts []float64) DistFunc {
	return func(i, j int) float64 { return math.Abs(pts[i] - pts[j]) }
}

func TestKMedoidsSeparatesObviousClusters(t *testing.T) {
	// Two tight groups far apart.
	pts := []float64{1, 1.1, 0.9, 1.05, 100, 100.2, 99.8, 100.1}
	res := KMedoids(len(pts), pointsDist(pts), Config{K: 2, Seed: 1})
	// All low points share a cluster, all high points the other.
	low := res.Assign[0]
	for i := 0; i < 4; i++ {
		if res.Assign[i] != low {
			t.Fatalf("low points split: %v", res.Assign)
		}
	}
	high := res.Assign[4]
	if high == low {
		t.Fatalf("clusters merged: %v", res.Assign)
	}
	for i := 4; i < 8; i++ {
		if res.Assign[i] != high {
			t.Fatalf("high points split: %v", res.Assign)
		}
	}
}

func TestMedoidIsAMember(t *testing.T) {
	pts := []float64{1, 2, 3, 10, 11, 12, 50}
	res := KMedoids(len(pts), pointsDist(pts), Config{K: 3, Seed: 2})
	for c, m := range res.Medoids {
		if res.Assign[m] != c {
			t.Fatalf("medoid %d of cluster %d not assigned to it", m, c)
		}
	}
}

func TestMedoidMinimizesIntraClusterSum(t *testing.T) {
	pts := []float64{0, 1, 2, 3, 4} // medoid of a line is the middle point
	res := KMedoids(len(pts), pointsDist(pts), Config{K: 1, Seed: 3})
	if pts[res.Medoids[0]] != 2 {
		t.Fatalf("medoid = %v, want middle point 2", pts[res.Medoids[0]])
	}
}

func TestKGreaterThanN(t *testing.T) {
	pts := []float64{1, 2}
	res := KMedoids(len(pts), pointsDist(pts), Config{K: 10, Seed: 4})
	if len(res.Medoids) != 2 {
		t.Fatalf("K>n should clamp: %d medoids", len(res.Medoids))
	}
}

func TestInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(40)
		pts := make([]float64, n)
		for i := range pts {
			pts[i] = r.Float64() * 50
		}
		k := 1 + r.Intn(6)
		res := KMedoids(n, pointsDist(pts), Config{K: k, Seed: seed})
		if len(res.Assign) != n {
			return false
		}
		// Every assignment refers to a real cluster; every item is closest
		// to its own medoid (no better medoid exists).
		for i, c := range res.Assign {
			if c < 0 || c >= len(res.Medoids) {
				return false
			}
			own := math.Abs(pts[i] - pts[res.Medoids[c]])
			for _, m := range res.Medoids {
				if math.Abs(pts[i]-pts[m]) < own-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	pts := make([]float64, 30)
	r := rand.New(rand.NewSource(7))
	for i := range pts {
		pts[i] = r.Float64() * 10
	}
	a := KMedoids(len(pts), pointsDist(pts), Config{K: 4, Seed: 11})
	b := KMedoids(len(pts), pointsDist(pts), Config{K: 4, Seed: 11})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("clustering not deterministic for identical seed")
		}
	}
}

func TestDivergence(t *testing.T) {
	pts := []float64{1, 1, 1, 10}
	res := KMedoids(len(pts), pointsDist(pts), Config{K: 2, Seed: 5})
	// Perfect clusters → zero divergence on the clustering property itself.
	if d := Divergence(res, pts); d != 0 {
		t.Fatalf("divergence of perfect clustering = %v", d)
	}
	// A property uncorrelated with clustering yields positive divergence.
	other := []float64{1, 5, 9, 2}
	if d := Divergence(res, other); d <= 0 {
		t.Fatalf("uncorrelated property divergence = %v", d)
	}
}

func TestDivergencePanicsOnMismatch(t *testing.T) {
	res := KMedoids(3, pointsDist([]float64{1, 2, 3}), Config{K: 1, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on property length mismatch")
		}
	}()
	Divergence(res, []float64{1})
}

func TestKZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("K=0 did not panic")
		}
	}()
	KMedoids(3, pointsDist([]float64{1, 2, 3}), Config{})
}

func TestKMedoidsMatrixEqualsDistFuncPath(t *testing.T) {
	// The DistFunc front door and a caller-precomputed matrix must agree
	// exactly: KMedoids is only a convenience wrapper over the engine.
	r := rand.New(rand.NewSource(9))
	pts := make([]float64, 50)
	for i := range pts {
		pts[i] = r.Float64() * 40
	}
	cfg := Config{K: 5, Seed: 3}
	a := KMedoids(len(pts), pointsDist(pts), cfg)
	m := distance.NewMatrix(len(pts), func(i, j int) float64 {
		return math.Abs(pts[i] - pts[j])
	}, distance.MatrixOptions{})
	b := KMedoidsMatrix(m, cfg)
	if !reflect.DeepEqual(a.Medoids, b.Medoids) || !reflect.DeepEqual(a.Assign, b.Assign) {
		t.Fatalf("matrix path diverged: %v/%v vs %v/%v", a.Medoids, a.Assign, b.Medoids, b.Assign)
	}
}

func TestMedoidUniqueness(t *testing.T) {
	// Tie-heavy populations (duplicate points) used to let one cluster
	// adopt another's stale medoid; medoid indices must stay unique.
	cases := [][]float64{
		{1, 1, 1, 1, 1},
		{1, 1, 1, 2, 2, 2},
		{0, 0, 5, 5, 5, 5, 9},
		{3, 3, 3, 3, 3, 3, 3, 3},
	}
	for _, pts := range cases {
		for k := 2; k <= 4; k++ {
			for seed := int64(0); seed < 8; seed++ {
				res := KMedoids(len(pts), pointsDist(pts), Config{K: k, Seed: seed})
				seen := map[int]bool{}
				for _, m := range res.Medoids {
					if seen[m] {
						t.Fatalf("pts=%v k=%d seed=%d: duplicate medoid %d in %v",
							pts, k, seed, m, res.Medoids)
					}
					seen[m] = true
				}
			}
		}
	}
}

func TestEmptyClusterReseeded(t *testing.T) {
	// Five identical points plus one far outlier, K=3: ties drain at
	// least one cluster. Re-seeding must keep every medoid a real,
	// distinct item, and the outlier (the farthest item) must end up a
	// medoid rather than diverging inside a stale cluster.
	pts := []float64{2, 2, 2, 2, 2, 50}
	res := KMedoids(len(pts), pointsDist(pts), Config{K: 3, Seed: 1})
	if len(res.Medoids) != 3 {
		t.Fatalf("medoids = %v", res.Medoids)
	}
	seen := map[int]bool{}
	outlierIsMedoid := false
	for _, m := range res.Medoids {
		if m < 0 || m >= len(pts) || seen[m] {
			t.Fatalf("bad medoid set %v", res.Medoids)
		}
		seen[m] = true
		if m == 5 {
			outlierIsMedoid = true
		}
	}
	if !outlierIsMedoid {
		t.Fatalf("outlier not captured as a medoid: %v", res.Medoids)
	}
	// The outlier sits alone in its own cluster.
	if c := res.Assign[5]; pts[res.Medoids[c]] != 50 || len(res.Members(c)) != 1 {
		t.Fatalf("outlier assignment wrong: medoids=%v assign=%v", res.Medoids, res.Assign)
	}
}
