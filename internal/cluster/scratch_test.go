package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/distance"
	"repro/internal/sim"
)

func randMatrix(r *rand.Rand, n int) *distance.Matrix {
	pts := make([]float64, n)
	for i := range pts {
		pts[i] = r.Float64() * 100
	}
	return distance.NewMatrix(n, distance.PairFunc(pointsDist(pts)), distance.MatrixOptions{Workers: 1})
}

// TestScratchMatchesKMedoidsMatrix: the pooled path must reproduce the
// one-shot path bit for bit across population sizes, ks, and seeds —
// including reuse of one scratch across runs of varying size, and a
// caller-owned reseeded RNG in place of the internal one.
func TestScratchMatchesKMedoidsMatrix(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var sc Scratch
	rng := sim.NewRNG(0)
	for trial := 0; trial < 60; trial++ {
		n := r.Intn(90)
		k := 1 + r.Intn(12)
		seed := r.Int63n(1000)
		dm := randMatrix(r, n)
		want := KMedoidsMatrix(dm, Config{K: k, Seed: seed})

		got := sc.KMedoids(dm, Config{K: k, Seed: seed})
		if !reflect.DeepEqual(got.Medoids, want.Medoids) ||
			!reflect.DeepEqual(got.Assign, want.Assign) ||
			got.Iterations != want.Iterations {
			t.Fatalf("trial %d (n=%d k=%d seed=%d): scratch diverges from one-shot\n got %+v\nwant %+v",
				trial, n, k, seed, got, want)
		}

		rng.Reseed(seed)
		got = sc.KMedoids(dm, Config{K: k, Seed: -1, Rand: rng})
		if !reflect.DeepEqual(got.Medoids, want.Medoids) ||
			!reflect.DeepEqual(got.Assign, want.Assign) {
			t.Fatalf("trial %d: reseeded Rand diverges from NewRNG(seed)", trial)
		}
	}
}

// TestScratchAllocFree: repeated clustering in one scratch with a
// caller-owned RNG must not allocate once the buffers have grown.
func TestScratchAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	dm := randMatrix(r, 80)
	var sc Scratch
	rng := sim.NewRNG(0)
	cfg := Config{K: 10, Rand: rng}
	sc.KMedoids(dm, cfg) // grow buffers
	seed := int64(0)
	allocs := testing.AllocsPerRun(50, func() {
		rng.Reseed(seed)
		sc.KMedoids(dm, cfg)
		seed++
	})
	if allocs != 0 {
		t.Fatalf("pooled KMedoids allocates %v per run, want 0", allocs)
	}
}
