package cluster_test

import (
	"fmt"
	"math"

	"repro/internal/cluster"
)

// k-medoids over a toy population with two obvious groups: the medoids are
// actual members (Section 4.2's requirement — the mean of variation
// patterns is not well defined, so a centroid request stands in).
func ExampleKMedoids() {
	points := []float64{1.0, 1.1, 0.9, 10.0, 10.2, 9.8}
	res := cluster.KMedoids(len(points), func(i, j int) float64 {
		return math.Abs(points[i] - points[j])
	}, cluster.Config{K: 2, Seed: 1})

	for c := range res.Medoids {
		fmt.Printf("cluster %d: centroid %.1f, %d members\n",
			c, points[res.Medoids[c]], len(res.Members(c)))
	}
	// Output:
	// cluster 0: centroid 10.0, 3 members
	// cluster 1: centroid 1.0, 3 members
}
