// Benchmark for the scheduling-policy lab (experiment 21): one op races
// every registered kernel policy across both load levels and every fleet
// placement policy over the shared stream, from one shared calibration.
// ns/op is the wall cost of the whole race; each policy's flash-crowd
// latency tail lands in the snapshot as a per-policy "-p99-ns" metric, so
// cmd/benchjson guards a policy-specific latency regression (a broken
// deadline comparator, a co-scheduling bank lookup gone quadratic) even
// when the aggregate wall time stays inside tolerance.
//
// Run with:
//
//	go test -bench BenchmarkSchedLab -benchmem
package repro_test

import (
	"testing"

	"repro/internal/experiments"
)

// benchSchedCfg runs the lab at smoke scale: the race fans out
// (policies × loads) full simulator runs per op, so the per-cell request
// count stays small to keep the single-iteration CI legs quick.
var benchSchedCfg = experiments.Config{Seed: 1, Scale: 0.05}

func BenchmarkSchedLab(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.SchedLab(benchSchedCfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Kernel {
			if row.Load != "crowd" {
				continue
			}
			b.ReportMetric(row.LatencyP99Ns, row.Policy+"-p99-ns")
		}
		for _, row := range r.Fleet {
			b.ReportMetric(row.P99Ns, "fleet-"+row.Policy+"-p99-ns")
			if row.Completed == 0 {
				b.Fatalf("fleet policy %s completed nothing", row.Policy)
			}
		}
		if len(r.Kernel) == 0 || r.BankEntries == 0 {
			b.Fatalf("lab inert: %+v", r)
		}
	}
}
