// Benchmark for fleet mode (serve.Fleet): one op pushes 200k simulated
// requests through the fleet pipeline — policy placement, per-package
// contention snapshots, the parallel package phase, per-node bank
// compaction and fleet-wide merges — on the standard heterogeneous
// 16-core fleet, after a warmup that grows every pool. The headline claims
// are the steady-state allocation count (guarded at ~0 per request) and
// the virtual end-to-end latency p99, reported as a custom "-ns" metric
// that cmd/benchjson carries into the perf snapshot.
//
// Run with:
//
//	go test -bench BenchmarkFleetSteadyState -benchmem
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/serve"
)

// benchFleet builds the default heterogeneous fleet and warms it through
// the flash crowd and several compaction/merge rounds, so queues, window
// rings, and merge scratch reach steady-state sizes before the timer
// starts.
func benchFleet(b *testing.B, workers int, policy serve.FleetPolicy) *serve.Fleet {
	b.Helper()
	cfg := serve.DefaultFleetConfig(1)
	cfg.Workers = workers
	cfg.Policy = policy
	f, err := serve.NewFleet(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(f.Close)
	// 200k arrivals ≈ 8.3 virtual seconds: past the 5s flash crowd, ~16
	// compaction rounds, ~4 fleet-wide bank merges.
	f.Process(200_000)
	return f
}

// BenchmarkFleetSteadyState is the headline fleet benchmark: 200k
// simulated requests per op through the warmed fleet. ns/op is the wall
// cost per 200k requests; req/s the resulting ingest rate; p99-ns the
// fleet-wide virtual end-to-end latency quantile. The allocation guard
// enforces the bounded-steady-state claim at benchmark time.
func BenchmarkFleetSteadyState(b *testing.B) {
	const perOp = 200_000
	for _, bc := range []struct {
		name    string
		workers int
		policy  serve.FleetPolicy
	}{
		{"rr-serial", 1, serve.FleetRoundRobin},
		{"rr-parallel", 0, serve.FleetRoundRobin},
		{"ease-serial", 1, serve.FleetContentionEase},
		{"ease-parallel", 0, serve.FleetContentionEase},
	} {
		b.Run(bc.name, func(b *testing.B) {
			f := benchFleet(b, bc.workers, bc.policy)
			b.ReportAllocs()
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Process(perOp)
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			res := f.Result()
			if res.Arrivals == 0 || res.CompactionRounds == 0 || res.Merges == 0 {
				b.Fatalf("fleet inert: %+v", res)
			}
			// The guard ignores the serial legs' worker pool being absent:
			// every leg must hold ~0 allocations per request in steady state.
			if perReq := float64(after.Mallocs-before.Mallocs) / float64(b.N*perOp); perReq > 0.05 {
				b.Fatalf("steady state allocates %.3f objects/request, want ~0", perReq)
			}
			b.ReportMetric(res.P99Ns, "p99-ns")
			b.ReportMetric(float64(b.N)*perOp/b.Elapsed().Seconds(), "req/s")
			// Per-node health: only "-ns" metrics are regression-compared by
			// cmd/benchjson; shed/degraded counts are recorded for the
			// snapshot without gating (they track the stream, not the code).
			for _, n := range res.Nodes {
				b.ReportMetric(n.P99Ns, fmt.Sprintf("node%d-p99-ns", n.Node))
				b.ReportMetric(float64(n.Shed), fmt.Sprintf("node%d-shed", n.Node))
				b.ReportMetric(float64(n.Degraded), fmt.Sprintf("node%d-degraded", n.Node))
			}
		})
	}
}
