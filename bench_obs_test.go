// BenchmarkObsOverhead quantifies the observability layer's cost on the
// two hottest instrumented paths — the simulated kernel's scheduling loop
// and the signature service's per-update cascade — with the collector
// detached (the production default: nil handles, one branch per hook
// site), fully attached, and attached in 1-in-64 sampling mode. The
// disabled/enabled ratio is the ISSUE's <2% regression budget.
//
// Run with:
//
//	go test -bench BenchmarkObsOverhead -benchmem
package repro_test

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/signature"
	"repro/internal/workload"
)

// BenchmarkObsOverhead/kernel-* run a small closed-loop web workload (the
// highest event rate per request of the five applications) through
// core.Run; /session-* stream prefixes through the sharded signature
// service as in BenchmarkIdentifyService.
func BenchmarkObsOverhead(b *testing.B) {
	kernelRun := func(b *testing.B, col *obs.Collector) {
		app := workload.NewWebServer()
		opts := core.Options{App: app, Requests: 40, Seed: 7}
		for i := 0; i < b.N; i++ {
			res, err := core.Run(opts,
				core.WithSampling(core.DefaultSampling(app)),
				core.WithObserver(col))
			if err != nil {
				b.Fatal(err)
			}
			if res.Store.Len() != 40 {
				b.Fatalf("traced %d/40", res.Store.Len())
			}
		}
	}
	b.Run("kernel-off", func(b *testing.B) { kernelRun(b, nil) })
	b.Run("kernel-on", func(b *testing.B) { kernelRun(b, obs.New("bench")) })
	b.Run("kernel-sampled", func(b *testing.B) {
		col := obs.New("bench")
		col.SetSampleEvery(64)
		kernelRun(b, col)
	})

	sessionRun := func(b *testing.B, col *obs.Collector) {
		bank, streams := identifyFixture()
		svc := signature.NewService(signature.NewMatcher(bank), 0)
		svc.SetObserver(col)
		var ids atomic.Uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			id := ids.Add(1) << 32
			for pb.Next() {
				id++
				stream := streams[int(id)%len(streams)]
				for _, v := range stream {
					svc.Observe(id, v)
				}
				svc.Finish(id)
			}
		})
	}
	b.Run("session-off", func(b *testing.B) { sessionRun(b, nil) })
	b.Run("session-on", func(b *testing.B) { sessionRun(b, obs.New("bench")) })
}
