// Benchmark for the always-on service mode (package serve): one op pushes
// a million simulated requests through the full online pipeline — sharded
// streaming identification, sliding-window bank compaction, threshold
// recalibration, admission control — after a warmup that grows every pool.
// The headline claims are the steady-state allocation count (0 allocs/op)
// and the identify-path latency profile, reported as custom "-ns" metrics
// that cmd/benchjson carries into the perf snapshot.
//
// Run with:
//
//	go test -bench BenchmarkServeSteadyState -benchmem
package repro_test

import (
	"testing"

	"repro/internal/serve"
)

// benchServeEngine builds a default engine and warms it past its first
// compactions so pools, free lists, and matcher envelopes reach their
// steady-state sizes before the timer starts.
func benchServeEngine(b *testing.B, workers int) *serve.Engine {
	b.Helper()
	cfg := serve.DefaultConfig(1)
	cfg.Workers = workers
	e, err := serve.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(e.Close)
	// Warm through the burst window, a full beat period of the two load
	// sinusoids (lcm of 50ms and 330ms ≈ 1.65s virtual ≈ 1.3M requests),
	// and ≥16 compaction cycles, so every pool, free list, and session map
	// has seen peak depth and reached its steady-state size.
	e.Process(1_700_000)
	return e
}

// BenchmarkServeSteadyState is the headline service-mode benchmark: 1M
// simulated requests per op through the warmed pipeline, 0 allocs/op.
// ns/op is the wall cost per million requests; p50/p99/p999-ns are the
// identify-path latency quantiles over every timed call.
func BenchmarkServeSteadyState(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // GOMAXPROCS workers (capped at shard count)
	} {
		b.Run(bc.name, func(b *testing.B) {
			e := benchServeEngine(b, bc.workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Process(1_000_000)
			}
			b.StopTimer()
			res := e.Result()
			if res.Arrivals == 0 || res.Compactions == 0 {
				b.Fatalf("pipeline inert: %+v", res)
			}
			h := e.Histogram()
			b.ReportMetric(h.Quantile(0.50), "p50-ns")
			b.ReportMetric(h.Quantile(0.99), "p99-ns")
			b.ReportMetric(h.Quantile(0.999), "p999-ns")
			b.ReportMetric(float64(b.N)*1e6/b.Elapsed().Seconds()/1e6, "Mreq/s")
		})
	}
}
