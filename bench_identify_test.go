// Benchmarks for the online identification fast path (Section 4.4 at
// serving scale): a 500-entry signature bank matched against streaming
// prefixes that grow bucket by bucket, the per-request hot path of online
// CPU-usage prediction. Variants: the naive full rescan per update, the
// incremental per-session accumulation, the pruned lower-bound cascade,
// and the sharded concurrent service. A one-time golden check asserts all
// variants identify exactly the same bank entries as the naive matcher.
//
// Run with:
//
//	go test -bench BenchmarkIdentify -benchmem
package repro_test

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/signature"
	"repro/internal/sim"
)

const (
	identifyBankSize  = 500
	identifyStreamLen = 64
	identifyStreams   = 16
)

// identifyFixture builds a 500-entry bank of random-walk signatures plus a
// set of request streams that track bank entries with noise (so matching
// is non-trivial and the best candidate shifts as prefixes grow).
func identifyFixture() (*signature.Bank, [][]float64) {
	g := sim.NewRNG(2026)
	bank := &signature.Bank{ThresholdNs: 10_000}
	for i := 0; i < identifyBankSize; i++ {
		pat := make([]float64, 48+g.Intn(49))
		v := g.Uniform(0.005, 0.05)
		for j := range pat {
			v += g.Normal(0, 0.004)
			pat[j] = math.Abs(v)
		}
		bank.Entries = append(bank.Entries, signature.Entry{
			Pattern:   pat,
			CPUTimeNs: g.Uniform(0, 20_000),
		})
	}
	streams := make([][]float64, identifyStreams)
	for i := range streams {
		base := bank.Entries[g.Intn(identifyBankSize)].Pattern
		s := make([]float64, identifyStreamLen)
		for j := range s {
			var v float64
			if j < len(base) {
				v = base[j]
			}
			s[j] = math.Abs(v + g.Normal(0, 0.001))
		}
		streams[i] = s
	}
	return bank, streams
}

// BenchmarkIdentify measures one full streaming lifetime per op: every
// stream grows bucket by bucket and is re-identified after each arrival
// (identifyStreams × identifyStreamLen updates per op; compare ns/op
// across variants for the per-update speedup).
func BenchmarkIdentify(b *testing.B) {
	bank, streams := identifyFixture()
	matcher := signature.NewMatcher(bank)

	// Golden check: the fast-path variants must match naive exactly at
	// every prefix length, ties and all.
	cascaded := matcher.NewSession()
	plain := matcher.NewSession()
	plain.DisableCascade = true
	for _, stream := range streams {
		cascaded.Reset()
		plain.Reset()
		for t := 1; t <= len(stream); t++ {
			want := bank.IdentifyPattern(stream[:t])
			cascaded.Extend(stream[t-1])
			plain.Extend(stream[t-1])
			if got := cascaded.Best(); got != want {
				b.Fatalf("cascaded best %d, naive %d (prefix %d)", got, want, t)
			}
			if got := plain.Best(); got != want {
				b.Fatalf("incremental best %d, naive %d (prefix %d)", got, want, t)
			}
		}
	}

	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, stream := range streams {
				for t := 1; t <= len(stream); t++ {
					bank.IdentifyPattern(stream[:t])
				}
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		s := matcher.NewSession()
		s.DisableCascade = true
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, stream := range streams {
				s.Reset()
				for _, v := range stream {
					s.Extend(v)
					s.Best()
				}
			}
		}
	})
	b.Run("cascaded", func(b *testing.B) {
		s := matcher.NewSession()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, stream := range streams {
				s.Reset()
				for _, v := range stream {
					s.Extend(v)
					s.Best()
				}
			}
		}
	})
}

// BenchmarkIdentifyService measures the sharded concurrent service: each
// parallel worker streams its own in-flight requests (RunParallel scales
// the in-flight count with GOMAXPROCS).
func BenchmarkIdentifyService(b *testing.B) {
	bank, streams := identifyFixture()
	svc := signature.NewService(signature.NewMatcher(bank), 0)
	var ids atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		id := ids.Add(1) << 32
		for pb.Next() {
			id++
			stream := streams[int(id)%len(streams)]
			for _, v := range stream {
				svc.Observe(id, v)
			}
			svc.Finish(id)
		}
	})
	b.ReportMetric(float64(identifyStreamLen), "updates/req")
}

// BenchmarkIdentifyCompactBank quantifies bank compaction: the cascade
// over a medoid-compacted 64-entry bank versus the full 500 entries.
func BenchmarkIdentifyCompactBank(b *testing.B) {
	bank, streams := identifyFixture()
	compact := signature.Compact(bank, 64, 1)
	matcher := signature.NewMatcher(compact)
	b.ReportMetric(float64(len(compact.Entries)), "entries")
	s := matcher.NewSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, stream := range streams {
			s.Reset()
			for _, v := range stream {
				s.Extend(v)
				s.Best()
			}
		}
	}
}
