package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Test CPU @ 2.00GHz
BenchmarkIdentify/naive-8         	       1	14700000 ns/op
BenchmarkIdentify/cascaded-8      	       1	 1100000 ns/op	       5.00 pruned/op
BenchmarkPairwiseMatrix/serial-8  	       1	  900000 ns/op	     256 B/op	       3 allocs/op
not a benchmark line
`

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkIdentify/naive-8  79  15362246 ns/op  3.00 x/op  128 B/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if b.Name != "BenchmarkIdentify/naive" || b.Procs != 8 || b.Iterations != 79 {
		t.Fatalf("parsed %+v", b)
	}
	if b.NsPerOp != 15362246 || b.Metrics["x/op"] != 3 || b.Metrics["B/op"] != 128 {
		t.Fatalf("metrics %+v", b)
	}
}

func TestRunParsesToJSON(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run(nil, strings.NewReader(sampleBench), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.CPU != "Test CPU @ 2.00GHz" || len(rep.Benchmarks) != 3 {
		t.Fatalf("envelope %+v", rep)
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out, errBuf bytes.Buffer
	code := run([]string{"-out", path}, strings.NewReader(sampleBench), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("wrote %d benchmarks", len(rep.Benchmarks))
	}
}

func TestRunBadFlagExitsTwo(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-no-such-flag"}, strings.NewReader(""), &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunObsUnknownExperimentExitsTwo(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-obs", "fig99"}, strings.NewReader(""), &out, &errBuf)
	if code != 2 || !strings.Contains(errBuf.String(), "valid:") {
		t.Fatalf("exit %d stderr %q", code, errBuf.String())
	}
}

// -obs embeds one observability run report per named experiment in the
// envelope, alongside whatever bench output was piped in.
func TestRunObsEmbedsRunReport(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-obs", "faultanomaly", "-obs-scale", "0.05"}, strings.NewReader(sampleBench), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Obs) != 1 || rep.Obs[0].Label != "faultanomaly" {
		t.Fatalf("obs reports %+v", rep.Obs)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("bench parsing lost alongside -obs: %d", len(rep.Benchmarks))
	}
}

// writeBaseline records a baseline snapshot with the given ns/op values.
func writeBaseline(t *testing.T, values map[string]float64) string {
	t.Helper()
	var base Report
	for name, ns := range values {
		base.Benchmarks = append(base.Benchmarks, Benchmark{Name: name, Iterations: 1, NsPerOp: ns})
	}
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAgainstPassesWithinTolerance(t *testing.T) {
	base := writeBaseline(t, map[string]float64{
		"BenchmarkIdentify/naive":        14000000,
		"BenchmarkIdentify/cascaded":     600000, // fresh run is ~1.8x: inside 3x
		"BenchmarkPairwiseMatrix/serial": 500000,
		"BenchmarkRemoved":               2000000, // missing from this run: reported, not fatal
	})
	var out, errBuf bytes.Buffer
	code := run([]string{"-against", base}, strings.NewReader(sampleBench), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "BenchmarkRemoved not in this run") {
		t.Fatalf("missing-benchmark note absent: %s", errBuf.String())
	}
}

func TestAgainstFailsOnGrossRegression(t *testing.T) {
	base := writeBaseline(t, map[string]float64{
		"BenchmarkIdentify/naive": 1000000, // fresh run is 14.7x slower
	})
	var out, errBuf bytes.Buffer
	code := run([]string{"-against", base}, strings.NewReader(sampleBench), &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit %d, want 1 for a 14x regression", code)
	}
	if !strings.Contains(errBuf.String(), "REGRESSION BenchmarkIdentify/naive") {
		t.Fatalf("regression not named: %s", errBuf.String())
	}
}

// Sub-floor baselines are noise at -benchtime=1x and never fail the
// comparison, however large the ratio looks.
func TestAgainstSkipsSubFloorBaselines(t *testing.T) {
	base := writeBaseline(t, map[string]float64{
		"BenchmarkIdentify/naive": 50, // 50ns baseline: under the 100µs floor
	})
	var out, errBuf bytes.Buffer
	code := run([]string{"-against", base}, strings.NewReader(sampleBench), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "1 under floor") {
		t.Fatalf("floor skip not reported: %s", errBuf.String())
	}
}

// writeBenchBaseline records a baseline snapshot from full Benchmark
// entries (ns/op plus -benchmem metrics).
func writeBenchBaseline(t *testing.T, benchmarks []Benchmark) string {
	t.Helper()
	data, err := json.Marshal(Report{Benchmarks: benchmarks})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// An allocation-count blowup must fail the gate even when wall time stays
// within tolerance — the alloc leg exists precisely because ns/op noise
// tolerances are too loose to catch a lost pooling fast path.
func TestAgainstFailsOnAllocRegression(t *testing.T) {
	base := writeBenchBaseline(t, []Benchmark{{
		Name: "BenchmarkPairwiseMatrix/serial", Iterations: 1, NsPerOp: 850000,
		Metrics: map[string]float64{"B/op": 200, "allocs/op": 500000},
	}})
	// The fresh run's 3 allocs/op against a 500k baseline is an
	// improvement, never a regression.
	var out, errBuf bytes.Buffer
	code := run([]string{"-against", base, "-allocs-floor", "1"}, strings.NewReader(sampleBench), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}

	base = writeBenchBaseline(t, []Benchmark{{
		Name: "BenchmarkPairwiseMatrix/serial", Iterations: 1, NsPerOp: 850000,
		Metrics: map[string]float64{"B/op": 250, "allocs/op": 0.5},
	}})
	out.Reset()
	errBuf.Reset()
	code = run([]string{"-against", base, "-allocs-floor", "0.1", "-bytes-floor", "1"}, strings.NewReader(sampleBench), &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit %d, want 1 for a 6x allocs/op regression: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "allocs/op") {
		t.Fatalf("alloc regression not named: %s", errBuf.String())
	}
}

// Memory dimensions sit under their own floors: a large relative change on
// a tiny absolute baseline is noise, not a regression.
func TestAgainstSkipsSubFloorMemBaselines(t *testing.T) {
	base := writeBenchBaseline(t, []Benchmark{{
		Name: "BenchmarkPairwiseMatrix/serial", Iterations: 1, NsPerOp: 850000,
		Metrics: map[string]float64{"B/op": 1, "allocs/op": 1},
	}})
	var out, errBuf bytes.Buffer
	code := run([]string{"-against", base}, strings.NewReader(sampleBench), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "2 under floor") {
		t.Fatalf("mem floor skips not reported: %s", errBuf.String())
	}
}

// Custom *-ns metrics (the serve benchmark's latency quantiles) regress
// under their own tolerance and floor; other custom units are ignored.
func TestAgainstRegressesCustomNsMetrics(t *testing.T) {
	const freshBench = `BenchmarkServeSteadyState/serial-8  1  700000000 ns/op  9000 p99-ns  40000 p999-ns  1.5 Mreq/s  0 B/op  0 allocs/op
`
	base := writeBenchBaseline(t, []Benchmark{{
		Name: "BenchmarkServeSteadyState/serial", Iterations: 1, NsPerOp: 690000000,
		Metrics: map[string]float64{"p99-ns": 1500, "p999-ns": 39000, "Mreq/s": 1.4, "B/op": 0, "allocs/op": 0},
	}})
	// p99 blew up 6x against a 1.5µs baseline: over the 5x default factor.
	var out, errBuf bytes.Buffer
	code := run([]string{"-against", base}, strings.NewReader(freshBench), &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit %d, want 1 for a 6x p99-ns regression: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "p99-ns") {
		t.Fatalf("p99 regression not named: %s", errBuf.String())
	}

	// The same run passes with a looser factor; Mreq/s (not a -ns metric)
	// never participates even though it moved.
	out.Reset()
	errBuf.Reset()
	code = run([]string{"-against", base, "-metric-tolerance", "10"}, strings.NewReader(freshBench), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}

	// Sub-floor latency baselines are noise: a 1.5µs p99 with a raised
	// floor skips rather than fails.
	out.Reset()
	errBuf.Reset()
	code = run([]string{"-against", base, "-metric-floor", "10e3"}, strings.NewReader(freshBench), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
}

func TestAgainstMissingBaselineFileExitsOne(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-against", filepath.Join(t.TempDir(), "nope.json")}, strings.NewReader(sampleBench), &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

// TestAgainstCommittedBaselineParses guards the committed snapshot the
// regression smoke compares against: it must stay parseable and keep the
// benchmarks `make bench-smoke` relies on.
func TestAgainstCommittedBaselineParses(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_506f09d.json")
	if err != nil {
		t.Fatal(err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if len(base.Benchmarks) == 0 {
		t.Fatal("committed baseline holds no benchmarks")
	}
	var overFloor int
	for _, b := range base.Benchmarks {
		if b.NsPerOp >= 100e3 {
			overFloor++
		}
	}
	if overFloor < 5 {
		t.Fatalf("only %d baseline benchmarks clear the comparison floor", overFloor)
	}
}
