// Command benchjson converts `go test -bench` output into JSON, so each
// PR can record a machine-readable perf snapshot (the BENCH_*.json
// trajectory) that later sessions diff against.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=1x . | go run ./cmd/benchjson -out BENCH_abc123.json
//	go test -run '^$' -bench . -benchtime=1x . | go run ./cmd/benchjson -against BENCH_506f09d.json
//
// Every benchmark line becomes an object with its iteration count, ns/op,
// and all custom metrics (including B/op and allocs/op when -benchmem is
// on); goos/goarch/cpu header lines are carried into the envelope.
//
// With -obs LIST (comma-separated registry names), benchjson additionally
// runs those experiments at -obs-scale under an observability collector and
// embeds each run report in the envelope, so the perf snapshot carries span
// totals and sampler-overhead accounting alongside the benchmark numbers.
// When stdin is a terminal (no piped bench output), parsing is skipped and
// the envelope holds only the observability reports.
//
// With -against FILE, the parsed results are additionally compared to the
// baseline snapshot in FILE: any benchmark slower than baseline ns/op ×
// -tolerance fails the run (exit 1). The default tolerance of 3× is the
// regression smoke (`make bench-smoke`): generous enough that scheduler
// noise and machine differences never trip it, tight enough that a gross
// perf regression — an accidental O(n²), a lost fast path — fails loudly.
// Benchmarks under -floor ns/op in the baseline are skipped (single-shot
// timings of sub-100µs benchmarks are dominated by noise).
//
// When the baseline and the fresh run both carry -benchmem columns, B/op
// and allocs/op are guarded the same way under their own -mem-tolerance
// factor (allocation counts are deterministic, but GC internals can shift
// across Go versions, so the factor stays generous). Baselines under
// -bytes-floor B/op or -allocs-floor allocs/op are skipped as noise.
//
// Custom benchmark metrics whose unit ends in "-ns" (the latency quantiles
// BenchmarkServeSteadyState reports via b.ReportMetric: p50-ns, p99-ns,
// p999-ns) are regressed too, under -metric-tolerance with baselines below
// -metric-floor skipped — single-shot tail quantiles are the noisiest
// dimension, so the default factor is the most generous.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the JSON envelope.
type Report struct {
	GeneratedAt string      `json:"generated_at"`
	GoOS        string      `json:"goos,omitempty"`
	GoArch      string      `json:"goarch,omitempty"`
	Pkg         string      `json:"pkg,omitempty"`
	CPU         string      `json:"cpu,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
	// Obs carries observability run reports for the experiments named by
	// -obs, keyed by collector label (one report per experiment run).
	Obs []*obs.Report `json:"obs,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], stdinOrEmpty(), os.Stdout, os.Stderr))
}

// run is the testable entry point: flag and lookup errors exit 2, I/O
// failures and baseline regressions exit 1.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "output file (default stdout)")
	obsList := fs.String("obs", "", "comma-separated registry experiments to run under a collector")
	obsScale := fs.Float64("obs-scale", 0.1, "request-count scale for -obs runs")
	obsSeed := fs.Int64("obs-seed", 1, "seed for -obs runs")
	against := fs.String("against", "", "baseline BENCH_*.json to compare parsed results to")
	tolerance := fs.Float64("tolerance", 3, "fail when a benchmark exceeds baseline ns/op times this factor")
	floor := fs.Float64("floor", 100e3, "skip comparison for baselines below this many ns/op (noise)")
	memTolerance := fs.Float64("mem-tolerance", 3, "fail when a benchmark exceeds baseline B/op or allocs/op times this factor")
	bytesFloor := fs.Float64("bytes-floor", 1e6, "skip B/op comparison for baselines below this many bytes (noise)")
	allocsFloor := fs.Float64("allocs-floor", 10e3, "skip allocs/op comparison for baselines below this many allocations (noise)")
	metricTolerance := fs.Float64("metric-tolerance", 5, "fail when a custom *-ns metric exceeds baseline times this factor")
	metricFloor := fs.Float64("metric-floor", 1e3, "skip *-ns metric comparison for baselines below this many ns (noise)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	rep := Report{GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	if *obsList != "" {
		reports, err := runObs(*obsList, *obsScale, *obsSeed)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 2
		}
		rep.Obs = reports
	}
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(stderr, "benchjson: read: %v\n", err)
		return 1
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: marshal: %v\n", err)
		return 1
	}
	enc = append(enc, '\n')
	if *out == "" {
		stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	} else {
		fmt.Fprintf(stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
	}

	if *against != "" {
		tol := tolerances{
			Ns: *tolerance, NsFloor: *floor,
			Mem: *memTolerance, BytesFloor: *bytesFloor, AllocsFloor: *allocsFloor,
			Metric: *metricTolerance, MetricFloor: *metricFloor,
		}
		if err := compareBaseline(rep, *against, tol, stderr); err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
	}
	return 0
}

// tolerances bundles the -against comparison factors and noise floors.
type tolerances struct {
	Ns, NsFloor                  float64
	Mem, BytesFloor, AllocsFloor float64
	Metric, MetricFloor          float64
}

// compareBaseline diffs the fresh results against a recorded snapshot and
// errors when any shared benchmark regressed beyond the tolerance factors
// (wall time, allocated bytes, and allocation counts each under their own
// factor and noise floor). Benchmarks present on only one side are reported
// but never fail the comparison — suites evolve; gross slowdowns are the
// target.
func compareBaseline(rep Report, path string, tol tolerances, stderr io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	baseBench := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		baseBench[b.Name] = b
	}
	var regressions, compared, skipped int
	// check compares one dimension of one benchmark against the baseline,
	// tallying into the counters above. A dimension absent from both sides
	// (e.g. no -benchmem columns) is not a comparison at all.
	check := func(name, unit string, got, want, factor, floor float64) {
		switch {
		case got == 0 && want == 0:
		case want < floor || got == 0:
			skipped++
		case got > want*factor:
			regressions++
			fmt.Fprintf(stderr, "benchjson: REGRESSION %s: %.0f %s vs baseline %.0f (%.1fx > %.1fx tolerance)\n",
				name, got, unit, want, got/want, factor)
		default:
			compared++
		}
	}
	seen := map[string]bool{}
	for _, b := range rep.Benchmarks {
		seen[b.Name] = true
		want, ok := baseBench[b.Name]
		if !ok {
			fmt.Fprintf(stderr, "benchjson: new benchmark %s (no baseline)\n", b.Name)
			continue
		}
		check(b.Name, "ns/op", b.NsPerOp, want.NsPerOp, tol.Ns, tol.NsFloor)
		// Memory dimensions only exist when both sides ran -benchmem.
		check(b.Name, "B/op", b.Metrics["B/op"], want.Metrics["B/op"], tol.Mem, tol.BytesFloor)
		check(b.Name, "allocs/op", b.Metrics["allocs/op"], want.Metrics["allocs/op"], tol.Mem, tol.AllocsFloor)
		// Custom latency metrics (b.ReportMetric with a *-ns unit) are
		// regressed against the same baseline entry. Keys come from the
		// baseline in sorted order so the report is stable.
		for _, unit := range sortedKeys(want.Metrics) {
			if strings.HasSuffix(unit, "-ns") {
				check(b.Name, unit, b.Metrics[unit], want.Metrics[unit], tol.Metric, tol.MetricFloor)
			}
		}
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			fmt.Fprintf(stderr, "benchjson: baseline benchmark %s not in this run\n", b.Name)
		}
	}
	fmt.Fprintf(stderr, "benchjson: baseline %s: %d compared, %d under floor, %d regressions\n",
		path, compared, skipped, regressions)
	if regressions > 0 {
		return fmt.Errorf("%d benchmark dimensions regressed beyond tolerance", regressions)
	}
	return nil
}

// sortedKeys returns a map's keys in sorted order (rendered tables and
// comparison reports must never depend on map iteration order).
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // maporder:ok sorted immediately below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// stdinOrEmpty returns stdin, or an empty reader when stdin is an
// interactive terminal (running `benchjson -obs ...` with nothing piped
// must not hang waiting for bench output).
func stdinOrEmpty() io.Reader {
	if st, err := os.Stdin.Stat(); err == nil && st.Mode()&os.ModeCharDevice != 0 {
		return strings.NewReader("")
	}
	return os.Stdin
}

// runObs runs the named registry experiments, each under its own
// collector, and returns the resulting run reports in request order.
func runObs(list string, scale float64, seed int64) ([]*obs.Report, error) {
	var reports []*obs.Report
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		e, ok := experiments.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (valid: %s)",
				name, strings.Join(experiments.Names(), ","))
		}
		col := obs.New(name)
		if _, err := e.Run(experiments.Config{Seed: seed, Scale: scale, Obs: col}); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		reports = append(reports, col.Report())
	}
	return reports, nil
}

// parseLine parses one result line, e.g.
//
//	BenchmarkIdentify/naive-8  79  15362246 ns/op  3.00 some-metric  0 B/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0]}
	// A trailing -N on the name is the GOMAXPROCS suffix.
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// The remainder alternates value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = v
	}
	return b, true
}
