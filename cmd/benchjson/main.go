// Command benchjson converts `go test -bench` output into JSON, so each
// PR can record a machine-readable perf snapshot (the BENCH_*.json
// trajectory) that later sessions diff against.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=1x . | go run ./cmd/benchjson -out BENCH_abc123.json
//
// Every benchmark line becomes an object with its iteration count, ns/op,
// and all custom metrics (including B/op and allocs/op when -benchmem is
// on); goos/goarch/cpu header lines are carried into the envelope.
//
// With -obs LIST (comma-separated registry names), benchjson additionally
// runs those experiments at -obs-scale under an observability collector and
// embeds each run report in the envelope, so the perf snapshot carries span
// totals and sampler-overhead accounting alongside the benchmark numbers.
// When stdin is a terminal (no piped bench output), parsing is skipped and
// the envelope holds only the observability reports.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the JSON envelope.
type Report struct {
	GeneratedAt string      `json:"generated_at"`
	GoOS        string      `json:"goos,omitempty"`
	GoArch      string      `json:"goarch,omitempty"`
	Pkg         string      `json:"pkg,omitempty"`
	CPU         string      `json:"cpu,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
	// Obs carries observability run reports for the experiments named by
	// -obs, keyed by collector label (one report per experiment run).
	Obs []*obs.Report `json:"obs,omitempty"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	obsList := flag.String("obs", "", "comma-separated registry experiments to run under a collector")
	obsScale := flag.Float64("obs-scale", 0.1, "request-count scale for -obs runs")
	obsSeed := flag.Int64("obs-seed", 1, "seed for -obs runs")
	flag.Parse()

	rep := Report{GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	if *obsList != "" {
		reports, err := runObs(*obsList, *obsScale, *obsSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		rep.Obs = reports
	}
	sc := bufio.NewScanner(stdinOrEmpty())
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// stdinOrEmpty returns stdin, or an empty reader when stdin is an
// interactive terminal (running `benchjson -obs ...` with nothing piped
// must not hang waiting for bench output).
func stdinOrEmpty() io.Reader {
	if st, err := os.Stdin.Stat(); err == nil && st.Mode()&os.ModeCharDevice != 0 {
		return strings.NewReader("")
	}
	return os.Stdin
}

// runObs runs the named registry experiments, each under its own
// collector, and returns the resulting run reports in request order.
func runObs(list string, scale float64, seed int64) ([]*obs.Report, error) {
	var reports []*obs.Report
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		e, ok := experiments.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (valid: %s)",
				name, strings.Join(experiments.Names(), ","))
		}
		col := obs.New(name)
		if _, err := e.Run(experiments.Config{Seed: seed, Scale: scale, Obs: col}); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		reports = append(reports, col.Report())
	}
	return reports, nil
}

// parseLine parses one result line, e.g.
//
//	BenchmarkIdentify/naive-8  79  15362246 ns/op  3.00 some-metric  0 B/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0]}
	// A trailing -N on the name is the GOMAXPROCS suffix.
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// The remainder alternates value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = v
	}
	return b, true
}
